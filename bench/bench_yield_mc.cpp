// EQ12 — validation of the paper's Equations (1)-(2): analytic word/cache
// yield vs Monte-Carlo bit-fault sampling across a Pf sweep, plus the
// end-to-end check that a chip built with the sized 8T+SECDED way runs a
// real workload functionally exactly at ULE.
#include "bench_common.hpp"

#include "hvc/common/rng.hpp"
#include "hvc/yield/cache_yield.hpp"

namespace {

using namespace hvc;
using namespace hvc::bench;

/// Per-bit Bernoulli reference sampler: O(total bits) per chip. Kept as
/// the baseline the O(faults) yield::mc_cache_yield skip-sampler is
/// benchmarked (and statistically cross-checked) against.
[[nodiscard]] double mc_yield_per_bit(double pf,
                                      std::span<const yield::WordClass> words,
                                      Rng& rng, int chips) {
  int ok = 0;
  for (int chip = 0; chip < chips; ++chip) {
    bool chip_ok = true;
    for (const auto& word : words) {
      for (std::size_t w = 0; chip_ok && w < word.count; ++w) {
        std::size_t faults = 0;
        const std::size_t bits = word.data_bits + word.check_bits;
        for (std::size_t b = 0; b < bits; ++b) {
          faults += rng.bernoulli(pf) ? 1 : 0;
        }
        chip_ok = faults <= word.hard_correctable;
      }
      if (!chip_ok) {
        break;
      }
    }
    ok += chip_ok ? 1 : 0;
  }
  return static_cast<double>(ok) / chips;
}

void reproduce_eq12() {
  print_header("EQ12", "Eq.(1)-(2) analytic yield vs Monte-Carlo");
  const auto words = yield::ule_way_words(32, 32, 7, 7, 1);
  std::printf("8T+SECDED ULE way (256 data words (39,32), 32 tags (33,26)):\n");
  std::printf("%12s %14s %14s %14s\n", "Pf", "analytic Y", "MC Y (20000)",
              "per-bit (2000)");
  Rng rng(77);
  for (const double pf : {1e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3}) {
    const double analytic = yield::cache_yield(pf, words);
    // The skip-sampler is ~1/Pf cheaper per chip, so it affords 10x the
    // chips of the per-bit reference at a fraction of the cost.
    const double mc = yield::mc_cache_yield(pf, words, 20000, rng).yield();
    const double per_bit = mc_yield_per_bit(pf, words, rng, 2000);
    std::printf("%12.1e %14.6f %14.6f %14.6f\n", pf, analytic, mc, per_bit);
  }

  const auto raw_words = yield::ule_way_words(32, 32, 0, 0, 0);
  std::printf("\nUnprotected 10T ULE way (raw words):\n");
  std::printf("%12s %14s %14s %14s\n", "Pf", "analytic Y", "MC Y (20000)",
              "per-bit (2000)");
  for (const double pf : {1e-6, 5e-6, 1e-5, 5e-5}) {
    const double analytic = yield::cache_yield(pf, raw_words);
    const double mc = yield::mc_cache_yield(pf, raw_words, 20000, rng).yield();
    const double per_bit = mc_yield_per_bit(pf, raw_words, rng, 2000);
    std::printf("%12.1e %14.6f %14.6f %14.6f\n", pf, analytic, mc, per_bit);
  }

  // End-to-end: chips sampled at the methodology's Pf run functionally
  // exactly (EDC corrects every manifested hard fault).
  std::printf("\nEnd-to-end fault-injection check (10 chip samples):\n");
  int exact_chips = 0;
  for (std::uint64_t chip = 0; chip < 10; ++chip) {
    sim::SystemConfig config =
        paper_system(yield::Scenario::kA, true, power::Mode::kUle);
    config.seed = 1000 + chip;
    sim::System system(config, sim::cell_plan_for(yield::Scenario::kA));
    const auto result = system.run_workload("epic_d", chip + 1, 1);
    const bool exact = system.dl1().stats().edc_detected == 0 &&
                       result.instructions > 0;
    exact_chips += exact ? 1 : 0;
  }
  std::printf("chips with zero uncorrectable events: %d / 10\n", exact_chips);
}

void BM_AnalyticYield(benchmark::State& state) {
  const auto words = yield::ule_way_words(32, 32, 7, 7, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(yield::cache_yield(2e-4, words));
  }
}
BENCHMARK(BM_AnalyticYield);

void BM_McYield100(benchmark::State& state) {
  const auto words = yield::ule_way_words(32, 32, 7, 7, 1);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(yield::mc_cache_yield(2e-4, words, 100, rng));
  }
}
BENCHMARK(BM_McYield100)->Unit(benchmark::kMillisecond);

void BM_McYield100PerBit(benchmark::State& state) {
  const auto words = yield::ule_way_words(32, 32, 7, 7, 1);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc_yield_per_bit(2e-4, words, rng, 100));
  }
}
BENCHMARK(BM_McYield100PerBit)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_eq12();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
