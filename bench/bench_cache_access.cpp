// CACHE — microbenchmarks of the bit-accurate cache's access hot path:
// a hit + miss mix with EDC-coded words, at HP and at ULE (faulty cells),
// plus a full scrub pass. These are the loops every figure reproduction
// funnels through, so their throughput bounds the whole harness.
#include "bench_common.hpp"

#include "hvc/cache/cache.hpp"
#include "hvc/common/rng.hpp"

namespace {

using namespace hvc;
using namespace hvc::bench;

/// Paper-shaped 8KB 8-way cache with SECDED on every way so the EDC
/// encode/decode path is exercised on each access.
[[nodiscard]] cache::CacheConfig coded_config() {
  cache::CacheConfig config;
  config.ways.resize(8);
  for (std::size_t w = 0; w < 8; ++w) {
    config.ways[w].cell = {tech::CellKind::k6T, 1.9};
    config.ways[w].hp_protection = edc::Protection::kSecded;
  }
  config.ways[7].cell = {tech::CellKind::k8T, 2.8};
  config.ways[7].ule_protection = edc::Protection::kSecded;
  config.ways[7].ule_way = true;
  return config;
}

/// Mixed address stream: ~2x the cache footprint so lookups split into a
/// realistic hit + miss mix; 1 store per 4 accesses.
[[nodiscard]] std::vector<std::uint64_t> address_stream(std::size_t count) {
  Rng rng(42);
  std::vector<std::uint64_t> addrs(count);
  const std::uint64_t footprint = 2 * 8 * 1024;
  for (auto& addr : addrs) {
    addr = (rng.below(footprint) / 4) * 4;
  }
  return addrs;
}

void BM_CacheAccess(benchmark::State& state) {
  cache::MainMemory memory;
  Rng rng(7);
  cache::MainMemoryLevel terminal(memory,
                                  coded_config().memory_latency_cycles);
  cache::Cache cache(coded_config(), terminal, rng);
  const auto addrs = address_stream(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::uint64_t addr = addrs[i];
    const auto type = (i % 4 == 3) ? cache::AccessType::kStore
                                   : cache::AccessType::kLoad;
    benchmark::DoNotOptimize(
        cache.access(addr, type, static_cast<std::uint32_t>(i)));
    i = (i + 1) % addrs.size();
  }
  state.counters["hit_rate"] = cache.stats().hit_rate();
}
BENCHMARK(BM_CacheAccess);

void BM_CacheAccessUle(benchmark::State& state) {
  cache::MainMemory memory;
  Rng rng(9);
  cache::CacheConfig config = coded_config();
  // Hard faults at the paper's sized-8T Pf: the fault map is consulted on
  // every ULE read.
  config.way_hard_pf.assign(8, 2e-4);
  cache::MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  cache::Cache cache(config, terminal, rng);
  cache.set_mode(power::Mode::kUle);
  const auto addrs = address_stream(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::uint64_t addr = addrs[i];
    const auto type = (i % 4 == 3) ? cache::AccessType::kStore
                                   : cache::AccessType::kLoad;
    benchmark::DoNotOptimize(
        cache.access(addr, type, static_cast<std::uint32_t>(i)));
    i = (i + 1) % addrs.size();
  }
  state.counters["hit_rate"] = cache.stats().hit_rate();
}
BENCHMARK(BM_CacheAccessUle);

void BM_CacheAccessL2(benchmark::State& state) {
  // Same hit+miss mix, but L1 misses fill from a 32KB shared L2 through
  // the MemoryLevel interface instead of straight from memory: bounds the
  // hierarchy plumbing's cost per access (fetch_block/writeback_block).
  cache::MainMemory memory;
  Rng rng(13);
  cache::MainMemoryLevel terminal(memory, 20);
  cache::CacheConfig l2_config = coded_config();
  l2_config.name = "L2";
  l2_config.org.size_bytes = 32 * 1024;
  l2_config.hit_latency_cycles = 4;
  cache::Cache l2(l2_config, terminal, rng);
  cache::Cache l1(coded_config(), l2, rng);
  const auto addrs = address_stream(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::uint64_t addr = addrs[i];
    const auto type = (i % 4 == 3) ? cache::AccessType::kStore
                                   : cache::AccessType::kLoad;
    benchmark::DoNotOptimize(
        l1.access(addr, type, static_cast<std::uint32_t>(i)));
    i = (i + 1) % addrs.size();
  }
  state.counters["hit_rate"] = l1.stats().hit_rate();
  state.counters["l2_hit_rate"] = l2.stats().hit_rate();
}
BENCHMARK(BM_CacheAccessL2);

void BM_CacheScrub(benchmark::State& state) {
  cache::MainMemory memory;
  Rng rng(11);
  cache::MainMemoryLevel terminal(memory,
                                  coded_config().memory_latency_cycles);
  cache::Cache cache(coded_config(), terminal, rng);
  // Warm the whole cache so the scrub walks every valid line.
  for (std::uint64_t addr = 0; addr < 8 * 1024; addr += 4) {
    (void)cache.access(addr, cache::AccessType::kLoad);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.scrub());
  }
}
BENCHMARK(BM_CacheScrub)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_header("CACHE", "cache access hot-path microbenchmarks");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
