// ABL1 — Ablation of the HP/ULE way split (paper IV-A: "We have
// considered other designs (e.g., 6+2), but they did not provide further
// insights"): 7+1 vs 6+2 vs 4+4 at both modes, scenario A.
#include "bench_common.hpp"

#include "hvc/workloads/workload.hpp"

namespace {

using namespace hvc;
using namespace hvc::bench;

void reproduce_way_split() {
  print_header("ABL1", "HP/ULE way split ablation (scenario A)");
  std::printf("%-8s %22s %22s %16s\n", "split", "HP EPI saving (gsm_c)",
              "ULE EPI saving (adpcm_c)", "ULE DL1 hitrate");
  for (const std::size_t ule_ways : {1, 2, 4}) {
    // HP mode on a big workload.
    sim::SystemConfig base_hp =
        paper_system(yield::Scenario::kA, false, power::Mode::kHp);
    base_hp.ule_ways = ule_ways;
    sim::SystemConfig prop_hp =
        paper_system(yield::Scenario::kA, true, power::Mode::kHp);
    prop_hp.ule_ways = ule_ways;
    const auto rb_hp = sim::run_one(base_hp, "gsm_c");
    const auto rp_hp = sim::run_one(prop_hp, "gsm_c");

    // ULE mode on a small workload.
    sim::SystemConfig base_ule =
        paper_system(yield::Scenario::kA, false, power::Mode::kUle);
    base_ule.ule_ways = ule_ways;
    sim::SystemConfig prop_ule =
        paper_system(yield::Scenario::kA, true, power::Mode::kUle);
    prop_ule.ule_ways = ule_ways;
    const auto rb_ule = sim::run_one(base_ule, "adpcm_c");
    const auto rp_ule = sim::run_one(prop_ule, "adpcm_c");

    std::printf("%zu+%zu     %21.1f%% %21.1f%% %15.3f\n", 8 - ule_ways,
                ule_ways, (1.0 - rp_hp.epi() / rb_hp.epi()) * 100.0,
                (1.0 - rp_ule.epi() / rb_ule.epi()) * 100.0,
                rp_ule.dl1.hit_rate());
  }
  std::printf("(expected shape: more ULE ways -> bigger ULE-mode capacity\n"
              " but costlier cells across more of the cache; the relative\n"
              " proposed-vs-baseline savings grow with the ULE share while\n"
              " absolute HP efficiency degrades — matching the paper's\n"
              " choice of 7+1 as the sweet spot for tiny ULE workloads)\n");
}

void BM_SystemBuild(benchmark::State& state) {
  for (auto _ : state) {
    sim::SystemConfig config =
        paper_system(yield::Scenario::kA, true, power::Mode::kHp);
    benchmark::DoNotOptimize(
        sim::System(config, sim::cell_plan_for(yield::Scenario::kA)));
  }
}
BENCHMARK(BM_SystemBuild)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_way_split();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
