// RESULT STORE — throughput of the .hvcs memo table on the paths that
// gate a resumed sweep: warm-hit lookups (get + CRC re-verification),
// cold appends (put with its two checksummed writes), and the open-time
// slab scan that rebuilds the index. The warm-hit rate is the headline:
// it bounds how fast `hvc_explore --store` can answer an already-swept
// point compared to re-simulating it.
#include "bench_common.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "hvc/store/store.hpp"

namespace {

using namespace hvc;
using namespace hvc::bench;

constexpr std::uint64_t kRecords = 4096;
/// Roughly the payload size of one encoded sweep row (~20 cells of
/// formatted numbers).
constexpr std::size_t kPayloadBytes = 256;

[[nodiscard]] store::Key key_for(std::uint64_t i) {
  return store::Key{i + 1, (i + 1) * 0x9e3779b97f4a7c15ULL};
}

[[nodiscard]] std::vector<std::uint8_t> payload_for(std::uint64_t i) {
  std::vector<std::uint8_t> payload(kPayloadBytes);
  std::uint64_t x = i * 0x2545f4914f6cdd1dULL + 1;
  for (std::size_t b = 0; b < payload.size(); ++b) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    payload[b] = static_cast<std::uint8_t>(x);
  }
  return payload;
}

/// One populated store file shared by the read-side benchmarks.
struct PopulatedStore {
  std::string path = "bench_store.hvcs";

  PopulatedStore() {
    std::remove(path.c_str());
    store::ResultStore store(path, store::OpenOptions{});
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      const std::vector<std::uint8_t> payload = payload_for(i);
      store.put(key_for(i), payload.data(), payload.size());
    }
    store.close();
  }
};

[[nodiscard]] const PopulatedStore& populated() {
  static PopulatedStore fixture;
  return fixture;
}

/// Warm-hit lookups: the per-point cost a resumed sweep pays instead of
/// a simulation (pread + CRC32 over header and payload).
void BM_StoreWarmGet(benchmark::State& state) {
  store::ResultStore store(populated().path,
                           store::OpenOptions{.read_only = true});
  std::uint64_t i = 0;
  std::uint64_t lookups = 0;
  for (auto _ : state) {
    const auto payload = store.get(key_for(i % kRecords));
    benchmark::DoNotOptimize(payload->size());
    ++i;
    ++lookups;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(lookups));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(lookups * kPayloadBytes));
}
BENCHMARK(BM_StoreWarmGet);

/// Index-only membership test (no I/O): the warm/cold classification
/// every point goes through at sweep start.
void BM_StoreContains(benchmark::State& state) {
  store::ResultStore store(populated().path,
                           store::OpenOptions{.read_only = true});
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.contains(key_for(i % (2 * kRecords))));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreContains);

/// Cold-append throughput: payload write + checksummed header write per
/// record, no sync until the end (the engine's commit pattern).
void BM_StorePut(benchmark::State& state) {
  const std::string path = populated().path + ".put";
  std::uint64_t committed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::remove(path.c_str());
    {
      store::ResultStore store(path, store::OpenOptions{});
      state.ResumeTiming();
      for (std::uint64_t i = 0; i < kRecords; ++i) {
        const std::vector<std::uint8_t> payload = payload_for(i);
        benchmark::DoNotOptimize(
            store.put(key_for(i), payload.data(), payload.size()));
      }
      committed += kRecords;
      state.PauseTiming();
      store.close();
    }
    state.ResumeTiming();
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<std::int64_t>(committed));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(committed * kPayloadBytes));
}
BENCHMARK(BM_StorePut)->Unit(benchmark::kMillisecond);

/// Open-time slab scan: CRC-validating every record to rebuild the
/// index — the fixed cost of every warm open and every recovery.
void BM_StoreOpenScan(benchmark::State& state) {
  std::uint64_t records = 0;
  for (auto _ : state) {
    store::ResultStore store(populated().path,
                             store::OpenOptions{.read_only = true});
    benchmark::DoNotOptimize(store.records());
    records += store.records();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  state.SetBytesProcessed(static_cast<std::int64_t>(
      records * (kPayloadBytes + store::kRecordHeaderBytes)));
}
BENCHMARK(BM_StoreOpenScan)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  hvc::bench::print_header(
      "RESULT STORE", "warm-hit lookups, cold appends and open-time scans");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::remove(populated().path.c_str());
  return 0;
}
