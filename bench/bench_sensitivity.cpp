// ABL2 — Sensitivity ablations:
//  (a) memory latency (paper IV-A: "other memory latencies do not change
//      the trends") — sweep 10/20/40/80 cycles at HP;
//  (b) ULE supply voltage — the sizing methodology re-run at several NST
//      voltages, showing how cell sizes and savings move.
#include "bench_common.hpp"

#include "hvc/edc/bch.hpp"
#include "hvc/edc/cost.hpp"
#include "hvc/edc/hsiao.hpp"
#include "hvc/tech/sram_cell.hpp"
#include "hvc/tech/transistor.hpp"

namespace {

using namespace hvc;
using namespace hvc::bench;

void memory_latency_sweep() {
  print_header("ABL2a", "memory latency sensitivity (scenario A, HP, gsm_d)");
  std::printf("%12s %14s %14s %12s\n", "mem latency", "baseline EPI",
              "proposed EPI", "saving");
  for (const std::size_t latency : {10, 20, 40, 80}) {
    sim::SystemConfig base =
        paper_system(yield::Scenario::kA, false, power::Mode::kHp);
    base.memory_latency_cycles = latency;
    sim::SystemConfig prop =
        paper_system(yield::Scenario::kA, true, power::Mode::kHp);
    prop.memory_latency_cycles = latency;
    const auto rb = sim::run_one(base, "gsm_d");
    const auto rp = sim::run_one(prop, "gsm_d");
    std::printf("%12zu %14.4e %14.4e %11.1f%%\n", latency, rb.epi(), rp.epi(),
                (1.0 - rp.epi() / rb.epi()) * 100.0);
  }
  std::printf("(expected: the saving is stable across memory latencies)\n");
}

void ule_vcc_sweep() {
  std::printf("\n");
  print_header("ABL2b", "ULE voltage sensitivity of the sizing methodology");
  std::printf("%8s %12s %12s %14s %14s\n", "ULE Vcc", "10T size", "8T size",
              "10T area F^2", "8T(+EDC) F^2/bit");
  for (const double vcc : {0.30, 0.35, 0.40, 0.45, 0.50}) {
    const auto plan = yield::run_methodology(yield::Scenario::kA, 1.0, vcc);
    std::printf("%8.2f %12.2f %12.2f %14.0f %16.0f\n", vcc,
                plan.baseline_10t.cell.size, plan.proposed_8t.cell.size,
                tech::cell_area_f2(plan.baseline_10t.cell),
                tech::cell_area_f2(plan.proposed_8t.cell) * 39.0 / 32.0);
  }
  std::printf("(expected: lower Vcc inflates the 10T baseline cells faster\n"
              " than the EDC-protected 8T cells -> the proposal's advantage\n"
              " grows as voltage scales down)\n");
}

void edc_granularity_note() {
  std::printf("\n");
  print_header("ABL2c", "EDC granularity (word vs line), measured");
  // Word-granularity (paper) vs line-granularity protection, using the
  // real codecs: SECDED(39,32) per word vs SECDED(266,256) per line,
  // DECTED(45,32) vs DECTED(275,256) [GF(2^9)].
  const auto word_secded = edc::make_codec(edc::Protection::kSecded, 32);
  const edc::HsiaoSecded line_secded(256);
  const edc::BchDected word_dected(32);
  const edc::BchDected line_dected(256);

  const auto report = [&](const char* label, const edc::Codec& word,
                          const edc::Codec& line) {
    const double word_overhead =
        static_cast<double>(word.check_bits()) * 8.0 / 256.0;
    const double line_overhead =
        static_cast<double>(line.check_bits()) / 256.0;
    const auto gate_figs = tech::xor_gate_figures(tech::node32(), 0.35);
    const edc::GateFigures gate{gate_figs.switch_energy_j,
                                gate_figs.leakage_w, gate_figs.delay_s};
    const auto word_dec = edc::circuit_cost(edc::decoder_shape(word), gate);
    const auto line_dec = edc::circuit_cost(edc::decoder_shape(line), gate);
    std::printf("%s:\n", label);
    std::printf("  storage overhead  : word-gran %.1f%%  line-gran %.1f%%\n",
                word_overhead * 100.0, line_overhead * 100.0);
    std::printf("  decode energy/load: word-gran %.3e J  line-gran %.3e J "
                "(%.1fx)\n",
                word_dec.energy_j, line_dec.energy_j,
                line_dec.energy_j / word_dec.energy_j);
    std::printf("  plus line-gran reads all %zu columns per word access and\n"
                "  turns every store into a read-modify-write.\n",
                line.codeword_bits());
  };
  report("SECDED", *word_secded, line_secded);
  report("DECTED", word_dected, line_dected);
  std::printf("-> the paper's word-granularity choice trades 4x storage\n"
              "   overhead for ~6-8x cheaper per-access decode and simple\n"
              "   stores.\n");
}

void BM_HpMissPath(benchmark::State& state) {
  sim::SystemConfig config =
      paper_system(yield::Scenario::kA, true, power::Mode::kHp);
  config.memory_latency_cycles = static_cast<std::size_t>(state.range(0));
  sim::System system(config, sim::cell_plan_for(yield::Scenario::kA));
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        system.dl1().access(addr, cache::AccessType::kLoad));
    addr += 32;  // always miss after warmup wraps
  }
}
BENCHMARK(BM_HpMissPath)->Arg(10)->Arg(20)->Arg(80);

}  // namespace

int main(int argc, char** argv) {
  memory_latency_sweep();
  ule_vcc_sweep();
  edc_granularity_note();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
