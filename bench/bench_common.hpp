// Shared helpers for the figure-reproduction benchmark harnesses.
//
// Each bench binary regenerates one table/figure of the paper (see
// DESIGN.md section 4): it first prints the reproduced rows/series, then
// runs google-benchmark microbenchmarks of the primitives involved.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "hvc/sim/report.hpp"
#include "hvc/sim/system.hpp"

namespace hvc::bench {

/// Builds the paper's default system config for one design point.
[[nodiscard]] inline sim::SystemConfig paper_system(yield::Scenario scenario,
                                                    bool proposed,
                                                    power::Mode mode) {
  sim::SystemConfig config;
  config.design.scenario = scenario;
  config.design.proposed = proposed;
  config.mode = mode;
  return config;
}

/// Runs one workload on one design point (shared methodology plan).
[[nodiscard]] inline cpu::RunResult run_point(yield::Scenario scenario,
                                              bool proposed, power::Mode mode,
                                              const std::string& workload) {
  return sim::run_one(paper_system(scenario, proposed, mode), workload);
}

inline void print_header(const char* figure, const char* description) {
  std::printf("=====================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("(shape reproduction; see EXPERIMENTS.md for criteria)\n");
  std::printf("=====================================================\n");
}

struct NormalizedRow {
  std::string label;
  sim::EpiBreakdown breakdown;  ///< already normalized to the baseline total
  double cpi = 0.0;
};

/// Prints rows whose breakdown columns are normalized to a baseline total
/// of 1.0 — the exact format of the paper's Fig. 3/4 stacked bars.
inline void print_normalized_rows(const std::vector<NormalizedRow>& rows) {
  std::printf("%-34s %8s %8s %8s %8s %8s %7s\n", "config", "L1.dyn", "L1.leak",
              "EDC", "core+ot", "total", "CPI");
  for (const auto& row : rows) {
    std::printf("%-34s %8.3f %8.3f %8.3f %8.3f %8.3f %7.3f\n",
                row.label.c_str(), row.breakdown.l1_dynamic,
                row.breakdown.l1_leakage, row.breakdown.l1_edc,
                row.breakdown.core_other, row.breakdown.total(), row.cpi);
  }
}

/// Normalizes a run's breakdown against a baseline EPI.
[[nodiscard]] inline NormalizedRow normalized_row(const std::string& label,
                                                  const cpu::RunResult& result,
                                                  double baseline_epi) {
  NormalizedRow row;
  row.label = label;
  row.breakdown = sim::epi_breakdown(result);
  if (baseline_epi > 0.0) {
    row.breakdown /= baseline_epi;
  }
  row.cpi = result.cpi();
  return row;
}

}  // namespace hvc::bench
