// TXT4 — Section IV-A3: EDC encoder/decoder circuit figures (the paper's
// HSPICE simulations on 32 nm PTM with 10% Vt variation).
//
// Prints energy/delay/gates for SECDED and DECTED encoders/decoders at
// both operating points, and throughput microbenchmarks of the actual
// encode/decode implementations.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "hvc/common/rng.hpp"
#include "hvc/common/units.hpp"
#include "hvc/edc/code.hpp"
#include "hvc/edc/cost.hpp"
#include "hvc/tech/transistor.hpp"

namespace {

using namespace hvc;

void reproduce_edc_circuits() {
  std::printf("=====================================================\n");
  std::printf("TXT4 — EDC circuit energy/delay (HSPICE substitution)\n");
  std::printf("=====================================================\n");
  std::printf("%-16s %-6s %6s %10s %12s %12s %10s\n", "code", "vcc", "gates",
              "depth", "enc energy", "dec energy", "dec delay");

  for (const auto protection :
       {edc::Protection::kSecded, edc::Protection::kDected}) {
    for (const std::size_t width : {32, 26}) {
      const auto codec = edc::make_codec(protection, width);
      const auto enc_shape = edc::encoder_shape(*codec);
      const auto dec_shape = edc::decoder_shape(*codec);
      for (const double vcc : {1.0, 0.35}) {
        const auto figures = tech::xor_gate_figures(tech::node32(), vcc);
        const edc::GateFigures gate{figures.switch_energy_j,
                                    figures.leakage_w, figures.delay_s};
        const auto enc = edc::circuit_cost(enc_shape, gate);
        const auto dec = edc::circuit_cost(dec_shape, gate);
        std::printf("%-16s %-6.2f %6zu %10zu %12s %12s %10s\n",
                    codec->name().c_str(), vcc, enc.gates + dec.gates,
                    dec_shape.depth,
                    si_format(enc.energy_j, "J").c_str(),
                    si_format(dec.energy_j, "J").c_str(),
                    si_format(dec.delay_s, "s").c_str());
      }
    }
  }
  std::printf("(expected shape: DECTED > SECDED in every column; energy\n"
              " scales ~CV^2 between 1.0V and 0.35V; decode delay fits the\n"
              " 200ns ULE cycle -> the paper's 1-cycle latency charge)\n");
}

template <edc::Protection P>
void BM_Encode(benchmark::State& state) {
  const auto codec = edc::make_codec(P, 32);
  Rng rng(1);
  BitVec data(32);
  for (std::size_t i = 0; i < 32; ++i) {
    data.set(i, rng.bernoulli(0.5));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->encode(data));
  }
}
BENCHMARK(BM_Encode<edc::Protection::kSecded>)->Name("BM_EncodeSecded");
BENCHMARK(BM_Encode<edc::Protection::kDected>)->Name("BM_EncodeDected");

template <edc::Protection P>
void BM_DecodeClean(benchmark::State& state) {
  const auto codec = edc::make_codec(P, 32);
  Rng rng(2);
  BitVec data(32);
  for (std::size_t i = 0; i < 32; ++i) {
    data.set(i, rng.bernoulli(0.5));
  }
  const BitVec codeword = codec->encode(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->decode(codeword));
  }
}
BENCHMARK(BM_DecodeClean<edc::Protection::kSecded>)
    ->Name("BM_DecodeCleanSecded");
BENCHMARK(BM_DecodeClean<edc::Protection::kDected>)
    ->Name("BM_DecodeCleanDected");

template <edc::Protection P>
void BM_DecodeDoubleError(benchmark::State& state) {
  const auto codec = edc::make_codec(P, 32);
  Rng rng(3);
  BitVec data(32);
  for (std::size_t i = 0; i < 32; ++i) {
    data.set(i, rng.bernoulli(0.5));
  }
  BitVec corrupted = codec->encode(data);
  corrupted.flip(3);
  corrupted.flip(21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->decode(corrupted));
  }
}
BENCHMARK(BM_DecodeDoubleError<edc::Protection::kDected>)
    ->Name("BM_DecodeDoubleErrorDected");

}  // namespace

int main(int argc, char** argv) {
  reproduce_edc_circuits();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
