// ABL4 — Related-work comparison (paper Section II).
//
// The paper dismisses two families of alternatives for the ULE market:
//  * drowsy/low-Vcc retention caches (Flautner et al. [9]) and plain 6T
//    voltage scaling: "fail to operate reliably at ULE mode";
//  * disabling faulty entries (Wilkerson [21], Abella [1]): "fail to
//    provide strong timing guarantees required for WCET estimation".
// This bench quantifies both arguments with the reproduction's own models.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "hvc/common/rng.hpp"
#include "hvc/tech/sram_cell.hpp"
#include "hvc/yield/cache_yield.hpp"
#include "hvc/yield/methodology.hpp"

namespace {

using namespace hvc;

void drowsy_6t_argument() {
  std::printf("=====================================================\n");
  std::printf("ABL4 — related-work comparison (Section II)\n");
  std::printf("=====================================================\n");
  std::printf("\n(a) Can voltage-scaled 6T (drowsy-style) serve ULE mode?\n");
  std::printf("%8s %14s %20s\n", "Vcc", "6T cell Pf", "1KB-way yield");
  const auto words = yield::ule_way_words(32, 32, 0, 0, 0);
  for (const double vcc : {1.0, 0.8, 0.7, 0.6, 0.5, 0.35}) {
    // Generously oversized 6T (2x) — still collapses near threshold.
    const double pf = tech::analytic_pfail({tech::CellKind::k6T, 2.0}, vcc);
    const double yield = yield::cache_yield(pf, words);
    std::printf("%8.2f %14.3e %20.6f\n", vcc, pf, yield);
  }
  std::printf("-> below ~0.7V the 6T yield is zero: drowsy caches can\n"
              "   *retain* at reduced Vcc but cannot *operate* at 350 mV,\n"
              "   which is the paper's point about refs [9]/[23].\n");
}

void disabling_argument() {
  std::printf("\n(b) Disabling faulty entries instead of correcting them\n");
  // Small 8T cells without EDC at 350 mV: count how many of the 32 ULE-way
  // lines would contain at least one faulty bit and need disabling.
  const tech::CellDesign small_8t{tech::CellKind::k8T, 1.6};
  const double pf = tech::analytic_pfail(small_8t, 0.35);
  const double p_line_faulty =
      1.0 - std::pow(1.0 - pf, 8.0 * 32.0 + 26.0);  // 256 data + tag bits
  std::printf("8T@1.60x at 350 mV: Pf = %.3e -> P(line faulty) = %.3f\n", pf,
              p_line_faulty);
  std::printf("expected disabled lines per 32-line ULE way: %.1f\n",
              32.0 * p_line_faulty);
  Rng rng(7);
  std::size_t worst = 0;
  for (int chip = 0; chip < 1000; ++chip) {
    std::size_t disabled = 0;
    for (int line = 0; line < 32; ++line) {
      if (rng.bernoulli(p_line_faulty)) {
        ++disabled;
      }
    }
    worst = std::max(worst, disabled);
  }
  std::printf("worst chip of 1000: %zu/32 lines disabled -> the effective\n"
              "cache size is chip-dependent, so a WCET bound must assume\n"
              "the worst chip — destroying the guaranteed-performance\n"
              "argument (paper refs [20],[21],[1],[7]).\n",
              worst);

  // The proposal instead: EDC-corrected cells keep ALL lines usable.
  const auto plan = yield::run_methodology(yield::Scenario::kA);
  std::printf("proposed 8T@%.2fx + SECDED: every line operational on %.1f%%\n"
              "of chips (yield), with deterministic latency.\n",
              plan.proposed_8t.cell.size, plan.proposed_8t.yield * 100.0);
}

void multi_vcc_argument() {
  std::printf("\n(c) Single- vs multi-Vcc domain\n");
  std::printf("The paper's market (<1 euro-cent chips) cannot afford a\n"
              "second voltage regulator/domain (ref [8]); every design here\n"
              "therefore shares one Vcc rail, and the ULE way must be built\n"
              "from cells that work at BOTH 1 V and 350 mV — which is what\n"
              "the hybrid 6T+8T+EDC organisation provides.\n");
}

void BM_AnalyticPfail(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tech::analytic_pfail({tech::CellKind::k6T, 2.0}, 0.5));
  }
}
BENCHMARK(BM_AnalyticPfail);

}  // namespace

int main(int argc, char** argv) {
  drowsy_6t_argument();
  disabling_argument();
  multi_vcc_argument();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
