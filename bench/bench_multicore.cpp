// MULTICORE — throughput of the multi-core interleaver: stepping N cores
// round-robin through the arbitrated shared hierarchy. BM_MulticoreStep
// is the per-record cost the cores x workload sweeps pay, so it bounds
// how far `hvc_explore` can push the `cores` axis.
#include "bench_common.hpp"

#include "hvc/sim/system.hpp"

namespace {

using namespace hvc;
using namespace hvc::bench;

[[nodiscard]] sim::SystemConfig multicore_config(std::size_t cores,
                                                 bool with_l2) {
  sim::SystemConfig config;
  config.design.scenario = yield::Scenario::kA;
  config.design.proposed = true;
  config.mode = power::Mode::kHp;
  config.num_cores = cores;
  if (with_l2) {
    config.hierarchy.l2 = sim::L2Spec{};
  }
  return config;
}

/// One full run_mix replay per iteration; reports records/second so core
/// counts are comparable (the interleaver steps one record per core per
/// round).
void BM_MulticoreStep(benchmark::State& state) {
  const auto cores = static_cast<std::size_t>(state.range(0));
  const bool with_l2 = state.range(1) != 0;
  sim::SystemConfig config = multicore_config(cores, with_l2);
  sim::System system(config, sim::cell_plan_for(config.design.scenario));
  const std::vector<std::string> mix{"gsm_c", "adpcm_c", "g721_c",
                                     "epic_c"};
  std::uint64_t records = 0;
  std::uint64_t contention = 0;
  for (auto _ : state) {
    const sim::MulticoreResult result = system.run_mix(mix);
    benchmark::DoNotOptimize(result.aggregate.cycles);
    std::uint64_t run_records = 0;
    for (const auto& core : result.per_core) {
      run_records +=
          core.il1.accesses + core.dl1.accesses;  // ifetch + load/store
    }
    records += run_records;
    if (const cache::LevelStats* shared =
            result.aggregate.level(with_l2 ? "L2" : "MEM")) {
      contention = shared->contention_cycles;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  state.counters["contention_cycles"] = static_cast<double>(contention);
}
BENCHMARK(BM_MulticoreStep)
    ->ArgsProduct({{1, 2, 4}, {0, 1}})
    ->ArgNames({"cores", "l2"})
    ->Unit(benchmark::kMillisecond);

/// Raw arbitration cost: one begin_request + access + (per round)
/// new_round per requester against an uncontended memory terminal —
/// the per-record overhead the interleaver pays on top of the cache
/// model itself. PR 8 devirtualized the queue-delay call (seam),
/// precomputed the uncontended grant energy and made new_round O(1)
/// (epoch-lazy reset), so this row tracks those wins in isolation.
void BM_ArbiterRound(benchmark::State& state) {
  const auto requesters = static_cast<std::size_t>(state.range(0));
  cache::MainMemory memory;
  cache::MainMemoryLevel inner(memory, 20);
  cache::ArbitratedLevel arbiter(inner, requesters, 1.0);
  std::uint64_t grants = 0;
  std::uint64_t addr = 0;
  for (auto _ : state) {
    for (std::size_t r = 0; r < requesters; ++r) {
      arbiter.begin_request(r);
      benchmark::DoNotOptimize(
          arbiter.access(addr, cache::AccessType::kLoad));
      addr = (addr + 4) & 0xFFFF;
    }
    arbiter.new_round();
    grants += requesters;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(grants));
  state.counters["contention_cycles"] =
      static_cast<double>(arbiter.contention_cycles());
}
BENCHMARK(BM_ArbiterRound)->Arg(1)->Arg(2)->Arg(4)->ArgName("requesters");

}  // namespace

int main(int argc, char** argv) {
  hvc::bench::print_header(
      "MULTICORE", "round-robin interleaver + shared-L2 arbitration");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
