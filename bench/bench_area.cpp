// TXT3 — Area comparison (paper abstract/Section I: the proposal "largely
// outperforms existing solutions in terms of energy AND AREA").
//
// Prints cell- and cache-level area for baseline and proposed designs in
// both scenarios, including check-bit columns and EDC logic.
#include "bench_common.hpp"

#include "hvc/tech/sram_cell.hpp"

namespace {

using namespace hvc;
using namespace hvc::bench;

void reproduce_area() {
  print_header("TXT3", "cell and L1 area, baseline vs proposed");
  for (const auto scenario : {yield::Scenario::kA, yield::Scenario::kB}) {
    const auto& cells = sim::cell_plan_for(scenario);
    std::printf("\nScenario %s\n", yield::to_string(scenario));
    std::printf("  cells: 6T=%.0f F^2  10T=%.0f F^2  8T=%.0f F^2\n",
                tech::cell_area_f2(cells.hp_6t.cell),
                tech::cell_area_f2(cells.baseline_10t.cell),
                tech::cell_area_f2(cells.proposed_8t.cell));

    sim::System base(paper_system(scenario, false, power::Mode::kHp), cells);
    sim::System prop(paper_system(scenario, true, power::Mode::kHp), cells);
    const double base_area = base.l1_area_um2();
    const double prop_area = prop.l1_area_um2();
    std::printf("  L1 (IL1+DL1) area: baseline %.0f um^2, proposed %.0f um^2"
                " -> saving %.1f%%\n",
                base_area, prop_area, (1.0 - prop_area / base_area) * 100.0);

    // ULE-way-only comparison (the part the proposal changes).
    const double way10 =
        tech::cell_area_f2(cells.baseline_10t.cell) *
        (scenario == yield::Scenario::kA ? 32.0 : 39.0);  // bits per word slot
    const double way8 = tech::cell_area_f2(cells.proposed_8t.cell) *
                        (scenario == yield::Scenario::kA ? 39.0 : 45.0);
    std::printf("  per 32-bit word incl. check bits: 10T-way %.0f F^2 vs "
                "8T-way %.0f F^2 -> saving %.1f%%\n",
                way10, way8, (1.0 - way8 / way10) * 100.0);
  }
}

void BM_CellAreaEval(benchmark::State& state) {
  const tech::CellDesign cell{tech::CellKind::k8T, 2.8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tech::cell_area_f2(cell));
  }
}
BENCHMARK(BM_CellAreaEval);

}  // namespace

int main(int argc, char** argv) {
  reproduce_area();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
