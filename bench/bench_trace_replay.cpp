// TRACE REPLAY — throughput of the streaming .hvct pipeline: encode
// (record once), decode (stream the file), and full-system replay from
// disk vs the in-memory record vector. The decode and replay rates bound
// how fast `hvc_explore` can fan sweeps out over recorded traces, and
// the disk-vs-memory pair shows what the bounded-window reader costs on
// the hot replay path.
#include "bench_common.hpp"

#include <cstdio>
#include <string>

#include "hvc/sim/system.hpp"
#include "hvc/trace/trace_file.hpp"
#include "hvc/workloads/workload.hpp"

namespace {

using namespace hvc;
using namespace hvc::bench;

/// One recorded gsm_c capture + its .hvct file, shared across benchmarks
/// (recording is deterministic, so every benchmark sees the same trace).
struct RecordedTrace {
  wl::WorkloadResult workload;
  std::string path;

  RecordedTrace()
      : workload(wl::find_workload("gsm_c").run(1, 1)),
        path("bench_trace_replay.hvct") {
    (void)trace::write_trace(path, workload.tracer);
  }
};

[[nodiscard]] const RecordedTrace& recorded() {
  static RecordedTrace trace;
  return trace;
}

/// Capture-side emission throughput: records/second appended to a
/// Tracer through the exec/load/store hooks (the loop every workload
/// kernel drives). PR 8 turned exec() into one resize + in-place fill
/// per basic block, so this row tracks the generation fast path before
/// any encoding happens.
void BM_TraceGen(benchmark::State& state) {
  std::uint64_t records = 0;
  for (auto _ : state) {
    trace::Tracer tracer;
    tracer.reserve(1 << 16);
    const trace::Block hot = tracer.block(12);
    const std::uint64_t data = tracer.alloc_data(4096);
    for (std::size_t i = 0; i < 3500; ++i) {
      tracer.exec(hot, /*taken=*/true);
      tracer.load(data + (i * 4) % 4096);
      if (i % 4 == 0) {
        tracer.store(data + (i * 8) % 4096);
      }
    }
    benchmark::DoNotOptimize(tracer.records().data());
    records += tracer.records().size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_TraceGen);

/// Encode throughput: records/second streamed through TraceWriter.
void BM_TraceWrite(benchmark::State& state) {
  const RecordedTrace& fixture = recorded();
  const std::string path = fixture.path + ".write";
  std::uint64_t records = 0;
  for (auto _ : state) {
    const trace::TraceStats stats =
        trace::write_trace(path, fixture.workload.tracer);
    benchmark::DoNotOptimize(stats.instructions);
    records += fixture.workload.tracer.records().size();
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_TraceWrite)->Unit(benchmark::kMillisecond);

/// Decode throughput: records/second pulled out of a TraceFileSource.
void BM_TraceDecode(benchmark::State& state) {
  trace::TraceFileSource source(recorded().path);
  std::uint64_t records = 0;
  trace::Record record;
  for (auto _ : state) {
    source.reset();
    while (source.next(record)) {
      benchmark::DoNotOptimize(record.addr);
      ++records;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  state.counters["bytes_per_record"] =
      static_cast<double>(source.info().payload_bytes) /
      static_cast<double>(source.info().records);
}
BENCHMARK(BM_TraceDecode)->Unit(benchmark::kMillisecond);

/// Full-system replay, from the in-memory vector vs streamed from disk:
/// the delta is the file pipeline's cost on the paper's evaluation path.
void BM_ReplayFromMemory(benchmark::State& state) {
  sim::SystemConfig config;
  sim::System system(config, sim::cell_plan_for(config.design.scenario));
  std::uint64_t records = 0;
  for (auto _ : state) {
    const cpu::RunResult result =
        system.run_trace(recorded().workload.tracer);
    benchmark::DoNotOptimize(result.cycles);
    records += recorded().workload.tracer.records().size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_ReplayFromMemory)->Unit(benchmark::kMillisecond);

void BM_ReplayFromDisk(benchmark::State& state) {
  sim::SystemConfig config;
  sim::System system(config, sim::cell_plan_for(config.design.scenario));
  trace::TraceFileSource source(recorded().path);
  std::uint64_t records = 0;
  for (auto _ : state) {
    const cpu::RunResult result = system.run_trace(source);
    benchmark::DoNotOptimize(result.cycles);
    records += source.info().records;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_ReplayFromDisk)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  hvc::bench::print_header(
      "TRACE REPLAY", "streaming .hvct capture/replay vs in-memory traces");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::remove(recorded().path.c_str());
  return 0;
}
