// BATCH — throughput of the block-at-a-time access API (PR 7/8) against
// the record-at-a-time scalar path it replaces. Two layers:
//   * BM_CacheAccessBatch: raw Cache::access_batch, swept across block
//     sizes AND stream shapes — the resident uncoded-HP shape is the
//     inline/SIMD hit-probe fast path (replay steady state), the other
//     shapes price the miss, codec and fault tails.
//   * BM_ReplayBlockSize: full System::run_trace replay of a real
//     workload trace, swept across block sizes — the end-to-end number
//     the hvc_explore sweeps and hvc_trace replay see.
// Every block size retires bit-identical results (tests/test_batch.cpp);
// these benches measure only the dispatch-overhead delta.
#include "bench_common.hpp"

#include "hvc/cache/cache.hpp"
#include "hvc/common/rng.hpp"
#include "hvc/trace/trace.hpp"
#include "hvc/workloads/workload.hpp"

namespace {

using namespace hvc;
using namespace hvc::bench;

/// Stream/cache shapes for BM_CacheAccessBatch's second argument. The
/// pre-PR-8 bench only ran kStreaming — a ~50% miss mix that never
/// stayed on the batched hit probe, so the fast path was invisible.
enum Shape : std::int64_t {
  kResident = 0,   ///< uncoded HP, working set fits: all-hit fast path
  kStreaming = 1,  ///< uncoded HP, ~2x footprint: miss/evict mix
  kCoded = 2,      ///< SECDED on every way at HP: per-access codec tail
  kFaulty = 3,     ///< ULE with exaggerated Pf: per-set scalar fallback
};

[[nodiscard]] const char* shape_name(std::int64_t shape) {
  switch (shape) {
    case kResident:
      return "resident";
    case kStreaming:
      return "streaming";
    case kCoded:
      return "coded";
    case kFaulty:
      return "faulty";
  }
  return "?";
}

/// Paper-shaped 8KB 7+1 cache for one stream shape.
[[nodiscard]] cache::CacheConfig shape_config(std::int64_t shape) {
  cache::CacheConfig config;
  config.ways.resize(8);
  for (std::size_t w = 0; w < 8; ++w) {
    config.ways[w].cell = {tech::CellKind::k6T, 1.9};
    if (shape == kCoded) {
      config.ways[w].hp_protection = edc::Protection::kSecded;
    }
  }
  config.ways[7].cell = {tech::CellKind::k8T, 2.8};
  config.ways[7].ule_way = true;
  config.ways[7].ule_protection = edc::Protection::kSecded;
  if (shape == kFaulty) {
    config.way_hard_pf.assign(8, 0.0);
    config.way_hard_pf[7] = 3e-3;
  }
  return config;
}

/// Mixed op stream over `footprint` bytes; 1 store per 4 ops, 1 ifetch
/// per 7 (same mix shape as bench_cache_access).
[[nodiscard]] std::vector<cache::BatchOp> op_stream(std::size_t count,
                                                    std::size_t footprint) {
  Rng rng(42);
  std::vector<cache::BatchOp> ops(count);
  for (std::size_t i = 0; i < count; ++i) {
    ops[i].addr = (rng.below(footprint) / 4) * 4;
    ops[i].type = (i % 4 == 3)   ? cache::AccessType::kStore
                  : (i % 7 == 0) ? cache::AccessType::kIfetch
                                 : cache::AccessType::kLoad;
    ops[i].store_value = static_cast<std::uint32_t>(i);
  }
  return ops;
}

/// The resident shape keeps the working set at half the cache so that,
/// after one warmup pass, every timed access is an inline-probe hit.
[[nodiscard]] std::size_t shape_footprint(std::int64_t shape) {
  return shape == kResident ? 4 * 1024 : 2 * 8 * 1024;
}

void BM_CacheAccessBatch(benchmark::State& state) {
  const auto block = static_cast<std::size_t>(state.range(0));
  const std::int64_t shape = state.range(1);
  cache::MainMemory memory;
  Rng rng(7);
  cache::CacheConfig config = shape_config(shape);
  cache::MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  cache::Cache cache(config, terminal, rng);
  if (shape == kFaulty) {
    cache.set_mode(power::Mode::kUle);
  }
  const auto ops = op_stream(4096, shape_footprint(shape));

  cache::AccessBatch batch;
  batch.ops.reserve(std::max<std::size_t>(block, ops.size()));
  // Warmup pass: fill the cache so the resident shape times steady-state
  // hits, not cold fills (the other shapes reach steady state too).
  batch.clear();
  for (const cache::BatchOp& op : ops) {
    batch.push(op.addr, op.type, op.store_value);
  }
  cache.access_batch(batch);

  std::size_t i = 0;
  std::uint64_t records = 0;
  for (auto _ : state) {
    batch.clear();
    for (std::size_t j = 0; j < block; ++j) {
      const cache::BatchOp& op = ops[i];
      batch.push(op.addr, op.type, op.store_value);
      i = (i + 1) % ops.size();
    }
    cache.access_batch(batch);
    benchmark::DoNotOptimize(batch.ops.back().latency_cycles);
    records += block;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  state.SetLabel(shape_name(shape));
  state.counters["hit_rate"] = cache.stats().hit_rate();
}
BENCHMARK(BM_CacheAccessBatch)
    ->ArgsProduct({{1, 16, 256, 1024}, {kResident, kStreaming}})
    ->Args({256, kCoded})
    ->Args({256, kFaulty})
    ->ArgNames({"block", "shape"});

/// Scalar baseline on the identical stream: what per-record dispatch
/// through the virtual access() looks like (the pre-PR-7 hot loop), on
/// the same shapes as the batch bench above.
void BM_CacheAccessScalar(benchmark::State& state) {
  const std::int64_t shape = state.range(0);
  cache::MainMemory memory;
  Rng rng(7);
  cache::CacheConfig config = shape_config(shape);
  cache::MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  cache::Cache cache(config, terminal, rng);
  if (shape == kFaulty) {
    cache.set_mode(power::Mode::kUle);
  }
  const auto ops = op_stream(4096, shape_footprint(shape));
  for (const cache::BatchOp& op : ops) {
    (void)cache.access(op.addr, op.type, op.store_value);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const cache::BatchOp& op = ops[i];
    benchmark::DoNotOptimize(cache.access(op.addr, op.type, op.store_value));
    i = (i + 1) % ops.size();
  }
  state.SetLabel(shape_name(shape));
  state.counters["hit_rate"] = cache.stats().hit_rate();
}
BENCHMARK(BM_CacheAccessScalar)
    ->Arg(kResident)
    ->Arg(kStreaming)
    ->ArgName("shape");

/// End-to-end replay throughput vs block size: one full run_trace of a
/// BigBench trace per iteration. block=1 is the scalar path; 256 is the
/// kReplayBlockRecords default the tools use.
void BM_ReplayBlockSize(benchmark::State& state) {
  const auto block = static_cast<std::size_t>(state.range(0));
  const auto workload = wl::find_workload("gsm_c").run(1, 1);
  trace::MemoryTraceSource source(workload.tracer);
  sim::SystemConfig config =
      paper_system(yield::Scenario::kA, true, power::Mode::kHp);
  sim::System system(config, sim::cell_plan_for(config.design.scenario));

  std::uint64_t records = 0;
  for (auto _ : state) {
    const cpu::RunResult result = system.run_trace(source, block);
    benchmark::DoNotOptimize(result.cycles);
    records += result.il1.accesses + result.dl1.accesses;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_ReplayBlockSize)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Arg(1024)
    ->ArgName("block")
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  hvc::bench::print_header(
      "BATCH", "block-at-a-time access API vs record-at-a-time scalar");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
