// BATCH — throughput of the block-at-a-time access API (PR 7) against
// the record-at-a-time scalar path it replaces. Two layers:
//   * BM_CacheAccessBatch: raw Cache::access_batch over a hit+miss mix,
//     swept across block sizes (block=1 is the scalar-dispatch shape).
//   * BM_ReplayBlockSize: full System::run_trace replay of a real
//     workload trace, swept across block sizes — the end-to-end number
//     the hvc_explore sweeps and hvc_trace replay see.
// Every block size retires bit-identical results (tests/test_batch.cpp);
// these benches measure only the dispatch-overhead delta.
#include "bench_common.hpp"

#include "hvc/cache/cache.hpp"
#include "hvc/common/rng.hpp"
#include "hvc/trace/trace.hpp"
#include "hvc/workloads/workload.hpp"

namespace {

using namespace hvc;
using namespace hvc::bench;

/// Paper-shaped 8KB 7+1 cache, uncoded at HP: the configuration the
/// inline batched hit path is built for.
[[nodiscard]] cache::CacheConfig hp_config() {
  cache::CacheConfig config;
  config.ways.resize(8);
  for (std::size_t w = 0; w < 8; ++w) {
    config.ways[w].cell = {tech::CellKind::k6T, 1.9};
  }
  config.ways[7].cell = {tech::CellKind::k8T, 2.8};
  config.ways[7].ule_way = true;
  config.ways[7].ule_protection = edc::Protection::kSecded;
  return config;
}

/// Mixed op stream over ~2x the cache footprint; 1 store per 4 ops, 1
/// ifetch per 7 (same mix shape as bench_cache_access).
[[nodiscard]] std::vector<cache::BatchOp> op_stream(std::size_t count) {
  Rng rng(42);
  std::vector<cache::BatchOp> ops(count);
  for (std::size_t i = 0; i < count; ++i) {
    ops[i].addr = (rng.below(2 * 8 * 1024) / 4) * 4;
    ops[i].type = (i % 4 == 3)   ? cache::AccessType::kStore
                  : (i % 7 == 0) ? cache::AccessType::kIfetch
                                 : cache::AccessType::kLoad;
    ops[i].store_value = static_cast<std::uint32_t>(i);
  }
  return ops;
}

void BM_CacheAccessBatch(benchmark::State& state) {
  const auto block = static_cast<std::size_t>(state.range(0));
  cache::MainMemory memory;
  Rng rng(7);
  cache::CacheConfig config = hp_config();
  cache::MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  cache::Cache cache(config, terminal, rng);
  const auto ops = op_stream(4096);

  cache::AccessBatch batch;
  batch.ops.reserve(block);
  std::size_t i = 0;
  std::uint64_t records = 0;
  for (auto _ : state) {
    batch.clear();
    for (std::size_t j = 0; j < block; ++j) {
      const cache::BatchOp& op = ops[i];
      batch.push(op.addr, op.type, op.store_value);
      i = (i + 1) % ops.size();
    }
    cache.access_batch(batch);
    benchmark::DoNotOptimize(batch.ops.back().latency_cycles);
    records += block;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  state.counters["hit_rate"] = cache.stats().hit_rate();
}
BENCHMARK(BM_CacheAccessBatch)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Arg(1024)
    ->ArgName("block");

/// Scalar baseline on the identical stream: what block=1 dispatch cost
/// through the virtual access() looks like (the pre-PR-7 hot loop).
void BM_CacheAccessScalar(benchmark::State& state) {
  cache::MainMemory memory;
  Rng rng(7);
  cache::CacheConfig config = hp_config();
  cache::MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  cache::Cache cache(config, terminal, rng);
  const auto ops = op_stream(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    const cache::BatchOp& op = ops[i];
    benchmark::DoNotOptimize(cache.access(op.addr, op.type, op.store_value));
    i = (i + 1) % ops.size();
  }
  state.counters["hit_rate"] = cache.stats().hit_rate();
}
BENCHMARK(BM_CacheAccessScalar);

/// End-to-end replay throughput vs block size: one full run_trace of a
/// BigBench trace per iteration. block=1 is the scalar path; 256 is the
/// kReplayBlockRecords default the tools use.
void BM_ReplayBlockSize(benchmark::State& state) {
  const auto block = static_cast<std::size_t>(state.range(0));
  const auto workload = wl::find_workload("gsm_c").run(1, 1);
  trace::MemoryTraceSource source(workload.tracer);
  sim::SystemConfig config =
      paper_system(yield::Scenario::kA, true, power::Mode::kHp);
  sim::System system(config, sim::cell_plan_for(config.design.scenario));

  std::uint64_t records = 0;
  for (auto _ : state) {
    const cpu::RunResult result = system.run_trace(source, block);
    benchmark::DoNotOptimize(result.cycles);
    records += result.il1.accesses + result.dl1.accesses;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_ReplayBlockSize)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Arg(1024)
    ->ArgName("block")
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  hvc::bench::print_header(
      "BATCH", "block-at-a-time access API vs record-at-a-time scalar");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
