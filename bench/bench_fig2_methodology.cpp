// TXT1 — Section III-C / Figure 2: the design methodology.
//
// Reproduces the paper's sizing example ("to have a 99% yield for an 8KB
// cache, faulty bit rate Pf must be 1.22e-6") and prints the Fig. 2 loop
// trace: 10T sized at 350 mV to match the 6T Pf, then 8T grown from
// minimum size until the EDC-protected yield reaches Y10T.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "hvc/common/rng.hpp"
#include "hvc/tech/sram_cell.hpp"
#include "hvc/yield/methodology.hpp"
#include "hvc/yield/pfail.hpp"

namespace {

using namespace hvc;

void reproduce_methodology() {
  std::printf("=====================================================\n");
  std::printf("TXT1/FIG2 — design methodology (Section III-C)\n");
  std::printf("=====================================================\n");

  for (const auto scenario : {yield::Scenario::kA, yield::Scenario::kB}) {
    const yield::CacheCellPlan plan = yield::run_methodology(scenario);
    std::printf("\nScenario %s @ HP %.2fV / ULE %.2fV\n",
                yield::to_string(scenario), plan.hp_vcc, plan.ule_vcc);
    std::printf("Pf target for 99%% yield over the 1KB way: %.3g "
                "(paper: 1.22e-6)\n",
                plan.target_pf);
    std::printf("  6T HP cell : %-10s Pf=%.3g\n",
                plan.hp_6t.cell.to_string().c_str(), plan.hp_6t.pf);
    std::printf("  10T ULE cell (matches 6T Pf at NST): %-10s Pf=%.3g "
                "yield=%.4f area=%.0f F^2\n",
                plan.baseline_10t.cell.to_string().c_str(),
                plan.baseline_10t.pf, plan.baseline_10t.yield,
                tech::cell_area_f2(plan.baseline_10t.cell));
    std::printf("  8T+EDC sizing loop (Fig. 2):\n");
    std::printf("    %8s %12s %12s\n", "size", "Pf8T", "yield");
    const auto& steps = plan.proposed_8t.steps;
    // Print first steps, every few middle steps, and the last.
    for (std::size_t i = 0; i < steps.size(); ++i) {
      if (i < 3 || i + 2 >= steps.size() || i % 8 == 0) {
        std::printf("    %8.2f %12.3e %12.6f%s\n", steps[i].size, steps[i].pf,
                    steps[i].yield,
                    i + 1 == steps.size() ? "  <- Y >= Y10T: stop" : "");
      }
    }
    std::printf("  8T ULE cell: %-10s Pf=%.3g yield=%.4f area=%.0f F^2\n",
                plan.proposed_8t.cell.to_string().c_str(), plan.proposed_8t.pf,
                plan.proposed_8t.yield,
                tech::cell_area_f2(plan.proposed_8t.cell));
    const double cell_ratio = tech::cell_area_f2(plan.proposed_8t.cell) /
                              tech::cell_area_f2(plan.baseline_10t.cell);
    std::printf("  8T/10T cell area ratio: %.2f (with check bits: %.2f)\n",
                cell_ratio, cell_ratio * 39.0 / 32.0);
  }

  // Cross-check the analytic Pf of the sized cells with the Chen-style
  // importance sampler (the paper's reference [6]).
  std::printf("\nImportance-sampling cross-check of the sized cells:\n");
  const yield::CacheCellPlan plan = yield::run_methodology(yield::Scenario::kA);
  Rng rng(2024);
  for (const auto* sizing :
       {&plan.baseline_10t, &plan.proposed_8t}) {
    Rng fork = rng.fork(static_cast<std::uint64_t>(sizing->cell.kind));
    const auto estimate =
        yield::importance_sample_pfail(sizing->cell, 0.35, fork, 60000);
    std::printf("  %-10s analytic Pf=%.3e  IS Pf=%.3e (+-%.1e)\n",
                sizing->cell.to_string().c_str(), sizing->pf, estimate.pf,
                estimate.stderr_pf);
  }
}

void BM_MethodologyScenarioA(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(yield::run_methodology(yield::Scenario::kA));
  }
}
BENCHMARK(BM_MethodologyScenarioA);

void BM_ImportanceSampling10k(benchmark::State& state) {
  Rng rng(7);
  const tech::CellDesign cell{tech::CellKind::k8T, 2.8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        yield::importance_sample_pfail(cell, 0.35, rng, 10000));
  }
}
BENCHMARK(BM_ImportanceSampling10k);

}  // namespace

int main(int argc, char** argv) {
  reproduce_methodology();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
