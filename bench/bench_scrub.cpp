// ABL3 — Extension ablation: soft-error scrubbing.
//
// The paper handles soft errors by code strength (scenario B's DECTED);
// an alternative (or complement) is periodic scrubbing, which clears
// accumulated correctable errors before a second strike lands in the same
// word. This bench quantifies the trade-off with the analytic Poisson
// model (hvc::yield::soft_reliability) and with live fault injection in
// the bit-accurate cache.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "hvc/cache/cache.hpp"
#include "hvc/common/rng.hpp"
#include "hvc/common/units.hpp"
#include "hvc/tech/sram_cell.hpp"
#include "hvc/yield/soft_reliability.hpp"

namespace {

using namespace hvc;

void analytic_table() {
  std::printf("=====================================================\n");
  std::printf("ABL3 — soft-error accumulation vs scrub interval\n");
  std::printf("=====================================================\n");

  // SER of the sized 8T cell at 350 mV (per bit per second), plus an
  // accelerated rate representing a harsh radiation environment.
  const tech::CellDesign cell{tech::CellKind::k8T, 2.8};
  const double ser_nominal = tech::soft_error_rate_per_bit(cell, 0.35);
  std::printf("sized 8T cell SER at 350 mV: %.3e errors/bit/s\n", ser_nominal);

  // One ULE way: 256 data words of 39 bits (SECDED) or 45 bits (DECTED).
  const yield::SoftWordClass secded_clean{256, 39, 1};
  const yield::SoftWordClass dected_clean{256, 45, 2};
  // A word already holding one manifested hard fault loses one correction.
  const yield::SoftWordClass secded_faulty{1, 39, 0};
  const yield::SoftWordClass dected_faulty{1, 45, 1};

  for (const double ser : {ser_nominal, 1e-9}) {
    std::printf("\nSER = %.1e errors/bit/s%s\n", ser,
                ser == ser_nominal ? " (nominal)" : " (accelerated)");
    std::printf("%14s | %13s %13s | %14s %14s\n", "scrub interval",
                "SECDED MTTF", "DECTED MTTF", "SECDED+hf MTTF",
                "DECTED+hf MTTF");
    for (const double interval : {1.0, 3600.0, 86400.0, 1e6}) {
      std::printf("%12.0f s | %13.2e %13.2e | %14.2e %14.2e\n", interval,
                  yield::mttf_seconds(secded_clean, ser, interval),
                  yield::mttf_seconds(dected_clean, ser, interval),
                  yield::mttf_seconds(secded_faulty, ser, interval),
                  yield::mttf_seconds(dected_faulty, ser, interval));
    }
  }
  std::printf("(+hf = the one word containing a hard fault; scenario B's\n"
              " DECTED keeps even that word correctable between scrubs,\n"
              " and shorter scrub intervals multiply every MTTF)\n");
}

void live_injection() {
  std::printf("\nLive fault-injection: exaggerated SER, 10 epochs of 5s\n");
  std::printf("%10s | %12s %14s %14s\n", "scrub?", "injected", "corrected",
              "uncorrectable");
  for (const bool with_scrub : {false, true}) {
    cache::CacheConfig config;
    config.ways.resize(8);
    for (std::size_t w = 0; w < 7; ++w) {
      config.ways[w].cell = {tech::CellKind::k6T, 1.9};
    }
    config.ways[7].ule_way = true;
    config.ways[7].cell = {tech::CellKind::k8T, 2.8};
    config.ways[7].ule_protection = edc::Protection::kSecded;
    cache::MainMemory memory;
    Rng rng(99);
    cache::MainMemoryLevel terminal(memory, config.memory_latency_cycles);
    cache::Cache cache(config, terminal, rng);
    cache.set_mode(power::Mode::kUle);
    for (std::uint64_t a = 0; a < 1024; a += 4) {
      memory.write_word(a, static_cast<std::uint32_t>(a + 3));
    }
    for (std::uint64_t a = 0; a < 1024; a += 4) {
      (void)cache.access(a, cache::AccessType::kLoad);
    }
    cache.enable_soft_errors(7, 2e-4);
    std::size_t corrected = 0;
    for (int epoch = 0; epoch < 10; ++epoch) {
      cache.advance_time(5.0);
      if (with_scrub) {
        corrected += cache.scrub().bits_corrected;
      }
    }
    // Final read sweep: remaining single errors corrected inline.
    for (std::uint64_t a = 0; a < 1024; a += 4) {
      (void)cache.access(a, cache::AccessType::kLoad);
    }
    const auto& stats = cache.stats();
    std::printf("%10s | %12llu %14llu %14llu\n", with_scrub ? "yes" : "no",
                static_cast<unsigned long long>(stats.soft_errors_injected),
                static_cast<unsigned long long>(stats.edc_corrections),
                static_cast<unsigned long long>(stats.edc_detected));
  }
  std::printf("(expected: with scrubbing, uncorrectable events drop to ~0)\n");
}

void BM_ScrubPass(benchmark::State& state) {
  cache::CacheConfig config;
  config.ways.resize(8);
  for (std::size_t w = 0; w < 7; ++w) {
    config.ways[w].cell = {tech::CellKind::k6T, 1.9};
  }
  config.ways[7].ule_way = true;
  config.ways[7].cell = {tech::CellKind::k8T, 2.8};
  config.ways[7].ule_protection = edc::Protection::kSecded;
  cache::MainMemory memory;
  Rng rng(1);
  cache::MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  cache::Cache cache(config, terminal, rng);
  cache.set_mode(power::Mode::kUle);
  for (std::uint64_t a = 0; a < 1024; a += 4) {
    (void)cache.access(a, cache::AccessType::kLoad);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.scrub());
  }
}
BENCHMARK(BM_ScrubPass)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  analytic_table();
  live_injection();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
