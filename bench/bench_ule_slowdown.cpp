// TXT2 — Section IV-B2: execution-time increase at ULE mode from the
// one-cycle EDC encode/decode latency (paper: ~3% in all cases).
#include "bench_common.hpp"

#include "hvc/workloads/workload.hpp"

namespace {

using namespace hvc;
using namespace hvc::bench;

void reproduce_slowdown() {
  print_header("TXT2", "ULE-mode execution time increase from EDC latency");
  std::printf("%-10s %18s %18s %10s\n", "workload", "baseline cycles",
              "proposed cycles", "slowdown");
  for (const auto scenario : {yield::Scenario::kA, yield::Scenario::kB}) {
    std::printf("Scenario %s:\n", yield::to_string(scenario));
    for (const auto& name : wl::names_of(wl::BenchClass::kSmall)) {
      const auto base = run_point(scenario, false, power::Mode::kUle, name);
      const auto prop = run_point(scenario, true, power::Mode::kUle, name);
      const double slowdown = static_cast<double>(prop.cycles) /
                                  static_cast<double>(base.cycles) -
                              1.0;
      std::printf("%-10s %18llu %18llu %+9.2f%%\n", name.c_str(),
                  static_cast<unsigned long long>(base.cycles),
                  static_cast<unsigned long long>(prop.cycles),
                  slowdown * 100.0);
    }
  }
  std::printf("(paper: ~3%% where the baseline has no EDC cycle; scenario B\n"
              " baseline already pays the SECDED cycle, so the relative\n"
              " slowdown there is ~0)\n");
}

void BM_UleRunAdpcm(benchmark::State& state) {
  sim::SystemConfig config =
      paper_system(yield::Scenario::kA, true, power::Mode::kUle);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_one(config, "adpcm_d"));
  }
}
BENCHMARK(BM_UleRunAdpcm)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_slowdown();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
