// FIG3 — Figure 3 of the paper: normalized average EPI breakdowns at HP
// mode for scenarios A and B (baseline vs proposed), BigBench workloads.
//
// Paper result: proposed saves 14% (A) / 12% (B) average EPI at HP mode
// with no performance degradation; savings come from the smaller 8T cells
// replacing the NST-sized 10T cells in the ULE way.
#include "bench_common.hpp"

#include "hvc/workloads/workload.hpp"

namespace {

using namespace hvc;
using namespace hvc::bench;

void reproduce_fig3() {
  print_header("FIG3", "normalized average EPI at HP mode (BigBench)");
  const auto names = wl::names_of(wl::BenchClass::kBig);

  for (const auto scenario : {yield::Scenario::kA, yield::Scenario::kB}) {
    cpu::RunResult base_sum, prop_sum;
    double base_epi = 0.0, prop_epi = 0.0;
    sim::EpiBreakdown base_bd{}, prop_bd{};
    double base_cpi = 0.0, prop_cpi = 0.0;
    for (const auto& name : names) {
      const auto base = run_point(scenario, false, power::Mode::kHp, name);
      const auto prop = run_point(scenario, true, power::Mode::kHp, name);
      base_epi += base.epi();
      prop_epi += prop.epi();
      const auto bb = sim::epi_breakdown(base);
      const auto pb = sim::epi_breakdown(prop);
      base_bd.l1_dynamic += bb.l1_dynamic;
      base_bd.l1_leakage += bb.l1_leakage;
      base_bd.l1_edc += bb.l1_edc;
      base_bd.core_other += bb.core_other;
      prop_bd.l1_dynamic += pb.l1_dynamic;
      prop_bd.l1_leakage += pb.l1_leakage;
      prop_bd.l1_edc += pb.l1_edc;
      prop_bd.core_other += pb.core_other;
      base_cpi += base.cpi();
      prop_cpi += prop.cpi();
    }
    const auto n = static_cast<double>(names.size());
    base_bd /= base_epi;  // normalize: baseline average total = 1.0
    prop_bd /= base_epi;

    std::printf("\nScenario %s (baseline %s, proposed %s)\n",
                yield::to_string(scenario),
                scenario == yield::Scenario::kA ? "6T+10T"
                                                : "6T+SECDED+10T+SECDED",
                scenario == yield::Scenario::kA ? "6T+8T (SECDED off at HP)"
                                                : "6T+SECDED+8T+SECDED");
    std::vector<NormalizedRow> rows;
    rows.push_back({"baseline (avg BigBench)", base_bd, base_cpi / n});
    rows.push_back({"proposed (avg BigBench)", prop_bd, prop_cpi / n});
    print_normalized_rows(rows);
    std::printf("average EPI saving: %.1f%%  (paper: %s)\n",
                (1.0 - prop_epi / base_epi) * 100.0,
                scenario == yield::Scenario::kA ? "14%" : "12%");
    std::printf("performance change: %+.2f%% (paper: none at HP)\n",
                (prop_cpi / base_cpi - 1.0) * 100.0);
  }
}

void BM_HpLookup(benchmark::State& state) {
  // Microbenchmark: simulated HP-mode access on the proposed cache.
  cache::MainMemory memory;
  Rng rng(1);
  sim::SystemConfig config =
      paper_system(yield::Scenario::kA, true, power::Mode::kHp);
  sim::System system(config, sim::cell_plan_for(yield::Scenario::kA));
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        system.dl1().access(addr, cache::AccessType::kLoad));
    addr = (addr + 4) % 8192;
  }
}
BENCHMARK(BM_HpLookup);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
