// FIG4 — Figure 4 of the paper: normalized EPI breakdowns at ULE mode per
// benchmark for scenarios A and B (SmallBench workloads).
//
// Paper result: 42% (A) / 39% (B) average EPI reduction; relative leakage
// savings exceed dynamic savings; ~3% execution-time increase from the
// extra EDC cycle.
#include "bench_common.hpp"

#include "hvc/workloads/workload.hpp"

namespace {

using namespace hvc;
using namespace hvc::bench;

void reproduce_fig4() {
  print_header("FIG4", "normalized EPI breakdowns at ULE mode (SmallBench)");
  const auto names = wl::names_of(wl::BenchClass::kSmall);

  for (const auto scenario : {yield::Scenario::kA, yield::Scenario::kB}) {
    std::printf("\nScenario %s (ULE way: baseline %s -> proposed %s)\n",
                yield::to_string(scenario),
                scenario == yield::Scenario::kA ? "10T" : "10T+SECDED",
                scenario == yield::Scenario::kA ? "8T+SECDED" : "8T+DECTED");
    std::vector<NormalizedRow> rows;
    double saving_sum = 0.0;
    double slowdown_sum = 0.0;
    double dyn_saving_sum = 0.0;
    double leak_saving_sum = 0.0;
    for (const auto& name : names) {
      const auto base = run_point(scenario, false, power::Mode::kUle, name);
      const auto prop = run_point(scenario, true, power::Mode::kUle, name);
      rows.push_back(normalized_row(name + "/baseline", base, base.epi()));
      rows.push_back(normalized_row(name + "/proposed", prop, base.epi()));
      saving_sum += 1.0 - prop.epi() / base.epi();
      slowdown_sum += static_cast<double>(prop.cycles) /
                          static_cast<double>(base.cycles) -
                      1.0;
      const auto bb = sim::epi_breakdown(base);
      const auto pb = sim::epi_breakdown(prop);
      dyn_saving_sum += 1.0 - pb.l1_dynamic / bb.l1_dynamic;
      leak_saving_sum += 1.0 - pb.l1_leakage / bb.l1_leakage;
    }
    print_normalized_rows(rows);
    const auto n = static_cast<double>(names.size());
    std::printf("average EPI saving: %.1f%% (paper: %s)\n",
                saving_sum / n * 100.0,
                scenario == yield::Scenario::kA ? "42%" : "39%");
    std::printf("L1 dynamic saving %.1f%% vs L1 leakage saving %.1f%% "
                "(paper: leakage savings larger)\n",
                dyn_saving_sum / n * 100.0, leak_saving_sum / n * 100.0);
    std::printf("execution time increase: %.2f%% (paper: ~3%%)\n",
                slowdown_sum / n * 100.0);
  }
}

void BM_UleLookupWithEdc(benchmark::State& state) {
  sim::SystemConfig config =
      paper_system(yield::Scenario::kA, true, power::Mode::kUle);
  sim::System system(config, sim::cell_plan_for(yield::Scenario::kA));
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        system.dl1().access(addr, cache::AccessType::kLoad));
    addr = (addr + 4) % 1024;  // stay in the single ULE way
  }
}
BENCHMARK(BM_UleLookupWithEdc);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
