// In-order single-issue core model (MPSim + Wattch substitution).
//
// The paper models "a very simple processor architecture with one core and
// in-order execution" resembling Intel's wide-operating-range IA-32 chip
// (Jain et al., ISSCC 2012), with full-chip power from MPSim extended with
// Wattch-style models and the modified CACTI for all SRAM arrays.
//
// Timing: scalar in-order pipeline, base CPI of 1.
//   * IL1/DL1 hits are pipelined; misses stall for the full memory latency.
//   * The 1-cycle EDC decode lengthens the load-to-use path and the fetch
//     redirect path, so it costs cycles only on taken branches and on a
//     fraction of loads whose consumer is adjacent (paper IV-B2 reports
//     ~3% at ULE mode).
// Energy (Wattch-style, per structure):
//   * L1 caches: event energies + leakage from hvc::cache/hvc::power.
//   * Register file and TLBs: 10T SRAM arrays (the paper keeps every
//     non-L1 array in 10T so it works at any voltage).
//   * Core logic (fetch/decode/ALU/bypass/clock): switched-capacitance
//     per instruction + leakage, from the technology model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hvc/cache/cache.hpp"
#include "hvc/cache/memory_level.hpp"
#include "hvc/common/stats.hpp"
#include "hvc/power/array.hpp"
#include "hvc/trace/trace.hpp"

namespace hvc::cpu {

/// Microarchitectural timing/energy knobs.
struct CoreParams {
  /// Probability that a load's consumer issues next cycle (load-to-use
  /// stall shows the extra EDC cycle).
  double load_use_adjacent_prob = 0.12;
  /// Probability that a taken branch pays the fetch-redirect penalty
  /// (the remainder is hidden by the BTB / sequential prefetch).
  double redirect_on_taken = 0.5;
  /// Switched capacitance per executed instruction for the core logic
  /// (fetch/decode/issue/ALU/bypass/clock), in farads. Small: the paper's
  /// core is a minimal in-order machine where caches dominate chip energy.
  double core_cap_per_instr_f = 3.5e-13;
  /// Core logic leakage: equivalent leaking transistor width in um.
  double core_leak_width_um = 120.0;
  /// 10T cell sizing for the non-L1 arrays (regfile, TLBs); the paper
  /// sizes them to work at any operating voltage.
  tech::CellDesign array_cell{tech::CellKind::k10T, 3.5};
};

/// The core's connections into the memory hierarchy: the two first-level
/// caches it issues accesses to, plus the deeper shared levels behind them
/// (e.g. a shared L2, then the memory terminal) in front-to-back order.
/// Shared levels are cleared at run start and reported per level in
/// RunResult::levels; their dynamic/EDC/leakage energy is rolled into the
/// run's Breakdown under "<name>.dynamic" / "<name>.edc" / "<name>.leakage"
/// keys (name lowercased, zero entries omitted).
struct MemoryPorts {
  cache::Cache* il1 = nullptr;
  cache::Cache* dl1 = nullptr;
  std::vector<cache::MemoryLevel*> shared;
};

/// Lowercased energy-category prefix of a hierarchy level ("L2" -> "l2").
[[nodiscard]] std::string level_energy_prefix(const std::string& level_name);

/// Folds one shared level's snapshot into an energy breakdown under
/// "<prefix>.{dynamic,edc,leakage}" keys (leakage integrated over
/// `seconds`), omitting zero entries so L1-only breakdowns keep exactly
/// their historical categories. Shared by Core::finish_run and the
/// multi-core aggregate (sim::System::run_mix).
void add_shared_level_energy(Breakdown& energy,
                             const cache::LevelStats& stats, double seconds);

/// Result of replaying one trace.
struct RunResult {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  double seconds = 0.0;
  /// Energy breakdown in joules. Categories:
  ///   "l1.dynamic", "l1.leakage", "l1.edc",
  ///   "arrays.dynamic", "arrays.leakage", "core.dynamic", "core.leakage"
  /// plus "l2.*" (and analogous) entries when shared levels are present.
  Breakdown energy;
  cache::CacheStats il1;
  cache::CacheStats dl1;
  /// Per-level snapshot of the whole hierarchy for this run: IL1, DL1,
  /// then every shared level (L2, MEM, ...) in MemoryPorts order. Every
  /// hierarchy shape ends in an explicit terminal owned by sim::System,
  /// so the "MEM" row is always present.
  std::vector<cache::LevelStats> levels;

  /// Stats of the level named `name` ("L2", "MEM", ...); nullptr when the
  /// run's hierarchy has no such level.
  [[nodiscard]] const cache::LevelStats* level(const std::string& name) const;

  [[nodiscard]] double total_energy() const noexcept { return energy.total(); }
  /// Energy per instruction (J) — the paper's EPI metric.
  [[nodiscard]] double epi() const noexcept {
    return instructions == 0
               ? 0.0
               : energy.total() / static_cast<double>(instructions);
  }
  [[nodiscard]] double cpi() const noexcept {
    return instructions == 0
               ? 0.0
               : static_cast<double>(cycles) /
                     static_cast<double>(instructions);
  }
};

/// Per-phase wall-time breakdown of one streaming replay (hvc_trace
/// replay --profile): where the run() loop actually spent its time, so
/// perf regressions can be attributed without a profiler. decode covers
/// TraceSource::next_batch (varint decode / record copy), access covers
/// step_batch (the cache/pipeline model), retire covers begin_run,
/// counter clears and the finish_run roll-up.
struct ReplayProfile {
  double decode_s = 0.0;
  double access_s = 0.0;
  double retire_s = 0.0;
  std::uint64_t records = 0;
  std::uint64_t blocks = 0;

  [[nodiscard]] double total_s() const noexcept {
    return decode_s + access_s + retire_s;
  }
};

/// The core: owns the non-L1 arrays, borrows the memory hierarchy.
class Core {
 public:
  Core(CoreParams params, MemoryPorts ports, power::OperatingPoint op,
       const tech::TechNode& node = tech::node32());

  /// Two-level convenience (L1s straight to memory, no shared levels).
  Core(CoreParams params, cache::Cache& il1, cache::Cache& dl1,
       power::OperatingPoint op, const tech::TechNode& node = tech::node32());

  /// Replays a trace through the pipeline model. Cache stats/energy are
  /// deltas for this run only (internally snapshotted).
  [[nodiscard]] RunResult run(const trace::Tracer& tracer);

  /// Streaming replay: pulls records from `source` in blocks of
  /// `block_records` (1 = the legacy record-at-a-time loop), so the
  /// memory held during the run is the source's own window plus one
  /// block (an on-disk trace of any length replays in O(1) memory). The
  /// source is reset() first; replaying the same source twice — or with
  /// any other block size — gives bit-identical results.
  [[nodiscard]] RunResult run(trace::TraceSource& source,
                              std::size_t block_records =
                                  trace::kReplayBlockRecords);

  /// run() with per-phase wall-clock timing accumulated into `profile`
  /// (timers wrap each decode/access/retire section, so the replay
  /// result itself stays bit-identical to the untimed run).
  [[nodiscard]] RunResult run_profiled(trace::TraceSource& source,
                                       std::size_t block_records,
                                       ReplayProfile& profile);

  // --- incremental replay (multi-core interleaving) ---
  // run() is begin_run() + step() per record + finish_run(); a round-robin
  // interleaver (sim::System::run_mix) drives several cores' states through
  // the same per-record code, so a one-core interleaved run is bit-identical
  // to run().

  /// Mutable state of one in-flight replay.
  struct RunState {
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double arrays_dynamic = 0.0;
    double core_dynamic = 0.0;
  };

  /// Clears this core's own L1 stats/energy for a fresh replay and
  /// re-seeds the load-use/redirect Bernoulli stream, so every run starts
  /// at the same RNG phase: back-to-back runs on one System reproduce a
  /// fresh System, and rebuilding cores mid-sequence (mode switches)
  /// cannot silently shift the stream. Shared levels are NOT cleared
  /// here: run() clears them itself, and a multi-core driver clears them
  /// once for all cores.
  void begin_run();

  /// Replays one trace record against the pipeline/energy model.
  void step(const trace::Record& record, RunState& state);

  /// step() with the L1 lookup routed through Cache::access_batched —
  /// identical arithmetic, no virtual dispatch on the hit path. The
  /// multi-core interleaver (sim::System::run_mix) steps this per
  /// record so blocked replay keeps the exact scalar round order.
  /// Defined inline below so that per-record loop pays no cross-TU call.
  void step_fast(const trace::Record& record, RunState& state);

  /// Replays a block of records through the batched L1 entry points
  /// (cache::Cache::access_batched). Records are stepped strictly in
  /// order — IL1 and DL1 share the next level and the Bernoulli stream
  /// is consumed per record — so the result is bit-identical to
  /// `count` step() calls; the win is the devirtualized, division-free
  /// cache fast path under each record.
  void step_batch(const trace::Record* records, std::size_t count,
                  RunState& state);

  /// Rolls the finished state up into a RunResult. With `include_shared`
  /// the shared levels' energy/stats are folded in (single-core run());
  /// a multi-core driver passes false and accounts shared levels once.
  [[nodiscard]] RunResult finish_run(const RunState& state,
                                     bool include_shared = true) const;

  [[nodiscard]] const power::OperatingPoint& op() const noexcept {
    return op_;
  }

  /// Static power of core logic + non-L1 arrays (W).
  [[nodiscard]] double core_leakage_w() const noexcept;
  /// Static power of the non-L1 arrays alone (regfile + TLBs), W — the
  /// "arrays.leakage" share of core_leakage_w().
  [[nodiscard]] double arrays_leakage_w() const noexcept;
  /// Static power of the core logic alone, W — the "core.leakage" share.
  [[nodiscard]] double logic_leakage_w() const noexcept {
    return core_leak_w_;
  }

 private:
  /// Per-replay constants, captured by begin_run() (hit latencies depend
  /// on the caches' current mode).
  struct RunConsts {
    double core_energy_per_instr = 0.0;
    double rf_read = 0.0;
    double rf_write = 0.0;
    double tlb_read = 0.0;
    std::size_t il1_hit = 0;
    std::size_t dl1_hit = 0;
  };

  /// Seed of the load-use/redirect Bernoulli stream; begin_run() re-seeds
  /// with it so every replay starts at the same phase.
  static constexpr std::uint64_t kBernoulliSeed = 0xC0DE;

  CoreParams params_;
  MemoryPorts ports_;
  power::OperatingPoint op_;
  const tech::TechNode& node_;
  std::unique_ptr<power::ArrayModel> regfile_;
  std::unique_ptr<power::ArrayModel> itlb_;
  std::unique_ptr<power::ArrayModel> dtlb_;
  double core_leak_w_ = 0.0;
  Rng rng_;
  RunConsts consts_;
};

// Defined here (not in core.cpp) so the replay drivers — Core::run's
// block loop and the multi-core interleaver in sim::System, which steps
// one record per core per round — inline the whole per-record pipeline
// model together with the cache's inline access_batched. The arithmetic
// is EXACTLY step(): only the L1 dispatch differs.
inline void Core::step_fast(const trace::Record& record, RunState& state) {
  cache::Cache& il1_ = *ports_.il1;
  cache::Cache& dl1_ = *ports_.dl1;
  bool hit = false;
  std::uint32_t latency = 0;
  switch (record.kind) {
    case trace::Kind::kIfetch: {
      ++state.instructions;
      ++state.cycles;  // base CPI 1 with pipelined fetch
      il1_.access_batched(record.addr, cache::AccessType::kIfetch, 0, hit,
                          latency);
      if (!hit) {
        state.cycles += latency - consts_.il1_hit;  // miss stall
      }
      state.arrays_dynamic += consts_.tlb_read;  // ITLB lookup
      state.arrays_dynamic +=
          2.0 * consts_.rf_read + consts_.rf_write;  // operand read/writeback
      state.core_dynamic += consts_.core_energy_per_instr;
      break;
    }
    case trace::Kind::kLoad: {
      dl1_.access_batched(record.addr, cache::AccessType::kLoad, 0, hit,
                          latency);
      if (!hit) {
        state.cycles += latency - consts_.dl1_hit;
      }
      if (consts_.dl1_hit > 1 &&
          rng_.bernoulli(params_.load_use_adjacent_prob)) {
        state.cycles += consts_.dl1_hit - 1;
      }
      state.arrays_dynamic += consts_.tlb_read;  // DTLB
      break;
    }
    case trace::Kind::kStore: {
      dl1_.access_batched(record.addr, cache::AccessType::kStore, 0, hit,
                          latency);
      if (!hit) {
        state.cycles += latency - consts_.dl1_hit;
      }
      state.arrays_dynamic += consts_.tlb_read;
      break;
    }
    case trace::Kind::kBranch: {
      if (record.taken && consts_.il1_hit > 1 &&
          rng_.bernoulli(params_.redirect_on_taken)) {
        state.cycles += consts_.il1_hit - 1;
      }
      break;
    }
  }
}

inline void Core::step_batch(const trace::Record* records, std::size_t count,
                             RunState& state) {
  // Strictly in record order: IL1 and DL1 share the next level, and the
  // Bernoulli stream is consumed per load/branch — any per-cache
  // sub-batching would reorder state the scalar path sees.
  for (std::size_t i = 0; i < count; ++i) {
    step_fast(records[i], state);
  }
}

}  // namespace hvc::cpu
