#include "hvc/cpu/core.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <utility>

#include "hvc/common/error.hpp"
#include "hvc/tech/transistor.hpp"

namespace hvc::cpu {

std::string level_energy_prefix(const std::string& level_name) {
  std::string out = level_name;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

void add_shared_level_energy(Breakdown& energy,
                             const cache::LevelStats& stats, double seconds) {
  const std::string prefix = level_energy_prefix(stats.name);
  if (stats.dynamic_energy_j != 0.0) {
    energy.add(prefix + ".dynamic", stats.dynamic_energy_j);
  }
  if (stats.edc_energy_j != 0.0) {
    energy.add(prefix + ".edc", stats.edc_energy_j);
  }
  if (stats.leakage_w != 0.0) {
    energy.add(prefix + ".leakage", stats.leakage_w * seconds);
  }
}

const cache::LevelStats* RunResult::level(const std::string& name) const {
  for (const auto& entry : levels) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

Core::Core(CoreParams params, cache::Cache& il1, cache::Cache& dl1,
           power::OperatingPoint op, const tech::TechNode& node)
    : Core(params, MemoryPorts{&il1, &dl1, {}}, op, node) {}

Core::Core(CoreParams params, MemoryPorts ports, power::OperatingPoint op,
           const tech::TechNode& node)
    : params_(params), ports_(std::move(ports)), op_(op), node_(node),
      rng_(kBernoulliSeed) {
  expects(ports_.il1 != nullptr && ports_.dl1 != nullptr,
          "core needs both L1 ports connected");
  // Register file: 32 x 32-bit, 10T (works at any Vcc).
  power::ArrayGeometry rf_geom{32, 32, 32};
  regfile_ = std::make_unique<power::ArrayModel>(rf_geom, params_.array_cell,
                                                 op_.vcc, node_);
  // TLBs: 8 entries x ~48 bits (VPN+PPN+flags) — tiny, sensor-class MMU.
  power::ArrayGeometry tlb_geom{8, 48, 48};
  itlb_ = std::make_unique<power::ArrayModel>(tlb_geom, params_.array_cell,
                                              op_.vcc, node_);
  dtlb_ = std::make_unique<power::ArrayModel>(tlb_geom, params_.array_cell,
                                              op_.vcc, node_);

  const tech::TransistorModel model(node_);
  const tech::Device leak_dev{params_.core_leak_width_um * 1e3 /
                              node_.min_width_nm};
  core_leak_w_ = model.ioff(leak_dev, op_.vcc) * op_.vcc;
}

double Core::core_leakage_w() const noexcept {
  return core_leak_w_ + regfile_->leakage_power() + itlb_->leakage_power() +
         dtlb_->leakage_power();
}

double Core::arrays_leakage_w() const noexcept {
  return regfile_->leakage_power() + itlb_->leakage_power() +
         dtlb_->leakage_power();
}

void Core::begin_run() {
  // Restart the load-use/redirect Bernoulli stream at a fixed phase.
  // Without this, a second run on the same System continues mid-stream
  // and diverges from a fresh System — silent nondeterminism that would
  // poison any trace-vs-live differential comparison.
  rng_ = Rng(kBernoulliSeed);
  // Snapshot cache energy so this run reports deltas.
  ports_.il1->clear_energy();
  ports_.dl1->clear_energy();
  ports_.il1->clear_stats();
  ports_.dl1->clear_stats();

  consts_.core_energy_per_instr =
      params_.core_cap_per_instr_f * op_.vcc * op_.vcc;
  consts_.rf_read = regfile_->read_energy();
  consts_.rf_write = regfile_->write_energy();
  consts_.tlb_read = itlb_->read_energy();
  consts_.il1_hit = ports_.il1->hit_latency();
  consts_.dl1_hit = ports_.dl1->hit_latency();
}

void Core::step(const trace::Record& record, RunState& state) {
  cache::Cache& il1_ = *ports_.il1;
  cache::Cache& dl1_ = *ports_.dl1;
  switch (record.kind) {
    case trace::Kind::kIfetch: {
      ++state.instructions;
      ++state.cycles;  // base CPI 1 with pipelined fetch
      const auto access = il1_.access(record.addr, cache::AccessType::kIfetch);
      if (!access.hit) {
        state.cycles += access.latency_cycles - consts_.il1_hit;  // miss stall
      }
      state.arrays_dynamic += consts_.tlb_read;  // ITLB lookup
      state.arrays_dynamic +=
          2.0 * consts_.rf_read + consts_.rf_write;  // operand read/writeback
      state.core_dynamic += consts_.core_energy_per_instr;
      break;
    }
    case trace::Kind::kLoad: {
      const auto access = dl1_.access(record.addr, cache::AccessType::kLoad);
      if (!access.hit) {
        state.cycles += access.latency_cycles - consts_.dl1_hit;
      }
      // Load-to-use: with probability p the consumer is adjacent and
      // exposes the (hit latency - 1) bubble, including the EDC cycle.
      if (consts_.dl1_hit > 1 &&
          rng_.bernoulli(params_.load_use_adjacent_prob)) {
        state.cycles += consts_.dl1_hit - 1;
      }
      state.arrays_dynamic += consts_.tlb_read;  // DTLB
      break;
    }
    case trace::Kind::kStore: {
      const auto access = dl1_.access(record.addr, cache::AccessType::kStore);
      if (!access.hit) {
        state.cycles += access.latency_cycles - consts_.dl1_hit;
      }
      state.arrays_dynamic += consts_.tlb_read;
      break;
    }
    case trace::Kind::kBranch: {
      if (record.taken && consts_.il1_hit > 1 &&
          rng_.bernoulli(params_.redirect_on_taken)) {
        // Fetch redirect: the next fetch waits for the full IL1 hit
        // latency (incl. the EDC cycle) instead of overlapping.
        state.cycles += consts_.il1_hit - 1;
      }
      break;
    }
  }
}

RunResult Core::run(const trace::Tracer& tracer) {
  trace::MemoryTraceSource source(tracer);
  return run(source);
}

RunResult Core::run(trace::TraceSource& source, std::size_t block_records) {
  expects(block_records > 0, "block_records must be at least 1");
  source.reset();
  begin_run();
  for (cache::MemoryLevel* level : ports_.shared) {
    level->clear_level_counters();
  }
  RunState state;
  if (block_records == 1) {
    trace::Record record;
    while (source.next(record)) {
      step(record, state);
    }
  } else {
    std::vector<trace::Record> block(block_records);
    std::size_t got = 0;
    while ((got = source.next_batch(block.data(), block.size())) > 0) {
      step_batch(block.data(), got, state);
    }
  }
  return finish_run(state);
}

RunResult Core::run_profiled(trace::TraceSource& source,
                             std::size_t block_records,
                             ReplayProfile& profile) {
  expects(block_records > 0, "block_records must be at least 1");
  using clock = std::chrono::steady_clock;
  const auto seconds = [](clock::time_point a, clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };

  auto t0 = clock::now();
  source.reset();
  begin_run();
  for (cache::MemoryLevel* level : ports_.shared) {
    level->clear_level_counters();
  }
  auto t1 = clock::now();
  profile.retire_s += seconds(t0, t1);

  RunState state;
  std::vector<trace::Record> block(block_records);
  for (;;) {
    t0 = clock::now();
    const std::size_t got = source.next_batch(block.data(), block.size());
    t1 = clock::now();
    profile.decode_s += seconds(t0, t1);
    if (got == 0) {
      break;
    }
    step_batch(block.data(), got, state);
    t0 = clock::now();
    profile.access_s += seconds(t1, t0);
    profile.records += got;
    ++profile.blocks;
  }

  t0 = clock::now();
  RunResult result = finish_run(state);
  t1 = clock::now();
  profile.retire_s += seconds(t0, t1);
  return result;
}

RunResult Core::finish_run(const RunState& state, bool include_shared) const {
  RunResult result;
  cache::Cache& il1_ = *ports_.il1;
  cache::Cache& dl1_ = *ports_.dl1;
  const double arrays_dynamic = state.arrays_dynamic;
  const double core_dynamic = state.core_dynamic;

  result.instructions = state.instructions;
  result.cycles = state.cycles;
  result.seconds = static_cast<double>(state.cycles) / op_.freq_hz;

  // --- energy roll-up ---
  result.energy.add("l1.dynamic",
                    il1_.dynamic_energy_j() + dl1_.dynamic_energy_j());
  result.energy.add("l1.edc", il1_.edc_energy_j() + dl1_.edc_energy_j());
  const double l1_leak =
      (il1_.leakage_power() - il1_.edc_leakage_power()) +
      (dl1_.leakage_power() - dl1_.edc_leakage_power());
  result.energy.add("l1.leakage", l1_leak * result.seconds);
  result.energy.add("l1.edc",
                    (il1_.edc_leakage_power() + dl1_.edc_leakage_power()) *
                        result.seconds);
  result.energy.add("arrays.dynamic", arrays_dynamic);
  result.energy.add("arrays.leakage", arrays_leakage_w() * result.seconds);
  result.energy.add("core.dynamic", core_dynamic);
  result.energy.add("core.leakage", core_leak_w_ * result.seconds);

  // Shared deeper levels (L2, memory terminal): per-level energy. A
  // multi-core driver passes include_shared = false and accounts these
  // once across all cores instead of once per core.
  if (include_shared) {
    for (cache::MemoryLevel* level : ports_.shared) {
      add_shared_level_energy(result.energy, level->level_stats(),
                              result.seconds);
    }
  }

  result.il1 = il1_.stats();
  result.dl1 = dl1_.stats();
  result.levels.reserve(3 + (include_shared ? ports_.shared.size() : 0));
  result.levels.push_back(il1_.level_stats());
  result.levels.push_back(dl1_.level_stats());
  if (include_shared) {
    for (cache::MemoryLevel* level : ports_.shared) {
      result.levels.push_back(level->level_stats());
    }
  }
  return result;
}

}  // namespace hvc::cpu
