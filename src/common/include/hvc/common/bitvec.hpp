// Compact bit vector used for code words, fault maps and raw array storage.
//
// std::vector<bool> is avoided per the C++ Core Guidelines; BitVec gives an
// explicit word-backed representation with the popcount/parity/XOR
// operations the EDC machinery needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hvc {

/// Mask of the low `bits` bits of a 64-bit word (all-ones for bits >= 64).
[[nodiscard]] constexpr std::uint64_t low_mask(std::size_t bits) noexcept {
  return bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
}

/// Dynamically sized bit vector backed by 64-bit words.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t bits, bool value = false);

  /// Builds from the low `bits` bits of `value` (bit 0 = LSB).
  [[nodiscard]] static BitVec from_word(std::uint64_t value, std::size_t bits);
  /// Builds from a string of '0'/'1' characters, MSB first.
  [[nodiscard]] static BitVec from_string(const std::string& text);

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }
  [[nodiscard]] bool empty() const noexcept { return bits_ == 0; }

  [[nodiscard]] bool get(std::size_t i) const;
  void set(std::size_t i, bool value = true);
  void flip(std::size_t i);
  void clear() noexcept;
  void resize(std::size_t bits, bool value = false);

  /// Unchecked accessors for inner loops whose indices are guaranteed in
  /// range by construction: identical to get/set without the per-call
  /// bounds precondition.
  [[nodiscard]] bool get_unchecked(std::size_t i) const noexcept {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
  }
  void set_unchecked(std::size_t i, bool value) noexcept {
    const std::uint64_t mask = 1ULL << (i % kWordBits);
    if (value) {
      words_[i / kWordBits] |= mask;
    } else {
      words_[i / kWordBits] &= ~mask;
    }
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const noexcept;
  /// XOR-reduction of all bits.
  [[nodiscard]] bool parity() const noexcept;
  [[nodiscard]] bool any() const noexcept { return popcount() > 0; }
  [[nodiscard]] bool none() const noexcept { return popcount() == 0; }

  /// In-place XOR; sizes must match.
  BitVec& operator^=(const BitVec& other);
  /// In-place AND; sizes must match.
  BitVec& operator&=(const BitVec& other);
  /// In-place OR; sizes must match.
  BitVec& operator|=(const BitVec& other);

  [[nodiscard]] friend BitVec operator^(BitVec a, const BitVec& b) {
    a ^= b;
    return a;
  }
  [[nodiscard]] friend BitVec operator&(BitVec a, const BitVec& b) {
    a &= b;
    return a;
  }
  [[nodiscard]] friend BitVec operator|(BitVec a, const BitVec& b) {
    a |= b;
    return a;
  }

  [[nodiscard]] bool operator==(const BitVec& other) const noexcept = default;

  /// Inner product over GF(2): parity of (this AND other).
  [[nodiscard]] bool dot(const BitVec& other) const;

  /// Low 64 bits packed into a word (bit 0 = LSB). Requires size() <= 64.
  [[nodiscard]] std::uint64_t to_word() const;
  /// Bits [pos, pos+count) packed into a word (bit 0 = bit `pos`).
  /// Requires count <= 64 and pos + count <= size().
  [[nodiscard]] std::uint64_t extract_word(std::size_t pos,
                                           std::size_t count) const;
  /// '0'/'1' string, MSB first.
  [[nodiscard]] std::string to_string() const;

  /// Sub-range copy of `count` bits starting at `pos`.
  [[nodiscard]] BitVec slice(std::size_t pos, std::size_t count) const;
  /// Concatenation: this followed by `other` (other occupies higher indices).
  [[nodiscard]] BitVec concat(const BitVec& other) const;

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> set_bits() const;

 private:
  static constexpr std::size_t kWordBits = 64;

  void check_index(std::size_t i) const;
  void mask_tail() noexcept;

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace hvc
