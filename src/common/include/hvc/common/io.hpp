// Small I/O helpers for the sweep engine: deterministic number formatting,
// an in-memory CSV table, and whole-file read/write.
//
// Determinism matters here: the explorer's byte-identical-output guarantee
// holds because every cell is formatted by format_number() (fixed %.12g,
// locale-independent) and rows are emitted in point order, never in
// completion order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hvc {

/// Formats a double with %.12g semantics: enough digits that distinct
/// sweep results stay distinct, integral values print without an exponent
/// where possible, and the output never depends on locale or thread.
[[nodiscard]] std::string format_number(double value);

/// Formats an unsigned integer (decimal).
[[nodiscard]] std::string format_number(std::uint64_t value);

/// Appends one RFC-4180-style CSV line (fields containing separators or
/// quotes are quoted, '\n' terminator) to `out`. This is the ONE CSV
/// formatter in the codebase: CsvTable::to_csv and the streaming
/// CsvSink both emit through it, which is what makes a streamed sweep
/// byte-identical to a collected one.
void append_csv_line(std::string& out, const std::vector<std::string>& fields);

/// An in-memory rectangular table with named columns that serializes to
/// RFC-4180-style CSV (fields containing separators/quotes are quoted).
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> columns);

  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_[i];
  }

  /// Appends a row; throws ConfigError when the width does not match.
  void add_row(std::vector<std::string> cells);

  /// Header line + one line per row, '\n' separated, trailing newline.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Reads a whole file; throws ConfigError when it cannot be opened.
[[nodiscard]] std::string read_text_file(const std::string& path);

/// Writes (replaces) a whole file; throws ConfigError on failure.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace hvc
