// Deterministic hashing and checksumming for on-disk formats.
//
// Two primitives, both fixed for all time once a file format ships them:
//   crc32()  — the IEEE CRC-32 (zlib polynomial, reflected), used as the
//              per-record payload checksum of the persistent result store.
//              Cheap, streamable, and catches the torn/short writes a
//              crashed writer leaves behind.
//   Hash128  — an incremental 128-bit mixing hash for *keys*: canonical
//              identities of (spec point × seed × schema version) in the
//              result store. Built from two independent SplitMix64-style
//              lanes over length-framed input, so distinct field sequences
//              cannot collide by concatenation ("ab","c" vs "a","bc").
//              Not cryptographic — collision resistance is adequate for
//              memoization keys, not for adversarial input.
//
// Both are pure functions of their input bytes: no locale, no pointers,
// no per-process state. Like the .hvct reader/writer, Hash128 assumes a
// little-endian host (every supported target); crc32 is byte-oriented and
// host-independent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hvc {

/// IEEE CRC-32 (polynomial 0xEDB88320, reflected) of `bytes` bytes,
/// continuing from `seed` (pass a previous result to stream).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t bytes,
                                  std::uint32_t seed = 0) noexcept;

/// Incremental 128-bit hash with explicit field framing.
///
/// Usage: default-construct, feed fields with the typed update methods,
/// then read digest(). Every update is framed (type tag and/or length),
/// so the digest identifies the *sequence of fields*, not just the
/// concatenated bytes.
class Hash128 {
 public:
  struct Digest {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    [[nodiscard]] bool operator==(const Digest&) const noexcept = default;
  };

  Hash128() noexcept = default;

  /// Absorbs a raw 64-bit value (absorbed as one little-endian chunk).
  void update_u64(std::uint64_t value) noexcept;

  /// Absorbs a double by bit pattern. -0.0 and 0.0 hash differently; NaN
  /// payloads are preserved — callers feed canonical computed values.
  void update_double(double value) noexcept;

  /// Absorbs a string as length + contents (length framing prevents
  /// concatenation collisions between adjacent string fields).
  void update_string(std::string_view text) noexcept;

  /// Absorbs raw bytes with length framing (same contract as strings).
  void update_bytes(const void* data, std::size_t bytes) noexcept;

  /// The digest of everything absorbed so far (the hasher can keep going).
  [[nodiscard]] Digest digest() const noexcept;

 private:
  void absorb(std::uint64_t chunk) noexcept;

  std::uint64_t lane0_ = 0x6a09e667f3bcc908ULL;  ///< sqrt(2) fraction
  std::uint64_t lane1_ = 0xbb67ae8584caa73bULL;  ///< sqrt(3) fraction
  std::uint64_t chunks_ = 0;  ///< total chunks absorbed (finalization pin)
};

}  // namespace hvc
