// Minimal JSON value, parser and writer — just enough for sweep-spec files
// and machine-readable result output, with zero external dependencies.
//
// Design points:
//  * Objects preserve insertion order (vector of pairs), so dump() output
//    is deterministic and round-trips the author's key order.
//  * Numbers are doubles; dump() prints integral values without a decimal
//    point and everything else with %.17g, so parse(dump(x)) == x.
//  * parse() throws hvc::ConfigError with a line:column location on any
//    syntax error — spec files are user input.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hvc {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() noexcept : type_(Type::kNull) {}
  Json(std::nullptr_t) noexcept : type_(Type::kNull) {}
  Json(bool b) noexcept : type_(Type::kBool), bool_(b) {}
  Json(double n) noexcept : type_(Type::kNumber), number_(n) {}
  Json(int n) noexcept : Json(static_cast<double>(n)) {}
  Json(std::size_t n) noexcept : Json(static_cast<double>(n)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  /// Parses one JSON document (trailing garbage is an error).
  /// Throws ConfigError on malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

  /// Serializes; indent < 0 gives compact single-line output, otherwise
  /// pretty-printed with `indent` spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  /// Checked accessors; throw ConfigError when the type does not match.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  [[nodiscard]] bool contains(std::string_view key) const noexcept {
    return find(key) != nullptr;
  }
  /// Object lookup that throws ConfigError when the key is missing.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Object insertion (creates an object from a null value on first use).
  void set(std::string key, Json value);

  bool operator==(const Json& other) const noexcept;

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace hvc
