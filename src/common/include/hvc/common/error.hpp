// Error-handling helpers shared across all hvcache modules.
//
// Style follows the C++ Core Guidelines: preconditions are checked with
// ensure()/expects() which throw rather than abort, so library users can
// recover and tests can assert on failures.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace hvc {

/// Thrown when a precondition (caller error) is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant is violated (library bug or
/// configuration that escaped validation).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a user-supplied configuration is rejected.
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[nodiscard]] inline std::string locate(const std::source_location& loc) {
  return std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
         " (" + loc.function_name() + ")";
}
}  // namespace detail

/// Precondition check: throws PreconditionError when `cond` is false.
inline void expects(bool cond, const std::string& msg,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw PreconditionError(msg + " at " + detail::locate(loc));
  }
}

/// Invariant check: throws InvariantError when `cond` is false.
inline void ensure(bool cond, const std::string& msg,
                   std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw InvariantError(msg + " at " + detail::locate(loc));
  }
}

}  // namespace hvc
