// Deterministic random-number generation for simulations.
//
// All stochastic components of hvcache (fault injection, Monte-Carlo yield
// estimation, workload data generation) draw from an explicitly seeded
// hvc::Rng so that every experiment is reproducible bit-for-bit.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through
// SplitMix64; both are public-domain algorithms with excellent statistical
// quality and tiny state, well suited to spawning many independent streams.
//
// Stream-splitting contract (sharded / multi-threaded runs)
// ---------------------------------------------------------
// Reproducibility across thread counts is achieved by *stream splitting*,
// never by partitioning one stream's draws: every logical sampling task
// (one Monte-Carlo chip, one sweep point, one fault map) gets its own
// generator via Rng::stream(seed, index) — a pure counter-based function
// of (seed, index) with no hidden state — so results depend only on the
// task's index, not on which thread ran it or in what order.
//
// Per-call draw counts (raw 64-bit outputs consumed), for auditing that a
// shared stream stays aligned when splitting is impossible:
//   uniform()/bernoulli(p in (0,1))   exactly 1
//   below()/range()                   1 + Lemire rejections (probability
//                                     < n/2^64 per extra draw)
//   geometric(p in (0,1))             exactly 1, except a 2^-53-probability
//                                     rejection of a zero mantissa
//   binomial(n, p<=0.5)               one geometric draw per success, plus
//                                     one terminating draw unless the last
//                                     success lands exactly on bit n-1;
//                                     p>0.5 mirrors to binomial(n, 1-p)
//   normal()                          2 on the first call of a pair, 0 on
//                                     the second (cached spare); fork()/
//                                     stream() never inherit the spare
//   poisson(mean<=64)                 floor(sample)+1; mean>64: one
//                                     normal() pair
//   exponential()                     exactly 1 (same rejection as
//                                     geometric)
// Helpers whose draw count depends on sampled values (binomial, poisson)
// are still deterministic for a fixed seed, but do NOT interleave them on
// a stream shared across shards — give each shard its own stream.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

namespace hvc {

/// xoshiro256++ pseudo-random generator with distribution helpers.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions if desired.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the stream from a single 64-bit value via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~static_cast<result_type>(0);
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Creates an independent child stream (jump-free fork via re-seeding
  /// with a drawn value mixed with a stream tag). Consumes one draw from
  /// this stream; the child starts with no cached normal() spare.
  [[nodiscard]] Rng fork(std::uint64_t tag) noexcept;

  /// Counter-based stream splitting: a pure function of (seed, stream_id)
  /// with no generator state involved, so shard i of a sweep gets the same
  /// stream no matter how many threads run or in which order points are
  /// claimed. stream(seed, i) != stream(seed, j) for i != j (SplitMix64
  /// mixing is a bijection per round).
  [[nodiscard]] static Rng stream(std::uint64_t seed,
                                  std::uint64_t stream_id) noexcept;

  /// The 64-bit mixing function behind stream(): deterministic hash of
  /// (a, b) suitable for deriving per-point seeds from a base seed.
  [[nodiscard]] static std::uint64_t mix64(std::uint64_t a,
                                           std::uint64_t b) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Geometric variate: the number of failures before the first success of
  /// i.i.d. Bernoulli(p) trials, i.e. the gap to the next faulty bit when
  /// skip-sampling a fault map. Support {0, 1, 2, ...}; mean (1-p)/p.
  /// Returns a huge sentinel (UINT64_MAX) when p <= 0.
  [[nodiscard]] std::uint64_t geometric(double p) noexcept;

  /// Binomial variate: successes in n Bernoulli(p) trials, sampled with
  /// geometric skips in O(n * min(p, 1-p)) expected draws instead of n.
  [[nodiscard]] std::uint64_t binomial(std::uint64_t n, double p) noexcept;

  /// Standard normal variate (Box-Muller with cached spare).
  [[nodiscard]] double normal() noexcept;

  /// Normal variate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Poisson variate with the given mean (Knuth for small means,
  /// normal approximation above 64).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Exponential variate with the given rate lambda (> 0).
  [[nodiscard]] double exponential(double lambda) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  std::optional<double> spare_normal_{};
  /// Memo for geometric(): callers draw many gaps at the same p (fault
  /// maps, yield sampling), so cache log1p(-p) across calls.
  double geometric_p_ = -1.0;
  double geometric_log1mp_ = 0.0;
};

/// SplitMix64 step: used for seeding and quick hash mixing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace hvc
