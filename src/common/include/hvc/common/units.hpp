// Formatting helpers for physical quantities printed by examples and
// benchmark harnesses (energies in J, times in s, areas in m^2).
#pragma once

#include <string>

namespace hvc {

/// Formats a value with an SI prefix, e.g. 1.3e-12 -> "1.300 p".
[[nodiscard]] std::string si_format(double value, const std::string& unit,
                                    int precision = 3);

/// Formats a ratio as a signed percentage, e.g. 0.86 vs 1.0 -> "-14.0%".
[[nodiscard]] std::string percent_delta(double value, double baseline,
                                        int precision = 1);

/// Formats a plain percentage, e.g. 0.423 -> "42.3%".
[[nodiscard]] std::string percent(double fraction, int precision = 1);

/// Fixed-width left/right padding for simple table printing.
[[nodiscard]] std::string pad_left(const std::string& text, std::size_t width);
[[nodiscard]] std::string pad_right(const std::string& text, std::size_t width);

}  // namespace hvc
