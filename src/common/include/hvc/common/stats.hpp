// Streaming statistics helpers used by the yield estimator, the cache
// simulator and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hvc {

/// Welford-style running mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;
  void reset() noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 with fewer than two samples.
  [[nodiscard]] double stderr_mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples are clamped into
/// the first/last bin and counted separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  /// Approximate quantile (linear within bins); q in [0,1].
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

/// Named scalar accumulator: maps category name -> accumulated value.
/// Used for energy breakdowns (dynamic / leakage / EDC / core / ...).
class Breakdown {
 public:
  void add(const std::string& key, double value);
  void merge(const Breakdown& other);
  void scale(double factor) noexcept;

  [[nodiscard]] double get(const std::string& key) const noexcept;
  [[nodiscard]] double total() const noexcept;
  [[nodiscard]] const std::map<std::string, double>& items() const noexcept {
    return items_;
  }
  /// Returns a copy where every entry is divided by `denom`.
  [[nodiscard]] Breakdown normalized_by(double denom) const;

 private:
  std::map<std::string, double> items_;
};

}  // namespace hvc
