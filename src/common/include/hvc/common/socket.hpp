// Minimal Unix-domain stream sockets for the hvc_explore serve daemon
// (and its tests): a listener with stale-socket recovery, a buffered
// line-oriented stream, and a self-pipe for signal-safe wakeups.
//
// Everything here is POSIX-only, like the flock-based store the daemon
// serves. Interruption is cooperative: blocking reads/accepts take an
// optional `wake_fd` and return early the moment it becomes readable —
// callers hand in a WakePipe's read end and NEVER drain it, so one
// signal() wakes every waiter, forever (level-triggered by design).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace hvc {

/// One connected Unix-domain stream, move-only, closed on destruction.
/// Reads are line-buffered; writes are all-or-error.
class UnixStream {
 public:
  UnixStream() = default;
  explicit UnixStream(int fd) : fd_(fd) {}
  ~UnixStream();

  UnixStream(UnixStream&& other) noexcept;
  UnixStream& operator=(UnixStream&& other) noexcept;
  UnixStream(const UnixStream&) = delete;
  UnixStream& operator=(const UnixStream&) = delete;

  /// Connects to a listening daemon; throws ConfigError when nothing
  /// listens there (or the path is unusable).
  [[nodiscard]] static UnixStream connect(const std::string& path);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Writes all bytes (SIGPIPE suppressed). Returns false when the peer
  /// hung up — a normal event for a daemon, not an error — and throws
  /// ConfigError on real I/O failures.
  bool send_all(const void* data, std::size_t bytes);
  /// send_all of line + '\n'.
  bool send_line(const std::string& line);

  enum class ReadStatus {
    kLine,         ///< `out` holds one line (terminator stripped)
    kEof,          ///< peer closed cleanly (partial trailing data dropped)
    kInterrupted,  ///< wake_fd became readable before a full line arrived
  };

  /// Blocks for the next '\n'-terminated line. With wake_fd >= 0 the
  /// wait also ends (kInterrupted) when that fd is readable; the fd is
  /// left untouched so it keeps waking other waiters.
  ReadStatus read_line(std::string& out, int wake_fd = -1);

  void close() noexcept;

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned line
};

/// A bound + listening Unix-domain socket. Binding recovers from stale
/// socket files (a crashed daemon's leftover): when the path is in use
/// but nothing accepts connections there, it is unlinked and rebound;
/// when a live daemon answers, binding fails with ConfigError.
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener();

  UnixListener(UnixListener&& other) noexcept;
  UnixListener& operator=(UnixListener&& other) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  [[nodiscard]] static UnixListener bind(const std::string& path);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Blocks for the next connection; nullopt when wake_fd became
  /// readable instead (shutdown requested).
  [[nodiscard]] std::optional<UnixStream> accept(int wake_fd = -1);

  /// Closes the listening socket and removes the socket file.
  void close() noexcept;

 private:
  int fd_ = -1;
  std::string path_;
};

/// Self-pipe: signal() is async-signal-safe (one write() of one byte),
/// read_fd() becomes readable and STAYS readable — waiters poll it but
/// never read from it, so a single signal() releases every current and
/// future waiter. The canonical clean-shutdown primitive for the serve
/// daemon's SIGTERM handler.
class WakePipe {
 public:
  WakePipe();
  ~WakePipe();

  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  [[nodiscard]] int read_fd() const noexcept { return fds_[0]; }
  [[nodiscard]] bool signalled() const noexcept;
  void signal() noexcept;

 private:
  int fds_[2] = {-1, -1};
};

}  // namespace hvc
