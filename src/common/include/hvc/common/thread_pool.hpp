// Work-queue thread pool and a parallel_for built on it.
//
// The explorer's determinism story does NOT depend on scheduling: work is
// indexed, every index derives its own Rng stream (Rng::stream), and
// results land in pre-sized slots — so the pool is free to hand indices to
// whichever worker asks first. Exceptions thrown by tasks are captured and
// the first one is rethrown to the caller of wait()/parallel_for.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hvc {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Must not be called after shutdown began.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle, then
  /// rethrows the first exception any task threw (clearing it).
  void wait();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static std::size_t hardware_threads() noexcept;

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Runs fn(i) for i in [begin, end) across `threads` workers. With
/// threads <= 1 (or a single-element range) everything runs inline on the
/// calling thread — handy as a reference baseline and under sanitizers.
/// Rethrows the first exception; remaining indices may be skipped after a
/// failure.
void parallel_for(std::size_t begin, std::size_t end, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace hvc
