#include "hvc/common/rng.hpp"

#include <bit>
#include <cmath>

namespace hvc {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
  // xoshiro must not start from the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result =
      std::rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t tag) noexcept {
  std::uint64_t mix = next() ^ (tag * 0xd1342543de82ef95ULL + 1);
  return Rng(mix);
}

std::uint64_t Rng::mix64(std::uint64_t a, std::uint64_t b) noexcept {
  // Two SplitMix64 rounds over a state that folds in both inputs; each
  // round is a bijection, so distinct (a, b) pairs stay well separated.
  std::uint64_t state = a;
  std::uint64_t h = splitmix64(state);
  state ^= b * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL;
  h ^= splitmix64(state);
  return h;
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_id) noexcept {
  return Rng(mix64(seed, stream_id));
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  if (n == 0) {
    return 0;
  }
  // Lemire's nearly-divisionless bounded generation with rejection.
  const std::uint64_t threshold = (-n) % n;
  for (;;) {
    const std::uint64_t r = next();
    const auto product = static_cast<unsigned __int128>(r) * n;
    const auto low = static_cast<std::uint64_t>(product);
    if (low >= threshold) {
      return static_cast<std::uint64_t>(product >> 64);
    }
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) {
    return lo;
  }
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform() < p;
}

std::uint64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) {
    return 0;
  }
  if (p <= 0.0) {
    return ~std::uint64_t{0};
  }
  // Inversion: floor(log(U) / log(1-p)) is geometric on {0, 1, 2, ...}.
  if (p != geometric_p_) {
    geometric_p_ = p;
    geometric_log1mp_ = std::log1p(-p);
  }
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  const double skip = std::floor(std::log(u) / geometric_log1mp_);
  if (skip >= 1.8e19) {  // beyond uint64: clamp to the sentinel
    return ~std::uint64_t{0};
  }
  return static_cast<std::uint64_t>(skip);
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) noexcept {
  if (n == 0 || p <= 0.0) {
    return 0;
  }
  if (p >= 1.0) {
    return n;
  }
  if (p > 0.5) {
    // Sample the rarer outcome and mirror.
    return n - binomial(n, 1.0 - p);
  }
  // Count successes by geometrically skipping over runs of failures.
  std::uint64_t count = 0;
  std::uint64_t position = 0;
  for (;;) {
    const std::uint64_t skip = geometric(p);
    if (skip >= n - position) {
      break;
    }
    position += skip + 1;  // land on the success, move past it
    ++count;
    if (position >= n) {
      break;
    }
  }
  return count;
}

double Rng::normal() noexcept {
  if (spare_normal_) {
    const double value = *spare_normal_;
    spare_normal_.reset();
    return value;
  }
  // Box-Muller transform; u1 is kept away from zero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = radius * std::sin(angle);
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    const double sample = normal(mean, std::sqrt(mean));
    return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
  }
  const double limit = std::exp(-mean);
  std::uint64_t count = 0;
  double product = uniform();
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

double Rng::exponential(double lambda) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -std::log(u) / (lambda > 0.0 ? lambda : 1.0);
}

}  // namespace hvc
