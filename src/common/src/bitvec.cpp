#include "hvc/common/bitvec.hpp"

#include <algorithm>
#include <bit>

#include "hvc/common/error.hpp"

namespace hvc {

namespace {
constexpr std::size_t kWordBits = 64;

[[nodiscard]] std::size_t words_for(std::size_t bits) noexcept {
  return (bits + kWordBits - 1) / kWordBits;
}
}  // namespace

BitVec::BitVec(std::size_t bits, bool value)
    : bits_(bits),
      words_(words_for(bits), value ? ~std::uint64_t{0} : std::uint64_t{0}) {
  mask_tail();
}

BitVec BitVec::from_word(std::uint64_t value, std::size_t bits) {
  expects(bits <= kWordBits, "from_word supports at most 64 bits");
  BitVec out(bits);
  if (bits > 0) {
    out.words_[0] = bits == kWordBits ? value : (value & ((1ULL << bits) - 1));
  }
  return out;
}

BitVec BitVec::from_string(const std::string& text) {
  BitVec out(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    expects(c == '0' || c == '1', "BitVec string must contain only 0/1");
    // MSB first: text[0] is the highest index.
    out.set(text.size() - 1 - i, c == '1');
  }
  return out;
}

void BitVec::check_index(std::size_t i) const {
  expects(i < bits_, "BitVec index out of range");
}

void BitVec::mask_tail() noexcept {
  const std::size_t tail = bits_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

bool BitVec::get(std::size_t i) const {
  check_index(i);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

void BitVec::set(std::size_t i, bool value) {
  check_index(i);
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVec::flip(std::size_t i) {
  check_index(i);
  words_[i / kWordBits] ^= 1ULL << (i % kWordBits);
}

void BitVec::clear() noexcept {
  for (auto& word : words_) {
    word = 0;
  }
}

void BitVec::resize(std::size_t bits, bool value) {
  const std::size_t old_bits = bits_;
  bits_ = bits;
  words_.resize(words_for(bits), value ? ~std::uint64_t{0} : std::uint64_t{0});
  if (value && bits > old_bits && old_bits % kWordBits != 0) {
    // Fill the partial word that previously held the tail.
    const std::size_t word = old_bits / kWordBits;
    const std::uint64_t fill = ~((1ULL << (old_bits % kWordBits)) - 1);
    words_[word] |= fill;
  }
  mask_tail();
}

std::size_t BitVec::popcount() const noexcept {
  std::size_t total = 0;
  for (const auto word : words_) {
    total += static_cast<std::size_t>(std::popcount(word));
  }
  return total;
}

bool BitVec::parity() const noexcept { return popcount() % 2 == 1; }

BitVec& BitVec::operator^=(const BitVec& other) {
  expects(bits_ == other.bits_, "BitVec XOR size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] ^= other.words_[w];
  }
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& other) {
  expects(bits_ == other.bits_, "BitVec AND size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= other.words_[w];
  }
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& other) {
  expects(bits_ == other.bits_, "BitVec OR size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] |= other.words_[w];
  }
  return *this;
}

bool BitVec::dot(const BitVec& other) const {
  expects(bits_ == other.bits_, "BitVec dot size mismatch");
  std::uint64_t acc = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    acc ^= words_[w] & other.words_[w];
  }
  return std::popcount(acc) % 2 == 1;
}

std::uint64_t BitVec::to_word() const {
  expects(bits_ <= kWordBits, "to_word supports at most 64 bits");
  return words_.empty() ? 0 : words_[0];
}

std::uint64_t BitVec::extract_word(std::size_t pos, std::size_t count) const {
  expects(count <= kWordBits && pos + count <= bits_,
          "extract_word out of range");
  if (count == 0) {
    return 0;
  }
  const std::size_t word = pos / kWordBits;
  const std::size_t shift = pos % kWordBits;
  std::uint64_t out = words_[word] >> shift;
  if (shift != 0 && word + 1 < words_.size()) {
    out |= words_[word + 1] << (kWordBits - shift);
  }
  return out & low_mask(count);
}

std::string BitVec::to_string() const {
  std::string out(bits_, '0');
  for (std::size_t i = 0; i < bits_; ++i) {
    if (get_unchecked(i)) {
      out[bits_ - 1 - i] = '1';
    }
  }
  return out;
}

BitVec BitVec::slice(std::size_t pos, std::size_t count) const {
  expects(pos + count <= bits_, "BitVec slice out of range");
  BitVec out(count);
  // Copy in 64-bit chunks rather than bit by bit.
  for (std::size_t done = 0; done < count; done += kWordBits) {
    const std::size_t chunk = std::min(kWordBits, count - done);
    out.words_[done / kWordBits] = extract_word(pos + done, chunk);
  }
  return out;
}

BitVec BitVec::concat(const BitVec& other) const {
  BitVec out(bits_ + other.bits_);
  for (std::size_t i = 0; i < bits_; ++i) {
    out.set_unchecked(i, get_unchecked(i));
  }
  for (std::size_t i = 0; i < other.bits_; ++i) {
    out.set_unchecked(bits_ + i, other.get_unchecked(i));
  }
  return out;
}

std::vector<std::size_t> BitVec::set_bits() const {
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(word));
      out.push_back(w * kWordBits + bit);
      word &= word - 1;
    }
  }
  return out;
}

}  // namespace hvc
