#include "hvc/common/hash.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace hvc {

namespace {

/// The reflected IEEE CRC-32 table, generated once at load time.
[[nodiscard]] const std::array<std::uint32_t, 256>& crc32_table() noexcept {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320U ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// One SplitMix64 finalization round (the same mixer Rng::mix64 uses);
/// a bijection on 64-bit words, so distinct chunks stay distinct.
[[nodiscard]] std::uint64_t mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t bytes,
                    std::uint32_t seed) noexcept {
  const auto& table = crc32_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = ~seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return ~c;
}

void Hash128::absorb(std::uint64_t chunk) noexcept {
  ++chunks_;
  // Two lanes with different injection constants and a cross-feed: lane1
  // sees lane0's running state, so the pair behaves like one wide state.
  lane0_ = mix(lane0_ ^ (chunk + 0x9e3779b97f4a7c15ULL * chunks_));
  lane1_ = mix(lane1_ + std::rotl(chunk, 29) + lane0_);
}

void Hash128::update_u64(std::uint64_t value) noexcept {
  absorb(0x01);  // field tag: u64
  absorb(value);
}

void Hash128::update_double(double value) noexcept {
  absorb(0x02);  // field tag: double
  absorb(std::bit_cast<std::uint64_t>(value));
}

void Hash128::update_string(std::string_view text) noexcept {
  absorb(0x03);  // field tag: string
  update_bytes(text.data(), text.size());
}

void Hash128::update_bytes(const void* data, std::size_t bytes) noexcept {
  absorb(static_cast<std::uint64_t>(bytes));
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (bytes >= 8) {
    std::uint64_t chunk = 0;
    std::memcpy(&chunk, p, 8);  // little-endian hosts only (LP64 targets)
    absorb(chunk);
    p += 8;
    bytes -= 8;
  }
  if (bytes > 0) {
    std::uint64_t chunk = 0;
    std::memcpy(&chunk, p, bytes);
    absorb(chunk);
  }
}

Hash128::Digest Hash128::digest() const noexcept {
  // Finalize a copy so the hasher itself can keep absorbing.
  Digest d;
  d.lo = mix(lane0_ ^ mix(chunks_));
  d.hi = mix(lane1_ + std::rotl(lane0_, 32));
  return d;
}

}  // namespace hvc
