#include "hvc/common/io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <utility>

#include "hvc/common/error.hpp"

namespace hvc {

std::string format_number(double value) {
  // std::to_chars is locale-independent by definition (snprintf %g would
  // honour LC_NUMERIC and break the byte-identical-output guarantee for
  // embedders that call setlocale). Precision 12 ~ the old %.12g.
  char buf[40];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value,
                                       std::chars_format::general, 12);
  return std::string(buf, ptr);
}

std::string format_number(std::uint64_t value) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  return std::string(buf, ptr);
}

CsvTable::CsvTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  expects(!columns_.empty(), "CSV table needs at least one column");
}

void CsvTable::add_row(std::vector<std::string> cells) {
  expects(cells.size() == columns_.size(),
          "CSV row width does not match the header");
  rows_.push_back(std::move(cells));
}

namespace {

void append_field(std::string& out, const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) {
    out += field;
    return;
  }
  out += '"';
  for (const char c : field) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
}

}  // namespace

void append_csv_line(std::string& out, const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& field : fields) {
    if (!first) {
      out += ',';
    }
    first = false;
    append_field(out, field);
  }
  out += '\n';
}

std::string CsvTable::to_csv() const {
  std::string out;
  append_csv_line(out, columns_);
  for (const auto& row : rows_) {
    append_csv_line(out, row);
  }
  return out;
}

std::string read_text_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw ConfigError("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw ConfigError("cannot open file for writing: " + path);
  }
  file.write(content.data(),
             static_cast<std::streamsize>(content.size()));
  if (!file) {
    throw ConfigError("failed writing file: " + path);
  }
}

}  // namespace hvc
