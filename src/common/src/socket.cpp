#include "hvc/common/socket.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "hvc/common/error.hpp"

namespace hvc {

namespace {

[[nodiscard]] sockaddr_un address_of(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    throw ConfigError("socket path too long: " + path);
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

[[nodiscard]] int new_unix_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw ConfigError(std::string("socket() failed: ") +
                      std::strerror(errno));
  }
  return fd;
}

/// Blocks until `fd` is readable; with wake_fd >= 0 also returns when
/// THAT becomes readable. Returns true when fd itself is ready.
[[nodiscard]] bool wait_readable(int fd, int wake_fd) {
  for (;;) {
    pollfd fds[2];
    fds[0] = {fd, POLLIN, 0};
    nfds_t count = 1;
    if (wake_fd >= 0) {
      fds[1] = {wake_fd, POLLIN, 0};
      count = 2;
    }
    const int rc = ::poll(fds, count, -1);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw ConfigError(std::string("poll() failed: ") +
                        std::strerror(errno));
    }
    // Shutdown wins over pending data: the daemon stops mid-stream.
    if (wake_fd >= 0 && (fds[1].revents & (POLLIN | POLLERR | POLLHUP))) {
      return false;
    }
    if (fds[0].revents != 0) {
      return true;
    }
  }
}

}  // namespace

UnixStream::~UnixStream() { close(); }

UnixStream::UnixStream(UnixStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)) {}

UnixStream& UnixStream::operator=(UnixStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

UnixStream UnixStream::connect(const std::string& path) {
  const sockaddr_un address = address_of(path);
  const int fd = new_unix_socket();
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    const int error = errno;
    ::close(fd);
    throw ConfigError("cannot connect to " + path + ": " +
                      std::strerror(error));
  }
  return UnixStream(fd);
}

bool UnixStream::send_all(const void* data, std::size_t bytes) {
  expects(valid(), "send on a closed stream");
  const char* cursor = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t sent = ::send(fd_, cursor, bytes, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        return false;
      }
      throw ConfigError(std::string("send() failed: ") +
                        std::strerror(errno));
    }
    cursor += sent;
    bytes -= static_cast<std::size_t>(sent);
  }
  return true;
}

bool UnixStream::send_line(const std::string& line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed += line;
  framed += '\n';
  return send_all(framed.data(), framed.size());
}

UnixStream::ReadStatus UnixStream::read_line(std::string& out, int wake_fd) {
  expects(valid(), "read on a closed stream");
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      out.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return ReadStatus::kLine;
    }
    if (!wait_readable(fd_, wake_fd)) {
      return ReadStatus::kInterrupted;
    }
    char chunk[4096];
    const ssize_t received = ::recv(fd_, chunk, sizeof chunk, 0);
    if (received < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == ECONNRESET) {
        return ReadStatus::kEof;
      }
      throw ConfigError(std::string("recv() failed: ") +
                        std::strerror(errno));
    }
    if (received == 0) {
      return ReadStatus::kEof;
    }
    buffer_.append(chunk, static_cast<std::size_t>(received));
  }
}

void UnixStream::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

UnixListener::~UnixListener() { close(); }

UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {
  other.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

UnixListener UnixListener::bind(const std::string& path) {
  const sockaddr_un address = address_of(path);
  int fd = new_unix_socket();
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    const int error = errno;
    ::close(fd);
    if (error != EADDRINUSE) {
      throw ConfigError("cannot bind " + path + ": " +
                        std::strerror(error));
    }
    // The path exists. A live daemon accepts connections on it; a stale
    // file from a crashed one refuses them and is safe to replace.
    try {
      UnixStream probe = UnixStream::connect(path);
      throw ConfigError("another daemon is already listening on " + path);
    } catch (const ConfigError& probe_error) {
      if (std::string(probe_error.what()).find("already listening") !=
          std::string::npos) {
        throw;
      }
    }
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      throw ConfigError("cannot remove stale socket " + path + ": " +
                        std::strerror(errno));
    }
    fd = new_unix_socket();
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
               sizeof(address)) != 0) {
      const int rebind_error = errno;
      ::close(fd);
      throw ConfigError("cannot bind " + path + ": " +
                        std::strerror(rebind_error));
    }
  }
  if (::listen(fd, 16) != 0) {
    const int error = errno;
    ::close(fd);
    ::unlink(path.c_str());
    throw ConfigError("cannot listen on " + path + ": " +
                      std::strerror(error));
  }
  UnixListener listener;
  listener.fd_ = fd;
  listener.path_ = path;
  return listener;
}

std::optional<UnixStream> UnixListener::accept(int wake_fd) {
  expects(valid(), "accept on a closed listener");
  for (;;) {
    if (!wait_readable(fd_, wake_fd)) {
      return std::nullopt;
    }
    const int client = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      throw ConfigError(std::string("accept() failed: ") +
                        std::strerror(errno));
    }
    return UnixStream(client);
  }
}

void UnixListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (!path_.empty()) {
      ::unlink(path_.c_str());
      path_.clear();
    }
  }
}

WakePipe::WakePipe() {
  if (::pipe2(fds_, O_CLOEXEC | O_NONBLOCK) != 0) {
    throw ConfigError(std::string("pipe2() failed: ") +
                      std::strerror(errno));
  }
}

WakePipe::~WakePipe() {
  for (const int fd : fds_) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
}

bool WakePipe::signalled() const noexcept {
  pollfd probe = {fds_[0], POLLIN, 0};
  return ::poll(&probe, 1, 0) > 0;
}

void WakePipe::signal() noexcept {
  const char byte = 1;
  // One byte is plenty: readers never drain the pipe, they only poll it.
  [[maybe_unused]] const ssize_t rc = ::write(fds_[1], &byte, 1);
}

}  // namespace hvc
