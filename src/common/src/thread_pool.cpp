#include "hvc/common/thread_pool.hpp"

#include <atomic>
#include <utility>

namespace hvc {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (end <= begin) {
    return;
  }
  const std::size_t count = end - begin;
  if (threads <= 1 || count == 1) {
    for (std::size_t i = begin; i < end; ++i) {
      fn(i);
    }
    return;
  }
  if (threads > count) {
    threads = count;
  }
  // One claim-the-next-index task per worker: cheap dynamic load balancing
  // without queueing `count` closures.
  std::atomic<std::size_t> next{begin};
  std::atomic<bool> failed{false};
  ThreadPool pool(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    pool.submit([&next, &failed, end, &fn] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= end || failed.load(std::memory_order_relaxed)) {
          return;
        }
        try {
          fn(i);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          throw;  // captured by the pool, rethrown from wait()
        }
      }
    });
  }
  pool.wait();
}

}  // namespace hvc
