#include "hvc/common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "hvc/common/error.hpp"

namespace hvc {

namespace {

/// Recursive-descent parser over a string_view with line:column tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ConfigError("JSON error at line " + std::to_string(line) + ":" +
                      std::to_string(col) + ": " + what);
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }
  char get() {
    if (eof()) {
      fail("unexpected end of input");
    }
    return text_[pos_++];
  }

  void skip_ws() noexcept {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    if (eof()) {
      fail("unexpected end of input");
    }
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) {
          return Json(true);
        }
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) {
          return Json(false);
        }
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) {
          return Json(nullptr);
        }
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') {
        fail("expected object key string");
      }
      std::string key = parse_string();
      for (const auto& member : members) {
        if (member.first == key) {
          fail("duplicate object key \"" + key + "\"");
        }
      }
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (eof()) {
        fail("unterminated object");
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(members));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array values;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Json(std::move(values));
    }
    for (;;) {
      skip_ws();
      values.push_back(parse_value());
      skip_ws();
      if (eof()) {
        fail("unterminated array");
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(values));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = get();
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = get();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = get();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // spec files are ASCII identifiers and numbers).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') {
      ++pos_;
    }
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("invalid value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    // std::from_chars: locale-independent, unlike strtod which would
    // reject "0.28" under a comma-decimal LC_NUMERIC.
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || end != token.data() + token.size()) {
      pos_ = start;
      fail("invalid number \"" + token + "\"");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    // JSON has no NaN/Inf; emit null like most lenient writers.
    out += "null";
    return;
  }
  // std::to_chars throughout: locale-independent, and the plain double
  // overload emits the shortest representation that round-trips exactly.
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof buf, static_cast<long long>(v));
    out.append(buf, ptr);
  } else {
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, ptr);
  }
}

void write_newline_indent(std::string& out, int indent, int depth) {
  if (indent >= 0) {
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth),
               ' ');
  }
}

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) {
    throw ConfigError("JSON value is not a bool");
  }
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) {
    throw ConfigError("JSON value is not a number");
  }
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) {
    throw ConfigError("JSON value is not a string");
  }
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) {
    throw ConfigError("JSON value is not an array");
  }
  return array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) {
    throw ConfigError("JSON value is not an object");
  }
  return object_;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& member : object_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* value = find(key);
  if (value == nullptr) {
    throw ConfigError("missing JSON key \"" + std::string(key) + "\"");
  }
  return *value;
}

void Json::set(std::string key, Json value) {
  if (type_ == Type::kNull) {
    type_ = Type::kObject;
  }
  if (type_ != Type::kObject) {
    throw ConfigError("JSON set() on a non-object value");
  }
  for (auto& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

bool Json::operator==(const Json& other) const noexcept {
  if (type_ != other.type_) {
    return false;
  }
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

void Json::write(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      write_number(out, number_);
      return;
    case Type::kString:
      write_escaped(out, string_);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const auto& value : array_) {
        if (!first) {
          out += ',';
          if (indent < 0) {
            out += ' ';
          }
        }
        first = false;
        write_newline_indent(out, indent, depth + 1);
        value.write(out, indent, depth + 1);
      }
      write_newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& member : object_) {
        if (!first) {
          out += ',';
          if (indent < 0) {
            out += ' ';
          }
        }
        first = false;
        write_newline_indent(out, indent, depth + 1);
        write_escaped(out, member.first);
        out += ": ";
        member.second.write(out, indent, depth + 1);
      }
      write_newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace hvc
