#include "hvc/common/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace hvc {

namespace {
struct Prefix {
  double scale;
  const char* symbol;
};

constexpr std::array<Prefix, 11> kPrefixes{{
    {1e12, "T"},
    {1e9, "G"},
    {1e6, "M"},
    {1e3, "k"},
    {1.0, ""},
    {1e-3, "m"},
    {1e-6, "u"},
    {1e-9, "n"},
    {1e-12, "p"},
    {1e-15, "f"},
    {1e-18, "a"},
}};
}  // namespace

std::string si_format(double value, const std::string& unit, int precision) {
  if (value == 0.0 || !std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f %s", precision, value, unit.c_str());
    return buf;
  }
  const double magnitude = std::fabs(value);
  const Prefix* chosen = &kPrefixes.back();
  for (const auto& prefix : kPrefixes) {
    if (magnitude >= prefix.scale) {
      chosen = &prefix;
      break;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f %s%s", precision,
                value / chosen->scale, chosen->symbol, unit.c_str());
  return buf;
}

std::string percent_delta(double value, double baseline, int precision) {
  char buf[64];
  if (baseline == 0.0) {
    return "n/a";
  }
  const double delta = (value / baseline - 1.0) * 100.0;
  std::snprintf(buf, sizeof buf, "%+.*f%%", precision, delta);
  return buf;
}

std::string percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string pad_left(const std::string& text, std::size_t width) {
  if (text.size() >= width) {
    return text;
  }
  return std::string(width - text.size(), ' ') + text;
}

std::string pad_right(const std::string& text, std::size_t width) {
  if (text.size() >= width) {
    return text;
  }
  return text + std::string(width - text.size(), ' ');
}

}  // namespace hvc
