#include "hvc/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "hvc/common/error.hpp"

namespace hvc {

void RunningStat::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::reset() noexcept { *this = RunningStat{}; }

double RunningStat::variance() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::stderr_mean() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return stddev() / std::sqrt(static_cast<double>(count_));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  expects(bins > 0, "Histogram needs at least one bin");
  expects(hi > lo, "Histogram range must be non-empty");
}

void Histogram::add(double x) noexcept {
  ++total_;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  if (x < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width);
  if (bin >= counts_.size()) {
    ++overflow_;
    bin = counts_.size() - 1;
  }
  ++counts_[bin];
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  expects(bin < counts_.size(), "Histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  expects(bin < counts_.size(), "Histogram bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::quantile(double q) const {
  expects(q >= 0.0 && q <= 1.0, "quantile requires q in [0,1]");
  if (total_ == 0) {
    return lo_;
  }
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    const auto here = static_cast<double>(counts_[bin]);
    if (cumulative + here >= target) {
      const double frac = here > 0.0 ? (target - cumulative) / here : 0.0;
      return bin_lo(bin) + frac * (bin_hi(bin) - bin_lo(bin));
    }
    cumulative += here;
  }
  return hi_;
}

void Breakdown::add(const std::string& key, double value) {
  items_[key] += value;
}

void Breakdown::merge(const Breakdown& other) {
  for (const auto& [key, value] : other.items_) {
    items_[key] += value;
  }
}

void Breakdown::scale(double factor) noexcept {
  for (auto& [key, value] : items_) {
    value *= factor;
  }
}

double Breakdown::get(const std::string& key) const noexcept {
  const auto it = items_.find(key);
  return it == items_.end() ? 0.0 : it->second;
}

double Breakdown::total() const noexcept {
  double sum = 0.0;
  for (const auto& [key, value] : items_) {
    sum += value;
  }
  return sum;
}

Breakdown Breakdown::normalized_by(double denom) const {
  Breakdown out = *this;
  if (denom != 0.0) {
    out.scale(1.0 / denom);
  }
  return out;
}

}  // namespace hvc
