// Full-system experiment assembly (paper Section IV).
//
// A System is one simulated chip: IL1 + DL1 hybrid caches built from the
// design-methodology cell plan, an optional shared L2 (HierarchySpec), a
// main memory, and the in-order core.
// Four cache designs exist per the paper:
//   scenario A baseline : 6T        + 10T
//   scenario A proposed : 6T        + 8T+SECDED (SECDED only at ULE)
//   scenario B baseline : 6T+SECDED + 10T+SECDED
//   scenario B proposed : 6T+SECDED + 8T+DECTED (DECTED only at ULE)
// The default organisation is the paper's: 8KB, 8-way, 7+1 way split,
// 32-bit data words, 26-bit tags, 1V/1GHz HP and 350mV/5MHz ULE.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "hvc/cache/cache.hpp"
#include "hvc/cache/memory_level.hpp"
#include "hvc/cpu/core.hpp"
#include "hvc/workloads/workload.hpp"
#include "hvc/yield/methodology.hpp"

namespace hvc::sim {

/// Which of the four cache designs to build.
struct DesignChoice {
  yield::Scenario scenario = yield::Scenario::kA;
  bool proposed = false;  ///< false = baseline (10T), true = 8T+EDC

  [[nodiscard]] std::string label() const;
};

/// Optional shared second-level cache between the L1s and main memory.
/// Its ways follow the same hybrid plan as the L1s (6T HP ways plus
/// `ule_ways` always-on ways): `proposed` selects 8T cells with the
/// scenario's stronger EDC at ULE, otherwise fault-free-sized 10T.
struct L2Spec {
  power::CacheOrg org{64 * 1024, 8, 32, 32, 26};
  std::size_t ule_ways = 1;
  bool proposed = false;
  std::size_t hit_latency_cycles = 4;
  /// L2-miss penalty to main memory (replaces the L1's flat memory
  /// latency, which only applies to the two-level shape).
  std::size_t memory_latency_cycles = 20;
};

/// Shape of the memory hierarchy below the L1s. Default: the paper's
/// two-level IL1+DL1 -> memory chip; with `l2` set, both L1s miss into a
/// shared L2 that misses into memory.
struct HierarchySpec {
  std::optional<L2Spec> l2;

  [[nodiscard]] bool has_l2() const noexcept { return l2.has_value(); }
};

struct SystemConfig {
  DesignChoice design;
  HierarchySpec hierarchy;
  power::Mode mode = power::Mode::kHp;
  power::CacheOrg org;            ///< defaults: 8KB 8-way 32B lines
  std::size_t ule_ways = 1;       ///< paper: 7+1
  power::OperatingPoint hp{power::Mode::kHp, 1.0, 1e9};
  power::OperatingPoint ule{power::Mode::kUle, 0.35, 5e6};
  cpu::CoreParams core;
  cache::WritePolicy write_policy = cache::WritePolicy::kWriteBackAllocate;
  std::size_t memory_latency_cycles = 20;  ///< paper IV-A
  bool inject_hard_faults = true;
  std::uint64_t seed = 42;
};

/// Builds the per-way plans + fault rates for one design choice.
struct CachePlan {
  std::vector<power::WayPlan> ways;
  std::vector<double> way_hard_pf;
};

[[nodiscard]] CachePlan build_cache_plan(const DesignChoice& design,
                                         const yield::CacheCellPlan& cells,
                                         std::size_t total_ways,
                                         std::size_t ule_ways,
                                         bool inject_hard_faults);

/// One simulated chip instance.
class System {
 public:
  System(const SystemConfig& config, const yield::CacheCellPlan& cells);

  /// Runs a workload by registry name and returns timing/energy results.
  [[nodiscard]] cpu::RunResult run_workload(const std::string& name,
                                            std::uint64_t seed = 1,
                                            std::size_t scale = 1);

  /// Runs an already-captured trace.
  [[nodiscard]] cpu::RunResult run_trace(const trace::Tracer& tracer);

  /// Switches the whole chip between HP and ULE mode: gates/ungates cache
  /// ways (with the writeback/re-encode costs) and re-points the core at
  /// the new operating point. The energy spent on the transition itself
  /// is accumulated in mode_switch_energy_j().
  void set_mode(power::Mode mode);
  [[nodiscard]] power::Mode mode() const noexcept { return config_.mode; }
  [[nodiscard]] double mode_switch_energy_j() const noexcept {
    return mode_switch_energy_j_;
  }
  [[nodiscard]] std::uint64_t mode_switches() const noexcept {
    return mode_switches_;
  }

  /// Total chip static power at the current mode (caches + core + arrays).
  [[nodiscard]] double chip_leakage_w() const noexcept;

  /// Writes every dirty line back to memory, draining top-down (L1s
  /// first so their victims land in the L2, then the L2 itself).
  void flush();

  [[nodiscard]] cache::Cache& il1() noexcept { return *il1_; }
  [[nodiscard]] cache::Cache& dl1() noexcept { return *dl1_; }
  /// The shared L2, or nullptr for the two-level shape.
  [[nodiscard]] cache::Cache* l2() noexcept { return l2_.get(); }
  [[nodiscard]] bool has_l2() const noexcept { return l2_ != nullptr; }
  [[nodiscard]] cpu::Core& core() noexcept { return *core_; }
  [[nodiscard]] cache::MainMemory& memory() noexcept { return memory_; }
  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }

  /// Total L1 area (IL1 + DL1), um^2.
  [[nodiscard]] double l1_area_um2() const noexcept;
  /// Total on-chip cache area including the L2 when present, um^2.
  [[nodiscard]] double cache_area_um2() const noexcept;

 private:
  void rebuild_core();

  SystemConfig config_;
  cache::MainMemory memory_;
  Rng rng_;
  /// Terminal level behind the deepest cache (built only for L2 shapes;
  /// the two-level shape keeps the caches' internally-owned terminals so
  /// its behaviour — including RNG stream order — is bit-identical to the
  /// pre-hierarchy System).
  std::unique_ptr<cache::MainMemoryLevel> memory_level_;
  std::unique_ptr<cache::Cache> l2_;
  std::unique_ptr<cache::Cache> il1_;
  std::unique_ptr<cache::Cache> dl1_;
  std::unique_ptr<cpu::Core> core_;
  double mode_switch_energy_j_ = 0.0;
  std::uint64_t mode_switches_ = 0;
};

/// Runs the methodology once and caches the plan per scenario (the sizing
/// loop is deterministic, so this is shared across benches/tests).
/// Thread-safe: concurrent callers see one shared, immutable plan.
[[nodiscard]] const yield::CacheCellPlan& cell_plan_for(
    yield::Scenario scenario);

/// Convenience: build a system and run one workload.
[[nodiscard]] cpu::RunResult run_one(const SystemConfig& config,
                                     const std::string& workload,
                                     std::uint64_t workload_seed = 1,
                                     std::size_t scale = 1);

}  // namespace hvc::sim
