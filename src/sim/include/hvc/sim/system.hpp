// Full-system experiment assembly (paper Section IV).
//
// A System is one simulated chip: IL1 + DL1 hybrid caches built from the
// design-methodology cell plan, an optional shared L2 (HierarchySpec), a
// main memory, and the in-order core.
// Four cache designs exist per the paper:
//   scenario A baseline : 6T        + 10T
//   scenario A proposed : 6T        + 8T+SECDED (SECDED only at ULE)
//   scenario B baseline : 6T+SECDED + 10T+SECDED
//   scenario B proposed : 6T+SECDED + 8T+DECTED (DECTED only at ULE)
// The default organisation is the paper's: 8KB, 8-way, 7+1 way split,
// 32-bit data words, 26-bit tags, 1V/1GHz HP and 350mV/5MHz ULE.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hvc/cache/arbiter.hpp"
#include "hvc/cache/cache.hpp"
#include "hvc/cache/memory_level.hpp"
#include "hvc/cpu/core.hpp"
#include "hvc/workloads/workload.hpp"
#include "hvc/yield/methodology.hpp"

namespace hvc::sim {

/// Which of the four cache designs to build.
struct DesignChoice {
  yield::Scenario scenario = yield::Scenario::kA;
  bool proposed = false;  ///< false = baseline (10T), true = 8T+EDC

  [[nodiscard]] std::string label() const;
};

/// Optional shared second-level cache between the L1s and main memory.
/// Its ways follow the same hybrid plan as the L1s (6T HP ways plus
/// `ule_ways` always-on ways): `proposed` selects 8T cells with the
/// scenario's stronger EDC at ULE, otherwise fault-free-sized 10T.
struct L2Spec {
  power::CacheOrg org{64 * 1024, 8, 32, 32, 26};
  std::size_t ule_ways = 1;
  bool proposed = false;
  std::size_t hit_latency_cycles = 4;
  /// L2-miss penalty to main memory (replaces the L1's flat memory
  /// latency, which only applies to the two-level shape).
  std::size_t memory_latency_cycles = 20;
};

/// Shape of the memory hierarchy below the L1s. Default: the paper's
/// two-level IL1+DL1 -> memory chip; with `l2` set, both L1s miss into a
/// shared L2 that misses into memory.
struct HierarchySpec {
  std::optional<L2Spec> l2;

  [[nodiscard]] bool has_l2() const noexcept { return l2.has_value(); }
};

/// Contention model for the shared level of a multi-core chip (the L2
/// when present, otherwise the memory terminal the private L1s share).
enum class ArbitrationKind {
  kSinglePort,  ///< requests queue behind other cores' service time
  kFree,        ///< ideally multi-ported: sharing costs no cycles
};

struct ArbitrationSpec {
  ArbitrationKind kind = ArbitrationKind::kSinglePort;
  cache::ArbiterEnergy energy;
};

struct SystemConfig {
  DesignChoice design;
  HierarchySpec hierarchy;
  /// Cores on the chip, each with private IL1/DL1. 1 = the paper's chip,
  /// bit-identical to the pre-multicore model; > 1 shares the deepest
  /// levels behind a round-robin arbiter.
  std::size_t num_cores = 1;
  ArbitrationSpec arbitration;
  power::Mode mode = power::Mode::kHp;
  power::CacheOrg org;            ///< defaults: 8KB 8-way 32B lines
  std::size_t ule_ways = 1;       ///< paper: 7+1
  power::OperatingPoint hp{power::Mode::kHp, 1.0, 1e9};
  power::OperatingPoint ule{power::Mode::kUle, 0.35, 5e6};
  cpu::CoreParams core;
  cache::WritePolicy write_policy = cache::WritePolicy::kWriteBackAllocate;
  std::size_t memory_latency_cycles = 20;  ///< paper IV-A
  bool inject_hard_faults = true;
  std::uint64_t seed = 42;
};

/// Builds the per-way plans + fault rates for one design choice.
struct CachePlan {
  std::vector<power::WayPlan> ways;
  std::vector<double> way_hard_pf;
};

[[nodiscard]] CachePlan build_cache_plan(const DesignChoice& design,
                                         const yield::CacheCellPlan& cells,
                                         std::size_t total_ways,
                                         std::size_t ule_ways,
                                         bool inject_hard_faults);

/// Result of one multi-core run: per-core replays plus the chip-level
/// aggregate. Per-core results carry that core's IL1/DL1 only; the shared
/// levels (L2/MEM, with their contention counters) and the
/// "contention.<level>" energy category appear once, in `aggregate`.
/// Aggregate timing: instructions are summed, cycles/seconds take the
/// slowest core (the cores run concurrently), so aggregate EPI is total
/// chip energy over total instructions.
struct MulticoreResult {
  std::vector<cpu::RunResult> per_core;
  std::vector<std::string> core_workloads;  ///< workload run by each core
  cpu::RunResult aggregate;
};

/// One simulated chip instance.
class System {
 public:
  System(const SystemConfig& config, const yield::CacheCellPlan& cells);

  /// Runs a workload by registry name — or a recorded trace named
  /// "trace:<path>" (seed/scale do not apply to recorded traces) — and
  /// returns timing/energy results. Single-core path (replays on core 0;
  /// with num_cores > 1 prefer run_mix, which interleaves all cores).
  [[nodiscard]] cpu::RunResult run_workload(const std::string& name,
                                            std::uint64_t seed = 1,
                                            std::size_t scale = 1);

  /// Runs an already-captured trace (on core 0).
  [[nodiscard]] cpu::RunResult run_trace(const trace::Tracer& tracer);

  /// Streaming replay on core 0: records are pulled in blocks of
  /// `block_records` (1 = the record-at-a-time scalar path; any block
  /// size is bit-identical), so memory stays bounded by the source's
  /// window plus one block for traces of any length. The source is
  /// reset() first.
  [[nodiscard]] cpu::RunResult run_trace(
      trace::TraceSource& source,
      std::size_t block_records = trace::kReplayBlockRecords);

  /// run_trace with per-phase wall time (decode / access / retire)
  /// accumulated into `profile` — the hvc_trace `replay --profile`
  /// backend. The replay result is bit-identical to run_trace.
  [[nodiscard]] cpu::RunResult run_trace_profiled(trace::TraceSource& source,
                                                  std::size_t block_records,
                                                  cpu::ReplayProfile& profile);

  /// The workload seed of core `core` for a mix run at base `seed`:
  /// core 0 keeps the bare seed (a one-name mix on a one-core chip
  /// reproduces run_workload bit-for-bit); higher cores mix the core id
  /// in with Rng::mix64, so adjacent sweep seeds never replay each
  /// other's per-core streams (seed s core 1 != seed s+1 core 0).
  [[nodiscard]] static std::uint64_t core_workload_seed(
      std::uint64_t seed, std::size_t core) noexcept;

  /// Multi-core run: core c replays `workloads[c % workloads.size()]`
  /// (a registry name seeded core_workload_seed(seed, c), or a
  /// "trace:<path>" recorded trace streamed from disk), stepped by a
  /// deterministic round-robin interleaver whose start core rotates
  /// every round — the shared-level arbiter's priority slot circulates
  /// fairly. Works for any num_cores (num_cores == 1 is bit-identical
  /// to run_workload).
  [[nodiscard]] MulticoreResult run_mix(
      const std::vector<std::string>& workloads, std::uint64_t seed = 1,
      std::size_t scale = 1,
      std::size_t block_records = trace::kReplayBlockRecords);

  /// The interleaving engine behind run_mix: one already-built trace
  /// source per core, stepped one record per core per round (bounded
  /// memory for N-core mixes of arbitrarily long traces). Each core's
  /// records are pulled from its source in blocks of `block_records`
  /// (amortizing per-record decode/dispatch) but executed strictly in
  /// the same record-per-core round order as `block_records == 1`, so
  /// every block size retires records — and drives the shared-level
  /// arbiter — bit-identically. Sources are reset() first; `names`
  /// labels MulticoreResult::core_workloads.
  [[nodiscard]] MulticoreResult run_mix_sources(
      const std::vector<trace::TraceSource*>& sources,
      std::vector<std::string> names = {},
      std::size_t block_records = trace::kReplayBlockRecords);

  /// Switches the whole chip between HP and ULE mode: gates/ungates cache
  /// ways (with the writeback/re-encode costs) and re-points the core at
  /// the new operating point. The energy spent on the transition itself
  /// is accumulated in mode_switch_energy_j().
  void set_mode(power::Mode mode);
  [[nodiscard]] power::Mode mode() const noexcept { return config_.mode; }
  [[nodiscard]] double mode_switch_energy_j() const noexcept {
    return mode_switch_energy_j_;
  }
  [[nodiscard]] std::uint64_t mode_switches() const noexcept {
    return mode_switches_;
  }

  /// Total chip static power at the current mode (caches + core + arrays).
  [[nodiscard]] double chip_leakage_w() const noexcept;

  /// Writes every dirty line back to memory, draining top-down (L1s
  /// first so their victims land in the L2, then the L2 itself).
  void flush();

  [[nodiscard]] std::size_t core_count() const noexcept {
    return cores_.size();
  }
  [[nodiscard]] cache::Cache& il1(std::size_t core = 0) noexcept {
    return *il1s_[core];
  }
  [[nodiscard]] cache::Cache& dl1(std::size_t core = 0) noexcept {
    return *dl1s_[core];
  }
  /// The shared L2, or nullptr for the two-level shape.
  [[nodiscard]] cache::Cache* l2() noexcept { return l2_.get(); }
  [[nodiscard]] bool has_l2() const noexcept { return l2_ != nullptr; }
  /// The shared-level arbiter, or nullptr for single-core chips.
  [[nodiscard]] cache::ArbitratedLevel* arbiter() noexcept {
    return arbiter_.get();
  }
  [[nodiscard]] cpu::Core& core(std::size_t core = 0) noexcept {
    return *cores_[core];
  }
  [[nodiscard]] cache::MainMemory& memory() noexcept { return memory_; }
  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }

  /// Total L1 area across every core (IL1 + DL1), um^2.
  [[nodiscard]] double l1_area_um2() const noexcept;
  /// Total on-chip cache area including the L2 when present, um^2.
  [[nodiscard]] double cache_area_um2() const noexcept;

 private:
  void rebuild_cores();
  /// The shared levels behind the L1s, in MemoryPorts front-to-back order
  /// (empty for the paper's single-core two-level shape).
  [[nodiscard]] std::vector<cache::MemoryLevel*> shared_levels() noexcept;

  SystemConfig config_;
  cache::MainMemory memory_;
  Rng rng_;
  /// Terminal level behind the deepest cache. Always built: the L2 (or
  /// the L1s directly, two-level shape) misses into it, so every
  /// hierarchy shape ends in one explicit "MEM" level owned here.
  std::unique_ptr<cache::MainMemoryLevel> memory_level_;
  std::unique_ptr<cache::Cache> l2_;
  /// Arbitration around the front shared level (multi-core only).
  std::unique_ptr<cache::ArbitratedLevel> arbiter_;
  std::vector<std::unique_ptr<cache::Cache>> il1s_;
  std::vector<std::unique_ptr<cache::Cache>> dl1s_;
  std::vector<std::unique_ptr<cpu::Core>> cores_;
  double mode_switch_energy_j_ = 0.0;
  std::uint64_t mode_switches_ = 0;
};

/// Runs the methodology once and caches the plan per scenario (the sizing
/// loop is deterministic, so this is shared across benches/tests).
/// Thread-safe: concurrent callers see one shared, immutable plan.
[[nodiscard]] const yield::CacheCellPlan& cell_plan_for(
    yield::Scenario scenario);

/// Convenience: build a system and run one workload.
[[nodiscard]] cpu::RunResult run_one(const SystemConfig& config,
                                     const std::string& workload,
                                     std::uint64_t workload_seed = 1,
                                     std::size_t scale = 1);

}  // namespace hvc::sim
