// Reporting helpers: map raw energy breakdowns onto the paper's figure
// categories and print normalized EPI tables (Figures 3 and 4).
#pragma once

#include <string>
#include <vector>

#include "hvc/cpu/core.hpp"

namespace hvc::sim {

/// The EPI breakdown categories of Figures 3/4, plus the shared-L2 share
/// for hierarchy configurations (zero for the paper's two-level shape).
struct EpiBreakdown {
  double l1_dynamic = 0.0;
  double l1_leakage = 0.0;
  double l1_edc = 0.0;
  double l2 = 0.0;          ///< shared L2 dynamic + leakage + EDC
  double contention = 0.0;  ///< shared-level arbitration ("contention.*")
  double core_other = 0.0;  ///< core logic + non-L1 arrays

  [[nodiscard]] double total() const noexcept {
    return l1_dynamic + l1_leakage + l1_edc + l2 + contention + core_other;
  }
  EpiBreakdown& operator/=(double d) noexcept;
};

/// Per-instruction breakdown of one run.
[[nodiscard]] EpiBreakdown epi_breakdown(const cpu::RunResult& result);

/// One row of a Fig.3/Fig.4-style table.
struct EpiRow {
  std::string label;
  EpiBreakdown epi;          ///< absolute J/instruction
  double normalized = 1.0;   ///< total EPI / baseline total EPI
  double cpi = 0.0;
};

/// Prints rows with per-category columns normalized to `baseline_total`.
void print_epi_table(const std::string& title,
                     const std::vector<EpiRow>& rows);

/// Builds a row from a run result, normalizing against a baseline total.
[[nodiscard]] EpiRow make_epi_row(const std::string& label,
                                  const cpu::RunResult& result,
                                  double baseline_epi_total);

}  // namespace hvc::sim
