// Duty-cycle simulation of the paper's deployment model (Section I):
// the chip spends 99%-99.99% of its time in ULE mode (monitoring) and
// reacts to infrequent events in HP mode, switching modes on a single
// Vcc domain.
//
// One DutyCycle run alternates: [N x ULE monitoring workload] -> switch ->
// [HP event burst] -> switch -> ... accumulating active energy, idle
// (leakage-only) energy, and the mode-transition costs (HP-way writebacks
// and ULE-way re-encoding, plus a configurable settle time).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hvc/sim/system.hpp"

namespace hvc::sim {

/// One workload invocation inside a phase.
struct PhaseSpec {
  std::string workload = "adpcm_c";
  std::uint64_t seed = 1;
  std::size_t scale = 1;
};

struct DutyCycleConfig {
  DesignChoice design;
  /// ULE monitoring work per cycle (run back to back).
  std::vector<PhaseSpec> ule_phases{{"adpcm_c", 1, 1}, {"epic_c", 2, 1}};
  /// The rare HP event burst.
  PhaseSpec hp_phase{"mpeg2_c", 3, 1};
  /// Number of full ULE->HP->ULE cycles.
  std::size_t cycles = 2;
  /// Fraction of ULE-phase wall-clock spent idle (leakage only).
  double idle_fraction = 0.95;
  /// Vcc/PLL settle time per mode switch; the chip burns leakage at the
  /// *target* mode during it.
  double switch_settle_s = 100e-6;
  std::uint64_t system_seed = 42;
};

struct DutyCycleResult {
  double ule_active_energy_j = 0.0;
  double hp_active_energy_j = 0.0;
  double idle_energy_j = 0.0;
  double switch_energy_j = 0.0;  ///< cache transitions + settle leakage
  double total_seconds = 0.0;
  double ule_seconds = 0.0;      ///< active + idle time at ULE
  std::uint64_t mode_switches = 0;
  std::uint64_t instructions = 0;
  std::uint64_t edc_corrections = 0;
  std::uint64_t edc_uncorrectable = 0;

  [[nodiscard]] double total_energy_j() const noexcept {
    return ule_active_energy_j + hp_active_energy_j + idle_energy_j +
           switch_energy_j;
  }
  [[nodiscard]] double average_power_w() const noexcept {
    return total_seconds > 0.0 ? total_energy_j() / total_seconds : 0.0;
  }
  /// Fraction of wall-clock time spent at ULE mode (the paper quotes
  /// 99%-99.99% for the target market).
  [[nodiscard]] double ule_time_fraction() const noexcept {
    return total_seconds > 0.0 ? ule_seconds / total_seconds : 0.0;
  }
  /// Runtime on a battery of the given capacity at this duty cycle.
  [[nodiscard]] double battery_seconds(double battery_j) const noexcept {
    const double power = average_power_w();
    return power > 0.0 ? battery_j / power : 0.0;
  }
};

/// Runs the duty cycle on a fresh System built for `config.design`.
[[nodiscard]] DutyCycleResult run_duty_cycle(const DutyCycleConfig& config);

/// Runs the duty cycle on an existing system (retains cache state).
[[nodiscard]] DutyCycleResult run_duty_cycle(System& system,
                                             const DutyCycleConfig& config);

}  // namespace hvc::sim
