#include "hvc/sim/system.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <mutex>

#include "hvc/common/error.hpp"
#include "hvc/trace/trace_file.hpp"

namespace hvc::sim {

namespace {

[[nodiscard]] std::unique_ptr<cache::ArbitrationModel> make_arbitration(
    ArbitrationKind kind) {
  if (kind == ArbitrationKind::kFree) {
    return std::make_unique<cache::FreeArbitration>();
  }
  return std::make_unique<cache::SinglePortArbitration>();
}

void accumulate_cache_stats(cache::CacheStats& into,
                            const cache::CacheStats& from) {
  into.accesses += from.accesses;
  into.hits += from.hits;
  into.misses += from.misses;
  into.loads += from.loads;
  into.stores += from.stores;
  into.ifetches += from.ifetches;
  into.fills += from.fills;
  into.writebacks += from.writebacks;
  into.edc_corrections += from.edc_corrections;
  into.edc_detected += from.edc_detected;
  into.mode_switch_writebacks += from.mode_switch_writebacks;
  into.soft_errors_injected += from.soft_errors_injected;
}

}  // namespace

std::string DesignChoice::label() const {
  std::string out = "scenario";
  out += yield::to_string(scenario);
  out += proposed ? "/proposed" : "/baseline";
  return out;
}

CachePlan build_cache_plan(const DesignChoice& design,
                           const yield::CacheCellPlan& cells,
                           std::size_t total_ways, std::size_t ule_ways,
                           bool inject_hard_faults) {
  expects(ule_ways >= 1 && ule_ways < total_ways,
          "need at least one ULE way and one HP way");
  CachePlan plan;
  plan.ways.resize(total_ways);
  plan.way_hard_pf.assign(total_ways, 0.0);

  const bool scenario_b = design.scenario == yield::Scenario::kB;
  const edc::Protection hp_ways_protection =
      scenario_b ? edc::Protection::kSecded : edc::Protection::kNone;

  for (std::size_t w = 0; w < total_ways; ++w) {
    const bool is_ule = w >= total_ways - ule_ways;
    power::WayPlan& way = plan.ways[w];
    way.ule_way = is_ule;
    if (!is_ule) {
      // HP way: 6T cells, gated off at ULE.
      way.cell = cells.hp_6t.cell;
      way.hp_protection = hp_ways_protection;
      way.ule_protection = hp_ways_protection;
      continue;
    }
    if (!design.proposed) {
      // Baseline ULE way: 10T sized for fault-free NST operation.
      way.cell = cells.baseline_10t.cell;
      way.hp_protection = hp_ways_protection;
      way.ule_protection = hp_ways_protection;
      if (inject_hard_faults) {
        plan.way_hard_pf[w] = cells.baseline_10t.pf;
      }
    } else {
      // Proposed ULE way: smaller 8T with the stronger code at ULE only.
      way.cell = cells.proposed_8t.cell;
      way.hp_protection = hp_ways_protection;
      way.ule_protection = scenario_b ? edc::Protection::kDected
                                      : edc::Protection::kSecded;
      if (inject_hard_faults) {
        plan.way_hard_pf[w] = cells.proposed_8t.pf;
      }
    }
  }
  return plan;
}

System::System(const SystemConfig& config, const yield::CacheCellPlan& cells)
    : config_(config), rng_(config.seed) {
  expects(config_.num_cores >= 1, "a System needs at least one core");
  const bool multicore = config_.num_cores > 1;
  if (config_.hierarchy.has_l2()) {
    const L2Spec& l2 = *config_.hierarchy.l2;
    expects(l2.org.line_bytes >= config_.org.line_bytes &&
                l2.org.line_bytes % config_.org.line_bytes == 0,
            "L2 lines must cover whole L1 lines");
    memory_level_ = std::make_unique<cache::MainMemoryLevel>(
        memory_, l2.memory_latency_cycles);
    const CachePlan l2_plan = build_cache_plan(
        {config_.design.scenario, l2.proposed}, cells, l2.org.ways,
        l2.ule_ways, config_.inject_hard_faults);
    cache::CacheConfig cc;
    cc.name = "L2";
    cc.org = l2.org;
    cc.ways = l2_plan.ways;
    cc.way_hard_pf = l2_plan.way_hard_pf;
    cc.write_policy = config_.write_policy;
    cc.hit_latency_cycles = l2.hit_latency_cycles;
    cc.memory_latency_cycles = l2.memory_latency_cycles;
    cc.hp = config_.hp;
    cc.ule = config_.ule;
    cc.fault_seed = config_.seed ^ 0x22;
    l2_ = std::make_unique<cache::Cache>(cc, *memory_level_, rng_);
  } else {
    // L2-less chip: the private L1s miss into one shared memory terminal
    // (multi-core chips additionally contend for its port).
    memory_level_ = std::make_unique<cache::MainMemoryLevel>(
        memory_, config_.memory_latency_cycles);
  }

  if (multicore) {
    const power::OperatingPoint& op =
        config_.mode == power::Mode::kHp ? config_.hp : config_.ule;
    cache::MemoryLevel& front =
        l2_ ? static_cast<cache::MemoryLevel&>(*l2_) : *memory_level_;
    arbiter_ = std::make_unique<cache::ArbitratedLevel>(
        front, config_.num_cores, op.vcc,
        make_arbitration(config_.arbitration.kind),
        config_.arbitration.energy);
  }

  const CachePlan plan =
      build_cache_plan(config_.design, cells, config_.org.ways,
                       config_.ule_ways, config_.inject_hard_faults);

  const auto make_cache = [&](const std::string& name, std::uint64_t salt) {
    cache::CacheConfig cc;
    cc.name = name;
    cc.org = config_.org;
    cc.ways = plan.ways;
    cc.way_hard_pf = plan.way_hard_pf;
    cc.write_policy = config_.write_policy;
    cc.memory_latency_cycles = config_.memory_latency_cycles;
    cc.hp = config_.hp;
    cc.ule = config_.ule;
    cc.fault_seed = config_.seed ^ salt;
    if (arbiter_) {
      return std::make_unique<cache::Cache>(cc, *arbiter_, rng_);
    }
    // Two-level shape: miss straight into the shared memory terminal.
    return l2_ ? std::make_unique<cache::Cache>(cc, *l2_, rng_)
               : std::make_unique<cache::Cache>(cc, *memory_level_, rng_);
  };
  // Per-core fault-map salts: core 0 keeps the pre-multicore 0x11/0xDD so
  // one-core chips are bit-identical; higher cores shift into disjoint
  // ranges (0x11/0xDD + c*256 never collide with each other or 0x22).
  for (std::size_t c = 0; c < config_.num_cores; ++c) {
    const std::uint64_t core_salt = static_cast<std::uint64_t>(c) << 8;
    il1s_.push_back(make_cache("IL1", 0x11 + core_salt));
    dl1s_.push_back(make_cache("DL1", 0xDD + core_salt));
  }

  for (std::size_t c = 0; c < config_.num_cores; ++c) {
    il1s_[c]->set_mode(config_.mode);
    dl1s_[c]->set_mode(config_.mode);
  }
  if (l2_) {
    l2_->set_mode(config_.mode);
  }
  rebuild_cores();
}

std::vector<cache::MemoryLevel*> System::shared_levels() noexcept {
  std::vector<cache::MemoryLevel*> levels;
  if (arbiter_) {
    // The arbiter fronts the L2 (or the memory terminal when no L2) and
    // reports that level's stats plus contention counters.
    levels.push_back(arbiter_.get());
    if (l2_) {
      levels.push_back(memory_level_.get());
    }
  } else if (l2_) {
    levels.push_back(l2_.get());
    levels.push_back(memory_level_.get());
  } else {
    // Two-level single-core shape: the terminal both L1s miss into is
    // the only shared level, so every hierarchy reports a "MEM" row.
    levels.push_back(memory_level_.get());
  }
  return levels;
}

void System::rebuild_cores() {
  const power::OperatingPoint op =
      config_.mode == power::Mode::kHp ? config_.hp : config_.ule;
  cores_.clear();
  for (std::size_t c = 0; c < config_.num_cores; ++c) {
    cpu::MemoryPorts ports;
    ports.il1 = il1s_[c].get();
    ports.dl1 = dl1s_[c].get();
    ports.shared = shared_levels();
    cores_.push_back(
        std::make_unique<cpu::Core>(config_.core, std::move(ports), op));
  }
}

void System::set_mode(power::Mode mode) {
  if (mode == config_.mode) {
    return;
  }
  // Capture the transition's cache energy (writebacks + re-encode scrub).
  // Top-down: every core's L1s drain first so their dirty victims land in
  // the L2, then the L2 drains into memory.
  const auto for_each_cache = [this](auto&& fn) {
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      fn(*il1s_[c]);
      fn(*dl1s_[c]);
    }
    if (l2_) {
      fn(*l2_);
    }
  };
  for_each_cache([](cache::Cache& c) { c.clear_energy(); });
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    il1s_[c]->set_mode(mode);
    dl1s_[c]->set_mode(mode);
  }
  if (l2_) {
    l2_->set_mode(mode);
  }
  double transition_j = 0.0;
  for_each_cache(
      [&transition_j](cache::Cache& c) { transition_j += c.total_energy_j(); });
  mode_switch_energy_j_ += transition_j;
  for_each_cache([](cache::Cache& c) { c.clear_energy(); });
  config_.mode = mode;
  if (arbiter_) {
    arbiter_->set_vcc(
        (mode == power::Mode::kHp ? config_.hp : config_.ule).vcc);
  }
  ++mode_switches_;
  rebuild_cores();
}

void System::flush() {
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    il1s_[c]->flush();
    dl1s_[c]->flush();
  }
  if (l2_) {
    l2_->flush();
  }
}

double System::chip_leakage_w() const noexcept {
  double leak = l2_ ? l2_->leakage_power() : 0.0;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    leak += il1s_[c]->leakage_power() + dl1s_[c]->leakage_power() +
            cores_[c]->core_leakage_w();
  }
  return leak;
}

cpu::RunResult System::run_workload(const std::string& name,
                                    std::uint64_t seed, std::size_t scale) {
  if (trace::is_trace_ref(name)) {
    trace::TraceFileSource source(trace::trace_ref_path(name));
    return run_trace(source);
  }
  const wl::WorkloadInfo& info = wl::find_workload(name);
  const wl::WorkloadResult workload = info.run(seed, scale);
  ensure(workload.self_check, "workload self-check failed: " + name);
  return run_trace(workload.tracer);
}

cpu::RunResult System::run_trace(const trace::Tracer& tracer) {
  return cores_[0]->run(tracer);
}

cpu::RunResult System::run_trace(trace::TraceSource& source,
                                 std::size_t block_records) {
  return cores_[0]->run(source, block_records);
}

cpu::RunResult System::run_trace_profiled(trace::TraceSource& source,
                                          std::size_t block_records,
                                          cpu::ReplayProfile& profile) {
  return cores_[0]->run_profiled(source, block_records, profile);
}

std::uint64_t System::core_workload_seed(std::uint64_t seed,
                                         std::size_t core) noexcept {
  // Core 0 keeps the bare seed for bit-compatibility with run_workload.
  // Higher cores MIX the core id in instead of adding it: `seed + c`
  // would make core 1 at seed s replay core 0's stream at seed s+1 —
  // correlated streams across adjacent sweep seeds.
  return core == 0 ? seed : Rng::mix64(seed, core);
}

MulticoreResult System::run_mix(const std::vector<std::string>& workloads,
                                std::uint64_t seed, std::size_t scale,
                                std::size_t block_records) {
  expects(!workloads.empty(), "run_mix needs at least one workload");
  const std::size_t n = cores_.size();

  std::vector<std::string> names;
  names.reserve(n);
  // In-memory workload captures must stay alive for the whole run (the
  // MemoryTraceSources borrow their record vectors), so reserve up front.
  std::vector<wl::WorkloadResult> runs;
  runs.reserve(n);
  std::vector<std::unique_ptr<trace::TraceSource>> owned;
  owned.reserve(n);
  std::vector<trace::TraceSource*> sources;
  sources.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    const std::string& name = workloads[c % workloads.size()];
    if (trace::is_trace_ref(name)) {
      // Recorded trace streamed from disk: every core gets its own
      // bounded read window, so N-core mixes of arbitrarily long traces
      // never materialize a record vector.
      owned.push_back(std::make_unique<trace::TraceFileSource>(
          trace::trace_ref_path(name)));
    } else {
      const wl::WorkloadInfo& info = wl::find_workload(name);
      runs.push_back(info.run(core_workload_seed(seed, c), scale));
      ensure(runs.back().self_check, "workload self-check failed: " + name);
      owned.push_back(
          std::make_unique<trace::MemoryTraceSource>(runs.back().tracer));
    }
    sources.push_back(owned.back().get());
    names.push_back(name);
  }
  return run_mix_sources(sources, std::move(names), block_records);
}

MulticoreResult System::run_mix_sources(
    const std::vector<trace::TraceSource*>& sources,
    std::vector<std::string> names, std::size_t block_records) {
  const std::size_t n = cores_.size();
  expects(block_records > 0, "block_records must be at least 1");
  expects(sources.size() == n, "run_mix needs one trace source per core");
  expects(names.empty() || names.size() == n,
          "per-core names must match the core count");

  MulticoreResult out;
  out.core_workloads = std::move(names);

  for (trace::TraceSource* source : sources) {
    expects(source != nullptr, "null trace source");
    source->reset();
  }
  // Shared levels are cleared once for the whole mix (the arbiter clears
  // its contention counters and the level it fronts together).
  for (cache::MemoryLevel* level : shared_levels()) {
    level->clear_level_counters();
  }
  for (std::size_t c = 0; c < n; ++c) {
    cores_[c]->begin_run();
  }

  // Deterministic round-robin interleaver: one record stepped per core
  // per round, with the start core rotating so the arbiter's uncontended
  // priority slot circulates (round-robin arbitration fairness). An
  // empty pull retires a core; the loop ends when every source is dry.
  std::vector<cpu::Core::RunState> states(n);
  std::vector<char> done(n, 0);
  std::size_t active = n;
  // Hot-loop handles, hoisted: the arbiter as a raw pointer (one null
  // test per record instead of a unique_ptr deref) and the cores as a
  // flat pointer array (skips the unique_ptr indirection per step).
  cache::ArbitratedLevel* const arb = arbiter_.get();
  std::vector<cpu::Core*> cores(n);
  for (std::size_t c = 0; c < n; ++c) {
    cores[c] = cores_[c].get();
  }
  // Rotating start core, tracked incrementally: `(round + k) % n` with a
  // runtime n would put an integer divide on every record.
  std::size_t start = 0;
  if (block_records == 1) {
    // Scalar reference path: one virtual next() + one step() per record.
    trace::Record record;
    while (active > 0) {
      for (std::size_t k = 0; k < n; ++k) {
        std::size_t c = start + k;
        if (c >= n) {
          c -= n;
        }
        if (done[c] != 0) {
          continue;
        }
        if (!sources[c]->next(record)) {
          done[c] = 1;
          --active;
          continue;
        }
        if (arb != nullptr) {
          arb->begin_request(c);
        }
        cores[c]->step(record, states[c]);
      }
      if (arb != nullptr) {
        arb->new_round();
      }
      if (++start == n) {
        start = 0;
      }
    }
  } else {
    // Blocked path: each core refills a private record buffer through
    // next_batch() (amortized decode, no per-record virtual dispatch)
    // but execution stays round-major with one record per core per
    // round — shared-level state (L2 sets, arbiter occupancy) and each
    // core's Bernoulli stream see exactly the scalar order, so any
    // block size is bit-identical. A core retires when its refill
    // comes back empty: the same round its scalar next() would fail.
    std::vector<std::vector<trace::Record>> blocks(n);
    std::vector<std::size_t> len(n, 0);
    std::vector<std::size_t> pos(n, 0);
    for (auto& block : blocks) {
      block.resize(block_records);
    }
    while (active > 0) {
      if (active == 1) {
        // Degenerate tail: one core left (mixes of unequal-length traces
        // spend most of their rounds here, and a one-core chip starts
        // here). Round order IS record order, so drop the per-record
        // round scan: the requester declaration is loop-invariant
        // (retired cores issue nothing), and with an arbiter each record
        // still closes its own round, so the priority/occupancy
        // accounting replays the generic loop exactly.
        std::size_t c = 0;
        while (done[c] != 0) {
          ++c;
        }
        if (arb != nullptr) {
          arb->begin_request(c);
          for (;;) {
            if (pos[c] == len[c]) {
              len[c] = sources[c]->next_batch(blocks[c].data(), block_records);
              pos[c] = 0;
              if (len[c] == 0) {
                break;
              }
            }
            const trace::Record* records = blocks[c].data();
            const std::size_t end = len[c];
            for (std::size_t p = pos[c]; p < end; ++p) {
              cores[c]->step_fast(records[p], states[c]);
              arb->new_round();
            }
            pos[c] = end;
          }
        } else {
          // Nothing shared to arbitrate: whole blocks at a time.
          if (pos[c] < len[c]) {
            cores[c]->step_batch(blocks[c].data() + pos[c], len[c] - pos[c],
                                 states[c]);
            pos[c] = len[c];
          }
          std::size_t got = 0;
          while ((got = sources[c]->next_batch(blocks[c].data(),
                                               block_records)) > 0) {
            cores[c]->step_batch(blocks[c].data(), got, states[c]);
          }
        }
        done[c] = 1;
        active = 0;
        break;
      }
      for (std::size_t k = 0; k < n; ++k) {
        std::size_t c = start + k;
        if (c >= n) {
          c -= n;
        }
        if (done[c] != 0) {
          continue;
        }
        if (pos[c] == len[c]) {
          len[c] = sources[c]->next_batch(blocks[c].data(), block_records);
          pos[c] = 0;
          if (len[c] == 0) {
            done[c] = 1;
            --active;
            continue;
          }
        }
        if (arb != nullptr) {
          arb->begin_request(c);
        }
        cores[c]->step_fast(blocks[c][pos[c]++], states[c]);
      }
      if (arb != nullptr) {
        arb->new_round();
      }
      if (++start == n) {
        start = 0;
      }
    }
  }

  // Per-core roll-up. A one-core chip folds the shared levels into its
  // single result — bit-identical to run_workload; with several cores the
  // shared levels are accounted once, below.
  const bool single = n == 1;
  out.per_core.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    out.per_core.push_back(cores_[c]->finish_run(states[c], single));
  }
  if (single) {
    out.aggregate = out.per_core[0];
    return out;
  }

  cpu::RunResult& agg = out.aggregate;
  for (std::size_t c = 0; c < n; ++c) {
    const cpu::RunResult& r = out.per_core[c];
    agg.instructions += r.instructions;
    agg.cycles = std::max(agg.cycles, r.cycles);
    agg.seconds = std::max(agg.seconds, r.seconds);
    agg.energy.merge(r.energy);
    accumulate_cache_stats(agg.il1, r.il1);
    accumulate_cache_stats(agg.dl1, r.dl1);
  }
  // Early-finishing cores stay powered until the slowest core retires
  // (nothing models per-core power gating): charge each core's private
  // static power over its idle tail so the aggregate really is total chip
  // energy, not just the sum of per-core active windows.
  for (std::size_t c = 0; c < n; ++c) {
    const double idle_s = agg.seconds - out.per_core[c].seconds;
    if (idle_s <= 0.0) {
      continue;
    }
    const double l1_edc_leak_w =
        il1s_[c]->edc_leakage_power() + dl1s_[c]->edc_leakage_power();
    const double l1_leak_w = il1s_[c]->leakage_power() +
                             dl1s_[c]->leakage_power() - l1_edc_leak_w;
    agg.energy.add("l1.leakage", l1_leak_w * idle_s);
    agg.energy.add("l1.edc", l1_edc_leak_w * idle_s);
    agg.energy.add("arrays.leakage", cores_[c]->arrays_leakage_w() * idle_s);
    agg.energy.add("core.leakage", cores_[c]->logic_leakage_w() * idle_s);
  }
  // Per-core L1 snapshots under "C<i>." names, then the shared levels.
  for (std::size_t c = 0; c < n; ++c) {
    for (cache::LevelStats stats :
         {il1s_[c]->level_stats(), dl1s_[c]->level_stats()}) {
      // Built up stepwise: the one-line operator+ chain trips a GCC 12
      // -Wrestrict false positive (PR105329) under -Werror.
      std::string prefixed = "C";
      prefixed += std::to_string(c);
      prefixed += '.';
      prefixed += stats.name;
      stats.name = std::move(prefixed);
      agg.levels.push_back(std::move(stats));
    }
  }
  for (cache::MemoryLevel* level : shared_levels()) {
    const cache::LevelStats stats = level->level_stats();
    cpu::add_shared_level_energy(agg.energy, stats, agg.seconds);
    agg.levels.push_back(stats);
  }
  if (arbiter_ && arbiter_->arbitration_energy_j() != 0.0) {
    agg.energy.add(
        "contention." + cpu::level_energy_prefix(arbiter_->level_name()),
        arbiter_->arbitration_energy_j());
  }
  return out;
}

double System::l1_area_um2() const noexcept {
  double area = 0.0;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    area += il1s_[c]->total_area_um2() + dl1s_[c]->total_area_um2();
  }
  return area;
}

double System::cache_area_um2() const noexcept {
  return l1_area_um2() + (l2_ ? l2_->total_area_um2() : 0.0);
}

const yield::CacheCellPlan& cell_plan_for(yield::Scenario scenario) {
  // Shared across every System built by concurrent explorer workers; the
  // map's node-based references stay valid after later insertions, so the
  // lock only needs to cover lookup + the one-time sizing run.
  static std::mutex mutex;
  static std::map<yield::Scenario, yield::CacheCellPlan> plans;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = plans.find(scenario);
  if (it == plans.end()) {
    it = plans.emplace(scenario, yield::run_methodology(scenario)).first;
  }
  return it->second;
}

cpu::RunResult run_one(const SystemConfig& config, const std::string& workload,
                       std::uint64_t workload_seed, std::size_t scale) {
  System system(config, cell_plan_for(config.design.scenario));
  return system.run_workload(workload, workload_seed, scale);
}

}  // namespace hvc::sim
