#include "hvc/sim/system.hpp"

#include <map>
#include <mutex>

#include "hvc/common/error.hpp"

namespace hvc::sim {

std::string DesignChoice::label() const {
  std::string out = "scenario";
  out += yield::to_string(scenario);
  out += proposed ? "/proposed" : "/baseline";
  return out;
}

CachePlan build_cache_plan(const DesignChoice& design,
                           const yield::CacheCellPlan& cells,
                           std::size_t total_ways, std::size_t ule_ways,
                           bool inject_hard_faults) {
  expects(ule_ways >= 1 && ule_ways < total_ways,
          "need at least one ULE way and one HP way");
  CachePlan plan;
  plan.ways.resize(total_ways);
  plan.way_hard_pf.assign(total_ways, 0.0);

  const bool scenario_b = design.scenario == yield::Scenario::kB;
  const edc::Protection hp_ways_protection =
      scenario_b ? edc::Protection::kSecded : edc::Protection::kNone;

  for (std::size_t w = 0; w < total_ways; ++w) {
    const bool is_ule = w >= total_ways - ule_ways;
    power::WayPlan& way = plan.ways[w];
    way.ule_way = is_ule;
    if (!is_ule) {
      // HP way: 6T cells, gated off at ULE.
      way.cell = cells.hp_6t.cell;
      way.hp_protection = hp_ways_protection;
      way.ule_protection = hp_ways_protection;
      continue;
    }
    if (!design.proposed) {
      // Baseline ULE way: 10T sized for fault-free NST operation.
      way.cell = cells.baseline_10t.cell;
      way.hp_protection = hp_ways_protection;
      way.ule_protection = hp_ways_protection;
      if (inject_hard_faults) {
        plan.way_hard_pf[w] = cells.baseline_10t.pf;
      }
    } else {
      // Proposed ULE way: smaller 8T with the stronger code at ULE only.
      way.cell = cells.proposed_8t.cell;
      way.hp_protection = hp_ways_protection;
      way.ule_protection = scenario_b ? edc::Protection::kDected
                                      : edc::Protection::kSecded;
      if (inject_hard_faults) {
        plan.way_hard_pf[w] = cells.proposed_8t.pf;
      }
    }
  }
  return plan;
}

System::System(const SystemConfig& config, const yield::CacheCellPlan& cells)
    : config_(config), rng_(config.seed) {
  if (config_.hierarchy.has_l2()) {
    const L2Spec& l2 = *config_.hierarchy.l2;
    expects(l2.org.line_bytes >= config_.org.line_bytes &&
                l2.org.line_bytes % config_.org.line_bytes == 0,
            "L2 lines must cover whole L1 lines");
    memory_level_ = std::make_unique<cache::MainMemoryLevel>(
        memory_, l2.memory_latency_cycles);
    const CachePlan l2_plan = build_cache_plan(
        {config_.design.scenario, l2.proposed}, cells, l2.org.ways,
        l2.ule_ways, config_.inject_hard_faults);
    cache::CacheConfig cc;
    cc.name = "L2";
    cc.org = l2.org;
    cc.ways = l2_plan.ways;
    cc.way_hard_pf = l2_plan.way_hard_pf;
    cc.write_policy = config_.write_policy;
    cc.hit_latency_cycles = l2.hit_latency_cycles;
    cc.memory_latency_cycles = l2.memory_latency_cycles;
    cc.hp = config_.hp;
    cc.ule = config_.ule;
    cc.fault_seed = config_.seed ^ 0x22;
    l2_ = std::make_unique<cache::Cache>(cc, *memory_level_, rng_);
  }

  const CachePlan plan =
      build_cache_plan(config_.design, cells, config_.org.ways,
                       config_.ule_ways, config_.inject_hard_faults);

  const auto make_cache = [&](const std::string& name, std::uint64_t salt) {
    cache::CacheConfig cc;
    cc.name = name;
    cc.org = config_.org;
    cc.ways = plan.ways;
    cc.way_hard_pf = plan.way_hard_pf;
    cc.write_policy = config_.write_policy;
    cc.memory_latency_cycles = config_.memory_latency_cycles;
    cc.hp = config_.hp;
    cc.ule = config_.ule;
    cc.fault_seed = config_.seed ^ salt;
    // Two-level shape: miss straight into memory (the cache wraps its own
    // terminal, preserving the pre-hierarchy behaviour bit-for-bit).
    return l2_ ? std::make_unique<cache::Cache>(cc, *l2_, rng_)
               : std::make_unique<cache::Cache>(cc, memory_, rng_);
  };
  il1_ = make_cache("IL1", 0x11);
  dl1_ = make_cache("DL1", 0xDD);

  il1_->set_mode(config_.mode);
  dl1_->set_mode(config_.mode);
  if (l2_) {
    l2_->set_mode(config_.mode);
  }
  rebuild_core();
}

void System::rebuild_core() {
  const power::OperatingPoint op =
      config_.mode == power::Mode::kHp ? config_.hp : config_.ule;
  cpu::MemoryPorts ports;
  ports.il1 = il1_.get();
  ports.dl1 = dl1_.get();
  if (l2_) {
    ports.shared.push_back(l2_.get());
    ports.shared.push_back(memory_level_.get());
  }
  core_ = std::make_unique<cpu::Core>(config_.core, std::move(ports), op);
}

void System::set_mode(power::Mode mode) {
  if (mode == config_.mode) {
    return;
  }
  // Capture the transition's cache energy (writebacks + re-encode scrub).
  // Top-down: the L1s drain first so their dirty victims land in the L2,
  // then the L2 drains into memory.
  il1_->clear_energy();
  dl1_->clear_energy();
  if (l2_) {
    l2_->clear_energy();
  }
  il1_->set_mode(mode);
  dl1_->set_mode(mode);
  if (l2_) {
    l2_->set_mode(mode);
  }
  mode_switch_energy_j_ += il1_->total_energy_j() + dl1_->total_energy_j() +
                           (l2_ ? l2_->total_energy_j() : 0.0);
  il1_->clear_energy();
  dl1_->clear_energy();
  if (l2_) {
    l2_->clear_energy();
  }
  config_.mode = mode;
  ++mode_switches_;
  rebuild_core();
}

void System::flush() {
  il1_->flush();
  dl1_->flush();
  if (l2_) {
    l2_->flush();
  }
}

double System::chip_leakage_w() const noexcept {
  return il1_->leakage_power() + dl1_->leakage_power() +
         (l2_ ? l2_->leakage_power() : 0.0) + core_->core_leakage_w();
}

cpu::RunResult System::run_workload(const std::string& name,
                                    std::uint64_t seed, std::size_t scale) {
  const wl::WorkloadInfo& info = wl::find_workload(name);
  const wl::WorkloadResult workload = info.run(seed, scale);
  ensure(workload.self_check, "workload self-check failed: " + name);
  return run_trace(workload.tracer);
}

cpu::RunResult System::run_trace(const trace::Tracer& tracer) {
  return core_->run(tracer);
}

double System::l1_area_um2() const noexcept {
  return il1_->total_area_um2() + dl1_->total_area_um2();
}

double System::cache_area_um2() const noexcept {
  return l1_area_um2() + (l2_ ? l2_->total_area_um2() : 0.0);
}

const yield::CacheCellPlan& cell_plan_for(yield::Scenario scenario) {
  // Shared across every System built by concurrent explorer workers; the
  // map's node-based references stay valid after later insertions, so the
  // lock only needs to cover lookup + the one-time sizing run.
  static std::mutex mutex;
  static std::map<yield::Scenario, yield::CacheCellPlan> plans;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = plans.find(scenario);
  if (it == plans.end()) {
    it = plans.emplace(scenario, yield::run_methodology(scenario)).first;
  }
  return it->second;
}

cpu::RunResult run_one(const SystemConfig& config, const std::string& workload,
                       std::uint64_t workload_seed, std::size_t scale) {
  System system(config, cell_plan_for(config.design.scenario));
  return system.run_workload(workload, workload_seed, scale);
}

}  // namespace hvc::sim
