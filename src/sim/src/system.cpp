#include "hvc/sim/system.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <mutex>

#include "hvc/common/error.hpp"

namespace hvc::sim {

namespace {

[[nodiscard]] std::unique_ptr<cache::ArbitrationModel> make_arbitration(
    ArbitrationKind kind) {
  if (kind == ArbitrationKind::kFree) {
    return std::make_unique<cache::FreeArbitration>();
  }
  return std::make_unique<cache::SinglePortArbitration>();
}

void accumulate_cache_stats(cache::CacheStats& into,
                            const cache::CacheStats& from) {
  into.accesses += from.accesses;
  into.hits += from.hits;
  into.misses += from.misses;
  into.loads += from.loads;
  into.stores += from.stores;
  into.ifetches += from.ifetches;
  into.fills += from.fills;
  into.writebacks += from.writebacks;
  into.edc_corrections += from.edc_corrections;
  into.edc_detected += from.edc_detected;
  into.mode_switch_writebacks += from.mode_switch_writebacks;
  into.soft_errors_injected += from.soft_errors_injected;
}

}  // namespace

std::string DesignChoice::label() const {
  std::string out = "scenario";
  out += yield::to_string(scenario);
  out += proposed ? "/proposed" : "/baseline";
  return out;
}

CachePlan build_cache_plan(const DesignChoice& design,
                           const yield::CacheCellPlan& cells,
                           std::size_t total_ways, std::size_t ule_ways,
                           bool inject_hard_faults) {
  expects(ule_ways >= 1 && ule_ways < total_ways,
          "need at least one ULE way and one HP way");
  CachePlan plan;
  plan.ways.resize(total_ways);
  plan.way_hard_pf.assign(total_ways, 0.0);

  const bool scenario_b = design.scenario == yield::Scenario::kB;
  const edc::Protection hp_ways_protection =
      scenario_b ? edc::Protection::kSecded : edc::Protection::kNone;

  for (std::size_t w = 0; w < total_ways; ++w) {
    const bool is_ule = w >= total_ways - ule_ways;
    power::WayPlan& way = plan.ways[w];
    way.ule_way = is_ule;
    if (!is_ule) {
      // HP way: 6T cells, gated off at ULE.
      way.cell = cells.hp_6t.cell;
      way.hp_protection = hp_ways_protection;
      way.ule_protection = hp_ways_protection;
      continue;
    }
    if (!design.proposed) {
      // Baseline ULE way: 10T sized for fault-free NST operation.
      way.cell = cells.baseline_10t.cell;
      way.hp_protection = hp_ways_protection;
      way.ule_protection = hp_ways_protection;
      if (inject_hard_faults) {
        plan.way_hard_pf[w] = cells.baseline_10t.pf;
      }
    } else {
      // Proposed ULE way: smaller 8T with the stronger code at ULE only.
      way.cell = cells.proposed_8t.cell;
      way.hp_protection = hp_ways_protection;
      way.ule_protection = scenario_b ? edc::Protection::kDected
                                      : edc::Protection::kSecded;
      if (inject_hard_faults) {
        plan.way_hard_pf[w] = cells.proposed_8t.pf;
      }
    }
  }
  return plan;
}

System::System(const SystemConfig& config, const yield::CacheCellPlan& cells)
    : config_(config), rng_(config.seed) {
  expects(config_.num_cores >= 1, "a System needs at least one core");
  const bool multicore = config_.num_cores > 1;
  if (config_.hierarchy.has_l2()) {
    const L2Spec& l2 = *config_.hierarchy.l2;
    expects(l2.org.line_bytes >= config_.org.line_bytes &&
                l2.org.line_bytes % config_.org.line_bytes == 0,
            "L2 lines must cover whole L1 lines");
    memory_level_ = std::make_unique<cache::MainMemoryLevel>(
        memory_, l2.memory_latency_cycles);
    const CachePlan l2_plan = build_cache_plan(
        {config_.design.scenario, l2.proposed}, cells, l2.org.ways,
        l2.ule_ways, config_.inject_hard_faults);
    cache::CacheConfig cc;
    cc.name = "L2";
    cc.org = l2.org;
    cc.ways = l2_plan.ways;
    cc.way_hard_pf = l2_plan.way_hard_pf;
    cc.write_policy = config_.write_policy;
    cc.hit_latency_cycles = l2.hit_latency_cycles;
    cc.memory_latency_cycles = l2.memory_latency_cycles;
    cc.hp = config_.hp;
    cc.ule = config_.ule;
    cc.fault_seed = config_.seed ^ 0x22;
    l2_ = std::make_unique<cache::Cache>(cc, *memory_level_, rng_);
  } else if (multicore) {
    // L2-less multi-core chip: the private L1s share the memory terminal
    // (and contend for its port) instead of owning one each.
    memory_level_ = std::make_unique<cache::MainMemoryLevel>(
        memory_, config_.memory_latency_cycles);
  }

  if (multicore) {
    const power::OperatingPoint& op =
        config_.mode == power::Mode::kHp ? config_.hp : config_.ule;
    cache::MemoryLevel& front =
        l2_ ? static_cast<cache::MemoryLevel&>(*l2_) : *memory_level_;
    arbiter_ = std::make_unique<cache::ArbitratedLevel>(
        front, config_.num_cores, op.vcc,
        make_arbitration(config_.arbitration.kind),
        config_.arbitration.energy);
  }

  const CachePlan plan =
      build_cache_plan(config_.design, cells, config_.org.ways,
                       config_.ule_ways, config_.inject_hard_faults);

  const auto make_cache = [&](const std::string& name, std::uint64_t salt) {
    cache::CacheConfig cc;
    cc.name = name;
    cc.org = config_.org;
    cc.ways = plan.ways;
    cc.way_hard_pf = plan.way_hard_pf;
    cc.write_policy = config_.write_policy;
    cc.memory_latency_cycles = config_.memory_latency_cycles;
    cc.hp = config_.hp;
    cc.ule = config_.ule;
    cc.fault_seed = config_.seed ^ salt;
    if (arbiter_) {
      return std::make_unique<cache::Cache>(cc, *arbiter_, rng_);
    }
    // Two-level shape: miss straight into memory (the cache wraps its own
    // terminal, preserving the pre-hierarchy behaviour bit-for-bit).
    return l2_ ? std::make_unique<cache::Cache>(cc, *l2_, rng_)
               : std::make_unique<cache::Cache>(cc, memory_, rng_);
  };
  // Per-core fault-map salts: core 0 keeps the pre-multicore 0x11/0xDD so
  // one-core chips are bit-identical; higher cores shift into disjoint
  // ranges (0x11/0xDD + c*256 never collide with each other or 0x22).
  for (std::size_t c = 0; c < config_.num_cores; ++c) {
    const std::uint64_t core_salt = static_cast<std::uint64_t>(c) << 8;
    il1s_.push_back(make_cache("IL1", 0x11 + core_salt));
    dl1s_.push_back(make_cache("DL1", 0xDD + core_salt));
  }

  for (std::size_t c = 0; c < config_.num_cores; ++c) {
    il1s_[c]->set_mode(config_.mode);
    dl1s_[c]->set_mode(config_.mode);
  }
  if (l2_) {
    l2_->set_mode(config_.mode);
  }
  rebuild_cores();
}

std::vector<cache::MemoryLevel*> System::shared_levels() noexcept {
  std::vector<cache::MemoryLevel*> levels;
  if (arbiter_) {
    // The arbiter fronts the L2 (or the memory terminal when no L2) and
    // reports that level's stats plus contention counters.
    levels.push_back(arbiter_.get());
    if (l2_) {
      levels.push_back(memory_level_.get());
    }
  } else if (l2_) {
    levels.push_back(l2_.get());
    levels.push_back(memory_level_.get());
  }
  return levels;
}

void System::rebuild_cores() {
  const power::OperatingPoint op =
      config_.mode == power::Mode::kHp ? config_.hp : config_.ule;
  cores_.clear();
  for (std::size_t c = 0; c < config_.num_cores; ++c) {
    cpu::MemoryPorts ports;
    ports.il1 = il1s_[c].get();
    ports.dl1 = dl1s_[c].get();
    ports.shared = shared_levels();
    cores_.push_back(
        std::make_unique<cpu::Core>(config_.core, std::move(ports), op));
  }
}

void System::set_mode(power::Mode mode) {
  if (mode == config_.mode) {
    return;
  }
  // Capture the transition's cache energy (writebacks + re-encode scrub).
  // Top-down: every core's L1s drain first so their dirty victims land in
  // the L2, then the L2 drains into memory.
  const auto for_each_cache = [this](auto&& fn) {
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      fn(*il1s_[c]);
      fn(*dl1s_[c]);
    }
    if (l2_) {
      fn(*l2_);
    }
  };
  for_each_cache([](cache::Cache& c) { c.clear_energy(); });
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    il1s_[c]->set_mode(mode);
    dl1s_[c]->set_mode(mode);
  }
  if (l2_) {
    l2_->set_mode(mode);
  }
  double transition_j = 0.0;
  for_each_cache(
      [&transition_j](cache::Cache& c) { transition_j += c.total_energy_j(); });
  mode_switch_energy_j_ += transition_j;
  for_each_cache([](cache::Cache& c) { c.clear_energy(); });
  config_.mode = mode;
  if (arbiter_) {
    arbiter_->set_vcc(
        (mode == power::Mode::kHp ? config_.hp : config_.ule).vcc);
  }
  ++mode_switches_;
  rebuild_cores();
}

void System::flush() {
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    il1s_[c]->flush();
    dl1s_[c]->flush();
  }
  if (l2_) {
    l2_->flush();
  }
}

double System::chip_leakage_w() const noexcept {
  double leak = l2_ ? l2_->leakage_power() : 0.0;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    leak += il1s_[c]->leakage_power() + dl1s_[c]->leakage_power() +
            cores_[c]->core_leakage_w();
  }
  return leak;
}

cpu::RunResult System::run_workload(const std::string& name,
                                    std::uint64_t seed, std::size_t scale) {
  const wl::WorkloadInfo& info = wl::find_workload(name);
  const wl::WorkloadResult workload = info.run(seed, scale);
  ensure(workload.self_check, "workload self-check failed: " + name);
  return run_trace(workload.tracer);
}

cpu::RunResult System::run_trace(const trace::Tracer& tracer) {
  return cores_[0]->run(tracer);
}

MulticoreResult System::run_mix(const std::vector<std::string>& workloads,
                                std::uint64_t seed, std::size_t scale) {
  expects(!workloads.empty(), "run_mix needs at least one workload");
  const std::size_t n = cores_.size();

  MulticoreResult out;
  out.core_workloads.reserve(n);
  std::vector<wl::WorkloadResult> runs;
  runs.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    const std::string& name = workloads[c % workloads.size()];
    const wl::WorkloadInfo& info = wl::find_workload(name);
    // Per-core workload seed: core 0 keeps `seed` so a one-name mix on a
    // one-core chip reproduces run_workload bit-for-bit; higher cores get
    // distinct streams even when the mix repeats a name.
    runs.push_back(info.run(seed + c, scale));
    ensure(runs.back().self_check, "workload self-check failed: " + name);
    out.core_workloads.push_back(name);
  }

  // Shared levels are cleared once for the whole mix (the arbiter clears
  // its contention counters and the level it fronts together).
  for (cache::MemoryLevel* level : shared_levels()) {
    level->clear_level_counters();
  }
  for (std::size_t c = 0; c < n; ++c) {
    cores_[c]->begin_run();
  }

  // Deterministic round-robin interleaver: one record per core per round,
  // with the start core rotating so the arbiter's uncontended priority
  // slot circulates (round-robin arbitration fairness).
  std::vector<cpu::Core::RunState> states(n);
  std::vector<std::size_t> pos(n, 0);
  std::size_t remaining = 0;
  for (const auto& run : runs) {
    remaining += run.tracer.records().size();
  }
  std::uint64_t round = 0;
  while (remaining > 0) {
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t c = (round + k) % n;
      const auto& records = runs[c].tracer.records();
      if (pos[c] >= records.size()) {
        continue;
      }
      if (arbiter_) {
        arbiter_->begin_request(c);
      }
      cores_[c]->step(records[pos[c]], states[c]);
      ++pos[c];
      --remaining;
    }
    if (arbiter_) {
      arbiter_->new_round();
    }
    ++round;
  }

  // Per-core roll-up. A one-core chip folds the shared levels into its
  // single result — bit-identical to run_workload; with several cores the
  // shared levels are accounted once, below.
  const bool single = n == 1;
  out.per_core.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    out.per_core.push_back(cores_[c]->finish_run(states[c], single));
  }
  if (single) {
    out.aggregate = out.per_core[0];
    return out;
  }

  cpu::RunResult& agg = out.aggregate;
  for (std::size_t c = 0; c < n; ++c) {
    const cpu::RunResult& r = out.per_core[c];
    agg.instructions += r.instructions;
    agg.cycles = std::max(agg.cycles, r.cycles);
    agg.seconds = std::max(agg.seconds, r.seconds);
    agg.energy.merge(r.energy);
    accumulate_cache_stats(agg.il1, r.il1);
    accumulate_cache_stats(agg.dl1, r.dl1);
  }
  // Early-finishing cores stay powered until the slowest core retires
  // (nothing models per-core power gating): charge each core's private
  // static power over its idle tail so the aggregate really is total chip
  // energy, not just the sum of per-core active windows.
  for (std::size_t c = 0; c < n; ++c) {
    const double idle_s = agg.seconds - out.per_core[c].seconds;
    if (idle_s <= 0.0) {
      continue;
    }
    const double l1_edc_leak_w =
        il1s_[c]->edc_leakage_power() + dl1s_[c]->edc_leakage_power();
    const double l1_leak_w = il1s_[c]->leakage_power() +
                             dl1s_[c]->leakage_power() - l1_edc_leak_w;
    agg.energy.add("l1.leakage", l1_leak_w * idle_s);
    agg.energy.add("l1.edc", l1_edc_leak_w * idle_s);
    agg.energy.add("arrays.leakage", cores_[c]->arrays_leakage_w() * idle_s);
    agg.energy.add("core.leakage", cores_[c]->logic_leakage_w() * idle_s);
  }
  // Per-core L1 snapshots under "C<i>." names, then the shared levels.
  for (std::size_t c = 0; c < n; ++c) {
    for (cache::LevelStats stats :
         {il1s_[c]->level_stats(), dl1s_[c]->level_stats()}) {
      stats.name = "C" + std::to_string(c) + "." + stats.name;
      agg.levels.push_back(std::move(stats));
    }
  }
  for (cache::MemoryLevel* level : shared_levels()) {
    const cache::LevelStats stats = level->level_stats();
    cpu::add_shared_level_energy(agg.energy, stats, agg.seconds);
    agg.levels.push_back(stats);
  }
  if (arbiter_ && arbiter_->arbitration_energy_j() != 0.0) {
    agg.energy.add(
        "contention." + cpu::level_energy_prefix(arbiter_->level_name()),
        arbiter_->arbitration_energy_j());
  }
  return out;
}

double System::l1_area_um2() const noexcept {
  double area = 0.0;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    area += il1s_[c]->total_area_um2() + dl1s_[c]->total_area_um2();
  }
  return area;
}

double System::cache_area_um2() const noexcept {
  return l1_area_um2() + (l2_ ? l2_->total_area_um2() : 0.0);
}

const yield::CacheCellPlan& cell_plan_for(yield::Scenario scenario) {
  // Shared across every System built by concurrent explorer workers; the
  // map's node-based references stay valid after later insertions, so the
  // lock only needs to cover lookup + the one-time sizing run.
  static std::mutex mutex;
  static std::map<yield::Scenario, yield::CacheCellPlan> plans;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = plans.find(scenario);
  if (it == plans.end()) {
    it = plans.emplace(scenario, yield::run_methodology(scenario)).first;
  }
  return it->second;
}

cpu::RunResult run_one(const SystemConfig& config, const std::string& workload,
                       std::uint64_t workload_seed, std::size_t scale) {
  System system(config, cell_plan_for(config.design.scenario));
  return system.run_workload(workload, workload_seed, scale);
}

}  // namespace hvc::sim
