#include "hvc/sim/duty_cycle.hpp"

#include "hvc/common/error.hpp"

namespace hvc::sim {

namespace {

void accumulate_run(DutyCycleResult& result, const cpu::RunResult& run,
                    bool ule) {
  (ule ? result.ule_active_energy_j : result.hp_active_energy_j) +=
      run.total_energy();
  result.total_seconds += run.seconds;
  if (ule) {
    result.ule_seconds += run.seconds;
  }
  result.instructions += run.instructions;
  result.edc_corrections += run.il1.edc_corrections + run.dl1.edc_corrections;
  result.edc_uncorrectable += run.il1.edc_detected + run.dl1.edc_detected;
}

}  // namespace

DutyCycleResult run_duty_cycle(System& system, const DutyCycleConfig& config) {
  expects(config.cycles >= 1, "need at least one duty cycle");
  expects(config.idle_fraction >= 0.0 && config.idle_fraction < 1.0,
          "idle fraction must be in [0,1)");

  DutyCycleResult result;
  const auto switch_to = [&](power::Mode mode) {
    const double before = system.mode_switch_energy_j();
    system.set_mode(mode);
    result.switch_energy_j += system.mode_switch_energy_j() - before;
    // Settle time: chip leaks at the target mode while Vcc/PLL stabilise.
    const double settle_leak =
        system.chip_leakage_w() * config.switch_settle_s;
    result.switch_energy_j += settle_leak;
    result.total_seconds += config.switch_settle_s;
    if (mode == power::Mode::kUle) {
      result.ule_seconds += config.switch_settle_s;
    }
  };

  for (std::size_t cycle = 0; cycle < config.cycles; ++cycle) {
    switch_to(power::Mode::kUle);
    double ule_active_seconds = 0.0;
    for (const auto& phase : config.ule_phases) {
      const auto run =
          system.run_workload(phase.workload, phase.seed + cycle, phase.scale);
      accumulate_run(result, run, /*ule=*/true);
      ule_active_seconds += run.seconds;
    }
    // Idle stretch between samples: leakage only, at ULE mode.
    if (config.idle_fraction > 0.0) {
      const double idle_seconds = ule_active_seconds * config.idle_fraction /
                                  (1.0 - config.idle_fraction);
      result.idle_energy_j += system.chip_leakage_w() * idle_seconds;
      result.total_seconds += idle_seconds;
      result.ule_seconds += idle_seconds;
    }

    switch_to(power::Mode::kHp);
    const auto burst = system.run_workload(
        config.hp_phase.workload, config.hp_phase.seed + cycle,
        config.hp_phase.scale);
    accumulate_run(result, burst, /*ule=*/false);
  }
  // End the mission back at ULE (the resting state).
  switch_to(power::Mode::kUle);
  result.mode_switches = system.mode_switches();
  return result;
}

DutyCycleResult run_duty_cycle(const DutyCycleConfig& config) {
  SystemConfig system_config;
  system_config.design = config.design;
  system_config.mode = power::Mode::kUle;
  system_config.seed = config.system_seed;
  System system(system_config, cell_plan_for(config.design.scenario));
  return run_duty_cycle(system, config);
}

}  // namespace hvc::sim
