#include "hvc/sim/report.hpp"

#include <cstdio>

#include "hvc/common/units.hpp"

namespace hvc::sim {

EpiBreakdown& EpiBreakdown::operator/=(double d) noexcept {
  if (d != 0.0) {
    l1_dynamic /= d;
    l1_leakage /= d;
    l1_edc /= d;
    l2 /= d;
    contention /= d;
    core_other /= d;
  }
  return *this;
}

EpiBreakdown epi_breakdown(const cpu::RunResult& result) {
  EpiBreakdown out;
  const auto instr = static_cast<double>(
      result.instructions == 0 ? 1 : result.instructions);
  out.l1_dynamic = result.energy.get("l1.dynamic") / instr;
  out.l1_leakage = result.energy.get("l1.leakage") / instr;
  out.l1_edc = result.energy.get("l1.edc") / instr;
  out.l2 = (result.energy.get("l2.dynamic") + result.energy.get("l2.edc") +
            result.energy.get("l2.leakage")) /
           instr;
  // Arbitration hardware of multi-core shared levels ("contention.l2" /
  // "contention.mem"); zero for single-core runs.
  for (const auto& [key, value] : result.energy.items()) {
    if (key.rfind("contention.", 0) == 0) {
      out.contention += value / instr;
    }
  }
  out.core_other =
      (result.energy.get("arrays.dynamic") +
       result.energy.get("arrays.leakage") +
       result.energy.get("core.dynamic") +
       result.energy.get("core.leakage")) /
      instr;
  return out;
}

EpiRow make_epi_row(const std::string& label, const cpu::RunResult& result,
                    double baseline_epi_total) {
  EpiRow row;
  row.label = label;
  row.epi = epi_breakdown(result);
  row.normalized =
      baseline_epi_total > 0.0 ? row.epi.total() / baseline_epi_total : 1.0;
  row.cpi = result.cpi();
  return row;
}

void print_epi_table(const std::string& title,
                     const std::vector<EpiRow>& rows) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-34s %10s %10s %10s %10s %10s %8s\n", "config", "L1.dyn",
              "L1.leak", "EDC", "core+oth", "EPI(norm)", "CPI");
  for (const auto& row : rows) {
    const double total = row.epi.total();
    const double norm = total > 0.0 ? row.normalized / total : 0.0;
    std::printf("%-34s %10.4f %10.4f %10.4f %10.4f %10.4f %8.3f\n",
                row.label.c_str(), row.epi.l1_dynamic * norm,
                row.epi.l1_leakage * norm, row.epi.l1_edc * norm,
                row.epi.core_other * norm, row.normalized, row.cpi);
  }
}

}  // namespace hvc::sim
