#include "hvc/workloads/gsm.hpp"

#include <algorithm>
#include <cmath>

#include "hvc/common/error.hpp"
#include "hvc/workloads/signal.hpp"

namespace hvc::wl {

namespace gsm {

namespace {

/// LTP gain quantization levels in Q6 (~0.1, 0.35, 0.65, 0.9).
constexpr std::array<std::int32_t, 4> kLtpGainQ6 = {6, 22, 42, 58};

[[nodiscard]] std::int32_t mul_q15(std::int32_t a, std::int32_t b) noexcept {
  return static_cast<std::int32_t>(
      (static_cast<std::int64_t>(a) * b) >> 15);
}

/// Levinson-Durbin on autocorrelation -> reflection coefficients (double).
[[nodiscard]] std::array<double, kLpcOrder> reflection_coeffs(
    const std::array<double, kLpcOrder + 1>& acf) {
  std::array<double, kLpcOrder> k{};
  if (acf[0] <= 0.0) {
    return k;  // silent frame
  }
  std::array<double, kLpcOrder + 1> a{};
  double err = acf[0];
  for (std::size_t m = 1; m <= kLpcOrder; ++m) {
    double acc = acf[m];
    for (std::size_t i = 1; i < m; ++i) {
      acc -= a[i] * acf[m - i];
    }
    double km = err > 1e-9 ? acc / err : 0.0;
    km = std::clamp(km, -0.98, 0.98);
    k[m - 1] = km;
    std::array<double, kLpcOrder + 1> next = a;
    next[m] = km;
    for (std::size_t i = 1; i < m; ++i) {
      next[i] = a[i] - km * a[m - i];
    }
    a = next;
    err *= (1.0 - km * km);
  }
  return k;
}

/// 6-bit quantization of a reflection coefficient (Q15 semantics).
[[nodiscard]] std::int8_t quantize_k(double k) noexcept {
  const auto scaled = static_cast<std::int32_t>(std::lround(k * 32768.0));
  return static_cast<std::int8_t>(std::clamp(scaled >> 10, -31, 31));
}

[[nodiscard]] std::int32_t dequantize_k(std::int8_t kq) noexcept {
  return static_cast<std::int32_t>(kq) << 10;  // Q15
}

/// Short-term analysis lattice over one frame (state carried across
/// frames), producing the residual.
struct AnalysisState {
  std::array<std::int32_t, kLpcOrder> u{};
};

void analysis_filter(AnalysisState& state,
                     const std::array<std::int32_t, kLpcOrder>& rp,
                     const std::int16_t* input, std::int32_t* residual,
                     std::size_t count) {
  for (std::size_t n = 0; n < count; ++n) {
    std::int32_t di = input[n];
    std::int32_t sav = di;
    for (std::size_t i = 0; i < kLpcOrder; ++i) {
      const std::int32_t temp = state.u[i] + mul_q15(rp[i], di);
      di += mul_q15(rp[i], state.u[i]);
      state.u[i] = sav;
      sav = temp;
    }
    residual[n] = std::clamp(di, -32768, 32767);
  }
}

/// Short-term synthesis lattice (the exact decoder-side inverse path).
struct SynthesisState {
  std::array<std::int32_t, kLpcOrder + 1> v{};
};

void synthesis_filter(SynthesisState& state,
                      const std::array<std::int32_t, kLpcOrder>& rp,
                      const std::int32_t* residual, std::int16_t* output,
                      std::size_t count) {
  for (std::size_t n = 0; n < count; ++n) {
    std::int32_t sri = residual[n];
    for (std::size_t i = kLpcOrder; i-- > 0;) {
      sri -= mul_q15(rp[i], state.v[i]);
      state.v[i + 1] = state.v[i] + mul_q15(rp[i], sri);
    }
    state.v[0] = sri;
    output[n] = static_cast<std::int16_t>(std::clamp(sri, -32768, 32767));
  }
}

/// Long-term history: reconstructed residual of the previous kMaxLag
/// samples relative to the current subframe start.
struct LtpHistory {
  std::array<std::int32_t, kMaxLag> past{};  // past[kMaxLag-1] = newest

  [[nodiscard]] std::int32_t at_lag(std::size_t lag, std::size_t i) const {
    // Sample i of a segment starting `lag` samples in the past. For
    // i >= lag the reference wraps onto the current (already
    // reconstructed) part; GSM avoids that by lag >= kMinLag = subframe.
    return past[kMaxLag - lag + i];
  }

  void push(const std::int32_t* recon, std::size_t count) {
    // Shift left by count and append.
    for (std::size_t i = 0; i + count < kMaxLag; ++i) {
      past[i] = past[i + count];
    }
    for (std::size_t i = 0; i < count; ++i) {
      past[kMaxLag - count + i] = recon[i];
    }
  }
};

/// Decodes one subframe's reconstructed residual from its code (shared by
/// encoder local reconstruction and decoder -> bit-exact by construction).
void reconstruct_subframe(const SubframeCode& code, const LtpHistory& history,
                          std::int32_t* recon) {
  const std::int32_t gain = kLtpGainQ6[static_cast<std::size_t>(code.gain_idx)];
  for (std::size_t i = 0; i < kSubframeSize; ++i) {
    const std::int32_t pred =
        (gain * history.at_lag(static_cast<std::size_t>(code.lag), i)) >> 6;
    recon[i] = pred;
  }
  for (std::size_t p = 0; p < kPulses; ++p) {
    const std::size_t pos = static_cast<std::size_t>(code.grid) + 3 * p;
    if (pos < kSubframeSize) {
      recon[pos] += static_cast<std::int32_t>(code.pulses[p]) << code.shift;
    }
  }
  for (std::size_t i = 0; i < kSubframeSize; ++i) {
    recon[i] = std::clamp(recon[i], -32768, 32767);
  }
}

}  // namespace

Bitstream encode(const std::vector<std::int16_t>& pcm,
                 std::vector<std::int16_t>* local_recon) {
  Bitstream stream;
  const std::size_t frames = pcm.size() / kFrameSize;
  stream.frames.reserve(frames);
  if (local_recon != nullptr) {
    local_recon->assign(frames * kFrameSize, 0);
  }

  AnalysisState analysis;
  SynthesisState synthesis;
  LtpHistory history;

  std::array<std::int32_t, kFrameSize> residual{};
  std::array<std::int32_t, kFrameSize> recon_residual{};

  for (std::size_t f = 0; f < frames; ++f) {
    const std::int16_t* frame = pcm.data() + f * kFrameSize;
    FrameCode code;

    // --- LPC analysis ---
    std::array<double, kLpcOrder + 1> acf{};
    for (std::size_t lag = 0; lag <= kLpcOrder; ++lag) {
      double acc = 0.0;
      for (std::size_t i = lag; i < kFrameSize; ++i) {
        acc += static_cast<double>(frame[i]) *
               static_cast<double>(frame[i - lag]);
      }
      acf[lag] = acc;
    }
    const auto k = reflection_coeffs(acf);
    std::array<std::int32_t, kLpcOrder> rp{};
    for (std::size_t i = 0; i < kLpcOrder; ++i) {
      // The GSM lattice convention needs the negated PARCOR coefficients
      // relative to our Levinson recursion (verified by prediction gain).
      code.kq[i] = quantize_k(-k[i]);
      rp[i] = dequantize_k(code.kq[i]);
    }

    // --- short-term residual ---
    analysis_filter(analysis, rp, frame, residual.data(), kFrameSize);

    // --- per-subframe LTP + RPE ---
    for (std::size_t sf = 0; sf < kSubframes; ++sf) {
      SubframeCode& sub = code.sub[sf];
      const std::int32_t* d = residual.data() + sf * kSubframeSize;

      // LTP lag search: maximize normalized cross-correlation.
      // corr^2 alone can exceed 2^63 on loud frames, so the division-free
      // score comparison runs in 128-bit arithmetic.
      __int128 best_score_num = 0;
      std::int64_t best_score_den = 1;
      std::size_t best_lag = kMinLag;
      for (std::size_t lag = kMinLag; lag <= kMaxLag; ++lag) {
        std::int64_t corr = 0;
        std::int64_t energy = 0;
        for (std::size_t i = 0; i < kSubframeSize; ++i) {
          const std::int64_t h = history.at_lag(lag, i);
          corr += static_cast<std::int64_t>(d[i]) * h;
          energy += h * h;
        }
        if (corr <= 0 || energy == 0) {
          continue;
        }
        // Compare corr^2/energy without division:
        const __int128 score_num = static_cast<__int128>(corr) * corr;
        if (score_num * best_score_den > best_score_num * energy) {
          best_score_num = score_num;
          best_score_den = energy;
          best_lag = lag;
        }
      }
      sub.lag = static_cast<std::int32_t>(best_lag);

      // Gain: corr/energy quantized to the nearest of 4 levels.
      std::int64_t corr = 0, energy = 0;
      for (std::size_t i = 0; i < kSubframeSize; ++i) {
        const std::int64_t h = history.at_lag(best_lag, i);
        corr += static_cast<std::int64_t>(d[i]) * h;
        energy += h * h;
      }
      double gain = energy > 0 ? static_cast<double>(corr) /
                                     static_cast<double>(energy)
                               : 0.0;
      gain = std::clamp(gain, 0.0, 1.0);
      std::size_t gain_idx = 0;
      double best_err = 1e9;
      for (std::size_t g = 0; g < kLtpGainQ6.size(); ++g) {
        const double err =
            std::fabs(gain - static_cast<double>(kLtpGainQ6[g]) / 64.0);
        if (err < best_err) {
          best_err = err;
          gain_idx = g;
        }
      }
      sub.gain_idx = static_cast<std::int32_t>(gain_idx);

      // LTP residual.
      std::array<std::int32_t, kSubframeSize> e{};
      const std::int32_t gq = kLtpGainQ6[gain_idx];
      for (std::size_t i = 0; i < kSubframeSize; ++i) {
        e[i] = d[i] - ((gq * history.at_lag(best_lag, i)) >> 6);
      }

      // RPE grid selection: the decimated grid with the most energy.
      std::size_t best_grid = 0;
      std::int64_t best_energy = -1;
      for (std::size_t grid = 0; grid < 3; ++grid) {
        std::int64_t sum = 0;
        for (std::size_t p = 0; p < kPulses; ++p) {
          const std::size_t pos = grid + 3 * p;
          if (pos < kSubframeSize) {
            sum += static_cast<std::int64_t>(e[pos]) * e[pos];
          }
        }
        if (sum > best_energy) {
          best_energy = sum;
          best_grid = grid;
        }
      }
      sub.grid = static_cast<std::int32_t>(best_grid);

      // Block shift from the max magnitude, 3-bit pulses in [-4,3].
      std::int32_t max_abs = 0;
      for (std::size_t p = 0; p < kPulses; ++p) {
        const std::size_t pos = best_grid + 3 * p;
        if (pos < kSubframeSize) {
          max_abs = std::max(max_abs, std::abs(e[pos]));
        }
      }
      std::int32_t shift = 0;
      while ((max_abs >> shift) > 3 && shift < 14) {
        ++shift;
      }
      sub.shift = shift;
      for (std::size_t p = 0; p < kPulses; ++p) {
        const std::size_t pos = best_grid + 3 * p;
        const std::int32_t value = pos < kSubframeSize ? e[pos] : 0;
        sub.pulses[p] =
            static_cast<std::int8_t>(std::clamp(value >> shift, -4, 3));
      }

      // Local reconstruction of the subframe residual; feeds the LTP
      // history exactly as the decoder will.
      reconstruct_subframe(sub, history,
                           recon_residual.data() + sf * kSubframeSize);
      history.push(recon_residual.data() + sf * kSubframeSize, kSubframeSize);
    }

    // Encoder-side synthesis for the self-check.
    if (local_recon != nullptr) {
      synthesis_filter(synthesis, rp, recon_residual.data(),
                       local_recon->data() + f * kFrameSize, kFrameSize);
    }
    stream.frames.push_back(code);
  }
  return stream;
}

std::vector<std::int16_t> decode(const Bitstream& bitstream) {
  std::vector<std::int16_t> out(bitstream.frames.size() * kFrameSize, 0);
  SynthesisState synthesis;
  LtpHistory history;
  std::array<std::int32_t, kFrameSize> recon_residual{};

  for (std::size_t f = 0; f < bitstream.frames.size(); ++f) {
    const FrameCode& code = bitstream.frames[f];
    std::array<std::int32_t, kLpcOrder> rp{};
    for (std::size_t i = 0; i < kLpcOrder; ++i) {
      rp[i] = dequantize_k(code.kq[i]);
    }
    for (std::size_t sf = 0; sf < kSubframes; ++sf) {
      reconstruct_subframe(code.sub[sf], history,
                           recon_residual.data() + sf * kSubframeSize);
      history.push(recon_residual.data() + sf * kSubframeSize, kSubframeSize);
    }
    synthesis_filter(synthesis, rp, recon_residual.data(),
                     out.data() + f * kFrameSize, kFrameSize);
  }
  return out;
}

}  // namespace gsm

namespace {
constexpr std::size_t kDefaultFrames = 48;  // 7680 samples, ~15KB: BigBench

/// Emits the traced memory traffic of GSM encoding/decoding.
/// The functional work is done by the reference implementation; the traced
/// arrays replay its exact access pattern (same loop trip counts). Sample
/// and code arrays span every frame — the stream is the BigBench-sized
/// footprint (paper IV-A1) — while filter state and LTP history are small
/// per-frame structures like in the real codec.
struct GsmTraceArrays {
  trace::Array<std::int16_t> samples;   ///< full input/output stream
  trace::Array<std::int32_t> residual;  ///< per-frame working buffer
  trace::Array<std::int32_t> history;
  trace::Array<std::int32_t> lattice_state;
  trace::Array<std::int32_t> codes;     ///< full bitstream

  static constexpr std::size_t kCodesPerFrame =
      gsm::kLpcOrder + gsm::kSubframes * (4 + gsm::kPulses);

  GsmTraceArrays(trace::Tracer& t, std::size_t frames)
      : samples(t, frames * gsm::kFrameSize),
        residual(t, gsm::kFrameSize),
        history(t, gsm::kMaxLag),
        lattice_state(t, gsm::kLpcOrder + 1),
        codes(t, frames * kCodesPerFrame) {}
};

void trace_lpc_and_lattice(trace::Tracer& t, GsmTraceArrays& arrays,
                           std::size_t frame, const trace::Block& acf_block,
                           const trace::Block& lattice_block) {
  const std::size_t base = frame * gsm::kFrameSize;
  // Autocorrelation: 9 lags over the frame.
  for (std::size_t lag = 0; lag <= gsm::kLpcOrder; ++lag) {
    for (std::size_t i = lag; i < gsm::kFrameSize; ++i) {
      if (i % 4 == 0) {
        t.exec(acf_block, true);
      }
      (void)arrays.samples.get(base + i);
      (void)arrays.samples.get(base + i - lag);
    }
  }
  // Lattice filter: per sample, order taps of state traffic.
  for (std::size_t n = 0; n < gsm::kFrameSize; ++n) {
    t.exec(lattice_block, n + 1 < gsm::kFrameSize);
    (void)arrays.samples.get(base + n);
    for (std::size_t i = 0; i < gsm::kLpcOrder; ++i) {
      (void)arrays.lattice_state.get(i);
      arrays.lattice_state.set(i, 0);
    }
    arrays.residual.set(n, 0);
  }
}

void trace_ltp_rpe(trace::Tracer& t, GsmTraceArrays& arrays,
                   std::size_t frame, const trace::Block& ltp_block,
                   const trace::Block& rpe_block) {
  for (std::size_t sf = 0; sf < gsm::kSubframes; ++sf) {
    // Lag search: (kMaxLag - kMinLag + 1) lags x subframe MACs.
    for (std::size_t lag = gsm::kMinLag; lag <= gsm::kMaxLag; ++lag) {
      for (std::size_t i = 0; i < gsm::kSubframeSize; ++i) {
        if (i % 8 == 0) {
          t.exec(ltp_block, true);
        }
        (void)arrays.residual.get(sf * gsm::kSubframeSize + i);
        (void)arrays.history.get((gsm::kMaxLag - lag + i) % gsm::kMaxLag);
      }
    }
    // RPE grid + quantization + history update.
    for (std::size_t i = 0; i < gsm::kSubframeSize; ++i) {
      t.exec(rpe_block, i + 1 < gsm::kSubframeSize);
      (void)arrays.residual.get(sf * gsm::kSubframeSize + i);
      arrays.history.set(i % gsm::kMaxLag, 0);
    }
    for (std::size_t p = 0; p < gsm::kPulses; ++p) {
      arrays.codes.set(frame * GsmTraceArrays::kCodesPerFrame +
                           gsm::kLpcOrder + sf * (4 + gsm::kPulses) + 4 + p,
                       0);
    }
  }
}

}  // namespace

WorkloadResult run_gsm_c(std::uint64_t seed, std::size_t scale) {
  WorkloadResult result;
  result.name = "gsm_c";
  const std::size_t frames = kDefaultFrames * std::max<std::size_t>(scale, 1);
  const auto pcm = make_speech(frames * gsm::kFrameSize, seed);

  // Reference encode with local reconstruction (functional ground truth).
  std::vector<std::int16_t> local_recon;
  const gsm::Bitstream stream = gsm::encode(pcm, &local_recon);

  // Traced replay of the encoder's memory behaviour.
  trace::Tracer& t = result.tracer;
  t.reserve(frames * 68000);  // measured ~67.5K records/frame
  GsmTraceArrays arrays(t, frames);
  const trace::Block prologue = t.block(48);
  const trace::Block acf_block = t.block(10);
  const trace::Block lattice_block = t.block(28);
  const trace::Block ltp_block = t.block(14);
  const trace::Block rpe_block = t.block(16);

  for (std::size_t f = 0; f < frames; ++f) {
    t.exec(prologue);
    trace_lpc_and_lattice(t, arrays, f, acf_block, lattice_block);
    trace_ltp_rpe(t, arrays, f, ltp_block, rpe_block);
  }

  // Self-check: the decoder reproduces the encoder's reconstruction
  // bit-exactly (closed-loop predictive coding) with usable quality.
  const auto decoded = gsm::decode(stream);
  bool exact = decoded.size() == local_recon.size();
  for (std::size_t i = 0; exact && i < decoded.size(); ++i) {
    exact = decoded[i] == local_recon[i];
  }
  result.fidelity_db = snr_db(pcm, decoded);
  result.self_check = exact && result.fidelity_db > 1.0;
  return result;
}

WorkloadResult run_gsm_d(std::uint64_t seed, std::size_t scale) {
  WorkloadResult result;
  result.name = "gsm_d";
  const std::size_t frames = kDefaultFrames * std::max<std::size_t>(scale, 1);
  const auto pcm = make_speech(frames * gsm::kFrameSize, seed);
  std::vector<std::int16_t> local_recon;
  const gsm::Bitstream stream = gsm::encode(pcm, &local_recon);

  trace::Tracer& t = result.tracer;
  t.reserve(frames * 12000);  // measured ~11.7K records/frame
  GsmTraceArrays arrays(t, frames);
  const trace::Block prologue = t.block(40);
  const trace::Block parse_block = t.block(12);
  const trace::Block excite_block = t.block(18);
  const trace::Block synth_block = t.block(30);

  for (std::size_t f = 0; f < frames; ++f) {
    t.exec(prologue);
    // Parse this frame's codes.
    for (std::size_t i = 0; i < GsmTraceArrays::kCodesPerFrame; ++i) {
      if (i % 4 == 0) {
        t.exec(parse_block, true);
      }
      (void)arrays.codes.get(f * GsmTraceArrays::kCodesPerFrame + i);
    }
    // Rebuild excitation per subframe.
    for (std::size_t sf = 0; sf < gsm::kSubframes; ++sf) {
      for (std::size_t i = 0; i < gsm::kSubframeSize; ++i) {
        t.exec(excite_block, i + 1 < gsm::kSubframeSize);
        (void)arrays.history.get(i % gsm::kMaxLag);
        arrays.residual.set(sf * gsm::kSubframeSize + i, 0);
        arrays.history.set(i % gsm::kMaxLag, 0);
      }
    }
    // Synthesis lattice.
    for (std::size_t n = 0; n < gsm::kFrameSize; ++n) {
      t.exec(synth_block, n + 1 < gsm::kFrameSize);
      (void)arrays.residual.get(n);
      for (std::size_t i = 0; i < gsm::kLpcOrder; ++i) {
        (void)arrays.lattice_state.get(i);
        arrays.lattice_state.set(i, 0);
      }
      arrays.samples.set(f * gsm::kFrameSize + n, 0);
    }
  }

  const auto decoded = gsm::decode(stream);
  bool exact = decoded.size() == local_recon.size();
  for (std::size_t i = 0; exact && i < decoded.size(); ++i) {
    exact = decoded[i] == local_recon[i];
  }
  result.fidelity_db = snr_db(pcm, decoded);
  result.self_check = exact && result.fidelity_db > 1.0;
  return result;
}

}  // namespace hvc::wl
