#include "hvc/workloads/workload.hpp"

#include "hvc/common/error.hpp"
#include "hvc/workloads/adpcm.hpp"
#include "hvc/workloads/epic.hpp"
#include "hvc/workloads/g721.hpp"
#include "hvc/workloads/gsm.hpp"
#include "hvc/workloads/mpeg2.hpp"

namespace hvc::wl {

std::string to_string(BenchClass cls) {
  return cls == BenchClass::kSmall ? "SmallBench" : "BigBench";
}

const std::vector<WorkloadInfo>& registry() {
  static const std::vector<WorkloadInfo> workloads = {
      {"adpcm_c", BenchClass::kSmall, run_adpcm_c},
      {"adpcm_d", BenchClass::kSmall, run_adpcm_d},
      {"epic_c", BenchClass::kSmall, run_epic_c},
      {"epic_d", BenchClass::kSmall, run_epic_d},
      {"g721_c", BenchClass::kBig, run_g721_c},
      {"g721_d", BenchClass::kBig, run_g721_d},
      {"gsm_c", BenchClass::kBig, run_gsm_c},
      {"gsm_d", BenchClass::kBig, run_gsm_d},
      {"mpeg2_c", BenchClass::kBig, run_mpeg2_c},
      {"mpeg2_d", BenchClass::kBig, run_mpeg2_d},
  };
  return workloads;
}

const WorkloadInfo& find_workload(const std::string& name) {
  for (const auto& info : registry()) {
    if (info.name == name) {
      return info;
    }
  }
  throw ConfigError("unknown workload: " + name);
}

bool has_workload(const std::string& name) noexcept {
  for (const auto& info : registry()) {
    if (info.name == name) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> names_of(BenchClass cls) {
  std::vector<std::string> names;
  for (const auto& info : registry()) {
    if (info.bench_class == cls) {
      names.push_back(info.name);
    }
  }
  return names;
}

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const auto& info : registry()) {
    names.push_back(info.name);
  }
  return names;
}

}  // namespace hvc::wl
