#include "hvc/workloads/mpeg2.hpp"

#include <algorithm>
#include <cmath>

#include "hvc/common/error.hpp"
#include "hvc/workloads/signal.hpp"

namespace hvc::wl {

namespace mpeg2 {

namespace {

/// Q10 cosine table: c[u][x] = round(1024 * a(u) * cos((2x+1)u*pi/16))
/// with a(0)=sqrt(1/8), a(u)=sqrt(2/8).
struct CosTable {
  std::array<std::array<std::int32_t, kBlock>, kBlock> c{};
  CosTable() {
    for (std::size_t u = 0; u < kBlock; ++u) {
      const double a = u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (std::size_t x = 0; x < kBlock; ++x) {
        c[u][x] = static_cast<std::int32_t>(std::lround(
            1024.0 * a *
            std::cos((2.0 * static_cast<double>(x) + 1.0) *
                     static_cast<double>(u) * 3.14159265358979323846 / 16.0)));
      }
    }
  }
};

const CosTable& cos_table() {
  static const CosTable table;
  return table;
}

/// Zigzag scan order for an 8x8 block.
struct Zigzag {
  std::array<std::size_t, kBlock * kBlock> order{};
  Zigzag() {
    std::size_t index = 0;
    for (std::size_t s = 0; s < 2 * kBlock - 1; ++s) {
      if (s % 2 == 0) {
        for (std::size_t y = std::min(s, kBlock - 1) + 1; y-- > 0;) {
          const std::size_t x = s - y;
          if (x < kBlock && y < kBlock) {
            order[index++] = y * kBlock + x;
          }
        }
      } else {
        for (std::size_t x = std::min(s, kBlock - 1) + 1; x-- > 0;) {
          const std::size_t y = s - x;
          if (x < kBlock && y < kBlock) {
            order[index++] = y * kBlock + x;
          }
        }
      }
    }
  }
};

const Zigzag& zigzag() {
  static const Zigzag z;
  return z;
}

[[nodiscard]] std::uint8_t clamp_pixel(std::int32_t v) noexcept {
  return static_cast<std::uint8_t>(std::clamp(v, 0, 255));
}

/// Sum of absolute differences between a macroblock of `cur` and a
/// displaced macroblock of `ref` (both width x height, positions valid).
[[nodiscard]] std::int64_t sad16(const std::vector<std::uint8_t>& cur,
                                 const std::vector<std::uint8_t>& ref,
                                 std::size_t width, std::size_t mbx,
                                 std::size_t mby, std::int32_t dx,
                                 std::int32_t dy) {
  std::int64_t sum = 0;
  for (std::size_t y = 0; y < kMacroblock; ++y) {
    const std::size_t cy = mby + y;
    const std::size_t ry = static_cast<std::size_t>(
        static_cast<std::int64_t>(cy) + dy);
    for (std::size_t x = 0; x < kMacroblock; ++x) {
      const std::size_t cx = mbx + x;
      const std::size_t rx = static_cast<std::size_t>(
          static_cast<std::int64_t>(cx) + dx);
      sum += std::abs(static_cast<std::int32_t>(cur[cy * width + cx]) -
                      static_cast<std::int32_t>(ref[ry * width + rx]));
    }
  }
  return sum;
}

[[nodiscard]] bool mv_valid(std::size_t width, std::size_t height,
                            std::size_t mbx, std::size_t mby, std::int32_t dx,
                            std::int32_t dy) noexcept {
  const auto x0 = static_cast<std::int64_t>(mbx) + dx;
  const auto y0 = static_cast<std::int64_t>(mby) + dy;
  return x0 >= 0 && y0 >= 0 &&
         x0 + static_cast<std::int64_t>(kMacroblock) <=
             static_cast<std::int64_t>(width) &&
         y0 + static_cast<std::int64_t>(kMacroblock) <=
             static_cast<std::int64_t>(height);
}

/// Three-step search around (0,0) with steps 4,2,1.
void motion_search(const std::vector<std::uint8_t>& cur,
                   const std::vector<std::uint8_t>& ref, std::size_t width,
                   std::size_t height, std::size_t mbx, std::size_t mby,
                   std::int32_t& best_dx, std::int32_t& best_dy) {
  best_dx = 0;
  best_dy = 0;
  std::int64_t best = sad16(cur, ref, width, mbx, mby, 0, 0);
  for (std::int32_t step = 4; step >= 1; step /= 2) {
    std::int32_t base_dx = best_dx;
    std::int32_t base_dy = best_dy;
    for (std::int32_t dy = -step; dy <= step; dy += step) {
      for (std::int32_t dx = -step; dx <= step; dx += step) {
        if (dx == 0 && dy == 0) {
          continue;
        }
        const std::int32_t cand_dx = base_dx + dx;
        const std::int32_t cand_dy = base_dy + dy;
        if (!mv_valid(width, height, mbx, mby, cand_dx, cand_dy)) {
          continue;
        }
        const std::int64_t sad =
            sad16(cur, ref, width, mbx, mby, cand_dx, cand_dy);
        if (sad < best) {
          best = sad;
          best_dx = cand_dx;
          best_dy = cand_dy;
        }
      }
    }
  }
}

}  // namespace

void forward_dct(const std::array<std::int32_t, kBlock * kBlock>& in,
                 std::array<std::int32_t, kBlock * kBlock>& out) {
  const auto& c = cos_table().c;
  std::array<std::int64_t, kBlock * kBlock> temp{};
  // Rows.
  for (std::size_t y = 0; y < kBlock; ++y) {
    for (std::size_t u = 0; u < kBlock; ++u) {
      std::int64_t acc = 0;
      for (std::size_t x = 0; x < kBlock; ++x) {
        acc += static_cast<std::int64_t>(c[u][x]) * in[y * kBlock + x];
      }
      temp[y * kBlock + u] = (acc + 512) >> 10;
    }
  }
  // Columns.
  for (std::size_t u = 0; u < kBlock; ++u) {
    for (std::size_t v = 0; v < kBlock; ++v) {
      std::int64_t acc = 0;
      for (std::size_t y = 0; y < kBlock; ++y) {
        acc += static_cast<std::int64_t>(c[v][y]) * temp[y * kBlock + u];
      }
      out[v * kBlock + u] = static_cast<std::int32_t>((acc + 512) >> 10);
    }
  }
}

void inverse_dct(const std::array<std::int32_t, kBlock * kBlock>& in,
                 std::array<std::int32_t, kBlock * kBlock>& out) {
  const auto& c = cos_table().c;
  std::array<std::int64_t, kBlock * kBlock> temp{};
  // Columns.
  for (std::size_t u = 0; u < kBlock; ++u) {
    for (std::size_t y = 0; y < kBlock; ++y) {
      std::int64_t acc = 0;
      for (std::size_t v = 0; v < kBlock; ++v) {
        acc += static_cast<std::int64_t>(c[v][y]) * in[v * kBlock + u];
      }
      temp[y * kBlock + u] = (acc + 512) >> 10;
    }
  }
  // Rows.
  for (std::size_t y = 0; y < kBlock; ++y) {
    for (std::size_t x = 0; x < kBlock; ++x) {
      std::int64_t acc = 0;
      for (std::size_t u = 0; u < kBlock; ++u) {
        acc += static_cast<std::int64_t>(c[u][x]) * temp[y * kBlock + u];
      }
      out[y * kBlock + x] = static_cast<std::int32_t>((acc + 512) >> 10);
    }
  }
}

Bitstream encode(const std::vector<std::vector<std::uint8_t>>& frames,
                 std::size_t width, std::size_t height, std::int32_t qstep,
                 std::vector<std::vector<std::uint8_t>>* local_recon) {
  expects(width % kMacroblock == 0 && height % kMacroblock == 0,
          "frame dimensions must be multiples of 16");
  expects(qstep >= 1, "quantizer step must be >= 1");
  Bitstream stream;
  stream.width = width;
  stream.height = height;
  stream.qstep = qstep;
  if (local_recon != nullptr) {
    local_recon->clear();
  }

  std::vector<std::uint8_t> reference(width * height, 0);
  const auto& zz = zigzag().order;

  for (std::size_t f = 0; f < frames.size(); ++f) {
    const auto& frame = frames[f];
    expects(frame.size() == width * height, "frame size mismatch");
    FrameCode frame_code;
    frame_code.intra = (f == 0);
    std::vector<std::uint8_t> recon(width * height, 0);

    for (std::size_t mby = 0; mby < height; mby += kMacroblock) {
      for (std::size_t mbx = 0; mbx < width; mbx += kMacroblock) {
        MacroblockCode mb;
        mb.intra = frame_code.intra;
        if (!mb.intra) {
          motion_search(frame, reference, width, height, mbx, mby, mb.mv_x,
                        mb.mv_y);
        }

        // Four 8x8 blocks: residual -> DCT -> quant -> dequant -> IDCT.
        for (std::size_t blk = 0; blk < 4; ++blk) {
          const std::size_t bx = mbx + (blk % 2) * kBlock;
          const std::size_t by = mby + (blk / 2) * kBlock;
          std::array<std::int32_t, kBlock * kBlock> residual{};
          for (std::size_t y = 0; y < kBlock; ++y) {
            for (std::size_t x = 0; x < kBlock; ++x) {
              const std::size_t px = bx + x;
              const std::size_t py = by + y;
              std::int32_t pred = 128;
              if (!mb.intra) {
                pred = reference[(py + static_cast<std::size_t>(
                                           static_cast<std::int64_t>(mb.mv_y))) *
                                     width +
                                 (px + static_cast<std::size_t>(
                                           static_cast<std::int64_t>(mb.mv_x)))];
              }
              residual[y * kBlock + x] =
                  static_cast<std::int32_t>(frame[py * width + px]) - pred;
            }
          }
          std::array<std::int32_t, kBlock * kBlock> transformed{};
          forward_dct(residual, transformed);
          // Quantize in zigzag order.
          std::array<std::int32_t, kBlock * kBlock> dequantized{};
          for (std::size_t i = 0; i < zz.size(); ++i) {
            const std::int32_t coeff = transformed[zz[i]];
            const std::int32_t q =
                coeff >= 0 ? (coeff + qstep / 2) / qstep
                           : -((-coeff + qstep / 2) / qstep);
            mb.coeffs[blk][i] = static_cast<std::int16_t>(
                std::clamp(q, -32768, 32767));
            dequantized[zz[i]] = q * qstep;
          }
          std::array<std::int32_t, kBlock * kBlock> restored{};
          inverse_dct(dequantized, restored);
          for (std::size_t y = 0; y < kBlock; ++y) {
            for (std::size_t x = 0; x < kBlock; ++x) {
              const std::size_t px = bx + x;
              const std::size_t py = by + y;
              std::int32_t pred = 128;
              if (!mb.intra) {
                pred = reference[(py + static_cast<std::size_t>(
                                           static_cast<std::int64_t>(mb.mv_y))) *
                                     width +
                                 (px + static_cast<std::size_t>(
                                           static_cast<std::int64_t>(mb.mv_x)))];
              }
              recon[py * width + px] =
                  clamp_pixel(pred + restored[y * kBlock + x]);
            }
          }
        }
        frame_code.macroblocks.push_back(mb);
      }
    }

    reference = recon;
    if (local_recon != nullptr) {
      local_recon->push_back(std::move(recon));
    }
    stream.frames.push_back(std::move(frame_code));
  }
  return stream;
}

std::vector<std::vector<std::uint8_t>> decode(const Bitstream& bitstream) {
  const std::size_t width = bitstream.width;
  const std::size_t height = bitstream.height;
  const auto& zz = zigzag().order;
  std::vector<std::vector<std::uint8_t>> out;
  std::vector<std::uint8_t> reference(width * height, 0);

  for (const auto& frame_code : bitstream.frames) {
    std::vector<std::uint8_t> recon(width * height, 0);
    std::size_t mb_index = 0;
    for (std::size_t mby = 0; mby < height; mby += kMacroblock) {
      for (std::size_t mbx = 0; mbx < width; mbx += kMacroblock) {
        const MacroblockCode& mb = frame_code.macroblocks[mb_index++];
        for (std::size_t blk = 0; blk < 4; ++blk) {
          const std::size_t bx = mbx + (blk % 2) * kBlock;
          const std::size_t by = mby + (blk / 2) * kBlock;
          std::array<std::int32_t, kBlock * kBlock> dequantized{};
          for (std::size_t i = 0; i < zz.size(); ++i) {
            dequantized[zz[i]] =
                static_cast<std::int32_t>(mb.coeffs[blk][i]) * bitstream.qstep;
          }
          std::array<std::int32_t, kBlock * kBlock> restored{};
          inverse_dct(dequantized, restored);
          for (std::size_t y = 0; y < kBlock; ++y) {
            for (std::size_t x = 0; x < kBlock; ++x) {
              const std::size_t px = bx + x;
              const std::size_t py = by + y;
              std::int32_t pred = 128;
              if (!mb.intra) {
                pred = reference[(py + static_cast<std::size_t>(
                                           static_cast<std::int64_t>(mb.mv_y))) *
                                     width +
                                 (px + static_cast<std::size_t>(
                                           static_cast<std::int64_t>(mb.mv_x)))];
              }
              recon[py * width + px] =
                  clamp_pixel(pred + restored[y * kBlock + x]);
            }
          }
        }
      }
    }
    reference = recon;
    out.push_back(std::move(recon));
  }
  return out;
}

}  // namespace mpeg2

namespace {
constexpr std::size_t kWidth = 64;
constexpr std::size_t kHeight = 64;
constexpr std::size_t kFrames = 3;
constexpr std::int32_t kQstep = 8;

/// Traced access-pattern replay of DCT/IDCT + motion search over the
/// frame buffers (functional work in the reference implementation).
struct Mpeg2TraceArrays {
  trace::Array<std::uint8_t> current;
  trace::Array<std::uint8_t> reference;
  trace::Array<std::int32_t> block;
  trace::Array<std::int32_t> cosines;
  trace::Array<std::int16_t> coeffs;

  Mpeg2TraceArrays(trace::Tracer& t, std::size_t pixels)
      : current(t, pixels),
        reference(t, pixels),
        block(t, mpeg2::kBlock * mpeg2::kBlock),
        cosines(t, mpeg2::kBlock * mpeg2::kBlock),
        coeffs(t, mpeg2::kBlock * mpeg2::kBlock) {}
};

void trace_dct8x8(trace::Tracer& t, Mpeg2TraceArrays& arrays,
                  const trace::Block& mac_block) {
  // Row and column passes: 2 * 8 * 8 dot products of length 8.
  for (std::size_t pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < mpeg2::kBlock * mpeg2::kBlock; ++i) {
      t.exec(mac_block, true);
      (void)arrays.block.get(i);
      (void)arrays.cosines.get(i % (mpeg2::kBlock * mpeg2::kBlock));
      arrays.block.set(i, 0);
    }
  }
}

void trace_block_io(trace::Tracer& t, Mpeg2TraceArrays& arrays,
                    std::size_t width, std::size_t bx, std::size_t by,
                    const trace::Block& pix_block, bool with_reference) {
  for (std::size_t y = 0; y < mpeg2::kBlock; ++y) {
    for (std::size_t x = 0; x < mpeg2::kBlock; ++x) {
      t.exec(pix_block, x + 1 < mpeg2::kBlock);
      (void)arrays.current.get((by + y) * width + bx + x);
      if (with_reference) {
        (void)arrays.reference.get((by + y) * width + bx + x);
      }
      arrays.block.set(y * mpeg2::kBlock + x, 0);
    }
  }
}

void trace_motion_search(trace::Tracer& t, Mpeg2TraceArrays& arrays,
                         std::size_t width, std::size_t height,
                         std::size_t mbx, std::size_t mby,
                         const trace::Block& sad_block) {
  // Three-step search: ~(1 + 3*8) SAD evaluations of 256 pixels each.
  const std::size_t evaluations = 1 + 3 * 8;
  for (std::size_t e = 0; e < evaluations; ++e) {
    for (std::size_t y = 0; y < mpeg2::kMacroblock; ++y) {
      t.exec(sad_block, true);
      for (std::size_t x = 0; x < mpeg2::kMacroblock; x += 2) {
        const std::size_t cy = std::min(mby + y, height - 1);
        const std::size_t cx = std::min(mbx + x, width - 1);
        (void)arrays.current.get(cy * width + cx);
        (void)arrays.reference.get(cy * width + cx);
      }
    }
  }
}

}  // namespace

WorkloadResult run_mpeg2_c(std::uint64_t seed, std::size_t scale) {
  WorkloadResult result;
  result.name = "mpeg2_c";
  const std::size_t frames = kFrames * std::max<std::size_t>(scale, 1);
  const auto video = make_video(kWidth, kHeight, frames, seed);

  std::vector<std::vector<std::uint8_t>> local_recon;
  const mpeg2::Bitstream stream =
      mpeg2::encode(video, kWidth, kHeight, kQstep, &local_recon);

  trace::Tracer& t = result.tracer;
  t.reserve(frames * 900000);
  Mpeg2TraceArrays arrays(t, kWidth * kHeight);
  const trace::Block prologue = t.block(64);
  const trace::Block sad_block = t.block(20);
  const trace::Block pix_block = t.block(8);
  const trace::Block mac_block = t.block(6);
  const trace::Block quant_block = t.block(9);

  for (std::size_t f = 0; f < frames; ++f) {
    t.exec(prologue);
    const bool intra = (f == 0);
    for (std::size_t mby = 0; mby < kHeight; mby += mpeg2::kMacroblock) {
      for (std::size_t mbx = 0; mbx < kWidth; mbx += mpeg2::kMacroblock) {
        if (!intra) {
          trace_motion_search(t, arrays, kWidth, kHeight, mbx, mby, sad_block);
        }
        for (std::size_t blk = 0; blk < 4; ++blk) {
          const std::size_t bx = mbx + (blk % 2) * mpeg2::kBlock;
          const std::size_t by = mby + (blk / 2) * mpeg2::kBlock;
          trace_block_io(t, arrays, kWidth, bx, by, pix_block, !intra);
          trace_dct8x8(t, arrays, mac_block);  // forward DCT
          for (std::size_t i = 0; i < mpeg2::kBlock * mpeg2::kBlock; ++i) {
            if (i % 4 == 0) {
              t.exec(quant_block, true);
            }
            (void)arrays.block.get(i);
            arrays.coeffs.set(i, 0);
          }
          trace_dct8x8(t, arrays, mac_block);  // IDCT for reconstruction
          trace_block_io(t, arrays, kWidth, bx, by, pix_block, !intra);
        }
      }
    }
  }

  // Self-check: decoder matches encoder reconstruction bit-exactly and
  // quality is sensible.
  const auto decoded = mpeg2::decode(stream);
  bool exact = decoded.size() == local_recon.size();
  double worst_psnr = 1e9;
  for (std::size_t f = 0; f < decoded.size(); ++f) {
    exact = exact && decoded[f] == local_recon[f];
    worst_psnr = std::min(worst_psnr, psnr_db(video[f], decoded[f]));
  }
  result.fidelity_db = worst_psnr;
  result.self_check = exact && worst_psnr > 20.0;
  return result;
}

WorkloadResult run_mpeg2_d(std::uint64_t seed, std::size_t scale) {
  WorkloadResult result;
  result.name = "mpeg2_d";
  const std::size_t frames = kFrames * std::max<std::size_t>(scale, 1);
  const auto video = make_video(kWidth, kHeight, frames, seed);
  std::vector<std::vector<std::uint8_t>> local_recon;
  const mpeg2::Bitstream stream =
      mpeg2::encode(video, kWidth, kHeight, kQstep, &local_recon);

  trace::Tracer& t = result.tracer;
  t.reserve(frames * 400000);
  Mpeg2TraceArrays arrays(t, kWidth * kHeight);
  const trace::Block prologue = t.block(56);
  const trace::Block parse_block = t.block(10);
  const trace::Block mac_block = t.block(6);
  const trace::Block mc_block = t.block(12);

  for (std::size_t f = 0; f < frames; ++f) {
    t.exec(prologue);
    const bool intra = (f == 0);
    for (std::size_t mby = 0; mby < kHeight; mby += mpeg2::kMacroblock) {
      for (std::size_t mbx = 0; mbx < kWidth; mbx += mpeg2::kMacroblock) {
        for (std::size_t blk = 0; blk < 4; ++blk) {
          const std::size_t bx = mbx + (blk % 2) * mpeg2::kBlock;
          const std::size_t by = mby + (blk / 2) * mpeg2::kBlock;
          // Parse + dequantize coefficients.
          for (std::size_t i = 0; i < mpeg2::kBlock * mpeg2::kBlock; ++i) {
            if (i % 4 == 0) {
              t.exec(parse_block, true);
            }
            (void)arrays.coeffs.get(i);
            arrays.block.set(i, 0);
          }
          trace_dct8x8(t, arrays, mac_block);  // IDCT
          // Motion compensate + store pixels.
          for (std::size_t y = 0; y < mpeg2::kBlock; ++y) {
            for (std::size_t x = 0; x < mpeg2::kBlock; ++x) {
              t.exec(mc_block, x + 1 < mpeg2::kBlock);
              if (!intra) {
                (void)arrays.reference.get((by + y) * kWidth + bx + x);
              }
              arrays.current.set((by + y) * kWidth + bx + x, 0);
            }
          }
        }
      }
    }
  }

  const auto decoded = mpeg2::decode(stream);
  bool exact = decoded.size() == local_recon.size();
  double worst_psnr = 1e9;
  for (std::size_t f = 0; f < decoded.size(); ++f) {
    exact = exact && decoded[f] == local_recon[f];
    worst_psnr = std::min(worst_psnr, psnr_db(video[f], decoded[f]));
  }
  result.fidelity_db = worst_psnr;
  result.self_check = exact && worst_psnr > 20.0;
  return result;
}

}  // namespace hvc::wl
