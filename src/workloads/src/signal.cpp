#include "hvc/workloads/signal.hpp"

#include <algorithm>
#include <cmath>

#include "hvc/common/error.hpp"

namespace hvc::wl {

namespace {
constexpr double kPi = 3.14159265358979323846;

[[nodiscard]] std::int16_t clamp16(double x) noexcept {
  return static_cast<std::int16_t>(std::clamp(x, -32768.0, 32767.0));
}

[[nodiscard]] std::uint8_t clamp8(double x) noexcept {
  return static_cast<std::uint8_t>(std::clamp(x, 0.0, 255.0));
}
}  // namespace

std::vector<std::int16_t> make_speech(std::size_t samples,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int16_t> out(samples);
  double f0 = rng.uniform(0.01, 0.03);  // fundamental, cycles/sample
  double phase1 = 0.0, phase2 = 0.0, phase3 = 0.0;
  double envelope = 0.3;
  for (std::size_t i = 0; i < samples; ++i) {
    // Syllable-like amplitude envelope: random walk with decay bursts.
    if (i % 400 == 0) {
      envelope = rng.uniform(0.05, 1.0);
      f0 += rng.uniform(-0.002, 0.002);
      f0 = std::clamp(f0, 0.008, 0.05);
    }
    phase1 += 2.0 * kPi * f0;
    phase2 += 2.0 * kPi * f0 * 2.1;
    phase3 += 2.0 * kPi * f0 * 3.3;
    const double tone = 0.6 * std::sin(phase1) + 0.25 * std::sin(phase2) +
                        0.1 * std::sin(phase3);
    const double noise = rng.normal(0.0, 0.03);
    out[i] = clamp16(12000.0 * envelope * tone + 800.0 * noise);
  }
  return out;
}

std::vector<std::uint8_t> make_image(std::size_t width, std::size_t height,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(width * height);
  // Random smooth blobs over a gradient background.
  struct Blob {
    double cx, cy, radius, amplitude;
  };
  std::vector<Blob> blobs;
  for (int b = 0; b < 6; ++b) {
    blobs.push_back({rng.uniform(0.0, static_cast<double>(width)),
                     rng.uniform(0.0, static_cast<double>(height)),
                     rng.uniform(3.0, static_cast<double>(width) / 3.0),
                     rng.uniform(-70.0, 70.0)});
  }
  const double gx = rng.uniform(-0.5, 0.5);
  const double gy = rng.uniform(-0.5, 0.5);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      double v = 128.0 + gx * static_cast<double>(x) +
                 gy * static_cast<double>(y);
      for (const auto& blob : blobs) {
        const double dx = static_cast<double>(x) - blob.cx;
        const double dy = static_cast<double>(y) - blob.cy;
        v += blob.amplitude *
             std::exp(-(dx * dx + dy * dy) / (2.0 * blob.radius * blob.radius));
      }
      v += rng.normal(0.0, 3.0);
      out[y * width + x] = clamp8(v);
    }
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> make_video(std::size_t width,
                                                  std::size_t height,
                                                  std::size_t frames,
                                                  std::uint64_t seed) {
  expects(frames >= 1, "video needs at least one frame");
  const auto base = make_image(width + 2 * frames, height + 2 * frames, seed);
  const std::size_t base_width = width + 2 * frames;
  Rng rng(seed ^ 0xF00D);
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(frames);
  for (std::size_t f = 0; f < frames; ++f) {
    // Content pans diagonally ~1 px/frame: motion search finds it.
    const std::size_t ox = f;
    const std::size_t oy = f;
    std::vector<std::uint8_t> frame(width * height);
    for (std::size_t y = 0; y < height; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        const double v =
            static_cast<double>(base[(y + oy) * base_width + (x + ox)]) +
            rng.normal(0.0, 1.5);
        frame[y * width + x] = clamp8(v);
      }
    }
    out.push_back(std::move(frame));
  }
  return out;
}

double snr_db(const std::vector<std::int16_t>& original,
              const std::vector<std::int16_t>& reconstructed) {
  expects(original.size() == reconstructed.size() && !original.empty(),
          "snr_db: size mismatch");
  double signal = 0.0, noise = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double s = original[i];
    const double e = s - static_cast<double>(reconstructed[i]);
    signal += s * s;
    noise += e * e;
  }
  if (noise <= 0.0) {
    return 120.0;  // lossless
  }
  return 10.0 * std::log10(std::max(signal, 1.0) / noise);
}

double psnr_db(const std::vector<std::uint8_t>& original,
               const std::vector<std::uint8_t>& reconstructed) {
  expects(original.size() == reconstructed.size() && !original.empty(),
          "psnr_db: size mismatch");
  double noise = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double e =
        static_cast<double>(original[i]) - static_cast<double>(reconstructed[i]);
    noise += e * e;
  }
  if (noise <= 0.0) {
    return 120.0;
  }
  const double mse = noise / static_cast<double>(original.size());
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace hvc::wl
