#include "hvc/workloads/epic.hpp"

#include <algorithm>
#include <limits>

#include "hvc/common/error.hpp"
#include "hvc/workloads/signal.hpp"

namespace hvc::wl {

namespace epic {

namespace {
/// Zero-run sentinel: INT32_MIN + runlength encodes a run of zeros.
constexpr std::int32_t kRunBase = std::numeric_limits<std::int32_t>::min();

/// Lossless S-transform pair: (a,b) -> (mean, diff).
inline void haar_fwd(std::int32_t a, std::int32_t b, std::int32_t& s,
                     std::int32_t& d) noexcept {
  // floor-division mean keeps the transform integer-reversible.
  s = (a + b) >> 1;
  d = a - b;
}

inline void haar_inv(std::int32_t s, std::int32_t d, std::int32_t& a,
                     std::int32_t& b) noexcept {
  a = s + ((d + 1) >> 1);
  b = a - d;
}
}  // namespace

void forward_pyramid(std::vector<std::int32_t>& coeffs, std::size_t width,
                     std::size_t height, std::size_t levels) {
  expects(coeffs.size() == width * height, "coefficient buffer size mismatch");
  std::vector<std::int32_t> scratch(std::max(width, height));
  for (std::size_t level = 0; level < levels; ++level) {
    const std::size_t w = width >> level;
    const std::size_t h = height >> level;
    expects(w >= 2 && h >= 2 && w % 2 == 0 && h % 2 == 0,
            "pyramid level does not divide evenly");
    // Rows: low-pass into the left half, high-pass into the right half.
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w / 2; ++x) {
        std::int32_t s, d;
        haar_fwd(coeffs[y * width + 2 * x], coeffs[y * width + 2 * x + 1], s,
                 d);
        scratch[x] = s;
        scratch[w / 2 + x] = d;
      }
      for (std::size_t x = 0; x < w; ++x) {
        coeffs[y * width + x] = scratch[x];
      }
    }
    // Columns.
    for (std::size_t x = 0; x < w; ++x) {
      for (std::size_t y = 0; y < h / 2; ++y) {
        std::int32_t s, d;
        haar_fwd(coeffs[(2 * y) * width + x], coeffs[(2 * y + 1) * width + x],
                 s, d);
        scratch[y] = s;
        scratch[h / 2 + y] = d;
      }
      for (std::size_t y = 0; y < h; ++y) {
        coeffs[y * width + x] = scratch[y];
      }
    }
  }
}

void inverse_pyramid(std::vector<std::int32_t>& coeffs, std::size_t width,
                     std::size_t height, std::size_t levels) {
  expects(coeffs.size() == width * height, "coefficient buffer size mismatch");
  std::vector<std::int32_t> scratch(std::max(width, height));
  for (std::size_t level = levels; level-- > 0;) {
    const std::size_t w = width >> level;
    const std::size_t h = height >> level;
    // Columns first (reverse of forward order).
    for (std::size_t x = 0; x < w; ++x) {
      for (std::size_t y = 0; y < h; ++y) {
        scratch[y] = coeffs[y * width + x];
      }
      for (std::size_t y = 0; y < h / 2; ++y) {
        std::int32_t a, b;
        haar_inv(scratch[y], scratch[h / 2 + y], a, b);
        coeffs[(2 * y) * width + x] = a;
        coeffs[(2 * y + 1) * width + x] = b;
      }
    }
    // Rows.
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        scratch[x] = coeffs[y * width + x];
      }
      for (std::size_t x = 0; x < w / 2; ++x) {
        std::int32_t a, b;
        haar_inv(scratch[x], scratch[w / 2 + x], a, b);
        coeffs[y * width + 2 * x] = a;
        coeffs[y * width + 2 * x + 1] = b;
      }
    }
  }
}

Encoded encode(const std::vector<std::uint8_t>& image, std::size_t width,
               std::size_t height, std::size_t levels, std::int32_t qstep) {
  expects(qstep >= 1, "quantizer step must be >= 1");
  Encoded out;
  out.width = width;
  out.height = height;
  out.levels = levels;
  out.qstep = qstep;

  std::vector<std::int32_t> coeffs(width * height);
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    coeffs[i] = static_cast<std::int32_t>(image[i]);
  }
  forward_pyramid(coeffs, width, height, levels);

  std::int32_t zero_run = 0;
  for (const auto c : coeffs) {
    // Symmetric round-to-nearest quantization.
    const std::int32_t q =
        c >= 0 ? (c + qstep / 2) / qstep : -((-c + qstep / 2) / qstep);
    if (q == 0) {
      ++zero_run;
      continue;
    }
    if (zero_run > 0) {
      out.symbols.push_back(kRunBase + zero_run);
      zero_run = 0;
    }
    out.symbols.push_back(q);
  }
  if (zero_run > 0) {
    out.symbols.push_back(kRunBase + zero_run);
  }
  return out;
}

std::vector<std::uint8_t> decode(const Encoded& encoded) {
  std::vector<std::int32_t> coeffs;
  coeffs.reserve(encoded.width * encoded.height);
  for (const auto symbol : encoded.symbols) {
    if (symbol < kRunBase + (1 << 30)) {  // zero-run sentinel range
      const std::int32_t run = symbol - kRunBase;
      coeffs.insert(coeffs.end(), static_cast<std::size_t>(run), 0);
    } else {
      coeffs.push_back(symbol * encoded.qstep);
    }
  }
  ensure(coeffs.size() == encoded.width * encoded.height,
         "epic decode: coefficient count mismatch");
  inverse_pyramid(coeffs, encoded.width, encoded.height, encoded.levels);
  std::vector<std::uint8_t> image(coeffs.size());
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    image[i] = static_cast<std::uint8_t>(std::clamp(coeffs[i], 0, 255));
  }
  return image;
}

}  // namespace epic

namespace {
constexpr std::size_t kTile = 16;     // SmallBench: ~1KB coefficient tile
constexpr std::size_t kLevels = 2;
constexpr std::int32_t kQstep = 4;
constexpr std::size_t kTiles = 8;     // number of tiles processed per run

/// Traced forward pyramid over an Array<int32_t> tile.
void traced_forward(trace::Tracer& t, trace::Array<std::int32_t>& coeffs,
                    trace::Array<std::int32_t>& scratch, std::size_t width,
                    std::size_t height, std::size_t levels,
                    const trace::Block& pair_block) {
  for (std::size_t level = 0; level < levels; ++level) {
    const std::size_t w = width >> level;
    const std::size_t h = height >> level;
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w / 2; ++x) {
        t.exec(pair_block, x + 1 < w / 2);
        const std::int32_t a = coeffs.get(y * width + 2 * x);
        const std::int32_t b = coeffs.get(y * width + 2 * x + 1);
        scratch.set(x, (a + b) >> 1);
        scratch.set(w / 2 + x, a - b);
      }
      for (std::size_t x = 0; x < w; ++x) {
        coeffs.set(y * width + x, scratch.get(x));
      }
    }
    for (std::size_t x = 0; x < w; ++x) {
      for (std::size_t y = 0; y < h / 2; ++y) {
        t.exec(pair_block, y + 1 < h / 2);
        const std::int32_t a = coeffs.get((2 * y) * width + x);
        const std::int32_t b = coeffs.get((2 * y + 1) * width + x);
        scratch.set(y, (a + b) >> 1);
        scratch.set(h / 2 + y, a - b);
      }
      for (std::size_t y = 0; y < h; ++y) {
        coeffs.set(y * width + x, scratch.get(y));
      }
    }
  }
}
}  // namespace

WorkloadResult run_epic_c(std::uint64_t seed, std::size_t scale) {
  WorkloadResult result;
  result.name = "epic_c";
  const std::size_t tiles = kTiles * std::max<std::size_t>(scale, 1);

  trace::Tracer& t = result.tracer;
  t.reserve(tiles * 12500);  // measured ~12.4K records/tile
  trace::Array<std::uint8_t> input(t, kTile * kTile);
  trace::Array<std::int32_t> coeffs(t, kTile * kTile);
  trace::Array<std::int32_t> scratch(t, kTile);
  trace::Array<std::int32_t> symbols(t, kTile * kTile + 8);
  const trace::Block prologue = t.block(32);
  const trace::Block copy_block = t.block(6);
  const trace::Block pair_block = t.block(12);
  const trace::Block quant_block = t.block(10);

  bool all_ok = true;
  double worst_psnr = 1e9;
  for (std::size_t tile = 0; tile < tiles; ++tile) {
    const auto image = make_image(kTile, kTile, seed + tile);
    for (std::size_t i = 0; i < image.size(); ++i) {
      input.set_raw(i, image[i]);
    }

    t.exec(prologue);
    for (std::size_t i = 0; i < kTile * kTile; ++i) {
      t.exec(copy_block, i + 1 < kTile * kTile);
      coeffs.set(i, static_cast<std::int32_t>(input.get(i)));
    }
    traced_forward(t, coeffs, scratch, kTile, kTile, kLevels, pair_block);

    // Quantize + RLE into the symbol buffer.
    std::size_t cursor = 0;
    std::int32_t zero_run = 0;
    for (std::size_t i = 0; i < kTile * kTile; ++i) {
      t.exec(quant_block, i + 1 < kTile * kTile);
      const std::int32_t c = coeffs.get(i);
      const std::int32_t q =
          c >= 0 ? (c + kQstep / 2) / kQstep : -((-c + kQstep / 2) / kQstep);
      if (q == 0) {
        ++zero_run;
        continue;
      }
      if (zero_run > 0) {
        symbols.set(cursor++, std::numeric_limits<std::int32_t>::min() + zero_run);
        zero_run = 0;
      }
      symbols.set(cursor++, q);
    }
    if (zero_run > 0) {
      symbols.set(cursor++, std::numeric_limits<std::int32_t>::min() + zero_run);
    }

    // Self-check: the symbols match the reference encoder, and the
    // reference decoder reconstructs the tile with sane quality.
    const epic::Encoded reference =
        epic::encode(image, kTile, kTile, kLevels, kQstep);
    bool match = reference.symbols.size() == cursor;
    for (std::size_t i = 0; match && i < cursor; ++i) {
      match = reference.symbols[i] == symbols.get_raw(i);
    }
    const auto reconstructed = epic::decode(reference);
    const double psnr = psnr_db(image, reconstructed);
    worst_psnr = std::min(worst_psnr, psnr);
    all_ok = all_ok && match && psnr > 25.0;
  }
  result.fidelity_db = worst_psnr;
  result.self_check = all_ok;
  return result;
}

WorkloadResult run_epic_d(std::uint64_t seed, std::size_t scale) {
  WorkloadResult result;
  result.name = "epic_d";
  const std::size_t tiles = kTiles * std::max<std::size_t>(scale, 1);

  trace::Tracer& t = result.tracer;
  t.reserve(tiles * 13000);  // measured ~12.9K records/tile
  trace::Array<std::int32_t> symbols(t, kTile * kTile + 8);
  trace::Array<std::int32_t> coeffs(t, kTile * kTile);
  trace::Array<std::int32_t> scratch(t, kTile);
  trace::Array<std::uint8_t> output(t, kTile * kTile);
  const trace::Block prologue = t.block(28);
  const trace::Block unpack_block = t.block(9);
  const trace::Block pair_block = t.block(14);
  const trace::Block clamp_block = t.block(7);

  bool all_ok = true;
  double worst_psnr = 1e9;
  for (std::size_t tile = 0; tile < tiles; ++tile) {
    const auto image = make_image(kTile, kTile, seed + tile);
    const epic::Encoded encoded =
        epic::encode(image, kTile, kTile, kLevels, kQstep);
    for (std::size_t i = 0; i < encoded.symbols.size(); ++i) {
      symbols.set_raw(i, encoded.symbols[i]);
    }

    t.exec(prologue);
    // Unpack RLE symbols and dequantize.
    std::size_t out_pos = 0;
    for (std::size_t i = 0; i < encoded.symbols.size(); ++i) {
      t.exec(unpack_block, i + 1 < encoded.symbols.size());
      const std::int32_t symbol = symbols.get(i);
      if (symbol < std::numeric_limits<std::int32_t>::min() + (1 << 30)) {
        const std::int32_t run =
            symbol - std::numeric_limits<std::int32_t>::min();
        for (std::int32_t z = 0; z < run; ++z) {
          coeffs.set(out_pos++, 0);
        }
      } else {
        coeffs.set(out_pos++, symbol * kQstep);
      }
    }

    // Traced inverse pyramid.
    for (std::size_t level = kLevels; level-- > 0;) {
      const std::size_t w = kTile >> level;
      const std::size_t h = kTile >> level;
      for (std::size_t x = 0; x < w; ++x) {
        for (std::size_t y = 0; y < h; ++y) {
          scratch.set(y % kTile, coeffs.get(y * kTile + x));
        }
        for (std::size_t y = 0; y < h / 2; ++y) {
          t.exec(pair_block, y + 1 < h / 2);
          const std::int32_t s = scratch.get(y);
          const std::int32_t d = scratch.get(h / 2 + y);
          const std::int32_t a = s + ((d + 1) >> 1);
          coeffs.set((2 * y) * kTile + x, a);
          coeffs.set((2 * y + 1) * kTile + x, a - d);
        }
      }
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          scratch.set(x % kTile, coeffs.get(y * kTile + x));
        }
        for (std::size_t x = 0; x < w / 2; ++x) {
          t.exec(pair_block, x + 1 < w / 2);
          const std::int32_t s = scratch.get(x);
          const std::int32_t d = scratch.get(w / 2 + x);
          const std::int32_t a = s + ((d + 1) >> 1);
          coeffs.set(y * kTile + 2 * x, a);
          coeffs.set(y * kTile + 2 * x + 1, a - d);
        }
      }
    }
    for (std::size_t i = 0; i < kTile * kTile; ++i) {
      t.exec(clamp_block, i + 1 < kTile * kTile);
      output.set(i, static_cast<std::uint8_t>(
                        std::clamp(coeffs.get(i), 0, 255)));
    }

    // Self-check: traced decode matches the reference decoder bit-exactly.
    const auto reference = epic::decode(encoded);
    bool match = true;
    for (std::size_t i = 0; match && i < reference.size(); ++i) {
      match = reference[i] == output.get_raw(i);
    }
    const double psnr = psnr_db(image, reference);
    worst_psnr = std::min(worst_psnr, psnr);
    all_ok = all_ok && match && psnr > 25.0;
  }
  result.fidelity_db = worst_psnr;
  result.self_check = all_ok;
  return result;
}

}  // namespace hvc::wl
