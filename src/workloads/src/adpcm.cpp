#include "hvc/workloads/adpcm.hpp"

#include <algorithm>
#include <array>

#include "hvc/workloads/signal.hpp"

namespace hvc::wl {

namespace adpcm {

namespace {
// Standard IMA ADPCM tables.
constexpr std::array<std::int32_t, 89> kStepTable = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

constexpr std::array<std::int32_t, 16> kIndexTable = {
    -1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8};
}  // namespace

std::uint8_t encode_sample(State& state, std::int16_t sample) {
  const std::int32_t step = kStepTable[static_cast<std::size_t>(state.index)];
  std::int32_t diff = static_cast<std::int32_t>(sample) - state.predictor;
  std::uint8_t code = 0;
  if (diff < 0) {
    code = 8;
    diff = -diff;
  }
  std::int32_t delta = step >> 3;
  if (diff >= step) {
    code |= 4;
    diff -= step;
    delta += step;
  }
  if (diff >= (step >> 1)) {
    code |= 2;
    diff -= step >> 1;
    delta += step >> 1;
  }
  if (diff >= (step >> 2)) {
    code |= 1;
    delta += step >> 2;
  }
  state.predictor += (code & 8) ? -delta : delta;
  state.predictor = std::clamp(state.predictor, -32768, 32767);
  state.index += kIndexTable[code];
  state.index = std::clamp(state.index, 0, 88);
  return code;
}

std::int16_t decode_sample(State& state, std::uint8_t code) {
  const std::int32_t step = kStepTable[static_cast<std::size_t>(state.index)];
  std::int32_t delta = step >> 3;
  if (code & 4) {
    delta += step;
  }
  if (code & 2) {
    delta += step >> 1;
  }
  if (code & 1) {
    delta += step >> 2;
  }
  state.predictor += (code & 8) ? -delta : delta;
  state.predictor = std::clamp(state.predictor, -32768, 32767);
  state.index += kIndexTable[code];
  state.index = std::clamp(state.index, 0, 88);
  return static_cast<std::int16_t>(state.predictor);
}

std::vector<std::uint8_t> encode(const std::vector<std::int16_t>& pcm) {
  State state;
  std::vector<std::uint8_t> out;
  out.reserve(pcm.size());
  for (const auto sample : pcm) {
    out.push_back(encode_sample(state, sample));
  }
  return out;
}

std::vector<std::int16_t> decode(const std::vector<std::uint8_t>& codes) {
  State state;
  std::vector<std::int16_t> out;
  out.reserve(codes.size());
  for (const auto code : codes) {
    out.push_back(decode_sample(state, code));
  }
  return out;
}

}  // namespace adpcm

namespace {
constexpr std::size_t kDefaultSamples = 4096;
}

WorkloadResult run_adpcm_c(std::uint64_t seed, std::size_t scale) {
  WorkloadResult result;
  result.name = "adpcm_c";
  const std::size_t samples = kDefaultSamples * std::max<std::size_t>(scale, 1);
  const auto pcm = make_speech(samples, seed);

  trace::Tracer& t = result.tracer;
  t.reserve(samples * 36);  // measured ~35 records/sample
  trace::Array<std::int16_t> in(t, samples);
  trace::Array<std::uint8_t> out(t, samples);
  // Step/index tables live in data memory like the real program.
  trace::Array<std::int32_t> step_table(t, 89);
  trace::Array<std::int32_t> index_table(t, 16);
  for (std::size_t i = 0; i < samples; ++i) {
    in.set_raw(i, pcm[i]);
  }
  // (Table contents are read through the reference implementation; the
  // traced accesses model their cache footprint.)

  const trace::Block prologue = t.block(24);
  const trace::Block loop = t.block(30);
  const trace::Block epilogue = t.block(12);

  t.exec(prologue);
  adpcm::State state;
  for (std::size_t i = 0; i < samples; ++i) {
    t.exec(loop, /*taken=*/i + 1 < samples);
    const std::int16_t sample = in.get(i);
    (void)step_table.get(static_cast<std::size_t>(state.index));
    const std::uint8_t code = adpcm::encode_sample(state, sample);
    (void)index_table.get(code);
    out.set(i, code);
  }
  t.exec(epilogue);

  // Self-check: decoding the produced codes reaches a sane SNR.
  std::vector<std::uint8_t> codes(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    codes[i] = out.get_raw(i);
  }
  const auto reconstructed = adpcm::decode(codes);
  result.fidelity_db = snr_db(pcm, reconstructed);
  result.self_check = result.fidelity_db > 15.0;
  return result;
}

WorkloadResult run_adpcm_d(std::uint64_t seed, std::size_t scale) {
  WorkloadResult result;
  result.name = "adpcm_d";
  const std::size_t samples = kDefaultSamples * std::max<std::size_t>(scale, 1);
  const auto pcm = make_speech(samples, seed);
  const auto codes = adpcm::encode(pcm);

  trace::Tracer& t = result.tracer;
  t.reserve(samples * 30);  // measured ~29 records/sample
  trace::Array<std::uint8_t> in(t, samples);
  trace::Array<std::int16_t> out(t, samples);
  trace::Array<std::int32_t> step_table(t, 89);
  trace::Array<std::int32_t> index_table(t, 16);
  for (std::size_t i = 0; i < samples; ++i) {
    in.set_raw(i, codes[i]);
  }

  const trace::Block prologue = t.block(20);
  const trace::Block loop = t.block(24);
  const trace::Block epilogue = t.block(12);

  t.exec(prologue);
  adpcm::State state;
  for (std::size_t i = 0; i < samples; ++i) {
    t.exec(loop, /*taken=*/i + 1 < samples);
    const std::uint8_t code = in.get(i);
    (void)step_table.get(static_cast<std::size_t>(state.index));
    const std::int16_t sample = adpcm::decode_sample(state, code);
    (void)index_table.get(code);
    out.set(i, sample);
  }
  t.exec(epilogue);

  std::vector<std::int16_t> reconstructed(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    reconstructed[i] = out.get_raw(i);
  }
  result.fidelity_db = snr_db(pcm, reconstructed);
  result.self_check = result.fidelity_db > 15.0;
  return result;
}

}  // namespace hvc::wl
