#include "hvc/workloads/g721.hpp"

#include <algorithm>

#include "hvc/workloads/signal.hpp"

namespace hvc::wl {

namespace g721 {

namespace {
// Quantizer step table shared with IMA ADPCM (public-domain constants).
constexpr std::array<std::int32_t, 89> kStepTable = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

constexpr std::array<std::int32_t, 16> kIndexTable = {
    -1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8};

[[nodiscard]] constexpr std::int32_t sign(std::int32_t x) noexcept {
  return x > 0 ? 1 : (x < 0 ? -1 : 0);
}

/// Quantizes difference `d` against `step`; returns code and the exactly
/// reproducible dequantized value via `dq_out`.
[[nodiscard]] std::uint8_t quantize(std::int32_t d, std::int32_t step,
                                    std::int32_t& dq_out) {
  std::uint8_t code = 0;
  std::int32_t magnitude = d;
  if (d < 0) {
    code = 8;
    magnitude = -d;
  }
  std::int32_t dq = step >> 3;
  if (magnitude >= step) {
    code |= 4;
    magnitude -= step;
    dq += step;
  }
  if (magnitude >= (step >> 1)) {
    code |= 2;
    magnitude -= step >> 1;
    dq += step >> 1;
  }
  if (magnitude >= (step >> 2)) {
    code |= 1;
    dq += step >> 2;
  }
  dq_out = (code & 8) ? -dq : dq;
  return code;
}

[[nodiscard]] std::int32_t dequantize(std::uint8_t code, std::int32_t step) {
  std::int32_t dq = step >> 3;
  if (code & 4) {
    dq += step;
  }
  if (code & 2) {
    dq += step >> 1;
  }
  if (code & 1) {
    dq += step >> 2;
  }
  return (code & 8) ? -dq : dq;
}

/// Shared state update from the dequantized difference: predictor
/// adaptation, reconstruction, quantizer adaptation. Identical on both
/// sides -> bit-exact decoder.
std::int16_t update(State& state, std::int32_t dq, std::int32_t pred,
                    std::uint8_t code) {
  std::int32_t recon = pred + dq;
  recon = std::clamp(recon, -32768, 32767);

  // Sign-sign LMS with leakage on the zero section.
  for (std::size_t i = 0; i < state.b.size(); ++i) {
    state.b[i] += -(state.b[i] >> 8) + (sign(dq) * sign(state.dq[i]) << 7);
    state.b[i] = std::clamp(state.b[i], -0x3000, 0x3000);
  }
  // Pole section adapts on the sign of the reconstructed-signal slope.
  const std::int32_t d1 = recon - state.sr1;
  const std::int32_t d2 = state.sr1 - state.sr2;
  state.a1 += -(state.a1 >> 8) + (sign(d1) * sign(d2) << 6);
  state.a1 = std::clamp(state.a1, -0x3000, 0x3000);  // |a1| <= 0.75
  state.a2 += -(state.a2 >> 8) + (sign(d1) * sign(recon - state.sr2) << 5);
  state.a2 = std::clamp(state.a2, -0x1800, 0x1800);  // |a2| <= 0.375

  // Shift histories.
  for (std::size_t i = state.dq.size(); i-- > 1;) {
    state.dq[i] = state.dq[i - 1];
  }
  state.dq[0] = dq;
  state.sr2 = state.sr1;
  state.sr1 = recon;

  // Quantizer adaptation.
  state.step_index += kIndexTable[code];
  state.step_index = std::clamp(state.step_index, 0, 88);
  return static_cast<std::int16_t>(recon);
}

}  // namespace

std::int32_t predict(const State& state) {
  std::int64_t acc = static_cast<std::int64_t>(state.a1) * state.sr1 +
                     static_cast<std::int64_t>(state.a2) * state.sr2;
  for (std::size_t i = 0; i < state.b.size(); ++i) {
    acc += static_cast<std::int64_t>(state.b[i]) * state.dq[i];
  }
  return static_cast<std::int32_t>(acc >> 14);
}

std::uint8_t encode_sample(State& state, std::int16_t sample) {
  const std::int32_t pred = predict(state);
  const std::int32_t step =
      kStepTable[static_cast<std::size_t>(state.step_index)];
  std::int32_t dq = 0;
  const std::uint8_t code =
      quantize(static_cast<std::int32_t>(sample) - pred, step, dq);
  (void)update(state, dq, pred, code);
  return code;
}

std::int16_t decode_sample(State& state, std::uint8_t code) {
  const std::int32_t pred = predict(state);
  const std::int32_t step =
      kStepTable[static_cast<std::size_t>(state.step_index)];
  const std::int32_t dq = dequantize(code, step);
  return update(state, dq, pred, code);
}

std::vector<std::uint8_t> encode(const std::vector<std::int16_t>& pcm) {
  State state;
  std::vector<std::uint8_t> out;
  out.reserve(pcm.size());
  for (const auto sample : pcm) {
    out.push_back(encode_sample(state, sample));
  }
  return out;
}

std::vector<std::int16_t> decode(const std::vector<std::uint8_t>& codes) {
  State state;
  std::vector<std::int16_t> out;
  out.reserve(codes.size());
  for (const auto code : codes) {
    out.push_back(decode_sample(state, code));
  }
  return out;
}

}  // namespace g721

namespace {
constexpr std::size_t kDefaultSamples = 24576;  // ~48KB stream: BigBench
}

WorkloadResult run_g721_c(std::uint64_t seed, std::size_t scale) {
  WorkloadResult result;
  result.name = "g721_c";
  const std::size_t samples = kDefaultSamples * std::max<std::size_t>(scale, 1);
  const auto pcm = make_speech(samples, seed);

  trace::Tracer& t = result.tracer;
  t.reserve(samples * 97);  // measured ~96 records/sample
  trace::Array<std::int16_t> in(t, samples);
  trace::Array<std::uint8_t> out(t, samples);
  trace::Array<std::int32_t> step_table(t, 89);
  trace::Array<std::int32_t> coeffs(t, 6);   // predictor coefficients
  trace::Array<std::int32_t> history(t, 6);  // sr/dq histories
  for (std::size_t i = 0; i < samples; ++i) {
    in.set_raw(i, pcm[i]);
  }

  const trace::Block prologue = t.block(40);
  const trace::Block predict_block = t.block(18);
  const trace::Block quant_block = t.block(22);
  const trace::Block adapt_block = t.block(26);

  t.exec(prologue);
  g721::State state;
  for (std::size_t i = 0; i < samples; ++i) {
    t.exec(predict_block, false);
    // Predictor state traffic.
    for (std::size_t c = 0; c < 6; ++c) {
      (void)coeffs.get(c);
      (void)history.get(c);
    }
    const std::int16_t sample = in.get(i);
    t.exec(quant_block, false);
    (void)step_table.get(static_cast<std::size_t>(state.step_index));
    const std::uint8_t code = g721::encode_sample(state, sample);
    out.set(i, code);
    t.exec(adapt_block, i + 1 < samples);
    for (std::size_t c = 0; c < 6; ++c) {
      coeffs.set(c, 0);
      history.set(c, 0);
    }
  }

  std::vector<std::uint8_t> codes(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    codes[i] = out.get_raw(i);
  }
  const auto reconstructed = g721::decode(codes);
  result.fidelity_db = snr_db(pcm, reconstructed);
  result.self_check = result.fidelity_db > 12.0;
  return result;
}

WorkloadResult run_g721_d(std::uint64_t seed, std::size_t scale) {
  WorkloadResult result;
  result.name = "g721_d";
  const std::size_t samples = kDefaultSamples * std::max<std::size_t>(scale, 1);
  const auto pcm = make_speech(samples, seed);

  // Reference encode, capturing the encoder's local reconstruction.
  g721::State enc_state;
  std::vector<std::uint8_t> codes(samples);
  std::vector<std::int16_t> enc_recon(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    codes[i] = g721::encode_sample(enc_state, pcm[i]);
    enc_recon[i] = static_cast<std::int16_t>(enc_state.sr1);
  }

  trace::Tracer& t = result.tracer;
  t.reserve(samples * 91);  // measured ~90 records/sample
  trace::Array<std::uint8_t> in(t, samples);
  trace::Array<std::int16_t> out(t, samples);
  trace::Array<std::int32_t> step_table(t, 89);
  trace::Array<std::int32_t> coeffs(t, 6);
  trace::Array<std::int32_t> history(t, 6);
  for (std::size_t i = 0; i < samples; ++i) {
    in.set_raw(i, codes[i]);
  }

  const trace::Block prologue = t.block(36);
  const trace::Block predict_block = t.block(18);
  const trace::Block dequant_block = t.block(16);
  const trace::Block adapt_block = t.block(26);

  t.exec(prologue);
  g721::State state;
  bool exact = true;
  for (std::size_t i = 0; i < samples; ++i) {
    t.exec(predict_block, false);
    for (std::size_t c = 0; c < 6; ++c) {
      (void)coeffs.get(c);
      (void)history.get(c);
    }
    const std::uint8_t code = in.get(i);
    t.exec(dequant_block, false);
    (void)step_table.get(static_cast<std::size_t>(state.step_index));
    const std::int16_t sample = g721::decode_sample(state, code);
    out.set(i, sample);
    t.exec(adapt_block, i + 1 < samples);
    for (std::size_t c = 0; c < 6; ++c) {
      coeffs.set(c, 0);
      history.set(c, 0);
    }
    exact = exact && sample == enc_recon[i];
  }

  std::vector<std::int16_t> reconstructed(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    reconstructed[i] = out.get_raw(i);
  }
  result.fidelity_db = snr_db(pcm, reconstructed);
  // Decoder must track the encoder's local reconstruction bit-exactly.
  result.self_check = exact && result.fidelity_db > 12.0;
  return result;
}

}  // namespace hvc::wl
