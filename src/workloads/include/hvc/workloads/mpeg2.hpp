// MPEG-2-style intra/inter video codec (MediaBench mpeg2 stand-in).
//
// Real structure: 16x16 macroblocks, three-step motion search on the
// previous *reconstructed* frame, 8x8 integer DCT of the residual,
// uniform quantization, zigzag+RLE packing, and closed-loop reconstruction
// (IDCT + motion compensation) so the decoder matches the encoder's
// reference frames bit-exactly.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "hvc/workloads/workload.hpp"

namespace hvc::wl {

namespace mpeg2 {

inline constexpr std::size_t kBlock = 8;
inline constexpr std::size_t kMacroblock = 16;

struct MacroblockCode {
  bool intra = true;
  std::int32_t mv_x = 0;
  std::int32_t mv_y = 0;
  /// Quantized coefficients of the four 8x8 blocks, zigzag order.
  std::array<std::array<std::int16_t, kBlock * kBlock>, 4> coeffs{};
};

struct FrameCode {
  bool intra = true;
  std::vector<MacroblockCode> macroblocks;
};

struct Bitstream {
  std::size_t width = 0;
  std::size_t height = 0;
  std::int32_t qstep = 8;
  std::vector<FrameCode> frames;
};

/// Integer 8x8 DCT/IDCT pair (Q10 fixed-point cosine table). They are not
/// mathematical inverses to the last bit, but both sides use the same
/// IDCT, which is what closed-loop coding requires.
void forward_dct(const std::array<std::int32_t, kBlock * kBlock>& in,
                 std::array<std::int32_t, kBlock * kBlock>& out);
void inverse_dct(const std::array<std::int32_t, kBlock * kBlock>& in,
                 std::array<std::int32_t, kBlock * kBlock>& out);

/// Encodes frames (dimensions must be multiples of 16). First frame intra,
/// rest predicted. `local_recon`, if non-null, receives the encoder-side
/// reconstructed frames.
[[nodiscard]] Bitstream encode(
    const std::vector<std::vector<std::uint8_t>>& frames, std::size_t width,
    std::size_t height, std::int32_t qstep,
    std::vector<std::vector<std::uint8_t>>* local_recon = nullptr);

[[nodiscard]] std::vector<std::vector<std::uint8_t>> decode(
    const Bitstream& bitstream);

}  // namespace mpeg2

[[nodiscard]] WorkloadResult run_mpeg2_c(std::uint64_t seed,
                                         std::size_t scale);
[[nodiscard]] WorkloadResult run_mpeg2_d(std::uint64_t seed,
                                         std::size_t scale);

}  // namespace hvc::wl
