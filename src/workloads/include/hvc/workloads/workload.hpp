// Workload kernels standing in for MediaBench (paper Section IV-A1).
//
// Each kernel is a real, functionally-verified codec operating on traced
// memory (hvc::trace), so its load/store/ifetch stream has the genuine
// access pattern of the algorithm. Kernels come in _c (encode) and _d
// (decode) variants like MediaBench, and are classified exactly as the
// paper does:
//   SmallBench (fit ~1KB working set): adpcm_c/d, epic_c/d  -> ULE mode
//   BigBench  (need the full cache):   g721_c/d, gsm_c/d, mpeg2_c/d -> HP
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hvc/trace/trace.hpp"

namespace hvc::wl {

enum class BenchClass {
  kSmall,  ///< ULE-mode workload (paper: adpcm, epic)
  kBig,    ///< HP-mode workload (paper: g721, gsm, mpeg2)
};

[[nodiscard]] std::string to_string(BenchClass cls);

/// Output of one kernel run.
struct WorkloadResult {
  std::string name;
  trace::Tracer tracer;      ///< full access trace
  bool self_check = false;   ///< functional round-trip verification
  double fidelity_db = 0.0;  ///< SNR/PSNR of the round trip where lossy
};

/// Registry entry.
struct WorkloadInfo {
  std::string name;
  BenchClass bench_class = BenchClass::kSmall;
  /// Runs the kernel; `scale` multiplies the default problem size.
  std::function<WorkloadResult(std::uint64_t seed, std::size_t scale)> run;
};

/// All ten kernels in paper order.
[[nodiscard]] const std::vector<WorkloadInfo>& registry();

/// Lookup by name; throws ConfigError for unknown names.
[[nodiscard]] const WorkloadInfo& find_workload(const std::string& name);

/// Non-throwing existence check (spec-file validation).
[[nodiscard]] bool has_workload(const std::string& name) noexcept;

/// Names of one class, e.g. for the FIG3 (big) / FIG4 (small) benches.
[[nodiscard]] std::vector<std::string> names_of(BenchClass cls);

/// All registered names in paper order.
[[nodiscard]] std::vector<std::string> all_names();

}  // namespace hvc::wl
