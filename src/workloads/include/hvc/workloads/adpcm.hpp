// IMA ADPCM codec (MediaBench adpcm_c / adpcm_d stand-in).
//
// Real IMA/DVI ADPCM: 16-bit PCM <-> 4-bit codes with an adaptive step
// table and predictor. SmallBench: tiny state, streaming access pattern.
#pragma once

#include <cstdint>
#include <vector>

#include "hvc/workloads/workload.hpp"

namespace hvc::wl {

/// Pure (un-traced) reference used by the traced kernels and the tests.
namespace adpcm {

struct State {
  std::int32_t predictor = 0;
  std::int32_t index = 0;
};

/// Encodes one sample; updates state.
[[nodiscard]] std::uint8_t encode_sample(State& state, std::int16_t sample);
/// Decodes one 4-bit code; updates state.
[[nodiscard]] std::int16_t decode_sample(State& state, std::uint8_t code);

[[nodiscard]] std::vector<std::uint8_t> encode(
    const std::vector<std::int16_t>& pcm);
[[nodiscard]] std::vector<std::int16_t> decode(
    const std::vector<std::uint8_t>& codes);

}  // namespace adpcm

/// Traced kernels (paper's adpcm_c / adpcm_d).
[[nodiscard]] WorkloadResult run_adpcm_c(std::uint64_t seed,
                                         std::size_t scale);
[[nodiscard]] WorkloadResult run_adpcm_d(std::uint64_t seed,
                                         std::size_t scale);

}  // namespace hvc::wl
