// EPIC-like image codec (MediaBench epic / unepic stand-in).
//
// A Haar wavelet pyramid (the same structure as EPIC's QMF pyramid) with
// uniform quantization and run-length packing of zero coefficients.
// SmallBench: operates on a small tile with a compact working set.
#pragma once

#include <cstdint>
#include <vector>

#include "hvc/workloads/workload.hpp"

namespace hvc::wl {

namespace epic {

/// Encoded stream: header (width, height, levels, qstep) + RLE symbols.
struct Encoded {
  std::size_t width = 0;
  std::size_t height = 0;
  std::size_t levels = 0;
  std::int32_t qstep = 1;
  std::vector<std::int32_t> symbols;
};

/// Forward 2-D Haar pyramid in place over int32 coefficients.
void forward_pyramid(std::vector<std::int32_t>& coeffs, std::size_t width,
                     std::size_t height, std::size_t levels);
/// Inverse of forward_pyramid.
void inverse_pyramid(std::vector<std::int32_t>& coeffs, std::size_t width,
                     std::size_t height, std::size_t levels);

[[nodiscard]] Encoded encode(const std::vector<std::uint8_t>& image,
                             std::size_t width, std::size_t height,
                             std::size_t levels, std::int32_t qstep);
[[nodiscard]] std::vector<std::uint8_t> decode(const Encoded& encoded);

}  // namespace epic

[[nodiscard]] WorkloadResult run_epic_c(std::uint64_t seed, std::size_t scale);
[[nodiscard]] WorkloadResult run_epic_d(std::uint64_t seed, std::size_t scale);

}  // namespace hvc::wl
