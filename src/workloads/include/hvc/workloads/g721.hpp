// G.721-style adaptive-predictive ADPCM (MediaBench g721 stand-in).
//
// 4-bit ADPCM with an adaptive two-pole / four-zero predictor updated by
// sign-sign LMS with leakage, and an IMA-style adaptive quantizer. All
// state arithmetic is integer, so the decoder reproduces the encoder's
// local reconstruction bit-exactly — which is the self-check.
//
// BigBench: long streams plus predictor/table state exceed the ULE way.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "hvc/workloads/workload.hpp"

namespace hvc::wl {

namespace g721 {

struct State {
  std::int32_t a1 = 0, a2 = 0;          ///< pole coefficients, Q14
  std::array<std::int32_t, 4> b{};      ///< zero coefficients, Q14
  std::int32_t sr1 = 0, sr2 = 0;        ///< reconstructed-signal history
  std::array<std::int32_t, 4> dq{};     ///< quantized-difference history
  std::int32_t step_index = 0;          ///< adaptive quantizer state
};

/// Predictor output for the current state (Q0).
[[nodiscard]] std::int32_t predict(const State& state);

/// Encodes one sample: returns the 4-bit code and updates state with the
/// local reconstruction.
[[nodiscard]] std::uint8_t encode_sample(State& state, std::int16_t sample);

/// Decodes one code; returns the reconstructed sample.
[[nodiscard]] std::int16_t decode_sample(State& state, std::uint8_t code);

[[nodiscard]] std::vector<std::uint8_t> encode(
    const std::vector<std::int16_t>& pcm);
[[nodiscard]] std::vector<std::int16_t> decode(
    const std::vector<std::uint8_t>& codes);

}  // namespace g721

[[nodiscard]] WorkloadResult run_g721_c(std::uint64_t seed, std::size_t scale);
[[nodiscard]] WorkloadResult run_g721_d(std::uint64_t seed, std::size_t scale);

}  // namespace hvc::wl
