// GSM full-rate-style speech codec (MediaBench gsm stand-in).
//
// The real structure of GSM 06.10 at reduced precision: per 160-sample
// frame, LPC analysis (autocorrelation + Levinson-Durbin), 6-bit
// reflection-coefficient quantization, short-term lattice filtering,
// long-term prediction (lag 40..120 search + 2-bit gain) per 40-sample
// subframe, and regular-pulse excitation (decimation-by-3 grid, 3-bit
// samples, block shift). All post-quantization arithmetic is integer, so
// the decoder tracks the encoder's local reconstruction bit-exactly.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "hvc/workloads/workload.hpp"

namespace hvc::wl {

namespace gsm {

inline constexpr std::size_t kFrameSize = 160;
inline constexpr std::size_t kSubframes = 4;
inline constexpr std::size_t kSubframeSize = 40;
inline constexpr std::size_t kLpcOrder = 8;
inline constexpr std::size_t kMinLag = 40;
inline constexpr std::size_t kMaxLag = 120;
inline constexpr std::size_t kPulses = 13;  // ceil(40/3)

struct SubframeCode {
  std::int32_t lag = static_cast<std::int32_t>(kMinLag);
  std::int32_t gain_idx = 0;  ///< 2-bit LTP gain index
  std::int32_t grid = 0;      ///< RPE grid offset 0..2
  std::int32_t shift = 0;     ///< RPE block shift
  std::array<std::int8_t, kPulses> pulses{};  ///< 3-bit codes [-4,3]
};

struct FrameCode {
  std::array<std::int8_t, kLpcOrder> kq{};  ///< 6-bit reflection codes
  std::array<SubframeCode, kSubframes> sub{};
};

struct Bitstream {
  std::vector<FrameCode> frames;
};

/// Encodes whole frames (input truncated to a multiple of kFrameSize).
/// `local_recon`, if non-null, receives the encoder-side reconstruction.
[[nodiscard]] Bitstream encode(const std::vector<std::int16_t>& pcm,
                               std::vector<std::int16_t>* local_recon = nullptr);

[[nodiscard]] std::vector<std::int16_t> decode(const Bitstream& bitstream);

}  // namespace gsm

[[nodiscard]] WorkloadResult run_gsm_c(std::uint64_t seed, std::size_t scale);
[[nodiscard]] WorkloadResult run_gsm_d(std::uint64_t seed, std::size_t scale);

}  // namespace hvc::wl
