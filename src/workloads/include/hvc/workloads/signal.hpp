// Deterministic synthetic input generators for the codec kernels:
// speech-like 16-bit audio and natural-image-like 8-bit frames.
#pragma once

#include <cstdint>
#include <vector>

#include "hvc/common/rng.hpp"

namespace hvc::wl {

/// Speech-like signal: sum of slowly-wandering harmonics plus noise,
/// amplitude-modulated into syllable-like bursts. Range fits int16.
[[nodiscard]] std::vector<std::int16_t> make_speech(std::size_t samples,
                                                    std::uint64_t seed);

/// Natural-image-like frame: smooth gradients + blobs + texture noise.
[[nodiscard]] std::vector<std::uint8_t> make_image(std::size_t width,
                                                   std::size_t height,
                                                   std::uint64_t seed);

/// Video: `frames` frames where content translates slowly (so motion
/// estimation has something to find) with per-frame noise.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> make_video(
    std::size_t width, std::size_t height, std::size_t frames,
    std::uint64_t seed);

/// Signal-to-noise ratio in dB between original and reconstruction.
[[nodiscard]] double snr_db(const std::vector<std::int16_t>& original,
                            const std::vector<std::int16_t>& reconstructed);

/// PSNR in dB for 8-bit images.
[[nodiscard]] double psnr_db(const std::vector<std::uint8_t>& original,
                             const std::vector<std::uint8_t>& reconstructed);

}  // namespace hvc::wl
