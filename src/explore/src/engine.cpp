#include "hvc/explore/engine.hpp"

#include <optional>

#include "hvc/common/error.hpp"
#include "hvc/common/io.hpp"
#include "hvc/explore/executor.hpp"
#include "hvc/explore/point_source.hpp"
#include "hvc/explore/result_store.hpp"
#include "hvc/explore/sink.hpp"

namespace hvc::explore {

std::size_t SweepResult::column(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) {
      return i;
    }
  }
  throw ConfigError("unknown sweep column \"" + name + "\"");
}

std::string SweepResult::to_csv() const {
  CsvTable table(columns);
  for (const auto& row : rows) {
    table.add_row(row);
  }
  return table.to_csv();
}

Json SweepResult::to_json() const {
  Json::Array column_values;
  for (const auto& name : columns) {
    column_values.emplace_back(name);
  }
  Json::Array row_values;
  for (const auto& row : rows) {
    Json::Array cells;
    for (const auto& cell : row) {
      cells.emplace_back(cell);
    }
    row_values.emplace_back(std::move(cells));
  }
  Json out;
  out.set("name", Json(name));
  out.set("kind", Json(to_string(kind)));
  out.set("columns", Json(std::move(column_values)));
  out.set("rows", Json(std::move(row_values)));
  return out;
}

SweepResult run_sweep(const SweepSpec& spec, std::size_t threads,
                      store::ResultStore* store) {
  return run_sweep(spec, threads, store, ExecOptions{});
}

SweepResult run_sweep(const SweepSpec& spec, std::size_t threads,
                      store::ResultStore* store,
                      const ExecOptions& options) {
  expects(spec.point_count() > 0, "sweep has no points");

  // The layered engine, composed: grid planner -> shared executor ->
  // collect (+ commit-to-store when one is attached). See executor.hpp
  // for the determinism story; this function adds nothing to it.
  GridPointSource source(spec);
  Executor executor(threads);

  SweepResult result;
  CollectSink collect(&result);
  std::optional<StoreCommitSink> commit;
  TeeSink tee;
  tee.add(&collect);
  if (store != nullptr) {
    commit.emplace(store, spec);
    tee.add(&*commit);
  }
  executor.run(spec, source, tee, store, options);
  if (store == nullptr) {
    // Without a store there is no warm/cold distinction to report; keep
    // the documented 0/0 rather than counting every row as cold.
    result.warm_points = 0;
    result.cold_points = 0;
  }
  return result;
}

}  // namespace hvc::explore
