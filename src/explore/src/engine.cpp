#include "hvc/explore/engine.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <tuple>
#include <utility>

#include "hvc/common/error.hpp"
#include "hvc/common/io.hpp"
#include "hvc/common/thread_pool.hpp"
#include "hvc/edc/code.hpp"
#include "hvc/explore/result_store.hpp"
#include "hvc/sim/report.hpp"
#include "hvc/sim/system.hpp"
#include "hvc/tech/sram_cell.hpp"
#include "hvc/yield/soft_reliability.hpp"

namespace hvc::explore {

namespace {

/// Inputs that determine one Fig. 2 sizing run.
using PlanKey = std::tuple<yield::Scenario, double, double, double>;

[[nodiscard]] PlanKey plan_key_of(const SweepSpec& spec,
                                  const SweepPoint& point) {
  return {point.scenario, point.hp_vcc, point.ule_vcc, spec.target_yield};
}

/// All unique sizing runs a sweep needs, computed up front (in parallel —
/// each is deterministic in its key, so sharing across points is safe).
class PlanCache {
 public:
  PlanCache(const SweepSpec& spec, const std::vector<SweepPoint>& points,
            std::size_t threads) {
    for (const auto& point : points) {
      keys_.emplace(plan_key_of(spec, point), 0);
    }
    std::vector<PlanKey> ordered;
    ordered.reserve(keys_.size());
    for (auto& [key, slot] : keys_) {
      slot = ordered.size();
      ordered.push_back(key);
    }
    plans_.resize(ordered.size());
    const double target_yield = spec.target_yield;
    parallel_for(0, ordered.size(), threads,
                 [this, &ordered, target_yield](std::size_t i) {
                   const auto& [scenario, hp_vcc, ule_vcc, yield_] =
                       ordered[i];
                   yield::MethodologyConfig config;
                   config.target_yield = target_yield;
                   plans_[i] = yield::run_methodology(scenario, hp_vcc,
                                                      ule_vcc, config);
                 });
  }

  [[nodiscard]] const yield::CacheCellPlan& plan(const SweepSpec& spec,
                                                 const SweepPoint& point)
      const {
    return plans_[keys_.at(plan_key_of(spec, point))];
  }

 private:
  std::map<PlanKey, std::size_t> keys_;
  std::vector<yield::CacheCellPlan> plans_;
};

/// ULE-way soft-error reliability at one point, from the sized cell and
/// the way's EDC protection (see yield::soft_reliability).
struct UleReliability {
  double rate_per_bit = 0.0;
  double uncorrectable_per_s = 0.0;
  double mttf_s = 0.0;
};

[[nodiscard]] UleReliability ule_reliability(
    const SweepPoint& point, const yield::CacheCellPlan& plan,
    double scrub_interval_s) {
  const bool scenario_b = point.scenario == yield::Scenario::kB;
  const auto& sized = point.proposed ? plan.proposed_8t : plan.baseline_10t;
  edc::Protection protection = edc::Protection::kNone;
  if (point.proposed) {
    protection =
        scenario_b ? edc::Protection::kDected : edc::Protection::kSecded;
  } else if (scenario_b) {
    protection = edc::Protection::kSecded;
  }
  const std::size_t check_bits = edc::check_bits_for(protection);
  const std::size_t bits = 32 + check_bits;
  const std::size_t correctable = protection == edc::Protection::kDected ? 2
                                  : protection == edc::Protection::kSecded
                                      ? 1
                                      : 0;

  UleReliability out;
  out.rate_per_bit =
      tech::soft_error_rate_per_bit(sized.cell, point.ule_vcc);
  if (scrub_interval_s <= 0.0) {
    return out;  // no scrubbing modelled; rate still reported
  }
  // One ULE way of the paper's cache: 256 data words (32 lines x 32B).
  const yield::ArrayGeometry geometry;
  const double words =
      static_cast<double>(geometry.lines * geometry.line_bytes / 4);
  // Split the word population by resident hard faults: a hard fault spends
  // one correction, so those words have one less soft budget (the paper's
  // scenario B argument).
  const double p_word_has_fault =
      1.0 - std::pow(1.0 - sized.pf, static_cast<double>(bits));
  const auto overflow = [&](std::size_t budget) {
    return yield::p_word_overflow(bits, out.rate_per_bit, scrub_interval_s,
                                  budget);
  };
  const double clean_rate =
      words * (1.0 - p_word_has_fault) * overflow(correctable);
  const double faulty_rate =
      words * p_word_has_fault *
      overflow(correctable == 0 ? 0 : correctable - 1);
  out.uncorrectable_per_s =
      (clean_rate + faulty_rate) / scrub_interval_s;
  out.mttf_s = out.uncorrectable_per_s > 0.0
                   ? 1.0 / out.uncorrectable_per_s
                   : std::numeric_limits<double>::infinity();
  return out;
}

[[nodiscard]] std::vector<std::string> simulation_columns() {
  return {
      "point",          "scenario",        "design",
      "l2",             "l2_size_kb",      "cores",
      "mode",           "workload",        "workload_mix",
      "hp_vcc",         "ule_vcc",
      "scrub_interval_s", "instructions",  "cycles",
      "cpi",            "seconds",         "epi_j",
      "epi_l1_dynamic_j", "epi_l1_leakage_j", "epi_l1_edc_j",
      "epi_l2_j",       "epi_contention_j", "epi_core_other_j",
      "total_energy_j",
      "il1_hit_rate",   "dl1_hit_rate",    "l2_hit_rate",
      "l2_accesses",    "mem_accesses",    "contended_requests",
      "contention_cycles", "edc_corrections",
      "edc_detected",   "l1_area_um2",     "cache_area_um2",
      "ule_soft_rate_per_bit", "ule_uncorr_per_s", "ule_mttf_s",
  };
}

[[nodiscard]] std::vector<std::string> methodology_columns() {
  return {
      "point",         "scenario",      "hp_vcc",
      "ule_vcc",       "target_yield",  "target_pf",
      "hp6t_size",     "hp6t_pf",       "b10t_size",
      "b10t_pf",       "b10t_yield",    "p8t_size",
      "p8t_pf",        "p8t_yield",     "b10t_area_f2",
      "p8t_area_f2",   "area_ratio",
  };
}

[[nodiscard]] std::vector<std::string> simulate_point(
    const SweepSpec& spec, const SweepPoint& point,
    const yield::CacheCellPlan& plan) {
  sim::SystemConfig config;
  config.design.scenario = point.scenario;
  config.design.proposed = point.proposed;
  config.mode = point.mode;
  config.hp.vcc = point.hp_vcc;
  config.ule.vcc = point.ule_vcc;
  const bool with_l2 = point.l2_design != "none";
  if (with_l2) {
    sim::L2Spec l2;
    l2.org.size_bytes =
        static_cast<std::size_t>(point.l2_size_kb) * std::size_t{1024};
    l2.proposed = point.l2_design == "proposed";
    config.hierarchy.l2 = l2;
  }
  config.num_cores = point.cores;
  // The System's fault maps draw from the point's own counter-based seed
  // (or the spec's fixed one, for pinning against the bench_fig* rows).
  config.seed = spec.system_seed ? *spec.system_seed
                                 : Rng::mix64(spec.seed, point.index);

  sim::System system(config, plan);
  // Plain one-core points keep the exact pre-multicore evaluation path;
  // core-count/mix points report the interleaved run's chip aggregate.
  const bool multicore = point.cores > 1 || !point.workload_mix.empty();
  const cpu::RunResult result =
      multicore ? system
                      .run_mix(point.core_workloads(), spec.workload_seed,
                               spec.scale)
                      .aggregate
                : system.run_workload(point.workload, spec.workload_seed,
                                      spec.scale);
  const sim::EpiBreakdown epi = sim::epi_breakdown(result);
  const UleReliability reliability =
      ule_reliability(point, plan, point.scrub_interval_s);
  const cache::LevelStats* l2_stats = result.level("L2");
  const cache::LevelStats* mem_stats = result.level("MEM");

  std::vector<std::string> row;
  row.reserve(simulation_columns().size());
  row.push_back(format_number(static_cast<std::uint64_t>(point.index)));
  row.emplace_back(yield::to_string(point.scenario));
  row.emplace_back(point.proposed ? "proposed" : "baseline");
  row.push_back(point.l2_design);
  if (with_l2) {
    row.push_back(format_number(point.l2_size_kb));
  } else {
    row.emplace_back("");
  }
  row.push_back(
      format_number(static_cast<std::uint64_t>(point.cores)));
  row.emplace_back(point.mode == power::Mode::kHp ? "hp" : "ule");
  row.push_back(point.workload);
  row.push_back(point.workload_mix);
  row.push_back(format_number(point.hp_vcc));
  row.push_back(format_number(point.ule_vcc));
  row.push_back(format_number(point.scrub_interval_s));
  row.push_back(format_number(result.instructions));
  row.push_back(format_number(result.cycles));
  row.push_back(format_number(result.cpi()));
  row.push_back(format_number(result.seconds));
  row.push_back(format_number(result.epi()));
  row.push_back(format_number(epi.l1_dynamic));
  row.push_back(format_number(epi.l1_leakage));
  row.push_back(format_number(epi.l1_edc));
  row.push_back(format_number(epi.l2));
  row.push_back(format_number(epi.contention));
  row.push_back(format_number(epi.core_other));
  row.push_back(format_number(result.total_energy()));
  row.push_back(format_number(result.il1.hit_rate()));
  row.push_back(format_number(result.dl1.hit_rate()));
  if (l2_stats != nullptr) {
    row.push_back(format_number(l2_stats->hit_rate()));
    row.push_back(format_number(l2_stats->accesses));
  } else {
    row.emplace_back("");
    row.emplace_back("");
  }
  if (mem_stats != nullptr) {
    row.push_back(format_number(mem_stats->accesses));
  } else {
    row.emplace_back("");
  }
  // Arbitration pressure on the shared level (zero rows for single-core
  // points, where no arbiter exists).
  std::uint64_t contended_requests = 0;
  std::uint64_t contention_cycles = 0;
  for (const cache::LevelStats& level : result.levels) {
    contended_requests += level.contended_requests;
    contention_cycles += level.contention_cycles;
  }
  row.push_back(format_number(contended_requests));
  row.push_back(format_number(contention_cycles));
  std::uint64_t edc_corrections =
      result.il1.edc_corrections + result.dl1.edc_corrections;
  std::uint64_t edc_detected =
      result.il1.edc_detected + result.dl1.edc_detected;
  if (l2_stats != nullptr) {
    edc_corrections += l2_stats->edc_corrections;
    edc_detected += l2_stats->edc_detected;
  }
  row.push_back(format_number(edc_corrections));
  row.push_back(format_number(edc_detected));
  row.push_back(format_number(system.l1_area_um2()));
  row.push_back(format_number(system.cache_area_um2()));
  row.push_back(format_number(reliability.rate_per_bit));
  if (point.scrub_interval_s > 0.0) {
    row.push_back(format_number(reliability.uncorrectable_per_s));
    row.push_back(format_number(reliability.mttf_s));
  } else {
    row.emplace_back("");
    row.emplace_back("");
  }
  return row;
}

[[nodiscard]] std::vector<std::string> methodology_point(
    const SweepSpec& spec, const SweepPoint& point,
    const yield::CacheCellPlan& plan) {
  const double area_10t = tech::cell_area_f2(plan.baseline_10t.cell);
  const double area_8t = tech::cell_area_f2(plan.proposed_8t.cell);
  // Proposed/baseline ULE-way array area including check bits, as in the
  // paper's area discussion: scenario A stores 39 vs 32 bits per word,
  // scenario B 45 vs 39.
  const double check_factor =
      point.scenario == yield::Scenario::kA ? 39.0 / 32.0 : 45.0 / 39.0;

  std::vector<std::string> row;
  row.reserve(methodology_columns().size());
  row.push_back(format_number(static_cast<std::uint64_t>(point.index)));
  row.emplace_back(yield::to_string(point.scenario));
  row.push_back(format_number(point.hp_vcc));
  row.push_back(format_number(point.ule_vcc));
  row.push_back(format_number(spec.target_yield));
  row.push_back(format_number(plan.target_pf));
  row.push_back(format_number(plan.hp_6t.cell.size));
  row.push_back(format_number(plan.hp_6t.pf));
  row.push_back(format_number(plan.baseline_10t.cell.size));
  row.push_back(format_number(plan.baseline_10t.pf));
  row.push_back(format_number(plan.baseline_10t.yield));
  row.push_back(format_number(plan.proposed_8t.cell.size));
  row.push_back(format_number(plan.proposed_8t.pf));
  row.push_back(format_number(plan.proposed_8t.yield));
  row.push_back(format_number(area_10t));
  row.push_back(format_number(area_8t));
  row.push_back(format_number(area_8t * check_factor / area_10t));
  return row;
}

}  // namespace

std::size_t SweepResult::column(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) {
      return i;
    }
  }
  throw ConfigError("unknown sweep column \"" + name + "\"");
}

std::string SweepResult::to_csv() const {
  CsvTable table(columns);
  for (const auto& row : rows) {
    table.add_row(row);
  }
  return table.to_csv();
}

Json SweepResult::to_json() const {
  Json::Array column_values;
  for (const auto& name : columns) {
    column_values.emplace_back(name);
  }
  Json::Array row_values;
  for (const auto& row : rows) {
    Json::Array cells;
    for (const auto& cell : row) {
      cells.emplace_back(cell);
    }
    row_values.emplace_back(std::move(cells));
  }
  Json out;
  out.set("name", Json(name));
  out.set("kind", Json(to_string(kind)));
  out.set("columns", Json(std::move(column_values)));
  out.set("rows", Json(std::move(row_values)));
  return out;
}

SweepResult run_sweep(const SweepSpec& spec, std::size_t threads,
                      store::ResultStore* store) {
  const std::vector<SweepPoint> points = expand_points(spec);
  expects(!points.empty(), "sweep has no points");

  SweepResult result;
  result.name = spec.name;
  result.kind = spec.kind;
  result.columns = spec.kind == SweepKind::kSimulation
                       ? simulation_columns()
                       : methodology_columns();
  result.rows.resize(points.size());

  // Phase 0 (store attached only): classify every point warm or cold by
  // its canonical key. Warm rows decode straight out of the store — the
  // stored payload omits the positional "point" cell, which is
  // backfilled from the current sweep's index — so only cold points pay
  // for sizing runs and simulation below.
  std::vector<std::size_t> cold;
  std::vector<store::Key> keys;
  if (store != nullptr) {
    keys.resize(points.size());
    cold.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      keys[i] = result_key(spec, points[i], result.columns);
      const auto payload = store->get(keys[i]);
      if (!payload) {
        cold.push_back(i);
        continue;
      }
      std::vector<std::string> cells =
          decode_row(payload->data(), payload->size());
      if (cells.size() + 1 != result.columns.size()) {
        throw ConfigError(
            "stored row width does not match the sweep schema");
      }
      auto& row = result.rows[i];
      row.reserve(result.columns.size());
      row.push_back(
          format_number(static_cast<std::uint64_t>(points[i].index)));
      for (auto& cell : cells) {
        row.push_back(std::move(cell));
      }
    }
    result.warm_points = points.size() - cold.size();
    result.cold_points = cold.size();
  } else {
    cold.resize(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      cold[i] = i;
    }
  }

  // Phase 1: every unique sizing run the COLD points need, shared
  // read-only afterwards (warm points already carry their results).
  std::vector<SweepPoint> cold_points;
  cold_points.reserve(cold.size());
  for (const std::size_t i : cold) {
    cold_points.push_back(points[i]);
  }
  const PlanCache plans(spec, cold_points, threads);

  // Phase 2: evaluate cold points into index-addressed slots; whichever
  // thread claims a point, its output depends only on (spec, point).
  // With a store, each row is committed as it completes (put() is one
  // internal critical section), so a killed sweep resumes from its last
  // committed point instead of restarting.
  parallel_for(0, cold.size(), threads,
               [&spec, &points, &plans, &result, &cold, &keys,
                store](std::size_t k) {
                 const std::size_t i = cold[k];
                 const SweepPoint& point = points[i];
                 const yield::CacheCellPlan& plan = plans.plan(spec, point);
                 std::vector<std::string> row =
                     spec.kind == SweepKind::kSimulation
                         ? simulate_point(spec, point, plan)
                         : methodology_point(spec, point, plan);
                 if (store != nullptr) {
                   const std::vector<std::uint8_t> payload = encode_row(
                       {row.begin() + 1, row.end()});
                   store->put(keys[i], payload.data(), payload.size());
                 }
                 result.rows[i] = std::move(row);
               });
  return result;
}

}  // namespace hvc::explore
