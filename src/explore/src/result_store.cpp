#include "hvc/explore/result_store.hpp"

#include <cstring>

#include "hvc/common/error.hpp"
#include "hvc/common/hash.hpp"
#include "hvc/common/rng.hpp"

namespace hvc::explore {

std::uint64_t result_store_app_tag() noexcept {
  Hash128 h;
  h.update_string("hvc_explore result store");
  h.update_u64(kResultSchemaVersion);
  return h.digest().lo;
}

store::Key result_key(const SweepSpec& spec, const SweepPoint& point,
                      const std::vector<std::string>& columns) {
  Hash128 h;
  // Schema identity: version + kind + the exact column list, so adding a
  // column (or reordering) retires every old key at once.
  h.update_u64(kResultSchemaVersion);
  h.update_string(to_string(spec.kind));
  h.update_u64(columns.size());
  for (const auto& column : columns) {
    h.update_string(column);
  }
  // Inputs shared by both kinds: the sizing loop's target.
  h.update_double(spec.target_yield);
  h.update_string(yield::to_string(point.scenario));
  h.update_double(point.hp_vcc);
  h.update_double(point.ule_vcc);
  if (spec.kind == SweepKind::kMethodology) {
    const Hash128::Digest digest = h.digest();
    return {digest.lo, digest.hi};
  }
  // Simulation inputs, mirroring simulate_point()'s SystemConfig exactly.
  h.update_u64(point.proposed ? 1 : 0);
  h.update_string(point.l2_design);
  if (point.l2_design != "none") {
    // An L2-less point ignores the size axis (the spec collapses it),
    // so the key must too.
    h.update_double(point.l2_size_kb);
  }
  h.update_u64(point.cores);
  h.update_string(point.mode == power::Mode::kHp ? "hp" : "ule");
  h.update_string(point.workload);
  h.update_string(point.workload_mix);
  h.update_double(point.scrub_interval_s);
  h.update_u64(spec.workload_seed);
  h.update_u64(spec.scale);
  // The derived per-system seed — the same expression simulate_point()
  // feeds SystemConfig::seed — not the raw index: with a pinned
  // system_seed, identical points at different indices share a key.
  h.update_u64(spec.system_seed ? *spec.system_seed
                                : Rng::mix64(spec.seed, point.index));
  const Hash128::Digest digest = h.digest();
  return {digest.lo, digest.hi};
}

std::vector<std::uint8_t> encode_row(const std::vector<std::string>& cells) {
  const auto put_u32 = [](std::vector<std::uint8_t>& out,
                          std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  };
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(cells.size()));
  for (const auto& cell : cells) {
    put_u32(out, static_cast<std::uint32_t>(cell.size()));
    out.insert(out.end(), cell.begin(), cell.end());
  }
  return out;
}

std::vector<std::string> decode_row(const std::uint8_t* data,
                                    std::size_t bytes) {
  std::size_t pos = 0;
  const auto take_u32 = [&]() -> std::uint32_t {
    if (pos + 4 > bytes) {
      throw ConfigError("stored row payload is truncated");
    }
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    }
    pos += 4;
    return value;
  };
  const std::uint32_t count = take_u32();
  std::vector<std::string> cells;
  cells.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t len = take_u32();
    if (pos + len > bytes) {
      throw ConfigError("stored row payload is truncated");
    }
    cells.emplace_back(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
  }
  if (pos != bytes) {
    throw ConfigError("stored row payload has trailing bytes");
  }
  return cells;
}

std::unique_ptr<store::ResultStore> open_result_store(const std::string& path,
                                                      bool resume) {
  store::OpenOptions options;
  options.create = true;
  options.recover = resume;
  options.app_tag = result_store_app_tag();
  return std::make_unique<store::ResultStore>(path, options);
}

}  // namespace hvc::explore
