#include "hvc/explore/service.hpp"

#include <cstdio>
#include <optional>
#include <utility>

#include <signal.h>

#include "hvc/common/error.hpp"
#include "hvc/common/io.hpp"
#include "hvc/common/json.hpp"
#include "hvc/explore/executor.hpp"
#include "hvc/explore/point_source.hpp"
#include "hvc/explore/result_store.hpp"
#include "hvc/explore/sink.hpp"
#include "hvc/store/store.hpp"

namespace hvc::explore {

namespace {

/// The peer hung up mid-stream. Not an error for a daemon — the query
/// is aborted and the connection closed; other clients are unaffected.
struct ClientGone {};

/// Streams one query's events onto the client socket. Lives on the
/// connection thread; the executor serializes all calls, so no locking.
class SocketSink final : public ResultSink {
 public:
  SocketSink(UnixStream& stream, Json id, bool has_id, std::size_t total)
      : stream_(stream), id_(std::move(id)), has_id_(has_id),
        total_(total) {}

  void begin(const SweepSpec& spec,
             const std::vector<std::string>& columns) override {
    Json event;
    event.set("event", Json("begin"));
    if (has_id_) {
      event.set("id", id_);
    }
    event.set("name", Json(spec.name));
    event.set("kind", Json(to_string(spec.kind)));
    event.set("points", Json(total_));
    Json::Array column_values;
    for (const auto& name : columns) {
      column_values.emplace_back(name);
    }
    event.set("columns", Json(std::move(column_values)));
    event.set("csv_header", Json(csv_line(columns)));
    send(event);
  }

  void row(std::size_t seq, const SweepPoint& point,
           const std::vector<std::string>& cells, bool warm) override {
    (void)point;
    Json event;
    event.set("event", Json("row"));
    if (has_id_) {
      event.set("id", id_);
    }
    event.set("seq", Json(seq));
    event.set("csv", Json(csv_line(cells)));
    send(event);
    ++(warm ? warm_ : cold_);
  }

  void end() override {
    Json event;
    event.set("event", Json("end"));
    if (has_id_) {
      event.set("id", id_);
    }
    event.set("points", Json(warm_ + cold_));
    event.set("warm", Json(warm_));
    event.set("cold", Json(cold_));
    send(event);
  }

 private:
  /// One CSV line through the shared formatter, newline stripped (the
  /// protocol frames with its own newlines).
  [[nodiscard]] static std::string csv_line(
      const std::vector<std::string>& fields) {
    std::string line;
    append_csv_line(line, fields);
    line.pop_back();
    return line;
  }

  void send(const Json& event) {
    if (!stream_.send_line(event.dump())) {
      throw ClientGone{};
    }
  }

  UnixStream& stream_;
  Json id_;
  bool has_id_ = false;
  std::size_t total_ = 0;
  std::size_t warm_ = 0;
  std::size_t cold_ = 0;
};

}  // namespace

Service::Service(ServeOptions options) : options_(std::move(options)) {
  expects(!options_.socket_path.empty(), "serve needs a socket path");
}

Service::~Service() = default;

void Service::wait_ready() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return bound_ || finished_; });
}

void Service::run() {
  try {
    executor_ = std::make_unique<Executor>(options_.threads);
    if (!options_.store_path.empty()) {
      store_ = open_result_store(options_.store_path, options_.resume);
    }
    UnixListener listener = UnixListener::bind(options_.socket_path);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      bound_ = true;
      ready_.notify_all();
    }
    if (options_.announce) {
      std::fprintf(stderr, "hvc_explore serve: listening on %s (%zu "
                           "threads%s%s)\n",
                   options_.socket_path.c_str(), options_.threads,
                   store_ ? ", store " : "",
                   store_ ? options_.store_path.c_str() : "");
    }

    for (;;) {
      std::optional<UnixStream> client =
          listener.accept(stop_pipe_.read_fd());
      if (!client) {
        break;  // shutdown requested
      }
      std::lock_guard<std::mutex> lock(mutex_);
      connections_.emplace_back(&Service::serve_connection, this,
                                std::move(*client));
    }

    // Shutdown, in dependency order: abort queries so connection
    // threads unblock, join them, THEN close the store cleanly — no
    // thread can touch it afterwards, so fsck reports exit 0.
    executor_->cancel();
    std::vector<std::thread> connections;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      connections.swap(connections_);
    }
    for (std::thread& connection : connections) {
      connection.join();
    }
    if (store_) {
      store_->close();
      store_.reset();  // releases the flock too: fsck can run right away
    }
    listener.close();  // unlinks the socket file
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    finished_ = true;
    ready_.notify_all();
    throw;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  finished_ = true;
  ready_.notify_all();
}

void Service::serve_connection(UnixStream stream) {
  std::string line;
  for (;;) {
    const UnixStream::ReadStatus status =
        stream.read_line(line, stop_pipe_.read_fd());
    if (status != UnixStream::ReadStatus::kLine) {
      return;  // client left, or shutdown woke us
    }
    if (line.empty()) {
      continue;
    }
    try {
      handle_request(stream, line);
    } catch (const ClientGone&) {
      return;
    }
  }
}

void Service::handle_request(UnixStream& stream, const std::string& line) {
  Json id;
  bool has_id = false;
  const auto fail = [&](const std::string& message) {
    Json event;
    event.set("event", Json("error"));
    if (has_id) {
      event.set("id", id);
    }
    event.set("error", Json(message));
    if (!stream.send_line(event.dump())) {
      throw ClientGone{};
    }
  };

  SweepSpec spec;
  try {
    const Json request = Json::parse(line);
    if (const Json* id_value = request.find("id")) {
      id = *id_value;
      has_id = true;
    }
    spec = SweepSpec::from_json(request.at("spec"));
    if (spec.point_count() == 0) {
      throw ConfigError("sweep has no points");
    }
  } catch (const ConfigError& error) {
    fail(error.what());  // a bad request; the connection stays open
    return;
  }

  try {
    GridPointSource source(spec);
    SocketSink socket_sink(stream, id, has_id,
                           source.estimated_remaining());
    std::optional<StoreCommitSink> commit;
    TeeSink tee;
    tee.add(&socket_sink);
    if (store_) {
      commit.emplace(store_.get(), spec);
      tee.add(&*commit);
    }
    executor_->run(spec, source, tee, store_.get());
  } catch (const ClientGone&) {
    throw;
  } catch (const std::exception& error) {
    // Point failure or shutdown-cancel: report and keep the connection
    // (a cancelled client sees the error just before the daemon exits).
    fail(error.what());
  }
}

namespace {

// run_serve signal plumbing: handlers may only do async-signal-safe
// work, which request_stop() is (one pipe write).
Service* g_service = nullptr;

extern "C" void hvc_serve_signal(int) {
  if (g_service != nullptr) {
    g_service->request_stop();
  }
}

}  // namespace

int run_serve(const ServeOptions& options) {
  Service service(options);
  g_service = &service;

  struct sigaction action {};
  action.sa_handler = hvc_serve_signal;
  struct sigaction old_term {}, old_int {};
  ::sigaction(SIGTERM, &action, &old_term);
  ::sigaction(SIGINT, &action, &old_int);

  try {
    service.run();
  } catch (...) {
    ::sigaction(SIGTERM, &old_term, nullptr);
    ::sigaction(SIGINT, &old_int, nullptr);
    g_service = nullptr;
    throw;
  }
  ::sigaction(SIGTERM, &old_term, nullptr);
  ::sigaction(SIGINT, &old_int, nullptr);
  g_service = nullptr;
  return 0;
}

}  // namespace hvc::explore
