#include "hvc/explore/sink.hpp"

#include <utility>

#include "hvc/common/error.hpp"
#include "hvc/common/io.hpp"
#include "hvc/explore/engine.hpp"
#include "hvc/explore/result_store.hpp"
#include "hvc/store/store.hpp"

namespace hvc::explore {

CsvSink::CsvSink(std::string* out) : out_(out) {
  expects(out != nullptr, "CsvSink needs an output string");
}

void CsvSink::begin(const SweepSpec& spec,
                    const std::vector<std::string>& columns) {
  (void)spec;
  append_csv_line(*out_, columns);
}

void CsvSink::row(std::size_t seq, const SweepPoint& point,
                  const std::vector<std::string>& cells, bool warm) {
  (void)seq;
  (void)point;
  (void)warm;
  append_csv_line(*out_, cells);
}

JsonSink::JsonSink(Json* out) : out_(out) {
  expects(out != nullptr, "JsonSink needs an output value");
}

void JsonSink::begin(const SweepSpec& spec,
                     const std::vector<std::string>& columns) {
  name_ = spec.name;
  kind_ = spec.kind;
  columns_.clear();
  for (const auto& name : columns) {
    columns_.emplace_back(name);
  }
  rows_.clear();
}

void JsonSink::row(std::size_t seq, const SweepPoint& point,
                   const std::vector<std::string>& cells, bool warm) {
  (void)seq;
  (void)point;
  (void)warm;
  Json::Array row_cells;
  row_cells.reserve(cells.size());
  for (const auto& cell : cells) {
    row_cells.emplace_back(cell);
  }
  rows_.emplace_back(std::move(row_cells));
}

void JsonSink::end() {
  Json out;
  out.set("name", Json(name_));
  out.set("kind", Json(to_string(kind_)));
  out.set("columns", Json(std::move(columns_)));
  out.set("rows", Json(std::move(rows_)));
  *out_ = std::move(out);
}

StoreCommitSink::StoreCommitSink(store::ResultStore* store,
                                 const SweepSpec& spec)
    : store_(store), spec_(spec) {
  expects(store != nullptr, "StoreCommitSink needs a store");
}

void StoreCommitSink::begin(const SweepSpec& spec,
                            const std::vector<std::string>& columns) {
  (void)spec;
  columns_ = columns;
}

void StoreCommitSink::row(std::size_t seq, const SweepPoint& point,
                          const std::vector<std::string>& cells, bool warm) {
  (void)seq;
  if (warm) {
    return;  // this row came out of the store in the first place
  }
  const store::Key key = result_key(spec_, point, columns_);
  const std::vector<std::uint8_t> payload =
      encode_row({cells.begin() + 1, cells.end()});
  store_->put(key, payload.data(), payload.size());
  ++committed_;
}

TeeSink::TeeSink(std::vector<ResultSink*> sinks) {
  for (ResultSink* sink : sinks) {
    add(sink);
  }
}

void TeeSink::add(ResultSink* sink) {
  if (sink != nullptr) {
    sinks_.push_back(sink);
  }
}

void TeeSink::begin(const SweepSpec& spec,
                    const std::vector<std::string>& columns) {
  for (ResultSink* sink : sinks_) {
    sink->begin(spec, columns);
  }
}

void TeeSink::row(std::size_t seq, const SweepPoint& point,
                  const std::vector<std::string>& cells, bool warm) {
  for (ResultSink* sink : sinks_) {
    sink->row(seq, point, cells, warm);
  }
}

void TeeSink::end() {
  for (ResultSink* sink : sinks_) {
    sink->end();
  }
}

CollectSink::CollectSink(SweepResult* result) : result_(result) {
  expects(result != nullptr, "CollectSink needs a result");
}

void CollectSink::begin(const SweepSpec& spec,
                        const std::vector<std::string>& columns) {
  result_->name = spec.name;
  result_->kind = spec.kind;
  result_->columns = columns;
  result_->rows.clear();
  result_->warm_points = 0;
  result_->cold_points = 0;
}

void CollectSink::row(std::size_t seq, const SweepPoint& point,
                      const std::vector<std::string>& cells, bool warm) {
  (void)point;
  if (result_->rows.size() <= seq) {
    result_->rows.resize(seq + 1);
  }
  result_->rows[seq] = cells;
  (warm ? result_->warm_points : result_->cold_points) += 1;
}

}  // namespace hvc::explore
