#include "hvc/explore/executor.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <tuple>
#include <utility>

#include "hvc/common/io.hpp"
#include "hvc/common/rng.hpp"
#include "hvc/common/thread_pool.hpp"
#include "hvc/edc/code.hpp"
#include "hvc/explore/result_store.hpp"
#include "hvc/sim/report.hpp"
#include "hvc/sim/system.hpp"
#include "hvc/store/store.hpp"
#include "hvc/tech/sram_cell.hpp"
#include "hvc/yield/soft_reliability.hpp"

namespace hvc::explore {

namespace {

/// ULE-way soft-error reliability at one point, from the sized cell and
/// the way's EDC protection (see yield::soft_reliability).
struct UleReliability {
  double rate_per_bit = 0.0;
  double uncorrectable_per_s = 0.0;
  double mttf_s = 0.0;
};

[[nodiscard]] UleReliability ule_reliability(
    const SweepPoint& point, const yield::CacheCellPlan& plan,
    double scrub_interval_s) {
  const bool scenario_b = point.scenario == yield::Scenario::kB;
  const auto& sized = point.proposed ? plan.proposed_8t : plan.baseline_10t;
  edc::Protection protection = edc::Protection::kNone;
  if (point.proposed) {
    protection =
        scenario_b ? edc::Protection::kDected : edc::Protection::kSecded;
  } else if (scenario_b) {
    protection = edc::Protection::kSecded;
  }
  const std::size_t check_bits = edc::check_bits_for(protection);
  const std::size_t bits = 32 + check_bits;
  const std::size_t correctable = protection == edc::Protection::kDected ? 2
                                  : protection == edc::Protection::kSecded
                                      ? 1
                                      : 0;

  UleReliability out;
  out.rate_per_bit =
      tech::soft_error_rate_per_bit(sized.cell, point.ule_vcc);
  if (scrub_interval_s <= 0.0) {
    return out;  // no scrubbing modelled; rate still reported
  }
  // One ULE way of the paper's cache: 256 data words (32 lines x 32B).
  const yield::ArrayGeometry geometry;
  const double words =
      static_cast<double>(geometry.lines * geometry.line_bytes / 4);
  // Split the word population by resident hard faults: a hard fault spends
  // one correction, so those words have one less soft budget (the paper's
  // scenario B argument).
  const double p_word_has_fault =
      1.0 - std::pow(1.0 - sized.pf, static_cast<double>(bits));
  const auto overflow = [&](std::size_t budget) {
    return yield::p_word_overflow(bits, out.rate_per_bit, scrub_interval_s,
                                  budget);
  };
  const double clean_rate =
      words * (1.0 - p_word_has_fault) * overflow(correctable);
  const double faulty_rate =
      words * p_word_has_fault *
      overflow(correctable == 0 ? 0 : correctable - 1);
  out.uncorrectable_per_s =
      (clean_rate + faulty_rate) / scrub_interval_s;
  out.mttf_s = out.uncorrectable_per_s > 0.0
                   ? 1.0 / out.uncorrectable_per_s
                   : std::numeric_limits<double>::infinity();
  return out;
}

[[nodiscard]] std::vector<std::string> simulation_columns() {
  return {
      "point",          "scenario",        "design",
      "l2",             "l2_size_kb",      "cores",
      "mode",           "workload",        "workload_mix",
      "hp_vcc",         "ule_vcc",
      "scrub_interval_s", "instructions",  "cycles",
      "cpi",            "seconds",         "epi_j",
      "epi_l1_dynamic_j", "epi_l1_leakage_j", "epi_l1_edc_j",
      "epi_l2_j",       "epi_contention_j", "epi_core_other_j",
      "total_energy_j",
      "il1_hit_rate",   "dl1_hit_rate",    "l2_hit_rate",
      "l2_accesses",    "mem_accesses",    "contended_requests",
      "contention_cycles", "edc_corrections",
      "edc_detected",   "l1_area_um2",     "cache_area_um2",
      "ule_soft_rate_per_bit", "ule_uncorr_per_s", "ule_mttf_s",
  };
}

[[nodiscard]] std::vector<std::string> methodology_columns() {
  return {
      "point",         "scenario",      "hp_vcc",
      "ule_vcc",       "target_yield",  "target_pf",
      "hp6t_size",     "hp6t_pf",       "b10t_size",
      "b10t_pf",       "b10t_yield",    "p8t_size",
      "p8t_pf",        "p8t_yield",     "b10t_area_f2",
      "p8t_area_f2",   "area_ratio",
  };
}

[[nodiscard]] std::vector<std::string> simulate_point(
    const SweepSpec& spec, const SweepPoint& point,
    const yield::CacheCellPlan& plan) {
  sim::SystemConfig config;
  config.design.scenario = point.scenario;
  config.design.proposed = point.proposed;
  config.mode = point.mode;
  config.hp.vcc = point.hp_vcc;
  config.ule.vcc = point.ule_vcc;
  const bool with_l2 = point.l2_design != "none";
  if (with_l2) {
    sim::L2Spec l2;
    l2.org.size_bytes =
        static_cast<std::size_t>(point.l2_size_kb) * std::size_t{1024};
    l2.proposed = point.l2_design == "proposed";
    config.hierarchy.l2 = l2;
  }
  config.num_cores = point.cores;
  // The System's fault maps draw from the point's own counter-based seed
  // (or the spec's fixed one, for pinning against the bench_fig* rows).
  config.seed = spec.system_seed ? *spec.system_seed
                                 : Rng::mix64(spec.seed, point.index);

  sim::System system(config, plan);
  // Plain one-core points keep the exact pre-multicore evaluation path;
  // core-count/mix points report the interleaved run's chip aggregate.
  const bool multicore = point.cores > 1 || !point.workload_mix.empty();
  const cpu::RunResult result =
      multicore ? system
                      .run_mix(point.core_workloads(), spec.workload_seed,
                               spec.scale)
                      .aggregate
                : system.run_workload(point.workload, spec.workload_seed,
                                      spec.scale);
  const sim::EpiBreakdown epi = sim::epi_breakdown(result);
  const UleReliability reliability =
      ule_reliability(point, plan, point.scrub_interval_s);
  const cache::LevelStats* l2_stats = result.level("L2");
  const cache::LevelStats* mem_stats = result.level("MEM");

  std::vector<std::string> row;
  row.reserve(simulation_columns().size());
  row.push_back(format_number(static_cast<std::uint64_t>(point.index)));
  row.emplace_back(yield::to_string(point.scenario));
  row.emplace_back(point.proposed ? "proposed" : "baseline");
  row.push_back(point.l2_design);
  if (with_l2) {
    row.push_back(format_number(point.l2_size_kb));
  } else {
    row.emplace_back("");
  }
  row.push_back(
      format_number(static_cast<std::uint64_t>(point.cores)));
  row.emplace_back(point.mode == power::Mode::kHp ? "hp" : "ule");
  row.push_back(point.workload);
  row.push_back(point.workload_mix);
  row.push_back(format_number(point.hp_vcc));
  row.push_back(format_number(point.ule_vcc));
  row.push_back(format_number(point.scrub_interval_s));
  row.push_back(format_number(result.instructions));
  row.push_back(format_number(result.cycles));
  row.push_back(format_number(result.cpi()));
  row.push_back(format_number(result.seconds));
  row.push_back(format_number(result.epi()));
  row.push_back(format_number(epi.l1_dynamic));
  row.push_back(format_number(epi.l1_leakage));
  row.push_back(format_number(epi.l1_edc));
  row.push_back(format_number(epi.l2));
  row.push_back(format_number(epi.contention));
  row.push_back(format_number(epi.core_other));
  row.push_back(format_number(result.total_energy()));
  row.push_back(format_number(result.il1.hit_rate()));
  row.push_back(format_number(result.dl1.hit_rate()));
  if (l2_stats != nullptr) {
    row.push_back(format_number(l2_stats->hit_rate()));
    row.push_back(format_number(l2_stats->accesses));
  } else {
    row.emplace_back("");
    row.emplace_back("");
  }
  if (mem_stats != nullptr) {
    row.push_back(format_number(mem_stats->accesses));
  } else {
    row.emplace_back("");
  }
  // Arbitration pressure on the shared level (zero rows for single-core
  // points, where no arbiter exists).
  std::uint64_t contended_requests = 0;
  std::uint64_t contention_cycles = 0;
  for (const cache::LevelStats& level : result.levels) {
    contended_requests += level.contended_requests;
    contention_cycles += level.contention_cycles;
  }
  row.push_back(format_number(contended_requests));
  row.push_back(format_number(contention_cycles));
  std::uint64_t edc_corrections =
      result.il1.edc_corrections + result.dl1.edc_corrections;
  std::uint64_t edc_detected =
      result.il1.edc_detected + result.dl1.edc_detected;
  if (l2_stats != nullptr) {
    edc_corrections += l2_stats->edc_corrections;
    edc_detected += l2_stats->edc_detected;
  }
  row.push_back(format_number(edc_corrections));
  row.push_back(format_number(edc_detected));
  row.push_back(format_number(system.l1_area_um2()));
  row.push_back(format_number(system.cache_area_um2()));
  row.push_back(format_number(reliability.rate_per_bit));
  if (point.scrub_interval_s > 0.0) {
    row.push_back(format_number(reliability.uncorrectable_per_s));
    row.push_back(format_number(reliability.mttf_s));
  } else {
    row.emplace_back("");
    row.emplace_back("");
  }
  return row;
}

[[nodiscard]] std::vector<std::string> methodology_point(
    const SweepSpec& spec, const SweepPoint& point,
    const yield::CacheCellPlan& plan) {
  const double area_10t = tech::cell_area_f2(plan.baseline_10t.cell);
  const double area_8t = tech::cell_area_f2(plan.proposed_8t.cell);
  // Proposed/baseline ULE-way array area including check bits, as in the
  // paper's area discussion: scenario A stores 39 vs 32 bits per word,
  // scenario B 45 vs 39.
  const double check_factor =
      point.scenario == yield::Scenario::kA ? 39.0 / 32.0 : 45.0 / 39.0;

  std::vector<std::string> row;
  row.reserve(methodology_columns().size());
  row.push_back(format_number(static_cast<std::uint64_t>(point.index)));
  row.emplace_back(yield::to_string(point.scenario));
  row.push_back(format_number(point.hp_vcc));
  row.push_back(format_number(point.ule_vcc));
  row.push_back(format_number(spec.target_yield));
  row.push_back(format_number(plan.target_pf));
  row.push_back(format_number(plan.hp_6t.cell.size));
  row.push_back(format_number(plan.hp_6t.pf));
  row.push_back(format_number(plan.baseline_10t.cell.size));
  row.push_back(format_number(plan.baseline_10t.pf));
  row.push_back(format_number(plan.baseline_10t.yield));
  row.push_back(format_number(plan.proposed_8t.cell.size));
  row.push_back(format_number(plan.proposed_8t.pf));
  row.push_back(format_number(plan.proposed_8t.yield));
  row.push_back(format_number(area_10t));
  row.push_back(format_number(area_8t));
  row.push_back(format_number(area_8t * check_factor / area_10t));
  return row;
}

}  // namespace

std::vector<std::string> sweep_columns(SweepKind kind) {
  return kind == SweepKind::kSimulation ? simulation_columns()
                                        : methodology_columns();
}

/// One memoized Fig. 2 sizing run. call_once gives exactly-once compute
/// per key with concurrent readers of OTHER keys never blocking on it.
struct Executor::PlanSlot {
  std::once_flag once;
  yield::CacheCellPlan plan;
};

/// Book-keeping of one run() call. Workers deposit finished rows keyed
/// by their pull sequence; the coordinating thread (the run() caller)
/// emits the contiguous prefix, so sinks see source order, serialized.
struct Executor::RunState {
  struct Finished {
    SweepPoint point;
    std::vector<std::string> cells;
    bool warm = false;
  };

  std::mutex mutex;
  std::condition_variable ready;
  std::map<std::size_t, Finished> done;  ///< reorder buffer, seq-keyed
  std::size_t next_emit = 0;
  std::size_t outstanding = 0;  ///< pool tasks submitted, not finished
  std::exception_ptr error;     ///< first point failure
  bool cancelled = false;       ///< set by Executor::cancel()
};

Executor::Executor(std::size_t threads)
    : threads_(std::max<std::size_t>(threads, 1)) {
  if (threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(threads_);
  }
}

Executor::~Executor() = default;

void Executor::cancel() noexcept {
  std::lock_guard<std::mutex> runs_lock(runs_mutex_);
  cancelled_ = true;
  for (const auto& state : runs_) {
    std::lock_guard<std::mutex> state_lock(state->mutex);
    state->cancelled = true;
    state->ready.notify_all();
  }
}

bool Executor::cancelled() const noexcept {
  std::lock_guard<std::mutex> runs_lock(runs_mutex_);
  return cancelled_;
}

const yield::CacheCellPlan& Executor::plan_for(const SweepSpec& spec,
                                               const SweepPoint& point) {
  const auto key = std::make_tuple(static_cast<int>(point.scenario),
                                   point.hp_vcc, point.ule_vcc,
                                   spec.target_yield);
  std::shared_ptr<PlanSlot> slot;
  {
    std::lock_guard<std::mutex> lock(plans_mutex_);
    auto& entry = plans_[key];
    if (!entry) {
      entry = std::make_shared<PlanSlot>();
    }
    slot = entry;
  }
  const double target_yield = spec.target_yield;
  std::call_once(slot->once, [&slot, &point, target_yield] {
    yield::MethodologyConfig config;
    config.target_yield = target_yield;
    slot->plan = yield::run_methodology(point.scenario, point.hp_vcc,
                                        point.ule_vcc, config);
  });
  return slot->plan;
}

void Executor::evaluate_into(const SweepSpec& spec, const SweepPoint& point,
                             std::size_t seq,
                             const std::shared_ptr<RunState>& state) {
  std::vector<std::string> cells;
  std::exception_ptr failure;
  try {
    const yield::CacheCellPlan& plan = plan_for(spec, point);
    cells = spec.kind == SweepKind::kSimulation
                ? simulate_point(spec, point, plan)
                : methodology_point(spec, point, plan);
  } catch (...) {
    failure = std::current_exception();
  }
  std::lock_guard<std::mutex> lock(state->mutex);
  if (failure) {
    if (!state->error) {
      state->error = failure;
    }
  } else {
    state->done.emplace(
        seq, RunState::Finished{point, std::move(cells), false});
  }
  state->ready.notify_all();
}

ExecStats Executor::run(const SweepSpec& spec, PointSource& source,
                        ResultSink& sink, store::ResultStore* store,
                        const ExecOptions& options) {
  const std::vector<std::string> columns = sweep_columns(spec.kind);
  auto state = std::make_shared<RunState>();
  {
    std::lock_guard<std::mutex> runs_lock(runs_mutex_);
    if (cancelled_) {
      throw SweepCancelled();
    }
    runs_.push_back(state);
  }
  // Deregister on every exit path; run() never returns with tasks of
  // this run still on the pool (drain below), so the state can go.
  struct Deregister {
    Executor* executor;
    RunState* state;
    ~Deregister() {
      std::lock_guard<std::mutex> runs_lock(executor->runs_mutex_);
      auto& runs = executor->runs_;
      for (auto it = runs.begin(); it != runs.end(); ++it) {
        if (it->get() == state) {
          runs.erase(it);
          break;
        }
      }
    }
  } deregister{this, state.get()};

  // Blocks until every already-submitted task of this run left the pool,
  // so a failed run cannot leak workers touching freed spec/state.
  const auto drain = [&state](std::unique_lock<std::mutex>& lock) {
    state->ready.wait(lock, [&state] { return state->outstanding == 0; });
  };

  // Anything below may throw — a point failure, a cancelled run, or the
  // sink itself (a daemon client hanging up mid-stream). Whatever the
  // exit path, never leave this frame with tasks of this run still
  // running: they hold references into it. Marking the run cancelled
  // makes stragglers no-op and drain fast; on a normal return there is
  // nothing left to wait for.
  struct DrainOnExit {
    RunState* state;
    ~DrainOnExit() {
      std::unique_lock<std::mutex> lock(state->mutex);
      state->cancelled = true;
      state->ready.wait(lock, [this] { return state->outstanding == 0; });
    }
  } drain_on_exit{state.get()};

  sink.begin(spec, columns);

  const std::size_t window =
      options.window != 0 ? options.window
                          : std::max<std::size_t>(64, 8 * threads_);
  ExecStats stats;
  std::size_t seq = 0;      // next pull sequence to assign
  std::size_t emitted = 0;  // rows already pushed to the sink
  std::vector<SweepPoint> batch;

  for (;;) {
    // Emit whatever contiguous prefix of rows is finished.
    bool progressed = false;
    {
      std::unique_lock<std::mutex> lock(state->mutex);
      for (;;) {
        auto it = state->done.find(state->next_emit);
        if (it == state->done.end()) {
          break;
        }
        RunState::Finished finished = std::move(it->second);
        state->done.erase(it);
        ++state->next_emit;
        lock.unlock();
        sink.row(emitted, finished.point, finished.cells, finished.warm);
        ++(finished.warm ? stats.warm : stats.cold);
        ++emitted;
        progressed = true;
        lock.lock();
      }
      if (state->error) {
        drain(lock);
        std::rethrow_exception(state->error);
      }
      if (state->cancelled) {
        drain(lock);
        throw SweepCancelled();
      }
    }
    if (progressed && options.progress) {
      // total = emitted + in flight + still unpulled (exact for grids).
      options.progress({emitted, seq + source.estimated_remaining(),
                        stats.warm, stats.cold});
    }

    const std::size_t in_flight = seq - emitted;
    if (!source.done() && in_flight < window) {
      // Pull the next slice of the plan and dispatch it. Capped per
      // iteration so emission interleaves with pulling.
      batch.clear();
      source.next_batch(std::min<std::size_t>(window - in_flight, 64),
                        batch);
      for (SweepPoint& point : batch) {
        const std::size_t this_seq = seq++;
        if (store != nullptr) {
          const store::Key key = result_key(spec, point, columns);
          if (const auto payload = store->get(key)) {
            std::vector<std::string> cells =
                decode_row(payload->data(), payload->size());
            if (cells.size() + 1 != columns.size()) {
              throw ConfigError(
                  "stored row width does not match the sweep schema");
            }
            std::vector<std::string> row;
            row.reserve(columns.size());
            row.push_back(
                format_number(static_cast<std::uint64_t>(point.index)));
            for (auto& cell : cells) {
              row.push_back(std::move(cell));
            }
            std::lock_guard<std::mutex> lock(state->mutex);
            state->done.emplace(
                this_seq,
                RunState::Finished{point, std::move(row), true});
            continue;
          }
        }
        if (pool_ == nullptr) {
          evaluate_into(spec, point, this_seq, state);
          continue;
        }
        {
          std::lock_guard<std::mutex> lock(state->mutex);
          ++state->outstanding;
        }
        pool_->submit([this, &spec, point = std::move(point), this_seq,
                       state] {
          bool abort = false;
          {
            std::lock_guard<std::mutex> lock(state->mutex);
            abort = state->error != nullptr || state->cancelled;
          }
          if (!abort) {
            evaluate_into(spec, point, this_seq, state);
          }
          std::lock_guard<std::mutex> lock(state->mutex);
          --state->outstanding;
          state->ready.notify_all();
        });
      }
      continue;  // emit what is already finished before pulling more
    }

    if (source.done() && emitted == seq) {
      break;  // every pulled point emitted, plan exhausted
    }

    // Window full or plan exhausted with rows in flight: sleep until the
    // next emittable row lands (or the run fails / is cancelled).
    std::unique_lock<std::mutex> lock(state->mutex);
    state->ready.wait(lock, [&state] {
      return state->done.count(state->next_emit) != 0 ||
             state->error != nullptr || state->cancelled;
    });
  }

  sink.end();
  stats.points = emitted;
  return stats;
}

}  // namespace hvc::explore
