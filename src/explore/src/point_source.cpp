#include "hvc/explore/point_source.hpp"

#include <algorithm>

#include "hvc/common/error.hpp"

namespace hvc::explore {

GridPointSource::GridPointSource(const SweepSpec& spec) : spec_(spec) {
  const bool simulation = spec_.kind == SweepKind::kSimulation;
  // The same normalization expand_points performs: a methodology sweep's
  // design/mode/workload axes collapse to one iteration each, so the two
  // enumerations cannot drift apart.
  designs_ = simulation ? spec_.designs : std::vector<bool>{false};
  l2_designs_ =
      simulation ? spec_.l2_designs : std::vector<std::string>{"none"};
  l2_sizes_ = simulation ? spec_.l2_size_kbs : std::vector<double>{64.0};
  cores_ = simulation ? spec_.cores : std::vector<std::size_t>{1};
  modes_ = simulation ? spec_.modes
                      : std::vector<power::Mode>{power::Mode::kHp};
  mixes_ = simulation && !spec_.workload_mixes.empty();
  workloads_ = !simulation ? std::vector<std::string>{""}
               : mixes_    ? spec_.workload_mixes
                           : spec_.workloads;
  scrubs_ = simulation ? spec_.scrub_intervals_s : std::vector<double>{0.0};
  total_ = spec_.point_count();
}

SweepPoint GridPointSource::current() const {
  SweepPoint point;
  point.index = produced_;
  point.scenario = spec_.scenarios[cursor_[0]];
  point.proposed = designs_[cursor_[1]];
  point.l2_design = l2_designs_[cursor_[2]];
  point.l2_size_kb = l2_sizes_[cursor_[3]];
  point.cores = cores_[cursor_[4]];
  point.mode = modes_[cursor_[5]];
  point.hp_vcc = spec_.hp_vccs[cursor_[6]];
  point.ule_vcc = spec_.ule_vccs[cursor_[7]];
  (mixes_ ? point.workload_mix : point.workload) = workloads_[cursor_[8]];
  point.scrub_interval_s = scrubs_[cursor_[9]];
  return point;
}

void GridPointSource::advance() {
  // Odometer increment, innermost digit first. The only non-rectangular
  // axis is l2_size: the "none" hierarchy shape has no L2 to size, so its
  // size digit rolls over after a single value (matching expand_points'
  // size_count collapse).
  const std::size_t bases[10] = {
      spec_.scenarios.size(),
      designs_.size(),
      l2_designs_.size(),
      l2_designs_[cursor_[2]] == "none" ? 1 : l2_sizes_.size(),
      cores_.size(),
      modes_.size(),
      spec_.hp_vccs.size(),
      spec_.ule_vccs.size(),
      workloads_.size(),
      scrubs_.size(),
  };
  for (int digit = 9; digit >= 0; --digit) {
    if (++cursor_[digit] < bases[digit]) {
      return;
    }
    cursor_[digit] = 0;
  }
}

std::size_t GridPointSource::next_batch(std::size_t max_points,
                                        std::vector<SweepPoint>& out) {
  const std::size_t count = std::min(max_points, total_ - produced_);
  out.reserve(out.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(current());
    ++produced_;
    advance();
  }
  return count;
}

std::size_t ListPointSource::next_batch(std::size_t max_points,
                                        std::vector<SweepPoint>& out) {
  const std::size_t count =
      std::min(max_points, points_.size() - next_);
  out.reserve(out.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(points_[next_++]);
  }
  return count;
}

}  // namespace hvc::explore
