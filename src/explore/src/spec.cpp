#include "hvc/explore/spec.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "hvc/common/error.hpp"
#include "hvc/trace/trace_file.hpp"
#include "hvc/workloads/workload.hpp"

namespace hvc::explore {

namespace {

[[nodiscard]] std::vector<double> parse_numeric_axis(const std::string& axis,
                                                     const Json& value) {
  std::vector<double> values;
  if (value.is_array()) {
    for (const auto& entry : value.as_array()) {
      if (!entry.is_number()) {
        throw ConfigError("axis \"" + axis + "\": expected numbers");
      }
      values.push_back(entry.as_number());
    }
  } else if (value.is_object()) {
    for (const auto& member : value.as_object()) {
      if (member.first != "from" && member.first != "to" &&
          member.first != "step") {
        throw ConfigError("axis \"" + axis + "\": unknown grid key \"" +
                          member.first + "\"");
      }
    }
    const double from = value.at("from").as_number();
    const double to = value.at("to").as_number();
    const double step = value.at("step").as_number();
    if (step <= 0.0 || to < from) {
      throw ConfigError("axis \"" + axis +
                        "\": grid needs step > 0 and to >= from");
    }
    // Inclusive of `to` up to a half-ulp-ish slack so 0.28..0.50 step 0.02
    // lands exactly on 0.50 despite binary rounding.
    const double slack = step * 1e-9;
    for (double v = from; v <= to + slack; v += step) {
      values.push_back(std::min(v, to));
    }
  } else {
    throw ConfigError("axis \"" + axis +
                      "\": expected a list or {from,to,step} grid");
  }
  if (values.empty()) {
    throw ConfigError("axis \"" + axis + "\" is empty");
  }
  return values;
}

[[nodiscard]] std::vector<std::string> parse_string_axis(
    const std::string& axis, const Json& value) {
  if (!value.is_array()) {
    throw ConfigError("axis \"" + axis + "\": expected a list of strings");
  }
  std::vector<std::string> values;
  for (const auto& entry : value.as_array()) {
    if (!entry.is_string()) {
      throw ConfigError("axis \"" + axis + "\": expected strings");
    }
    values.push_back(entry.as_string());
  }
  if (values.empty()) {
    throw ConfigError("axis \"" + axis + "\" is empty");
  }
  return values;
}

[[nodiscard]] std::vector<std::string> expand_workloads(
    const std::vector<std::string>& entries) {
  std::vector<std::string> names;
  const auto append = [&names](const std::vector<std::string>& more) {
    names.insert(names.end(), more.begin(), more.end());
  };
  for (const auto& entry : entries) {
    if (entry == "@all") {
      append(wl::all_names());
    } else if (entry == "@big") {
      append(wl::names_of(wl::BenchClass::kBig));
    } else if (entry == "@small") {
      append(wl::names_of(wl::BenchClass::kSmall));
    } else if (wl::has_workload(entry)) {
      names.push_back(entry);
    } else if (trace::is_trace_ref(entry)) {
      // Recorded traces sweep like any workload; the file itself is only
      // opened (and validated) when a point runs, so specs stay portable
      // records of an experiment even before the trace exists.
      names.push_back(entry);
    } else {
      throw ConfigError("axis \"workload\": unknown workload \"" + entry +
                        "\" (use a registry name, trace:<path>, or "
                        "@small/@big/@all)");
    }
  }
  // Duplicates would silently double-count averages downstream.
  std::set<std::string> seen;
  for (const auto& name : names) {
    if (!seen.insert(name).second) {
      throw ConfigError("axis \"workload\": duplicate workload \"" + name +
                        "\"");
    }
  }
  return names;
}

[[nodiscard]] std::vector<std::string> split_mix(const std::string& mix) {
  std::vector<std::string> names;
  std::string::size_type start = 0;
  while (start <= mix.size()) {
    const auto plus = mix.find('+', start);
    const std::string name = mix.substr(
        start, plus == std::string::npos ? std::string::npos : plus - start);
    names.push_back(name);
    if (plus == std::string::npos) {
      break;
    }
    start = plus + 1;
  }
  return names;
}

[[nodiscard]] std::vector<std::string> validate_mixes(
    const std::vector<std::string>& entries) {
  for (const auto& entry : entries) {
    for (const auto& name : split_mix(entry)) {
      // Mix slots take registry names or trace:<path> refs ('+' splits
      // the mix, so trace paths containing '+' cannot be mixed).
      if (name.empty() ||
          (!wl::has_workload(name) && !trace::is_trace_ref(name))) {
        throw ConfigError("axis \"workload_mix\": mix \"" + entry +
                          "\" needs '+'-separated registry names or "
                          "trace:<path> refs (classes like @big are not "
                          "allowed inside a mix)");
      }
    }
  }
  std::set<std::string> seen;
  for (const auto& entry : entries) {
    if (!seen.insert(entry).second) {
      throw ConfigError("axis \"workload_mix\": duplicate mix \"" + entry +
                        "\"");
    }
  }
  return entries;
}

[[nodiscard]] std::uint64_t parse_u64(const std::string& key,
                                      const Json& value) {
  // 0x1p64 bound: larger (or non-finite) doubles make the cast to
  // uint64_t undefined behaviour, not just lossy.
  if (!value.is_number() || !std::isfinite(value.as_number()) ||
      value.as_number() < 0.0 || value.as_number() >= 0x1p64 ||
      value.as_number() != std::floor(value.as_number())) {
    throw ConfigError("\"" + key + "\" must be a non-negative integer < 2^64");
  }
  return static_cast<std::uint64_t>(value.as_number());
}

}  // namespace

const char* to_string(SweepKind kind) {
  return kind == SweepKind::kSimulation ? "simulation" : "methodology";
}

SweepSpec SweepSpec::from_json(const Json& json) {
  if (!json.is_object()) {
    throw ConfigError("sweep spec must be a JSON object");
  }
  static const std::set<std::string> known_keys = {
      "name", "kind",  "seed",         "system_seed", "workload_seed",
      "scale", "axes", "target_yield",
  };
  for (const auto& member : json.as_object()) {
    if (known_keys.find(member.first) == known_keys.end()) {
      throw ConfigError("unknown spec key \"" + member.first + "\"");
    }
  }

  SweepSpec spec;
  if (const Json* name = json.find("name")) {
    spec.name = name->as_string();
  }
  if (const Json* kind = json.find("kind")) {
    const std::string& text = kind->as_string();
    if (text == "simulation") {
      spec.kind = SweepKind::kSimulation;
    } else if (text == "methodology") {
      spec.kind = SweepKind::kMethodology;
    } else {
      throw ConfigError("\"kind\" must be \"simulation\" or \"methodology\"");
    }
  }
  if (const Json* seed = json.find("seed")) {
    spec.seed = parse_u64("seed", *seed);
  }
  if (const Json* system_seed = json.find("system_seed")) {
    spec.system_seed = parse_u64("system_seed", *system_seed);
  }
  if (const Json* workload_seed = json.find("workload_seed")) {
    spec.workload_seed = parse_u64("workload_seed", *workload_seed);
  }
  if (const Json* scale = json.find("scale")) {
    spec.scale = static_cast<std::size_t>(parse_u64("scale", *scale));
    if (spec.scale == 0) {
      throw ConfigError("\"scale\" must be >= 1");
    }
  }
  if (const Json* target_yield = json.find("target_yield")) {
    const double value = target_yield->as_number();
    if (value <= 0.0 || value >= 1.0) {
      throw ConfigError("\"target_yield\" must be in (0, 1)");
    }
    spec.target_yield = value;
  }

  const bool methodology = spec.kind == SweepKind::kMethodology;
  bool have_workloads = false;
  if (const Json* axes = json.find("axes")) {
    if (!axes->is_object()) {
      throw ConfigError("\"axes\" must be an object");
    }
    for (const auto& [axis, value] : axes->as_object()) {
      if (axis == "scenario") {
        spec.scenarios.clear();
        for (const auto& entry : parse_string_axis(axis, value)) {
          if (entry == "A") {
            spec.scenarios.push_back(yield::Scenario::kA);
          } else if (entry == "B") {
            spec.scenarios.push_back(yield::Scenario::kB);
          } else {
            throw ConfigError("axis \"scenario\": expected \"A\" or \"B\"");
          }
        }
      } else if (axis == "design") {
        if (methodology) {
          throw ConfigError(
              "axis \"design\" does not apply to methodology sweeps (the "
              "sizing loop covers baseline and proposed together)");
        }
        spec.designs.clear();
        for (const auto& entry : parse_string_axis(axis, value)) {
          if (entry == "baseline") {
            spec.designs.push_back(false);
          } else if (entry == "proposed") {
            spec.designs.push_back(true);
          } else {
            throw ConfigError(
                "axis \"design\": expected \"baseline\" or \"proposed\"");
          }
        }
      } else if (axis == "l2") {
        if (methodology) {
          throw ConfigError("axis \"l2\" does not apply to methodology sweeps");
        }
        spec.l2_designs.clear();
        for (const auto& entry : parse_string_axis(axis, value)) {
          if (entry != "none" && entry != "baseline" && entry != "proposed") {
            throw ConfigError(
                "axis \"l2\": expected \"none\", \"baseline\" or "
                "\"proposed\"");
          }
          spec.l2_designs.push_back(entry);
        }
      } else if (axis == "l2_size_kb") {
        if (methodology) {
          throw ConfigError(
              "axis \"l2_size_kb\" does not apply to methodology sweeps");
        }
        spec.l2_size_kbs = parse_numeric_axis(axis, value);
        for (const double kb : spec.l2_size_kbs) {
          if (kb < 1.0 || kb != std::floor(kb)) {
            throw ConfigError(
                "axis \"l2_size_kb\": sizes must be integers >= 1");
          }
        }
      } else if (axis == "cores") {
        if (methodology) {
          throw ConfigError(
              "axis \"cores\" does not apply to methodology sweeps");
        }
        spec.cores.clear();
        for (const double count : parse_numeric_axis(axis, value)) {
          if (count < 1.0 || count > 64.0 || count != std::floor(count)) {
            throw ConfigError(
                "axis \"cores\": core counts must be integers in [1, 64]");
          }
          spec.cores.push_back(static_cast<std::size_t>(count));
        }
      } else if (axis == "workload_mix") {
        if (methodology) {
          throw ConfigError(
              "axis \"workload_mix\" does not apply to methodology sweeps");
        }
        spec.workload_mixes =
            validate_mixes(parse_string_axis(axis, value));
      } else if (axis == "mode") {
        if (methodology) {
          throw ConfigError(
              "axis \"mode\" does not apply to methodology sweeps");
        }
        spec.modes.clear();
        for (const auto& entry : parse_string_axis(axis, value)) {
          if (entry == "hp") {
            spec.modes.push_back(power::Mode::kHp);
          } else if (entry == "ule") {
            spec.modes.push_back(power::Mode::kUle);
          } else {
            throw ConfigError("axis \"mode\": expected \"hp\" or \"ule\"");
          }
        }
      } else if (axis == "hp_vcc") {
        spec.hp_vccs = parse_numeric_axis(axis, value);
      } else if (axis == "ule_vcc") {
        spec.ule_vccs = parse_numeric_axis(axis, value);
      } else if (axis == "workload") {
        if (methodology) {
          throw ConfigError(
              "axis \"workload\" does not apply to methodology sweeps");
        }
        spec.workloads = expand_workloads(parse_string_axis(axis, value));
        have_workloads = true;
      } else if (axis == "scrub_interval_s") {
        if (methodology) {
          throw ConfigError(
              "axis \"scrub_interval_s\" does not apply to methodology "
              "sweeps");
        }
        spec.scrub_intervals_s = parse_numeric_axis(axis, value);
        for (const double interval : spec.scrub_intervals_s) {
          if (interval < 0.0) {
            throw ConfigError(
                "axis \"scrub_interval_s\": intervals must be >= 0");
          }
        }
      } else {
        throw ConfigError("unknown axis \"" + axis + "\"");
      }
    }
  }
  for (const double vcc : spec.hp_vccs) {
    if (vcc <= 0.0 || vcc > 2.0) {
      throw ConfigError("axis \"hp_vcc\": voltages must be in (0, 2] V");
    }
  }
  for (const double vcc : spec.ule_vccs) {
    if (vcc <= 0.0 || vcc > 2.0) {
      throw ConfigError("axis \"ule_vcc\": voltages must be in (0, 2] V");
    }
  }
  if (!methodology && have_workloads && !spec.workload_mixes.empty()) {
    throw ConfigError(
        "axes \"workload\" and \"workload_mix\" are mutually exclusive "
        "(a mix of one name covers the single-workload case)");
  }
  if (!methodology && !have_workloads && spec.workload_mixes.empty()) {
    throw ConfigError(
        "simulation sweeps need a \"workload\" axis (e.g. [\"@big\"]) or a "
        "\"workload_mix\" axis");
  }
  return spec;
}

SweepSpec SweepSpec::parse(std::string_view text) {
  return from_json(Json::parse(text));
}

Json SweepSpec::to_json() const {
  Json axes;
  {
    Json::Array values;
    for (const auto scenario : scenarios) {
      values.emplace_back(yield::to_string(scenario));
    }
    axes.set("scenario", Json(std::move(values)));
  }
  if (kind == SweepKind::kSimulation) {
    Json::Array values;
    for (const bool proposed : designs) {
      values.emplace_back(proposed ? "proposed" : "baseline");
    }
    axes.set("design", Json(std::move(values)));
    Json::Array l2_values;
    for (const auto& l2 : l2_designs) {
      l2_values.emplace_back(l2);
    }
    axes.set("l2", Json(std::move(l2_values)));
    Json::Array l2_size_values;
    for (const double kb : l2_size_kbs) {
      l2_size_values.emplace_back(kb);
    }
    axes.set("l2_size_kb", Json(std::move(l2_size_values)));
    Json::Array core_values;
    for (const std::size_t count : cores) {
      core_values.emplace_back(static_cast<double>(count));
    }
    axes.set("cores", Json(std::move(core_values)));
    Json::Array mode_values;
    for (const auto mode : modes) {
      mode_values.emplace_back(mode == power::Mode::kHp ? "hp" : "ule");
    }
    axes.set("mode", Json(std::move(mode_values)));
  }
  {
    Json::Array values;
    for (const double vcc : hp_vccs) {
      values.emplace_back(vcc);
    }
    axes.set("hp_vcc", Json(std::move(values)));
  }
  {
    Json::Array values;
    for (const double vcc : ule_vccs) {
      values.emplace_back(vcc);
    }
    axes.set("ule_vcc", Json(std::move(values)));
  }
  if (kind == SweepKind::kSimulation) {
    if (workload_mixes.empty()) {
      Json::Array values;
      for (const auto& name : workloads) {
        values.emplace_back(name);
      }
      axes.set("workload", Json(std::move(values)));
    } else {
      Json::Array values;
      for (const auto& mix : workload_mixes) {
        values.emplace_back(mix);
      }
      axes.set("workload_mix", Json(std::move(values)));
    }
    Json::Array scrub_values;
    for (const double interval : scrub_intervals_s) {
      scrub_values.emplace_back(interval);
    }
    axes.set("scrub_interval_s", Json(std::move(scrub_values)));
  }

  Json out;
  out.set("name", Json(name));
  out.set("kind", Json(to_string(kind)));
  out.set("seed", Json(static_cast<double>(seed)));
  if (system_seed) {
    out.set("system_seed", Json(static_cast<double>(*system_seed)));
  }
  out.set("workload_seed", Json(static_cast<double>(workload_seed)));
  out.set("scale", Json(scale));
  out.set("target_yield", Json(target_yield));
  out.set("axes", std::move(axes));
  return out;
}

std::size_t SweepSpec::point_count() const noexcept {
  std::size_t count = scenarios.size() * hp_vccs.size() * ule_vccs.size();
  if (kind == SweepKind::kSimulation) {
    // "none" has no L2 to size: it contributes one hierarchy shape however
    // many sizes the l2_size_kb axis lists (expand_points collapses it the
    // same way, so no duplicate rows are simulated).
    std::size_t l2_shapes = 0;
    for (const auto& l2 : l2_designs) {
      l2_shapes += l2 == "none" ? 1 : l2_size_kbs.size();
    }
    const std::size_t workload_points =
        workload_mixes.empty() ? workloads.size() : workload_mixes.size();
    count *= designs.size() * l2_shapes * cores.size() * modes.size() *
             workload_points * scrub_intervals_s.size();
  }
  return count;
}

std::vector<std::string> SweepPoint::core_workloads() const {
  if (!workload_mix.empty()) {
    return split_mix(workload_mix);
  }
  return {workload};
}

std::vector<SweepPoint> expand_points(const SweepSpec& spec) {
  std::vector<SweepPoint> points;
  points.reserve(spec.point_count());
  const bool simulation = spec.kind == SweepKind::kSimulation;
  // Single nested loop in the documented order; the degenerate axes of a
  // methodology sweep collapse to one iteration each.
  const std::vector<bool> designs = simulation ? spec.designs
                                               : std::vector<bool>{false};
  const std::vector<std::string> l2_designs =
      simulation ? spec.l2_designs : std::vector<std::string>{"none"};
  const std::vector<double> l2_sizes =
      simulation ? spec.l2_size_kbs : std::vector<double>{64.0};
  const std::vector<std::size_t> cores =
      simulation ? spec.cores : std::vector<std::size_t>{1};
  const std::vector<power::Mode> modes =
      simulation ? spec.modes : std::vector<power::Mode>{power::Mode::kHp};
  // The workload slot iterates over plain names or over per-core mixes,
  // whichever the spec declares.
  const bool mixes = simulation && !spec.workload_mixes.empty();
  const std::vector<std::string> workloads =
      !simulation ? std::vector<std::string>{""}
      : mixes     ? spec.workload_mixes
                  : spec.workloads;
  const std::vector<double> scrubs =
      simulation ? spec.scrub_intervals_s : std::vector<double>{0.0};
  for (const auto scenario : spec.scenarios) {
    for (const bool proposed : designs) {
      for (const auto& l2_design : l2_designs) {
        // The "none" shape has no L2 to size: one point, not one per size.
        const std::size_t size_count =
            l2_design == "none" ? 1 : l2_sizes.size();
        for (std::size_t si = 0; si < size_count; ++si) {
          const double l2_size_kb = l2_sizes[si];
          for (const std::size_t core_count : cores) {
            for (const auto mode : modes) {
              for (const double hp_vcc : spec.hp_vccs) {
                for (const double ule_vcc : spec.ule_vccs) {
                  for (const auto& workload : workloads) {
                    for (const double scrub : scrubs) {
                      SweepPoint point;
                      point.index = points.size();
                      point.scenario = scenario;
                      point.proposed = proposed;
                      point.l2_design = l2_design;
                      point.l2_size_kb = l2_size_kb;
                      point.cores = core_count;
                      point.mode = mode;
                      point.hp_vcc = hp_vcc;
                      point.ule_vcc = ule_vcc;
                      (mixes ? point.workload_mix : point.workload) =
                          workload;
                      point.scrub_interval_s = scrub;
                      points.push_back(std::move(point));
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return points;
}

}  // namespace hvc::explore
