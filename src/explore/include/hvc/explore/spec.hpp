// Declarative sweep specification for the design-space explorer.
//
// A spec is a JSON document naming the axes of a cartesian sweep over the
// paper's design space. Two kinds exist:
//   "simulation"  — each point builds a sim::System and replays one
//                   workload trace (Fig. 3/4-style rows);
//   "methodology" — each point runs the Fig. 2 sizing loop and reports
//                   cells / Pf / yields / areas (no workload axis).
//
// Example:
//   {
//     "name": "fig3",
//     "kind": "simulation",
//     "seed": 42,
//     "system_seed": 42,
//     "workload_seed": 1,
//     "scale": 1,
//     "target_yield": 0.99,
//     "axes": {
//       "scenario": ["A", "B"],
//       "design": ["baseline", "proposed"],
//       "mode": ["hp"],
//       "workload": ["@big"]
//     }
//   }
//
// Numeric axes (hp_vcc, ule_vcc, scrub_interval_s, l2_size_kb, cores)
// take either an explicit list ([0.3, 0.35]) or an inclusive grid
// ({"from": 0.28, "to": 0.5, "step": 0.02}). The workload axis accepts
// registry names, the classes "@small", "@big" and "@all", and recorded
// traces as "trace:<path>" (.hvct files captured with hvc_trace record;
// streamed from disk per point, so sweeps fan out over recorded — or
// externally captured — traces without re-running codec kernels). The
// hierarchy axes sweep the memory-hierarchy shape: "l2" takes "none" (the
// paper's two-level chip), "baseline" (10T shared L2) or "proposed"
// (8T+EDC shared L2), and "l2_size_kb" its capacity ("none" has no L2 to
// size, so it collapses to a single point however many sizes are listed).
// The multi-core axes: "cores" counts the chip's cores (each with private
// IL1/DL1, sharing the L2 — or the memory port — behind a round-robin
// arbiter), and "workload_mix" lists per-core mixes as '+'-separated
// registry names or trace refs ("gsm_c+trace:gsm.hvct"; core c runs
// entry c mod mix length).
// "workload" and "workload_mix" are mutually exclusive — a simulation
// spec names exactly one of them. Unknown keys anywhere are errors: a
// spec is an experiment record, so typos must not silently change it.
//
// Point order is the documented nested-loop order (scenario, design, l2,
// l2_size_kb, cores, mode, hp_vcc, ule_vcc, workload-or-mix,
// scrub_interval_s — outermost first); a point's index in that order is
// its identity for seeding, so adding threads can never change any
// point's random stream. Defaulted axes (cores [1], no mix) collapse to
// one iteration, so pre-multicore specs keep their exact point indices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hvc/common/json.hpp"
#include "hvc/power/cache_power.hpp"
#include "hvc/yield/methodology.hpp"

namespace hvc::explore {

enum class SweepKind {
  kSimulation,   ///< System + workload replay per point
  kMethodology,  ///< Fig. 2 sizing loop per point
};

[[nodiscard]] const char* to_string(SweepKind kind);

/// A parsed, validated sweep: every axis expanded to its concrete values.
struct SweepSpec {
  std::string name = "sweep";
  SweepKind kind = SweepKind::kSimulation;
  /// Base seed for per-point Rng streams (point i uses stream(seed, i)).
  std::uint64_t seed = 42;
  /// When set, every System is built with this exact seed instead of the
  /// per-point derived one — reproduces the fixed-seed bench_fig* rows.
  std::optional<std::uint64_t> system_seed;
  std::uint64_t workload_seed = 1;
  std::size_t scale = 1;
  double target_yield = 0.99;

  // Axis values in spec order. Defaults match the paper's operating point.
  std::vector<yield::Scenario> scenarios{yield::Scenario::kA};
  std::vector<bool> designs{false};       ///< proposed flags
  std::vector<std::string> l2_designs{"none"};  ///< none|baseline|proposed
  std::vector<double> l2_size_kbs{64.0};
  std::vector<std::size_t> cores{1};      ///< cores per chip
  std::vector<power::Mode> modes{power::Mode::kHp};
  std::vector<double> hp_vccs{1.0};
  std::vector<double> ule_vccs{0.35};
  /// Exactly one of these is populated for simulation sweeps: plain
  /// per-point workloads, or '+'-separated per-core mixes.
  std::vector<std::string> workloads;
  std::vector<std::string> workload_mixes;
  std::vector<double> scrub_intervals_s{0.0};  ///< 0 = no scrubbing

  /// Parses and validates a JSON spec document; throws ConfigError with a
  /// helpful message on any problem.
  [[nodiscard]] static SweepSpec from_json(const Json& json);
  [[nodiscard]] static SweepSpec parse(std::string_view text);

  /// Serializes back to JSON (axes in expanded-list form); parse(dump())
  /// reproduces the same sweep.
  [[nodiscard]] Json to_json() const;

  [[nodiscard]] std::size_t point_count() const noexcept;
};

/// One fully-resolved point of the sweep.
struct SweepPoint {
  std::size_t index = 0;  ///< position in documented order == seed stream
  yield::Scenario scenario = yield::Scenario::kA;
  bool proposed = false;
  std::string l2_design = "none";
  double l2_size_kb = 64.0;
  std::size_t cores = 1;
  power::Mode mode = power::Mode::kHp;
  double hp_vcc = 1.0;
  double ule_vcc = 0.35;
  std::string workload;      ///< empty for methodology and mix points
  std::string workload_mix;  ///< '+'-separated; empty for plain points
  double scrub_interval_s = 0.0;

  /// The per-core workload assignment of this point: the mix's names, or
  /// the single workload every core runs.
  [[nodiscard]] std::vector<std::string> core_workloads() const;
};

/// Expands the cartesian product in the documented order.
[[nodiscard]] std::vector<SweepPoint> expand_points(const SweepSpec& spec);

}  // namespace hvc::explore
