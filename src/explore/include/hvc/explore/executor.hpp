// Scheduler/executor layer of the sweep engine.
//
// An Executor owns the worker threads and the plan memo (the expensive
// Fig. 2 sizing runs, keyed by their inputs and computed once each). It
// pulls points from a PointSource a window at a time, answers warm
// points straight from an attached result store, evaluates cold points
// on the pool, and pushes finished rows into a ResultSink in source
// order — whatever order workers finish in.
//
// Determinism guarantee (unchanged from the monolithic engine): for a
// fixed spec the emitted rows are byte-identical at ANY thread count.
//   1. A point's identity is its index from the source; every stochastic
//      input derives from that index via counter-based Rng::mix64, never
//      from a stream shared across points.
//   2. Cell plans are keyed by their inputs; the sizing loop itself is
//      deterministic and analytic, so lazy memoization cannot change it.
//   3. Rows are formatted locale-free and emitted through a reorder
//      buffer in source order, so sinks never see completion order (and
//      never see concurrent calls — sinks need no locking).
//
// One Executor may serve many concurrent run() calls (the serve daemon
// shares one pool and one plan memo across clients); each run tracks its
// own completion, so runs never observe each other beyond sharing CPU.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "hvc/common/error.hpp"
#include "hvc/explore/point_source.hpp"
#include "hvc/explore/sink.hpp"
#include "hvc/explore/spec.hpp"

namespace hvc {
class ThreadPool;
}
namespace hvc::store {
class ResultStore;
}
namespace hvc::yield {
struct CacheCellPlan;
}

namespace hvc::explore {

/// The column list of a sweep of the given kind (leading positional
/// "point" column first).
[[nodiscard]] std::vector<std::string> sweep_columns(SweepKind kind);

/// Thrown out of Executor::run when cancel() interrupts it (the serve
/// daemon's SIGTERM path). A ConfigError so existing catch sites treat
/// it as a recoverable failure.
class SweepCancelled : public ConfigError {
 public:
  SweepCancelled() : ConfigError("sweep cancelled by shutdown") {}
};

/// Snapshot handed to the progress callback after rows are emitted.
/// `total` is emitted + in-flight + the source's estimate, so it is
/// exact for grid/list sources. warm/cold count emitted rows only.
struct SweepProgress {
  std::size_t done = 0;
  std::size_t total = 0;
  std::size_t warm = 0;
  std::size_t cold = 0;
};

struct ExecOptions {
  /// Invoked (on the coordinating thread, serialized with sink calls)
  /// whenever newly finished rows were emitted. Throttling is the
  /// callback's business.
  std::function<void(const SweepProgress&)> progress;
  /// Max points pulled-but-not-yet-emitted; bounds memory on huge lazy
  /// grids. 0 picks max(64, 8 * threads).
  std::size_t window = 0;
};

/// What one run() did.
struct ExecStats {
  std::size_t points = 0;
  std::size_t warm = 0;  ///< answered from the store
  std::size_t cold = 0;  ///< simulated
};

class Executor {
 public:
  /// Spawns `threads` workers. 1 means fully inline execution on the
  /// calling thread (no pool) — the reference baseline.
  explicit Executor(std::size_t threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// Drains `source` into `sink`: pulls points, answers warm ones from
  /// `store` (when non-null), evaluates cold ones on the pool, emits
  /// rows in source order. Blocking; safe to call from several threads
  /// at once. Throws the first point failure (sink.end() is then never
  /// called), or SweepCancelled when cancel() interrupts the run.
  /// Committing cold rows back to a store is a sink's job
  /// (StoreCommitSink), not the executor's.
  ExecStats run(const SweepSpec& spec, PointSource& source, ResultSink& sink,
                store::ResultStore* store = nullptr,
                const ExecOptions& options = {});

  /// Aborts every in-flight and future run() with SweepCancelled.
  /// Idempotent; used by the daemon's shutdown path.
  void cancel() noexcept;
  [[nodiscard]] bool cancelled() const noexcept;

 private:
  struct PlanSlot;
  struct RunState;

  /// The sized cell plan for one (scenario, hp_vcc, ule_vcc,
  /// target_yield), computed on first use and memoized for the life of
  /// the Executor — shared across runs, clients and threads.
  [[nodiscard]] const yield::CacheCellPlan& plan_for(const SweepSpec& spec,
                                                     const SweepPoint& point);

  void evaluate_into(const SweepSpec& spec, const SweepPoint& point,
                     std::size_t seq, const std::shared_ptr<RunState>& state);

  std::size_t threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  ///< null when threads_ == 1

  std::mutex plans_mutex_;
  std::map<std::tuple<int, double, double, double>,
           std::shared_ptr<PlanSlot>>
      plans_;

  mutable std::mutex runs_mutex_;
  std::vector<std::shared_ptr<RunState>> runs_;  ///< active runs
  bool cancelled_ = false;
};

}  // namespace hvc::explore
