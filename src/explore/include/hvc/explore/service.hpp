// Service layer of the sweep engine: `hvc_explore serve`.
//
// A Service is a long-running process wrapped around ONE shared Executor
// and (optionally) ONE writable result store. Clients connect over a
// Unix-domain socket and send line-delimited JSON queries; each query is
// a full sweep spec, answered warm from the store where possible and
// scheduled cold on the shared pool otherwise, with rows streamed back
// as they are emitted (in point order — the same bytes a batch run
// would produce). Several clients run concurrently; they share the
// executor's threads and plan memo, so a second client asking for an
// overlapping design space pays nothing for the overlap.
//
// Wire protocol (one JSON document per line, both directions):
//   request   {"spec": {...sweep spec...}, "id": <any>?}
//   response  {"event":"begin","id"?,"name","kind","points",
//              "columns":[...],"csv_header": "<header line>"}
//             {"event":"row","id"?,"seq":N,"csv":"<one CSV line>"}   xN
//             {"event":"end","id"?,"points","warm","cold"}
//             {"event":"error","id"?,"error":"<message>"}
// "csv" strings carry no trailing newline; joining csv_header and every
// row with '\n' (plus a final '\n') reproduces the batch CSV byte for
// byte. "id" is echoed verbatim when the request carried one. After an
// error event the connection stays usable for further requests.
//
// Shutdown: request_stop() is async-signal-safe (it only writes one
// byte to a self-pipe). The accept loop wakes, in-flight queries are
// cancelled (clients get an error event), connection threads are
// joined, the store is closed CLEANLY (dirty flag cleared — a
// SIGTERM'd daemon leaves `store fsck` exit 0), and the socket file is
// removed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hvc/common/socket.hpp"

namespace hvc::store {
class ResultStore;
}

namespace hvc::explore {

class Executor;

struct ServeOptions {
  std::string socket_path;
  std::string store_path;  ///< empty = no persistent store
  bool resume = false;     ///< recover a dirty store on open
  std::size_t threads = 1;
  /// Prints "listening on <socket>" to stderr once bound (the readiness
  /// line scripts wait for). Off in in-process tests.
  bool announce = false;
};

class Service {
 public:
  explicit Service(ServeOptions options);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Binds the socket and serves until request_stop(). Returns after a
  /// clean shutdown (store closed, socket unlinked). Throws when the
  /// socket or store cannot be opened at all.
  void run();

  /// Async-signal-safe shutdown trigger: one self-pipe write. The
  /// daemon installs this as its SIGTERM/SIGINT action.
  void request_stop() noexcept { stop_pipe_.signal(); }

  /// Blocks until run() has bound the socket and accepts connections
  /// (or has already finished). For tests that race a client thread.
  void wait_ready();

 private:
  void serve_connection(UnixStream stream);
  void handle_request(UnixStream& stream, const std::string& line);

  ServeOptions options_;
  WakePipe stop_pipe_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<store::ResultStore> store_;

  std::mutex mutex_;
  std::condition_variable ready_;
  bool bound_ = false;
  bool finished_ = false;
  std::vector<std::thread> connections_;
};

/// The `hvc_explore serve` entry point: installs SIGTERM/SIGINT
/// handlers that request_stop() the service, runs it, and returns a
/// process exit code (0 on clean shutdown).
int run_serve(const ServeOptions& options);

}  // namespace hvc::explore
