// run_sweep(): the one-call façade over the layered sweep engine.
//
// The engine is four composable layers (each with its own header):
//   planner   PointSource   pulls points lazily in the documented order
//                           (point_source.hpp);
//   scheduler/
//   executor  Executor      thread pool + plan memo + warm/cold routing +
//                           in-order reorder buffer (executor.hpp);
//   sink      ResultSink    where finished rows go — collect, CSV, JSON,
//                           store commit, tee (sink.hpp);
//   service   serve daemon  long-running Executor shared by socket
//                           clients (service.hpp).
// run_sweep() is the thin composition GridPointSource -> Executor ->
// CollectSink (+ StoreCommitSink with a store) that every pre-existing
// caller keeps using unchanged.
//
// Determinism guarantee: for a fixed spec, run_sweep() produces
// byte-identical CSV/JSON output for ANY thread count. Three mechanisms
// enforce this (details in executor.hpp):
//   1. Points are identified by their index in the documented expansion
//      order, and every stochastic input is derived from that index with
//      the counter-based Rng::stream / Rng::mix64 — never from a stream
//      shared across points.
//   2. Cell plans (the expensive Fig. 2 sizing runs) are keyed by their
//      inputs and computed once per unique key; the sizing loop itself is
//      deterministic and analytic.
//   3. Rows are formatted with fixed locale-free printf formats and
//      emitted in point order, not completion order.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hvc/common/json.hpp"
#include "hvc/explore/spec.hpp"

namespace hvc::store {
class ResultStore;
}

namespace hvc::explore {

struct ExecOptions;

/// The finished sweep: one formatted row per point, in point order.
struct SweepResult {
  std::string name;
  SweepKind kind = SweepKind::kSimulation;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  /// Memoization outcome when a result store was attached (0/0 without
  /// one): points answered from the store vs. points simulated.
  std::size_t warm_points = 0;
  std::size_t cold_points = 0;

  [[nodiscard]] std::size_t points() const noexcept { return rows.size(); }
  /// Index of a column by name; throws ConfigError when absent.
  [[nodiscard]] std::size_t column(const std::string& name) const;

  /// Header + rows, RFC-4180 quoting, '\n' newlines.
  [[nodiscard]] std::string to_csv() const;
  /// {"name", "kind", "columns", "rows"} with rows as string arrays.
  [[nodiscard]] Json to_json() const;
};

/// Runs every point of the sweep across `threads` workers (1 = inline on
/// the calling thread). Throws ConfigError/PreconditionError on bad specs;
/// any point failure aborts the sweep with that point's exception.
///
/// With a non-null `store`, every point is first looked up by its
/// canonical key (see hvc/explore/result_store.hpp): warm points are
/// answered from the store byte-identically to recomputation, cold points
/// are simulated and committed as they complete — so a killed sweep
/// resumes from its last committed point, and only the cold points pay
/// for Fig. 2 sizing runs. The store must be writable; the caller closes
/// it (clearing the dirty flag) after the sweep.
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec,
                                    std::size_t threads,
                                    store::ResultStore* store = nullptr);

/// As above, with executor options (progress callback, window size).
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec,
                                    std::size_t threads,
                                    store::ResultStore* store,
                                    const ExecOptions& options);

}  // namespace hvc::explore
