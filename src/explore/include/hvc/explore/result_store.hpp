// Canonical result keys and row payloads: the glue between the sweep
// engine and the crash-safe store::ResultStore.
//
// A sweep point's key is a 128-bit Hash128 of everything that determines
// its row — the result schema (version + column names), the spec-level
// inputs (target yield, workload seed, scale, the point's derived system
// seed) and the point's axis values — and deliberately NOT its index in
// the sweep: the "point" column is positional metadata backfilled at
// read time, so an edited spec whose points shift indices still reuses
// every unchanged point (with a pinned "system_seed"; without one the
// per-point derived seed folds the index in, which is correct, because
// the fault maps genuinely differ).
//
// Trace-ref workloads ("trace:<path>") are keyed by the path string: the
// store cannot see into the file, so re-recording a trace under the same
// path must be paired with a fresh store (or different path).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hvc/explore/spec.hpp"
#include "hvc/store/store.hpp"

namespace hvc::explore {

/// Version of the row schema *semantics*. The column list is hashed into
/// every key already; bump this when a column keeps its name but changes
/// meaning, so stale stores miss instead of serving wrong rows.
inline constexpr std::uint64_t kResultSchemaVersion = 1;

/// The app_tag stamped into .hvcs headers by hvc_explore, so a result
/// store is never confused with some other ResultStore user's file.
[[nodiscard]] std::uint64_t result_store_app_tag() noexcept;

/// The canonical key of one sweep point (see the file comment for what
/// it covers). `columns` is the sweep's column list, index column first.
[[nodiscard]] store::Key result_key(const SweepSpec& spec,
                                    const SweepPoint& point,
                                    const std::vector<std::string>& columns);

/// Row payload codec: every cell EXCEPT the leading "point" index cell,
/// length-framed. decode_row throws ConfigError on malformed payloads.
[[nodiscard]] std::vector<std::uint8_t> encode_row(
    const std::vector<std::string>& cells);
[[nodiscard]] std::vector<std::string> decode_row(
    const std::uint8_t* data, std::size_t bytes);

/// Opens (or creates) a result store for hvc_explore with the right
/// app_tag. `resume` permits recovery of a store whose writer died —
/// without it a dirty store is an error telling the user to pass
/// --resume.
[[nodiscard]] std::unique_ptr<store::ResultStore> open_result_store(
    const std::string& path, bool resume);

}  // namespace hvc::explore
