// Sink layer of the sweep engine: where finished rows go.
//
// The executor pushes each completed row exactly once, in source order
// (seq = 0, 1, 2, ... regardless of which worker finished first), with
// the point it came from and whether it was answered warm from the
// result store. Sinks never see out-of-order or concurrent calls — the
// executor serializes emission — so implementations need no locking.
//
// Composition replaces the old engine's inline formatting: run_sweep is
// CollectSink (build a SweepResult), the CLI streams CsvSink/JsonSink,
// a stored sweep tees a StoreCommitSink alongside, and the serve daemon
// plugs in its own per-client socket sink. TeeSink fans one row stream
// out to any number of them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hvc/explore/spec.hpp"

namespace hvc::store {
class ResultStore;
}

namespace hvc::explore {

struct SweepResult;

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Called once, before any row.
  virtual void begin(const SweepSpec& spec,
                     const std::vector<std::string>& columns) {
    (void)spec;
    (void)columns;
  }

  /// One finished row, in source order. `cells` includes the leading
  /// positional "point" cell; `warm` marks rows answered from the store.
  virtual void row(std::size_t seq, const SweepPoint& point,
                   const std::vector<std::string>& cells, bool warm) = 0;

  /// Called once after the last row of a sweep that ran to completion
  /// (never after an aborted or failed run).
  virtual void end() {}
};

/// Streams RFC-4180 CSV into a string: header on begin(), one line per
/// row through the shared append_csv_line formatter — byte-identical to
/// SweepResult::to_csv() of the same rows.
class CsvSink final : public ResultSink {
 public:
  explicit CsvSink(std::string* out);

  void begin(const SweepSpec& spec,
             const std::vector<std::string>& columns) override;
  void row(std::size_t seq, const SweepPoint& point,
           const std::vector<std::string>& cells, bool warm) override;

 private:
  std::string* out_;
};

/// Accumulates rows and materializes the {"name","kind","columns","rows"}
/// document on end() — byte-identical to SweepResult::to_json().dump().
class JsonSink final : public ResultSink {
 public:
  explicit JsonSink(Json* out);

  void begin(const SweepSpec& spec,
             const std::vector<std::string>& columns) override;
  void row(std::size_t seq, const SweepPoint& point,
           const std::vector<std::string>& cells, bool warm) override;
  void end() override;

 private:
  Json* out_;
  std::string name_;
  SweepKind kind_ = SweepKind::kSimulation;
  Json::Array columns_;
  Json::Array rows_;
};

/// Commits cold rows to a result store as their turn in the emission
/// order comes up (warm rows came from the store — nothing to write).
/// Keys are the canonical result_key of (spec, point, columns); the
/// store's write-once discipline makes racing writers harmless.
class StoreCommitSink final : public ResultSink {
 public:
  StoreCommitSink(store::ResultStore* store, const SweepSpec& spec);

  void begin(const SweepSpec& spec,
             const std::vector<std::string>& columns) override;
  void row(std::size_t seq, const SweepPoint& point,
           const std::vector<std::string>& cells, bool warm) override;

  [[nodiscard]] std::size_t committed() const noexcept { return committed_; }

 private:
  store::ResultStore* store_;
  SweepSpec spec_;
  std::vector<std::string> columns_;
  std::size_t committed_ = 0;
};

/// Fans every call out to each attached sink, in attachment order.
class TeeSink final : public ResultSink {
 public:
  TeeSink() = default;
  explicit TeeSink(std::vector<ResultSink*> sinks);

  /// Attaches another sink (ignored when null, so optional sinks
  /// compose without branching at the call site).
  void add(ResultSink* sink);

  void begin(const SweepSpec& spec,
             const std::vector<std::string>& columns) override;
  void row(std::size_t seq, const SweepPoint& point,
           const std::vector<std::string>& cells, bool warm) override;
  void end() override;

 private:
  std::vector<ResultSink*> sinks_;
};

/// Builds a SweepResult in place (rows indexed by seq, warm/cold counts
/// tallied) — the sink behind run_sweep's unchanged return value.
class CollectSink final : public ResultSink {
 public:
  explicit CollectSink(SweepResult* result);

  void begin(const SweepSpec& spec,
             const std::vector<std::string>& columns) override;
  void row(std::size_t seq, const SweepPoint& point,
           const std::vector<std::string>& cells, bool warm) override;

 private:
  SweepResult* result_;
};

}  // namespace hvc::explore
