// Planner layer of the sweep engine: a pull interface over sweep points.
//
// A PointSource produces fully-resolved SweepPoints on demand instead of
// materializing a whole design space up front. The executor pulls a batch
// at a time, so a 10M-point grid spec never allocates 10M points — the
// source holds an odometer, not a vector — and non-grid producers (an
// adaptive searcher narrowing in on a Pareto front, a socket feeding
// points from a remote planner) drop into the same seam.
//
// Contract:
//  * next_batch() appends up to `max_points` points and returns how many
//    it appended; 0 means the source is exhausted (== done()).
//  * The order points come out of the source is the order rows go into
//    the sinks — for GridPointSource that is exactly the documented
//    expand_points() order, so point indices (and therefore every
//    per-point RNG stream) are unchanged by the lazy plan.
//  * estimated_remaining() is exact for grid/list sources; adaptive
//    sources may estimate (it feeds --dry-run and progress totals, never
//    correctness).
#pragma once

#include <cstddef>
#include <vector>

#include "hvc/explore/spec.hpp"

namespace hvc::explore {

class PointSource {
 public:
  virtual ~PointSource() = default;

  /// Appends up to `max_points` points to `out` (not cleared); returns
  /// the number appended. Returns 0 iff the source is exhausted.
  virtual std::size_t next_batch(std::size_t max_points,
                                 std::vector<SweepPoint>& out) = 0;

  /// Points not yet produced. Exact for grid/list sources.
  [[nodiscard]] virtual std::size_t estimated_remaining() const = 0;

  [[nodiscard]] virtual bool done() const = 0;
};

/// The cartesian-grid planner: enumerates a SweepSpec's points lazily in
/// the documented nested-loop order. Bit-for-bit compatible with
/// expand_points() — same points, same indices (tests/test_explore_layers
/// pins this) — while holding O(axes) state however large the grid is.
class GridPointSource final : public PointSource {
 public:
  explicit GridPointSource(const SweepSpec& spec);

  std::size_t next_batch(std::size_t max_points,
                         std::vector<SweepPoint>& out) override;
  [[nodiscard]] std::size_t estimated_remaining() const override {
    return total_ - produced_;
  }
  [[nodiscard]] bool done() const override { return produced_ == total_; }

 private:
  [[nodiscard]] SweepPoint current() const;
  void advance();

  SweepSpec spec_;
  // Normalized axis values (methodology sweeps collapse the degenerate
  // axes to one entry each, exactly as expand_points does).
  std::vector<bool> designs_;
  std::vector<std::string> l2_designs_;
  std::vector<double> l2_sizes_;
  std::vector<std::size_t> cores_;
  std::vector<power::Mode> modes_;
  std::vector<std::string> workloads_;  ///< plain names or per-core mixes
  std::vector<double> scrubs_;
  bool mixes_ = false;

  /// Odometer over (scenario, design, l2, l2_size, cores, mode, hp_vcc,
  /// ule_vcc, workload, scrub) — innermost last. The l2_size digit's base
  /// depends on the current l2 design ("none" collapses the size axis).
  std::size_t cursor_[10] = {0};
  std::size_t produced_ = 0;
  std::size_t total_ = 0;
};

/// A source over an explicit list of points, served in list order with
/// their given indices preserved (the index is the point's seed
/// identity, so a subset of a grid replays the exact same rows). Used by
/// tests and by callers that already know which points they want.
class ListPointSource final : public PointSource {
 public:
  explicit ListPointSource(std::vector<SweepPoint> points)
      : points_(std::move(points)) {}

  std::size_t next_batch(std::size_t max_points,
                         std::vector<SweepPoint>& out) override;
  [[nodiscard]] std::size_t estimated_remaining() const override {
    return points_.size() - next_;
  }
  [[nodiscard]] bool done() const override {
    return next_ == points_.size();
  }

 private:
  std::vector<SweepPoint> points_;
  std::size_t next_ = 0;
};

}  // namespace hvc::explore
