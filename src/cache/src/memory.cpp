#include "hvc/cache/memory.hpp"

#include <algorithm>

namespace hvc::cache {

const MainMemory::Page* MainMemory::find_page(std::uint64_t page_index) const {
  const auto it = pages_.find(page_index);
  return it == pages_.end() ? nullptr : &it->second;
}

MainMemory::Page& MainMemory::get_page(std::uint64_t page_index) {
  auto& page = pages_[page_index];
  if (page.empty()) {
    page.assign(kWordsPerPage, 0);
  }
  return page;
}

std::uint32_t MainMemory::read_word(std::uint64_t addr) const {
  const std::uint64_t word_addr = addr / 4;
  const Page* page = find_page(word_addr / kWordsPerPage);
  if (page == nullptr) {
    return 0;
  }
  return (*page)[word_addr % kWordsPerPage];
}

void MainMemory::write_word(std::uint64_t addr, std::uint32_t value) {
  const std::uint64_t word_addr = addr / 4;
  get_page(word_addr / kWordsPerPage)[word_addr % kWordsPerPage] = value;
}

void MainMemory::read_block_into(std::uint64_t addr, std::uint32_t* out,
                                 std::size_t count) const {
  std::uint64_t word_addr = addr / 4;
  while (count > 0) {
    const std::size_t offset =
        static_cast<std::size_t>(word_addr % kWordsPerPage);
    const std::size_t chunk =
        std::min(count, static_cast<std::size_t>(kWordsPerPage) - offset);
    const Page* page = find_page(word_addr / kWordsPerPage);
    if (page != nullptr) {
      std::copy_n(page->data() + offset, chunk, out);
    } else {
      std::fill_n(out, chunk, 0);
    }
    out += chunk;
    word_addr += chunk;
    count -= chunk;
  }
}

std::vector<std::uint32_t> MainMemory::read_block(std::uint64_t addr,
                                                  std::size_t count) const {
  std::vector<std::uint32_t> out(count);
  read_block_into(addr, out.data(), count);
  return out;
}

void MainMemory::write_block(std::uint64_t addr, const std::uint32_t* words,
                             std::size_t count) {
  std::uint64_t word_addr = addr / 4;
  while (count > 0) {
    const std::size_t offset =
        static_cast<std::size_t>(word_addr % kWordsPerPage);
    const std::size_t chunk =
        std::min(count, static_cast<std::size_t>(kWordsPerPage) - offset);
    Page& page = get_page(word_addr / kWordsPerPage);
    std::copy_n(words, chunk, page.data() + offset);
    words += chunk;
    word_addr += chunk;
    count -= chunk;
  }
}

void MainMemory::write_block(std::uint64_t addr,
                             const std::vector<std::uint32_t>& words) {
  write_block(addr, words.data(), words.size());
}

}  // namespace hvc::cache
