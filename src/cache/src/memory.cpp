#include "hvc/cache/memory.hpp"

namespace hvc::cache {

const MainMemory::Page* MainMemory::find_page(std::uint64_t page_index) const {
  const auto it = pages_.find(page_index);
  return it == pages_.end() ? nullptr : &it->second;
}

MainMemory::Page& MainMemory::get_page(std::uint64_t page_index) {
  auto& page = pages_[page_index];
  if (page.empty()) {
    page.assign(kWordsPerPage, 0);
  }
  return page;
}

std::uint32_t MainMemory::read_word(std::uint64_t addr) const {
  const std::uint64_t word_addr = addr / 4;
  const Page* page = find_page(word_addr / kWordsPerPage);
  if (page == nullptr) {
    return 0;
  }
  return (*page)[word_addr % kWordsPerPage];
}

void MainMemory::write_word(std::uint64_t addr, std::uint32_t value) {
  const std::uint64_t word_addr = addr / 4;
  get_page(word_addr / kWordsPerPage)[word_addr % kWordsPerPage] = value;
}

std::vector<std::uint32_t> MainMemory::read_block(std::uint64_t addr,
                                                  std::size_t count) const {
  std::vector<std::uint32_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(read_word(addr + 4 * i));
  }
  return out;
}

void MainMemory::write_block(std::uint64_t addr,
                             const std::vector<std::uint32_t>& words) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    write_word(addr + 4 * i, words[i]);
  }
}

}  // namespace hvc::cache
