#include "hvc/cache/memory_level.hpp"

#include <utility>

#include "hvc/cache/memory.hpp"

namespace hvc::cache {

MainMemoryLevel::MainMemoryLevel(MainMemory& memory,
                                 std::size_t latency_cycles, std::string name)
    : memory_(memory),
      latency_cycles_(latency_cycles),
      name_(std::move(name)) {}

std::size_t MainMemoryLevel::fetch_block(std::uint64_t addr,
                                         std::uint32_t* out,
                                         std::size_t count) {
  memory_.read_block_into(addr, out, count);
  ++fetches_;
  return latency_cycles_;
}

std::size_t MainMemoryLevel::writeback_block(std::uint64_t addr,
                                             const std::uint32_t* words,
                                             std::size_t count) {
  memory_.write_block(addr, words, count);
  ++writebacks_;
  return latency_cycles_;
}

std::uint32_t MainMemoryLevel::load_word(std::uint64_t addr) {
  ++word_reads_;
  return memory_.read_word(addr);
}

std::size_t MainMemoryLevel::store_word(std::uint64_t addr,
                                        std::uint32_t value) {
  memory_.write_word(addr, value);
  ++word_writes_;
  return latency_cycles_;
}

LevelStats MainMemoryLevel::level_stats() const {
  LevelStats out;
  out.name = name_;
  out.accesses = fetches_ + writebacks_ + word_reads_ + word_writes_;
  out.hits = out.accesses;  // memory always hits
  out.fills = fetches_;
  out.writebacks = writebacks_;
  return out;
}

void MainMemoryLevel::clear_level_counters() {
  fetches_ = 0;
  writebacks_ = 0;
  word_reads_ = 0;
  word_writes_ = 0;
}

}  // namespace hvc::cache
