#include "hvc/cache/memory_level.hpp"

#include <utility>

#include "hvc/cache/memory.hpp"

namespace hvc::cache {

std::string to_string(AccessType type) {
  switch (type) {
    case AccessType::kLoad: return "load";
    case AccessType::kStore: return "store";
    case AccessType::kIfetch: return "ifetch";
  }
  return "?";
}

AccessResult MemoryLevel::access(std::uint64_t addr, AccessType type,
                                 std::uint32_t store_value) {
  // Default: synthesize the access from the word virtuals. Levels without
  // a tag datapath service every request, so it reports a hit; loads ride
  // the word-fallback path, which per the latency contract has no latency
  // return of its own (levels with a uniform access latency override).
  AccessResult result;
  result.hit = true;
  if (type == AccessType::kStore) {
    result.latency_cycles = store_word(addr, store_value);
  } else {
    result.data = load_word(addr);
  }
  return result;
}

void MemoryLevel::access_batch(AccessBatch& batch) {
  for (BatchOp& op : batch.ops) {
    const AccessResult result = op.type == AccessType::kStore
                                    ? access(op.addr, op.type, op.store_value)
                                    : access(op.addr, op.type);
    op.hit = result.hit;
    op.latency_cycles = static_cast<std::uint32_t>(result.latency_cycles);
  }
}

MainMemoryLevel::MainMemoryLevel(MainMemory& memory,
                                 std::size_t latency_cycles, std::string name)
    : memory_(memory),
      latency_cycles_(latency_cycles),
      name_(std::move(name)) {}

AccessResult MainMemoryLevel::access(std::uint64_t addr, AccessType type,
                                     std::uint32_t store_value) {
  AccessResult result;
  result.hit = true;  // memory always hits
  result.latency_cycles = latency_cycles_;
  if (type == AccessType::kStore) {
    memory_.write_word(addr, store_value);
    ++word_writes_;
  } else {
    result.data = memory_.read_word(addr);
    ++word_reads_;
  }
  return result;
}

std::size_t MainMemoryLevel::fetch_block(std::uint64_t addr,
                                         std::uint32_t* out,
                                         std::size_t count) {
  memory_.read_block_into(addr, out, count);
  ++fetches_;
  return latency_cycles_;
}

std::size_t MainMemoryLevel::writeback_block(std::uint64_t addr,
                                             const std::uint32_t* words,
                                             std::size_t count) {
  memory_.write_block(addr, words, count);
  ++writebacks_;
  return latency_cycles_;
}

std::uint32_t MainMemoryLevel::load_word(std::uint64_t addr) {
  ++word_reads_;
  return memory_.read_word(addr);
}

std::size_t MainMemoryLevel::store_word(std::uint64_t addr,
                                        std::uint32_t value) {
  memory_.write_word(addr, value);
  ++word_writes_;
  return latency_cycles_;
}

LevelStats MainMemoryLevel::level_stats() const {
  LevelStats out;
  out.name = name_;
  out.accesses = fetches_ + writebacks_ + word_reads_ + word_writes_;
  out.hits = out.accesses;  // memory always hits
  out.fills = fetches_;
  out.writebacks = writebacks_;
  return out;
}

void MainMemoryLevel::clear_level_counters() {
  fetches_ = 0;
  writebacks_ = 0;
  word_reads_ = 0;
  word_writes_ = 0;
}

}  // namespace hvc::cache
