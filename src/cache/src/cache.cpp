#include "hvc/cache/cache.hpp"

#include <algorithm>
#include <bit>

#include "hvc/common/error.hpp"

namespace hvc::cache {

namespace {
[[nodiscard]] std::unique_ptr<edc::Codec> codec_or_null(
    edc::Protection protection, std::size_t bits) {
  if (protection == edc::Protection::kNone) {
    return nullptr;
  }
  return edc::make_codec(protection, bits);
}
}  // namespace

Cache::Cache(CacheConfig config, MemoryLevel& next_level, Rng& rng)
    : config_(std::move(config)),
      next_level_(&next_level),
      rng_(rng.fork(0xCACE)) {
  init();
}

void Cache::init() {
  config_.org.validate();
  expects(config_.ways.size() == config_.org.ways,
          "one WayPlan per way required");
  expects(config_.way_hard_pf.empty() ||
              config_.way_hard_pf.size() == config_.org.ways,
          "way_hard_pf must be empty or one entry per way");

  hp_model_ = std::make_unique<power::CacheEnergyModel>(
      config_.org, config_.ways, config_.hp);
  ule_model_ = std::make_unique<power::CacheEnergyModel>(
      config_.org, config_.ways, config_.ule);

  const std::size_t sets = config_.org.sets();
  const std::size_t wpl = config_.org.words_per_line();
  policy_ = make_policy(config_.replacement, sets, config_.org.ways,
                        config_.fault_seed ^ 0x9E37);

  Rng fault_rng(config_.fault_seed);
  ways_.resize(config_.org.ways);
  stored_data_cw_bits_.resize(config_.org.ways);
  stored_tag_cw_bits_.resize(config_.org.ways);
  for (std::size_t w = 0; w < config_.org.ways; ++w) {
    const power::WayPlan& plan = config_.ways[w];
    Way& way = ways_[w];
    way.data_codec_hp = codec_or_null(plan.hp_protection, config_.org.word_bits);
    way.data_codec_ule =
        codec_or_null(plan.ule_protection, config_.org.word_bits);
    way.tag_codec_hp = codec_or_null(plan.hp_protection, config_.org.tag_bits);
    way.tag_codec_ule = codec_or_null(plan.ule_protection, config_.org.tag_bits);

    const std::size_t stored_check =
        edc::check_bits_for(plan.stored_protection());
    stored_data_cw_bits_[w] = config_.org.word_bits + stored_check;
    stored_tag_cw_bits_[w] = config_.org.tag_bits + stored_check;
    expects(stored_data_cw_bits_[w] <= 64 && stored_tag_cw_bits_[w] <= 64,
            "packed line storage requires codewords of <= 64 bits");

    way.lines.resize(sets);
    way.data_words.assign(sets * wpl, 0);
    way.tag_words.assign(sets, 0);

    const double pf =
        config_.way_hard_pf.empty() ? 0.0 : config_.way_hard_pf[w];
    const std::size_t data_bits = sets * wpl * stored_data_cw_bits_[w];
    const std::size_t tag_bits = sets * stored_tag_cw_bits_[w];
    way.data_faults = std::make_unique<FaultMap>(data_bits, pf, fault_rng);
    way.tag_faults = std::make_unique<FaultMap>(tag_bits, pf, fault_rng);
  }
  line_buf_.assign(wpl, 0);
  line_word_ok_.assign(wpl, 1);
  // Probe rows padded to the 4-lane vector width: the padding lanes stay
  // kProbeInvalid forever, so the SIMD probe never reads past a row and
  // never matches a phantom way.
  probe_stride_ = (config_.org.ways + 3) / 4 * 4;
  probe_keys_.assign(sets * probe_stride_, kProbeInvalid);
}

bool Cache::way_active(std::size_t w) const noexcept {
  return mode_ == power::Mode::kHp || config_.ways[w].ule_way;
}

const edc::Codec* Cache::data_codec(std::size_t w) const noexcept {
  return mode_ == power::Mode::kHp ? ways_[w].data_codec_hp.get()
                                   : ways_[w].data_codec_ule.get();
}

const edc::Codec* Cache::tag_codec(std::size_t w) const noexcept {
  return mode_ == power::Mode::kHp ? ways_[w].tag_codec_hp.get()
                                   : ways_[w].tag_codec_ule.get();
}

std::size_t Cache::set_of(std::uint64_t line_addr) const noexcept {
  return static_cast<std::size_t>(line_addr % config_.org.sets());
}

std::uint64_t Cache::tag_of(std::uint64_t line_addr) const noexcept {
  const std::uint64_t tag = line_addr / config_.org.sets();
  return tag & ((1ULL << config_.org.tag_bits) - 1);
}

std::size_t Cache::data_bit_base(std::size_t w, std::size_t set,
                                 std::size_t word) const noexcept {
  return (set * config_.org.words_per_line() + word) *
         stored_data_cw_bits_[w];
}

std::size_t Cache::tag_bit_base(std::size_t w, std::size_t set) const noexcept {
  return set * stored_tag_cw_bits_[w];
}

const power::CacheEnergyModel& Cache::energy_model() const noexcept {
  return mode_ == power::Mode::kHp ? *hp_model_ : *ule_model_;
}

double Cache::total_area_um2() const noexcept {
  return hp_model_->total_area_um2();
}

double Cache::leakage_power() const noexcept {
  return energy_model().leakage_power();
}

double Cache::edc_leakage_power() const noexcept {
  return energy_model().edc_leakage_power();
}

std::size_t Cache::hit_latency() const noexcept {
  return config_.hit_latency_cycles +
         (energy_model().edc_active() ? config_.edc_latency_cycles : 0);
}

bool Cache::line_valid(std::size_t way, std::size_t set) const {
  expects(way < ways_.size(), "way out of range");
  expects(set < config_.org.sets(), "set out of range");
  return ways_[way].lines[set].valid;
}

Breakdown Cache::energy() const {
  Breakdown out;
  out.add("dynamic", energy_j_[kEnergyDynamic]);
  out.add("edc", energy_j_[kEnergyEdc]);
  return out;
}

std::size_t Cache::find_way(std::uint64_t line_addr, std::size_t set,
                            AccessResult& result) {
  const std::uint64_t tag = tag_of(line_addr);
  for (std::size_t w = 0; w < config_.org.ways; ++w) {
    if (!way_active(w)) {
      continue;
    }
    const auto stored_tag = read_tag(w, set, result);
    if (stored_tag && *stored_tag == tag &&
        ways_[w].lines[set].line_addr == line_addr) {
      return w;
    }
  }
  return config_.org.ways;
}

std::optional<std::uint64_t> Cache::read_tag(std::size_t w, std::size_t set,
                                             AccessResult& result) {
  const Line& line = ways_[w].lines[set];
  if (!line.valid) {
    return std::nullopt;
  }
  const edc::Codec* codec = tag_codec(w);
  const std::size_t active_bits =
      codec ? codec->codeword_bits() : config_.org.tag_bits;
  std::uint64_t raw = ways_[w].tag_words[set];
  // Hard faults manifest at near-threshold voltage only (HP-way cells are
  // sized for negligible Pf at high Vcc).
  if (mode_ == power::Mode::kUle) {
    raw = ways_[w].tag_faults->apply_word(raw, tag_bit_base(w, set),
                                          stored_tag_cw_bits_[w]);
  }
  raw &= low_mask(active_bits);
  if (codec == nullptr) {
    return raw;
  }
  const edc::WordDecodeResult decoded = codec->decode_word(raw);
  if (decoded.status == edc::DecodeStatus::kDetected) {
    ++stats_.edc_detected;
    result.detected_uncorrectable = true;
    return std::nullopt;
  }
  if (decoded.status == edc::DecodeStatus::kCorrected) {
    stats_.edc_corrections += decoded.corrected_bits;
    result.corrected_bits += decoded.corrected_bits;
  }
  return decoded.data;
}

std::optional<std::uint32_t> Cache::read_data_word(std::size_t w,
                                                   std::size_t set,
                                                   std::size_t word,
                                                   AccessResult& result) {
  const edc::Codec* codec = data_codec(w);
  const std::size_t active_bits =
      codec ? codec->codeword_bits() : config_.org.word_bits;
  std::uint64_t raw = ways_[w].data_words[data_word_index(set, word)];
  if (mode_ == power::Mode::kUle) {
    raw = ways_[w].data_faults->apply_word(raw, data_bit_base(w, set, word),
                                           stored_data_cw_bits_[w]);
  }
  raw &= low_mask(active_bits);
  if (codec == nullptr) {
    return static_cast<std::uint32_t>(raw);
  }
  const edc::WordDecodeResult decoded = codec->decode_word(raw);
  if (decoded.status == edc::DecodeStatus::kDetected) {
    ++stats_.edc_detected;
    result.detected_uncorrectable = true;
    return std::nullopt;
  }
  if (decoded.status == edc::DecodeStatus::kCorrected) {
    stats_.edc_corrections += decoded.corrected_bits;
    result.corrected_bits += decoded.corrected_bits;
  }
  return static_cast<std::uint32_t>(decoded.data);
}

void Cache::write_data_word(std::size_t w, std::size_t set, std::size_t word,
                            std::uint32_t value) {
  const edc::Codec* codec = data_codec(w);
  const std::uint64_t data = value & low_mask(config_.org.word_bits);
  ways_[w].data_words[data_word_index(set, word)] =
      codec ? codec->encode_word(data) : data;
}

void Cache::write_tag(std::size_t w, std::size_t set, std::uint64_t tag) {
  const edc::Codec* codec = tag_codec(w);
  const std::uint64_t data = tag & low_mask(config_.org.tag_bits);
  ways_[w].tag_words[set] = codec ? codec->encode_word(data) : data;
}

void Cache::writeback_line(std::size_t w, std::size_t set) {
  Line& line = ways_[w].lines[set];
  const std::size_t wpl = config_.org.words_per_line();
  const auto& model = energy_model();
  charge(kEnergyDynamic, model.line_read_energy(w));
  charge(kEnergyEdc, static_cast<double>(wpl) * model.edc_decode_energy(w));
  AccessResult scratch;
  const std::uint64_t base_addr = line.line_addr * config_.org.line_bytes;
  bool all_valid = true;
  for (std::size_t word = 0; word < wpl; ++word) {
    const auto value = read_data_word(w, set, word, scratch);
    // An uncorrectable word during writeback falls back to the (stale)
    // next-level copy; counted via stats_.edc_detected inside
    // read_data_word.
    line_word_ok_[word] = value.has_value();
    line_buf_[word] = value.value_or(0);
    all_valid = all_valid && value.has_value();
  }
  if (all_valid) {
    (void)next_level_->writeback_block(base_addr, line_buf_.data(), wpl);
  } else {
    for (std::size_t word = 0; word < wpl; ++word) {
      if (line_word_ok_[word]) {
        (void)next_level_->store_word(base_addr + 4 * word, line_buf_[word]);
      }
    }
  }
  line.dirty = false;
  ++stats_.writebacks;
}

std::size_t Cache::fill_line(std::uint64_t line_addr, std::size_t set,
                             AccessResult& result,
                             const std::uint32_t* incoming) {
  // Victim selection among active ways: invalid first, then policy.
  std::size_t victim = config_.org.ways;
  std::vector<std::size_t> candidates;
  for (std::size_t w = 0; w < config_.org.ways; ++w) {
    if (!way_active(w)) {
      continue;
    }
    if (!ways_[w].lines[set].valid) {
      victim = w;
      break;
    }
    candidates.push_back(w);
  }
  if (victim == config_.org.ways) {
    ensure(!candidates.empty(), "no active way available for fill");
    victim = policy_->victim(set, candidates);
  }

  Line& line = ways_[victim].lines[set];
  if (line.valid && line.dirty &&
      config_.write_policy == WritePolicy::kWriteBackAllocate) {
    writeback_line(victim, set);
    result.writeback = true;
  }

  const std::size_t wpl = config_.org.words_per_line();
  const std::uint64_t base_addr = line_addr * config_.org.line_bytes;
  const std::uint32_t* words = incoming;
  if (words == nullptr) {
    // The next level reports this request's latency (its hit latency, or
    // its own miss chain) — the terminal level reports the flat memory
    // latency, reproducing the original two-level timing exactly.
    result.latency_cycles +=
        next_level_->fetch_block(base_addr, line_buf_.data(), wpl);
    words = line_buf_.data();
  }
  line.valid = true;
  line.dirty = false;
  line.line_addr = line_addr;
  set_probe_key(victim, set, line_addr);
  write_tag(victim, set, tag_of(line_addr));
  for (std::size_t word = 0; word < wpl; ++word) {
    write_data_word(victim, set, word, words[word]);
  }

  const auto& model = energy_model();
  charge(kEnergyDynamic, model.line_fill_energy(victim));
  charge(kEnergyEdc, static_cast<double>(config_.org.words_per_line() + 1) *
                   model.edc_encode_energy(victim));
  ++stats_.fills;
  policy_->touch(set, victim);
  return victim;
}

AccessResult Cache::access(std::uint64_t addr, AccessType type,
                           std::uint32_t store_value) {
  AccessResult result;
  ++stats_.accesses;
  switch (type) {
    case AccessType::kLoad: ++stats_.loads; break;
    case AccessType::kStore: ++stats_.stores; break;
    case AccessType::kIfetch: ++stats_.ifetches; break;
  }

  const std::uint64_t line_addr = addr / config_.org.line_bytes;
  const std::size_t set = set_of(line_addr);
  const std::size_t word =
      static_cast<std::size_t>(addr % config_.org.line_bytes) / 4;

  const auto& model = energy_model();
  charge_lookup();
  result.latency_cycles = hit_latency();

  const std::size_t hit_way = find_way(line_addr, set, result);
  if (hit_way != config_.org.ways) {
    // --- hit ---
    result.hit = true;
    result.way = hit_way;
    ++stats_.hits;
    policy_->touch(set, hit_way);
    if (type == AccessType::kStore) {
      write_data_word(hit_way, set, word, store_value);
      charge(kEnergyDynamic, model.word_write_energy(hit_way));
      charge(kEnergyEdc, model.edc_encode_energy(hit_way));
      if (config_.write_policy == WritePolicy::kWriteThroughNoAllocate) {
        (void)next_level_->store_word(addr, store_value);
      } else {
        ways_[hit_way].lines[set].dirty = true;
      }
    } else {
      charge(kEnergyEdc, model.edc_decode_energy(hit_way));
      const auto value = read_data_word(hit_way, set, word, result);
      // Uncorrectable data: fall back to the next level (predictability
      // safety net; never taken with properly sized cells).
      result.data = value ? *value : next_level_->load_word(addr);
    }
    return result;
  }

  // --- miss ---
  ++stats_.misses;

  if (type == AccessType::kStore &&
      config_.write_policy == WritePolicy::kWriteThroughNoAllocate) {
    result.latency_cycles += next_level_->store_word(addr, store_value);
    return result;
  }

  const std::size_t filled = fill_line(line_addr, set, result);
  result.way = filled;
  if (type == AccessType::kStore) {
    write_data_word(filled, set, word, store_value);
    charge(kEnergyDynamic, model.word_write_energy(filled));
    charge(kEnergyEdc, model.edc_encode_energy(filled));
    ways_[filled].lines[set].dirty = true;
  } else {
    charge(kEnergyEdc, model.edc_decode_energy(filled));
    const auto value = read_data_word(filled, set, word, result);
    result.data = value ? *value : next_level_->load_word(addr);
  }
  return result;
}

// --- block-at-a-time fast path -------------------------------------
//
// The batch path may hoist loop-invariant work (geometry divisions,
// energy-model getters, codec/fault dispatch) but may NOT reorder or
// merge per-record side effects: energy accumulates in non-associative
// double adds, fault maps are stuck-at (value-dependent), and the next
// level is stateful — so the fast loop replays the scalar path's side
// effects op by op, in op order, and drops to the scalar access() for
// everything ordering-sensitive (misses, write-through passthroughs,
// sets whose stored tags touch stuck bits).

const Cache::BatchCtx& Cache::batch_ctx() {
  if (!batch_ctx_valid_) {
    rebuild_batch_ctx();
    batch_ctx_valid_ = true;
  }
  return batch_ctx_;
}

void Cache::rebuild_batch_ctx() {
  BatchCtx& ctx = batch_ctx_;
  const std::size_t sets = config_.org.sets();
  const std::size_t wpl = config_.org.words_per_line();
  const auto& model = energy_model();

  ctx.mode = mode_;
  ctx.ways = config_.org.ways;
  ctx.sets = sets;
  ctx.wpl = wpl;
  ctx.line_bytes = config_.org.line_bytes;
  // The shortcut probe needs power-of-two geometry for shift/mask address
  // decode; anything else (never built by the sweeps) runs scalar.
  ctx.fast = std::has_single_bit(ctx.line_bytes) &&
             std::has_single_bit(static_cast<std::uint64_t>(sets));
  if (ctx.fast) {
    ctx.line_shift =
        static_cast<unsigned>(std::countr_zero(ctx.line_bytes));
    ctx.set_mask = static_cast<std::uint64_t>(sets) - 1;
  }
  ctx.word_mask = low_mask(config_.org.word_bits);
  ctx.hit_latency = hit_latency();
  ctx.write_through =
      config_.write_policy == WritePolicy::kWriteThroughNoAllocate;
  ctx.ule = mode_ == power::Mode::kUle;
  ctx.lookup_dyn = model.lookup_energy();

  ctx.lookup_edc.clear();
  ctx.way.assign(ctx.ways, {});
  for (std::size_t w = 0; w < ctx.ways; ++w) {
    BatchCtx::WayCtx& wc = ctx.way[w];
    wc.active = way_active(w);
    if (wc.active && tag_codec(w) != nullptr) {
      ctx.lookup_edc.push_back(model.edc_decode_energy(w));
    }
    wc.lines = ways_[w].lines.data();
    wc.data_words = ways_[w].data_words.data();
    wc.data_codec = data_codec(w);
    wc.data_cw_bits = stored_data_cw_bits_[w];
    wc.word_write = model.word_write_energy(w);
    wc.edc_encode = model.edc_encode_energy(w);
    wc.edc_decode = model.edc_decode_energy(w);
  }
  ctx.lru = policy_->touch_seam();
  ctx.probe_keys = probe_keys_.data();
  ctx.probe_stride = probe_stride_;
  ctx.mru_way.assign(sets, 0);

  // Tags are stored as exact valid codewords (writes re-encode; soft
  // errors only ever hit data words), so the only thing that can perturb
  // a tag read is the ULE-mode stuck-at map. A set whose stored tag
  // region is fault-free across every active way therefore probes to
  // exactly the scalar find_way outcome with zero codec calls and zero
  // stats traffic; the rest take the scalar path.
  ctx.tag_clean.assign(sets, 1);
  if (ctx.ule) {
    for (std::size_t set = 0; set < sets; ++set) {
      for (std::size_t w = 0; w < ctx.ways; ++w) {
        if (!ctx.way[w].active) {
          continue;
        }
        if (ways_[w].tag_faults->any_stuck(tag_bit_base(w, set),
                                           stored_tag_cw_bits_[w])) {
          ctx.tag_clean[set] = 0;
          break;
        }
      }
    }
  }
}

void Cache::access_batched_fallback(std::uint64_t addr, AccessType type,
                                    std::uint32_t store_value, bool& hit,
                                    std::uint32_t& latency_cycles) {
  const AccessResult result = access(addr, type, store_value);
  hit = result.hit;
  latency_cycles = static_cast<std::uint32_t>(result.latency_cycles);
}

void Cache::batched_store_tail(std::uint64_t addr, std::uint32_t store_value,
                               std::size_t hit_way, std::size_t set,
                               std::size_t widx) {
  const BatchCtx& ctx = batch_ctx_;
  const BatchCtx::WayCtx& wc = ctx.way[hit_way];
  const std::uint64_t data = store_value & ctx.word_mask;
  wc.data_words[widx] =
      wc.data_codec ? wc.data_codec->encode_word(data) : data;
  energy_j_[kEnergyDynamic] += wc.word_write;
  energy_j_[kEnergyEdc] += wc.edc_encode;
  if (ctx.write_through) {
    (void)next_level_->store_word(addr, store_value);
  } else {
    ways_[hit_way].lines[set].dirty = true;
  }
}

void Cache::batched_load_coded(std::uint64_t addr, std::size_t hit_way,
                               std::size_t set, std::size_t word,
                               std::size_t widx) {
  const BatchCtx& ctx = batch_ctx_;
  const BatchCtx::WayCtx& wc = ctx.way[hit_way];
  std::uint64_t raw = wc.data_words[widx];
  if (ctx.ule) {
    raw = ways_[hit_way].data_faults->apply_word(
        raw, data_bit_base(hit_way, set, word), wc.data_cw_bits);
  }
  raw &= low_mask(wc.data_codec->codeword_bits());
  const edc::WordDecodeResult decoded = wc.data_codec->decode_word(raw);
  if (decoded.status == edc::DecodeStatus::kDetected) {
    ++stats_.edc_detected;
    // Uncorrectable data: the scalar path falls back to the next level.
    (void)next_level_->load_word(addr);
  } else if (decoded.status == edc::DecodeStatus::kCorrected) {
    stats_.edc_corrections += decoded.corrected_bits;
  }
}

void Cache::access_batch(AccessBatch& batch) {
  for (BatchOp& op : batch.ops) {
    access_batched(op.addr, op.type, op.store_value, op.hit,
                   op.latency_cycles);
  }
}

void Cache::charge_lookup() {
  const auto& model = energy_model();
  charge(kEnergyDynamic, model.lookup_energy());
  // Tag decode on every lookup of every active coded way.
  for (std::size_t w = 0; w < config_.org.ways; ++w) {
    if (way_active(w) && tag_codec(w) != nullptr) {
      charge(kEnergyEdc, model.edc_decode_energy(w));
    }
  }
}

void Cache::set_mode(power::Mode mode) {
  if (mode == mode_) {
    return;
  }
  const std::size_t wpl = config_.org.words_per_line();

  if (mode == power::Mode::kUle) {
    // HP -> ULE: drain HP ways (gated-Vdd loses their content).
    for (std::size_t w = 0; w < config_.org.ways; ++w) {
      if (config_.ways[w].ule_way) {
        continue;
      }
      for (std::size_t set = 0; set < config_.org.sets(); ++set) {
        Line& line = ways_[w].lines[set];
        if (line.valid && line.dirty &&
            config_.write_policy == WritePolicy::kWriteBackAllocate) {
          writeback_line(w, set);
          ++stats_.mode_switch_writebacks;
        }
        line.valid = false;
        line.dirty = false;
        set_probe_key(w, set, kProbeInvalid);
      }
    }
  }

  // Re-encode retained ULE-way lines for the protection of the new mode
  // (a scrub pass: read+decode with the old code, encode+write with the
  // new one). Uses the old mode's codecs before switching.
  for (std::size_t w = 0; w < config_.org.ways; ++w) {
    if (!config_.ways[w].ule_way) {
      continue;
    }
    if (config_.ways[w].hp_protection == config_.ways[w].ule_protection) {
      continue;  // same codeword layout in both modes
    }
    for (std::size_t set = 0; set < config_.org.sets(); ++set) {
      Line& line = ways_[w].lines[set];
      if (!line.valid) {
        continue;
      }
      AccessResult scratch;
      std::vector<std::uint32_t> words(wpl, 0);
      bool lost = false;
      for (std::size_t word = 0; word < wpl; ++word) {
        const auto value = read_data_word(w, set, word, scratch);
        if (!value) {
          lost = true;
          break;
        }
        words[word] = *value;
      }
      const auto old_tag = read_tag(w, set, scratch);
      if (lost || !old_tag) {
        line.valid = false;
        line.dirty = false;
        set_probe_key(w, set, kProbeInvalid);
        continue;
      }
      const power::Mode old_mode = mode_;
      mode_ = mode;  // encode with the new mode's codec
      write_tag(w, set, *old_tag);
      for (std::size_t word = 0; word < wpl; ++word) {
        write_data_word(w, set, word, words[word]);
      }
      mode_ = old_mode;
      // Scrub energy: one line read + one line fill at the new mode.
      charge(kEnergyDynamic, (mode == power::Mode::kHp ? *hp_model_ : *ule_model_)
                           .line_fill_energy(w));
    }
  }

  mode_ = mode;
  // The hoisted batch context caches mode-dependent energy handles, way
  // activity and the tag-clean map; rebuild it lazily on next use.
  batch_ctx_valid_ = false;
}

void Cache::enable_soft_errors(std::size_t way, double rate_per_bit) {
  expects(way < ways_.size(), "way out of range");
  const std::size_t bits = config_.org.sets() * config_.org.words_per_line() *
                           stored_data_cw_bits_[way];
  ways_[way].soft_process =
      std::make_unique<SoftErrorProcess>(bits, rate_per_bit);
}

void Cache::advance_time(double seconds) {
  if (seconds <= 0.0) {
    return;
  }
  for (std::size_t w = 0; w < config_.org.ways; ++w) {
    if (!way_active(w) || ways_[w].soft_process == nullptr) {
      continue;
    }
    const auto flips = ways_[w].soft_process->advance(seconds, rng_);
    for (const auto flip : flips) {
      const std::size_t cw = stored_data_cw_bits_[w];
      const std::size_t word_index = flip / cw;
      const std::size_t bit = flip % cw;
      if (word_index < ways_[w].data_words.size()) {
        ways_[w].data_words[word_index] ^= 1ULL << bit;
        ++stats_.soft_errors_injected;
      }
    }
  }
}

void Cache::inject_bit_flip(std::size_t way, std::size_t set,
                            std::size_t bit_in_line) {
  expects(way < ways_.size(), "way out of range");
  expects(set < config_.org.sets(), "set out of range");
  const std::size_t cw = stored_data_cw_bits_[way];
  const std::size_t word = bit_in_line / cw;
  const std::size_t bit = bit_in_line % cw;
  expects(word < config_.org.words_per_line(), "bit_in_line out of range");
  ways_[way].data_words[data_word_index(set, word)] ^= 1ULL << bit;
  ++stats_.soft_errors_injected;
}

Cache::ScrubReport Cache::scrub() {
  ScrubReport report;
  const std::size_t wpl = config_.org.words_per_line();
  const auto& model = energy_model();
  for (std::size_t w = 0; w < config_.org.ways; ++w) {
    if (!way_active(w) || data_codec(w) == nullptr) {
      continue;
    }
    for (std::size_t set = 0; set < config_.org.sets(); ++set) {
      Line& line = ways_[w].lines[set];
      if (!line.valid) {
        continue;
      }
      ++report.lines_scrubbed;
      charge(kEnergyDynamic, model.line_read_energy(w) + model.line_fill_energy(w));
      charge(kEnergyEdc, static_cast<double>(wpl) * (model.edc_decode_energy(w) +
                                               model.edc_encode_energy(w)));
      AccessResult scratch;
      bool lost = false;
      std::vector<std::uint32_t> words(wpl, 0);
      for (std::size_t word = 0; word < wpl; ++word) {
        const auto value = read_data_word(w, set, word, scratch);
        if (!value) {
          lost = true;
          break;
        }
        words[word] = *value;
      }
      if (lost) {
        ++report.uncorrectable;
        if (line.dirty) {
          ++report.data_loss;
        }
        line.valid = false;
        line.dirty = false;
        set_probe_key(w, set, kProbeInvalid);
        continue;
      }
      report.bits_corrected += scratch.corrected_bits;
      if (scratch.corrected_bits > 0) {
        for (std::size_t word = 0; word < wpl; ++word) {
          write_data_word(w, set, word, words[word]);
        }
      }
    }
  }
  return report;
}

void Cache::flush() {
  for (std::size_t w = 0; w < config_.org.ways; ++w) {
    for (std::size_t set = 0; set < config_.org.sets(); ++set) {
      Line& line = ways_[w].lines[set];
      if (line.valid && line.dirty) {
        writeback_line(w, set);
      }
    }
  }
}

void Cache::reset() {
  for (auto& way : ways_) {
    for (auto& line : way.lines) {
      line.valid = false;
      line.dirty = false;
    }
  }
  std::fill(probe_keys_.begin(), probe_keys_.end(), kProbeInvalid);
}

// --- MemoryLevel: this cache serving as another cache's next level ---

std::size_t Cache::fetch_block(std::uint64_t addr, std::uint32_t* out,
                               std::size_t count) {
  expects(count > 0 && addr % 4 == 0, "fetch_block: aligned non-empty range");
  const std::uint64_t line_addr = addr / config_.org.line_bytes;
  expects((addr + 4 * count - 1) / config_.org.line_bytes == line_addr,
          "fetch_block range must lie within one line of this level");
  ++stats_.accesses;
  ++stats_.loads;
  charge_lookup();
  std::size_t latency = hit_latency();

  const std::size_t set = set_of(line_addr);
  AccessResult scratch;
  std::size_t w = find_way(line_addr, set, scratch);
  if (w != config_.org.ways) {
    ++stats_.hits;
    policy_->touch(set, w);
  } else {
    ++stats_.misses;
    scratch.latency_cycles = 0;
    w = fill_line(line_addr, set, scratch);
    latency += scratch.latency_cycles;
  }

  const auto& model = energy_model();
  const std::size_t wpl = config_.org.words_per_line();
  const std::size_t first_word =
      static_cast<std::size_t>(addr % config_.org.line_bytes) / 4;
  // Reads `count` of the line's `wpl` words: charge the proportional share
  // of a whole-line read (identical to writeback_line when count == wpl).
  charge(kEnergyDynamic,
         model.line_read_energy(w) *
             (static_cast<double>(count) / static_cast<double>(wpl)));
  charge(kEnergyEdc, static_cast<double>(count) * model.edc_decode_energy(w));
  for (std::size_t i = 0; i < count; ++i) {
    const auto value = read_data_word(w, set, first_word + i, scratch);
    out[i] = value ? *value : next_level_->load_word(addr + 4 * i);
  }
  return latency;
}

std::size_t Cache::writeback_block(std::uint64_t addr,
                                   const std::uint32_t* words,
                                   std::size_t count) {
  expects(count > 0 && addr % 4 == 0,
          "writeback_block: aligned non-empty range");
  const std::uint64_t line_addr = addr / config_.org.line_bytes;
  expects((addr + 4 * count - 1) / config_.org.line_bytes == line_addr,
          "writeback_block range must lie within one line of this level");
  ++stats_.accesses;
  ++stats_.stores;
  charge_lookup();
  std::size_t latency = hit_latency();

  const std::size_t wpl = config_.org.words_per_line();
  const std::size_t first_word =
      static_cast<std::size_t>(addr % config_.org.line_bytes) / 4;
  const std::size_t set = set_of(line_addr);
  AccessResult scratch;
  std::size_t w = find_way(line_addr, set, scratch);

  const bool allocate =
      config_.write_policy == WritePolicy::kWriteBackAllocate;
  if (w == config_.org.ways) {
    ++stats_.misses;
    if (!allocate) {
      // Write-through/no-allocate: pass the block straight down.
      return latency + next_level_->writeback_block(addr, words, count);
    }
    scratch.latency_cycles = 0;
    // A full-line write allocates without fetching from below; a partial
    // write merges into the fetched line.
    const bool full_line = count == wpl;
    w = fill_line(line_addr, set, scratch, full_line ? words : nullptr);
    latency += scratch.latency_cycles;
    if (full_line) {
      ways_[w].lines[set].dirty = true;
      return latency;  // fill_line wrote (and charged) the whole line
    }
  } else {
    ++stats_.hits;
    policy_->touch(set, w);
  }

  const auto& model = energy_model();
  for (std::size_t i = 0; i < count; ++i) {
    write_data_word(w, set, first_word + i, words[i]);
  }
  charge(kEnergyDynamic,
         static_cast<double>(count) * model.word_write_energy(w));
  charge(kEnergyEdc, static_cast<double>(count) * model.edc_encode_energy(w));
  if (allocate) {
    ways_[w].lines[set].dirty = true;
  } else {
    // Write-through hit: the line is updated in place and the block also
    // goes below; the store buffer hides that latency.
    (void)next_level_->writeback_block(addr, words, count);
  }
  return latency;
}

std::uint32_t Cache::load_word(std::uint64_t addr) {
  return access(addr, AccessType::kLoad).data;
}

std::size_t Cache::store_word(std::uint64_t addr, std::uint32_t value) {
  return access(addr, AccessType::kStore, value).latency_cycles;
}

LevelStats Cache::level_stats() const {
  LevelStats out;
  out.name = config_.name;
  out.accesses = stats_.accesses;
  out.hits = stats_.hits;
  out.misses = stats_.misses;
  out.fills = stats_.fills;
  out.writebacks = stats_.writebacks;
  out.edc_corrections = stats_.edc_corrections;
  out.edc_detected = stats_.edc_detected;
  out.dynamic_energy_j = dynamic_energy_j();
  out.edc_energy_j = edc_energy_j();
  out.leakage_w = leakage_power();
  out.area_um2 = total_area_um2();
  return out;
}

void Cache::clear_level_counters() {
  clear_stats();
  clear_energy();
}

}  // namespace hvc::cache
