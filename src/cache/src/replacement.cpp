#include "hvc/cache/replacement.hpp"

#include <algorithm>
#include <limits>

#include "hvc/common/error.hpp"

namespace hvc::cache {

std::string to_string(ReplacementKind kind) {
  switch (kind) {
    case ReplacementKind::kLru: return "LRU";
    case ReplacementKind::kFifo: return "FIFO";
    case ReplacementKind::kRandom: return "random";
  }
  return "?";
}

ReplacementPolicy::ReplacementPolicy(std::size_t sets, std::size_t ways,
                                     std::uint64_t seed)
    : sets_(sets), ways_(ways), rng_(seed) {
  expects(sets > 0 && ways > 0, "replacement needs non-empty geometry");
}

namespace {

/// True LRU via per-way timestamps (8-way sets make this cheap).
class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy(std::size_t sets, std::size_t ways, std::uint64_t seed)
      : ReplacementPolicy(sets, ways, seed),
        stamps_(sets * ways, 0) {}

  void touch(std::size_t set, std::size_t way) override {
    expects(set < sets_ && way < ways_, "touch out of range");
    stamps_[set * ways_ + way] = ++clock_;
  }

  TouchSeam touch_seam() noexcept override {
    return {stamps_.data(), &clock_};
  }

  std::size_t victim(std::size_t set,
                     const std::vector<std::size_t>& candidates) override {
    expects(!candidates.empty(), "victim needs candidates");
    std::size_t best = candidates.front();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (const auto way : candidates) {
      expects(way < ways_, "candidate out of range");
      const std::uint64_t stamp = stamps_[set * ways_ + way];
      if (stamp < oldest) {
        oldest = stamp;
        best = way;
      }
    }
    return best;
  }

 private:
  std::vector<std::uint64_t> stamps_;
  std::uint64_t clock_ = 0;
};

/// FIFO: order set on fill only (touch on hit is ignored).
class FifoPolicy final : public ReplacementPolicy {
 public:
  FifoPolicy(std::size_t sets, std::size_t ways, std::uint64_t seed)
      : ReplacementPolicy(sets, ways, seed),
        stamps_(sets * ways, 0),
        filled_(sets * ways, false) {}

  void touch(std::size_t set, std::size_t way) override {
    expects(set < sets_ && way < ways_, "touch out of range");
    const std::size_t index = set * ways_ + way;
    if (!filled_[index]) {
      filled_[index] = true;
      stamps_[index] = ++clock_;
    }
  }

  // A hit always lands on a valid line, and every valid line was touched
  // by its fill (fill_line calls touch unconditionally), so filled_ is
  // already true and touch() would change nothing.
  TouchSeam touch_seam() noexcept override { return {nullptr, nullptr, true}; }

  std::size_t victim(std::size_t set,
                     const std::vector<std::size_t>& candidates) override {
    expects(!candidates.empty(), "victim needs candidates");
    std::size_t best = candidates.front();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (const auto way : candidates) {
      const std::size_t index = set * ways_ + way;
      const std::uint64_t stamp = filled_[index] ? stamps_[index] : 0;
      if (stamp < oldest) {
        oldest = stamp;
        best = way;
      }
    }
    // The victim slot will be refilled: restart its FIFO stamp.
    filled_[set * ways_ + best] = false;
    return best;
  }

 private:
  std::vector<std::uint64_t> stamps_;
  std::vector<bool> filled_;
  std::uint64_t clock_ = 0;
};

class RandomPolicy final : public ReplacementPolicy {
 public:
  using ReplacementPolicy::ReplacementPolicy;

  void touch(std::size_t, std::size_t) override {}

  TouchSeam touch_seam() noexcept override { return {nullptr, nullptr, true}; }

  std::size_t victim(std::size_t,
                     const std::vector<std::size_t>& candidates) override {
    expects(!candidates.empty(), "victim needs candidates");
    return candidates[static_cast<std::size_t>(rng_.below(candidates.size()))];
  }
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_policy(ReplacementKind kind,
                                               std::size_t sets,
                                               std::size_t ways,
                                               std::uint64_t seed) {
  switch (kind) {
    case ReplacementKind::kLru:
      return std::make_unique<LruPolicy>(sets, ways, seed);
    case ReplacementKind::kFifo:
      return std::make_unique<FifoPolicy>(sets, ways, seed);
    case ReplacementKind::kRandom:
      return std::make_unique<RandomPolicy>(sets, ways, seed);
  }
  throw PreconditionError("unknown replacement kind");
}

}  // namespace hvc::cache
