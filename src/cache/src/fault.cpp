#include "hvc/cache/fault.hpp"

#include <cmath>

#include "hvc/common/error.hpp"

namespace hvc::cache {

FaultMap::FaultMap(std::size_t bits, double pf, Rng& rng)
    : stuck_mask_(bits), stuck_values_(bits) {
  expects(pf >= 0.0 && pf <= 1.0, "Pf must be a probability");
  if (pf <= 0.0 || bits == 0) {
    return;
  }
  // Skip-sampling: draw the gap to the next faulty bit geometrically
  // instead of testing every bit (Pf is typically 1e-6..1e-3).
  const double log1mp = std::log1p(-pf);
  std::size_t position = 0;
  for (;;) {
    double u = 0.0;
    do {
      u = rng.uniform();
    } while (u <= 1e-300);
    const double skip = std::floor(std::log(u) / log1mp);
    if (skip >= static_cast<double>(bits - position)) {
      break;
    }
    position += static_cast<std::size_t>(skip);
    stuck_mask_.set(position);
    stuck_values_.set(position, rng.bernoulli(0.5));
    ++position;
    if (position >= bits) {
      break;
    }
  }
}

void FaultMap::apply(BitVec& word, std::size_t base) const {
  expects(base + word.size() <= stuck_mask_.size(),
          "FaultMap::apply out of range");
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (stuck_mask_.get(base + i)) {
      word.set(i, stuck_values_.get(base + i));
    }
  }
}

bool FaultMap::any_stuck(std::size_t base, std::size_t count) const {
  expects(base + count <= stuck_mask_.size(),
          "FaultMap::any_stuck out of range");
  for (std::size_t i = 0; i < count; ++i) {
    if (stuck_mask_.get(base + i)) {
      return true;
    }
  }
  return false;
}

SoftErrorProcess::SoftErrorProcess(std::size_t bits, double rate_per_bit)
    : bits_(bits), rate_per_bit_(rate_per_bit) {
  expects(rate_per_bit >= 0.0, "soft error rate must be non-negative");
}

std::vector<std::size_t> SoftErrorProcess::advance(double seconds, Rng& rng) {
  std::vector<std::size_t> flips;
  if (rate_per_bit_ <= 0.0 || bits_ == 0 || seconds <= 0.0) {
    return flips;
  }
  const double mean = rate_per_bit_ * static_cast<double>(bits_) * seconds;
  const std::uint64_t count = rng.poisson(mean);
  flips.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    flips.push_back(static_cast<std::size_t>(rng.below(bits_)));
  }
  return flips;
}

}  // namespace hvc::cache
