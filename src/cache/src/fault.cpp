#include "hvc/cache/fault.hpp"

#include <cmath>

#include "hvc/common/error.hpp"

namespace hvc::cache {

FaultMap::FaultMap(std::size_t bits, double pf, Rng& rng)
    : stuck_mask_(bits), stuck_values_(bits) {
  expects(pf >= 0.0 && pf <= 1.0, "Pf must be a probability");
  if (pf <= 0.0 || bits == 0) {
    return;
  }
  // Skip-sampling: draw the gap to the next faulty bit geometrically
  // instead of testing every bit (Pf is typically 1e-6..1e-3).
  std::size_t position = 0;
  for (;;) {
    const std::uint64_t skip = rng.geometric(pf);
    if (skip >= bits - position) {
      break;
    }
    position += static_cast<std::size_t>(skip);
    stuck_mask_.set(position);
    stuck_values_.set(position, rng.bernoulli(0.5));
    ++position;
    if (position >= bits) {
      break;
    }
  }
}

void FaultMap::apply(BitVec& word, std::size_t base) const {
  expects(base + word.size() <= stuck_mask_.size(),
          "FaultMap::apply out of range");
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (stuck_mask_.get_unchecked(base + i)) {
      word.set_unchecked(i, stuck_values_.get_unchecked(base + i));
    }
  }
}

std::uint64_t FaultMap::apply_word(std::uint64_t word, std::size_t base,
                                   std::size_t count) const {
  const std::uint64_t stuck = stuck_mask_.extract_word(base, count);
  if (stuck == 0) {
    return word;  // the common case: no faulty cell under this codeword
  }
  return (word & ~stuck) | (stuck_values_.extract_word(base, count) & stuck);
}

bool FaultMap::any_stuck(std::size_t base, std::size_t count) const {
  expects(base + count <= stuck_mask_.size(),
          "FaultMap::any_stuck out of range");
  for (std::size_t i = 0; i < count; ++i) {
    if (stuck_mask_.get_unchecked(base + i)) {
      return true;
    }
  }
  return false;
}

SoftErrorProcess::SoftErrorProcess(std::size_t bits, double rate_per_bit)
    : bits_(bits), rate_per_bit_(rate_per_bit) {
  expects(rate_per_bit >= 0.0, "soft error rate must be non-negative");
}

std::vector<std::size_t> SoftErrorProcess::advance(double seconds, Rng& rng) {
  std::vector<std::size_t> flips;
  if (rate_per_bit_ <= 0.0 || bits_ == 0 || seconds <= 0.0) {
    return flips;
  }
  const double mean = rate_per_bit_ * static_cast<double>(bits_) * seconds;
  const std::uint64_t count = rng.poisson(mean);
  flips.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    flips.push_back(static_cast<std::size_t>(rng.below(bits_)));
  }
  return flips;
}

}  // namespace hvc::cache
