#include "hvc/cache/arbiter.hpp"

#include <utility>

#include "hvc/common/error.hpp"

namespace hvc::cache {

ArbitratedLevel::ArbitratedLevel(MemoryLevel& inner, std::size_t requesters,
                                 double vcc,
                                 std::unique_ptr<ArbitrationModel> model,
                                 ArbiterEnergy energy)
    : inner_(inner), model_(std::move(model)), energy_(energy), vcc_(vcc),
      round_busy_(requesters, 0), round_requests_(requesters, 0),
      round_stamp_(requesters, 0),
      grants_(requesters, 0), priority_grants_(requesters, 0) {
  expects(requesters >= 1, "arbiter needs at least one requester");
  expects(model_ != nullptr, "arbiter needs an arbitration model");
  seam_ = model_->seam();
  uncontended_grant_j_ = energy_.cap_per_grant_f * vcc_ * vcc_;
}

std::size_t ArbitratedLevel::grant(std::size_t service_cycles,
                                   bool latency_applies) {
  // Epoch-lazy round reset: refresh this requester's occupancy BEFORE
  // reading it — a stale entry still holds last round's values and the
  // other_* subtraction below must see zero for it.
  if (round_stamp_[current_] != round_seq_) {
    round_stamp_[current_] = round_seq_;
    round_busy_[current_] = 0;
    round_requests_[current_] = 0;
  }
  const std::uint64_t other_busy =
      round_busy_total_ - round_busy_[current_];
  std::size_t delay = 0;
  if (latency_applies) {
    switch (seam_) {
      case ArbitrationModel::Seam::kSinglePort:
        delay = static_cast<std::size_t>(other_busy);
        break;
      case ArbitrationModel::Seam::kFree:
        break;
      case ArbitrationModel::Seam::kGeneric: {
        const std::uint64_t other_requests =
            round_requests_total_ - round_requests_[current_];
        delay = model_->queue_delay(static_cast<std::size_t>(other_requests),
                                    static_cast<std::size_t>(other_busy));
        break;
      }
    }
  }

  ++grants_[current_];
  if (!round_opened_) {
    // First grant of the round: the requester that sees the idle port.
    // The interleaver's rotating step order makes this slot circulate.
    ++priority_grants_[current_];
    round_opened_ = true;
  }
  round_busy_[current_] += service_cycles;
  round_busy_total_ += service_cycles;
  ++round_requests_[current_];
  ++round_requests_total_;

  if (delay > 0) {
    ++contended_requests_;
    contention_cycles_ += delay;
    arbitration_energy_j_ +=
        (energy_.cap_per_grant_f +
         energy_.cap_per_queued_cycle_f * static_cast<double>(delay)) *
        vcc_ * vcc_;
  } else {
    // delay == 0 collapses the expression above to exactly the
    // precomputed grant term (the queued-cycle product is +0.0 and
    // x + 0.0 == x for the positive cap term), so this add is
    // bit-identical to the full evaluation.
    arbitration_energy_j_ += uncontended_grant_j_;
  }
  return delay + service_cycles;
}

AccessResult ArbitratedLevel::access(std::uint64_t addr, AccessType type,
                                     std::uint32_t store_value) {
  AccessResult result = inner_.access(addr, type, store_value);
  result.latency_cycles = grant(result.latency_cycles);
  return result;
}

std::size_t ArbitratedLevel::fetch_block(std::uint64_t addr,
                                         std::uint32_t* out,
                                         std::size_t count) {
  return grant(inner_.fetch_block(addr, out, count));
}

std::size_t ArbitratedLevel::writeback_block(std::uint64_t addr,
                                             const std::uint32_t* words,
                                             std::size_t count) {
  return grant(inner_.writeback_block(addr, words, count));
}

std::uint32_t ArbitratedLevel::load_word(std::uint64_t addr) {
  const std::uint32_t value = inner_.load_word(addr);
  // The fallback word path carries no latency return; count the grant so
  // traffic identities hold, but record no queueing delay — it could not
  // have lengthened any stall.
  (void)grant(0, /*latency_applies=*/false);
  return value;
}

std::size_t ArbitratedLevel::store_word(std::uint64_t addr,
                                        std::uint32_t value) {
  return grant(inner_.store_word(addr, value));
}

LevelStats ArbitratedLevel::level_stats() const {
  LevelStats stats = inner_.level_stats();
  stats.contended_requests = contended_requests_;
  stats.contention_cycles = contention_cycles_;
  return stats;
}

void ArbitratedLevel::clear_level_counters() {
  inner_.clear_level_counters();
  for (std::size_t r = 0; r < grants_.size(); ++r) {
    grants_[r] = 0;
    priority_grants_[r] = 0;
  }
  contended_requests_ = 0;
  contention_cycles_ = 0;
  arbitration_energy_j_ = 0.0;
  new_round();
}

}  // namespace hvc::cache
