// Replacement policies over the *active* ways of a set (gated ways are
// never candidates).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "hvc/common/rng.hpp"

namespace hvc::cache {

enum class ReplacementKind { kLru, kFifo, kRandom };

[[nodiscard]] std::string to_string(ReplacementKind kind);

/// Per-set replacement state shared by all policies.
class ReplacementPolicy {
 public:
  ReplacementPolicy(std::size_t sets, std::size_t ways, std::uint64_t seed);
  virtual ~ReplacementPolicy() = default;

  /// Called on every hit/fill so the policy can update recency state.
  virtual void touch(std::size_t set, std::size_t way) = 0;

  /// Fast-path seam for batch replay: a policy whose touch() reduces to
  /// one timestamp store (LRU) exposes its stamp array (sets * ways,
  /// row-major) and clock so the cache's hit loop can update recency
  /// without a virtual call. The store performed through the seam must
  /// be exactly `stamps[set * ways + way] = ++*clock` — the same state
  /// transition touch() makes. A policy whose touch() is provably a
  /// no-op *on hits* (FIFO: every valid line is already filled; random:
  /// touch is empty) sets `noop` instead, and the hit loop skips the
  /// call entirely. Policies with any other touch() behaviour return
  /// the default seam and keep taking the virtual call.
  struct TouchSeam {
    std::uint64_t* stamps = nullptr;
    std::uint64_t* clock = nullptr;
    bool noop = false;  ///< touch() has no effect on a hit to a valid line
  };
  [[nodiscard]] virtual TouchSeam touch_seam() noexcept { return {}; }
  /// Picks a victim among `candidates` (indices of active, valid ways are
  /// passed by the cache; invalid ways are chosen by the cache first).
  [[nodiscard]] virtual std::size_t victim(
      std::size_t set, const std::vector<std::size_t>& candidates) = 0;

  [[nodiscard]] std::size_t sets() const noexcept { return sets_; }
  [[nodiscard]] std::size_t ways() const noexcept { return ways_; }

 protected:
  std::size_t sets_;
  std::size_t ways_;
  Rng rng_;
};

[[nodiscard]] std::unique_ptr<ReplacementPolicy> make_policy(
    ReplacementKind kind, std::size_t sets, std::size_t ways,
    std::uint64_t seed);

}  // namespace hvc::cache
