// Bit-level fault models for SRAM arrays.
//
// Hard faults are manufacturing defects: each bit is independently
// stuck-at-0/1 with the cell's hard failure probability Pf (evaluated at
// the worst-case operating voltage the array must support). They are
// sampled once per chip instance and never change.
//
// Soft errors are transient radiation-induced flips arriving as a Poisson
// process with the cell's soft-error rate; they corrupt the stored value
// until it is overwritten.
#pragma once

#include <cstddef>
#include <vector>

#include "hvc/common/bitvec.hpp"
#include "hvc/common/rng.hpp"

namespace hvc::cache {

/// Stuck-at fault map over a fixed-size bit array.
class FaultMap {
 public:
  /// `bits` array positions; each is faulty with probability `pf`.
  FaultMap(std::size_t bits, double pf, Rng& rng);

  [[nodiscard]] std::size_t size() const noexcept { return stuck_mask_.size(); }
  [[nodiscard]] std::size_t fault_count() const noexcept {
    return stuck_mask_.popcount();
  }
  [[nodiscard]] bool is_stuck(std::size_t bit) const {
    return stuck_mask_.get(bit);
  }
  [[nodiscard]] bool stuck_value(std::size_t bit) const {
    return stuck_values_.get(bit);
  }

  /// Applies the stuck bits to `count` bits of `word` as if they were read
  /// from positions [base, base+count) of the array.
  void apply(BitVec& word, std::size_t base) const;

  /// Word-level fast path of apply(): returns the low `count` bits of
  /// `word` as read through positions [base, base+count) of the array,
  /// with stuck bits forced to their stuck values. Requires count <= 64.
  [[nodiscard]] std::uint64_t apply_word(std::uint64_t word, std::size_t base,
                                         std::size_t count) const;

  /// True when any of [base, base+count) is stuck.
  [[nodiscard]] bool any_stuck(std::size_t base, std::size_t count) const;

 private:
  BitVec stuck_mask_;
  BitVec stuck_values_;
};

/// Poisson soft-error arrival process over an array of bits.
class SoftErrorProcess {
 public:
  /// `rate_per_bit` in errors/second.
  SoftErrorProcess(std::size_t bits, double rate_per_bit);

  /// Advances time and returns the positions flipped in this interval.
  [[nodiscard]] std::vector<std::size_t> advance(double seconds, Rng& rng);

  [[nodiscard]] double rate_per_bit() const noexcept { return rate_per_bit_; }
  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }

 private:
  std::size_t bits_;
  double rate_per_bit_;
};

}  // namespace hvc::cache
