// Bit-accurate hybrid-voltage set-associative cache simulator.
//
// This is the paper's proposed architecture (Figure 1) as an executable
// model: heterogeneous ways (6T HP ways, 8T/10T ULE ways), per-mode EDC
// (none/SECDED/DECTED) on 32-bit data words and 26-bit tags, gated-Vdd way
// shutdown at ULE mode, and bit-level hard/soft fault injection so the EDC
// datapath is exercised end to end.
//
// Every tag and data word is stored as its real codeword bits. Reads pull
// the raw bits through the fault map, decode them, and report corrections;
// a detected-uncorrectable tag forces a miss, a detected-uncorrectable
// data word falls back to memory (counted — with properly sized cells this
// must never happen, which is the paper's predictability argument).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hvc/cache/fault.hpp"
#include "hvc/cache/memory.hpp"
#include "hvc/cache/memory_level.hpp"
#include "hvc/cache/replacement.hpp"
#include "hvc/common/rng.hpp"
#include "hvc/common/stats.hpp"
#include "hvc/power/cache_power.hpp"

// SIMD hit probe: the batch fast path compares all ways of a set against
// the probed line address in one vector compare over the per-set probe-key
// row (see Cache::probe_keys_). Uses the portable GCC/Clang vector
// extensions; any other compiler — or -DHVC_NO_SIMD=ON — falls back to the
// scalar row scan, which is bit-identical (the probe is side-effect-free
// either way; only the compare count changes).
#if !defined(HVC_NO_SIMD) && (defined(__GNUC__) || defined(__clang__))
#define HVC_SIMD_PROBE 1
#else
#define HVC_SIMD_PROBE 0
#endif

namespace hvc::cache {

#if HVC_SIMD_PROBE
/// Four probe keys at a time; aligned(8) so rows only need natural
/// std::uint64_t alignment (the compiler emits unaligned vector loads).
typedef std::uint64_t ProbeVec
    __attribute__((vector_size(32), aligned(8)));
#endif

// AccessType / AccessResult / AccessBatch live in memory_level.hpp (the
// shared access contract of every hierarchy level).

enum class WritePolicy { kWriteBackAllocate, kWriteThroughNoAllocate };

/// Static configuration of one cache instance.
struct CacheConfig {
  std::string name = "L1";
  power::CacheOrg org;
  std::vector<power::WayPlan> ways;
  WritePolicy write_policy = WritePolicy::kWriteBackAllocate;
  ReplacementKind replacement = ReplacementKind::kLru;
  std::size_t hit_latency_cycles = 1;
  std::size_t memory_latency_cycles = 20;  // paper IV-A
  /// Extra encode/decode pipeline latency when EDC is active (paper IV-A3:
  /// one clock cycle).
  std::size_t edc_latency_cycles = 1;
  /// Operating points for the two modes (paper IV-A2).
  power::OperatingPoint hp{power::Mode::kHp, 1.0, 1e9};
  power::OperatingPoint ule{power::Mode::kUle, 0.35, 5e6};
  /// Per-bit hard fault probability for each way's arrays, evaluated at
  /// the worst voltage the way must operate at. Empty = fault-free.
  std::vector<double> way_hard_pf;
  std::uint64_t fault_seed = 12345;
};

/// Event counters.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t ifetches = 0;
  std::uint64_t fills = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t edc_corrections = 0;
  std::uint64_t edc_detected = 0;
  std::uint64_t mode_switch_writebacks = 0;
  std::uint64_t soft_errors_injected = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }
};

class Cache : public MemoryLevel {
 public:
  /// Builds a cache that misses into an arbitrary next level (another
  /// Cache, or a MainMemoryLevel terminal). The next level must outlive
  /// this cache. `config.memory_latency_cycles` is ignored on this path:
  /// miss latency is whatever the next level reports per request.
  Cache(CacheConfig config, MemoryLevel& next_level, Rng& rng);

  /// Performs one access at the current mode. Functionally exact: loads
  /// return the value the program would see.
  AccessResult access(std::uint64_t addr, AccessType type,
                      std::uint32_t store_value = 0) override;

  /// Native block-at-a-time path: resolves the block's hits over the
  /// packed per-way arrays with a hoisted per-mode context (geometry,
  /// energy handles, codec/fault dispatch pre-resolved once per block
  /// instead of per record) and falls back to the scalar access() for
  /// misses, write-through passthroughs and fault-perturbed sets, so
  /// ordering-sensitive state transitions stay exact. Pinned
  /// bit-identical to the scalar loop — every stat, every energy
  /// accumulation step, every latency — by tests/test_batch.cpp.
  void access_batch(AccessBatch& batch) override;

  /// One op of a conceptual batch: identical side effects to access(),
  /// through the batch fast path. This exists because cpu::Core must
  /// interleave IL1/DL1 ops in record order (they share a stateful next
  /// level), so it cannot hand either cache a multi-op block; it streams
  /// per-record ops through this entry point instead and gets the same
  /// hoisted-context win.
  void access_batched(std::uint64_t addr, AccessType type,
                      std::uint32_t store_value, bool& hit,
                      std::uint32_t& latency_cycles);

 private:
  /// Scalar re-entry for batch ops the fast path cannot replay (miss,
  /// non-power-of-two geometry, fault-perturbed tag set).
  void access_batched_fallback(std::uint64_t addr, AccessType type,
                               std::uint32_t store_value, bool& hit,
                               std::uint32_t& latency_cycles);
  /// Out-of-line hit tails for ops that need the EDC codec or the
  /// write-through passthrough (the inline fast path covers the plain
  /// uncoded hit, which is the overwhelming majority at HP).
  void batched_store_tail(std::uint64_t addr, std::uint32_t store_value,
                          std::size_t hit_way, std::size_t set,
                          std::size_t widx);
  void batched_load_coded(std::uint64_t addr, std::size_t hit_way,
                          std::size_t set, std::size_t word,
                          std::size_t widx);

 public:

  /// Switches operating mode. HP->ULE writes back dirty HP-way lines and
  /// invalidates them (gated-Vdd loses content); ULE->HP keeps ULE ways.
  void set_mode(power::Mode mode) override;
  [[nodiscard]] power::Mode mode() const noexcept { return mode_; }

  /// Arms Poisson soft-error injection on one way's data array with the
  /// given per-bit rate (errors/second); see tech::soft_error_rate_per_bit.
  void enable_soft_errors(std::size_t way, double rate_per_bit);

  /// Injects Poisson soft errors for `seconds` of wall-clock time into all
  /// powered arrays.
  void advance_time(double seconds);

  /// Explicit single soft-error injection (tests / fault-injection demos):
  /// flips a stored bit of the given way/set.
  void inject_bit_flip(std::size_t way, std::size_t set, std::size_t bit_in_line);

  /// Scrub pass: reads, decodes, re-encodes and rewrites every valid line
  /// of the powered ways, clearing accumulated correctable soft errors
  /// before a second strike makes them uncorrectable. Returns the number
  /// of corrected bits. Lines that are already uncorrectable are
  /// invalidated (clean) or refetched conceptually by the next miss;
  /// dirty uncorrectable lines count as data loss in `scrub_data_loss`.
  /// (ScrubReport lives at namespace scope so every MemoryLevel shares it;
  /// the nested name is kept for existing callers.)
  using ScrubReport = cache::ScrubReport;
  ScrubReport scrub() override;

  /// Writes back every dirty line (used at simulation end). Flushes this
  /// level only; sim::System drains a hierarchy top-down (L1s, then L2).
  void flush() override;

  /// Invalidate everything without writeback (power-on state).
  void reset() override;

  // --- MemoryLevel: serving as another cache's next level ---
  [[nodiscard]] const std::string& level_name() const noexcept override {
    return config_.name;
  }
  /// One logical read access of this level covering `count` words of one
  /// line (an upper level's fill). Counts as a single load access.
  std::size_t fetch_block(std::uint64_t addr, std::uint32_t* out,
                          std::size_t count) override;
  /// One logical write access covering `count` words of one line (an upper
  /// level's dirty write-back). Write-allocates on a miss; a full-line
  /// write allocates without fetching from below.
  std::size_t writeback_block(std::uint64_t addr, const std::uint32_t* words,
                              std::size_t count) override;
  [[nodiscard]] std::uint32_t load_word(std::uint64_t addr) override;
  std::size_t store_word(std::uint64_t addr, std::uint32_t value) override;
  [[nodiscard]] LevelStats level_stats() const override;
  void clear_level_counters() override;

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void clear_stats() noexcept { stats_ = CacheStats{}; }

  /// Accumulated dynamic/EDC energy in joules since the last clear, as a
  /// named breakdown for reports. The per-access hot path charges plain
  /// doubles (see EnergyCat); names exist only here.
  [[nodiscard]] Breakdown energy() const;
  [[nodiscard]] double dynamic_energy_j() const noexcept {
    return energy_j_[kEnergyDynamic];
  }
  [[nodiscard]] double edc_energy_j() const noexcept {
    return energy_j_[kEnergyEdc];
  }
  [[nodiscard]] double total_energy_j() const noexcept {
    return energy_j_[kEnergyDynamic] + energy_j_[kEnergyEdc];
  }
  void clear_energy() noexcept { energy_j_[0] = energy_j_[1] = 0.0; }

  /// Static power (W) at the current mode, split into array and EDC parts.
  [[nodiscard]] double leakage_power() const noexcept;
  [[nodiscard]] double edc_leakage_power() const noexcept;

  /// Total hit latency at the current mode, including the EDC cycle.
  [[nodiscard]] std::size_t hit_latency() const noexcept;

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] const power::CacheEnergyModel& energy_model() const noexcept;
  [[nodiscard]] double total_area_um2() const noexcept;

  /// True when the line at (way, set) is valid (inspection for tests).
  [[nodiscard]] bool line_valid(std::size_t way, std::size_t set) const;

 private:
  /// Pre-resolved energy-category handles: the per-access hot path
  /// accumulates into a flat array instead of a string-keyed map.
  enum EnergyCat : std::size_t {
    kEnergyDynamic = 0,
    kEnergyEdc = 1,
    kEnergyCats = 2,
  };

  struct Line {
    bool valid = false;
    bool dirty = false;
    std::uint64_t line_addr = 0;  ///< addr / line_bytes
  };

  struct Way {
    std::vector<Line> lines;  ///< indexed by set
    /// Packed cache-line storage: each stored codeword (data word + check
    /// bits, strongest-protection layout) occupies one 64-bit word of a
    /// contiguous per-way array — no per-line heap objects, no bit-by-bit
    /// copies on the access path.
    std::vector<std::uint64_t> data_words;  ///< sets * words_per_line
    std::vector<std::uint64_t> tag_words;   ///< one per set
    std::unique_ptr<edc::Codec> data_codec_hp;
    std::unique_ptr<edc::Codec> data_codec_ule;
    std::unique_ptr<edc::Codec> tag_codec_hp;
    std::unique_ptr<edc::Codec> tag_codec_ule;
    std::unique_ptr<FaultMap> data_faults;
    std::unique_ptr<FaultMap> tag_faults;
    std::unique_ptr<SoftErrorProcess> soft_process;
  };

  [[nodiscard]] bool way_active(std::size_t w) const noexcept;
  [[nodiscard]] const edc::Codec* data_codec(std::size_t w) const noexcept;
  [[nodiscard]] const edc::Codec* tag_codec(std::size_t w) const noexcept;
  [[nodiscard]] std::size_t set_of(std::uint64_t line_addr) const noexcept;
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t line_addr) const noexcept;

  /// Tag-probes every active way of `set` for `line_addr`; returns the
  /// hit way, or config_.org.ways on a miss. EDC events encountered while
  /// decoding tags are recorded in `result`.
  [[nodiscard]] std::size_t find_way(std::uint64_t line_addr, std::size_t set,
                                     AccessResult& result);

  /// Reads and decodes the tag of (way,set); nullopt when invalid or the
  /// tag is uncorrectable.
  [[nodiscard]] std::optional<std::uint64_t> read_tag(std::size_t w,
                                                      std::size_t set,
                                                      AccessResult& result);
  /// Reads and decodes data word `word` of (way,set).
  [[nodiscard]] std::optional<std::uint32_t> read_data_word(
      std::size_t w, std::size_t set, std::size_t word, AccessResult& result);

  void write_data_word(std::size_t w, std::size_t set, std::size_t word,
                       std::uint32_t value);
  void write_tag(std::size_t w, std::size_t set, std::uint64_t tag);

  /// Index of (set, word) inside a way's packed data-word array.
  [[nodiscard]] std::size_t data_word_index(std::size_t set,
                                            std::size_t word) const noexcept {
    return set * config_.org.words_per_line() + word;
  }

  /// Bit offset of (set, word) inside a way's data fault map.
  [[nodiscard]] std::size_t data_bit_base(std::size_t w, std::size_t set,
                                          std::size_t word) const noexcept;
  [[nodiscard]] std::size_t tag_bit_base(std::size_t w,
                                         std::size_t set) const noexcept;

  /// Allocates a line: victim selection, dirty-victim write-back, tag
  /// write. With `incoming == nullptr` the content is fetched from the
  /// next level (the fetch latency is added to `result.latency_cycles`);
  /// otherwise `incoming` supplies the full line and no fetch happens
  /// (full-line write-allocate). Returns the victim way.
  std::size_t fill_line(std::uint64_t line_addr, std::size_t set,
                        AccessResult& result,
                        const std::uint32_t* incoming = nullptr);
  void writeback_line(std::size_t w, std::size_t set);

  void init();
  void charge_lookup();

  void charge(EnergyCat category, double joules) noexcept {
    energy_j_[category] += joules;
  }

  /// Per-mode constants the batch path hoists out of the per-record loop:
  /// geometry (divisions/modulos pre-reduced to shifts/masks when the
  /// organisation is power-of-two), energy handles, per-way codec and
  /// activity dispatch, and the per-set "tag region fault-free" map that
  /// licenses the exact-probe shortcut. Rebuilt lazily after set_mode();
  /// everything it caches is immutable between mode switches (fault maps
  /// are sampled once per chip, codecs and energy models at init).
  struct BatchCtx {
    bool fast = false;  ///< geometry is power-of-two; fast path armed
    power::Mode mode = power::Mode::kHp;
    std::size_t ways = 0;
    std::size_t sets = 0;
    std::size_t wpl = 0;
    std::uint64_t line_bytes = 0;
    unsigned line_shift = 0;  ///< log2(line_bytes)
    std::uint64_t set_mask = 0;
    std::uint64_t word_mask = 0;  ///< low_mask(org.word_bits)
    std::size_t hit_latency = 0;
    bool write_through = false;
    bool ule = false;
    double lookup_dyn = 0.0;
    /// Per-active-coded-way tag-decode charges, in way order (the FP
    /// accumulation sequence of charge_lookup, replayed add by add).
    std::vector<double> lookup_edc;
    struct WayCtx {
      bool active = false;
      /// Raw views into the owning Way's storage (stable: the vectors
      /// are sized once at construction and never reallocated).
      const Line* lines = nullptr;
      std::uint64_t* data_words = nullptr;
      const edc::Codec* data_codec = nullptr;
      std::size_t data_cw_bits = 0;
      double word_write = 0.0;
      double edc_encode = 0.0;
      double edc_decode = 0.0;
    };
    std::vector<WayCtx> way;
    /// LRU stamp seam (nullptr stamps => virtual policy_->touch()).
    ReplacementPolicy::TouchSeam lru;
    /// Raw view of the owning cache's probe-key rows (sets * probe_stride,
    /// row-major, sentinel-padded — see probe_keys_ below): the hit probe
    /// compares one row against the probed line address instead of
    /// walking the per-way Line arrays.
    const std::uint64_t* probe_keys = nullptr;
    std::size_t probe_stride = 0;
    /// Per-set most-recent-hit way, probed first. Purely a performance
    /// hint: a stale entry just falls through to the full way probe.
    std::vector<std::uint8_t> mru_way;
    /// tag_clean[set] == 1 when no active way has a stuck bit in this
    /// set's stored tag codeword: the probe `valid && line_addr ==` is
    /// then exactly find_way (tags are always stored as exact codewords —
    /// soft errors only ever touch data words). Sets that fail this take
    /// the scalar path.
    std::vector<std::uint8_t> tag_clean;
  };

  [[nodiscard]] const BatchCtx& batch_ctx();
  void rebuild_batch_ctx();

  /// Probe-key sentinel: never equal to a real line address (addresses
  /// are at least word-aligned, so line_addr = addr >> line_shift has its
  /// top bits clear). Inactive ways, invalid lines and the row's padding
  /// lanes all hold it, so one equality compare per lane answers
  /// "active && valid && line_addr matches" exactly.
  static constexpr std::uint64_t kProbeInvalid = ~std::uint64_t{0};
  /// Keeps probe_keys_ mirroring (way, set)'s line state; called at every
  /// site that changes a line's valid bit or address.
  void set_probe_key(std::size_t way, std::size_t set,
                     std::uint64_t key) noexcept {
    probe_keys_[set * probe_stride_ + way] = key;
  }

  CacheConfig config_;
  MemoryLevel* next_level_;
  power::Mode mode_ = power::Mode::kHp;
  std::vector<Way> ways_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::unique_ptr<power::CacheEnergyModel> hp_model_;
  std::unique_ptr<power::CacheEnergyModel> ule_model_;
  CacheStats stats_;
  double energy_j_[kEnergyCats] = {0.0, 0.0};
  Rng rng_;
  /// Stored codeword widths per way (strongest protection, physical layout).
  std::vector<std::size_t> stored_data_cw_bits_;
  std::vector<std::size_t> stored_tag_cw_bits_;
  /// Reusable line-sized word buffer for fills/write-backs (no per-miss
  /// allocation; fill and write-back of one cache never overlap).
  std::vector<std::uint32_t> line_buf_;
  /// Per-word decodability flags of the line in line_buf_ (write-backs
  /// skip unrecoverable words so the next level keeps its stale copy).
  std::vector<std::uint8_t> line_word_ok_;
  /// Hit-probe keys, one padded row per set (row-major, probe_stride_
  /// entries): probe_keys_[set * stride + way] is the line address stored
  /// in (way, set) when that line is valid, else kProbeInvalid. The rows
  /// are what the batch path's SIMD probe compares — a structure-of-arrays
  /// twin of the scattered per-way Line arrays that puts a whole set's
  /// tags in one cache line (stride is padded to the vector width so the
  /// last lanes of a row are sentinel, never out-of-bounds).
  std::vector<std::uint64_t> probe_keys_;
  std::size_t probe_stride_ = 0;
  /// Hoisted batch-path context; valid_ goes false on mode switches.
  BatchCtx batch_ctx_;
  bool batch_ctx_valid_ = false;
};

// Defined here (not in cache.cpp) so the per-record replay loops in
// cpu::Core inline the probe and the plain-hit replay; only misses and
// codec/write-through tails leave the caller's frame. The sequence of
// stat increments and FP energy adds below is EXACTLY the scalar
// access() hit sequence with its constants pre-resolved — reordering or
// merging any of the adds breaks the bit-identity pin (test_batch).
inline void Cache::access_batched(std::uint64_t addr, AccessType type,
                                  std::uint32_t store_value, bool& hit,
                                  std::uint32_t& latency_cycles) {
  if (!batch_ctx_valid_) {
    rebuild_batch_ctx();
    batch_ctx_valid_ = true;
  }
  BatchCtx& ctx = batch_ctx_;
  if (!ctx.fast) {
    access_batched_fallback(addr, type, store_value, hit, latency_cycles);
    return;
  }

  const std::uint64_t line_addr = addr >> ctx.line_shift;
  const std::size_t set = static_cast<std::size_t>(line_addr & ctx.set_mask);

  // Exact-probe shortcut: side-effect-free, so a miss (or a set the
  // shortcut can't prove clean) re-enters through the scalar path with
  // nothing to unwind. The per-set MRU hint is checked first — runs of
  // accesses to the same line resolve in one compare; on a hint mismatch
  // the whole probe row (active+valid+address folded into one key per
  // way) is compared at once. A matching lane is unique: a set never
  // holds the same line in two ways (fills happen on misses only).
  std::size_t hit_way = ctx.ways;
  if (ctx.tag_clean[set] != 0) {
    const std::uint64_t* row = ctx.probe_keys + set * ctx.probe_stride;
    const std::size_t hint = ctx.mru_way[set];
    if (row[hint] == line_addr) {
      hit_way = hint;
    } else {
#if HVC_SIMD_PROBE
      const ProbeVec needle = {line_addr, line_addr, line_addr, line_addr};
      for (std::size_t base = 0; base < ctx.probe_stride; base += 4) {
        const ProbeVec eq =
            *reinterpret_cast<const ProbeVec*>(row + base) == needle;
        if ((eq[0] | eq[1] | eq[2] | eq[3]) != 0) {
          hit_way = base + (eq[0] != 0   ? 0u
                            : eq[1] != 0 ? 1u
                            : eq[2] != 0 ? 2u
                                         : 3u);
          ctx.mru_way[set] = static_cast<std::uint8_t>(hit_way);
          break;
        }
      }
#else
      for (std::size_t w = 0; w < ctx.ways; ++w) {
        if (row[w] == line_addr) {
          hit_way = w;
          ctx.mru_way[set] = static_cast<std::uint8_t>(w);
          break;
        }
      }
#endif
    }
  }
  if (hit_way == ctx.ways) {
    access_batched_fallback(addr, type, store_value, hit, latency_cycles);
    return;
  }

  // --- hit: the scalar sequence with the constants pre-resolved ---
  ++stats_.accesses;
  switch (type) {
    case AccessType::kLoad: ++stats_.loads; break;
    case AccessType::kStore: ++stats_.stores; break;
    case AccessType::kIfetch: ++stats_.ifetches; break;
  }
  energy_j_[kEnergyDynamic] += ctx.lookup_dyn;
  for (const double joules : ctx.lookup_edc) {
    energy_j_[kEnergyEdc] += joules;
  }
  hit = true;
  latency_cycles = static_cast<std::uint32_t>(ctx.hit_latency);
  ++stats_.hits;
  if (ctx.lru.stamps != nullptr) {
    // The seam store is exactly LruPolicy::touch with the range checks
    // proven by construction (set/way come from the probe).
    ctx.lru.stamps[set * ctx.ways + hit_way] = ++*ctx.lru.clock;
  } else if (!ctx.lru.noop) {
    policy_->touch(set, hit_way);
  }

  const BatchCtx::WayCtx& wc = ctx.way[hit_way];
  const std::size_t word = static_cast<std::size_t>(
      (addr & (ctx.line_bytes - 1)) >> 2);
  const std::size_t widx = set * ctx.wpl + word;
  if (type == AccessType::kStore) {
    if (wc.data_codec != nullptr || ctx.write_through) {
      batched_store_tail(addr, store_value, hit_way, set, widx);
      return;
    }
    wc.data_words[widx] = store_value & ctx.word_mask;
    energy_j_[kEnergyDynamic] += wc.word_write;
    energy_j_[kEnergyEdc] += wc.edc_encode;
    ways_[hit_way].lines[set].dirty = true;
    return;
  }

  energy_j_[kEnergyEdc] += wc.edc_decode;
  if (wc.data_codec == nullptr) {
    // Uncoded read: the scalar path masks and returns the raw word with
    // no stats/energy traffic — nothing further to replay.
    return;
  }
  batched_load_coded(addr, hit_way, set, word, widx);
}

}  // namespace hvc::cache
