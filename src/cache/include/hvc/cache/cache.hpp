// Bit-accurate hybrid-voltage set-associative cache simulator.
//
// This is the paper's proposed architecture (Figure 1) as an executable
// model: heterogeneous ways (6T HP ways, 8T/10T ULE ways), per-mode EDC
// (none/SECDED/DECTED) on 32-bit data words and 26-bit tags, gated-Vdd way
// shutdown at ULE mode, and bit-level hard/soft fault injection so the EDC
// datapath is exercised end to end.
//
// Every tag and data word is stored as its real codeword bits. Reads pull
// the raw bits through the fault map, decode them, and report corrections;
// a detected-uncorrectable tag forces a miss, a detected-uncorrectable
// data word falls back to memory (counted — with properly sized cells this
// must never happen, which is the paper's predictability argument).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hvc/cache/fault.hpp"
#include "hvc/cache/memory.hpp"
#include "hvc/cache/memory_level.hpp"
#include "hvc/cache/replacement.hpp"
#include "hvc/common/rng.hpp"
#include "hvc/common/stats.hpp"
#include "hvc/power/cache_power.hpp"

namespace hvc::cache {

enum class AccessType { kLoad, kStore, kIfetch };

[[nodiscard]] std::string to_string(AccessType type);

enum class WritePolicy { kWriteBackAllocate, kWriteThroughNoAllocate };

/// Static configuration of one cache instance.
struct CacheConfig {
  std::string name = "L1";
  power::CacheOrg org;
  std::vector<power::WayPlan> ways;
  WritePolicy write_policy = WritePolicy::kWriteBackAllocate;
  ReplacementKind replacement = ReplacementKind::kLru;
  std::size_t hit_latency_cycles = 1;
  std::size_t memory_latency_cycles = 20;  // paper IV-A
  /// Extra encode/decode pipeline latency when EDC is active (paper IV-A3:
  /// one clock cycle).
  std::size_t edc_latency_cycles = 1;
  /// Operating points for the two modes (paper IV-A2).
  power::OperatingPoint hp{power::Mode::kHp, 1.0, 1e9};
  power::OperatingPoint ule{power::Mode::kUle, 0.35, 5e6};
  /// Per-bit hard fault probability for each way's arrays, evaluated at
  /// the worst voltage the way must operate at. Empty = fault-free.
  std::vector<double> way_hard_pf;
  std::uint64_t fault_seed = 12345;
};

/// Outcome of one access.
struct AccessResult {
  bool hit = false;
  std::size_t way = 0;
  std::size_t latency_cycles = 0;
  std::uint32_t data = 0;       ///< loaded word (loads/ifetch)
  bool writeback = false;       ///< a dirty victim was written back
  std::size_t corrected_bits = 0;
  bool detected_uncorrectable = false;
};

/// Event counters.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t ifetches = 0;
  std::uint64_t fills = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t edc_corrections = 0;
  std::uint64_t edc_detected = 0;
  std::uint64_t mode_switch_writebacks = 0;
  std::uint64_t soft_errors_injected = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }
};

class Cache : public MemoryLevel {
 public:
  /// Builds a cache that misses into an arbitrary next level (another
  /// Cache, or a MainMemoryLevel terminal). The next level must outlive
  /// this cache. `config.memory_latency_cycles` is ignored on this path:
  /// miss latency is whatever the next level reports per request.
  Cache(CacheConfig config, MemoryLevel& next_level, Rng& rng);

  /// Convenience for the paper's two-level shape: wraps `memory` as an
  /// internally-owned terminal level with `config.memory_latency_cycles`
  /// access latency. Behaviour is identical to the pre-hierarchy cache.
  Cache(CacheConfig config, MainMemory& memory, Rng& rng);

  /// Performs one access at the current mode. Functionally exact: loads
  /// return the value the program would see.
  AccessResult access(std::uint64_t addr, AccessType type,
                      std::uint32_t store_value = 0);

  /// Switches operating mode. HP->ULE writes back dirty HP-way lines and
  /// invalidates them (gated-Vdd loses content); ULE->HP keeps ULE ways.
  void set_mode(power::Mode mode) override;
  [[nodiscard]] power::Mode mode() const noexcept { return mode_; }

  /// Arms Poisson soft-error injection on one way's data array with the
  /// given per-bit rate (errors/second); see tech::soft_error_rate_per_bit.
  void enable_soft_errors(std::size_t way, double rate_per_bit);

  /// Injects Poisson soft errors for `seconds` of wall-clock time into all
  /// powered arrays.
  void advance_time(double seconds);

  /// Explicit single soft-error injection (tests / fault-injection demos):
  /// flips a stored bit of the given way/set.
  void inject_bit_flip(std::size_t way, std::size_t set, std::size_t bit_in_line);

  /// Scrub pass: reads, decodes, re-encodes and rewrites every valid line
  /// of the powered ways, clearing accumulated correctable soft errors
  /// before a second strike makes them uncorrectable. Returns the number
  /// of corrected bits. Lines that are already uncorrectable are
  /// invalidated (clean) or refetched conceptually by the next miss;
  /// dirty uncorrectable lines count as data loss in `scrub_data_loss`.
  /// (ScrubReport lives at namespace scope so every MemoryLevel shares it;
  /// the nested name is kept for existing callers.)
  using ScrubReport = cache::ScrubReport;
  ScrubReport scrub() override;

  /// Writes back every dirty line (used at simulation end). Flushes this
  /// level only; sim::System drains a hierarchy top-down (L1s, then L2).
  void flush() override;

  /// Invalidate everything without writeback (power-on state).
  void reset() override;

  // --- MemoryLevel: serving as another cache's next level ---
  [[nodiscard]] const std::string& level_name() const noexcept override {
    return config_.name;
  }
  /// One logical read access of this level covering `count` words of one
  /// line (an upper level's fill). Counts as a single load access.
  std::size_t fetch_block(std::uint64_t addr, std::uint32_t* out,
                          std::size_t count) override;
  /// One logical write access covering `count` words of one line (an upper
  /// level's dirty write-back). Write-allocates on a miss; a full-line
  /// write allocates without fetching from below.
  std::size_t writeback_block(std::uint64_t addr, const std::uint32_t* words,
                              std::size_t count) override;
  [[nodiscard]] std::uint32_t load_word(std::uint64_t addr) override;
  std::size_t store_word(std::uint64_t addr, std::uint32_t value) override;
  [[nodiscard]] LevelStats level_stats() const override;
  void clear_level_counters() override;

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void clear_stats() noexcept { stats_ = CacheStats{}; }

  /// Accumulated dynamic/EDC energy in joules since the last clear, as a
  /// named breakdown for reports. The per-access hot path charges plain
  /// doubles (see EnergyCat); names exist only here.
  [[nodiscard]] Breakdown energy() const;
  [[nodiscard]] double dynamic_energy_j() const noexcept {
    return energy_j_[kEnergyDynamic];
  }
  [[nodiscard]] double edc_energy_j() const noexcept {
    return energy_j_[kEnergyEdc];
  }
  [[nodiscard]] double total_energy_j() const noexcept {
    return energy_j_[kEnergyDynamic] + energy_j_[kEnergyEdc];
  }
  void clear_energy() noexcept { energy_j_[0] = energy_j_[1] = 0.0; }

  /// Static power (W) at the current mode, split into array and EDC parts.
  [[nodiscard]] double leakage_power() const noexcept;
  [[nodiscard]] double edc_leakage_power() const noexcept;

  /// Total hit latency at the current mode, including the EDC cycle.
  [[nodiscard]] std::size_t hit_latency() const noexcept;

  /// The internally-owned memory terminal of the MainMemory& convenience
  /// constructor (the paper's two-level shape), or nullptr when this cache
  /// misses into an externally-owned level. Lets reporting surface the
  /// wrapped terminal's traffic as a "MEM" row even though no explicit
  /// hierarchy was configured.
  [[nodiscard]] const MainMemoryLevel* owned_terminal() const noexcept {
    return owned_terminal_.get();
  }
  [[nodiscard]] MainMemoryLevel* owned_terminal() noexcept {
    return owned_terminal_.get();
  }

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] const power::CacheEnergyModel& energy_model() const noexcept;
  [[nodiscard]] double total_area_um2() const noexcept;

  /// True when the line at (way, set) is valid (inspection for tests).
  [[nodiscard]] bool line_valid(std::size_t way, std::size_t set) const;

 private:
  /// Pre-resolved energy-category handles: the per-access hot path
  /// accumulates into a flat array instead of a string-keyed map.
  enum EnergyCat : std::size_t {
    kEnergyDynamic = 0,
    kEnergyEdc = 1,
    kEnergyCats = 2,
  };

  struct Line {
    bool valid = false;
    bool dirty = false;
    std::uint64_t line_addr = 0;  ///< addr / line_bytes
  };

  struct Way {
    std::vector<Line> lines;  ///< indexed by set
    /// Packed cache-line storage: each stored codeword (data word + check
    /// bits, strongest-protection layout) occupies one 64-bit word of a
    /// contiguous per-way array — no per-line heap objects, no bit-by-bit
    /// copies on the access path.
    std::vector<std::uint64_t> data_words;  ///< sets * words_per_line
    std::vector<std::uint64_t> tag_words;   ///< one per set
    std::unique_ptr<edc::Codec> data_codec_hp;
    std::unique_ptr<edc::Codec> data_codec_ule;
    std::unique_ptr<edc::Codec> tag_codec_hp;
    std::unique_ptr<edc::Codec> tag_codec_ule;
    std::unique_ptr<FaultMap> data_faults;
    std::unique_ptr<FaultMap> tag_faults;
    std::unique_ptr<SoftErrorProcess> soft_process;
  };

  [[nodiscard]] bool way_active(std::size_t w) const noexcept;
  [[nodiscard]] const edc::Codec* data_codec(std::size_t w) const noexcept;
  [[nodiscard]] const edc::Codec* tag_codec(std::size_t w) const noexcept;
  [[nodiscard]] std::size_t set_of(std::uint64_t line_addr) const noexcept;
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t line_addr) const noexcept;

  /// Tag-probes every active way of `set` for `line_addr`; returns the
  /// hit way, or config_.org.ways on a miss. EDC events encountered while
  /// decoding tags are recorded in `result`.
  [[nodiscard]] std::size_t find_way(std::uint64_t line_addr, std::size_t set,
                                     AccessResult& result);

  /// Reads and decodes the tag of (way,set); nullopt when invalid or the
  /// tag is uncorrectable.
  [[nodiscard]] std::optional<std::uint64_t> read_tag(std::size_t w,
                                                      std::size_t set,
                                                      AccessResult& result);
  /// Reads and decodes data word `word` of (way,set).
  [[nodiscard]] std::optional<std::uint32_t> read_data_word(
      std::size_t w, std::size_t set, std::size_t word, AccessResult& result);

  void write_data_word(std::size_t w, std::size_t set, std::size_t word,
                       std::uint32_t value);
  void write_tag(std::size_t w, std::size_t set, std::uint64_t tag);

  /// Index of (set, word) inside a way's packed data-word array.
  [[nodiscard]] std::size_t data_word_index(std::size_t set,
                                            std::size_t word) const noexcept {
    return set * config_.org.words_per_line() + word;
  }

  /// Bit offset of (set, word) inside a way's data fault map.
  [[nodiscard]] std::size_t data_bit_base(std::size_t w, std::size_t set,
                                          std::size_t word) const noexcept;
  [[nodiscard]] std::size_t tag_bit_base(std::size_t w,
                                         std::size_t set) const noexcept;

  /// Allocates a line: victim selection, dirty-victim write-back, tag
  /// write. With `incoming == nullptr` the content is fetched from the
  /// next level (the fetch latency is added to `result.latency_cycles`);
  /// otherwise `incoming` supplies the full line and no fetch happens
  /// (full-line write-allocate). Returns the victim way.
  std::size_t fill_line(std::uint64_t line_addr, std::size_t set,
                        AccessResult& result,
                        const std::uint32_t* incoming = nullptr);
  void writeback_line(std::size_t w, std::size_t set);

  void init();
  void charge_lookup();

  void charge(EnergyCat category, double joules) noexcept {
    energy_j_[category] += joules;
  }

  CacheConfig config_;
  /// Set only by the MainMemory& convenience constructor.
  std::unique_ptr<MainMemoryLevel> owned_terminal_;
  MemoryLevel* next_level_;
  power::Mode mode_ = power::Mode::kHp;
  std::vector<Way> ways_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::unique_ptr<power::CacheEnergyModel> hp_model_;
  std::unique_ptr<power::CacheEnergyModel> ule_model_;
  CacheStats stats_;
  double energy_j_[kEnergyCats] = {0.0, 0.0};
  Rng rng_;
  /// Stored codeword widths per way (strongest protection, physical layout).
  std::vector<std::size_t> stored_data_cw_bits_;
  std::vector<std::size_t> stored_tag_cw_bits_;
  /// Reusable line-sized word buffer for fills/write-backs (no per-miss
  /// allocation; fill and write-back of one cache never overlap).
  std::vector<std::uint32_t> line_buf_;
  /// Per-word decodability flags of the line in line_buf_ (write-backs
  /// skip unrecoverable words so the next level keeps its stale copy).
  std::vector<std::uint8_t> line_word_ok_;
};

}  // namespace hvc::cache
