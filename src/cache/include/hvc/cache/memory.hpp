// Sparse word-addressable main memory used as the cache backing store.
//
// The paper's systems integrate a few MB of memory with ~20-cycle latency
// (Section IV-A); functional content lives here, timing/energy are
// accounted by the CPU model.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace hvc::cache {

class MainMemory {
 public:
  /// Reads the aligned 32-bit word containing `addr` (missing = 0).
  [[nodiscard]] std::uint32_t read_word(std::uint64_t addr) const;
  /// Writes the aligned 32-bit word containing `addr`.
  void write_word(std::uint64_t addr, std::uint32_t value);

  /// Reads `count` consecutive words starting at the aligned `addr` into
  /// `out`. One page lookup per 4KB page touched (a block inside one page —
  /// the cache fill/write-back case — costs a single hash lookup plus a
  /// contiguous copy, not a lookup per word).
  void read_block_into(std::uint64_t addr, std::uint32_t* out,
                       std::size_t count) const;
  [[nodiscard]] std::vector<std::uint32_t> read_block(std::uint64_t addr,
                                                      std::size_t count) const;
  /// Writes `count` consecutive words; same single-page fast path.
  void write_block(std::uint64_t addr, const std::uint32_t* words,
                   std::size_t count);
  void write_block(std::uint64_t addr,
                   const std::vector<std::uint32_t>& words);

  [[nodiscard]] std::size_t touched_pages() const noexcept {
    return pages_.size();
  }

 private:
  static constexpr std::uint64_t kPageBytes = 4096;
  static constexpr std::uint64_t kWordsPerPage = kPageBytes / 4;

  using Page = std::vector<std::uint32_t>;
  [[nodiscard]] const Page* find_page(std::uint64_t page_index) const;
  Page& get_page(std::uint64_t page_index);

  std::unordered_map<std::uint64_t, Page> pages_;
};

}  // namespace hvc::cache
