// Composable memory-hierarchy levels.
//
// A MemoryLevel is anything a cache can miss into: another cache (the
// shared L2), or main memory wrapped as the terminal level. The interface
// carries the three paths a level must serve — line fill, dirty
// write-back, and single-word fallback (write-through stores and
// detected-uncorrectable reads) — plus the lifecycle operations the
// hybrid-voltage system drives top-down (mode switch, scrub, flush,
// reset) and a uniform per-level stats snapshot for reporting.
//
// Latency contract: fetch_block/writeback_block/store_word return the
// request's latency in cycles *including* every deeper level the request
// had to reach, so an L1 miss simply adds its next level's return value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "hvc/power/cache_power.hpp"

namespace hvc::cache {

class MainMemory;

/// Result of one scrub pass over a level (no-op levels report zeros).
struct ScrubReport {
  std::size_t lines_scrubbed = 0;
  std::size_t bits_corrected = 0;
  std::size_t uncorrectable = 0;
  std::size_t data_loss = 0;  ///< dirty lines that could not be recovered
};

/// Uniform per-level counters/energy snapshot for hierarchy reporting.
/// Caches fill every field; the memory terminal reports its traffic with
/// hits == accesses (memory always "hits") and zero energy/leakage.
struct LevelStats {
  std::string name;
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t fills = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t edc_corrections = 0;
  std::uint64_t edc_detected = 0;
  /// Arbitration counters — zero except for shared levels wrapped in an
  /// ArbitratedLevel (see hvc/cache/arbiter.hpp).
  std::uint64_t contended_requests = 0;  ///< requests that queued (delay > 0)
  std::uint64_t contention_cycles = 0;   ///< total queueing delay added
  double dynamic_energy_j = 0.0;  ///< accumulated since last clear
  double edc_energy_j = 0.0;      ///< accumulated since last clear
  double leakage_w = 0.0;         ///< static power at the current mode
  double area_um2 = 0.0;

  [[nodiscard]] double hit_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }
};

/// Abstract next-level interface of the memory hierarchy.
class MemoryLevel {
 public:
  virtual ~MemoryLevel() = default;

  [[nodiscard]] virtual const std::string& level_name() const noexcept = 0;

  /// Fill path: reads `count` consecutive aligned 32-bit words starting at
  /// `addr` into `out`. For cache levels the range must not cross one of
  /// this level's lines (callers fetch one line at a time). Returns the
  /// request latency in cycles, including deeper levels on a miss.
  virtual std::size_t fetch_block(std::uint64_t addr, std::uint32_t* out,
                                  std::size_t count) = 0;

  /// Write-back path: writes `count` consecutive aligned words (a dirty
  /// line evicted by the level above). Same one-line constraint as
  /// fetch_block. Returns the request latency in cycles.
  virtual std::size_t writeback_block(std::uint64_t addr,
                                      const std::uint32_t* words,
                                      std::size_t count) = 0;

  /// Single-word read: the detected-uncorrectable fallback path.
  [[nodiscard]] virtual std::uint32_t load_word(std::uint64_t addr) = 0;

  /// Single-word write (write-through stores). Returns latency in cycles.
  virtual std::size_t store_word(std::uint64_t addr, std::uint32_t value) = 0;

  /// Lifecycle, driven top-down by sim::System (L1s first, then L2, ...).
  virtual void set_mode(power::Mode mode) = 0;
  virtual ScrubReport scrub() = 0;
  virtual void flush() = 0;
  virtual void reset() = 0;

  /// Stats/energy snapshot since the last clear_level_counters().
  [[nodiscard]] virtual LevelStats level_stats() const = 0;
  virtual void clear_level_counters() = 0;
};

/// Main memory wrapped as the terminal level of a hierarchy chain: fixed
/// access latency, no energy model (the paper accounts memory energy in
/// the core model), and no mode/scrub behaviour.
class MainMemoryLevel final : public MemoryLevel {
 public:
  MainMemoryLevel(MainMemory& memory, std::size_t latency_cycles,
                  std::string name = "MEM");

  [[nodiscard]] const std::string& level_name() const noexcept override {
    return name_;
  }
  std::size_t fetch_block(std::uint64_t addr, std::uint32_t* out,
                          std::size_t count) override;
  std::size_t writeback_block(std::uint64_t addr, const std::uint32_t* words,
                              std::size_t count) override;
  [[nodiscard]] std::uint32_t load_word(std::uint64_t addr) override;
  std::size_t store_word(std::uint64_t addr, std::uint32_t value) override;

  void set_mode(power::Mode) override {}
  ScrubReport scrub() override { return {}; }
  void flush() override {}
  void reset() override {}

  [[nodiscard]] LevelStats level_stats() const override;
  void clear_level_counters() override;

  [[nodiscard]] std::size_t latency_cycles() const noexcept {
    return latency_cycles_;
  }
  [[nodiscard]] MainMemory& memory() noexcept { return memory_; }

 private:
  MainMemory& memory_;
  std::size_t latency_cycles_;
  std::string name_;
  std::uint64_t fetches_ = 0;
  std::uint64_t writebacks_ = 0;
  std::uint64_t word_reads_ = 0;
  std::uint64_t word_writes_ = 0;
};

}  // namespace hvc::cache
