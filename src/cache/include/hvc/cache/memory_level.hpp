// Composable memory-hierarchy levels.
//
// A MemoryLevel is anything a cache can miss into: another cache (the
// shared L2), or main memory wrapped as the terminal level. The interface
// carries the three paths a level must serve — line fill, dirty
// write-back, and single-word fallback (write-through stores and
// detected-uncorrectable reads) — plus the demand-access entry points the
// CPU model drives (scalar access() and block-at-a-time access_batch()),
// the lifecycle operations the hybrid-voltage system drives top-down
// (mode switch, scrub, flush, reset) and a uniform per-level stats
// snapshot for reporting.
//
// Latency contract (single AccessResult-style convention for every entry
// point, scalar and batch):
//   * Every latency this interface returns or reports is the latency of
//     ONE request in cycles, *including* every deeper level the request
//     had to reach — an L1 miss simply adds its next level's return value
//     to its own hit latency, a shared-level arbiter composes its queueing
//     delay the same way.
//   * fetch_block / writeback_block / store_word return that latency
//     directly; access() reports it as AccessResult::latency_cycles; the
//     batch path reports it per request in BatchOp::latency_cycles.
//   * load_word is the one exception: it is the detected-uncorrectable
//     fallback path, whose latency is already accounted by the request
//     that triggered it, so it returns data only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hvc/power/cache_power.hpp"

namespace hvc::cache {

class MainMemory;

enum class AccessType { kLoad, kStore, kIfetch };

[[nodiscard]] std::string to_string(AccessType type);

/// Outcome of one access (scalar entry point). The batch path reports the
/// subset the CPU timing model consumes (hit + latency) per BatchOp; the
/// full detail below stays available through access().
struct AccessResult {
  bool hit = false;
  std::size_t way = 0;
  std::size_t latency_cycles = 0;
  std::uint32_t data = 0;       ///< loaded word (loads/ifetch)
  bool writeback = false;       ///< a dirty victim was written back
  std::size_t corrected_bits = 0;
  bool detected_uncorrectable = false;
};

/// One decoded request of an access block: the input fields mirror the
/// scalar access() arguments; the output fields are filled by
/// access_batch() with the same values the scalar path would report.
struct BatchOp {
  std::uint64_t addr = 0;
  AccessType type = AccessType::kLoad;
  std::uint32_t store_value = 0;
  // --- outputs (written by access_batch) ---
  std::uint32_t latency_cycles = 0;
  bool hit = false;
};

/// A block of decoded requests processed by one access_batch() call, in
/// op order — batching changes dispatch overhead, never semantics: the
/// ops' side effects (stats, energy accumulation order, fault and
/// replacement state) are bit-identical to issuing each op through the
/// scalar access() path. The vector is reusable across blocks (clear() +
/// push() without reallocation).
struct AccessBatch {
  std::vector<BatchOp> ops;

  BatchOp& push(std::uint64_t addr, AccessType type,
                std::uint32_t store_value = 0) {
    ops.push_back(BatchOp{addr, type, store_value, 0, false});
    return ops.back();
  }
  void clear() noexcept { ops.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return ops.size(); }
};

/// Result of one scrub pass over a level (no-op levels report zeros).
struct ScrubReport {
  std::size_t lines_scrubbed = 0;
  std::size_t bits_corrected = 0;
  std::size_t uncorrectable = 0;
  std::size_t data_loss = 0;  ///< dirty lines that could not be recovered
};

/// Uniform per-level counters/energy snapshot for hierarchy reporting.
/// Caches fill every field; the memory terminal reports its traffic with
/// hits == accesses (memory always "hits") and zero energy/leakage.
struct LevelStats {
  std::string name;
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t fills = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t edc_corrections = 0;
  std::uint64_t edc_detected = 0;
  /// Arbitration counters — zero except for shared levels wrapped in an
  /// ArbitratedLevel (see hvc/cache/arbiter.hpp).
  std::uint64_t contended_requests = 0;  ///< requests that queued (delay > 0)
  std::uint64_t contention_cycles = 0;   ///< total queueing delay added
  double dynamic_energy_j = 0.0;  ///< accumulated since last clear
  double edc_energy_j = 0.0;      ///< accumulated since last clear
  double leakage_w = 0.0;         ///< static power at the current mode
  double area_um2 = 0.0;

  [[nodiscard]] double hit_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }
};

/// Abstract next-level interface of the memory hierarchy.
class MemoryLevel {
 public:
  virtual ~MemoryLevel() = default;

  [[nodiscard]] virtual const std::string& level_name() const noexcept = 0;

  /// One demand access at this level (the latency contract above). The
  /// default synthesizes the access from the word virtuals — levels that
  /// always service a request (memory terminals, decorators) report
  /// hit = true; Cache overrides this with the full tag/EDC datapath.
  virtual AccessResult access(std::uint64_t addr, AccessType type,
                              std::uint32_t store_value = 0);

  /// Block-at-a-time entry point over `batch.ops`, in order. The default
  /// loops the scalar access() virtual, so every MemoryLevel (including
  /// out-of-tree ones) supports batch callers unchanged; Cache overrides
  /// it with a batch-resolved fast path that is pinned bit-identical to
  /// the scalar loop (see tests/test_batch.cpp).
  virtual void access_batch(AccessBatch& batch);

  /// Fill path: reads `count` consecutive aligned 32-bit words starting at
  /// `addr` into `out`. For cache levels the range must not cross one of
  /// this level's lines (callers fetch one line at a time). Returns the
  /// request latency in cycles per the contract above.
  virtual std::size_t fetch_block(std::uint64_t addr, std::uint32_t* out,
                                  std::size_t count) = 0;

  /// Write-back path: writes `count` consecutive aligned words (a dirty
  /// line evicted by the level above). Same one-line constraint as
  /// fetch_block. Returns the request latency in cycles.
  virtual std::size_t writeback_block(std::uint64_t addr,
                                      const std::uint32_t* words,
                                      std::size_t count) = 0;

  /// Single-word read: the detected-uncorrectable fallback path (no
  /// latency return — see the contract above).
  [[nodiscard]] virtual std::uint32_t load_word(std::uint64_t addr) = 0;

  /// Single-word write (write-through stores). Returns latency in cycles.
  virtual std::size_t store_word(std::uint64_t addr, std::uint32_t value) = 0;

  /// Lifecycle, driven top-down by sim::System (L1s first, then L2, ...).
  virtual void set_mode(power::Mode mode) = 0;
  virtual ScrubReport scrub() = 0;
  virtual void flush() = 0;
  virtual void reset() = 0;

  /// Stats/energy snapshot since the last clear_level_counters().
  [[nodiscard]] virtual LevelStats level_stats() const = 0;
  virtual void clear_level_counters() = 0;
};

/// Main memory wrapped as the terminal level of a hierarchy chain: fixed
/// access latency, no energy model (the paper accounts memory energy in
/// the core model), and no mode/scrub behaviour.
class MainMemoryLevel final : public MemoryLevel {
 public:
  MainMemoryLevel(MainMemory& memory, std::size_t latency_cycles,
                  std::string name = "MEM");

  [[nodiscard]] const std::string& level_name() const noexcept override {
    return name_;
  }
  /// Memory always hits: reports the flat access latency for loads and
  /// stores alike (the default would report the word-read path's zero).
  AccessResult access(std::uint64_t addr, AccessType type,
                      std::uint32_t store_value = 0) override;
  std::size_t fetch_block(std::uint64_t addr, std::uint32_t* out,
                          std::size_t count) override;
  std::size_t writeback_block(std::uint64_t addr, const std::uint32_t* words,
                              std::size_t count) override;
  [[nodiscard]] std::uint32_t load_word(std::uint64_t addr) override;
  std::size_t store_word(std::uint64_t addr, std::uint32_t value) override;

  void set_mode(power::Mode) override {}
  ScrubReport scrub() override { return {}; }
  void flush() override {}
  void reset() override {}

  [[nodiscard]] LevelStats level_stats() const override;
  void clear_level_counters() override;

  [[nodiscard]] std::size_t latency_cycles() const noexcept {
    return latency_cycles_;
  }
  [[nodiscard]] MainMemory& memory() noexcept { return memory_; }

 private:
  MainMemory& memory_;
  std::size_t latency_cycles_;
  std::string name_;
  std::uint64_t fetches_ = 0;
  std::uint64_t writebacks_ = 0;
  std::uint64_t word_reads_ = 0;
  std::uint64_t word_writes_ = 0;
};

}  // namespace hvc::cache
