// Arbitration for shared memory-hierarchy levels.
//
// When several cores' private L1s miss into one shared level (the L2, or
// the memory terminal of an L2-less chip), their requests contend for its
// single port. ArbitratedLevel decorates any MemoryLevel with a pluggable
// contention model: the multi-core interleaver (sim::System::run_mix)
// declares the requesting core before each step and closes a round after
// stepping every core once; within a round, a request queues behind the
// occupancy other requesters have already claimed. The queueing delay is
// composed into the level's latency returns — exactly like a deeper miss
// — so L2 pressure lengthens stalls and shows up in cycles and EPI.
//
// Determinism: the model is a pure function of the request sequence (no
// clocks, no randomness), so multi-core runs stay reproducible and the
// explorer's any-thread-count byte-identity guarantee extends to them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "hvc/cache/memory_level.hpp"
#include "hvc/common/error.hpp"

namespace hvc::cache {

/// Pluggable contention model: converts the occupancy a request found in
/// front of it into a queueing delay.
class ArbitrationModel {
 public:
  virtual ~ArbitrationModel() = default;

  /// Delay (cycles) for a request that found `other_requests` requests
  /// from other requesters already granted this round, together occupying
  /// the level for `busy_cycles` of service time.
  [[nodiscard]] virtual std::size_t queue_delay(
      std::size_t other_requests, std::size_t busy_cycles) const = 0;

  /// Devirtualization seam for the per-grant hot path (the multicore
  /// interleaver grants once per shared-level request): a model whose
  /// queue_delay is one of the closed forms below declares it, and
  /// ArbitratedLevel::grant computes the delay inline instead of making
  /// the virtual call. The closed form must be exactly queue_delay's
  /// return — out-of-tree models keep the default and stay on the
  /// virtual path, bit-identically.
  enum class Seam {
    kGeneric,     ///< call the virtual queue_delay
    kSinglePort,  ///< delay == busy_cycles
    kFree,        ///< delay == 0
  };
  [[nodiscard]] virtual Seam seam() const noexcept { return Seam::kGeneric; }
};

/// Single-ported level: a request waits out the full service time of every
/// other requester granted before it in the round.
class SinglePortArbitration final : public ArbitrationModel {
 public:
  [[nodiscard]] std::size_t queue_delay(
      std::size_t /*other_requests*/,
      std::size_t busy_cycles) const override {
    return busy_cycles;
  }
  [[nodiscard]] Seam seam() const noexcept override {
    return Seam::kSinglePort;
  }
};

/// Ideally multi-ported level: no contention (isolates the energy effect
/// of sharing from the timing effect in sweeps).
class FreeArbitration final : public ArbitrationModel {
 public:
  [[nodiscard]] std::size_t queue_delay(std::size_t /*other_requests*/,
                                        std::size_t /*busy_cycles*/)
      const override {
    return 0;
  }
  [[nodiscard]] Seam seam() const noexcept override { return Seam::kFree; }
};

/// Switched capacitance of the arbitration hardware itself (grant logic
/// per request, request-buffer hold per queued cycle); charged at the
/// current mode's Vcc and reported as the "contention.<level>" category.
struct ArbiterEnergy {
  double cap_per_grant_f = 2e-14;
  double cap_per_queued_cycle_f = 5e-15;
};

/// Decorator serializing one shared MemoryLevel between N requesters.
///
/// Protocol (driven by the round-robin interleaver):
///   begin_request(r) — requester r is about to issue zero or more
///                      requests (called once per interleaver step);
///   new_round()      — every requester has been stepped once; per-round
///                      occupancy resets.
/// Requests forwarded outside any begin_request() window (single-core
/// convenience paths) are attributed to requester 0.
class ArbitratedLevel final : public MemoryLevel {
 public:
  ArbitratedLevel(MemoryLevel& inner, std::size_t requesters, double vcc,
                  std::unique_ptr<ArbitrationModel> model =
                      std::make_unique<SinglePortArbitration>(),
                  ArbiterEnergy energy = {});

  /// Declares the requester of the next forwarded request(s). Called once
  /// per interleaver step — one record per core per round — so it is
  /// inline and branch-free beyond the range check.
  void begin_request(std::size_t requester) {
    expects(requester < grants_.size(), "requester id out of range");
    current_ = requester;
  }
  /// Closes a round in O(1): per-requester occupancy is reset lazily by
  /// bumping the round sequence number — a grant that finds its
  /// requester's stamp stale zeroes that entry before using it (see
  /// grant()), so the per-round clear loop never runs in the hot path.
  void new_round() noexcept {
    ++round_seq_;
    round_busy_total_ = 0;
    round_requests_total_ = 0;
    round_opened_ = false;
  }

  /// Operating voltage for the arbitration-energy model (updated on mode
  /// switches by sim::System).
  void set_vcc(double vcc) noexcept {
    vcc_ = vcc;
    uncontended_grant_j_ = energy_.cap_per_grant_f * vcc * vcc;
  }

  [[nodiscard]] const std::string& level_name() const noexcept override {
    return inner_.level_name();
  }
  /// Scalar demand access through the arbiter: the inner level's latency
  /// composed with this request's queueing delay. (The batch entry point
  /// is inherited: the default scalar loop IS the exact path here, since
  /// arbitration is ordering-sensitive by construction.)
  AccessResult access(std::uint64_t addr, AccessType type,
                      std::uint32_t store_value = 0) override;
  std::size_t fetch_block(std::uint64_t addr, std::uint32_t* out,
                          std::size_t count) override;
  std::size_t writeback_block(std::uint64_t addr, const std::uint32_t* words,
                              std::size_t count) override;
  [[nodiscard]] std::uint32_t load_word(std::uint64_t addr) override;
  std::size_t store_word(std::uint64_t addr, std::uint32_t value) override;

  void set_mode(power::Mode mode) override { inner_.set_mode(mode); }
  ScrubReport scrub() override { return inner_.scrub(); }
  void flush() override { inner_.flush(); }
  void reset() override { inner_.reset(); }

  /// Inner level's snapshot with the contention counters filled in.
  [[nodiscard]] LevelStats level_stats() const override;
  void clear_level_counters() override;

  // --- contention introspection (tests, reports) ---
  [[nodiscard]] std::uint64_t contention_cycles() const noexcept {
    return contention_cycles_;
  }
  [[nodiscard]] std::uint64_t contended_requests() const noexcept {
    return contended_requests_;
  }
  /// Requests granted per requester since the last counter clear.
  [[nodiscard]] const std::vector<std::uint64_t>& grants() const noexcept {
    return grants_;
  }
  /// Rounds in which this requester was granted first (zero queueing); the
  /// interleaver's rotation keeps these within 1 of each other under
  /// uniform demand.
  [[nodiscard]] const std::vector<std::uint64_t>& priority_grants()
      const noexcept {
    return priority_grants_;
  }
  /// Energy spent by the arbitration hardware itself (J since last clear).
  [[nodiscard]] double arbitration_energy_j() const noexcept {
    return arbitration_energy_j_;
  }
  [[nodiscard]] std::size_t requesters() const noexcept {
    return grants_.size();
  }
  [[nodiscard]] MemoryLevel& inner() noexcept { return inner_; }

 private:
  /// Applies the contention model to one granted request of `service`
  /// cycles; returns the composed (queue + service) latency. The word
  /// fallback path has no latency return to compose into, so it passes
  /// `latency_applies = false`: the grant still occupies the round (and
  /// counts), but no queueing delay is recorded or charged.
  [[nodiscard]] std::size_t grant(std::size_t service_cycles,
                                  bool latency_applies = true);

  MemoryLevel& inner_;
  std::unique_ptr<ArbitrationModel> model_;
  /// model_->seam(), resolved once at construction: the per-grant queue
  /// delay of the built-in models is computed inline from it.
  ArbitrationModel::Seam seam_ = ArbitrationModel::Seam::kGeneric;
  ArbiterEnergy energy_;
  double vcc_;
  /// Pre-resolved (cap_per_grant * vcc^2): the energy of a grant with
  /// zero queued cycles. Bit-identical to evaluating the full expression
  /// with delay == 0 — the delay term multiplies to +0.0 and adding +0.0
  /// to the positive grant term is exact in IEEE arithmetic — so the hot
  /// uncontended path charges one precomputed double; contended grants
  /// keep the full expression verbatim.
  double uncontended_grant_j_ = 0.0;
  std::size_t current_ = 0;
  /// Per-round occupancy: service cycles and request count per requester,
  /// valid only where round_stamp_ matches round_seq_ (epoch-lazy reset:
  /// new_round() bumps the sequence instead of clearing the arrays).
  std::vector<std::uint64_t> round_busy_;
  std::vector<std::uint64_t> round_requests_;
  std::vector<std::uint64_t> round_stamp_;
  std::uint64_t round_seq_ = 0;
  std::uint64_t round_busy_total_ = 0;
  std::uint64_t round_requests_total_ = 0;
  bool round_opened_ = false;  ///< a request was granted this round
  std::vector<std::uint64_t> grants_;
  std::vector<std::uint64_t> priority_grants_;
  std::uint64_t contended_requests_ = 0;
  std::uint64_t contention_cycles_ = 0;
  double arbitration_energy_j_ = 0.0;
};

}  // namespace hvc::cache
