#include "hvc/tech/sram_cell.hpp"

#include <algorithm>
#include <cmath>

#include "hvc/common/error.hpp"

namespace hvc::tech {

namespace {

/// Standard normal upper-tail probability Q(z) = P(X > z).
[[nodiscard]] double q_function(double z) noexcept {
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

[[nodiscard]] CellTraits make_6t() {
  CellTraits t;
  t.kind = CellKind::k6T;
  t.transistors = 6;
  t.area_factor = 1.0;
  t.dynamic_cap_factor = 1.0;
  t.leakage_width_factor = 1.0;
  // 6T read stability collapses quickly below ~0.7 V: margin zero at 0.35 V
  // nominal, and the highest mismatch sensitivity of the three cells.
  t.read = {0.26, 0.35, {0.9, -0.7, 0.5, -0.5, 0.3, -0.3}};
  t.write = {0.34, 0.18, {0.7, -0.6, 0.5, -0.4, 0.3, -0.2}};
  return t;
}

[[nodiscard]] CellTraits make_8t() {
  CellTraits t;
  t.kind = CellKind::k8T;
  t.transistors = 8;
  t.area_factor = 1.25;  // ~25% over 6T at iso-sizing (Morita ISLPED'07)
  t.dynamic_cap_factor = 1.15;
  t.leakage_width_factor = 1.25;
  // Read-decoupled port removes read disturb: much lower v0 than 6T, but
  // still less robust than the Schmitt-trigger cell near threshold.
  t.read = {0.52, 0.16, {0.8, -0.6, 0.5, -0.4, 0.3, -0.3, 0.2, -0.2}};
  t.write = {0.46, 0.14, {0.7, -0.6, 0.5, -0.5, 0.3, -0.2, 0.2, -0.1}};
  return t;
}

[[nodiscard]] CellTraits make_10t() {
  CellTraits t;
  t.kind = CellKind::k10T;
  t.transistors = 10;
  t.area_factor = 1.7;  // Schmitt-trigger feedback devices + extra stack
  // The ST cell's internal nodes are mostly shielded from the bitlines, so
  // its switched capacitance grows moderately — but its feedback devices
  // and raised internal nodes leak continuously, so the leakage penalty is
  // steep. This is why the paper sees larger leakage savings than dynamic
  // savings when 10T is replaced (Section IV-B2).
  t.dynamic_cap_factor = 1.55;
  t.leakage_width_factor = 3.0;
  // Best read stability at near-threshold (Kulkarni ISLPED'07); writes
  // fight the hysteresis, making the write margin the sizing-critical one
  // at 350 mV, though still better than the other cells' margins there.
  t.read = {0.56, 0.12,
            {0.6, -0.5, 0.45, -0.4, 0.35, -0.3, 0.25, -0.2, 0.15, -0.1}};
  t.write = {0.50, 0.14,
             {0.7, -0.6, 0.45, -0.35, 0.3, -0.25, 0.2, -0.15, 0.1, -0.1}};
  return t;
}

}  // namespace

std::string to_string(CellKind kind) {
  switch (kind) {
    case CellKind::k6T: return "6T";
    case CellKind::k8T: return "8T";
    case CellKind::k10T: return "10T";
  }
  return "?";
}

double MarginModel::sensitivity_norm() const noexcept {
  double sum = 0.0;
  for (const auto s : sensitivities) {
    sum += s * s;
  }
  return std::sqrt(sum);
}

const CellTraits& cell_traits(CellKind kind) {
  static const CellTraits t6 = make_6t();
  static const CellTraits t8 = make_8t();
  static const CellTraits t10 = make_10t();
  switch (kind) {
    case CellKind::k6T: return t6;
    case CellKind::k8T: return t8;
    case CellKind::k10T: return t10;
  }
  throw PreconditionError("unknown cell kind");
}

std::string CellDesign::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s@%.2fx", tech::to_string(kind).c_str(),
                size);
  return buf;
}

double worst_margin(const CellDesign& cell, double vcc,
                    std::span<const double> vt_shifts) {
  const CellTraits& traits = cell_traits(cell.kind);
  expects(vt_shifts.size() == traits.transistors,
          "worst_margin: Vt shift vector size mismatch");
  double read = traits.read.mean(vcc);
  double write = traits.write.mean(vcc);
  for (std::size_t i = 0; i < vt_shifts.size(); ++i) {
    read -= traits.read.sensitivities[i] * vt_shifts[i];
    write -= traits.write.sensitivities[i] * vt_shifts[i];
  }
  return std::min(read, write);
}

double cell_vt_sigma(const CellDesign& cell, const TechNode& node) {
  expects(cell.size >= 1.0, "cell size multiplier must be >= 1");
  return node.vth_sigma_min_mv * 1e-3 / std::sqrt(cell.size);
}

double analytic_pfail(const CellDesign& cell, double vcc,
                      const TechNode& node) {
  const CellTraits& traits = cell_traits(cell.kind);
  const double sigma_vt = cell_vt_sigma(cell, node);
  const double z_read =
      traits.read.mean(vcc) / (traits.read.sensitivity_norm() * sigma_vt);
  const double z_write =
      traits.write.mean(vcc) / (traits.write.sensitivity_norm() * sigma_vt);
  // Union bound over the two (correlated) failure modes, capped at 1.
  return std::min(1.0, q_function(z_read) + q_function(z_write));
}

double cell_area_f2(const CellDesign& cell, const TechNode& node) {
  const CellTraits& traits = cell_traits(cell.kind);
  // Half the layout (wells, contacts, spacing) is fixed; the device strips
  // scale with the width multiplier.
  return node.cell6t_area_f2 * traits.area_factor * (0.5 + 0.5 * cell.size);
}

CellElectrical cell_electrical(const CellDesign& cell, double vcc,
                               const TechNode& node) {
  const CellTraits& traits = cell_traits(cell.kind);
  const TransistorModel model(node);
  const Device dev{cell.size};

  CellElectrical e;
  // One access-transistor drain per bitline; type factor folds in extra
  // ports/stacks (8T read port, 10T feedback devices).
  e.bitline_cap_f = model.cdrain(dev) * traits.dynamic_cap_factor;
  e.wordline_cap_f = model.cgate(dev) * traits.dynamic_cap_factor;
  e.internal_cap_f =
      (model.cgate(dev) + model.cdrain(dev)) * traits.dynamic_cap_factor;
  e.leakage_a = model.ioff(dev, vcc) * traits.leakage_width_factor;
  e.read_current_a = model.ion(dev, vcc);
  return e;
}

double soft_error_rate_per_bit(const CellDesign& cell, double vcc,
                               const TechNode& node) {
  const CellTraits& traits = cell_traits(cell.kind);
  const TransistorModel model(node);
  const Device dev{cell.size};
  // Critical charge ~ storage-node capacitance * Vcc, normalised to a
  // minimum 6T cell at nominal vdd.
  const Device min_dev{1.0};
  const double qcrit = (model.cgate(dev) + model.cdrain(dev)) *
                       traits.dynamic_cap_factor * vcc;
  const double qref = (model.cgate(min_dev) + model.cdrain(min_dev)) * 1.0 *
                      node.vdd_nominal;
  // ~1e-3 FIT/bit reference -> per-second rate, exponential in Qcrit.
  constexpr double kRefRate = 1e-3 / (1e9 * 3600.0);
  return kRefRate * std::exp(-(qcrit / qref - 1.0) / 0.30);
}

}  // namespace hvc::tech
