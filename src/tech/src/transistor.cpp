#include "hvc/tech/transistor.hpp"

#include <algorithm>
#include <cmath>

namespace hvc::tech {

double TransistorModel::width_um(const Device& dev) const noexcept {
  return dev.width_mult * node_.min_width_nm * 1e-3;
}

double TransistorModel::vth_eff(const Device& dev) const noexcept {
  const double drop =
      node_.rnce_mv_per_efold * 1e-3 * std::log(std::max(dev.width_mult, 1.0));
  return node_.vth0 - drop;
}

double TransistorModel::ion(const Device& dev, double vcc) const noexcept {
  const double w = width_um(dev);
  const double vth = vth_eff(dev);
  const double phi = node_.subthreshold_n * node_.thermal_voltage;
  // Current at Vgs = Vth, anchored to a fraction of the full-on current
  // (the usual ~2-5% "spec current" convention).
  const double i_at_vth =
      node_.ion_per_um_ua * 1e-6 * w * node_.sub_vt_anchor;
  if (vcc <= vth) {
    // Sub-threshold: exponential in (Vgs - Vth).
    return i_at_vth * std::exp((vcc - vth) / phi);
  }
  // Super-threshold alpha-power law; adding the anchor keeps the curve
  // continuous and strictly monotonic through Vth.
  const double overdrive = vcc - vth;
  const double nominal_overdrive = node_.vdd_nominal - node_.vth0;
  const double i_sat = node_.ion_per_um_ua * 1e-6 * w *
                       std::pow(overdrive / nominal_overdrive,
                                node_.alpha_power);
  return i_sat + i_at_vth;
}

double TransistorModel::ioff(const Device& dev, double vcc) const noexcept {
  const double w = width_um(dev);
  const double phi = node_.subthreshold_n * node_.thermal_voltage;
  const double vth = vth_eff(dev);
  // DIBL: threshold reduces with drain bias; reference is nominal vdd.
  const double vth_dibl = vth - node_.dibl * (vcc - node_.vdd_nominal);
  return node_.ioff_per_um_na * 1e-9 * w *
         std::exp((node_.vth0 - vth_dibl) / phi);
}

double TransistorModel::cgate(const Device& dev) const noexcept {
  return node_.cgate_ff_per_um * 1e-15 * width_um(dev);
}

double TransistorModel::cdrain(const Device& dev) const noexcept {
  return node_.cdrain_ff_per_um * 1e-15 * width_um(dev);
}

double TransistorModel::vth_sigma(const Device& dev) const noexcept {
  return node_.vth_sigma_min_mv * 1e-3 / std::sqrt(std::max(dev.width_mult, 1e-3));
}

double TransistorModel::gate_delay(const Device& dev, double cload,
                                   double vcc) const noexcept {
  const double current = ion(dev, vcc);
  if (current <= 0.0) {
    return 1.0;  // effectively non-functional
  }
  return cload * vcc / current;
}

LogicFigures xor_gate_figures(const TechNode& node, double vcc) {
  const TransistorModel model(node);
  // A static CMOS XOR2 is ~10-12 transistors; model as an equivalent
  // 4-device switched capacitance with 1.5x min width.
  const Device dev{1.5};
  const double cswitch = 4.0 * (model.cgate(dev) + model.cdrain(dev));
  LogicFigures figures;
  figures.switch_energy_j = cswitch * vcc * vcc;
  // Two leak paths on average across input states.
  figures.leakage_w = 2.0 * model.ioff(dev, vcc) * vcc;
  figures.delay_s = model.gate_delay(dev, cswitch, vcc);
  return figures;
}

}  // namespace hvc::tech
