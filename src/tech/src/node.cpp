#include "hvc/tech/node.hpp"

namespace hvc::tech {

const TechNode& node32() {
  static const TechNode node{};
  return node;
}

}  // namespace hvc::tech
