// SRAM bitcell models: differential 6T, read-decoupled 8T and
// Schmitt-trigger 10T (paper references [16] Morita 8T, [12] Kulkarni 10T).
//
// Each cell kind carries:
//  * static margin models (read stability / writability) as linear
//    functions of Vcc, plus per-transistor sensitivity vectors that turn
//    threshold-voltage mismatch samples into margin shifts. Failure of a
//    cell = any margin below zero. This is the model the Chen-style
//    importance-sampling yield analysis (hvc::yield) evaluates.
//  * electrical factors (switched capacitance, leakage width, area) that
//    feed the CACTI-like array model (hvc::power).
//
// "size" is a single width multiplier applied to every device in the cell,
// which is how the paper's methodology (Fig. 2) upsizes cells: Vt sigma
// shrinks with sqrt(size) (Pelgrom), capacitance and leakage grow.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "hvc/tech/transistor.hpp"

namespace hvc::tech {

enum class CellKind {
  k6T,   ///< differential 6T, HP ways
  k8T,   ///< read-decoupled 8T, proposed ULE ways
  k10T,  ///< Schmitt-trigger 10T, baseline ULE ways
};

[[nodiscard]] std::string to_string(CellKind kind);

/// Margin model: margin(vcc) = slope * (vcc - v0), failing when the
/// mismatch-induced shift exceeds it.
struct MarginModel {
  double slope = 0.0;  ///< V of margin per V of supply
  double v0 = 0.0;     ///< supply at which the nominal margin hits zero
  /// Sensitivity of this margin to each transistor's Vt shift (unitless
  /// weights; margin shift = -sum(weights[i] * dVt[i])).
  std::vector<double> sensitivities;

  [[nodiscard]] double mean(double vcc) const noexcept {
    return slope * (vcc - v0);
  }
  /// L2 norm of the sensitivity vector: margin sigma = norm * vt_sigma.
  [[nodiscard]] double sensitivity_norm() const noexcept;
};

/// Static description of one bitcell flavour.
struct CellTraits {
  CellKind kind = CellKind::k6T;
  std::size_t transistors = 6;
  /// Cell area at minimum sizing, relative to a minimum 6T cell.
  double area_factor = 1.0;
  /// Switched capacitance per access relative to 6T per unit width
  /// (wordline + bitline + internal nodes).
  double dynamic_cap_factor = 1.0;
  /// Total leaking width relative to 6T per unit width multiplier.
  double leakage_width_factor = 1.0;
  MarginModel read;
  MarginModel write;
};

[[nodiscard]] const CellTraits& cell_traits(CellKind kind);

/// A concrete, sized bitcell instance as produced by the design
/// methodology: a kind plus the uniform width multiplier.
struct CellDesign {
  CellKind kind = CellKind::k6T;
  double size = 1.0;  ///< width multiplier >= 1

  [[nodiscard]] std::string to_string() const;
};

/// Evaluates both margins for one Monte-Carlo sample of per-transistor Vt
/// shifts (length must equal cell_traits(kind).transistors). Returns the
/// worst (minimum) margin; the cell is faulty when it is negative.
[[nodiscard]] double worst_margin(const CellDesign& cell, double vcc,
                                  std::span<const double> vt_shifts);

/// Closed-form cell hard-failure probability at `vcc`: union bound over
/// the Gaussian read/write margin tails. Used as the fast path; the
/// importance-sampling estimator in hvc::yield validates it.
[[nodiscard]] double analytic_pfail(const CellDesign& cell, double vcc,
                                    const TechNode& node = node32());

/// Per-transistor Vt sigma for this cell's sizing (Pelgrom).
[[nodiscard]] double cell_vt_sigma(const CellDesign& cell,
                                   const TechNode& node = node32());

/// Cell area in F^2. Peripheral-independent: scales linearly with the
/// width multiplier on top of a fixed layout overhead.
[[nodiscard]] double cell_area_f2(const CellDesign& cell,
                                  const TechNode& node = node32());

/// Electrical figures the array model consumes.
struct CellElectrical {
  double bitline_cap_f = 0.0;   ///< drain load added to the bitline
  double wordline_cap_f = 0.0;  ///< gate load added to the wordline
  double internal_cap_f = 0.0;  ///< switched internal-node capacitance
  double leakage_a = 0.0;       ///< cell leakage current at the given vcc
  double read_current_a = 0.0;  ///< cell drive available to the bitline
};

[[nodiscard]] CellElectrical cell_electrical(const CellDesign& cell,
                                             double vcc,
                                             const TechNode& node = node32());

/// Soft-error rate per bit (errors/second) — scales inversely-exponentially
/// with critical charge ~ C*Vcc, so smaller cells at lower Vcc are hit
/// harder. Magnitudes follow the usual ~1e-3 FIT/bit ballpark at nominal.
[[nodiscard]] double soft_error_rate_per_bit(const CellDesign& cell,
                                             double vcc,
                                             const TechNode& node = node32());

}  // namespace hvc::tech
