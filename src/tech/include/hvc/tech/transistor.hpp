// Analytic MOSFET model: on-current (alpha-power law above threshold,
// exponential sub-threshold conduction below), off-current with DIBL and
// reverse narrow-channel effect, width-dependent Vt mismatch (Pelgrom).
//
// This is the substitution for the paper's HSPICE + 32 nm PTM stack; see
// DESIGN.md section 2.
#pragma once

#include "hvc/tech/node.hpp"

namespace hvc::tech {

/// A transistor instance: width as a multiple of the node's minimum width.
struct Device {
  double width_mult = 1.0;
};

class TransistorModel {
 public:
  explicit TransistorModel(const TechNode& node) : node_(node) {}

  /// Effective threshold voltage including the reverse narrow-channel
  /// effect (wider devices have slightly lower Vt -> superlinear leakage).
  [[nodiscard]] double vth_eff(const Device& dev) const noexcept;

  /// Drive current (A) at gate/drain voltage `vcc`. Smoothly spans the
  /// super-threshold alpha-power regime and sub-threshold exponential.
  [[nodiscard]] double ion(const Device& dev, double vcc) const noexcept;

  /// Leakage current (A) with the device nominally off at supply `vcc`.
  [[nodiscard]] double ioff(const Device& dev, double vcc) const noexcept;

  /// Gate capacitance (F).
  [[nodiscard]] double cgate(const Device& dev) const noexcept;

  /// Drain/junction capacitance (F).
  [[nodiscard]] double cdrain(const Device& dev) const noexcept;

  /// Vt mismatch sigma (V): Pelgrom scaling sigma0 / sqrt(W/Wmin).
  [[nodiscard]] double vth_sigma(const Device& dev) const noexcept;

  /// Rough gate delay (s) for driving load `cload` at supply `vcc`;
  /// explodes exponentially below threshold, which is what forces the
  /// 5 MHz ULE-mode frequency (paper IV-A2).
  [[nodiscard]] double gate_delay(const Device& dev, double cload,
                                  double vcc) const noexcept;

  [[nodiscard]] const TechNode& node() const noexcept { return node_; }

 private:
  [[nodiscard]] double width_um(const Device& dev) const noexcept;
  const TechNode& node_;
};

/// Electrical figures for a generic static CMOS gate (used for EDC
/// encoder/decoder cost; mirrors hvc::edc::GateFigures fields).
struct LogicFigures {
  double switch_energy_j = 0.0;
  double leakage_w = 0.0;
  double delay_s = 0.0;
};

/// Figures for a 2-input XOR built from near-minimum devices at `vcc`.
[[nodiscard]] LogicFigures xor_gate_figures(const TechNode& node, double vcc);

}  // namespace hvc::tech
