// 32 nm technology node description.
//
// The paper uses the 32 nm Predictive Technology Model (PTM) through HSPICE
// plus a modified CACTI 6.5. We substitute an analytic device model whose
// constants live here. Absolute values are representative of 32 nm
// published data (PTM, CACTI); what matters for the reproduction is that
// every trend the paper relies on (sub-threshold leakage exponentiality,
// Pelgrom Vt mismatch scaling, linear capacitance-with-width) is present.
#pragma once

#include <cstddef>

namespace hvc::tech {

/// Process/technology constants for one node.
struct TechNode {
  // --- geometry ---
  double feature_nm = 32.0;       ///< drawn gate length (nm)
  double min_width_nm = 48.0;     ///< minimum transistor width (nm)

  // --- electrostatics ---
  double vdd_nominal = 1.0;       ///< nominal supply (V)
  double vth0 = 0.42;             ///< nominal threshold voltage (V)
  double vth_sigma_min_mv = 35.0; ///< Vt sigma for a min-size device (mV)
  double subthreshold_n = 1.5;    ///< sub-threshold slope factor
  double thermal_voltage = 0.026; ///< kT/q at 300 K (V)
  double dibl = 0.08;             ///< DIBL coefficient (V/V)
  /// Reverse narrow-channel effect: Vth drop per e-fold of width increase
  /// (V). Makes leakage grow superlinearly with device width, which is why
  /// the oversized 10T cells pay an outsized leakage penalty (paper IV-B2).
  double rnce_mv_per_efold = 8.0;

  // --- currents / caps (per um of width) ---
  double ion_per_um_ua = 900.0;   ///< saturation current at vdd (uA/um)
  double ioff_per_um_na = 2.0;    ///< off current at vdd, nominal Vt (nA/um)
  /// Drive current at Vgs = Vth as a fraction of the full-on current;
  /// anchors the sub-threshold exponential so near-threshold delay slows
  /// by the ~100-200x that justifies 5 MHz ULE operation.
  double sub_vt_anchor = 0.03;
  double alpha_power = 1.3;       ///< alpha-power-law velocity saturation
  double cgate_ff_per_um = 0.9;   ///< gate capacitance (fF/um)
  double cdrain_ff_per_um = 0.6;  ///< drain/junction capacitance (fF/um)
  double cwire_ff_per_um = 0.20;  ///< wire capacitance (fF/um of wire)

  // --- SRAM cell footprints ---
  /// 6T cell area in F^2 (F = feature size) at minimum sizing; published
  /// 32 nm 6T cells are ~0.15-0.17 um^2 ~= 150-165 F^2.
  double cell6t_area_f2 = 150.0;
};

/// The default node used across the reproduction (paper Section III-B).
[[nodiscard]] const TechNode& node32();

}  // namespace hvc::tech
