// Trace capture for workload kernels.
//
// The paper drives its evaluation with MediaBench programs through the
// MPSim full-chip simulator. Our substitution: the workloads in
// hvc::wl are real codec kernels written against *traced memory* — typed
// arrays whose every element access is recorded — plus synthetic code
// blocks that emit instruction-fetch streams with realistic locality
// (small hot loops, larger cold prologues). The resulting trace is what
// the CPU timing model replays against the IL1/DL1 simulators.
//
// Address map: code starts at kCodeBase, data allocations at kDataBase;
// both grow upward and never overlap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "hvc/common/error.hpp"

namespace hvc::trace {

/// Default number of records pulled and stepped per block by the batch
/// replay paths (cpu::Core::run, sim::System::run_mix, hvc_trace replay
/// --block-size). 1 forces the record-at-a-time scalar path.
inline constexpr std::size_t kReplayBlockRecords = 256;

enum class Kind : std::uint8_t {
  kIfetch,  ///< one instruction fetch (one executed instruction)
  kLoad,    ///< data read
  kStore,   ///< data write
  kBranch,  ///< control-flow marker at the end of a block (no cache access)
};

struct Record {
  Kind kind = Kind::kIfetch;
  bool taken = false;  ///< for kBranch: backward/taken branch
  std::uint64_t addr = 0;
};

/// Aggregate shape of a trace (used by tests and reports).
struct TraceStats {
  std::uint64_t instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;
  std::uint64_t taken_branches = 0;
  std::uint64_t data_footprint_bytes = 0;
  std::uint64_t code_footprint_bytes = 0;
};

class Tracer;

/// Pull interface over a stream of trace records. The CPU timing model
/// (cpu::Core::run, sim::System::run_trace/run_mix) consumes traces
/// through this interface only, one record at a time, so a replay's
/// memory footprint is bounded by the source's own window — an on-disk
/// trace of any length replays without materializing a std::vector of
/// every record (see TraceFileSource in trace_file.hpp).
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Pulls the next record into `out`; returns false at end of trace
  /// (and leaves `out` untouched).
  virtual bool next(Record& out) = 0;

  /// Pulls up to `max` records into `out`; returns how many were
  /// delivered (< max only at end of trace). Equivalent to `max` next()
  /// calls — the default is exactly that loop — but overridable so
  /// sources can amortize per-record dispatch/decode across a block
  /// (MemoryTraceSource copies a span, TraceFileSource decodes a run of
  /// varints without per-record virtual calls).
  virtual std::size_t next_batch(Record* out, std::size_t max) {
    std::size_t produced = 0;
    while (produced < max && next(out[produced])) {
      ++produced;
    }
    return produced;
  }

  /// Exact number of records the source will deliver after a reset(), or
  /// 0 when unknown. Drivers use it for progress/reservation only, never
  /// for termination — next() returning false ends a replay.
  [[nodiscard]] virtual std::uint64_t size_hint() const noexcept = 0;

  /// Rewinds to the first record (replay-many).
  virtual void reset() = 0;
};

// ---------------------------------------------------------------------
// .hvct on-disk trace format, version 1 (implemented in trace_file.hpp)
// ---------------------------------------------------------------------
// A .hvct file is header + payload + footer, all integers little-endian:
//
//   header (12 bytes):
//     bytes 0-3   magic "HVCT"
//     bytes 4-5   u16 format version (currently 1)
//     bytes 6-7   u16 flags (must be 0 in version 1)
//     bytes 8-11  u32 reserved (0)
//
//   payload: one entry per record, in trace order:
//     tag byte:   bits 0-1  kind (0 = ifetch, 1 = load, 2 = store,
//                           3 = branch)
//                 bit 2     taken (branch records only; must be 0 for
//                           every other kind)
//                 bits 3-7  reserved, must be 0
//     address:    LEB128 varint of the zigzag-encoded signed delta from
//                 the previous address of the same stream class. Two
//                 delta chains run through the payload: ifetch/branch
//                 records delta against the last *code* address,
//                 load/store records against the last *data* address;
//                 both chains start at 0. Sequential fetch streams and
//                 strided data streams therefore encode in 2-3 bytes
//                 per record (vs 17 in-memory).
//
//   footer (72 bytes):
//     bytes 0-3   magic "HVCF"
//     bytes 4-7   u32 reserved (0)
//     bytes 8-15  u64 record count
//     bytes 16-71 TraceStats: u64 instructions, loads, stores, branches,
//                 taken_branches, data_footprint_bytes,
//                 code_footprint_bytes — exactly Tracer::stats() of the
//                 recorded stream, so replay tools can report a trace's
//                 shape without decoding the payload.
//
// Integrity: readers validate both magics, the version, zero flags/
// reserved bits, that the payload decodes to exactly `record count`
// records ending exactly at the footer boundary, and that the stats
// kind-counts sum to the record count. Any mismatch throws ConfigError.
// ---------------------------------------------------------------------

/// TraceSource over an in-memory record vector (or a Tracer's capture).
/// The records are borrowed, not copied — the owner must outlive the
/// source. This is the adapter that keeps every existing workload path
/// working unchanged on the streaming interface.
class MemoryTraceSource final : public TraceSource {
 public:
  explicit MemoryTraceSource(const std::vector<Record>& records) noexcept
      : records_(&records) {}
  explicit MemoryTraceSource(const Tracer& tracer) noexcept;

  bool next(Record& out) override {
    if (pos_ >= records_->size()) {
      return false;
    }
    out = (*records_)[pos_++];
    return true;
  }
  std::size_t next_batch(Record* out, std::size_t max) override {
    const std::size_t produced = std::min(max, records_->size() - pos_);
    std::copy_n(records_->data() + pos_, produced, out);
    pos_ += produced;
    return produced;
  }
  [[nodiscard]] std::uint64_t size_hint() const noexcept override {
    return records_->size();
  }
  void reset() override { pos_ = 0; }

 private:
  const std::vector<Record>* records_;
  std::size_t pos_ = 0;
};

/// A synthetic basic block: `instructions` sequential 4-byte instructions
/// ending in a branch slot. Executing it emits its fetch stream.
class Block {
 public:
  Block() = default;

  [[nodiscard]] std::uint64_t base() const noexcept { return base_; }
  [[nodiscard]] std::size_t instructions() const noexcept {
    return instructions_;
  }

 private:
  friend class Tracer;
  Block(std::uint64_t base, std::size_t instructions)
      : base_(base), instructions_(instructions) {}
  std::uint64_t base_ = 0;
  std::size_t instructions_ = 0;
};

/// Records every event of one kernel run.
class Tracer {
 public:
  static constexpr std::uint64_t kCodeBase = 0x0040'0000;
  static constexpr std::uint64_t kDataBase = 0x1000'0000;

  Tracer() = default;

  /// Lays out a new basic block in the synthetic code segment.
  [[nodiscard]] Block block(std::size_t instructions);

  /// Emits the fetch stream of `b` followed by its terminating branch.
  /// `taken` marks loop back-edges (they cost a redirect in the core).
  void exec(const Block& b, bool taken = false);

  /// Raw data-access hooks (used by Array<T>).
  void load(std::uint64_t addr) { records_.push_back({Kind::kLoad, false, addr}); }
  void store(std::uint64_t addr) { records_.push_back({Kind::kStore, false, addr}); }

  /// Reserves `bytes` of data address space aligned to `align`.
  [[nodiscard]] std::uint64_t alloc_data(std::size_t bytes,
                                         std::size_t align = 4);

  [[nodiscard]] const std::vector<Record>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] TraceStats stats() const;

  void reserve(std::size_t records) { records_.reserve(records); }

 private:
  std::vector<Record> records_;
  std::uint64_t next_code_ = kCodeBase;
  std::uint64_t next_data_ = kDataBase;
};

/// Typed array over traced memory: element reads/writes are recorded in
/// the owning Tracer and backed by a real std::vector so kernels stay
/// functionally exact.
template <typename T>
class Array {
 public:
  Array(Tracer& tracer, std::size_t count)
      : tracer_(&tracer),
        base_(tracer.alloc_data(count * sizeof(T), alignof(T) >= 4 ? alignof(T) : 4)),
        storage_(count) {}

  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] std::uint64_t base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t addr_of(std::size_t i) const noexcept {
    return base_ + i * sizeof(T);
  }

  /// Recorded read.
  [[nodiscard]] T get(std::size_t i) const {
    expects(i < storage_.size(), "Array read out of range");
    tracer_->load(addr_of(i));
    return storage_[i];
  }

  /// Recorded write.
  void set(std::size_t i, T value) {
    expects(i < storage_.size(), "Array write out of range");
    tracer_->store(addr_of(i));
    storage_[i] = value;
  }

  /// Un-traced access for test assertions / result checks.
  [[nodiscard]] const std::vector<T>& raw() const noexcept { return storage_; }
  void set_raw(std::size_t i, T value) { storage_[i] = value; }
  [[nodiscard]] T get_raw(std::size_t i) const { return storage_[i]; }

 private:
  Tracer* tracer_;
  std::uint64_t base_;
  std::vector<T> storage_;
};

}  // namespace hvc::trace
