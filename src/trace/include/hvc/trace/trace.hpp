// Trace capture for workload kernels.
//
// The paper drives its evaluation with MediaBench programs through the
// MPSim full-chip simulator. Our substitution: the workloads in
// hvc::wl are real codec kernels written against *traced memory* — typed
// arrays whose every element access is recorded — plus synthetic code
// blocks that emit instruction-fetch streams with realistic locality
// (small hot loops, larger cold prologues). The resulting trace is what
// the CPU timing model replays against the IL1/DL1 simulators.
//
// Address map: code starts at kCodeBase, data allocations at kDataBase;
// both grow upward and never overlap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hvc/common/error.hpp"

namespace hvc::trace {

enum class Kind : std::uint8_t {
  kIfetch,  ///< one instruction fetch (one executed instruction)
  kLoad,    ///< data read
  kStore,   ///< data write
  kBranch,  ///< control-flow marker at the end of a block (no cache access)
};

struct Record {
  Kind kind = Kind::kIfetch;
  bool taken = false;  ///< for kBranch: backward/taken branch
  std::uint64_t addr = 0;
};

/// Aggregate shape of a trace (used by tests and reports).
struct TraceStats {
  std::uint64_t instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;
  std::uint64_t taken_branches = 0;
  std::uint64_t data_footprint_bytes = 0;
  std::uint64_t code_footprint_bytes = 0;
};

class Tracer;

/// A synthetic basic block: `instructions` sequential 4-byte instructions
/// ending in a branch slot. Executing it emits its fetch stream.
class Block {
 public:
  Block() = default;

  [[nodiscard]] std::uint64_t base() const noexcept { return base_; }
  [[nodiscard]] std::size_t instructions() const noexcept {
    return instructions_;
  }

 private:
  friend class Tracer;
  Block(std::uint64_t base, std::size_t instructions)
      : base_(base), instructions_(instructions) {}
  std::uint64_t base_ = 0;
  std::size_t instructions_ = 0;
};

/// Records every event of one kernel run.
class Tracer {
 public:
  static constexpr std::uint64_t kCodeBase = 0x0040'0000;
  static constexpr std::uint64_t kDataBase = 0x1000'0000;

  Tracer() = default;

  /// Lays out a new basic block in the synthetic code segment.
  [[nodiscard]] Block block(std::size_t instructions);

  /// Emits the fetch stream of `b` followed by its terminating branch.
  /// `taken` marks loop back-edges (they cost a redirect in the core).
  void exec(const Block& b, bool taken = false);

  /// Raw data-access hooks (used by Array<T>).
  void load(std::uint64_t addr) { records_.push_back({Kind::kLoad, false, addr}); }
  void store(std::uint64_t addr) { records_.push_back({Kind::kStore, false, addr}); }

  /// Reserves `bytes` of data address space aligned to `align`.
  [[nodiscard]] std::uint64_t alloc_data(std::size_t bytes,
                                         std::size_t align = 4);

  [[nodiscard]] const std::vector<Record>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] TraceStats stats() const;

  void reserve(std::size_t records) { records_.reserve(records); }

 private:
  std::vector<Record> records_;
  std::uint64_t next_code_ = kCodeBase;
  std::uint64_t next_data_ = kDataBase;
};

/// Typed array over traced memory: element reads/writes are recorded in
/// the owning Tracer and backed by a real std::vector so kernels stay
/// functionally exact.
template <typename T>
class Array {
 public:
  Array(Tracer& tracer, std::size_t count)
      : tracer_(&tracer),
        base_(tracer.alloc_data(count * sizeof(T), alignof(T) >= 4 ? alignof(T) : 4)),
        storage_(count) {}

  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] std::uint64_t base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t addr_of(std::size_t i) const noexcept {
    return base_ + i * sizeof(T);
  }

  /// Recorded read.
  [[nodiscard]] T get(std::size_t i) const {
    expects(i < storage_.size(), "Array read out of range");
    tracer_->load(addr_of(i));
    return storage_[i];
  }

  /// Recorded write.
  void set(std::size_t i, T value) {
    expects(i < storage_.size(), "Array write out of range");
    tracer_->store(addr_of(i));
    storage_[i] = value;
  }

  /// Un-traced access for test assertions / result checks.
  [[nodiscard]] const std::vector<T>& raw() const noexcept { return storage_; }
  void set_raw(std::size_t i, T value) { storage_[i] = value; }
  [[nodiscard]] T get_raw(std::size_t i) const { return storage_[i]; }

 private:
  Tracer* tracer_;
  std::uint64_t base_;
  std::vector<T> storage_;
};

}  // namespace hvc::trace
