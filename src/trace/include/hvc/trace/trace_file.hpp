// Streaming on-disk trace capture/replay (.hvct files).
//
// The full format specification lives next to TraceSource in trace.hpp;
// in short: a 12-byte header, a payload of tag-byte + zigzag-varint
// address deltas (separate delta chains for the code and data streams),
// and a 72-byte footer carrying the record count and the TraceStats of
// the stream. TraceWriter and TraceFileSource are both windowed: neither
// ever holds more than one fixed-size I/O buffer in memory, so traces of
// arbitrary length can be recorded once and replayed many times without
// re-running the codec kernels or materializing a record vector.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "hvc/trace/trace.hpp"

namespace hvc::trace {

/// Current .hvct format version (see the spec block in trace.hpp).
inline constexpr std::uint16_t kTraceFormatVersion = 1;
/// Fixed header/footer sizes of version 1.
inline constexpr std::size_t kTraceHeaderBytes = 12;
inline constexpr std::size_t kTraceFooterBytes = 72;
/// Default I/O window for writer and reader (the only per-stream memory
/// either holds besides O(1) decode state).
inline constexpr std::size_t kTraceIoBufferBytes = 64 * 1024;

/// True when a workload-axis entry names a recorded trace instead of a
/// registry kernel: "trace:<path>".
[[nodiscard]] bool is_trace_ref(std::string_view name) noexcept;

/// The path of a "trace:<path>" reference; throws ConfigError when the
/// entry is not a trace reference or the path is empty.
[[nodiscard]] std::string trace_ref_path(std::string_view name);

/// Header + footer summary of a .hvct file (no payload decode).
struct TraceInfo {
  std::uint16_t version = 0;
  std::uint16_t flags = 0;
  std::uint64_t records = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t file_bytes = 0;
  TraceStats stats;
};

/// Buffered .hvct writer. append() encodes into a fixed-size window that
/// is flushed to disk when full; finish() writes the footer and closes.
/// A file is valid only after finish() — a writer destroyed mid-stream
/// leaves a footerless file every reader rejects.
class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path,
                       std::size_t buffer_bytes = kTraceIoBufferBytes);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Encodes one record (kind tag + per-stream address delta).
  void append(const Record& record);

  /// Encodes a run of records, byte-identical to `count` append() calls.
  /// The encoder state (delta chains, stats counters, window cursor) is
  /// hoisted into locals for the whole run and each record is written
  /// with one headroom check instead of a per-byte capacity test, so
  /// whole-block capture (write_trace, Tracer dumps) runs at memory
  /// speed between window flushes.
  void append_batch(const Record* records, std::size_t count);

  /// Flushes, writes the footer and closes the file. Idempotent.
  void finish();

  /// Running stats of everything appended so far (footprints included).
  [[nodiscard]] TraceStats stats() const;
  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return records_;
  }

 private:
  void put_byte(std::uint8_t byte);
  void put_varint(std::uint64_t value);
  void flush_buffer();

  std::string path_;
  std::FILE* file_ = nullptr;
  /// Fixed-size emission window, sized (and thereby pre-faulted) at
  /// construction so the first captured blocks never stall on page
  /// faults mid-encode; buf_len_ is the fill cursor.
  std::vector<std::uint8_t> buffer_;
  std::size_t buf_len_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t last_code_ = 0;
  std::uint64_t last_data_ = 0;
  // Incremental TraceStats (footprints tracked as lo/hi watermarks).
  std::uint64_t instructions_ = 0, loads_ = 0, stores_ = 0, branches_ = 0,
                taken_branches_ = 0;
  std::uint64_t data_lo_ = ~0ULL, data_hi_ = 0;
  std::uint64_t code_lo_ = ~0ULL, code_hi_ = 0;
  bool finished_ = false;
};

/// Streaming reader over a .hvct file: validates header/footer up front,
/// then decodes one record per next() out of a fixed-size refill window.
/// reset() seeks back to the payload start, so one source replays many
/// times (sweeps) without reopening the file.
class TraceFileSource final : public TraceSource {
 public:
  explicit TraceFileSource(const std::string& path,
                           std::size_t buffer_bytes = kTraceIoBufferBytes);
  ~TraceFileSource() override;
  TraceFileSource(const TraceFileSource&) = delete;
  TraceFileSource& operator=(const TraceFileSource&) = delete;

  bool next(Record& out) override;
  /// Decodes a run of records without per-record virtual dispatch (the
  /// decode state and refill window are shared with next()).
  std::size_t next_batch(Record* out, std::size_t max) override;
  [[nodiscard]] std::uint64_t size_hint() const noexcept override {
    return info_.records;
  }
  void reset() override;

  [[nodiscard]] const TraceInfo& info() const noexcept { return info_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  [[nodiscard]] std::uint8_t take_byte();
  [[nodiscard]] std::uint64_t take_varint();

  std::string path_;
  std::FILE* file_ = nullptr;
  TraceInfo info_;
  std::vector<std::uint8_t> buffer_;
  std::size_t buf_pos_ = 0;
  std::size_t buf_len_ = 0;
  std::uint64_t payload_consumed_ = 0;  ///< bytes handed out of the buffer
  std::uint64_t emitted_ = 0;
  std::uint64_t last_code_ = 0;
  std::uint64_t last_data_ = 0;
};

/// Reads and validates a file's header + footer only (hvc_trace info).
[[nodiscard]] TraceInfo read_trace_info(const std::string& path);

/// Hostile-input classification of a .hvct file (hvc_trace fsck).
enum class TraceFsckStatus {
  kClean,        ///< header, payload and footer all validate
  kRecoverable,  ///< valid header + a decodable record prefix, but the
                 ///< footer is missing/invalid or the tail is torn —
                 ///< repair_trace() salvages the prefix
  kCorrupt,      ///< the header itself is unusable (wrong magic/version/
                 ///< flags): nothing to salvage
};

[[nodiscard]] const char* to_string(TraceFsckStatus status) noexcept;

struct TraceFsckReport {
  TraceFsckStatus status = TraceFsckStatus::kCorrupt;
  std::uint64_t records = 0;        ///< fully-decodable records
  std::uint64_t payload_bytes = 0;  ///< bytes those records occupy
  std::uint64_t file_bytes = 0;
  TraceStats stats;    ///< recomputed from the decodable prefix
  std::string detail;  ///< human-readable finding
};

/// Read-only integrity check: classifies `path` without modifying it.
/// A clean file reports the footer's counts; a damaged one reports how
/// much of the payload is decodable (what --repair would keep).
[[nodiscard]] TraceFsckReport fsck_trace(const std::string& path);

/// Salvages a recoverable file in place: truncates the payload to the
/// last fully-decodable record and writes a fresh footer recomputed from
/// the kept records, leaving a file every reader accepts. Clean files
/// are untouched. Throws ConfigError when the header is corrupt.
TraceFsckReport repair_trace(const std::string& path);

/// Records an entire source (or an in-memory capture) to `path`; returns
/// the written stats. The source is reset() first.
TraceStats write_trace(const std::string& path, TraceSource& source);
TraceStats write_trace(const std::string& path, const Tracer& tracer);

}  // namespace hvc::trace
