#include "hvc/trace/trace_file.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "hvc/common/error.hpp"

namespace hvc::trace {

namespace {

constexpr char kHeaderMagic[4] = {'H', 'V', 'C', 'T'};
constexpr char kFooterMagic[4] = {'H', 'V', 'C', 'F'};
constexpr std::string_view kTraceRefPrefix = "trace:";

// Tag-byte layout (spec block in trace.hpp).
constexpr std::uint8_t kKindMask = 0x03;
constexpr std::uint8_t kTakenBit = 0x04;
constexpr std::uint8_t kReservedMask = 0xF8;

[[nodiscard]] std::uint64_t zigzag_encode(std::int64_t value) noexcept {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

[[nodiscard]] std::int64_t zigzag_decode(std::uint64_t value) noexcept {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

void store_u16(std::uint8_t* out, std::uint16_t value) noexcept {
  out[0] = static_cast<std::uint8_t>(value);
  out[1] = static_cast<std::uint8_t>(value >> 8);
}

void store_u32(std::uint8_t* out, std::uint32_t value) noexcept {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

void store_u64(std::uint8_t* out, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

[[nodiscard]] std::uint16_t load_u16(const std::uint8_t* in) noexcept {
  return static_cast<std::uint16_t>(in[0] |
                                    (static_cast<std::uint16_t>(in[1]) << 8));
}

[[nodiscard]] std::uint64_t load_u64(const std::uint8_t* in) noexcept {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return value;
}

[[nodiscard]] ConfigError bad_trace(const std::string& path,
                                    const std::string& what) {
  return ConfigError("trace file \"" + path + "\": " + what);
}

[[nodiscard]] ConfigError bad_trace_errno(const std::string& path,
                                          const std::string& what) {
  return bad_trace(path, what + ": " + std::strerror(errno));
}

/// Encodes the fixed footer (shared by finish() and repair_trace()).
void encode_footer(std::uint8_t (&out)[kTraceFooterBytes],
                   std::uint64_t records, const TraceStats& s) noexcept {
  std::memset(out, 0, sizeof out);
  std::memcpy(out, kFooterMagic, 4);
  store_u32(out + 4, 0);  // reserved
  store_u64(out + 8, records);
  store_u64(out + 16, s.instructions);
  store_u64(out + 24, s.loads);
  store_u64(out + 32, s.stores);
  store_u64(out + 40, s.branches);
  store_u64(out + 48, s.taken_branches);
  store_u64(out + 56, s.data_footprint_bytes);
  store_u64(out + 64, s.code_footprint_bytes);
}

/// Decodes the fixed-size footer (record count + stats).
void parse_footer(const std::string& path,
                  const std::uint8_t (&raw)[kTraceFooterBytes],
                  TraceInfo& info) {
  if (std::memcmp(raw, kFooterMagic, 4) != 0) {
    throw bad_trace(path, "missing footer (truncated or unfinished write?)");
  }
  if (load_u16(raw + 4) != 0 || load_u16(raw + 6) != 0) {
    throw bad_trace(path, "non-zero reserved footer bytes");
  }
  info.records = load_u64(raw + 8);
  info.stats.instructions = load_u64(raw + 16);
  info.stats.loads = load_u64(raw + 24);
  info.stats.stores = load_u64(raw + 32);
  info.stats.branches = load_u64(raw + 40);
  info.stats.taken_branches = load_u64(raw + 48);
  info.stats.data_footprint_bytes = load_u64(raw + 56);
  info.stats.code_footprint_bytes = load_u64(raw + 64);
  const std::uint64_t kinds = info.stats.instructions + info.stats.loads +
                              info.stats.stores + info.stats.branches;
  if (kinds != info.records) {
    throw bad_trace(path, "footer stats do not sum to the record count");
  }
  if (info.stats.taken_branches > info.stats.branches) {
    throw bad_trace(path, "footer counts more taken branches than branches");
  }
}

/// Opens `path` and validates header + footer; leaves the stream
/// positioned at the payload start. Throws (and closes) on any problem.
[[nodiscard]] std::FILE* open_and_validate(const std::string& path,
                                           TraceInfo& info) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw ConfigError("cannot open trace file \"" + path + "\"");
  }
  try {
    if (std::fseek(file, 0, SEEK_END) != 0) {
      throw bad_trace(path, "seek failed");
    }
    // `long` is 64-bit on every supported target (Linux/LP64); traces
    // beyond 2 GiB would need ftello/fseeko on ILP32 platforms.
    const long size = std::ftell(file);
    if (size < 0 ||
        static_cast<std::size_t>(size) <
            kTraceHeaderBytes + kTraceFooterBytes) {
      throw bad_trace(path, "too short to be a .hvct trace");
    }
    info.file_bytes = static_cast<std::uint64_t>(size);
    info.payload_bytes =
        info.file_bytes - kTraceHeaderBytes - kTraceFooterBytes;

    std::uint8_t header[kTraceHeaderBytes];
    std::rewind(file);
    if (std::fread(header, 1, sizeof header, file) != sizeof header) {
      throw bad_trace(path, "short header read");
    }
    if (std::memcmp(header, kHeaderMagic, 4) != 0) {
      throw bad_trace(path, "bad magic (not a .hvct trace)");
    }
    info.version = load_u16(header + 4);
    info.flags = load_u16(header + 6);
    if (info.version != kTraceFormatVersion) {
      throw bad_trace(path, "unsupported format version " +
                                std::to_string(info.version));
    }
    if (info.flags != 0) {
      throw bad_trace(path, "unsupported flags");
    }

    std::uint8_t footer[kTraceFooterBytes];
    if (std::fseek(file, -static_cast<long>(kTraceFooterBytes), SEEK_END) !=
            0 ||
        std::fread(footer, 1, sizeof footer, file) != sizeof footer) {
      throw bad_trace(path, "short footer read");
    }
    parse_footer(path, footer, info);
    // Every record is at least a tag byte plus one varint byte.
    if (info.payload_bytes < 2 * info.records) {
      throw bad_trace(path, "payload too small for its record count");
    }
    if (std::fseek(file, static_cast<long>(kTraceHeaderBytes), SEEK_SET) !=
        0) {
      throw bad_trace(path, "seek to payload failed");
    }
  } catch (...) {
    std::fclose(file);
    throw;
  }
  return file;
}

}  // namespace

bool is_trace_ref(std::string_view name) noexcept {
  return name.size() > kTraceRefPrefix.size() &&
         name.substr(0, kTraceRefPrefix.size()) == kTraceRefPrefix;
}

std::string trace_ref_path(std::string_view name) {
  if (name.substr(0, kTraceRefPrefix.size()) != kTraceRefPrefix ||
      name.size() == kTraceRefPrefix.size()) {
    throw ConfigError("\"" + std::string(name) +
                      "\" is not a trace reference (expected trace:<path>)");
  }
  return std::string(name.substr(kTraceRefPrefix.size()));
}

// ---------------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path, std::size_t buffer_bytes)
    : path_(path) {
  expects(buffer_bytes >= 16, "trace writer window must hold one record");
  // resize (not reserve): zero-initializing the window touches every page
  // up front, so the encode loop never takes a first-touch page fault
  // mid-capture — the window is warm from the first record on.
  buffer_.resize(buffer_bytes);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw ConfigError("cannot create trace file \"" + path + "\"");
  }
  std::uint8_t header[kTraceHeaderBytes] = {};
  std::memcpy(header, kHeaderMagic, 4);
  store_u16(header + 4, kTraceFormatVersion);
  store_u16(header + 6, 0);   // flags
  store_u32(header + 8, 0);   // reserved
  if (std::fwrite(header, 1, sizeof header, file_) != sizeof header) {
    std::fclose(file_);
    file_ = nullptr;
    throw ConfigError("cannot write trace header to \"" + path + "\"");
  }
}

TraceWriter::~TraceWriter() {
  // No implicit finish(): a file without a footer is deliberately invalid,
  // so a writer unwound by an exception cannot leave a plausible trace.
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void TraceWriter::put_byte(std::uint8_t byte) {
  if (buf_len_ == buffer_.size()) {
    flush_buffer();
  }
  buffer_[buf_len_++] = byte;
}

void TraceWriter::put_varint(std::uint64_t value) {
  while (value >= 0x80) {
    put_byte(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  put_byte(static_cast<std::uint8_t>(value));
}

void TraceWriter::flush_buffer() {
  if (buf_len_ == 0) {
    return;
  }
  if (std::fwrite(buffer_.data(), 1, buf_len_, file_) != buf_len_) {
    // fwrite reports short writes without setting errno reliably; ferror
    // state plus errno (ENOSPC and friends) is the best diagnosis we get.
    throw bad_trace_errno(path_, "short write");
  }
  buf_len_ = 0;
}

void TraceWriter::append(const Record& record) {
  expects(!finished_, "append after finish()");
  std::uint8_t tag = 0;
  std::uint64_t* last = nullptr;
  switch (record.kind) {
    case Kind::kIfetch:
      tag = 0;
      last = &last_code_;
      ++instructions_;
      code_lo_ = std::min(code_lo_, record.addr);
      code_hi_ = std::max(code_hi_, record.addr + 4);
      break;
    case Kind::kLoad:
      tag = 1;
      last = &last_data_;
      ++loads_;
      data_lo_ = std::min(data_lo_, record.addr);
      data_hi_ = std::max(data_hi_, record.addr + 4);
      break;
    case Kind::kStore:
      tag = 2;
      last = &last_data_;
      ++stores_;
      data_lo_ = std::min(data_lo_, record.addr);
      data_hi_ = std::max(data_hi_, record.addr + 4);
      break;
    case Kind::kBranch:
      tag = 3;
      last = &last_code_;
      ++branches_;
      if (record.taken) {
        tag |= kTakenBit;
        ++taken_branches_;
      }
      break;
  }
  put_byte(tag);
  put_varint(zigzag_encode(static_cast<std::int64_t>(record.addr - *last)));
  *last = record.addr;
  ++records_;
}

void TraceWriter::append_batch(const Record* records, std::size_t count) {
  expects(!finished_, "append after finish()");
  // Worst case per record: 1 tag byte + a 10-byte varint (64-bit delta).
  // The constructor guarantees the window holds at least one such record.
  constexpr std::size_t kMaxRecordBytes = 11;
  // Hoist the whole encoder state — delta chains, stats counters,
  // footprint watermarks, window cursor — into registers for the run;
  // the per-record loop touches only locals and the output window.
  std::uint64_t last_code = last_code_;
  std::uint64_t last_data = last_data_;
  std::uint64_t instructions = instructions_, loads = loads_,
                stores = stores_, branches = branches_,
                taken_branches = taken_branches_;
  std::uint64_t data_lo = data_lo_, data_hi = data_hi_;
  std::uint64_t code_lo = code_lo_, code_hi = code_hi_;
  std::uint8_t* const base = buffer_.data();
  const std::size_t cap = buffer_.size();
  std::size_t len = buf_len_;
  for (std::size_t i = 0; i < count; ++i) {
    if (cap - len < kMaxRecordBytes) {
      buf_len_ = len;
      flush_buffer();
      len = 0;
    }
    const Record& record = records[i];
    std::uint8_t tag = 0;
    std::uint64_t* last = nullptr;
    switch (record.kind) {
      case Kind::kIfetch:
        tag = 0;
        last = &last_code;
        ++instructions;
        code_lo = std::min(code_lo, record.addr);
        code_hi = std::max(code_hi, record.addr + 4);
        break;
      case Kind::kLoad:
        tag = 1;
        last = &last_data;
        ++loads;
        data_lo = std::min(data_lo, record.addr);
        data_hi = std::max(data_hi, record.addr + 4);
        break;
      case Kind::kStore:
        tag = 2;
        last = &last_data;
        ++stores;
        data_lo = std::min(data_lo, record.addr);
        data_hi = std::max(data_hi, record.addr + 4);
        break;
      case Kind::kBranch:
        tag = 3;
        last = &last_code;
        ++branches;
        if (record.taken) {
          tag |= kTakenBit;
          ++taken_branches;
        }
        break;
    }
    std::uint8_t* p = base + len;
    *p++ = tag;
    std::uint64_t value =
        zigzag_encode(static_cast<std::int64_t>(record.addr - *last));
    while (value >= 0x80) {
      *p++ = static_cast<std::uint8_t>(value) | 0x80;
      value >>= 7;
    }
    *p++ = static_cast<std::uint8_t>(value);
    len = static_cast<std::size_t>(p - base);
    *last = record.addr;
  }
  buf_len_ = len;
  last_code_ = last_code;
  last_data_ = last_data;
  instructions_ = instructions;
  loads_ = loads;
  stores_ = stores;
  branches_ = branches;
  taken_branches_ = taken_branches;
  data_lo_ = data_lo;
  data_hi_ = data_hi;
  code_lo_ = code_lo;
  code_hi_ = code_hi;
  records_ += count;
}

TraceStats TraceWriter::stats() const {
  TraceStats s;
  s.instructions = instructions_;
  s.loads = loads_;
  s.stores = stores_;
  s.branches = branches_;
  s.taken_branches = taken_branches_;
  if (data_hi_ > data_lo_) {
    s.data_footprint_bytes = data_hi_ - data_lo_;
  }
  if (code_hi_ > code_lo_) {
    s.code_footprint_bytes = code_hi_ - code_lo_;
  }
  return s;
}

void TraceWriter::finish() {
  if (finished_) {
    return;
  }
  // Durability contract: every byte — payload window, footer, stdio
  // buffer — must reach the kernel AND stable storage before finish()
  // reports success. A short write or close-time flush failure (ENOSPC
  // on a full disk is the classic) surfaces as ConfigError with errno
  // text instead of silently "succeeding" with a torn file. Whatever
  // fails, the FILE* is closed and the writer is finished: a failed
  // finish leaves an invalid (footerless or torn) file, never a leak.
  std::uint8_t footer[kTraceFooterBytes];
  encode_footer(footer, records_, stats());
  try {
    flush_buffer();
    if (std::fwrite(footer, 1, sizeof footer, file_) != sizeof footer) {
      throw bad_trace_errno(path_, "cannot write footer");
    }
    // Drain stdio's buffer to the kernel...
    if (std::fflush(file_) != 0) {
      throw bad_trace_errno(path_, "flush failed");
    }
    // ...and the kernel's pages to stable storage, so a power cut after
    // a successful finish() cannot lose a reported-complete trace.
    if (::fsync(::fileno(file_)) != 0) {
      throw bad_trace_errno(path_, "fsync failed");
    }
  } catch (...) {
    std::fclose(file_);
    file_ = nullptr;
    finished_ = true;
    throw;
  }
  const bool closed = std::fclose(file_) == 0;
  file_ = nullptr;
  finished_ = true;
  if (!closed) {
    throw bad_trace_errno(path_, "close failed");
  }
}

// ---------------------------------------------------------------------
// TraceFileSource
// ---------------------------------------------------------------------

TraceFileSource::TraceFileSource(const std::string& path,
                                 std::size_t buffer_bytes)
    : path_(path) {
  expects(buffer_bytes >= 1, "trace reader window must be non-empty");
  buffer_.resize(buffer_bytes);
  file_ = open_and_validate(path, info_);
}

TraceFileSource::~TraceFileSource() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

std::uint8_t TraceFileSource::take_byte() {
  if (buf_pos_ == buf_len_) {
    const std::uint64_t left = info_.payload_bytes - payload_consumed_;
    if (left == 0) {
      throw bad_trace(path_, "payload ends before its record count");
    }
    buf_len_ = std::fread(
        buffer_.data(), 1,
        static_cast<std::size_t>(
            std::min<std::uint64_t>(buffer_.size(), left)),
        file_);
    buf_pos_ = 0;
    if (buf_len_ == 0) {
      throw bad_trace(path_, "payload read failed");
    }
  }
  ++payload_consumed_;
  return buffer_[buf_pos_++];
}

std::uint64_t TraceFileSource::take_varint() {
  std::uint64_t value = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    const std::uint8_t byte = take_byte();
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
  }
  throw bad_trace(path_, "varint longer than 64 bits");
}

bool TraceFileSource::next(Record& out) {
  if (emitted_ == info_.records) {
    if (payload_consumed_ != info_.payload_bytes) {
      throw bad_trace(path_, "payload bytes left over after the last record");
    }
    return false;
  }
  const std::uint8_t tag = take_byte();
  if ((tag & kReservedMask) != 0) {
    throw bad_trace(path_, "corrupt record tag (reserved bits set)");
  }
  const std::uint8_t kind = tag & kKindMask;
  const bool taken = (tag & kTakenBit) != 0;
  if (taken && kind != 3) {
    throw bad_trace(path_, "taken flag on a non-branch record");
  }
  const std::int64_t delta = zigzag_decode(take_varint());
  std::uint64_t* last = (kind == 1 || kind == 2) ? &last_data_ : &last_code_;
  *last += static_cast<std::uint64_t>(delta);
  out.kind = static_cast<Kind>(kind);
  out.taken = taken;
  out.addr = *last;
  ++emitted_;
  return true;
}

std::size_t TraceFileSource::next_batch(Record* out, std::size_t max) {
  std::size_t produced = 0;
  while (produced < max && next(out[produced])) {
    ++produced;
  }
  return produced;
}

void TraceFileSource::reset() {
  if (std::fseek(file_, static_cast<long>(kTraceHeaderBytes), SEEK_SET) !=
      0) {
    throw bad_trace(path_, "seek to payload failed");
  }
  buf_pos_ = 0;
  buf_len_ = 0;
  payload_consumed_ = 0;
  emitted_ = 0;
  last_code_ = 0;
  last_data_ = 0;
}

// ---------------------------------------------------------------------
// fsck / repair
// ---------------------------------------------------------------------

namespace {

/// Streaming byte cursor over a payload window of `file` (already
/// positioned at the window start). Unlike TraceFileSource::take_byte it
/// reports end-of-window instead of throwing: the scanner's job is to
/// find where decodability stops, not to reject the file.
class PayloadCursor {
 public:
  PayloadCursor(std::FILE* file, std::uint64_t window_bytes)
      : file_(file), left_(window_bytes) {}

  /// False at the end of the window or on a read error.
  [[nodiscard]] bool next_byte(std::uint8_t& out) {
    if (pos_ == len_) {
      if (left_ == 0 || file_ == nullptr) {
        return false;
      }
      len_ = std::fread(buffer_, 1,
                        static_cast<std::size_t>(
                            std::min<std::uint64_t>(sizeof buffer_, left_)),
                        file_);
      pos_ = 0;
      if (len_ == 0) {
        file_ = nullptr;  // read error: treat as end of decodable bytes
        return false;
      }
      left_ -= len_;
    }
    ++consumed_;
    out = buffer_[pos_++];
    return true;
  }

  [[nodiscard]] std::uint64_t consumed() const noexcept { return consumed_; }

 private:
  std::FILE* file_;
  std::uint64_t left_;
  std::uint8_t buffer_[kTraceIoBufferBytes];
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
  std::uint64_t consumed_ = 0;
};

/// What a raw payload decode found: the longest prefix of fully-valid
/// records, its stats (recomputed exactly the way TraceWriter tracks
/// them), and why the scan stopped early, if it did.
struct PayloadScan {
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;  ///< payload bytes those records occupy
  bool complete = false;    ///< scan consumed the whole window cleanly
  TraceStats stats;
  std::string detail;
};

[[nodiscard]] PayloadScan scan_payload(std::FILE* file,
                                       std::uint64_t window_bytes) {
  PayloadCursor cursor(file, window_bytes);
  PayloadScan scan;
  std::uint64_t last_code = 0, last_data = 0;
  std::uint64_t data_lo = ~0ULL, data_hi = 0, code_lo = ~0ULL, code_hi = 0;
  auto stop = [&](const std::string& why) {
    scan.detail = why + " at payload offset " +
                  std::to_string(cursor.consumed() - 1);
  };
  for (;;) {
    std::uint8_t tag = 0;
    if (!cursor.next_byte(tag)) {
      scan.complete = true;  // ended exactly on a record boundary
      break;
    }
    if ((tag & kReservedMask) != 0) {
      stop("corrupt record tag (reserved bits set)");
      break;
    }
    const std::uint8_t kind = tag & kKindMask;
    if ((tag & kTakenBit) != 0 && kind != 3) {
      stop("taken flag on a non-branch record");
      break;
    }
    std::uint64_t raw = 0;
    bool torn = false, overlong = false;
    for (unsigned shift = 0;; shift += 7) {
      if (shift >= 64) {
        overlong = true;
        break;
      }
      std::uint8_t byte = 0;
      if (!cursor.next_byte(byte)) {
        torn = true;
        break;
      }
      raw |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        break;
      }
    }
    if (torn) {
      scan.detail = "record torn mid-varint at payload offset " +
                    std::to_string(scan.bytes);
      break;
    }
    if (overlong) {
      stop("varint longer than 64 bits");
      break;
    }
    const std::uint64_t addr =
        ((kind == 1 || kind == 2) ? last_data : last_code) +
        static_cast<std::uint64_t>(zigzag_decode(raw));
    switch (kind) {
      case 0:
        ++scan.stats.instructions;
        last_code = addr;
        code_lo = std::min(code_lo, addr);
        code_hi = std::max(code_hi, addr + 4);
        break;
      case 1:
        ++scan.stats.loads;
        last_data = addr;
        data_lo = std::min(data_lo, addr);
        data_hi = std::max(data_hi, addr + 4);
        break;
      case 2:
        ++scan.stats.stores;
        last_data = addr;
        data_lo = std::min(data_lo, addr);
        data_hi = std::max(data_hi, addr + 4);
        break;
      case 3:
        ++scan.stats.branches;
        last_code = addr;
        if ((tag & kTakenBit) != 0) {
          ++scan.stats.taken_branches;
        }
        break;
    }
    ++scan.records;
    scan.bytes = cursor.consumed();
  }
  if (data_hi > data_lo) {
    scan.stats.data_footprint_bytes = data_hi - data_lo;
  }
  if (code_hi > code_lo) {
    scan.stats.code_footprint_bytes = code_hi - code_lo;
  }
  return scan;
}

[[nodiscard]] bool stats_equal(const TraceStats& a,
                               const TraceStats& b) noexcept {
  return a.instructions == b.instructions && a.loads == b.loads &&
         a.stores == b.stores && a.branches == b.branches &&
         a.taken_branches == b.taken_branches &&
         a.data_footprint_bytes == b.data_footprint_bytes &&
         a.code_footprint_bytes == b.code_footprint_bytes;
}

}  // namespace

const char* to_string(TraceFsckStatus status) noexcept {
  switch (status) {
    case TraceFsckStatus::kClean:
      return "clean";
    case TraceFsckStatus::kRecoverable:
      return "recoverable";
    case TraceFsckStatus::kCorrupt:
      return "corrupt";
  }
  return "?";
}

TraceFsckReport fsck_trace(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw ConfigError("cannot open trace file \"" + path + "\"");
  }
  TraceFsckReport report;
  try {
    if (std::fseek(file, 0, SEEK_END) != 0) {
      throw bad_trace(path, "seek failed");
    }
    const long size = std::ftell(file);
    if (size < 0) {
      throw bad_trace(path, "cannot size file");
    }
    report.file_bytes = static_cast<std::uint64_t>(size);

    // Header: without a valid one there is nothing to salvage.
    std::uint8_t header[kTraceHeaderBytes];
    std::rewind(file);
    if (report.file_bytes < kTraceHeaderBytes ||
        std::fread(header, 1, sizeof header, file) != sizeof header) {
      report.status = TraceFsckStatus::kCorrupt;
      report.detail = "too short to hold a .hvct header";
      std::fclose(file);
      return report;
    }
    if (std::memcmp(header, kHeaderMagic, 4) != 0) {
      report.status = TraceFsckStatus::kCorrupt;
      report.detail = "bad magic (not a .hvct trace)";
      std::fclose(file);
      return report;
    }
    if (load_u16(header + 4) != kTraceFormatVersion) {
      report.status = TraceFsckStatus::kCorrupt;
      report.detail = "unsupported format version " +
                      std::to_string(load_u16(header + 4));
      std::fclose(file);
      return report;
    }
    if (load_u16(header + 6) != 0) {
      report.status = TraceFsckStatus::kCorrupt;
      report.detail = "unsupported flags";
      std::fclose(file);
      return report;
    }

    // Footer, if the tail looks like one; otherwise the whole remainder
    // is treated as (possibly torn) payload.
    bool footer_present = false;
    bool footer_valid = false;
    TraceInfo footer_info;
    std::string footer_problem = "missing footer";
    std::uint64_t window = report.file_bytes - kTraceHeaderBytes;
    if (report.file_bytes >= kTraceHeaderBytes + kTraceFooterBytes) {
      std::uint8_t footer[kTraceFooterBytes];
      if (std::fseek(file, -static_cast<long>(kTraceFooterBytes),
                     SEEK_END) != 0 ||
          std::fread(footer, 1, sizeof footer, file) != sizeof footer) {
        throw bad_trace(path, "short footer read");
      }
      footer_present = std::memcmp(footer, kFooterMagic, 4) == 0;
      if (footer_present) {
        window -= kTraceFooterBytes;
        try {
          parse_footer(path, footer, footer_info);
          footer_valid = true;
        } catch (const ConfigError& error) {
          footer_problem = error.what();
        }
      }
    }

    // Decode the payload window from the start; the longest valid record
    // prefix is what a repair would keep.
    if (std::fseek(file, static_cast<long>(kTraceHeaderBytes), SEEK_SET) !=
        0) {
      throw bad_trace(path, "seek to payload failed");
    }
    const PayloadScan scan = scan_payload(file, window);
    std::fclose(file);
    file = nullptr;

    report.records = scan.records;
    report.payload_bytes = scan.bytes;
    report.stats = scan.stats;
    if (footer_valid && scan.complete &&
        footer_info.records == scan.records &&
        stats_equal(footer_info.stats, scan.stats)) {
      report.status = TraceFsckStatus::kClean;
      report.detail = "header, payload and footer validate";
      return report;
    }
    report.status = TraceFsckStatus::kRecoverable;
    if (!scan.complete) {
      report.detail = scan.detail;
    } else if (!footer_valid) {
      report.detail = footer_problem;
    } else {
      report.detail =
          "footer disagrees with the payload (footer claims " +
          std::to_string(footer_info.records) + " records, payload holds " +
          std::to_string(scan.records) + ")";
    }
    return report;
  } catch (...) {
    if (file != nullptr) {
      std::fclose(file);
    }
    throw;
  }
}

TraceFsckReport repair_trace(const std::string& path) {
  TraceFsckReport report = fsck_trace(path);
  if (report.status == TraceFsckStatus::kClean) {
    return report;
  }
  if (report.status == TraceFsckStatus::kCorrupt) {
    throw bad_trace(path, "unrepairable (" + report.detail + ")");
  }

  // Keep the decodable record prefix: write a footer recomputed from it
  // directly after the last good record, cut everything past the footer,
  // and make the result durable before reporting success.
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    throw bad_trace_errno(path, "cannot open for repair");
  }
  std::uint8_t footer[kTraceFooterBytes];
  encode_footer(footer, report.records, report.stats);
  const auto footer_at =
      static_cast<off_t>(kTraceHeaderBytes + report.payload_bytes);
  const auto new_size = footer_at + static_cast<off_t>(kTraceFooterBytes);
  if (::pwrite(fd, footer, sizeof footer, footer_at) !=
          static_cast<ssize_t>(sizeof footer) ||
      ::ftruncate(fd, new_size) != 0 || ::fsync(fd) != 0) {
    const ConfigError error = bad_trace_errno(path, "repair write failed");
    ::close(fd);
    throw error;
  }
  ::close(fd);

  const std::string salvaged = report.detail;
  report.status = TraceFsckStatus::kClean;
  report.file_bytes = static_cast<std::uint64_t>(new_size);
  report.detail = "repaired: kept " + std::to_string(report.records) +
                  " records, dropped damaged tail (" + salvaged + ")";
  return report;
}

// ---------------------------------------------------------------------
// Convenience entry points
// ---------------------------------------------------------------------

TraceInfo read_trace_info(const std::string& path) {
  TraceInfo info;
  std::FILE* file = open_and_validate(path, info);
  std::fclose(file);
  return info;
}

TraceStats write_trace(const std::string& path, TraceSource& source) {
  TraceWriter writer(path);
  source.reset();
  Record block[kReplayBlockRecords];
  std::size_t got = 0;
  while ((got = source.next_batch(block, kReplayBlockRecords)) > 0) {
    writer.append_batch(block, got);
  }
  writer.finish();
  return writer.stats();
}

TraceStats write_trace(const std::string& path, const Tracer& tracer) {
  // In-memory capture: the record vector is already contiguous, so the
  // whole trace encodes in one append_batch pass with no staging copy.
  TraceWriter writer(path);
  const std::vector<Record>& records = tracer.records();
  writer.append_batch(records.data(), records.size());
  writer.finish();
  return writer.stats();
}

}  // namespace hvc::trace
