#include "hvc/trace/trace.hpp"

#include <algorithm>
#include <unordered_set>

namespace hvc::trace {

MemoryTraceSource::MemoryTraceSource(const Tracer& tracer) noexcept
    : MemoryTraceSource(tracer.records()) {}

Block Tracer::block(std::size_t instructions) {
  expects(instructions >= 1, "a block needs at least one instruction");
  const Block b(next_code_, instructions);
  next_code_ += instructions * 4;
  return b;
}

void Tracer::exec(const Block& b, bool taken) {
  expects(b.instructions() >= 1, "cannot exec an empty block");
  // One resize + in-place fill for the whole fetch run: kernels emit
  // their hot loops through exec(), so this is the capture-side hot
  // path — per-record push_back would re-test capacity on every fetch.
  const std::size_t n = b.instructions();
  const std::size_t at = records_.size();
  records_.resize(at + n + 1);
  Record* out = records_.data() + at;
  std::uint64_t addr = b.base();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = {Kind::kIfetch, false, addr};
    addr += 4;
  }
  out[n] = {Kind::kBranch, taken, b.base() + 4 * (n - 1)};
}

std::uint64_t Tracer::alloc_data(std::size_t bytes, std::size_t align) {
  expects(align > 0 && (align & (align - 1)) == 0,
          "alignment must be a power of two");
  next_data_ = (next_data_ + align - 1) & ~static_cast<std::uint64_t>(align - 1);
  const std::uint64_t base = next_data_;
  next_data_ += bytes;
  return base;
}

TraceStats Tracer::stats() const {
  TraceStats s;
  std::uint64_t data_lo = ~0ULL, data_hi = 0;
  std::uint64_t code_lo = ~0ULL, code_hi = 0;
  for (const auto& r : records_) {
    switch (r.kind) {
      case Kind::kIfetch:
        ++s.instructions;
        code_lo = std::min(code_lo, r.addr);
        code_hi = std::max(code_hi, r.addr + 4);
        break;
      case Kind::kLoad:
        ++s.loads;
        data_lo = std::min(data_lo, r.addr);
        data_hi = std::max(data_hi, r.addr + 4);
        break;
      case Kind::kStore:
        ++s.stores;
        data_lo = std::min(data_lo, r.addr);
        data_hi = std::max(data_hi, r.addr + 4);
        break;
      case Kind::kBranch:
        ++s.branches;
        if (r.taken) {
          ++s.taken_branches;
        }
        break;
    }
  }
  if (data_hi > data_lo) {
    s.data_footprint_bytes = data_hi - data_lo;
  }
  if (code_hi > code_lo) {
    s.code_footprint_bytes = code_hi - code_lo;
  }
  return s;
}

}  // namespace hvc::trace
