#include "hvc/store/store.hpp"

#include <cstring>
#include <utility>

#include "hvc/common/error.hpp"
#include "hvc/common/hash.hpp"

namespace hvc::store {

namespace {

constexpr char kMagic[4] = {'H', 'V', 'C', 'S'};
constexpr std::uint16_t kDirtyFlag = 0x0001;
constexpr std::uint16_t kKnownFlags = kDirtyFlag;
constexpr std::uint64_t kFlagsOffset = 6;

void store_u16(std::uint8_t* out, std::uint16_t value) noexcept {
  out[0] = static_cast<std::uint8_t>(value);
  out[1] = static_cast<std::uint8_t>(value >> 8);
}

void store_u32(std::uint8_t* out, std::uint32_t value) noexcept {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

void store_u64(std::uint8_t* out, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

[[nodiscard]] std::uint16_t load_u16(const std::uint8_t* in) noexcept {
  return static_cast<std::uint16_t>(
      in[0] | (static_cast<std::uint16_t>(in[1]) << 8));
}

[[nodiscard]] std::uint32_t load_u32(const std::uint8_t* in) noexcept {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  }
  return value;
}

[[nodiscard]] std::uint64_t load_u64(const std::uint8_t* in) noexcept {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return value;
}

[[nodiscard]] ConfigError bad_store(const std::string& label,
                                    const std::string& what) {
  return ConfigError("result store \"" + label + "\": " + what);
}

// Typed variants so callers (and exit codes) can tell "the writer died,
// reopen with --resume" apart from "this file is damaged". Both still
// derive from ConfigError, so untyped handlers keep working.
[[nodiscard]] StoreCorruptError corrupt_store(const std::string& label,
                                              const std::string& what) {
  return StoreCorruptError("result store \"" + label + "\": " + what);
}

[[nodiscard]] StoreRecoverableError recoverable_store(
    const std::string& label, const std::string& what) {
  return StoreRecoverableError("result store \"" + label + "\": " + what);
}

struct Header {
  std::uint16_t version = 0;
  std::uint16_t flags = 0;
  std::uint64_t app_tag = 0;
  [[nodiscard]] bool dirty() const noexcept {
    return (flags & kDirtyFlag) != 0;
  }
};

void encode_header(std::uint8_t (&raw)[kStoreHeaderBytes],
                   const Header& header) noexcept {
  std::memset(raw, 0, sizeof raw);
  std::memcpy(raw, kMagic, 4);
  store_u16(raw + 4, header.version);
  store_u16(raw + 6, header.flags);
  store_u64(raw + 8, header.app_tag);
}

/// Parses + validates the fixed header; throws bad_store on any problem.
[[nodiscard]] Header decode_header(
    const std::string& label, const std::uint8_t (&raw)[kStoreHeaderBytes]) {
  if (std::memcmp(raw, kMagic, 4) != 0) {
    throw corrupt_store(label, "bad magic (not a .hvcs result store)");
  }
  Header header;
  header.version = load_u16(raw + 4);
  header.flags = load_u16(raw + 6);
  header.app_tag = load_u64(raw + 8);
  if (header.version != kStoreFormatVersion) {
    throw corrupt_store(label, "unsupported format version " +
                                   std::to_string(header.version));
  }
  if ((header.flags & ~kKnownFlags) != 0) {
    throw corrupt_store(label, "unsupported header flags");
  }
  for (std::size_t i = 16; i < kStoreHeaderBytes; ++i) {
    if (raw[i] != 0) {
      throw corrupt_store(label, "non-zero reserved header bytes");
    }
  }
  return header;
}

}  // namespace

const char* to_string(FsckStatus status) noexcept {
  switch (status) {
    case FsckStatus::kClean:
      return "clean";
    case FsckStatus::kRecoverable:
      return "recoverable";
    case FsckStatus::kCorrupt:
      return "corrupt";
  }
  return "?";
}

namespace {

/// Result of walking the slab: the validated prefix and its index.
struct ScanOutcome {
  std::uint64_t valid_end = kStoreHeaderBytes;
  std::unordered_map<Key, std::pair<std::uint64_t, std::uint32_t>, KeyHash>
      index;
  bool torn = false;
  std::string detail;  ///< why the scan stopped early
};

/// Walks every record from `start`, validating both CRCs, and stops at
/// the first sign of a torn or truncated append. Everything before the
/// stop point is a committed record; everything after is tail.
[[nodiscard]] ScanOutcome scan_slab(File& file, std::uint64_t file_size,
                                    std::uint64_t start = kStoreHeaderBytes) {
  ScanOutcome out;
  out.valid_end = start;
  std::vector<std::uint8_t> payload;
  std::uint64_t offset = start;
  const auto stop = [&](std::string why) {
    out.torn = true;
    out.detail = std::move(why) + " at offset " + std::to_string(offset);
  };
  while (offset < file_size) {
    if (offset + kRecordHeaderBytes > file_size) {
      stop("truncated record header");
      break;
    }
    std::uint8_t raw[kRecordHeaderBytes];
    if (file.read_at(offset, raw, sizeof raw) != sizeof raw) {
      stop("short record header read");
      break;
    }
    if (crc32(raw, 28) != load_u32(raw + 28)) {
      stop("record header checksum mismatch");
      break;
    }
    if (load_u32(raw + 24) != 0) {
      stop("non-zero reserved record bytes");
      break;
    }
    const Key key{load_u64(raw), load_u64(raw + 8)};
    const std::uint32_t payload_bytes = load_u32(raw + 16);
    const std::uint32_t payload_crc = load_u32(raw + 20);
    if (offset + kRecordHeaderBytes + payload_bytes > file_size) {
      stop("truncated record payload");
      break;
    }
    payload.resize(payload_bytes);
    if (file.read_at(offset + kRecordHeaderBytes, payload.data(),
                     payload_bytes) != payload_bytes) {
      stop("short record payload read");
      break;
    }
    if (crc32(payload.data(), payload.size()) != payload_crc) {
      stop("record payload checksum mismatch");
      break;
    }
    // A single writer checks contains() before appending, so a duplicate
    // key cannot be a committed record — treat it like a torn tail.
    if (!out.index.emplace(key, std::make_pair(offset, payload_bytes))
             .second) {
      stop("duplicate record key");
      break;
    }
    offset += kRecordHeaderBytes + payload_bytes;
  }
  out.valid_end = out.torn ? offset : file_size;
  return out;
}

}  // namespace

// ---------------------------------------------------------------------
// ResultStore
// ---------------------------------------------------------------------

ResultStore::ResultStore(const std::string& path, const OpenOptions& options)
    : file_(std::make_unique<PosixFile>(
          path, !options.read_only && !options.follow,
          !options.read_only && !options.follow && options.create,
          /*take_lock=*/!options.follow)),
      label_(path),
      writable_(!options.read_only && !options.follow),
      follow_(options.follow) {
  open_validate(options);
}

ResultStore::ResultStore(std::unique_ptr<File> file, std::string label,
                         const OpenOptions& options)
    : file_(std::move(file)),
      label_(std::move(label)),
      writable_(!options.read_only && !options.follow),
      follow_(options.follow) {
  expects(file_ != nullptr, "result store needs a file");
  open_validate(options);
}

ResultStore::~ResultStore() {
  try {
    close();
  } catch (...) {
    // Leaving the dirty flag set is always safe: the next open recovers.
  }
}

void ResultStore::write_fresh_header() {
  Header header;
  header.version = kStoreFormatVersion;
  // Born dirty: the flag only clears on a clean close, so a writer that
  // dies before its first record already reads as "needs recovery".
  header.flags = writable_ ? kDirtyFlag : 0;
  header.app_tag = app_tag_;
  std::uint8_t raw[kStoreHeaderBytes];
  encode_header(raw, header);
  file_->write_at(0, raw, sizeof raw);
  file_->sync();
}

void ResultStore::set_dirty(bool dirty) {
  std::uint8_t raw[2];
  store_u16(raw, dirty ? kDirtyFlag : 0);
  file_->write_at(kFlagsOffset, raw, sizeof raw);
}

void ResultStore::open_validate(const OpenOptions& options) {
  expects(!(options.follow && options.recover),
          "follow and recover are mutually exclusive");
  const std::uint64_t size = file_->size();
  app_tag_ = options.app_tag;

  if (size == 0) {
    if (follow_) {
      // The writer exists but has not finished its first header write
      // yet; start at an empty frontier and let refresh() catch up.
      end_ = 0;
      return;
    }
    if (!writable_) {
      throw bad_store(label_, "store is empty");
    }
    write_fresh_header();
    end_ = kStoreHeaderBytes;
    return;
  }
  if (size < kStoreHeaderBytes) {
    if (follow_) {
      end_ = 0;  // header still in flight; refresh() will pick it up
      return;
    }
    // The creating writer died inside its first header write.
    if (!writable_ || !options.recover) {
      throw recoverable_store(label_,
                              "incomplete header (creating writer "
                              "died?); reopen with recovery (--resume) "
                              "or repair it");
    }
    recovered_bytes_ = size;
    file_->truncate(0);
    write_fresh_header();
    end_ = kStoreHeaderBytes;
    return;
  }

  std::uint8_t raw[kStoreHeaderBytes];
  if (file_->read_at(0, raw, sizeof raw) != sizeof raw) {
    throw bad_store(label_, "short header read");
  }
  const Header header = decode_header(label_, raw);
  if (options.app_tag != 0 && header.app_tag != options.app_tag) {
    throw corrupt_store(label_,
                        "schema tag mismatch (store was written by a "
                        "different result schema)");
  }
  app_tag_ = header.app_tag;

  const ScanOutcome scan = scan_slab(*file_, size);
  if (follow_) {
    // A follower expects motion: the dirty flag is set while the writer
    // lives, and a "torn" tail is simply the record it is appending
    // right now. The index covers the committed prefix; refresh()
    // advances it.
    end_ = scan.valid_end;
    index_ = std::move(scan.index);
    return;
  }
  if (!header.dirty() && scan.torn) {
    // A clean close syncs every record before clearing the flag, so a
    // bad tail under a clean flag can only mean external damage.
    // Refuse — fsck --repair salvages the valid prefix.
    throw corrupt_store(label_, "corrupt: " + scan.detail +
                                    " in a cleanly-closed store (run "
                                    "`hvc_explore store fsck --repair`)");
  }
  if (header.dirty()) {
    if (!writable_) {
      throw recoverable_store(label_,
                              "store was not closed cleanly (writer "
                              "died?); open it writable with recovery "
                              "first");
    }
    if (!options.recover) {
      throw recoverable_store(label_,
                              "store was not closed cleanly (writer "
                              "died?); reopen with recovery (--resume) "
                              "to truncate any torn tail and continue");
    }
    if (scan.torn) {
      recovered_bytes_ = size - scan.valid_end;
      file_->truncate(scan.valid_end);
    }
  }
  end_ = scan.valid_end;
  index_ = std::move(scan.index);
  if (writable_) {
    set_dirty(true);
    file_->sync();
  }
}

bool ResultStore::contains(const Key& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.find(key) != index_.end();
}

std::optional<std::vector<std::uint8_t>> ResultStore::get(
    const Key& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    return std::nullopt;
  }
  const auto [record_offset, payload_bytes] = it->second;
  std::vector<std::uint8_t> record(kRecordHeaderBytes + payload_bytes);
  if (file_->read_at(record_offset, record.data(), record.size()) !=
      record.size()) {
    throw bad_store(label_, "short record read (file shrank under us?)");
  }
  // Paranoid read path: both CRCs re-verified on every warm hit, so a
  // store damaged after open can never silently serve a wrong row.
  if (crc32(record.data(), 28) != load_u32(record.data() + 28) ||
      crc32(record.data() + kRecordHeaderBytes, payload_bytes) !=
          load_u32(record.data() + 20)) {
    throw bad_store(label_, "record checksum mismatch on read");
  }
  return std::vector<std::uint8_t>(record.begin() + kRecordHeaderBytes,
                                   record.end());
}

bool ResultStore::put(const Key& key, const void* payload,
                      std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  expects(writable_ && !closed_, "put() on a read-only or closed store");
  expects(bytes <= 0xFFFFFFFFULL, "record payload larger than 4 GiB");
  if (index_.find(key) != index_.end()) {
    return false;
  }

  std::uint8_t raw[kRecordHeaderBytes];
  std::memset(raw, 0, sizeof raw);
  store_u64(raw, key.lo);
  store_u64(raw + 8, key.hi);
  store_u32(raw + 16, static_cast<std::uint32_t>(bytes));
  store_u32(raw + 20, crc32(payload, bytes));
  store_u32(raw + 28, crc32(raw, 28));

  // Commit protocol: payload first, then the checksummed record header,
  // then the in-memory index. Until the header write returns, the scan
  // sees a torn tail and recovery discards it; after, the record is
  // committed at every kill point.
  file_->write_at(end_ + kRecordHeaderBytes, payload, bytes);
  file_->write_at(end_, raw, sizeof raw);
  index_.emplace(key, std::make_pair(end_, static_cast<std::uint32_t>(bytes)));
  end_ += kRecordHeaderBytes + bytes;
  return true;
}

void ResultStore::sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  expects(!closed_, "sync() on a closed store");
  file_->sync();
}

std::size_t ResultStore::refresh() {
  std::lock_guard<std::mutex> lock(mutex_);
  expects(follow_, "refresh() is follow-mode only");
  const std::uint64_t size = file_->size();
  if (end_ < kStoreHeaderBytes) {
    // Still waiting for the writer's initial header.
    if (size < kStoreHeaderBytes) {
      return 0;
    }
    std::uint8_t raw[kStoreHeaderBytes];
    if (file_->read_at(0, raw, sizeof raw) != sizeof raw) {
      return 0;
    }
    const Header header = decode_header(label_, raw);
    if (app_tag_ != 0 && header.app_tag != app_tag_) {
      throw corrupt_store(label_,
                          "schema tag mismatch (store was written by a "
                          "different result schema)");
    }
    app_tag_ = header.app_tag;
    end_ = kStoreHeaderBytes;
  }
  if (size <= end_) {
    return 0;
  }
  ScanOutcome scan = scan_slab(*file_, size, end_);
  std::size_t added = 0;
  for (auto& [key, location] : scan.index) {
    added += index_.emplace(key, location).second ? 1 : 0;
  }
  end_ = scan.valid_end;
  return added;
}

void ResultStore::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) {
    return;
  }
  if (writable_) {
    // Records must be durable BEFORE the clean flag is: a clean header
    // must never describe a file whose tail is still in flight.
    file_->sync();
    set_dirty(false);
    file_->sync();
  }
  closed_ = true;
}

std::size_t ResultStore::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

std::uint64_t ResultStore::file_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return end_;
}

// ---------------------------------------------------------------------
// fsck / repair
// ---------------------------------------------------------------------

FsckReport ResultStore::fsck(const std::string& path) {
  PosixFile file(path, /*writable=*/false, /*create=*/false);
  FsckReport report;
  report.file_bytes = file.size();
  if (report.file_bytes < kStoreHeaderBytes) {
    report.status = FsckStatus::kCorrupt;
    report.detail = report.file_bytes == 0 ? "empty file"
                                           : "incomplete header";
    return report;
  }
  std::uint8_t raw[kStoreHeaderBytes];
  if (file.read_at(0, raw, sizeof raw) != sizeof raw) {
    report.status = FsckStatus::kCorrupt;
    report.detail = "short header read";
    return report;
  }
  Header header;
  try {
    header = decode_header(path, raw);
  } catch (const ConfigError& error) {
    report.status = FsckStatus::kCorrupt;
    report.detail = error.what();
    return report;
  }
  report.dirty = header.dirty();
  report.app_tag = header.app_tag;

  const ScanOutcome scan = scan_slab(file, report.file_bytes);
  report.records = scan.index.size();
  report.valid_bytes = scan.valid_end;
  if (header.dirty()) {
    report.status = FsckStatus::kRecoverable;
    report.detail = scan.torn
                        ? "writer died mid-append (" + scan.detail + ")"
                        : "writer died after its last commit (no torn "
                          "tail)";
  } else if (scan.torn) {
    report.status = FsckStatus::kCorrupt;
    report.detail = scan.detail + " in a cleanly-closed store";
  } else {
    report.status = FsckStatus::kClean;
    report.detail = "all records validate";
  }
  return report;
}

FsckReport ResultStore::repair(const std::string& path) {
  PosixFile file(path, /*writable=*/true, /*create=*/false);
  const std::uint64_t size = file.size();
  FsckReport report;
  report.file_bytes = size;

  if (size < kStoreHeaderBytes) {
    // Nothing committed yet — rebuild an empty, clean store.
    Header header;
    header.version = kStoreFormatVersion;
    std::uint8_t raw[kStoreHeaderBytes];
    encode_header(raw, header);
    file.truncate(0);
    file.write_at(0, raw, sizeof raw);
    file.sync();
    report.status = FsckStatus::kClean;
    report.valid_bytes = kStoreHeaderBytes;
    report.file_bytes = kStoreHeaderBytes;
    report.detail = "rebuilt empty store (header was incomplete)";
    return report;
  }

  std::uint8_t raw[kStoreHeaderBytes];
  if (file.read_at(0, raw, sizeof raw) != sizeof raw) {
    throw bad_store(path, "short header read");
  }
  // Bad magic/version is unrepairable — decode_header throws.
  const Header header = decode_header(path, raw);
  report.dirty = header.dirty();
  report.app_tag = header.app_tag;

  const ScanOutcome scan = scan_slab(file, size);
  const std::uint64_t torn_bytes = size - scan.valid_end;
  if (scan.torn) {
    file.truncate(scan.valid_end);
  }
  file.sync();
  std::uint8_t flags[2];
  store_u16(flags, 0);
  file.write_at(kFlagsOffset, flags, sizeof flags);
  file.sync();

  report.status = FsckStatus::kClean;
  report.records = scan.index.size();
  report.valid_bytes = scan.valid_end;
  report.file_bytes = scan.valid_end;
  report.detail =
      "kept " + std::to_string(scan.index.size()) + " records" +
      (torn_bytes > 0
           ? ", truncated " + std::to_string(torn_bytes) + " torn bytes"
           : "") +
      (header.dirty() ? ", cleared dirty flag" : "");
  return report;
}

}  // namespace hvc::store
