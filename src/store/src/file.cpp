#include "hvc/store/file.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "hvc/common/error.hpp"

namespace hvc::store {

namespace {

[[nodiscard]] ConfigError io_error(const std::string& path,
                                   const std::string& what, int err) {
  return ConfigError("store file \"" + path + "\": " + what + ": " +
                     std::strerror(err));
}

}  // namespace

// ---------------------------------------------------------------------
// PosixFile
// ---------------------------------------------------------------------

PosixFile::PosixFile(const std::string& path, bool writable, bool create,
                     bool take_lock)
    : path_(path) {
  int flags = writable ? O_RDWR : O_RDONLY;
  if (writable && create) {
    flags |= O_CREAT;
  }
  fd_ = ::open(path.c_str(), flags | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw io_error(path, "cannot open", errno);
  }
  if (!take_lock) {
    return;  // follow-mode reader: observes a live writer, lock-free
  }
  // Advisory single-writer/multi-reader lock; non-blocking so a live
  // writer is reported immediately instead of hanging the sweep.
  if (::flock(fd_, (writable ? LOCK_EX : LOCK_SH) | LOCK_NB) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    if (err == EWOULDBLOCK) {
      throw StoreBusyError("store file \"" + path + "\" is locked by " +
                           (writable ? "another process"
                                     : "a live writer") +
                           " (single-writer discipline)");
    }
    throw io_error(path, "cannot lock", err);
  }
}

PosixFile::~PosixFile() {
  if (fd_ >= 0) {
    ::close(fd_);  // releases the flock
  }
}

std::size_t PosixFile::read_at(std::uint64_t offset, void* out,
                               std::size_t bytes) {
  std::size_t done = 0;
  auto* p = static_cast<std::uint8_t*>(out);
  while (done < bytes) {
    const ssize_t n = ::pread(fd_, p + done, bytes - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw io_error(path_, "read failed", errno);
    }
    if (n == 0) {
      break;  // end of file
    }
    done += static_cast<std::size_t>(n);
  }
  return done;
}

void PosixFile::write_at(std::uint64_t offset, const void* data,
                         std::size_t bytes) {
  std::size_t done = 0;
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (done < bytes) {
    const ssize_t n = ::pwrite(fd_, p + done, bytes - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw io_error(path_, "write failed", errno);
    }
    if (n == 0) {
      throw io_error(path_, "write made no progress (disk full?)", ENOSPC);
    }
    done += static_cast<std::size_t>(n);
  }
}

void PosixFile::truncate(std::uint64_t bytes) {
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
    throw io_error(path_, "truncate failed", errno);
  }
}

void PosixFile::sync() {
  if (::fsync(fd_) != 0) {
    throw io_error(path_, "fsync failed", errno);
  }
}

std::uint64_t PosixFile::size() {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    throw io_error(path_, "stat failed", errno);
  }
  return static_cast<std::uint64_t>(st.st_size);
}

// ---------------------------------------------------------------------
// FaultInjectingFile
// ---------------------------------------------------------------------

FaultInjectingFile::FaultInjectingFile(std::unique_ptr<File> inner,
                                       std::uint64_t fail_after, Mode mode,
                                       std::size_t short_bytes)
    : inner_(std::move(inner)),
      fail_after_(fail_after),
      mode_(mode),
      short_bytes_(short_bytes) {
  expects(inner_ != nullptr, "fault injector needs an inner file");
}

bool FaultInjectingFile::trip() {
  if (fired_) {
    return true;  // a dead writer stays dead
  }
  ++attempted_;
  if (fail_after_ != 0 && attempted_ == fail_after_) {
    fired_ = true;
    return true;
  }
  return false;
}

std::size_t FaultInjectingFile::read_at(std::uint64_t offset, void* out,
                                        std::size_t bytes) {
  return inner_->read_at(offset, out, bytes);
}

void FaultInjectingFile::write_at(std::uint64_t offset, const void* data,
                                  std::size_t bytes) {
  if (trip()) {
    if (mode_ == Mode::kShortWrite && short_bytes_ > 0 &&
        short_bytes_ < bytes) {
      // The torn-write case: a prefix reaches the disk, then the writer
      // dies. Persist it through the inner file before failing.
      inner_->write_at(offset, data, short_bytes_);
    }
    throw ConfigError("injected fault: write failed: " +
                      std::string(std::strerror(ENOSPC)));
  }
  inner_->write_at(offset, data, bytes);
}

void FaultInjectingFile::truncate(std::uint64_t bytes) {
  if (trip()) {
    throw ConfigError("injected fault: truncate failed");
  }
  inner_->truncate(bytes);
}

void FaultInjectingFile::sync() {
  if (trip()) {
    throw ConfigError("injected fault: fsync failed");
  }
  inner_->sync();
}

std::uint64_t FaultInjectingFile::size() { return inner_->size(); }

}  // namespace hvc::store
