// Positioned-I/O file abstraction for the result store.
//
// ResultStore performs all I/O through this interface so the
// fault-injection suite can interpose on every syscall boundary: the
// production PosixFile forwards to pread/pwrite/ftruncate/fsync, and
// FaultInjectingFile wraps any File and fails (ENOSPC) or truncates
// (short write) the Nth mutating operation — deterministically, so every
// write boundary of a store session can be exercised in turn.
//
// The interface is deliberately tiny and positional (no seek state): the
// store never relies on a file cursor, which keeps the crash-ordering
// argument local to each call site.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "hvc/common/error.hpp"

namespace hvc::store {

/// Thrown when a store file is flock'd by another live process (a
/// sweep or daemon holding it). Distinct from corruption: the file is
/// fine, the caller just has to wait — or open it in follow mode.
class StoreBusyError : public ConfigError {
 public:
  using ConfigError::ConfigError;
};

/// Positional file handle. All methods throw ConfigError (with errno
/// text) on I/O failure; short reads at end-of-file are returned, short
/// writes are errors — a File either persists every byte or throws.
class File {
 public:
  virtual ~File() = default;

  /// Reads up to `bytes` at `offset`; returns the bytes read (< bytes
  /// only at end-of-file).
  virtual std::size_t read_at(std::uint64_t offset, void* out,
                              std::size_t bytes) = 0;

  /// Writes exactly `bytes` at `offset` (extending the file as needed).
  virtual void write_at(std::uint64_t offset, const void* data,
                        std::size_t bytes) = 0;

  /// Truncates (or extends with zeros) to `bytes`.
  virtual void truncate(std::uint64_t bytes) = 0;

  /// Flushes file data + metadata to stable storage (fsync).
  virtual void sync() = 0;

  [[nodiscard]] virtual std::uint64_t size() = 0;
};

/// Production File over a POSIX descriptor, holding a BSD advisory lock
/// for its lifetime: exclusive when writable (single-writer discipline),
/// shared when read-only. The lock evaporates with the descriptor, so a
/// SIGKILLed writer never wedges the store.
class PosixFile final : public File {
 public:
  /// Opens `path`. Writable handles may create the file; read-only
  /// handles require it to exist. Throws StoreBusyError when another
  /// process holds a conflicting lock, ConfigError when the file cannot
  /// be opened. `take_lock = false` skips the flock entirely — the
  /// follow-mode reader's loophole: it observes a live writer's store
  /// and accepts that the tail is in motion.
  PosixFile(const std::string& path, bool writable, bool create,
            bool take_lock = true);
  ~PosixFile() override;
  PosixFile(const PosixFile&) = delete;
  PosixFile& operator=(const PosixFile&) = delete;

  std::size_t read_at(std::uint64_t offset, void* out,
                      std::size_t bytes) override;
  void write_at(std::uint64_t offset, const void* data,
                std::size_t bytes) override;
  void truncate(std::uint64_t bytes) override;
  void sync() override;
  [[nodiscard]] std::uint64_t size() override;

 private:
  std::string path_;
  int fd_ = -1;
};

/// Deterministic fault injector for the crash-safety suite. Wraps a real
/// File and fails the Nth mutating operation (write_at/truncate/sync),
/// optionally persisting a prefix of the failing write first (a torn /
/// short write), then refuses all further mutation — modelling a writer
/// that dies or a filesystem that runs out of space mid-record.
class FaultInjectingFile final : public File {
 public:
  enum class Mode {
    kFailCleanly,   ///< the failing op persists nothing (ENOSPC up front)
    kShortWrite,    ///< the failing write persists `short_bytes` first
  };

  /// Fails the `fail_after`-th mutating op (1-based; 0 = never fail).
  FaultInjectingFile(std::unique_ptr<File> inner, std::uint64_t fail_after,
                     Mode mode = Mode::kFailCleanly,
                     std::size_t short_bytes = 0);

  std::size_t read_at(std::uint64_t offset, void* out,
                      std::size_t bytes) override;
  void write_at(std::uint64_t offset, const void* data,
                std::size_t bytes) override;
  void truncate(std::uint64_t bytes) override;
  void sync() override;
  [[nodiscard]] std::uint64_t size() override;

  /// Mutating operations attempted so far (for sizing injection sweeps:
  /// run once with fail_after = 0 and read this count).
  [[nodiscard]] std::uint64_t mutations_attempted() const noexcept {
    return attempted_;
  }
  [[nodiscard]] bool fault_fired() const noexcept { return fired_; }

 private:
  /// Returns true when the current mutation must fail.
  bool trip();

  std::unique_ptr<File> inner_;
  std::uint64_t fail_after_;
  Mode mode_;
  std::size_t short_bytes_;
  std::uint64_t attempted_ = 0;
  bool fired_ = false;
};

}  // namespace hvc::store
