// Crash-safe persistent result store (.hvcs files).
//
// An on-disk memo table mapping 128-bit canonical keys to immutable byte
// payloads, built for the sweep engine: warm points are answered from the
// store, cold points are appended, and a killed writer never corrupts a
// committed record. The design follows the eddy cache idiom (versioned +
// flagged header, append-only checksummed slab, kill-the-writer fault
// tests).
//
// File layout (format version 1, little-endian):
//
//   header (32 bytes)
//     0   u8[4]  magic "HVCS"
//     4   u16    format version (1)
//     6   u16    flags (bit 0 = dirty: set while a writer is live,
//                cleared on clean close; any other bit is unsupported)
//     8   u64    app_tag (schema tag of the embedding layer; a store
//                only opens under the tag it was created with)
//     16  u8[16] reserved, zero
//
//   records, packed end to end (the slab)
//     0   u64    key lo   ─ 128-bit canonical key (hvc::Hash128 of the
//     8   u64    key hi   ─ spec point × seed × schema version)
//     16  u32    payload bytes
//     20  u32    payload CRC-32 (IEEE)
//     24  u32    reserved, zero
//     28  u32    header CRC-32 of record bytes [0, 28)
//     32  u8[payload bytes]
//
// Crash-safety protocol. put() writes the payload first, then the record
// header carrying both checksums, and publishes the record to the
// in-memory index only after both writes return — so the slab prefix up
// to the last fully-checksummed record is always a valid store. On open
// the index is rebuilt by scanning the slab; a scan that ends in a torn
// or truncated record marks the tail. A dirty store (the previous writer
// died) may be opened with OpenOptions::recover, which truncates the
// torn tail and resumes appending; a CLEANLY-closed store with a torn
// tail means external corruption and is always rejected (fsck --repair
// can still salvage the valid prefix).
//
// Durability: committed records survive writer death (SIGKILL, crash)
// immediately; surviving power loss additionally needs sync(), which
// close() performs. Concurrency: one writer (flock exclusive) or many
// readers (flock shared) per file across processes; within a process a
// ResultStore is internally locked, so N sweep threads may share one
// open handle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hvc/store/file.hpp"

namespace hvc::store {

/// A store rejected because its WRITER died: the committed prefix is
/// intact and reopening with OpenOptions::recover (hvc_explore --resume)
/// continues where it stopped. Exit-code class 1 (recoverable).
class StoreRecoverableError : public ConfigError {
 public:
  using ConfigError::ConfigError;
};

/// A store rejected because the FILE is damaged or not a store at all:
/// bad magic/version, schema-tag mismatch, or a torn tail under a clean
/// flag (external damage). Exit-code class 2 (corrupt); fsck --repair
/// may still salvage the valid prefix.
class StoreCorruptError : public ConfigError {
 public:
  using ConfigError::ConfigError;
};

/// Current .hvcs format version.
inline constexpr std::uint16_t kStoreFormatVersion = 1;
/// Fixed sizes of format version 1.
inline constexpr std::size_t kStoreHeaderBytes = 32;
inline constexpr std::size_t kRecordHeaderBytes = 32;

/// A 128-bit canonical record key.
struct Key {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  [[nodiscard]] bool operator==(const Key&) const noexcept = default;
};

struct KeyHash {
  [[nodiscard]] std::size_t operator()(const Key& key) const noexcept {
    return static_cast<std::size_t>(key.lo ^ (key.hi * 0x9e3779b97f4a7c15ULL));
  }
};

struct OpenOptions {
  bool read_only = false;
  /// Writers may create a missing file (ignored for read-only opens).
  bool create = true;
  /// Permits opening a dirty store: the torn tail (if any) is truncated
  /// and the previous writer's uncommitted bytes are discarded. Without
  /// it a dirty store is rejected so the caller must opt into recovery
  /// (hvc_explore --resume).
  bool recover = false;
  /// Schema tag baked into the header at creation and required to match
  /// on every later open (0 = unchecked scratch store).
  std::uint64_t app_tag = 0;
  /// Lock-free read-only observation of a LIVE writer's store (the serve
  /// daemon's, typically): no flock is taken, the dirty flag and a torn
  /// tail are expected — the index covers the valid committed prefix —
  /// and refresh() picks up records the writer commits later. Implies
  /// read_only; mutually exclusive with recover.
  bool follow = false;
};

enum class FsckStatus {
  kClean,        ///< valid header, clean flag, every record checks out
  kRecoverable,  ///< dirty flag set (writer died); prefix is intact
  kCorrupt,      ///< bad header, or a cleanly-closed file with a bad tail
};

[[nodiscard]] const char* to_string(FsckStatus status) noexcept;

/// What fsck/repair found (and, for repair, left behind).
struct FsckReport {
  FsckStatus status = FsckStatus::kCorrupt;
  bool dirty = false;
  std::uint64_t records = 0;      ///< fully-validated records
  std::uint64_t valid_bytes = 0;  ///< header + validated slab prefix
  std::uint64_t file_bytes = 0;
  std::uint64_t app_tag = 0;
  std::string detail;  ///< human-readable finding ("torn record at ...")
};

class ResultStore {
 public:
  /// Opens (or creates) the store at `path` through a PosixFile.
  ResultStore(const std::string& path, const OpenOptions& options);

  /// Opens through a caller-supplied File (fault-injection tests).
  /// `label` stands in for the path in error messages.
  ResultStore(std::unique_ptr<File> file, std::string label,
              const OpenOptions& options);

  /// Best-effort close() — errors are swallowed, leaving the dirty flag
  /// for the next open to recover, which is always safe.
  ~ResultStore();
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  [[nodiscard]] bool contains(const Key& key) const;

  /// The payload committed under `key`, re-verified against its CRC on
  /// every read, or nullopt when absent.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> get(
      const Key& key) const;

  /// Commits a new record and returns true; returns false without
  /// writing when the key is already present (keys are write-once — the
  /// same key always names the same bytes, so the first commit wins).
  /// The check-and-append is one critical section, so concurrent workers
  /// racing to publish the same point commit it exactly once.
  bool put(const Key& key, const void* payload, std::size_t bytes);

  /// Flushes all committed records to stable storage.
  void sync();

  /// Follow-mode only: rescans the slab past the known frontier and
  /// publishes records the live writer has committed since open (or the
  /// last refresh). Returns how many records appeared. The writer's
  /// append-only commit protocol makes this safe without any lock: a
  /// record either validates completely (committed) or the scan stops
  /// at it (still in flight).
  std::size_t refresh();

  /// Syncs, clears the dirty flag, syncs again. After close() the store
  /// only answers contains()/records()-style queries. Idempotent.
  void close();

  [[nodiscard]] std::size_t records() const;
  [[nodiscard]] std::uint64_t file_bytes() const;
  /// Torn-tail bytes truncated during open-time recovery (0 when none).
  [[nodiscard]] std::uint64_t recovered_bytes() const noexcept {
    return recovered_bytes_;
  }
  [[nodiscard]] std::uint64_t app_tag() const noexcept { return app_tag_; }

  /// Read-only integrity check; never modifies the file.
  [[nodiscard]] static FsckReport fsck(const std::string& path);

  /// Salvages the valid record prefix: truncates a torn tail and clears
  /// the dirty flag. Throws when the header itself is unusable.
  static FsckReport repair(const std::string& path);

 private:
  void open_validate(const OpenOptions& options);
  void write_fresh_header();
  void set_dirty(bool dirty);

  mutable std::mutex mutex_;
  std::unique_ptr<File> file_;
  std::string label_;
  bool writable_ = false;
  bool follow_ = false;
  bool closed_ = false;
  std::uint64_t app_tag_ = 0;
  std::uint64_t end_ = 0;  ///< offset one past the last committed record
  std::uint64_t recovered_bytes_ = 0;
  std::unordered_map<Key, std::pair<std::uint64_t, std::uint32_t>, KeyHash>
      index_;  ///< key -> (payload offset, payload bytes)
};

}  // namespace hvc::store
