// CACTI-like SRAM array model.
//
// Substitutes the paper's modified CACTI 6.5 (Section IV-A3): per-access
// dynamic energy, leakage power, access delay and area for one SRAM
// subarray, decomposed the way CACTI does it — row decoder, wordline,
// bitlines, sense amplifiers/output drivers — but driven by our analytic
// 32 nm device model and the sized 6T/8T/10T bitcells.
//
// Sensing: above ~0.7 V the model assumes small-swing differential sensing
// (swing = 20% of Vcc); near threshold sense amplifiers are unreliable, so
// reads are full-swing. Writes are always full-swing.
#pragma once

#include <cstddef>

#include "hvc/tech/sram_cell.hpp"

namespace hvc::power {

/// Physical organisation of one subarray.
struct ArrayGeometry {
  std::size_t rows = 64;        ///< wordlines
  std::size_t cols = 256;       ///< bitline pairs (bits per row)
  std::size_t bits_per_access = 32;  ///< bits read/written per access
};

/// Energy/delay/area figures for one subarray at one operating point.
struct ArrayFigures {
  double read_energy_j = 0.0;
  double write_energy_j = 0.0;
  double leakage_w = 0.0;
  double access_delay_s = 0.0;
  double area_um2 = 0.0;
};

/// One SRAM subarray built from a sized bitcell, evaluated at `vcc`.
class ArrayModel {
 public:
  ArrayModel(ArrayGeometry geometry, tech::CellDesign cell, double vcc,
             const tech::TechNode& node = tech::node32());

  [[nodiscard]] const ArrayGeometry& geometry() const noexcept {
    return geometry_;
  }
  [[nodiscard]] const tech::CellDesign& cell() const noexcept { return cell_; }
  [[nodiscard]] double vcc() const noexcept { return vcc_; }

  /// Dynamic energy of one read access (decoder + wordline + bitlines +
  /// sensing + output drive).
  [[nodiscard]] double read_energy() const noexcept {
    return figures_.read_energy_j;
  }
  /// Dynamic energy of one write access.
  [[nodiscard]] double write_energy() const noexcept {
    return figures_.write_energy_j;
  }
  /// Static power of the whole subarray while powered at vcc.
  [[nodiscard]] double leakage_power() const noexcept {
    return figures_.leakage_w;
  }
  /// Critical-path delay of one access.
  [[nodiscard]] double access_delay() const noexcept {
    return figures_.access_delay_s;
  }
  /// Silicon area including peripheral overhead.
  [[nodiscard]] double area_um2() const noexcept { return figures_.area_um2; }

  [[nodiscard]] const ArrayFigures& figures() const noexcept {
    return figures_;
  }

 private:
  ArrayGeometry geometry_;
  tech::CellDesign cell_;
  double vcc_;
  ArrayFigures figures_;
};

}  // namespace hvc::power
