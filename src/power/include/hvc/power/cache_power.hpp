// Cache-level energy/area/delay model assembled from per-way subarrays.
//
// Mirrors the paper's evaluation setup (Section IV-A): a set-associative
// L1 whose ways can use different bitcells (6T HP ways, 8T/10T ULE ways),
// with EDC check bits stored alongside data/tag words. At HP mode every
// way is active; at ULE mode only ULE ways stay powered and the HP ways
// are gated (gated-Vdd, Powell et al. [18]) leaving a small residual
// leakage. Codes can be enabled per mode ("SECDED is simply turned off at
// HP mode"): disabled check columns are not precharged, so they cost no
// dynamic energy, but they keep leaking because they stay powered.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "hvc/edc/code.hpp"
#include "hvc/edc/cost.hpp"
#include "hvc/power/array.hpp"
#include "hvc/tech/sram_cell.hpp"

namespace hvc::power {

/// Operating mode of the hybrid-Vcc system.
enum class Mode {
  kHp,   ///< high voltage, high frequency, all ways on
  kUle,  ///< near-threshold, low frequency, only ULE ways on
};

[[nodiscard]] const char* to_string(Mode mode);

/// Logical organisation of the cache.
struct CacheOrg {
  std::size_t size_bytes = 8 * 1024;
  std::size_t ways = 8;
  std::size_t line_bytes = 32;
  std::size_t word_bits = 32;
  std::size_t tag_bits = 26;

  [[nodiscard]] std::size_t lines() const noexcept {
    return size_bytes / line_bytes;
  }
  [[nodiscard]] std::size_t sets() const noexcept { return lines() / ways; }
  [[nodiscard]] std::size_t lines_per_way() const noexcept { return sets(); }
  [[nodiscard]] std::size_t words_per_line() const noexcept {
    return line_bytes * 8 / word_bits;
  }

  /// Structural consistency check (throws PreconditionError with the
  /// offending relation): sizes divide into whole lines, lines into whole
  /// sets, lines into whole words. Swept organisations (e.g. an
  /// l2_size_kb axis value) fail here with a real message instead of
  /// building a degenerate cache.
  void validate() const;
};

/// Physical plan for one way: its bitcell and the protection active in
/// each mode (paper Section III-B scenarios).
struct WayPlan {
  tech::CellDesign cell;
  edc::Protection hp_protection = edc::Protection::kNone;
  edc::Protection ule_protection = edc::Protection::kNone;
  bool ule_way = false;  ///< stays powered at ULE mode

  /// The strongest protection this way ever uses: determines how many
  /// check-bit columns are physically built.
  [[nodiscard]] edc::Protection stored_protection() const noexcept;
  [[nodiscard]] edc::Protection protection_at(Mode mode) const noexcept {
    return mode == Mode::kHp ? hp_protection : ule_protection;
  }
};

/// Voltage/frequency of one mode (paper IV-A2: 1V/1GHz HP, 350mV/5MHz ULE).
struct OperatingPoint {
  Mode mode = Mode::kHp;
  double vcc = 1.0;
  double freq_hz = 1e9;
};

/// Per-event energies the cache simulator charges, all in joules.
class CacheEnergyModel {
 public:
  CacheEnergyModel(const CacheOrg& org, std::vector<WayPlan> ways,
                   OperatingPoint op,
                   const tech::TechNode& node = tech::node32());

  [[nodiscard]] const CacheOrg& org() const noexcept { return org_; }
  [[nodiscard]] const OperatingPoint& op() const noexcept { return op_; }
  [[nodiscard]] std::size_t way_count() const noexcept { return ways_.size(); }
  [[nodiscard]] const WayPlan& way(std::size_t w) const;
  [[nodiscard]] bool way_active(std::size_t w) const;

  /// Dynamic energy of one lookup: every active way reads its tag word and
  /// one data word in parallel (way-parallel L1 read). EDC decode energy is
  /// charged separately by the cache via edc_decode_energy().
  [[nodiscard]] double lookup_energy() const noexcept { return lookup_energy_; }

  /// Dynamic energy of writing one data word into way `w` (store hit),
  /// including EDC encoding when that way's code is active.
  [[nodiscard]] double word_write_energy(std::size_t w) const;

  /// Dynamic energy of filling a whole line into way `w` (refill),
  /// including tag write and all EDC encodes.
  [[nodiscard]] double line_fill_energy(std::size_t w) const;

  /// Dynamic energy of reading a whole line from way `w` (writeback).
  [[nodiscard]] double line_read_energy(std::size_t w) const;

  /// EDC decode energy for one word from way `w` (0 if code off).
  [[nodiscard]] double edc_decode_energy(std::size_t w) const;
  /// EDC encode energy for one word into way `w` (0 if code off).
  [[nodiscard]] double edc_encode_energy(std::size_t w) const;

  /// Total static power: active ways leak fully; gated ways retain a
  /// small residual (gated-Vdd).
  [[nodiscard]] double leakage_power() const noexcept { return leakage_w_; }

  /// Leakage attributed to EDC logic blocks (gated off with their way).
  [[nodiscard]] double edc_leakage_power() const noexcept {
    return edc_leakage_w_;
  }

  /// Worst active-way access delay (s), excluding EDC.
  [[nodiscard]] double access_delay() const noexcept { return access_delay_; }
  /// Worst-case EDC decode delay among active coded ways (s).
  [[nodiscard]] double edc_delay() const noexcept { return edc_delay_; }

  /// Whether any active way runs with EDC enabled in this mode (adds the
  /// paper's one-cycle encode/decode latency).
  [[nodiscard]] bool edc_active() const noexcept { return edc_active_; }

  /// Total silicon area of the cache (um^2), including check-bit columns
  /// and EDC logic (mode-independent).
  [[nodiscard]] double total_area_um2() const noexcept { return area_um2_; }

 private:
  struct WayArrays {
    // Physical arrays (all columns, incl. strongest-protection check bits):
    // source of leakage and area.
    std::unique_ptr<ArrayModel> tag_physical;
    std::unique_ptr<ArrayModel> data_physical;
    // Dynamic arrays with only the columns active in this mode.
    std::unique_ptr<ArrayModel> tag_dynamic;
    std::unique_ptr<ArrayModel> data_dynamic;
    // EDC circuitry for the protection active in this mode.
    std::unique_ptr<edc::Codec> codec;  // nullptr when no code active
    double encode_energy = 0.0;
    double decode_energy = 0.0;
    double edc_leakage = 0.0;
    double edc_delay = 0.0;
    double edc_area_um2 = 0.0;
  };

  CacheOrg org_;
  std::vector<WayPlan> ways_;
  OperatingPoint op_;
  std::vector<WayArrays> arrays_;
  double lookup_energy_ = 0.0;
  double leakage_w_ = 0.0;
  double edc_leakage_w_ = 0.0;
  double access_delay_ = 0.0;
  double edc_delay_ = 0.0;
  bool edc_active_ = false;
  double area_um2_ = 0.0;
};

/// Residual leakage fraction of a gated-Vdd way (Powell et al. report
/// ~97% leakage reduction).
inline constexpr double kGatedLeakageResidual = 0.03;

}  // namespace hvc::power
