#include "hvc/power/array.hpp"

#include <algorithm>
#include <cmath>

#include "hvc/common/error.hpp"

namespace hvc::power {

namespace {

/// ceil(log2(x)) for x >= 1.
[[nodiscard]] std::size_t clog2(std::size_t x) {
  std::size_t bits = 0;
  std::size_t value = 1;
  while (value < x) {
    value <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

ArrayModel::ArrayModel(ArrayGeometry geometry, tech::CellDesign cell,
                       double vcc, const tech::TechNode& node)
    : geometry_(geometry), cell_(cell), vcc_(vcc) {
  expects(geometry_.rows >= 1 && geometry_.cols >= 1, "empty array");
  expects(geometry_.bits_per_access >= 1 &&
              geometry_.bits_per_access <= geometry_.cols,
          "bits_per_access must fit in one row");
  expects(vcc_ > 0.05 && vcc_ <= 1.5, "vcc out of modelled range");

  const tech::TransistorModel model(node);
  const tech::CellElectrical cellel = tech::cell_electrical(cell_, vcc_, node);

  // --- geometry-derived wire lengths ---
  const double cell_area_um2 =
      tech::cell_area_f2(cell_, node) * node.feature_nm * node.feature_nm *
      1e-6;  // F^2 -> um^2
  const double cell_pitch_um = std::sqrt(cell_area_um2);
  const double wordline_um = cell_pitch_um * static_cast<double>(geometry_.cols);
  const double bitline_um = cell_pitch_um * static_cast<double>(geometry_.rows);

  // --- capacitances ---
  const double c_wordline =
      static_cast<double>(geometry_.cols) * cellel.wordline_cap_f +
      wordline_um * node.cwire_ff_per_um * 1e-15;
  const double c_bitline =
      static_cast<double>(geometry_.rows) * cellel.bitline_cap_f +
      bitline_um * node.cwire_ff_per_um * 1e-15;

  // --- row decoder: ~2 gate levels per address bit, driving the wordline.
  const std::size_t addr_bits = clog2(geometry_.rows);
  const tech::Device decoder_dev{2.0};
  const double c_decoder_stage =
      4.0 * (model.cgate(decoder_dev) + model.cdrain(decoder_dev));
  const double decoder_energy =
      static_cast<double>(std::max<std::size_t>(addr_bits, 1)) * 2.0 *
      c_decoder_stage * vcc_ * vcc_;

  // --- sensing swing ---
  const bool small_swing = vcc_ >= 0.7;
  const double read_swing = small_swing ? 0.20 * vcc_ : vcc_;

  // Differential cells (6T/10T) toggle both bitlines of a pair; the 8T
  // read port is single-ended.
  const double bitlines_per_read = cell_.kind == tech::CellKind::k8T ? 1.0 : 2.0;

  // All columns are precharged and selected rows discharge them; energy is
  // counted for every column in the row (CACTI does the same for the
  // active mat), with sensing on the accessed bits only.
  const double read_bitline_energy =
      static_cast<double>(geometry_.cols) * bitlines_per_read * c_bitline *
      read_swing * vcc_;
  const tech::Device sense_dev{2.0};
  const double sense_energy_per_bit =
      6.0 * (model.cgate(sense_dev) + model.cdrain(sense_dev)) * vcc_ * vcc_;
  const double sense_energy = small_swing
                                  ? static_cast<double>(geometry_.bits_per_access) *
                                        sense_energy_per_bit
                                  : static_cast<double>(geometry_.bits_per_access) *
                                        0.5 * sense_energy_per_bit;

  const double read_energy = decoder_energy + c_wordline * vcc_ * vcc_ +
                             read_bitline_energy + sense_energy;

  // --- write: full swing on the written columns, both bitlines driven,
  // plus internal node flips (~half the bits change on average).
  const double write_bitline_energy =
      static_cast<double>(geometry_.bits_per_access) * 2.0 * c_bitline * vcc_ *
      vcc_;
  const double internal_flip_energy =
      0.5 * static_cast<double>(geometry_.bits_per_access) *
      cellel.internal_cap_f * vcc_ * vcc_;
  const double write_energy = decoder_energy + c_wordline * vcc_ * vcc_ +
                              write_bitline_energy + internal_flip_energy;

  // --- leakage: every cell leaks; peripherals add ~15% on top.
  const double cell_leakage =
      static_cast<double>(geometry_.rows) *
      static_cast<double>(geometry_.cols) * cellel.leakage_a * vcc_;
  const double leakage = cell_leakage * 1.15;

  // --- delay: decoder chain + wordline RC + bitline discharge + sensing.
  const tech::Device wl_driver{4.0};
  const double decoder_delay =
      static_cast<double>(std::max<std::size_t>(2 * addr_bits, 2)) *
      model.gate_delay(decoder_dev, c_decoder_stage, vcc_);
  const double wordline_delay = model.gate_delay(wl_driver, c_wordline, vcc_);
  const double bitline_delay =
      cellel.read_current_a > 0.0
          ? c_bitline * read_swing / cellel.read_current_a
          : 1.0;
  const double delay = decoder_delay + wordline_delay + bitline_delay;

  // --- area: cells + ~30% peripheral (decoder, sense amps, drivers).
  const double area =
      cell_area_um2 * static_cast<double>(geometry_.rows) *
      static_cast<double>(geometry_.cols) * 1.30;

  figures_ = {read_energy, write_energy, leakage, delay, area};
}

}  // namespace hvc::power
