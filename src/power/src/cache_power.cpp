#include "hvc/power/cache_power.hpp"

#include <algorithm>

#include "hvc/common/error.hpp"
#include "hvc/tech/transistor.hpp"

namespace hvc::power {

namespace {

[[nodiscard]] edc::GateFigures to_gate_figures(const tech::LogicFigures& f) {
  return {f.switch_energy_j, f.leakage_w, f.delay_s};
}

/// Area of one logic gate in um^2 (rough standard-cell footprint at 32 nm).
constexpr double kGateAreaUm2 = 0.6;

}  // namespace

const char* to_string(Mode mode) { return mode == Mode::kHp ? "HP" : "ULE"; }

void CacheOrg::validate() const {
  expects(ways >= 1, "cache needs at least one way");
  expects(line_bytes >= 4 && line_bytes % 4 == 0,
          "lines must hold whole 4-byte words");
  expects(word_bits >= 1 && (line_bytes * 8) % word_bits == 0,
          "lines must hold a whole number of data words");
  expects(size_bytes >= line_bytes && size_bytes % line_bytes == 0,
          "cache size must hold whole lines");
  expects(lines() % ways == 0 && sets() >= 1,
          "cache size must divide evenly into sets (size/line/ways)");
}

edc::Protection WayPlan::stored_protection() const noexcept {
  const auto rank = [](edc::Protection p) {
    return p == edc::Protection::kNone ? 0 : p == edc::Protection::kSecded ? 1 : 2;
  };
  return rank(hp_protection) >= rank(ule_protection) ? hp_protection
                                                     : ule_protection;
}

CacheEnergyModel::CacheEnergyModel(const CacheOrg& org,
                                   std::vector<WayPlan> ways,
                                   OperatingPoint op,
                                   const tech::TechNode& node)
    : org_(org), ways_(std::move(ways)), op_(op) {
  expects(org_.ways >= 1, "cache needs at least one way");
  expects(ways_.size() == org_.ways, "one WayPlan per way required");
  expects(org_.size_bytes % (org_.line_bytes * org_.ways) == 0,
          "cache size must divide evenly into sets");

  const auto gate = to_gate_figures(tech::xor_gate_figures(node, op_.vcc));
  arrays_.reserve(ways_.size());

  for (std::size_t w = 0; w < ways_.size(); ++w) {
    const WayPlan& plan = ways_[w];
    WayArrays entry;

    const std::size_t stored_check_data =
        edc::check_bits_for(plan.stored_protection());
    const std::size_t stored_check_tag = stored_check_data;
    const edc::Protection active = plan.protection_at(op_.mode);
    const std::size_t active_check = edc::check_bits_for(active);

    // --- physical arrays (always built with the widest protection) ---
    ArrayGeometry tag_phys;
    tag_phys.rows = org_.lines_per_way();
    tag_phys.cols = org_.tag_bits + stored_check_tag;
    tag_phys.bits_per_access = tag_phys.cols;
    entry.tag_physical =
        std::make_unique<ArrayModel>(tag_phys, plan.cell, op_.vcc, node);

    ArrayGeometry data_phys;
    data_phys.rows = org_.lines_per_way();
    data_phys.cols = org_.line_bytes * 8 +
                     org_.words_per_line() * stored_check_data;
    data_phys.bits_per_access = org_.word_bits + stored_check_data;
    entry.data_physical =
        std::make_unique<ArrayModel>(data_phys, plan.cell, op_.vcc, node);

    // --- dynamic arrays: only the columns active in this mode ---
    ArrayGeometry tag_dyn = tag_phys;
    tag_dyn.cols = org_.tag_bits + active_check;
    tag_dyn.bits_per_access = tag_dyn.cols;
    entry.tag_dynamic =
        std::make_unique<ArrayModel>(tag_dyn, plan.cell, op_.vcc, node);

    ArrayGeometry data_dyn = data_phys;
    data_dyn.cols = org_.line_bytes * 8 + org_.words_per_line() * active_check;
    data_dyn.bits_per_access = org_.word_bits + active_check;
    entry.data_dynamic =
        std::make_unique<ArrayModel>(data_dyn, plan.cell, op_.vcc, node);

    // --- EDC circuitry for the active protection ---
    if (active != edc::Protection::kNone) {
      entry.codec = edc::make_codec(active, org_.word_bits);
      const auto enc = edc::circuit_cost(edc::encoder_shape(*entry.codec), gate);
      const auto dec = edc::circuit_cost(edc::decoder_shape(*entry.codec), gate);
      entry.encode_energy = enc.energy_j;
      entry.decode_energy = dec.energy_j;
      entry.edc_leakage = enc.leakage_w + dec.leakage_w;
      entry.edc_delay = std::max(enc.delay_s, dec.delay_s);
      entry.edc_area_um2 =
          static_cast<double>(enc.gates + dec.gates) * kGateAreaUm2;
    }

    arrays_.push_back(std::move(entry));
  }

  // --- aggregate per-mode figures ---
  for (std::size_t w = 0; w < ways_.size(); ++w) {
    const auto& entry = arrays_[w];
    const bool active = way_active(w);
    const double phys_leak = entry.tag_physical->leakage_power() +
                             entry.data_physical->leakage_power();
    if (active) {
      lookup_energy_ += entry.tag_dynamic->read_energy() +
                        entry.data_dynamic->read_energy();
      if (entry.codec) {
        edc_active_ = true;
        edc_delay_ = std::max(edc_delay_, entry.edc_delay);
      }
      leakage_w_ += phys_leak;
      edc_leakage_w_ += entry.edc_leakage;
      access_delay_ = std::max({access_delay_,
                                entry.tag_dynamic->access_delay(),
                                entry.data_dynamic->access_delay()});
    } else {
      leakage_w_ += phys_leak * kGatedLeakageResidual;
      edc_leakage_w_ += entry.edc_leakage * kGatedLeakageResidual;
    }
    area_um2_ += entry.tag_physical->area_um2() +
                 entry.data_physical->area_um2() + entry.edc_area_um2;
  }
  leakage_w_ += edc_leakage_w_;
}

const WayPlan& CacheEnergyModel::way(std::size_t w) const {
  expects(w < ways_.size(), "way index out of range");
  return ways_[w];
}

bool CacheEnergyModel::way_active(std::size_t w) const {
  expects(w < ways_.size(), "way index out of range");
  return op_.mode == Mode::kHp || ways_[w].ule_way;
}

double CacheEnergyModel::word_write_energy(std::size_t w) const {
  expects(w < arrays_.size(), "way index out of range");
  return arrays_[w].data_dynamic->write_energy();
}

double CacheEnergyModel::line_fill_energy(std::size_t w) const {
  expects(w < arrays_.size(), "way index out of range");
  const auto& entry = arrays_[w];
  const auto words = static_cast<double>(org_.words_per_line());
  return words * entry.data_dynamic->write_energy() +
         entry.tag_dynamic->write_energy();
}

double CacheEnergyModel::line_read_energy(std::size_t w) const {
  expects(w < arrays_.size(), "way index out of range");
  const auto& entry = arrays_[w];
  const auto words = static_cast<double>(org_.words_per_line());
  return words * entry.data_dynamic->read_energy();
}

double CacheEnergyModel::edc_decode_energy(std::size_t w) const {
  expects(w < arrays_.size(), "way index out of range");
  return arrays_[w].codec ? arrays_[w].decode_energy : 0.0;
}

double CacheEnergyModel::edc_encode_energy(std::size_t w) const {
  expects(w < arrays_.size(), "way index out of range");
  return arrays_[w].codec ? arrays_[w].encode_energy : 0.0;
}

}  // namespace hvc::power
