#include "hvc/edc/hsiao.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "hvc/common/error.hpp"

namespace hvc::edc {

namespace {

/// Number of r-bit columns with odd weight >= 3 (unit columns are reserved
/// for the check-bit identity part).
[[nodiscard]] std::size_t odd_nonunit_columns(std::size_t r) {
  std::size_t count = 0;
  for (std::uint64_t col = 1; col < (1ULL << r); ++col) {
    const auto weight = static_cast<std::size_t>(std::popcount(col));
    if (weight >= 3 && weight % 2 == 1) {
      ++count;
    }
  }
  return count;
}

}  // namespace

std::size_t HsiaoSecded::min_check_bits(std::size_t data_bits) {
  expects(data_bits >= 1, "HsiaoSecded requires at least one data bit");
  for (std::size_t r = 3; r <= 20; ++r) {
    if (odd_nonunit_columns(r) >= data_bits) {
      return r;
    }
  }
  throw PreconditionError("HsiaoSecded data width too large");
}

HsiaoSecded::HsiaoSecded(std::size_t data_bits, std::size_t check_bits)
    : data_bits_(data_bits),
      check_bits_(check_bits == 0 ? min_check_bits(data_bits) : check_bits) {
  expects(check_bits_ >= min_check_bits(data_bits),
          "HsiaoSecded: too few check bits for this data width");
  expects(check_bits_ <= 20, "HsiaoSecded: check width too large");
  const std::size_t r = check_bits_;
  const std::size_t n = data_bits_ + r;

  // Candidate columns: odd weight >= 3, grouped by weight ascending so the
  // lightest (cheapest) columns are used first.
  std::vector<std::uint64_t> candidates;
  for (std::size_t weight = 3; weight <= r; weight += 2) {
    for (std::uint64_t col = 1; col < (1ULL << r); ++col) {
      if (static_cast<std::size_t>(std::popcount(col)) == weight) {
        candidates.push_back(col);
      }
    }
  }
  ensure(candidates.size() >= data_bits_, "not enough Hsiao columns");

  // Greedy row balancing: pick, among remaining lightest-weight columns,
  // the one that keeps per-row one-counts most even. This follows Hsiao's
  // "equal weight per row" goal that bounds the widest XOR tree.
  std::vector<std::size_t> row_load(r, 0);
  column_syndromes_.reserve(data_bits_);
  std::vector<bool> used(candidates.size(), false);

  for (std::size_t picked = 0; picked < data_bits_; ++picked) {
    std::size_t best = candidates.size();
    long best_score = 0;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (used[c]) {
        continue;
      }
      // Only consider the currently lightest available weight class.
      if (best != candidates.size() &&
          std::popcount(candidates[c]) > std::popcount(candidates[best])) {
        break;
      }
      long score = 0;
      for (std::size_t row = 0; row < r; ++row) {
        if ((candidates[c] >> row) & 1ULL) {
          score += static_cast<long>(row_load[row]);
        }
      }
      if (best == candidates.size() || score < best_score) {
        best = c;
        best_score = score;
      }
    }
    ensure(best < candidates.size(), "Hsiao column selection failed");
    used[best] = true;
    column_syndromes_.push_back(candidates[best]);
    for (std::size_t row = 0; row < r; ++row) {
      if ((candidates[best] >> row) & 1ULL) {
        ++row_load[row];
      }
    }
  }

  // Assemble H rows over [data || check]; the check part is the identity.
  rows_.assign(r, BitVec(n));
  for (std::size_t col = 0; col < data_bits_; ++col) {
    for (std::size_t row = 0; row < r; ++row) {
      if ((column_syndromes_[col] >> row) & 1ULL) {
        rows_[row].set(col);
      }
    }
  }
  for (std::size_t row = 0; row < r; ++row) {
    rows_[row].set(data_bits_ + row);
  }

  // Word-level fast path: pack the H rows into 64-bit masks and invert the
  // column-syndrome map into a direct lookup table. Only possible when the
  // whole codeword fits one machine word (all paper configs do).
  if (n <= 64) {
    row_data_masks_.resize(r);
    row_masks_.resize(r);
    for (std::size_t row = 0; row < r; ++row) {
      row_masks_[row] = rows_[row].to_word();
      row_data_masks_[row] = row_masks_[row] & low_mask(data_bits_);
    }
    syndrome_to_position_.assign(std::size_t{1} << r, -1);
    for (std::size_t col = 0; col < data_bits_; ++col) {
      syndrome_to_position_[column_syndromes_[col]] =
          static_cast<std::int32_t>(col);
    }
  }
}

std::string HsiaoSecded::name() const {
  return "SECDED(" + std::to_string(codeword_bits()) + "," +
         std::to_string(data_bits_) + ")";
}

BitVec HsiaoSecded::encode(const BitVec& data) const {
  expects(data.size() == data_bits_, "encode: wrong data width");
  BitVec codeword(codeword_bits());
  for (std::size_t i = 0; i < data_bits_; ++i) {
    codeword.set_unchecked(i, data.get_unchecked(i));
  }
  for (std::size_t row = 0; row < check_bits_; ++row) {
    // Check bit = parity of data positions selected by row `row`.
    bool parity = false;
    for (std::size_t i = 0; i < data_bits_; ++i) {
      if (rows_[row].get_unchecked(i) && data.get_unchecked(i)) {
        parity = !parity;
      }
    }
    codeword.set_unchecked(data_bits_ + row, parity);
  }
  return codeword;
}

DecodeResult HsiaoSecded::decode(const BitVec& received) const {
  expects(received.size() == codeword_bits(), "decode: wrong codeword width");
  std::uint64_t syndrome = 0;
  for (std::size_t row = 0; row < check_bits_; ++row) {
    if (rows_[row].dot(received)) {
      syndrome |= 1ULL << row;
    }
  }

  DecodeResult result;
  if (syndrome == 0) {
    result.status = DecodeStatus::kClean;
    result.data = received.slice(0, data_bits_);
    return result;
  }

  const auto weight = static_cast<std::size_t>(std::popcount(syndrome));
  if (weight % 2 == 0) {
    // Even nonzero syndrome: double error (Hsiao's key property).
    result.status = DecodeStatus::kDetected;
    return result;
  }

  // Odd syndrome: single error. Unit syndrome -> a check bit flipped; data
  // is untouched. Otherwise find the matching data column.
  if (weight == 1) {
    result.status = DecodeStatus::kCorrected;
    result.corrected_bits = 1;
    result.data = received.slice(0, data_bits_);
    return result;
  }
  const auto it = std::find(column_syndromes_.begin(), column_syndromes_.end(),
                            syndrome);
  if (it == column_syndromes_.end()) {
    // Odd-weight syndrome not matching any column: >= 3 errors detected.
    result.status = DecodeStatus::kDetected;
    return result;
  }
  const auto position =
      static_cast<std::size_t>(std::distance(column_syndromes_.begin(), it));
  result.status = DecodeStatus::kCorrected;
  result.corrected_bits = 1;
  result.data = received.slice(0, data_bits_);
  result.data.flip(position);
  return result;
}

std::uint64_t HsiaoSecded::encode_word(std::uint64_t data) const {
  if (row_data_masks_.empty()) {
    return Codec::encode_word(data);  // wide code: base enforces the word-path precondition
  }
  data &= low_mask(data_bits_);
  std::uint64_t codeword = data;
  for (std::size_t row = 0; row < check_bits_; ++row) {
    const std::uint64_t parity =
        static_cast<std::uint64_t>(std::popcount(data & row_data_masks_[row])) &
        1ULL;
    codeword |= parity << (data_bits_ + row);
  }
  return codeword;
}

WordDecodeResult HsiaoSecded::decode_word(std::uint64_t received) const {
  if (row_masks_.empty()) {
    return Codec::decode_word(received);  // wide code: base enforces the word-path precondition
  }
  received &= low_mask(codeword_bits());
  std::uint64_t syndrome = 0;
  for (std::size_t row = 0; row < check_bits_; ++row) {
    const std::uint64_t parity =
        static_cast<std::uint64_t>(std::popcount(received & row_masks_[row])) &
        1ULL;
    syndrome |= parity << row;
  }

  WordDecodeResult result;
  const std::uint64_t data_mask = low_mask(data_bits_);
  if (syndrome == 0) {
    result.data = received & data_mask;
    return result;
  }
  if ((std::popcount(syndrome) & 1) == 0) {
    // Even nonzero syndrome: double error (Hsiao's key property).
    result.status = DecodeStatus::kDetected;
    return result;
  }
  if (std::popcount(syndrome) == 1) {
    // A check bit flipped; the data bits are untouched.
    result.status = DecodeStatus::kCorrected;
    result.corrected_bits = 1;
    result.data = received & data_mask;
    return result;
  }
  const std::int32_t position = syndrome_to_position_[syndrome];
  if (position < 0) {
    // Odd-weight syndrome matching no column: >= 3 errors detected.
    result.status = DecodeStatus::kDetected;
    return result;
  }
  result.status = DecodeStatus::kCorrected;
  result.corrected_bits = 1;
  result.data = (received ^ (1ULL << position)) & data_mask;
  return result;
}

const BitVec& HsiaoSecded::parity_row(std::size_t r) const {
  expects(r < rows_.size(), "parity_row index out of range");
  return rows_[r];
}

std::size_t HsiaoSecded::max_row_weight() const noexcept {
  std::size_t widest = 0;
  for (const auto& row : rows_) {
    widest = std::max(widest, row.popcount());
  }
  return widest;
}

std::size_t HsiaoSecded::total_ones() const noexcept {
  return std::accumulate(rows_.begin(), rows_.end(), std::size_t{0},
                         [](std::size_t acc, const BitVec& row) {
                           return acc + row.popcount();
                         });
}

}  // namespace hvc::edc
