#include "hvc/edc/gf2m.hpp"

#include "hvc/common/error.hpp"

namespace hvc::edc {

std::uint32_t GF2m::default_primitive(std::size_t m) {
  // Standard primitive polynomials (Lin & Costello, Appendix A).
  switch (m) {
    case 2: return 0b111;                 // x^2+x+1
    case 3: return 0b1011;                // x^3+x+1
    case 4: return 0b10011;               // x^4+x+1
    case 5: return 0b100101;              // x^5+x^2+1
    case 6: return 0b1000011;             // x^6+x+1
    case 7: return 0b10001001;            // x^7+x^3+1
    case 8: return 0b100011101;           // x^8+x^4+x^3+x^2+1
    case 9: return 0b1000010001;          // x^9+x^4+1
    case 10: return 0b10000001001;        // x^10+x^3+1
    case 11: return 0b100000000101;       // x^11+x^2+1
    case 12: return 0b1000001010011;      // x^12+x^6+x^4+x+1
    case 13: return 0b10000000011011;     // x^13+x^4+x^3+x+1
    case 14: return 0b100010001000011;    // x^14+x^10+x^6+x+1
    case 15: return 0b1000000000000011;   // x^15+x+1
    case 16: return 0b10001000000001011;  // x^16+x^12+x^3+x+1
    default:
      throw PreconditionError("GF2m: unsupported field degree");
  }
}

GF2m::GF2m(std::size_t m, std::uint32_t primitive_poly)
    : m_(m), q_(1U << m) {
  expects(m >= 2 && m <= 16, "GF2m supports m in [2,16]");
  if (primitive_poly == 0) {
    primitive_poly = default_primitive(m);
  }
  expects((primitive_poly >> m) == 1U, "primitive polynomial degree mismatch");

  exp_.assign(2 * (q_ - 1), 0);
  log_.assign(q_, 0);

  std::uint32_t value = 1;
  for (std::uint32_t i = 0; i < q_ - 1; ++i) {
    exp_[i] = value;
    ensure(value != 0 && value < q_, "GF2m table generation out of range");
    ensure(i == 0 || value != 1, "polynomial is not primitive (short cycle)");
    log_[value] = i;
    value <<= 1;
    if (value & q_) {
      value ^= primitive_poly;
    }
  }
  // Duplicate for cheap modular exponent arithmetic.
  for (std::uint32_t i = 0; i < q_ - 1; ++i) {
    exp_[q_ - 1 + i] = exp_[i];
  }
}

std::uint32_t GF2m::alpha_pow(std::int64_t i) const noexcept {
  const auto n = static_cast<std::int64_t>(order());
  std::int64_t reduced = i % n;
  if (reduced < 0) {
    reduced += n;
  }
  return exp_[static_cast<std::size_t>(reduced)];
}

std::uint32_t GF2m::log(std::uint32_t x) const {
  expects(x != 0 && x < q_, "GF2m::log requires a nonzero field element");
  return log_[x];
}

std::uint32_t GF2m::mul(std::uint32_t a, std::uint32_t b) const noexcept {
  if (a == 0 || b == 0) {
    return 0;
  }
  // log_[a] + log_[b] <= 2(q-2) < 2(q-1): the doubled table absorbs the
  // wraparound without a modulo.
  return alpha_pow_reduced(log_[a] + log_[b]);
}

std::uint32_t GF2m::div(std::uint32_t a, std::uint32_t b) const {
  expects(b != 0, "GF2m division by zero");
  if (a == 0) {
    return 0;
  }
  // log_[a] - log_[b] + (q-1) lands in [1, 2(q-1)): in table range.
  return alpha_pow_reduced(log_[a] + order() - log_[b]);
}

std::uint32_t GF2m::inv(std::uint32_t a) const {
  expects(a != 0, "GF2m inverse of zero");
  return alpha_pow_reduced(order() - log_[a]);
}

std::uint32_t GF2m::pow(std::uint32_t a, std::int64_t e) const {
  if (a == 0) {
    expects(e > 0, "GF2m 0^e requires e > 0");
    return 0;
  }
  const auto n = static_cast<std::int64_t>(order());
  std::int64_t exponent = (static_cast<std::int64_t>(log_[a]) * (e % n)) % n;
  if (exponent < 0) {
    exponent += n;
  }
  return exp_[static_cast<std::size_t>(exponent)];
}

std::uint32_t GF2m::sqrt(std::uint32_t a) const noexcept {
  // In characteristic 2 the Frobenius map x -> x^2 is bijective;
  // sqrt(a) = a^(2^(m-1)).
  std::uint32_t result = a;
  for (std::size_t i = 0; i + 1 < m_; ++i) {
    result = mul(result, result);
  }
  return result;
}

std::uint32_t GF2m::trace(std::uint32_t a) const noexcept {
  std::uint32_t sum = 0;
  std::uint32_t term = a;
  for (std::size_t i = 0; i < m_; ++i) {
    sum ^= term;
    term = mul(term, term);
  }
  // The trace lands in GF(2) = {0,1}.
  return sum;
}

GF2m::QuadraticRoot GF2m::solve_x2_plus_x(std::uint32_t c) const noexcept {
  if (trace(c) != 0) {
    return {};
  }
  // Half-trace style search is overkill for m <= 16 table fields: scan.
  // (Used only during decode of rare multi-bit errors; q <= 65536.)
  for (std::uint32_t x = 0; x < q_; ++x) {
    if (static_cast<std::uint32_t>(mul(x, x) ^ x) == c) {
      return {true, x};
    }
  }
  return {};
}

}  // namespace hvc::edc
