#include "hvc/edc/code.hpp"

#include <algorithm>

#include "hvc/common/error.hpp"
#include "hvc/edc/bch.hpp"
#include "hvc/edc/hsiao.hpp"

namespace hvc::edc {

std::string to_string(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kClean: return "clean";
    case DecodeStatus::kCorrected: return "corrected";
    case DecodeStatus::kDetected: return "detected";
  }
  return "?";
}

std::string to_string(Protection protection) {
  switch (protection) {
    case Protection::kNone: return "none";
    case Protection::kSecded: return "SECDED";
    case Protection::kDected: return "DECTED";
  }
  return "?";
}

std::uint64_t Codec::encode_word(std::uint64_t data) const {
  expects(has_word_path(), "encode_word requires codewords of <= 64 bits");
  return encode(BitVec::from_word(data, data_bits())).to_word();
}

WordDecodeResult Codec::decode_word(std::uint64_t received) const {
  expects(has_word_path(), "decode_word requires codewords of <= 64 bits");
  const DecodeResult decoded =
      decode(BitVec::from_word(received, codeword_bits()));
  WordDecodeResult result;
  result.status = decoded.status;
  result.corrected_bits = static_cast<std::uint32_t>(decoded.corrected_bits);
  if (decoded.status != DecodeStatus::kDetected) {
    result.data = decoded.data.to_word();
  }
  return result;
}

std::size_t check_bits_for(Protection protection) {
  switch (protection) {
    case Protection::kNone: return 0;
    case Protection::kSecded: return 7;   // paper §III-C
    case Protection::kDected: return 13;  // paper §III-C
  }
  return 0;
}

NullCode::NullCode(std::size_t data_bits) : data_bits_(data_bits) {
  expects(data_bits >= 1, "NullCode requires at least one data bit");
}

std::string NullCode::name() const {
  return "NONE(" + std::to_string(data_bits_) + ")";
}

BitVec NullCode::encode(const BitVec& data) const {
  expects(data.size() == data_bits_, "encode: wrong data width");
  return data;
}

DecodeResult NullCode::decode(const BitVec& received) const {
  expects(received.size() == data_bits_, "decode: wrong codeword width");
  DecodeResult result;
  result.status = DecodeStatus::kClean;
  result.data = received;
  return result;
}

std::uint64_t NullCode::encode_word(std::uint64_t data) const {
  expects(has_word_path(), "encode_word requires codewords of <= 64 bits");
  return data & low_mask(data_bits_);
}

WordDecodeResult NullCode::decode_word(std::uint64_t received) const {
  expects(has_word_path(), "decode_word requires codewords of <= 64 bits");
  WordDecodeResult result;
  result.data = received & low_mask(data_bits_);
  return result;
}

std::unique_ptr<Codec> make_codec(Protection protection,
                                  std::size_t data_bits) {
  switch (protection) {
    case Protection::kNone:
      return std::make_unique<NullCode>(data_bits);
    case Protection::kSecded: {
      // The paper fixes SECDED at 7 check bits for both word widths; fall
      // back to the minimal width for words too wide for 7 bits.
      const std::size_t wanted = check_bits_for(Protection::kSecded);
      const std::size_t minimum = HsiaoSecded::min_check_bits(data_bits);
      return std::make_unique<HsiaoSecded>(data_bits,
                                           std::max(wanted, minimum));
    }
    case Protection::kDected: {
      auto codec = std::make_unique<BchDected>(data_bits);
      ensure(codec->check_bits() == check_bits_for(Protection::kDected),
             "DECTED check bits deviate from the paper's 13");
      return codec;
    }
  }
  throw PreconditionError("unknown protection kind");
}

}  // namespace hvc::edc
