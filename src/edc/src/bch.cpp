#include "hvc/edc/bch.hpp"

#include <algorithm>
#include <bit>
#include <set>

#include "hvc/common/error.hpp"

namespace hvc::edc {

namespace {
constexpr std::size_t kPaperFieldDegree = 6;  // GF(2^6), n = 63
}

std::size_t BchDected::min_field_degree(std::size_t data_bits) {
  for (std::size_t m = 4; m <= 16; ++m) {
    if (data_bits + 2 * m <= (1ULL << m) - 1) {
      return m;
    }
  }
  throw PreconditionError("BchDected: data width too large");
}

Poly2 BchDected::minimal_polynomial(const GF2m& field, std::uint32_t power) {
  // Collect the cyclotomic coset {power * 2^j mod (q-1)} and expand
  // prod (x + alpha^c) using polynomial arithmetic with GF(2^m)
  // coefficients; the product is guaranteed to have GF(2) coefficients.
  std::set<std::uint32_t> coset;
  std::uint32_t current = power % field.order();
  while (coset.insert(current).second) {
    current = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(current) * 2) % field.order());
  }

  // poly holds GF(2^m) coefficients, index = degree; start with "1".
  std::vector<std::uint32_t> poly{1};
  for (const auto c : coset) {
    const std::uint32_t root = field.alpha_pow(c);
    std::vector<std::uint32_t> next(poly.size() + 1, 0);
    for (std::size_t i = 0; i < poly.size(); ++i) {
      // (x + root) * poly: x * poly[i] -> next[i+1]; root * poly[i] -> next[i]
      next[i + 1] ^= poly[i];
      next[i] ^= field.mul(root, poly[i]);
    }
    poly = std::move(next);
  }

  std::vector<std::uint8_t> bits(poly.size(), 0);
  for (std::size_t i = 0; i < poly.size(); ++i) {
    ensure(poly[i] <= 1, "minimal polynomial has non-GF(2) coefficient");
    bits[i] = static_cast<std::uint8_t>(poly[i]);
  }
  return Poly2(std::move(bits));
}

BchDected::BchDected(std::size_t data_bits, std::size_t field_degree)
    : data_bits_(data_bits),
      bch_check_bits_(0),
      field_(field_degree == 0 ? min_field_degree(data_bits) : field_degree) {
  expects(data_bits_ >= 1, "BchDected requires at least one data bit");
  const Poly2 m1 = minimal_polynomial(field_, 1);
  const Poly2 m3 = minimal_polynomial(field_, 3);
  generator_ = m1 * m3;
  bch_check_bits_ = static_cast<std::size_t>(generator_.degree());
  // For m >= 3, m1 and m3 are distinct degree-m minimal polynomials.
  ensure(bch_check_bits_ == 2 * field_.m(),
         "BCH t=2 generator must have degree 2m");

  // Shortening limit: data + BCH check bits must fit in n = 2^m - 1.
  expects(data_bits_ + bch_check_bits_ <= field_.order(),
          "BchDected data width exceeds the BCH code capacity");

  // Precompute syndrome rows over stored (data+check, no parity) bits for
  // the circuit cost model: m rows for S1, m rows for S3.
  const std::size_t degree = field_.m();
  const std::size_t stored = data_bits_ + bch_check_bits_;
  syndrome_rows_.assign(2 * degree, BitVec(stored));
  for (std::size_t s = 0; s < stored; ++s) {
    // Stored bit s corresponds to code-polynomial coefficient j:
    const std::size_t j = s < data_bits_ ? bch_check_bits_ + s
                                         : s - data_bits_;
    const std::uint32_t a1 = field_.alpha_pow(static_cast<std::int64_t>(j));
    const std::uint32_t a3 =
        field_.alpha_pow(static_cast<std::int64_t>(3 * j));
    for (std::size_t b = 0; b < degree; ++b) {
      if ((a1 >> b) & 1U) {
        syndrome_rows_[b].set(s);
      }
      if ((a3 >> b) & 1U) {
        syndrome_rows_[degree + b].set(s);
      }
    }
  }

  // Word-level fast path: per-data-bit codeword masks (encoding is linear,
  // so encode_word is one XOR per set data bit) and packed syndrome rows.
  if (codeword_bits() <= 64) {
    unit_codewords_.resize(data_bits_);
    for (std::size_t i = 0; i < data_bits_; ++i) {
      BitVec unit(data_bits_);
      unit.set(i);
      unit_codewords_[i] = encode(unit).to_word();
    }
    s1_row_masks_.resize(degree);
    s3_row_masks_.resize(degree);
    for (std::size_t b = 0; b < degree; ++b) {
      s1_row_masks_[b] = syndrome_rows_[b].to_word();
      s3_row_masks_[b] = syndrome_rows_[degree + b].to_word();
    }
  }
}

std::string BchDected::name() const {
  return "DECTED(" + std::to_string(codeword_bits()) + "," +
         std::to_string(data_bits_) + ")";
}

std::optional<std::size_t> BchDected::coeff_to_stored(
    std::size_t coeff) const noexcept {
  if (coeff < bch_check_bits_) {
    return data_bits_ + coeff;  // check bits live after the data bits
  }
  const std::size_t data_index = coeff - bch_check_bits_;
  if (data_index < data_bits_) {
    return data_index;
  }
  return std::nullopt;  // shortened (always zero) coefficient
}

BitVec BchDected::encode(const BitVec& data) const {
  expects(data.size() == data_bits_, "encode: wrong data width");

  // message(x) = x^12 * d(x); check bits = message mod g.
  std::vector<std::uint8_t> message(bch_check_bits_ + data_bits_, 0);
  for (std::size_t i = 0; i < data_bits_; ++i) {
    message[bch_check_bits_ + i] = data.get_unchecked(i) ? 1 : 0;
  }
  const Poly2 remainder = Poly2(std::move(message)).mod(generator_);

  BitVec codeword(codeword_bits());
  for (std::size_t i = 0; i < data_bits_; ++i) {
    codeword.set_unchecked(i, data.get_unchecked(i));
  }
  for (std::size_t j = 0; j < bch_check_bits_; ++j) {
    codeword.set_unchecked(data_bits_ + j, remainder.coeff(j));
  }
  // Extended parity: make the total parity of the codeword even.
  const BitVec without_parity = codeword.slice(0, codeword_bits() - 1);
  codeword.set(codeword_bits() - 1, without_parity.parity());
  return codeword;
}

std::uint32_t BchDected::syndrome(const BitVec& stored_no_parity,
                                  std::uint32_t power) const {
  std::uint32_t acc = 0;
  for (std::size_t s = 0; s < stored_no_parity.size(); ++s) {
    if (!stored_no_parity.get_unchecked(s)) {
      continue;
    }
    const std::size_t j = s < data_bits_ ? bch_check_bits_ + s
                                         : s - data_bits_;
    acc ^= field_.alpha_pow(static_cast<std::int64_t>(power) *
                            static_cast<std::int64_t>(j));
  }
  return acc;
}

bool BchDected::locate_from_syndromes(std::uint32_t s1, std::uint32_t s3,
                                      std::size_t positions[2],
                                      std::size_t& count) const {
  count = 0;
  if (s1 == 0 && s3 == 0) {
    return true;
  }
  if (s1 == 0) {
    // Two or more errors with X1 = X2 impossible: uncorrectable.
    return false;
  }

  const std::uint32_t s1_cubed = field_.mul(field_.mul(s1, s1), s1);
  if (s3 == s1_cubed) {
    // Single error at locator alpha^j = S1.
    const std::size_t j = field_.log(s1);
    const auto stored = coeff_to_stored(j);
    if (!stored) {
      return false;  // error "located" in the shortened region
    }
    positions[count++] = *stored;
    return true;
  }

  // Two errors: locator sigma(x) = x^2 + S1 x + (S3 + S1^3)/S1.
  // Substituting x = S1*y reduces to y^2 + y = c, c = (S3 + S1^3)/S1^3.
  const std::uint32_t c =
      field_.div(static_cast<std::uint32_t>(s3 ^ s1_cubed), s1_cubed);
  const auto quad = field_.solve_x2_plus_x(c);
  if (!quad.found) {
    return false;  // three or more errors
  }
  const std::uint32_t y1 = quad.root;
  const std::uint32_t y2 = y1 ^ 1U;
  if (y1 == 0 || y2 == 0) {
    // One root at zero would mean an error locator of zero: invalid.
    return false;
  }
  const std::uint32_t x1 = field_.mul(s1, y1);
  const std::uint32_t x2 = field_.mul(s1, y2);
  const auto p1 = coeff_to_stored(field_.log(x1));
  const auto p2 = coeff_to_stored(field_.log(x2));
  if (!p1 || !p2) {
    return false;
  }
  positions[count++] = *p1;
  positions[count++] = *p2;
  return true;
}

std::optional<std::vector<std::size_t>> BchDected::bch_locate_errors(
    const BitVec& stored_no_parity) const {
  const std::uint32_t s1 = syndrome(stored_no_parity, 1);
  const std::uint32_t s3 = syndrome(stored_no_parity, 3);
  std::size_t positions[2];
  std::size_t count = 0;
  if (!locate_from_syndromes(s1, s3, positions, count)) {
    return std::nullopt;
  }
  return std::vector<std::size_t>(positions, positions + count);
}

DecodeResult BchDected::decode(const BitVec& received) const {
  expects(received.size() == codeword_bits(), "decode: wrong codeword width");

  const bool parity_odd = received.parity();
  const BitVec bch_part = received.slice(0, codeword_bits() - 1);
  const auto located = bch_locate_errors(bch_part);

  DecodeResult result;
  auto corrected_data = [&](const std::vector<std::size_t>& flips,
                            std::size_t extra) {
    BitVec fixed = bch_part;
    for (const auto position : flips) {
      fixed.flip(position);
    }
    result.data = fixed.slice(0, data_bits_);
    result.corrected_bits = flips.size() + extra;
    result.status = flips.empty() && extra == 0 ? DecodeStatus::kClean
                                                : DecodeStatus::kCorrected;
  };

  if (!located) {
    result.status = DecodeStatus::kDetected;
    return result;
  }

  if (!parity_odd) {
    if (located->empty()) {
      corrected_data({}, 0);  // clean
    } else if (located->size() == 2) {
      corrected_data(*located, 0);  // classic double error
    } else {
      // One BCH error with even overall parity: the parity bit flipped too.
      corrected_data(*located, 1);
    }
    return result;
  }

  // Odd parity: an odd number of errors (1 or 3).
  if (located->empty()) {
    // Only the parity bit flipped; data is intact.
    corrected_data({}, 1);
    return result;
  }
  if (located->size() == 1) {
    corrected_data(*located, 0);
    return result;
  }
  // BCH claims two errors plus parity mismatch: three errors -> detect.
  result.status = DecodeStatus::kDetected;
  return result;
}

std::uint64_t BchDected::encode_word(std::uint64_t data) const {
  if (unit_codewords_.empty()) {
    return Codec::encode_word(data);  // wide code: base enforces the word-path precondition
  }
  data &= low_mask(data_bits_);
  std::uint64_t codeword = 0;
  std::uint64_t bits = data;
  while (bits != 0) {
    codeword ^= unit_codewords_[std::countr_zero(bits)];
    bits &= bits - 1;
  }
  return codeword;
}

WordDecodeResult BchDected::decode_word(std::uint64_t received) const {
  if (unit_codewords_.empty()) {
    return Codec::decode_word(received);  // wide code: base enforces the word-path precondition
  }
  const std::size_t n = codeword_bits();
  received &= low_mask(n);
  const bool parity_odd = (std::popcount(received) & 1) != 0;
  const std::uint64_t stored = received & low_mask(n - 1);

  const std::size_t degree = field_.m();
  std::uint32_t s1 = 0;
  std::uint32_t s3 = 0;
  for (std::size_t b = 0; b < degree; ++b) {
    s1 |= (static_cast<std::uint32_t>(
               std::popcount(stored & s1_row_masks_[b])) &
           1U)
          << b;
    s3 |= (static_cast<std::uint32_t>(
               std::popcount(stored & s3_row_masks_[b])) &
           1U)
          << b;
  }

  const std::uint64_t data_mask = low_mask(data_bits_);
  WordDecodeResult result;
  std::size_t positions[2];
  std::size_t count = 0;
  if (!locate_from_syndromes(s1, s3, positions, count)) {
    result.status = DecodeStatus::kDetected;
    return result;
  }

  // Same parity/BCH classification as decode() (see the header comment).
  auto corrected = [&](std::uint32_t extra) {
    std::uint64_t fixed = stored;
    for (std::size_t i = 0; i < count; ++i) {
      fixed ^= 1ULL << positions[i];
    }
    result.data = fixed & data_mask;
    result.corrected_bits = static_cast<std::uint32_t>(count) + extra;
    result.status = (count == 0 && extra == 0) ? DecodeStatus::kClean
                                               : DecodeStatus::kCorrected;
  };

  if (!parity_odd) {
    if (count == 0) {
      corrected(0);  // clean
    } else if (count == 2) {
      corrected(0);  // classic double error
    } else {
      // One BCH error with even overall parity: the parity bit flipped too.
      corrected(1);
    }
    return result;
  }
  if (count == 0) {
    corrected(1);  // only the parity bit flipped; data is intact
    return result;
  }
  if (count == 1) {
    corrected(0);
    return result;
  }
  // BCH claims two errors plus parity mismatch: three errors -> detect.
  result.status = DecodeStatus::kDetected;
  return result;
}

std::size_t BchDected::total_ones() const noexcept {
  std::size_t total = 0;
  for (const auto& row : syndrome_rows_) {
    total += row.popcount();
  }
  // Extended parity row covers every stored bit plus itself.
  total += data_bits_ + bch_check_bits_ + 1;
  return total;
}

std::size_t BchDected::max_row_weight() const noexcept {
  // The extended parity row is always the widest.
  std::size_t widest = data_bits_ + bch_check_bits_ + 1;
  for (const auto& row : syndrome_rows_) {
    widest = std::max(widest, row.popcount());
  }
  return widest;
}

}  // namespace hvc::edc
