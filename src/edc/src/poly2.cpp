#include "hvc/edc/poly2.hpp"

#include "hvc/common/error.hpp"

namespace hvc::edc {

Poly2::Poly2(std::uint64_t mask) {
  for (std::size_t i = 0; i < 64; ++i) {
    if ((mask >> i) & 1ULL) {
      if (coeffs_.size() <= i) {
        coeffs_.resize(i + 1, 0);
      }
      coeffs_[i] = 1;
    }
  }
  trim();
}

Poly2::Poly2(std::vector<std::uint8_t> coeffs) : coeffs_(std::move(coeffs)) {
  for (auto& c : coeffs_) {
    c = c ? 1 : 0;
  }
  trim();
}

Poly2 Poly2::monomial(std::size_t degree) {
  std::vector<std::uint8_t> coeffs(degree + 1, 0);
  coeffs[degree] = 1;
  return Poly2(std::move(coeffs));
}

void Poly2::trim() noexcept {
  while (!coeffs_.empty() && coeffs_.back() == 0) {
    coeffs_.pop_back();
  }
}

Poly2 Poly2::operator+(const Poly2& other) const {
  std::vector<std::uint8_t> out(std::max(coeffs_.size(), other.coeffs_.size()),
                                0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint8_t a = i < coeffs_.size() ? coeffs_[i] : 0;
    const std::uint8_t b = i < other.coeffs_.size() ? other.coeffs_[i] : 0;
    out[i] = a ^ b;
  }
  return Poly2(std::move(out));
}

Poly2 Poly2::operator*(const Poly2& other) const {
  if (is_zero() || other.is_zero()) {
    return zero();
  }
  std::vector<std::uint8_t> out(coeffs_.size() + other.coeffs_.size() - 1, 0);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    if (!coeffs_[i]) {
      continue;
    }
    for (std::size_t j = 0; j < other.coeffs_.size(); ++j) {
      out[i + j] ^= other.coeffs_[j];
    }
  }
  return Poly2(std::move(out));
}

Poly2 Poly2::mod(const Poly2& divisor) const {
  return divmod(divisor).remainder;
}

Poly2::DivMod Poly2::divmod(const Poly2& divisor) const {
  expects(!divisor.is_zero(), "Poly2 division by zero polynomial");
  std::vector<std::uint8_t> rem = coeffs_;
  const int ddeg = divisor.degree();
  if (degree() < ddeg) {
    return {zero(), *this};
  }
  std::vector<std::uint8_t> quot(coeffs_.size() - divisor.coeffs_.size() + 1,
                                 0);
  for (int shift = degree() - ddeg; shift >= 0; --shift) {
    const auto top = static_cast<std::size_t>(shift + ddeg);
    if (top < rem.size() && rem[top]) {
      quot[static_cast<std::size_t>(shift)] = 1;
      for (std::size_t j = 0; j < divisor.coeffs_.size(); ++j) {
        rem[static_cast<std::size_t>(shift) + j] ^= divisor.coeffs_[j];
      }
    }
  }
  return {Poly2(std::move(quot)), Poly2(std::move(rem))};
}

bool Poly2::eval_gf2(bool x) const noexcept {
  if (!x) {
    return coeff(0);
  }
  // At x = 1 the value is the parity of the coefficients.
  bool acc = false;
  for (const auto c : coeffs_) {
    acc ^= (c != 0);
  }
  return acc;
}

std::string Poly2::to_string() const {
  if (is_zero()) {
    return "0";
  }
  std::string out;
  for (int i = degree(); i >= 0; --i) {
    if (!coeff(static_cast<std::size_t>(i))) {
      continue;
    }
    if (!out.empty()) {
      out += " + ";
    }
    if (i == 0) {
      out += "1";
    } else if (i == 1) {
      out += "x";
    } else {
      out += "x^" + std::to_string(i);
    }
  }
  return out;
}

}  // namespace hvc::edc
