#include "hvc/edc/checker.hpp"

#include <algorithm>

#include "hvc/common/error.hpp"

namespace hvc::edc {

namespace {

[[nodiscard]] BitVec random_data(const Codec& codec, Rng& rng) {
  BitVec data(codec.data_bits());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.set(i, rng.bernoulli(0.5));
  }
  return data;
}

void score(CheckReport& report, const Codec& codec, const BitVec& data,
           const BitVec& corrupted, bool error_present) {
  const DecodeResult result = codec.decode(corrupted);
  ++report.trials;
  switch (result.status) {
    case DecodeStatus::kDetected:
      ++report.detected;
      return;
    case DecodeStatus::kClean:
      if (error_present && !(result.data == data)) {
        ++report.missed;
      } else {
        ++report.correct_decodes;
      }
      return;
    case DecodeStatus::kCorrected:
      if (result.data == data) {
        ++report.correct_decodes;
      } else {
        ++report.miscorrections;
      }
      return;
  }
}

}  // namespace

CheckReport check_all_single_errors(const Codec& codec, Rng& rng,
                                    std::size_t words) {
  CheckReport report;
  for (std::size_t w = 0; w < words; ++w) {
    const BitVec data = random_data(codec, rng);
    const BitVec codeword = codec.encode(data);
    for (std::size_t bit = 0; bit < codeword.size(); ++bit) {
      BitVec corrupted = codeword;
      corrupted.flip(bit);
      score(report, codec, data, corrupted, true);
    }
  }
  return report;
}

CheckReport check_all_double_errors(const Codec& codec, Rng& rng,
                                    std::size_t words) {
  CheckReport report;
  for (std::size_t w = 0; w < words; ++w) {
    const BitVec data = random_data(codec, rng);
    const BitVec codeword = codec.encode(data);
    for (std::size_t i = 0; i < codeword.size(); ++i) {
      for (std::size_t j = i + 1; j < codeword.size(); ++j) {
        BitVec corrupted = codeword;
        corrupted.flip(i);
        corrupted.flip(j);
        score(report, codec, data, corrupted, true);
      }
    }
  }
  return report;
}

CheckReport check_random_errors(const Codec& codec, Rng& rng,
                                std::size_t error_bits, std::size_t trials) {
  expects(error_bits <= codec.codeword_bits(),
          "more error bits than codeword bits");
  CheckReport report;
  for (std::size_t t = 0; t < trials; ++t) {
    const BitVec data = random_data(codec, rng);
    BitVec corrupted = codec.encode(data);
    // Sample `error_bits` distinct positions (Floyd's algorithm).
    std::vector<std::size_t> positions;
    const std::size_t n = corrupted.size();
    for (std::size_t k = n - error_bits; k < n; ++k) {
      const auto candidate = static_cast<std::size_t>(rng.below(k + 1));
      if (std::find(positions.begin(), positions.end(), candidate) !=
          positions.end()) {
        positions.push_back(k);
      } else {
        positions.push_back(candidate);
      }
    }
    for (const auto position : positions) {
      corrupted.flip(position);
    }
    score(report, codec, data, corrupted, error_bits > 0);
  }
  return report;
}

std::size_t sampled_min_distance(const Codec& codec, Rng& rng,
                                 std::size_t trials) {
  std::size_t best = codec.codeword_bits();
  for (std::size_t t = 0; t < trials; ++t) {
    const BitVec a = random_data(codec, rng);
    BitVec b = random_data(codec, rng);
    if (a == b) {
      if (b.size() > 0) {
        b.flip(static_cast<std::size_t>(rng.below(b.size())));
      } else {
        continue;
      }
    }
    const BitVec diff = codec.encode(a) ^ codec.encode(b);
    best = std::min(best, diff.popcount());
  }
  return best;
}

}  // namespace hvc::edc
