#include "hvc/edc/cost.hpp"

#include <cmath>

#include "hvc/common/error.hpp"
#include "hvc/edc/bch.hpp"
#include "hvc/edc/hsiao.hpp"

namespace hvc::edc {

namespace {

/// ceil(log2(x)) for x >= 1.
[[nodiscard]] std::size_t clog2(std::size_t x) {
  std::size_t bits = 0;
  std::size_t value = 1;
  while (value < x) {
    value <<= 1;
    ++bits;
  }
  return bits;
}

struct MatrixStats {
  std::size_t total_ones = 0;
  std::size_t max_row = 0;
  std::size_t rows = 0;
  std::size_t columns = 0;
};

[[nodiscard]] MatrixStats matrix_stats(const Codec& codec) {
  MatrixStats stats;
  stats.columns = codec.codeword_bits();
  if (const auto* hsiao = dynamic_cast<const HsiaoSecded*>(&codec)) {
    stats.total_ones = hsiao->total_ones();
    stats.max_row = hsiao->max_row_weight();
    stats.rows = codec.check_bits();
  } else if (const auto* bch = dynamic_cast<const BchDected*>(&codec)) {
    stats.total_ones = bch->total_ones();
    stats.max_row = bch->max_row_weight();
    stats.rows = codec.check_bits();
  }
  return stats;
}

}  // namespace

CircuitShape encoder_shape(const Codec& codec) {
  CircuitShape shape;
  if (codec.check_bits() == 0) {
    return shape;  // NullCode: wires only
  }
  const MatrixStats stats = matrix_stats(codec);
  ensure(stats.total_ones > 0, "codec exposes no parity structure");
  // Each check bit is the XOR of (row weight) inputs: weight-1 XOR2 gates
  // in a balanced tree of depth ceil(log2(weight)). The encoder sees only
  // data columns, but row weights over the full H are a tight upper bound
  // (check columns contribute one term per row).
  shape.xor2_gates = stats.total_ones - stats.rows;
  shape.depth = clog2(stats.max_row);
  return shape;
}

CircuitShape decoder_shape(const Codec& codec) {
  CircuitShape shape;
  if (codec.check_bits() == 0) {
    return shape;
  }
  const MatrixStats stats = matrix_stats(codec);
  // Syndrome generation: same XOR trees as the encoder but over the full
  // received word (data + check columns).
  shape.xor2_gates = stats.total_ones - stats.rows;
  std::size_t depth = clog2(stats.max_row);

  if (codec.correctable() == 1) {
    // SECDED locate: one r-input match (NOR of XORs) per data column,
    // + r XOR2 per column to compare against the column syndrome constant
    // is optimised to an AND-tree on (syndrome XOR const) -> model as
    // r-1 gates per column, plus the correcting XOR per data bit.
    shape.other_gates = codec.data_bits() * (codec.check_bits() - 1);
    shape.xor2_gates += codec.data_bits();  // correction XORs
    depth += clog2(codec.check_bits()) + 1;
  } else if (codec.correctable() >= 2) {
    // DECTED locate: GF(2^6) syndrome algebra (S1^3 multiplier, quadratic
    // solver) plus a Chien-style evaluation per position. GF multipliers
    // are AND/XOR-heavy: ~36 equivalent gates per codeword position plus
    // the correction XORs.
    shape.other_gates = codec.codeword_bits() * 36;
    shape.xor2_gates += codec.data_bits();
    depth += clog2(codec.check_bits()) + 5;
  }
  shape.depth = depth;
  return shape;
}

CircuitCost circuit_cost(const CircuitShape& shape, const GateFigures& figures,
                         double activity) {
  expects(activity >= 0.0 && activity <= 1.0, "activity must be in [0,1]");
  CircuitCost cost;
  cost.gates = shape.xor2_gates + shape.other_gates;
  cost.energy_j = static_cast<double>(cost.gates) * activity *
                  figures.switch_energy_j;
  cost.leakage_w = static_cast<double>(cost.gates) * figures.leakage_w;
  cost.delay_s = static_cast<double>(shape.depth) * figures.delay_s;
  return cost;
}

}  // namespace hvc::edc
