// Arithmetic in the finite field GF(2^m), 2 <= m <= 16, using log/antilog
// tables over a primitive polynomial. Needed by the BCH-based DECTED code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hvc::edc {

/// GF(2^m) with elements represented as m-bit polynomials over GF(2).
class GF2m {
 public:
  /// Constructs the field from a primitive polynomial given as a bit mask
  /// including the leading term, e.g. for GF(2^6): x^6+x+1 -> 0b1000011.
  /// Pass 0 to use a built-in primitive polynomial for the given m.
  explicit GF2m(std::size_t m, std::uint32_t primitive_poly = 0);

  [[nodiscard]] std::size_t m() const noexcept { return m_; }
  /// Field size q = 2^m.
  [[nodiscard]] std::uint32_t size() const noexcept { return q_; }
  /// Multiplicative group order, q - 1.
  [[nodiscard]] std::uint32_t order() const noexcept { return q_ - 1; }

  /// alpha^i for i in [0, q-2]; alpha is the primitive element x.
  [[nodiscard]] std::uint32_t alpha_pow(std::int64_t i) const noexcept;
  /// alpha^i for an exponent already reduced to [0, 2(q-1)): a direct
  /// lookup in the doubled antilog table with no modulo or branch. This is
  /// the hot path for syndrome arithmetic, where exponents are sums or
  /// differences of two discrete logs and therefore always in range.
  [[nodiscard]] std::uint32_t alpha_pow_reduced(std::uint32_t i) const noexcept {
    return exp_[i];
  }
  /// Discrete log base alpha; requires x != 0.
  [[nodiscard]] std::uint32_t log(std::uint32_t x) const;

  [[nodiscard]] std::uint32_t add(std::uint32_t a, std::uint32_t b) const noexcept {
    return a ^ b;
  }
  [[nodiscard]] std::uint32_t mul(std::uint32_t a, std::uint32_t b) const noexcept;
  [[nodiscard]] std::uint32_t div(std::uint32_t a, std::uint32_t b) const;
  [[nodiscard]] std::uint32_t inv(std::uint32_t a) const;
  /// a^e with e possibly negative (uses the group order).
  [[nodiscard]] std::uint32_t pow(std::uint32_t a, std::int64_t e) const;

  /// Square root in GF(2^m): every element has exactly one (Frobenius).
  [[nodiscard]] std::uint32_t sqrt(std::uint32_t a) const noexcept;

  /// Solves x^2 + x = c; returns {found, one solution x0} (the other is
  /// x0+1). Solvable iff trace(c) == 0.
  struct QuadraticRoot {
    bool found = false;
    std::uint32_t root = 0;
  };
  [[nodiscard]] QuadraticRoot solve_x2_plus_x(std::uint32_t c) const noexcept;

  /// Absolute trace Tr(a) = a + a^2 + a^4 + ... in GF(2).
  [[nodiscard]] std::uint32_t trace(std::uint32_t a) const noexcept;

  /// Built-in primitive polynomial mask for m in [2,16].
  [[nodiscard]] static std::uint32_t default_primitive(std::size_t m);

 private:
  std::size_t m_;
  std::uint32_t q_;
  std::vector<std::uint32_t> exp_;  // exp_[i] = alpha^i, length 2(q-1)
  std::vector<std::uint32_t> log_;  // log_[x] for x in [1, q-1]
};

}  // namespace hvc::edc
