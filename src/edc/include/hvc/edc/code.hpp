// Common interface for the error detection and correction (EDC) codes used
// by the hybrid cache: none, Hsiao SECDED and BCH-based DECTED.
//
// Codewords are systematic everywhere in hvcache: the first k bits of a
// codeword are the data word, the remaining (n-k) bits are check bits.
// This matches how the cache arrays store them (data columns + check
// columns appended to each physical row).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "hvc/common/bitvec.hpp"

namespace hvc::edc {

/// Outcome of decoding a possibly corrupted codeword.
enum class DecodeStatus {
  kClean,      ///< Syndrome zero: no error observed.
  kCorrected,  ///< Error(s) within correction capability, data repaired.
  kDetected,   ///< Uncorrectable error detected; data is NOT trustworthy.
};

[[nodiscard]] std::string to_string(DecodeStatus status);

/// Result of Codec::decode.
struct DecodeResult {
  DecodeStatus status = DecodeStatus::kClean;
  /// Recovered data word (k bits). Valid unless status == kDetected.
  BitVec data;
  /// Number of bit positions the decoder flipped (0 when clean/detected).
  std::size_t corrected_bits = 0;
};

/// Result of Codec::decode_word (word-level fast path).
struct WordDecodeResult {
  DecodeStatus status = DecodeStatus::kClean;
  /// Recovered data word in the low data_bits() bits. Valid unless
  /// status == kDetected.
  std::uint64_t data = 0;
  /// Number of bit positions the decoder flipped (0 when clean/detected).
  std::uint32_t corrected_bits = 0;
};

/// Abstract systematic block code over GF(2).
class Codec {
 public:
  virtual ~Codec() = default;

  /// Number of data bits per word.
  [[nodiscard]] virtual std::size_t data_bits() const noexcept = 0;
  /// Number of check bits appended per word.
  [[nodiscard]] virtual std::size_t check_bits() const noexcept = 0;
  /// Codeword length n = data_bits + check_bits.
  [[nodiscard]] std::size_t codeword_bits() const noexcept {
    return data_bits() + check_bits();
  }

  /// Guaranteed number of correctable random bit errors per word.
  [[nodiscard]] virtual std::size_t correctable() const noexcept = 0;
  /// Guaranteed number of detectable random bit errors per word.
  [[nodiscard]] virtual std::size_t detectable() const noexcept = 0;

  /// Human-readable code name, e.g. "SECDED(39,32)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Encodes a k-bit data word into an n-bit codeword (data || check).
  [[nodiscard]] virtual BitVec encode(const BitVec& data) const = 0;

  /// Decodes an n-bit received word.
  [[nodiscard]] virtual DecodeResult decode(const BitVec& received) const = 0;

  /// True when the codeword fits in 64 bits, i.e. the word-level fast path
  /// below is usable. All paper configs — (39,32)/(33,26) SECDED and
  /// (45,32)/(39,26) BCH-DECTED — qualify.
  [[nodiscard]] bool has_word_path() const noexcept {
    return codeword_bits() <= 64;
  }

  /// Word-level fast path: encodes the low data_bits() bits of `data` into
  /// an n-bit codeword packed into a 64-bit word (bit 0 = LSB, same layout
  /// as BitVec::to_word). Bit-for-bit identical to encode(); requires
  /// has_word_path(). The base implementation bridges through the BitVec
  /// reference path; codecs override it with mask/popcount arithmetic.
  [[nodiscard]] virtual std::uint64_t encode_word(std::uint64_t data) const;

  /// Word-level fast path of decode(); same contract as encode_word.
  [[nodiscard]] virtual WordDecodeResult decode_word(
      std::uint64_t received) const;
};

/// Degenerate "no protection" code: codeword == data, nothing detected.
class NullCode final : public Codec {
 public:
  explicit NullCode(std::size_t data_bits);

  [[nodiscard]] std::size_t data_bits() const noexcept override {
    return data_bits_;
  }
  [[nodiscard]] std::size_t check_bits() const noexcept override { return 0; }
  [[nodiscard]] std::size_t correctable() const noexcept override { return 0; }
  [[nodiscard]] std::size_t detectable() const noexcept override { return 0; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] BitVec encode(const BitVec& data) const override;
  [[nodiscard]] DecodeResult decode(const BitVec& received) const override;
  [[nodiscard]] std::uint64_t encode_word(std::uint64_t data) const override;
  [[nodiscard]] WordDecodeResult decode_word(
      std::uint64_t received) const override;

 private:
  std::size_t data_bits_;
};

/// Kinds of protection the cache architecture knows about (paper §III-B).
enum class Protection {
  kNone,    ///< raw storage
  kSecded,  ///< Hsiao single-error-correct / double-error-detect
  kDected,  ///< BCH double-error-correct / triple-error-detect
};

[[nodiscard]] std::string to_string(Protection protection);

/// Number of check bits the paper assigns per protection level for any of
/// the word sizes used (7 for SECDED, 13 for DECTED, 0 for none).
[[nodiscard]] std::size_t check_bits_for(Protection protection);

/// Factory: builds the codec the paper uses for `data_bits`-wide words
/// (32-bit data words, 26-bit tag words) at a given protection level.
[[nodiscard]] std::unique_ptr<Codec> make_codec(Protection protection,
                                                std::size_t data_bits);

}  // namespace hvc::edc
