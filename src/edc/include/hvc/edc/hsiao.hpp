// Hsiao single-error-correcting, double-error-detecting (SEC-DED) codes.
//
// Hsiao codes (C. L. Chen & M. Y. Hsiao, IBM JRD 1984 — the paper's
// reference [5]) are distance-4 codes whose parity-check matrix uses only
// odd-weight columns, balanced across rows. Odd-weight columns give a
// cheaper and faster decoder than classic extended Hamming: a syndrome with
// even weight can only be a double error, so double-error detection is a
// single parity of the syndrome.
//
// The construction here picks data columns of weight 3 first (then 5, 7,
// ...) distributing column weight as evenly as possible over the rows,
// which minimises the widest XOR tree — exactly the property Hsiao codes
// are used for in SRAM macros.
#pragma once

#include <cstddef>
#include <vector>

#include "hvc/edc/code.hpp"

namespace hvc::edc {

/// Hsiao SEC-DED code for an arbitrary data width.
///
/// For the paper's words: HsiaoSecded(32) is a (39,32) code and
/// HsiaoSecded(26) is a (33,26) code, both with 7 check bits.
class HsiaoSecded final : public Codec {
 public:
  /// Builds the code with `check_bits` check bits (0 = use the minimum for
  /// this width). The paper uses 7 check bits for both 32-bit data words
  /// and 26-bit tag words, even though 26 bits would fit in 6; pass 7 to
  /// match it.
  explicit HsiaoSecded(std::size_t data_bits, std::size_t check_bits = 0);

  [[nodiscard]] std::size_t data_bits() const noexcept override {
    return data_bits_;
  }
  [[nodiscard]] std::size_t check_bits() const noexcept override {
    return check_bits_;
  }
  [[nodiscard]] std::size_t correctable() const noexcept override { return 1; }
  [[nodiscard]] std::size_t detectable() const noexcept override { return 2; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] BitVec encode(const BitVec& data) const override;
  [[nodiscard]] DecodeResult decode(const BitVec& received) const override;

  /// Word-level fast path (available when the codeword fits 64 bits, i.e.
  /// all paper configs): encode is check_bits() AND+popcount steps over
  /// precomputed row masks; decode is table-driven syndrome lookup.
  [[nodiscard]] std::uint64_t encode_word(std::uint64_t data) const override;
  [[nodiscard]] WordDecodeResult decode_word(
      std::uint64_t received) const override;

  /// Parity-check row `r` as an n-bit mask over (data || check) positions.
  [[nodiscard]] const BitVec& parity_row(std::size_t r) const;

  /// Weight of the heaviest parity-check row (drives decoder XOR depth).
  [[nodiscard]] std::size_t max_row_weight() const noexcept;

  /// Total number of ones in the parity-check matrix (drives encoder size).
  [[nodiscard]] std::size_t total_ones() const noexcept;

  /// Smallest number of check bits r such that the number of odd-weight,
  /// non-unit r-bit columns is at least `data_bits`.
  [[nodiscard]] static std::size_t min_check_bits(std::size_t data_bits);

 private:
  std::size_t data_bits_;
  std::size_t check_bits_;
  /// H rows over codeword positions [data || check], check part = identity.
  std::vector<BitVec> rows_;
  /// Column syndrome value for each data position (bit r set if row r has
  /// a one in that column).
  std::vector<std::uint64_t> column_syndromes_;

  // --- word-level fast path (populated only when codeword_bits() <= 64) ---
  /// Data part of each H row packed into a word: check bit r is the parity
  /// of (data & row_data_masks_[r]).
  std::vector<std::uint64_t> row_data_masks_;
  /// Full H rows (data part + identity check column) packed into words.
  std::vector<std::uint64_t> row_masks_;
  /// Syndrome value -> data column to flip, -1 when no column matches
  /// (size 2^check_bits).
  std::vector<std::int32_t> syndrome_to_position_;
};

}  // namespace hvc::edc
