// Exhaustive and randomized property checkers for EDC codes.
//
// Used by the test suite and by bench_edc_circuits to certify that each
// codec really delivers its advertised correction/detection guarantees
// before the reliability model relies on them.
#pragma once

#include <cstddef>
#include <string>

#include "hvc/common/rng.hpp"
#include "hvc/edc/code.hpp"

namespace hvc::edc {

/// Aggregate outcome of sweeping error patterns through a codec.
struct CheckReport {
  std::size_t trials = 0;
  std::size_t correct_decodes = 0;    ///< data recovered exactly
  std::size_t detected = 0;           ///< flagged uncorrectable
  std::size_t miscorrections = 0;     ///< wrong data accepted silently
  std::size_t missed = 0;             ///< error present, reported clean
  [[nodiscard]] bool perfect() const noexcept {
    return miscorrections == 0 && missed == 0;
  }
};

/// Sweeps every single codeword-bit error over `words` random data words.
[[nodiscard]] CheckReport check_all_single_errors(const Codec& codec,
                                                  Rng& rng,
                                                  std::size_t words = 16);

/// Sweeps every 2-bit error pattern over `words` random data words.
[[nodiscard]] CheckReport check_all_double_errors(const Codec& codec,
                                                  Rng& rng,
                                                  std::size_t words = 4);

/// Sweeps random `error_bits`-bit error patterns (`trials` of them).
/// For error counts within the correction radius a perfect codec yields
/// correct_decodes == trials; within the detection radius it yields
/// miscorrections == 0 and missed == 0.
[[nodiscard]] CheckReport check_random_errors(const Codec& codec, Rng& rng,
                                              std::size_t error_bits,
                                              std::size_t trials);

/// Estimates the minimum distance by random codeword-pair sampling
/// (upper bound) — cheap sanity check that SECDED >= 4 and DECTED >= 6.
[[nodiscard]] std::size_t sampled_min_distance(const Codec& codec, Rng& rng,
                                               std::size_t trials = 2000);

}  // namespace hvc::edc
