// Circuit-level cost model for EDC encoders and decoders.
//
// The paper obtains EDC circuit energy from HSPICE runs on 32 nm PTM
// netlists (Section IV-A). We substitute a structural model: encoders and
// decoders are XOR trees whose gate count and depth follow directly from
// the code's parity-check matrix, plus a comparator/locator stage for the
// decoder. Energy per gate and per-gate leakage are supplied by the caller
// (they depend on Vcc and come from hvc::tech), keeping this module free of
// technology dependencies.
#pragma once

#include <cstddef>

#include "hvc/edc/code.hpp"

namespace hvc::edc {

/// Structural size of an encoder or decoder network.
struct CircuitShape {
  std::size_t xor2_gates = 0;   ///< two-input XOR count
  std::size_t other_gates = 0;  ///< AND/OR/NOT for locate+correct logic
  std::size_t depth = 0;        ///< critical path in gate levels
};

/// Per-gate electrical figures at a given operating point (from hvc::tech).
struct GateFigures {
  double switch_energy_j = 0.0;  ///< average dynamic energy per activation
  double leakage_w = 0.0;        ///< static power per gate
  double delay_s = 0.0;          ///< propagation delay per level
};

/// Electrical cost of running one encode or decode operation.
struct CircuitCost {
  double energy_j = 0.0;   ///< dynamic energy for one operation
  double leakage_w = 0.0;  ///< always-on leakage while powered
  double delay_s = 0.0;    ///< critical-path latency
  std::size_t gates = 0;   ///< total gate count (area proxy)
};

/// Derives the encoder network shape for a codec (parity generation only).
[[nodiscard]] CircuitShape encoder_shape(const Codec& codec);

/// Derives the decoder network shape (syndrome + locate + correct).
[[nodiscard]] CircuitShape decoder_shape(const Codec& codec);

/// Combines a network shape with per-gate figures; `activity` is the
/// average fraction of gates toggling per operation (0.5 is typical for
/// XOR trees over random data).
[[nodiscard]] CircuitCost circuit_cost(const CircuitShape& shape,
                                       const GateFigures& figures,
                                       double activity = 0.5);

}  // namespace hvc::edc
