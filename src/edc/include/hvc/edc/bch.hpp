// Double-error-correcting, triple-error-detecting (DEC-TED) code built from
// a t=2 binary BCH code over GF(2^m), shortened to the protected word size
// and extended with one overall parity bit. The field degree m is the
// smallest that fits the shortened code (m=6 for the paper's words, m=9
// for whole 256-bit cache lines in the granularity ablation).
//
// For the paper's words this yields:
//   32-bit data: BCH(63,51,t=2) shortened to (44,32), +parity -> (45,32)
//   26-bit tag : shortened to (38,26), +parity -> (39,26)
// i.e. 13 check bits per word, matching the paper (Section III-C).
//
// Decoding uses Peterson's direct solution for t=2 (two syndromes S1, S3),
// with a closed-form quadratic solve in GF(2^6) for the two-error locator
// and the extended parity bit to classify odd/even error counts:
//   parity odd,  BCH sees 0 errors -> parity bit itself flipped (corrected)
//   parity odd,  BCH sees 1 error  -> single error (corrected)
//   parity odd,  BCH sees 2 errors -> 3 errors (detected)
//   parity even, BCH sees 0 errors -> clean
//   parity even, BCH sees errors   -> double error (corrected) or detected
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "hvc/edc/code.hpp"
#include "hvc/edc/gf2m.hpp"
#include "hvc/edc/poly2.hpp"

namespace hvc::edc {

/// DEC-TED codec for an arbitrary data width; the field degree (and hence
/// check-bit count, 2m+1) is chosen automatically unless forced.
class BchDected final : public Codec {
 public:
  /// `field_degree` = 0 picks the smallest m with data + 2m <= 2^m - 1.
  explicit BchDected(std::size_t data_bits, std::size_t field_degree = 0);

  /// Smallest usable field degree for a data width.
  [[nodiscard]] static std::size_t min_field_degree(std::size_t data_bits);

  [[nodiscard]] std::size_t data_bits() const noexcept override {
    return data_bits_;
  }
  [[nodiscard]] std::size_t check_bits() const noexcept override {
    return bch_check_bits_ + 1;  // +1 extended parity
  }
  [[nodiscard]] std::size_t correctable() const noexcept override { return 2; }
  [[nodiscard]] std::size_t detectable() const noexcept override { return 3; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] BitVec encode(const BitVec& data) const override;
  [[nodiscard]] DecodeResult decode(const BitVec& received) const override;

  /// Word-level fast path (available when the codeword fits 64 bits, i.e.
  /// all paper configs): encode XORs one precomputed per-data-bit codeword
  /// mask per set bit; decode computes S1/S3 from packed syndrome-row
  /// masks and shares the Peterson locator with the reference path.
  [[nodiscard]] std::uint64_t encode_word(std::uint64_t data) const override;
  [[nodiscard]] WordDecodeResult decode_word(
      std::uint64_t received) const override;

  /// The BCH generator polynomial g(x) = m1(x) * m3(x), degree 12.
  [[nodiscard]] const Poly2& generator() const noexcept { return generator_; }

  /// Minimal polynomial of alpha^i over GF(2) (exposed for tests).
  [[nodiscard]] static Poly2 minimal_polynomial(const GF2m& field,
                                                std::uint32_t power);

  /// Number of ones in the (conceptual) parity-check rows; used by the
  /// circuit cost model to size the encoder/decoder XOR trees.
  [[nodiscard]] std::size_t total_ones() const noexcept;
  [[nodiscard]] std::size_t max_row_weight() const noexcept;

 private:
  /// BCH codeword positions: coefficient j of the code polynomial.
  /// Stored layout (size n_stored_ = data+check):
  ///   [0, data_bits)                    -> data bit i = coefficient
  ///                                        (bch_check_bits_ + i)
  ///   [data_bits, data_bits + 12)       -> BCH check bit j = coefficient j
  ///   last bit                          -> extended overall parity
  [[nodiscard]] std::optional<std::vector<std::size_t>> bch_locate_errors(
      const BitVec& stored_no_parity) const;
  /// Peterson t=2 locator shared by the BitVec and word decode paths:
  /// returns the stored-bit positions in error, nullopt when uncorrectable.
  /// `count` is set to the number of valid entries in `positions`.
  [[nodiscard]] bool locate_from_syndromes(std::uint32_t s1, std::uint32_t s3,
                                           std::size_t positions[2],
                                           std::size_t& count) const;
  [[nodiscard]] std::uint32_t syndrome(const BitVec& stored_no_parity,
                                       std::uint32_t power) const;
  /// Maps a code-polynomial coefficient index to a stored-bit index, or
  /// nullopt when the coefficient falls in the shortened (always-zero) part.
  [[nodiscard]] std::optional<std::size_t> coeff_to_stored(
      std::size_t coeff) const noexcept;

  std::size_t data_bits_;
  std::size_t bch_check_bits_;
  GF2m field_;
  Poly2 generator_;
  /// Precomputed parity row masks (over stored bits, without the extended
  /// parity) for the cost model and fast syndrome computation.
  std::vector<BitVec> syndrome_rows_;

  // --- word-level fast path (populated only when codeword_bits() <= 64) ---
  /// Full codeword of the unit data word e_i: encode_word XORs one of
  /// these per set data bit (encoding is linear over GF(2)).
  std::vector<std::uint64_t> unit_codewords_;
  /// syndrome_rows_ packed into words: bit b of S1 is the parity of
  /// (stored & s1_row_masks_[b]); likewise S3.
  std::vector<std::uint64_t> s1_row_masks_;
  std::vector<std::uint64_t> s3_row_masks_;
};

}  // namespace hvc::edc
