// Polynomials over GF(2), used to build BCH generator polynomials and to
// perform systematic encoding by polynomial division.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hvc::edc {

/// Dense polynomial over GF(2); coefficient i is the x^i term.
class Poly2 {
 public:
  Poly2() = default;
  /// From a coefficient mask; bit i of `mask` is the x^i coefficient.
  explicit Poly2(std::uint64_t mask);
  /// From an explicit coefficient vector (index = degree).
  explicit Poly2(std::vector<std::uint8_t> coeffs);

  [[nodiscard]] static Poly2 zero() { return Poly2{}; }
  [[nodiscard]] static Poly2 one() { return Poly2{1}; }
  /// x^degree
  [[nodiscard]] static Poly2 monomial(std::size_t degree);

  [[nodiscard]] bool is_zero() const noexcept { return coeffs_.empty(); }
  /// Degree; -1 for the zero polynomial.
  [[nodiscard]] int degree() const noexcept {
    return static_cast<int>(coeffs_.size()) - 1;
  }
  [[nodiscard]] bool coeff(std::size_t i) const noexcept {
    return i < coeffs_.size() && coeffs_[i] != 0;
  }

  [[nodiscard]] Poly2 operator+(const Poly2& other) const;
  [[nodiscard]] Poly2 operator*(const Poly2& other) const;
  /// Quotient and remainder of division by `divisor` (divisor != 0).
  struct DivMod;
  [[nodiscard]] DivMod divmod(const Poly2& divisor) const;
  [[nodiscard]] Poly2 mod(const Poly2& divisor) const;

  [[nodiscard]] bool operator==(const Poly2& other) const noexcept = default;

  /// Evaluation at a GF(2^m) point given multiply/add callables is done by
  /// the BCH code itself; here only GF(2) evaluation is provided.
  [[nodiscard]] bool eval_gf2(bool x) const noexcept;

  /// e.g. "x^6 + x + 1"
  [[nodiscard]] std::string to_string() const;

 private:
  void trim() noexcept;
  std::vector<std::uint8_t> coeffs_;  // normalized: back() == 1 unless empty
};

struct Poly2::DivMod {
  Poly2 quotient;
  Poly2 remainder;
};

}  // namespace hvc::edc
