// Soft-error reliability analysis for EDC-protected arrays.
//
// The paper's scenario B exists because soft errors stack on top of hard
// faults: SECDED spends its single correction on the stuck bit, so the
// first particle strike in that word is already uncorrectable, while
// DECTED survives one strike per word. This module quantifies that:
// given a per-bit soft-error rate (tech::soft_error_rate_per_bit), a word
// geometry and a scrub interval, it computes the probability of an
// uncorrectable accumulation and the array MTTF — analytically (Poisson
// model) and checkably against Monte-Carlo (tests).
#pragma once

#include <cstddef>

namespace hvc::yield {

/// One protected word population.
struct SoftWordClass {
  std::size_t count = 0;          ///< number of words
  std::size_t bits = 0;           ///< stored bits per word (n + k)
  /// Soft errors the code can absorb per word on top of any resident hard
  /// fault (SECDED fault-free word: 1; SECDED word with a hard fault: 0;
  /// DECTED word with a hard fault: 1).
  std::size_t soft_budget = 1;
};

/// Probability that more than `budget` soft errors accumulate in one word
/// of `bits` bits within `interval_s`, at `rate` errors/bit/s.
[[nodiscard]] double p_word_overflow(std::size_t bits, double rate_per_bit,
                                     double interval_s, std::size_t budget);

/// Expected uncorrectable events per second for a scrubbed array: each
/// scrub interval is an independent accumulation window.
[[nodiscard]] double uncorrectable_event_rate(const SoftWordClass& words,
                                              double rate_per_bit,
                                              double scrub_interval_s);

/// Mean time to the first uncorrectable accumulation (seconds); infinite
/// inputs give infinity.
[[nodiscard]] double mttf_seconds(const SoftWordClass& words,
                                  double rate_per_bit,
                                  double scrub_interval_s);

/// Scrub interval needed to keep the uncorrectable-event rate below
/// `max_events_per_s` (bisection; returns 0 when unachievable).
[[nodiscard]] double required_scrub_interval(const SoftWordClass& words,
                                             double rate_per_bit,
                                             double max_events_per_s);

}  // namespace hvc::yield
