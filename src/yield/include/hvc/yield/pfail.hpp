// Cell hard-failure probability estimation.
//
// Reproduces the method of Chen et al., "Yield-driven near-threshold SRAM
// design" (ICCAD 2007) — the paper's reference [6]: rare cell failures
// under Vt mismatch are estimated with mean-shifted importance sampling,
// because naive Monte-Carlo would need ~1/Pf samples (Pf ~ 1e-6..1e-9).
//
// The sampler draws per-transistor Vt shifts from a two-component Gaussian
// mixture shifted toward the read-failure and write-failure directions
// (the margin sensitivity vectors), evaluates the cell's worst margin, and
// re-weights with exact likelihood ratios. hvc::tech::analytic_pfail is the
// closed-form companion the estimator validates.
#pragma once

#include <cstddef>

#include "hvc/common/rng.hpp"
#include "hvc/tech/sram_cell.hpp"

namespace hvc::yield {

/// Monte-Carlo estimate with its statistical quality.
struct PfEstimate {
  double pf = 0.0;        ///< estimated failure probability
  double stderr_pf = 0.0; ///< standard error of the estimate
  std::size_t trials = 0;
  std::size_t failures = 0;  ///< raw failing samples (unweighted count)

  /// Relative standard error; large when the estimate is untrustworthy.
  [[nodiscard]] double relative_error() const noexcept {
    return pf > 0.0 ? stderr_pf / pf : 1.0;
  }
};

/// Plain Monte-Carlo estimator. Only usable when Pf * trials >> 1; kept as
/// the ground-truth cross-check for the importance sampler in tests.
[[nodiscard]] PfEstimate naive_mc_pfail(const tech::CellDesign& cell,
                                        double vcc, Rng& rng,
                                        std::size_t trials);

/// Mean-shifted mixture importance sampling (Chen-style).
///
/// `shift_sigmas` < 0 selects the shift automatically from the analytic
/// margin z-scores (recommended).
[[nodiscard]] PfEstimate importance_sample_pfail(const tech::CellDesign& cell,
                                                 double vcc, Rng& rng,
                                                 std::size_t trials = 20000,
                                                 double shift_sigmas = -1.0);

}  // namespace hvc::yield
