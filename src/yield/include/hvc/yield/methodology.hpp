// The paper's design methodology (Section III-C, Figure 2).
//
// Steps reproduced verbatim:
//  * HP ways: pick the hard faulty-bit rate Pf from the cache size and the
//    target yield, then size the 6T cells to meet it at high Vcc.
//  * ULE baseline: size 10T cells at NST Vcc to match the same Pf; compute
//    the resulting way yield Y10T (with SECDED on top in scenario B).
//  * Proposal: start 8T cells at minimum size, compute Pf8T (Chen-style
//    analysis), compute the EDC-protected yield via Eqs. (1)-(2), and grow
//    the transistors by the smallest step until Y >= Y10T.
#pragma once

#include <cstddef>
#include <vector>

#include "hvc/edc/code.hpp"
#include "hvc/tech/sram_cell.hpp"
#include "hvc/yield/cache_yield.hpp"

namespace hvc::yield {

/// Geometry of the array being designed (one ULE way by default).
struct ArrayGeometry {
  std::size_t lines = 32;       ///< cache lines in the array
  std::size_t line_bytes = 32;  ///< bytes per line
};

/// The two baseline-reliability scenarios of Section III-B.
enum class Scenario {
  kA,  ///< baseline 6T+10T, no coding -> proposal 6T+8T+SECDED
  kB,  ///< baseline 6T+SECDED+10T+SECDED -> proposal 6T+SECDED+8T+DECTED
};

[[nodiscard]] const char* to_string(Scenario scenario);

/// One iteration of the Fig. 2 sizing loop (also used for reporting).
struct SizingStep {
  double size = 1.0;
  double pf = 0.0;
  double yield = 0.0;
};

/// Result of sizing one cell design.
struct SizingResult {
  tech::CellDesign cell;
  double pf = 0.0;     ///< analytic per-bit hard fault probability
  double yield = 0.0;  ///< array yield with this cell (and its coding)
  std::vector<SizingStep> steps;  ///< the loop trace (Fig. 2)
};

/// All sized cells for one scenario, ready for the energy evaluation.
struct CacheCellPlan {
  Scenario scenario = Scenario::kA;
  double hp_vcc = 1.0;
  double ule_vcc = 0.35;
  double target_pf = 0.0;      ///< HP-way Pf implied by the yield target
  SizingResult hp_6t;          ///< HP ways at hp_vcc
  SizingResult baseline_10t;   ///< baseline ULE way at ule_vcc
  SizingResult proposed_8t;    ///< proposed ULE way at ule_vcc (EDC on)
};

/// Sizing-loop configuration.
struct MethodologyConfig {
  double target_yield = 0.99;  ///< yield goal for the HP-way Pf derivation
  double size_step = 0.05;     ///< smallest width increment (Fig. 2 step 5a)
  double max_size = 32.0;      ///< sanity bound on the loop
  ArrayGeometry geometry;      ///< one ULE way of the 8KB 8-way cache
  /// Bits whose raw yield defines the HP Pf target (paper quotes
  /// Pf = 1.22e-6 for 99% yield; that corresponds to ~8.2k bits, i.e. one
  /// 1KB way including tags — see EXPERIMENTS.md).
  std::size_t pf_reference_bits = 0;  ///< 0 = derive from geometry
};

/// Smallest cell size whose analytic Pf at `vcc` is <= `target_pf`.
[[nodiscard]] SizingResult size_cell_for_pf(tech::CellKind kind, double vcc,
                                            double target_pf,
                                            const MethodologyConfig& config);

/// Runs the full Fig. 2 methodology for a scenario at the given operating
/// voltages, producing every sized cell the evaluation needs.
[[nodiscard]] CacheCellPlan run_methodology(Scenario scenario,
                                            double hp_vcc = 1.0,
                                            double ule_vcc = 0.35,
                                            const MethodologyConfig& config = {});

}  // namespace hvc::yield
