// Word- and cache-level yield: the paper's Equations (1) and (2).
//
//   P(word ok) = sum_{i=0..t} C(n+k, i) * Pf^i * (1-Pf)^(n+k-i)     (1)
//   Y = P(data)^DW * P(tag)^TW                                      (2)
//
// where n is the word width (32 data / 26 tag), k the check bits, t the
// number of hard faults the code may spend corrections on (1 for
// 8T+SECDED in scenario A; 1 for 8T+DECTED in scenario B because the
// second correction is reserved for a coincident soft error; 0 without
// coding or when SECDED is reserved for soft errors as in the scenario B
// baseline), and DW/TW count data/tag words in the protected array.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hvc/common/rng.hpp"

namespace hvc::yield {

/// One homogeneous class of protected words in an array.
struct WordClass {
  std::string label;             ///< e.g. "data" or "tag"
  std::size_t count = 0;         ///< DW or TW
  std::size_t data_bits = 0;     ///< n
  std::size_t check_bits = 0;    ///< k
  std::size_t hard_correctable = 0;  ///< t: hard faults repairable per word
};

/// Equation (1): probability that one word has at most `hard_correctable`
/// hard-faulty bits.
[[nodiscard]] double word_ok_probability(double pf, const WordClass& word);

/// Equation (2) over an arbitrary set of word classes.
[[nodiscard]] double cache_yield(double pf,
                                 std::span<const WordClass> words);

/// Inverse problem: the largest per-bit Pf delivering at least
/// `target_yield` for the given word classes (bisection).
[[nodiscard]] double max_pf_for_yield(double target_yield,
                                      std::span<const WordClass> words);

/// Convenience: raw-bit yield (no correction) over `bits` bits, i.e. the
/// paper's "Pf = 1.22e-6 for 99% yield" style calculation.
[[nodiscard]] double raw_yield(double pf, std::size_t bits);
[[nodiscard]] double max_pf_for_raw_yield(double target_yield,
                                          std::size_t bits);

/// Outcome of a Monte-Carlo chip-yield experiment.
struct McYieldResult {
  std::size_t chips = 0;
  std::size_t chips_ok = 0;
  /// Total faulty bits sampled across all chips (diagnostic: the sampler's
  /// work is proportional to this, not to chips * total bits).
  std::uint64_t faults_sampled = 0;

  [[nodiscard]] double yield() const noexcept {
    return chips == 0 ? 0.0
                      : static_cast<double>(chips_ok) /
                            static_cast<double>(chips);
  }
};

/// Monte-Carlo counterpart of cache_yield() (Equations (1)-(2)): samples
/// `chips` instances of per-bit hard faults and counts chips where every
/// word stays within its correction budget. Instead of one Bernoulli draw
/// per bit, geometric skip-sampling (Rng::geometric) jumps straight to the
/// next faulty bit, so a chip costs O(expected faults) = O(total_bits * pf)
/// draws rather than O(total_bits) — a ~1/Pf speedup at paper Pf values.
[[nodiscard]] McYieldResult mc_cache_yield(double pf,
                                           std::span<const WordClass> words,
                                           std::size_t chips, Rng& rng);

/// Explicit-seed overload for sharded runs: chip i draws from the
/// counter-based stream Rng::stream(seed, i), so splitting `chips` across
/// shards/threads (each shard passing the same `seed` and its own chip
/// index range via `first_chip`) reproduces the single-shard result
/// exactly.
[[nodiscard]] McYieldResult mc_cache_yield_seeded(
    double pf, std::span<const WordClass> words, std::size_t chips,
    std::uint64_t seed, std::size_t first_chip = 0);

/// Standard word-class layouts for one ULE way of the paper's cache
/// (32-bit data words, 26-bit tags), given the way's line count and line
/// size in bytes.
[[nodiscard]] std::vector<WordClass> ule_way_words(std::size_t lines,
                                                   std::size_t line_bytes,
                                                   std::size_t check_bits_data,
                                                   std::size_t check_bits_tag,
                                                   std::size_t hard_correctable);

}  // namespace hvc::yield
