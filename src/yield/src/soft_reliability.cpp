#include "hvc/yield/soft_reliability.hpp"

#include <cmath>
#include <limits>

#include "hvc/common/error.hpp"

namespace hvc::yield {

double p_word_overflow(std::size_t bits, double rate_per_bit,
                       double interval_s, std::size_t budget) {
  expects(bits > 0, "word must have bits");
  expects(rate_per_bit >= 0.0 && interval_s >= 0.0,
          "rates and intervals must be non-negative");
  const double mean = rate_per_bit * static_cast<double>(bits) * interval_s;
  if (mean == 0.0) {
    return 0.0;
  }
  if (mean < 1e-6) {
    // 1 - CDF underflows in double precision for tiny means; use the
    // leading tail term P(N > b) ~= m^(b+1) / (b+1)!  (relative error ~m).
    double term = 1.0;
    for (std::size_t i = 1; i <= budget + 1; ++i) {
      term *= mean / static_cast<double>(i);
    }
    return term;
  }
  // P(N > budget) = 1 - sum_{i=0..budget} e^-m m^i / i!
  double term = std::exp(-mean);  // i = 0
  double cdf = term;
  for (std::size_t i = 1; i <= budget; ++i) {
    term *= mean / static_cast<double>(i);
    cdf += term;
  }
  return std::max(0.0, 1.0 - cdf);
}

double uncorrectable_event_rate(const SoftWordClass& words,
                                double rate_per_bit,
                                double scrub_interval_s) {
  expects(scrub_interval_s > 0.0, "scrub interval must be positive");
  const double p =
      p_word_overflow(words.bits, rate_per_bit, scrub_interval_s,
                      words.soft_budget);
  // Union over words and over independent scrub windows per second.
  return static_cast<double>(words.count) * p / scrub_interval_s;
}

double mttf_seconds(const SoftWordClass& words, double rate_per_bit,
                    double scrub_interval_s) {
  const double rate =
      uncorrectable_event_rate(words, rate_per_bit, scrub_interval_s);
  if (rate <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return 1.0 / rate;
}

double required_scrub_interval(const SoftWordClass& words,
                               double rate_per_bit,
                               double max_events_per_s) {
  expects(max_events_per_s > 0.0, "target rate must be positive");
  // Event rate decreases monotonically as the interval shrinks (for
  // budget >= 1); bisect on log-interval.
  double lo = 1e-6;
  double hi = 1e9;
  if (uncorrectable_event_rate(words, rate_per_bit, lo) > max_events_per_s) {
    return 0.0;  // even continuous scrubbing is not enough
  }
  if (uncorrectable_event_rate(words, rate_per_bit, hi) <=
      max_events_per_s) {
    return hi;  // no scrubbing needed within any practical mission
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = std::sqrt(lo * hi);
    if (uncorrectable_event_rate(words, rate_per_bit, mid) <=
        max_events_per_s) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace hvc::yield
