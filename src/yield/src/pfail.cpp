#include "hvc/yield/pfail.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "hvc/common/error.hpp"
#include "hvc/common/stats.hpp"

namespace hvc::yield {

namespace {

[[nodiscard]] double inverse_q(double p) noexcept {
  // Rough inverse of the Gaussian tail via bisection on erfc; only used to
  // pick a shift magnitude, so moderate accuracy suffices.
  double lo = 0.0;
  double hi = 40.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double q = 0.5 * std::erfc(mid / std::sqrt(2.0));
    if (q > p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

PfEstimate naive_mc_pfail(const tech::CellDesign& cell, double vcc, Rng& rng,
                          std::size_t trials) {
  expects(trials > 0, "naive_mc_pfail needs at least one trial");
  const auto& traits = tech::cell_traits(cell.kind);
  const double sigma = tech::cell_vt_sigma(cell);

  std::vector<double> shifts(traits.transistors, 0.0);
  std::size_t failures = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    for (auto& s : shifts) {
      s = rng.normal(0.0, sigma);
    }
    if (tech::worst_margin(cell, vcc, shifts) < 0.0) {
      ++failures;
    }
  }
  PfEstimate est;
  est.trials = trials;
  est.failures = failures;
  est.pf = static_cast<double>(failures) / static_cast<double>(trials);
  est.stderr_pf =
      std::sqrt(std::max(est.pf * (1.0 - est.pf), 0.0) /
                static_cast<double>(trials));
  return est;
}

PfEstimate importance_sample_pfail(const tech::CellDesign& cell, double vcc,
                                   Rng& rng, std::size_t trials,
                                   double shift_sigmas) {
  expects(trials > 0, "importance_sample_pfail needs at least one trial");
  const auto& traits = tech::cell_traits(cell.kind);
  const double sigma = tech::cell_vt_sigma(cell);
  const std::size_t dim = traits.transistors;

  // Failure directions: unit vectors along the read and write sensitivity
  // gradients (increasing Vt shift along +sensitivity reduces the margin).
  const auto unit_direction = [&](const tech::MarginModel& margin) {
    std::vector<double> dir(margin.sensitivities.begin(),
                            margin.sensitivities.end());
    const double norm = margin.sensitivity_norm();
    for (auto& d : dir) {
      d /= norm;
    }
    return dir;
  };
  const std::vector<double> dir_read = unit_direction(traits.read);
  const std::vector<double> dir_write = unit_direction(traits.write);

  // Shift magnitude: land the mixture means on the failure boundary.
  const auto z_of = [&](const tech::MarginModel& margin) {
    return margin.mean(vcc) / (margin.sensitivity_norm() * sigma);
  };
  double z_read = std::max(z_of(traits.read), 0.5);
  double z_write = std::max(z_of(traits.write), 0.5);
  if (shift_sigmas > 0.0) {
    z_read = shift_sigmas;
    z_write = shift_sigmas;
  }

  std::vector<std::vector<double>> means(2, std::vector<double>(dim, 0.0));
  for (std::size_t i = 0; i < dim; ++i) {
    means[0][i] = z_read * sigma * dir_read[i];
    means[1][i] = z_write * sigma * dir_write[i];
  }

  // log N(x; mu, sigma^2 I) up to the common normalisation constant.
  const auto log_density_shape = [&](const std::vector<double>& x,
                                     const std::vector<double>& mu) {
    double acc = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double d = x[i] - mu[i];
      acc += d * d;
    }
    return -acc / (2.0 * sigma * sigma);
  };
  const std::vector<double> zero_mean(dim, 0.0);

  RunningStat weights;
  std::size_t failures = 0;
  std::vector<double> sample(dim, 0.0);
  for (std::size_t t = 0; t < trials; ++t) {
    const std::size_t component = t % 2;
    for (std::size_t i = 0; i < dim; ++i) {
      sample[i] = rng.normal(means[component][i], sigma);
    }
    double weighted = 0.0;
    if (tech::worst_margin(cell, vcc, sample) < 0.0) {
      ++failures;
      const double log_p0 = log_density_shape(sample, zero_mean);
      const double log_q0 = log_density_shape(sample, means[0]);
      const double log_q1 = log_density_shape(sample, means[1]);
      // Mixture proposal q = 0.5 q0 + 0.5 q1; compute in log space.
      const double m = std::max(log_q0, log_q1);
      const double log_q =
          m + std::log(0.5 * std::exp(log_q0 - m) +
                       0.5 * std::exp(log_q1 - m));
      weighted = std::exp(log_p0 - log_q);
    }
    weights.add(weighted);
  }

  PfEstimate est;
  est.trials = trials;
  est.failures = failures;
  est.pf = weights.mean();
  est.stderr_pf = weights.stderr_mean();
  return est;
}

namespace detail {
// Exposed for tests that want the shift heuristic.
[[nodiscard]] double inverse_q_for_tests(double p) { return inverse_q(p); }
}  // namespace detail

}  // namespace hvc::yield
