#include "hvc/yield/cache_yield.hpp"

#include <cmath>

#include "hvc/common/error.hpp"

namespace hvc::yield {

namespace {

/// Thread-safe log-gamma: std::lgamma writes the global `signgam`, which
/// races when the explorer sizes plans on several threads. Every argument
/// here is a positive integer + 1, so the sign is always +.
[[nodiscard]] double lgamma_safe(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

[[nodiscard]] double log_binomial(std::size_t n, std::size_t k) {
  return lgamma_safe(static_cast<double>(n) + 1.0) -
         lgamma_safe(static_cast<double>(k) + 1.0) -
         lgamma_safe(static_cast<double>(n - k) + 1.0);
}

}  // namespace

double word_ok_probability(double pf, const WordClass& word) {
  expects(pf >= 0.0 && pf <= 1.0, "Pf must be a probability");
  const std::size_t total_bits = word.data_bits + word.check_bits;
  expects(total_bits > 0, "word must have at least one bit");
  if (pf == 0.0) {
    return 1.0;
  }
  double ok = 0.0;
  for (std::size_t i = 0; i <= word.hard_correctable && i <= total_bits; ++i) {
    const double log_term =
        log_binomial(total_bits, i) +
        static_cast<double>(i) * std::log(pf) +
        static_cast<double>(total_bits - i) * std::log1p(-pf);
    ok += std::exp(log_term);
  }
  return std::min(ok, 1.0);
}

double cache_yield(double pf, std::span<const WordClass> words) {
  double log_yield = 0.0;
  for (const auto& word : words) {
    const double p = word_ok_probability(pf, word);
    if (p <= 0.0) {
      return 0.0;
    }
    log_yield += static_cast<double>(word.count) * std::log(p);
  }
  return std::exp(log_yield);
}

double max_pf_for_yield(double target_yield,
                        std::span<const WordClass> words) {
  expects(target_yield > 0.0 && target_yield < 1.0,
          "target yield must be in (0,1)");
  double lo = 0.0;
  double hi = 0.5;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (cache_yield(mid, words) >= target_yield) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double raw_yield(double pf, std::size_t bits) {
  const WordClass raw{"raw", 1, bits, 0, 0};
  return word_ok_probability(pf, raw);
}

double max_pf_for_raw_yield(double target_yield, std::size_t bits) {
  const std::vector<WordClass> words{{"raw", 1, bits, 0, 0}};
  return max_pf_for_yield(target_yield, words);
}

namespace {

/// Samples one chip's fault pattern; returns whether every word stayed
/// within its correction budget and accumulates the faults drawn.
[[nodiscard]] bool sample_chip(double pf, std::span<const WordClass> words,
                               Rng& rng, std::uint64_t& faults_sampled) {
  for (const auto& word : words) {
    const std::uint64_t bits = word.data_bits + word.check_bits;
    const std::uint64_t span = word.count * bits;
    // Jump from faulty bit to faulty bit across the whole word class;
    // consecutive faults landing in the same word share its budget.
    std::uint64_t position = rng.geometric(pf);
    std::uint64_t current_word = ~std::uint64_t{0};
    std::size_t word_faults = 0;
    while (position < span) {
      ++faults_sampled;
      const std::uint64_t word_index = position / bits;
      word_faults = word_index == current_word ? word_faults + 1 : 1;
      current_word = word_index;
      if (word_faults > word.hard_correctable) {
        return false;
      }
      const std::uint64_t skip = rng.geometric(pf);
      if (skip >= span - position - 1) {
        break;
      }
      position += skip + 1;
    }
  }
  return true;
}

}  // namespace

McYieldResult mc_cache_yield(double pf, std::span<const WordClass> words,
                             std::size_t chips, Rng& rng) {
  expects(pf >= 0.0 && pf <= 1.0, "Pf must be a probability");
  McYieldResult result;
  result.chips = chips;
  for (std::size_t chip = 0; chip < chips; ++chip) {
    result.chips_ok +=
        sample_chip(pf, words, rng, result.faults_sampled) ? 1 : 0;
  }
  return result;
}

McYieldResult mc_cache_yield_seeded(double pf,
                                    std::span<const WordClass> words,
                                    std::size_t chips, std::uint64_t seed,
                                    std::size_t first_chip) {
  expects(pf >= 0.0 && pf <= 1.0, "Pf must be a probability");
  McYieldResult result;
  result.chips = chips;
  for (std::size_t chip = 0; chip < chips; ++chip) {
    // One counter-based stream per chip: the outcome of chip i depends
    // only on (seed, first_chip + i), never on other chips' draw counts.
    Rng rng = Rng::stream(seed, first_chip + chip);
    result.chips_ok +=
        sample_chip(pf, words, rng, result.faults_sampled) ? 1 : 0;
  }
  return result;
}

std::vector<WordClass> ule_way_words(std::size_t lines, std::size_t line_bytes,
                                     std::size_t check_bits_data,
                                     std::size_t check_bits_tag,
                                     std::size_t hard_correctable) {
  expects(line_bytes % 4 == 0, "line size must be a whole number of words");
  const std::size_t data_words = lines * (line_bytes / 4);
  std::vector<WordClass> words;
  words.push_back({"data", data_words, 32, check_bits_data, hard_correctable});
  words.push_back({"tag", lines, 26, check_bits_tag, hard_correctable});
  return words;
}

}  // namespace hvc::yield
