#include "hvc/yield/methodology.hpp"

#include <cmath>

#include "hvc/common/error.hpp"

namespace hvc::yield {

namespace {

using tech::CellDesign;
using tech::CellKind;

/// Yield of one ULE way built from `cell` at `vcc` with the given coding.
[[nodiscard]] double way_yield(const CellDesign& cell, double vcc,
                               const ArrayGeometry& geometry,
                               edc::Protection protection,
                               std::size_t hard_correctable) {
  const double pf = tech::analytic_pfail(cell, vcc);
  const auto words = ule_way_words(
      geometry.lines, geometry.line_bytes,
      edc::check_bits_for(protection), edc::check_bits_for(protection),
      hard_correctable);
  return cache_yield(pf, words);
}

}  // namespace

const char* to_string(Scenario scenario) {
  return scenario == Scenario::kA ? "A" : "B";
}

SizingResult size_cell_for_pf(CellKind kind, double vcc, double target_pf,
                              const MethodologyConfig& config) {
  expects(target_pf > 0.0 && target_pf < 1.0, "target Pf out of range");
  SizingResult result;
  for (double size = 1.0; size <= config.max_size;
       size += config.size_step) {
    const CellDesign cell{kind, size};
    const double pf = tech::analytic_pfail(cell, vcc);
    result.steps.push_back({size, pf, 0.0});
    if (pf <= target_pf) {
      result.cell = cell;
      result.pf = pf;
      return result;
    }
  }
  throw ConfigError("size_cell_for_pf: target Pf unreachable within bounds");
}

CacheCellPlan run_methodology(Scenario scenario, double hp_vcc, double ule_vcc,
                              const MethodologyConfig& config) {
  CacheCellPlan plan;
  plan.scenario = scenario;
  plan.hp_vcc = hp_vcc;
  plan.ule_vcc = ule_vcc;

  // --- Step 1: HP-way Pf target from cache size and yield goal. ---
  std::size_t reference_bits = config.pf_reference_bits;
  if (reference_bits == 0) {
    // Data bits of one way (1KB = 8192 bits): reproduces the paper's
    // "Pf = 1.22e-6 for 99% yield" example exactly.
    reference_bits = config.geometry.lines * config.geometry.line_bytes * 8;
  }
  plan.target_pf = max_pf_for_raw_yield(config.target_yield, reference_bits);

  // --- Step 2: size 6T at HP Vcc for that Pf. ---
  plan.hp_6t = size_cell_for_pf(CellKind::k6T, hp_vcc, plan.target_pf, config);

  // --- Step 3: size 10T at ULE Vcc to match the same Pf (Fig. 2, top). ---
  plan.baseline_10t =
      size_cell_for_pf(CellKind::k10T, ule_vcc, plan.target_pf, config);
  // Baseline way yield: raw in scenario A; SECDED present in scenario B but
  // reserved for soft errors, so hard faults get no correction budget
  // (the check bits still have to be fault-free).
  const edc::Protection baseline_protection = scenario == Scenario::kA
                                                  ? edc::Protection::kNone
                                                  : edc::Protection::kSecded;
  plan.baseline_10t.yield =
      way_yield(plan.baseline_10t.cell, ule_vcc, config.geometry,
                baseline_protection, 0);

  // --- Steps 1-6 of the Fig. 2 loop: grow 8T until Y >= Y10T. ---
  const edc::Protection proposed_protection = scenario == Scenario::kA
                                                  ? edc::Protection::kSecded
                                                  : edc::Protection::kDected;
  const double required_yield = plan.baseline_10t.yield;
  SizingResult proposal;
  bool found = false;
  for (double size = 1.0; size <= config.max_size;
       size += config.size_step) {
    const CellDesign cell{CellKind::k8T, size};
    const double pf = tech::analytic_pfail(cell, ule_vcc);
    const double yield = way_yield(cell, ule_vcc, config.geometry,
                                   proposed_protection, 1);
    proposal.steps.push_back({size, pf, yield});
    if (yield >= required_yield) {
      proposal.cell = cell;
      proposal.pf = pf;
      proposal.yield = yield;
      found = true;
      break;
    }
  }
  ensure(found, "8T+EDC sizing loop failed to reach the 10T yield");
  plan.proposed_8t = proposal;
  return plan;
}

}  // namespace hvc::yield
