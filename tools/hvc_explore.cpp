// hvc_explore — parallel design-space exploration driver.
//
// Reads a declarative sweep spec (JSON), shards its points across a
// worker pool, and streams the aggregated table to CSV or JSON. Output is
// byte-identical for any --threads value (see hvc/explore/engine.hpp).
//
// Usage:
//   hvc_explore --spec examples/fig3.json [--threads N] [--out sweep.csv]
//               [--format csv|json] [--seed S] [--dry-run] [--print-spec]
//               [--store FILE [--resume]]
//   hvc_explore store fsck [--repair] FILE
//   hvc_explore store info FILE
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <optional>
#include <string>

#include "hvc/common/io.hpp"
#include "hvc/common/thread_pool.hpp"
#include "hvc/explore/engine.hpp"
#include "hvc/explore/result_store.hpp"
#include "hvc/store/store.hpp"
#include "hvc/workloads/workload.hpp"

namespace {

void print_usage(std::FILE* stream) {
  std::fprintf(stream,
               "usage: hvc_explore --spec FILE [options]\n"
               "\n"
               "options:\n"
               "  --spec FILE      sweep specification (JSON); required\n"
               "  --threads N      worker threads (default: hardware "
               "concurrency)\n"
               "  --out FILE       write the table to FILE instead of "
               "stdout\n"
               "  --format FMT     csv (default) or json\n"
               "  --seed S         override the spec's base seed\n"
               "  --store FILE     crash-safe persistent result store "
               "(.hvcs): warm\n"
               "                   points are answered from the store, "
               "cold points\n"
               "                   simulated and committed as they "
               "complete\n"
               "  --resume         permit opening a store whose writer "
               "died (the\n"
               "                   torn tail, if any, is truncated; "
               "committed\n"
               "                   records are kept, so the sweep "
               "continues\n"
               "                   instead of restarting)\n"
               "  --dry-run        parse + expand only; print the point "
               "count\n"
               "  --print-spec     echo the validated spec as JSON and "
               "exit\n"
               "  --list-workloads print the workload registry (axis "
               "\"workload\") and exit\n"
               "  --list-scenarios print the paper scenarios (axis "
               "\"scenario\") and exit\n"
               "  --help           this message\n"
               "\n"
               "subcommands:\n"
               "  store fsck [--repair] FILE   classify a result store as "
               "clean /\n"
               "                   recoverable / corrupt; with --repair, "
               "truncate\n"
               "                   the torn tail and clear the dirty "
               "flag\n"
               "  store info FILE  print a store's record count and "
               "sizes\n"
               "\n"
               "Output is byte-identical for any --threads value: every\n"
               "sweep point derives its random streams from its own index\n"
               "(counter-based splitting), and rows are emitted in point\n"
               "order.\n");
}

struct Options {
  std::string spec_path;
  std::size_t threads = hvc::ThreadPool::hardware_threads();
  std::string out_path;  ///< empty = stdout
  std::string format = "csv";
  std::optional<std::uint64_t> seed_override;
  std::string store_path;  ///< empty = no persistent store
  bool resume = false;
  bool dry_run = false;
  bool print_spec = false;
  bool list_workloads = false;
  bool list_scenarios = false;
};

/// `hvc_explore store fsck [--repair] FILE` / `store info FILE`.
int cmd_store(int argc, char** argv) {
  const std::string action = argc > 2 ? argv[2] : "";
  bool repair = false;
  std::string path;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repair") == 0) {
      repair = true;
    } else if (path.empty() && argv[i][0] != '-') {
      path = argv[i];
    } else {
      throw std::runtime_error(std::string("unknown store argument: ") +
                               argv[i]);
    }
  }
  if ((action != "fsck" && action != "info") || path.empty()) {
    throw std::runtime_error(
        "usage: hvc_explore store fsck [--repair] FILE | store info FILE");
  }
  if (action == "info") {
    const hvc::store::FsckReport report = hvc::store::ResultStore::fsck(path);
    std::printf("%s: .hvcs result store (%s)\n", path.c_str(),
                hvc::store::to_string(report.status));
    std::printf("  records      %llu\n",
                static_cast<unsigned long long>(report.records));
    std::printf("  valid bytes  %llu of %llu\n",
                static_cast<unsigned long long>(report.valid_bytes),
                static_cast<unsigned long long>(report.file_bytes));
    std::printf("  dirty flag   %s\n", report.dirty ? "set" : "clear");
    std::printf("  %s\n", report.detail.c_str());
    return report.status == hvc::store::FsckStatus::kClean ? 0 : 1;
  }
  if (repair) {
    const hvc::store::FsckReport report =
        hvc::store::ResultStore::repair(path);
    std::printf("%s: repaired: %s\n", path.c_str(), report.detail.c_str());
    return 0;
  }
  const hvc::store::FsckReport report = hvc::store::ResultStore::fsck(path);
  std::printf("%s: %s (%llu records, %llu/%llu bytes valid): %s\n",
              path.c_str(), hvc::store::to_string(report.status),
              static_cast<unsigned long long>(report.records),
              static_cast<unsigned long long>(report.valid_bytes),
              static_cast<unsigned long long>(report.file_bytes),
              report.detail.c_str());
  switch (report.status) {
    case hvc::store::FsckStatus::kClean:
      return 0;
    case hvc::store::FsckStatus::kRecoverable:
      return 1;
    case hvc::store::FsckStatus::kCorrupt:
      return 2;
  }
  return 2;
}

/// Prints the registry so specs can be authored without reading the
/// source: one name per line with its bench class (the "@small"/"@big"
/// classes the workload axis accepts).
void print_workloads() {
  std::printf("workloads (axis \"workload\"; classes: @small @big @all):\n");
  for (const auto& name : hvc::wl::all_names()) {
    const auto& info = hvc::wl::find_workload(name);
    std::printf("  %-10s @%s\n", name.c_str(),
                hvc::wl::to_string(info.bench_class).c_str());
  }
  std::printf(
      "recorded traces: \"trace:<path>\" replays a .hvct file captured\n"
      "with `hvc_trace record` (also valid inside \"workload_mix\").\n");
}

void print_scenarios() {
  std::printf(
      "scenarios (axis \"scenario\"):\n"
      "  A  no EDC at HP mode: 6T HP ways + 10T ULE way (baseline) or\n"
      "     8T+SECDED ULE way (proposed); SECDED active at ULE only\n"
      "  B  SECDED on every way at HP mode (soft-error protection);\n"
      "     baseline ULE way 10T+SECDED, proposed 8T+DECTED at ULE\n"
      "hierarchy (axes \"l2\", \"l2_size_kb\"):\n"
      "  none      two-level chip: IL1+DL1 -> memory (the paper's shape)\n"
      "  baseline  shared L2 with fault-free-sized 10T ULE ways\n"
      "  proposed  shared L2 with 8T ULE ways + the scenario's EDC\n"
      "multi-core (axes \"cores\", \"workload_mix\"):\n"
      "  cores         cores per chip (private IL1/DL1s, round-robin\n"
      "                arbitration for the shared L2 / memory port)\n"
      "  workload_mix  per-core mixes as '+'-separated registry names\n"
      "                (\"gsm_c+adpcm_c\"; core c runs entry c mod length;\n"
      "                mutually exclusive with \"workload\")\n");
}

[[nodiscard]] Options parse_args(int argc, char** argv) {
  Options options;
  const auto value_of = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      throw std::runtime_error(std::string("missing value for ") + argv[i]);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--spec") == 0) {
      options.spec_path = value_of(i);
    } else if (std::strcmp(arg, "--threads") == 0) {
      const long parsed = std::atol(value_of(i));
      if (parsed < 1) {
        throw std::runtime_error("--threads must be >= 1");
      }
      options.threads = static_cast<std::size_t>(parsed);
    } else if (std::strcmp(arg, "--out") == 0) {
      options.out_path = value_of(i);
    } else if (std::strcmp(arg, "--format") == 0) {
      options.format = value_of(i);
      if (options.format != "csv" && options.format != "json") {
        throw std::runtime_error("--format must be csv or json");
      }
    } else if (std::strcmp(arg, "--seed") == 0) {
      const char* text = value_of(i);
      char* end = nullptr;
      errno = 0;
      const unsigned long long parsed = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0' || errno == ERANGE || *text == '-') {
        throw std::runtime_error(
            std::string("--seed must be a decimal uint64, got: ") + text);
      }
      options.seed_override = static_cast<std::uint64_t>(parsed);
    } else if (std::strcmp(arg, "--store") == 0) {
      options.store_path = value_of(i);
    } else if (std::strcmp(arg, "--resume") == 0) {
      options.resume = true;
    } else if (std::strcmp(arg, "--dry-run") == 0) {
      options.dry_run = true;
    } else if (std::strcmp(arg, "--print-spec") == 0) {
      options.print_spec = true;
    } else if (std::strcmp(arg, "--list-workloads") == 0) {
      options.list_workloads = true;
    } else if (std::strcmp(arg, "--list-scenarios") == 0) {
      options.list_scenarios = true;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      print_usage(stdout);
      std::exit(0);
    } else {
      throw std::runtime_error(std::string("unknown option: ") + arg);
    }
  }
  if (options.spec_path.empty() && !options.list_workloads &&
      !options.list_scenarios) {
    throw std::runtime_error("--spec is required");
  }
  if (options.resume && options.store_path.empty()) {
    throw std::runtime_error("--resume needs --store FILE");
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hvc;
  try {
    if (argc > 1 && std::strcmp(argv[1], "store") == 0) {
      return cmd_store(argc, argv);
    }
    const Options options = parse_args(argc, argv);
    if (options.list_workloads || options.list_scenarios) {
      if (options.list_workloads) {
        print_workloads();
      }
      if (options.list_scenarios) {
        print_scenarios();
      }
      return 0;
    }
    explore::SweepSpec spec =
        explore::SweepSpec::parse(read_text_file(options.spec_path));
    if (options.seed_override) {
      spec.seed = *options.seed_override;
    }

    if (options.print_spec) {
      std::printf("%s\n", spec.to_json().dump(2).c_str());
      return 0;
    }
    if (options.dry_run) {
      std::printf("spec \"%s\" (%s): %zu points, %zu threads\n",
                  spec.name.c_str(), explore::to_string(spec.kind),
                  spec.point_count(), options.threads);
      return 0;
    }

    std::unique_ptr<store::ResultStore> store;
    if (!options.store_path.empty()) {
      store = explore::open_result_store(options.store_path, options.resume);
      if (store->recovered_bytes() > 0) {
        std::fprintf(stderr,
                     "store: recovered %llu torn bytes from a killed "
                     "writer (%zu committed records kept)\n",
                     static_cast<unsigned long long>(
                         store->recovered_bytes()),
                     store->records());
      }
    }
    const explore::SweepResult result =
        explore::run_sweep(spec, options.threads, store.get());
    if (store != nullptr) {
      store->close();  // syncs records, then clears the dirty flag
      std::fprintf(stderr,
                   "store: %zu warm, %zu cold points (%zu records now "
                   "committed in %s)\n",
                   result.warm_points, result.cold_points,
                   store->records(), options.store_path.c_str());
    }
    const std::string output = options.format == "csv"
                                   ? result.to_csv()
                                   : result.to_json().dump(2) + "\n";
    if (options.out_path.empty()) {
      std::fwrite(output.data(), 1, output.size(), stdout);
    } else {
      write_text_file(options.out_path, output);
      std::fprintf(stderr, "wrote %zu rows to %s\n", result.points(),
                   options.out_path.c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "hvc_explore: %s\n", error.what());
    return 1;
  }
}
