// hvc_explore — parallel design-space exploration driver.
//
// Reads a declarative sweep spec (JSON), shards its points across a
// worker pool, and streams the aggregated table to CSV or JSON. Output is
// byte-identical for any --threads value (see hvc/explore/engine.hpp).
//
// Usage:
//   hvc_explore --spec examples/fig3.json [--threads N] [--out sweep.csv]
//               [--format csv|json] [--seed S] [--dry-run] [--print-spec]
//               [--store FILE [--resume]] [--progress]
//   hvc_explore serve --socket PATH [--store FILE [--resume]] [--threads N]
//   hvc_explore store fsck [--repair] FILE
//   hvc_explore store info FILE
//
// Exit codes are consistent across every subcommand:
//   0  success (store fsck: clean)
//   1  recoverable failure (a point failed; store fsck: writer died —
//      --resume / --repair will recover)
//   2  usage error or corrupt input (bad flags, malformed spec, store
//      fsck: corrupt file)
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "hvc/common/io.hpp"
#include "hvc/common/thread_pool.hpp"
#include "hvc/explore/engine.hpp"
#include "hvc/explore/executor.hpp"
#include "hvc/explore/point_source.hpp"
#include "hvc/explore/result_store.hpp"
#include "hvc/explore/service.hpp"
#include "hvc/store/store.hpp"
#include "hvc/workloads/workload.hpp"

namespace {

/// Caller mistakes (bad flags, malformed specs): exit code 2, like a
/// corrupt store — the input, not the run, is at fault.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void print_usage(std::FILE* stream) {
  std::fprintf(stream,
               "usage: hvc_explore --spec FILE [options]\n"
               "\n"
               "options:\n"
               "  --spec FILE      sweep specification (JSON); required\n"
               "  --threads N      worker threads (default: hardware "
               "concurrency)\n"
               "  --out FILE       write the table to FILE instead of "
               "stdout\n"
               "  --format FMT     csv (default) or json\n"
               "  --seed S         override the spec's base seed\n"
               "  --store FILE     crash-safe persistent result store "
               "(.hvcs): warm\n"
               "                   points are answered from the store, "
               "cold points\n"
               "                   simulated and committed as they "
               "complete\n"
               "  --resume         permit opening a store whose writer "
               "died (the\n"
               "                   torn tail, if any, is truncated; "
               "committed\n"
               "                   records are kept, so the sweep "
               "continues\n"
               "                   instead of restarting)\n"
               "  --progress       periodic progress line on stderr "
               "(done/total,\n"
               "                   warm vs cold, points/s); off by "
               "default\n"
               "  --dry-run        parse the spec and print the point "
               "count (the\n"
               "                   lazy planner's estimate; nothing is "
               "simulated)\n"
               "  --print-spec     echo the validated spec as JSON and "
               "exit\n"
               "  --list-workloads print the workload registry (axis "
               "\"workload\") and exit\n"
               "  --list-scenarios print the paper scenarios (axis "
               "\"scenario\") and exit\n"
               "  --help           this message\n"
               "\n"
               "subcommands:\n"
               "  serve --socket PATH [--store FILE [--resume]] "
               "[--threads N]\n"
               "                   long-running daemon: clients send "
               "line-delimited\n"
               "                   JSON sweep queries over the Unix "
               "socket and get\n"
               "                   rows streamed back, byte-identical "
               "to a batch\n"
               "                   run; concurrent clients share one "
               "worker pool,\n"
               "                   plan memo and store; SIGTERM shuts "
               "down cleanly\n"
               "                   (store left fsck-clean)\n"
               "  store fsck [--repair] FILE   classify a result store as "
               "clean /\n"
               "                   recoverable / corrupt; with --repair, "
               "truncate\n"
               "                   the torn tail and clear the dirty "
               "flag\n"
               "  store info FILE  print a store's record count and "
               "sizes (a live\n"
               "                   daemon's store is read lock-free, in "
               "follow mode)\n"
               "\n"
               "exit codes (every subcommand):\n"
               "  0  success / store clean\n"
               "  1  recoverable failure: a point failed, a store's "
               "writer died\n"
               "     (--resume or fsck --repair recovers), or a store "
               "is busy\n"
               "  2  usage or corrupt input: bad flags, malformed spec, "
               "corrupt\n"
               "     store file\n"
               "\n"
               "Output is byte-identical for any --threads value: every\n"
               "sweep point derives its random streams from its own index\n"
               "(counter-based splitting), and rows are emitted in point\n"
               "order.\n");
}

struct Options {
  std::string spec_path;
  std::size_t threads = hvc::ThreadPool::hardware_threads();
  std::string out_path;  ///< empty = stdout
  std::string format = "csv";
  std::optional<std::uint64_t> seed_override;
  std::string store_path;  ///< empty = no persistent store
  bool resume = false;
  bool progress = false;
  bool dry_run = false;
  bool print_spec = false;
  bool list_workloads = false;
  bool list_scenarios = false;
};

[[nodiscard]] std::size_t parse_threads(const char* text) {
  const long parsed = std::atol(text);
  if (parsed < 1) {
    throw UsageError("--threads must be >= 1");
  }
  return static_cast<std::size_t>(parsed);
}

/// `hvc_explore store fsck [--repair] FILE` / `store info FILE`.
int cmd_store(int argc, char** argv) {
  const std::string action = argc > 2 ? argv[2] : "";
  bool repair = false;
  std::string path;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repair") == 0) {
      repair = true;
    } else if (path.empty() && argv[i][0] != '-') {
      path = argv[i];
    } else {
      throw UsageError(std::string("unknown store argument: ") + argv[i]);
    }
  }
  if ((action != "fsck" && action != "info") || path.empty()) {
    throw UsageError(
        "usage: hvc_explore store fsck [--repair] FILE | store info FILE");
  }
  if (action == "info") {
    try {
      const hvc::store::FsckReport report =
          hvc::store::ResultStore::fsck(path);
      std::printf("%s: .hvcs result store (%s)\n", path.c_str(),
                  hvc::store::to_string(report.status));
      std::printf("  records      %llu\n",
                  static_cast<unsigned long long>(report.records));
      std::printf("  valid bytes  %llu of %llu\n",
                  static_cast<unsigned long long>(report.valid_bytes),
                  static_cast<unsigned long long>(report.file_bytes));
      std::printf("  dirty flag   %s\n", report.dirty ? "set" : "clear");
      std::printf("  %s\n", report.detail.c_str());
      return report.status == hvc::store::FsckStatus::kClean ? 0 : 1;
    } catch (const hvc::store::StoreBusyError&) {
      // A live writer (a sweep or daemon) holds the lock. Follow mode
      // reads the committed prefix without disturbing it.
      hvc::store::OpenOptions follow;
      follow.read_only = true;
      follow.create = false;
      follow.follow = true;
      const hvc::store::ResultStore store(path, follow);
      std::printf("%s: .hvcs result store (live writer attached)\n",
                  path.c_str());
      std::printf("  records      %zu committed so far\n", store.records());
      std::printf("  valid bytes  %llu\n",
                  static_cast<unsigned long long>(store.file_bytes()));
      return 0;
    }
  }
  if (repair) {
    const hvc::store::FsckReport report =
        hvc::store::ResultStore::repair(path);
    std::printf("%s: repaired: %s\n", path.c_str(), report.detail.c_str());
    return 0;
  }
  const hvc::store::FsckReport report = hvc::store::ResultStore::fsck(path);
  std::printf("%s: %s (%llu records, %llu/%llu bytes valid): %s\n",
              path.c_str(), hvc::store::to_string(report.status),
              static_cast<unsigned long long>(report.records),
              static_cast<unsigned long long>(report.valid_bytes),
              static_cast<unsigned long long>(report.file_bytes),
              report.detail.c_str());
  switch (report.status) {
    case hvc::store::FsckStatus::kClean:
      return 0;
    case hvc::store::FsckStatus::kRecoverable:
      return 1;
    case hvc::store::FsckStatus::kCorrupt:
      return 2;
  }
  return 2;
}

/// `hvc_explore serve --socket PATH [--store FILE [--resume]]
/// [--threads N]`.
int cmd_serve(int argc, char** argv) {
  hvc::explore::ServeOptions options;
  options.threads = hvc::ThreadPool::hardware_threads();
  options.announce = true;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value_of = [&]() -> const char* {
      if (i + 1 >= argc) {
        throw UsageError(std::string("missing value for ") + arg);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--socket") == 0) {
      options.socket_path = value_of();
    } else if (std::strcmp(arg, "--store") == 0) {
      options.store_path = value_of();
    } else if (std::strcmp(arg, "--resume") == 0) {
      options.resume = true;
    } else if (std::strcmp(arg, "--threads") == 0) {
      options.threads = parse_threads(value_of());
    } else {
      throw UsageError(std::string("unknown serve option: ") + arg);
    }
  }
  if (options.socket_path.empty()) {
    throw UsageError("serve needs --socket PATH");
  }
  if (options.resume && options.store_path.empty()) {
    throw UsageError("--resume needs --store FILE");
  }
  return hvc::explore::run_serve(options);
}

/// Prints the registry so specs can be authored without reading the
/// source: one name per line with its bench class (the "@small"/"@big"
/// classes the workload axis accepts).
void print_workloads() {
  std::printf("workloads (axis \"workload\"; classes: @small @big @all):\n");
  for (const auto& name : hvc::wl::all_names()) {
    const auto& info = hvc::wl::find_workload(name);
    std::printf("  %-10s @%s\n", name.c_str(),
                hvc::wl::to_string(info.bench_class).c_str());
  }
  std::printf(
      "recorded traces: \"trace:<path>\" replays a .hvct file captured\n"
      "with `hvc_trace record` (also valid inside \"workload_mix\").\n");
}

void print_scenarios() {
  std::printf(
      "scenarios (axis \"scenario\"):\n"
      "  A  no EDC at HP mode: 6T HP ways + 10T ULE way (baseline) or\n"
      "     8T+SECDED ULE way (proposed); SECDED active at ULE only\n"
      "  B  SECDED on every way at HP mode (soft-error protection);\n"
      "     baseline ULE way 10T+SECDED, proposed 8T+DECTED at ULE\n"
      "hierarchy (axes \"l2\", \"l2_size_kb\"):\n"
      "  none      two-level chip: IL1+DL1 -> memory (the paper's shape)\n"
      "  baseline  shared L2 with fault-free-sized 10T ULE ways\n"
      "  proposed  shared L2 with 8T ULE ways + the scenario's EDC\n"
      "multi-core (axes \"cores\", \"workload_mix\"):\n"
      "  cores         cores per chip (private IL1/DL1s, round-robin\n"
      "                arbitration for the shared L2 / memory port)\n"
      "  workload_mix  per-core mixes as '+'-separated registry names\n"
      "                (\"gsm_c+adpcm_c\"; core c runs entry c mod length;\n"
      "                mutually exclusive with \"workload\")\n");
}

[[nodiscard]] Options parse_args(int argc, char** argv) {
  Options options;
  const auto value_of = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      throw UsageError(std::string("missing value for ") + argv[i]);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--spec") == 0) {
      options.spec_path = value_of(i);
    } else if (std::strcmp(arg, "--threads") == 0) {
      options.threads = parse_threads(value_of(i));
    } else if (std::strcmp(arg, "--out") == 0) {
      options.out_path = value_of(i);
    } else if (std::strcmp(arg, "--format") == 0) {
      options.format = value_of(i);
      if (options.format != "csv" && options.format != "json") {
        throw UsageError("--format must be csv or json");
      }
    } else if (std::strcmp(arg, "--seed") == 0) {
      const char* text = value_of(i);
      char* end = nullptr;
      errno = 0;
      const unsigned long long parsed = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0' || errno == ERANGE || *text == '-') {
        throw UsageError(
            std::string("--seed must be a decimal uint64, got: ") + text);
      }
      options.seed_override = static_cast<std::uint64_t>(parsed);
    } else if (std::strcmp(arg, "--store") == 0) {
      options.store_path = value_of(i);
    } else if (std::strcmp(arg, "--resume") == 0) {
      options.resume = true;
    } else if (std::strcmp(arg, "--progress") == 0) {
      options.progress = true;
    } else if (std::strcmp(arg, "--dry-run") == 0) {
      options.dry_run = true;
    } else if (std::strcmp(arg, "--print-spec") == 0) {
      options.print_spec = true;
    } else if (std::strcmp(arg, "--list-workloads") == 0) {
      options.list_workloads = true;
    } else if (std::strcmp(arg, "--list-scenarios") == 0) {
      options.list_scenarios = true;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      print_usage(stdout);
      std::exit(0);
    } else {
      throw UsageError(std::string("unknown option: ") + arg);
    }
  }
  if (options.spec_path.empty() && !options.list_workloads &&
      !options.list_scenarios) {
    throw UsageError("--spec is required");
  }
  if (options.resume && options.store_path.empty()) {
    throw UsageError("--resume needs --store FILE");
  }
  return options;
}

int run_batch(const Options& options) {
  using namespace hvc;
  explore::SweepSpec spec;
  try {
    spec = explore::SweepSpec::parse(read_text_file(options.spec_path));
  } catch (const ConfigError& error) {
    // A spec the parser rejects is caller input, like a bad flag.
    throw UsageError(error.what());
  }
  if (options.seed_override) {
    spec.seed = *options.seed_override;
  }

  if (options.print_spec) {
    std::printf("%s\n", spec.to_json().dump(2).c_str());
    return 0;
  }
  if (options.dry_run) {
    // Asks the lazy planner, not an expansion: the count comes from the
    // same PointSource the executor would pull from, and no point is
    // ever materialized.
    explore::GridPointSource source(spec);
    std::printf("spec \"%s\" (%s): %zu points, %zu threads\n",
                spec.name.c_str(), explore::to_string(spec.kind),
                source.estimated_remaining(), options.threads);
    return 0;
  }

  std::unique_ptr<store::ResultStore> store;
  if (!options.store_path.empty()) {
    store = explore::open_result_store(options.store_path, options.resume);
    if (store->recovered_bytes() > 0) {
      std::fprintf(stderr,
                   "store: recovered %llu torn bytes from a killed "
                   "writer (%zu committed records kept)\n",
                   static_cast<unsigned long long>(
                       store->recovered_bytes()),
                   store->records());
    }
  }

  explore::ExecOptions exec_options;
  const auto started = std::chrono::steady_clock::now();
  auto last_report = started;
  if (options.progress) {
    exec_options.progress = [&](const explore::SweepProgress& progress) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_report < std::chrono::seconds(1) &&
          progress.done != progress.total) {
        return;
      }
      last_report = now;
      const double elapsed =
          std::chrono::duration<double>(now - started).count();
      std::fprintf(stderr,
                   "progress: %zu/%zu points (%zu warm, %zu cold), "
                   "%.1f points/s\n",
                   progress.done, progress.total, progress.warm,
                   progress.cold,
                   elapsed > 0.0 ? static_cast<double>(progress.done) /
                                       elapsed
                                 : 0.0);
    };
  }

  const explore::SweepResult result =
      explore::run_sweep(spec, options.threads, store.get(), exec_options);
  if (store != nullptr) {
    store->close();  // syncs records, then clears the dirty flag
    std::fprintf(stderr,
                 "store: %zu warm, %zu cold points (%zu records now "
                 "committed in %s)\n",
                 result.warm_points, result.cold_points, store->records(),
                 options.store_path.c_str());
  }
  const std::string output = options.format == "csv"
                                 ? result.to_csv()
                                 : result.to_json().dump(2) + "\n";
  if (options.out_path.empty()) {
    std::fwrite(output.data(), 1, output.size(), stdout);
  } else {
    write_text_file(options.out_path, output);
    std::fprintf(stderr, "wrote %zu rows to %s\n", result.points(),
                 options.out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hvc;
  try {
    if (argc > 1 && std::strcmp(argv[1], "store") == 0) {
      return cmd_store(argc, argv);
    }
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
      return cmd_serve(argc, argv);
    }
    const Options options = parse_args(argc, argv);
    if (options.list_workloads || options.list_scenarios) {
      if (options.list_workloads) {
        print_workloads();
      }
      if (options.list_scenarios) {
        print_scenarios();
      }
      return 0;
    }
    return run_batch(options);
  } catch (const UsageError& error) {
    std::fprintf(stderr, "hvc_explore: %s\n", error.what());
    return 2;
  } catch (const store::StoreCorruptError& error) {
    std::fprintf(stderr, "hvc_explore: %s\n", error.what());
    return 2;
  } catch (const store::StoreRecoverableError& error) {
    std::fprintf(stderr, "hvc_explore: %s\n", error.what());
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "hvc_explore: %s\n", error.what());
    return 1;
  }
}
