// hvc_trace — streaming trace capture/replay driver.
//
// Records a workload kernel's memory trace to a compact .hvct file once,
// then replays it any number of times — through this tool or as a
// "trace:<path>" entry on hvc_explore's workload axes — without
// re-running the kernel. Replay streams the file through a bounded
// window, so traces of any length run in O(1) memory.
//
// Usage:
//   hvc_trace record <workload> --out FILE [--seed S] [--scale N]
//   hvc_trace info <file>
//   hvc_trace fsck <file> [--repair]
//   hvc_trace replay <file> [--scenario A|B] [--design baseline|proposed]
//                           [--mode hp|ule] [--cores N] [--system-seed S]
//                           [--block-size N]
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "hvc/common/io.hpp"
#include "hvc/sim/report.hpp"
#include "hvc/sim/system.hpp"
#include "hvc/trace/trace_file.hpp"
#include "hvc/workloads/workload.hpp"

namespace {

void print_usage(std::FILE* stream) {
  std::fprintf(
      stream,
      "usage: hvc_trace <command> ...\n"
      "\n"
      "commands:\n"
      "  record <workload> --out FILE [--seed S] [--scale N]\n"
      "      run a registry kernel and stream its trace to a .hvct file\n"
      "  info <file>\n"
      "      print a .hvct file's header/footer summary (no full decode)\n"
      "  fsck <file> [--repair]\n"
      "      fully decode a .hvct file and classify it clean /\n"
      "      recoverable / corrupt (exit 0/1/2); with --repair, truncate\n"
      "      a recoverable file to its last decodable record and rewrite\n"
      "      a valid footer\n"
      "  replay <file> [--scenario A|B] [--design baseline|proposed]\n"
      "                [--mode hp|ule] [--cores N] [--system-seed S]\n"
      "                [--block-size N] [--profile]\n"
      "      replay a recorded trace through a simulated chip and print\n"
      "      the timing/energy summary (cores > 1 replays the same trace\n"
      "      on every core through the shared-level arbiter; --block-size\n"
      "      sets how many records are pulled and stepped per batch —\n"
      "      default 256, 1 forces the record-at-a-time scalar path;\n"
      "      every block size prints bit-identical results; --profile\n"
      "      additionally prints the replay's wall-time split between\n"
      "      decode, access and retire phases — single-core only)\n"
      "\n"
      "Replaying a recorded trace is bit-identical to the in-memory run\n"
      "that produced it: same energy categories, timing and level stats.\n");
}

[[nodiscard]] const char* value_of(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    throw std::runtime_error(std::string("missing value for ") + argv[i]);
  }
  return argv[++i];
}

[[nodiscard]] std::uint64_t parse_u64_arg(const char* flag,
                                          const char* text) {
  char* end = nullptr;
  errno = 0;
  // strtoull silently wraps negative inputs to huge values; reject the
  // sign up front (same hardening as hvc_explore's --seed parser).
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno != 0 || *text == '-') {
    throw std::runtime_error(std::string(flag) +
                             " needs a non-negative integer");
  }
  return value;
}

int cmd_record(int argc, char** argv) {
  std::string workload;
  std::string out_path;
  std::uint64_t seed = 1;
  std::size_t scale = 1;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--out") == 0) {
      out_path = value_of(argc, argv, i);
    } else if (std::strcmp(arg, "--seed") == 0) {
      seed = parse_u64_arg("--seed", value_of(argc, argv, i));
    } else if (std::strcmp(arg, "--scale") == 0) {
      scale = static_cast<std::size_t>(
          parse_u64_arg("--scale", value_of(argc, argv, i)));
      if (scale == 0) {
        throw std::runtime_error("--scale must be >= 1");
      }
    } else if (workload.empty() && arg[0] != '-') {
      workload = arg;
    } else {
      throw std::runtime_error(std::string("unknown record argument: ") +
                               arg);
    }
  }
  if (workload.empty() || out_path.empty()) {
    throw std::runtime_error("record needs a <workload> and --out FILE");
  }

  const hvc::wl::WorkloadInfo& info = hvc::wl::find_workload(workload);
  const hvc::wl::WorkloadResult result = info.run(seed, scale);
  if (!result.self_check) {
    throw std::runtime_error("workload self-check failed: " + workload);
  }
  const hvc::trace::TraceStats stats =
      hvc::trace::write_trace(out_path, result.tracer);
  const hvc::trace::TraceInfo written = hvc::trace::read_trace_info(out_path);
  std::printf("recorded %s (seed %llu, scale %zu) -> %s\n", workload.c_str(),
              static_cast<unsigned long long>(seed), scale, out_path.c_str());
  std::printf("  records       %llu\n",
              static_cast<unsigned long long>(written.records));
  std::printf("  instructions  %llu\n",
              static_cast<unsigned long long>(stats.instructions));
  std::printf("  file bytes    %llu (%.2f bytes/record)\n",
              static_cast<unsigned long long>(written.file_bytes),
              written.records == 0
                  ? 0.0
                  : static_cast<double>(written.file_bytes) /
                        static_cast<double>(written.records));
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) {
    throw std::runtime_error("info needs a <file>");
  }
  const std::string path = argv[2];
  const hvc::trace::TraceInfo info = hvc::trace::read_trace_info(path);
  std::printf("%s: .hvct version %u\n", path.c_str(), info.version);
  std::printf("  records            %llu\n",
              static_cast<unsigned long long>(info.records));
  std::printf("  payload bytes      %llu (%.2f bytes/record)\n",
              static_cast<unsigned long long>(info.payload_bytes),
              info.records == 0
                  ? 0.0
                  : static_cast<double>(info.payload_bytes) /
                        static_cast<double>(info.records));
  std::printf("  instructions       %llu\n",
              static_cast<unsigned long long>(info.stats.instructions));
  std::printf("  loads / stores     %llu / %llu\n",
              static_cast<unsigned long long>(info.stats.loads),
              static_cast<unsigned long long>(info.stats.stores));
  std::printf("  branches (taken)   %llu (%llu)\n",
              static_cast<unsigned long long>(info.stats.branches),
              static_cast<unsigned long long>(info.stats.taken_branches));
  std::printf("  data footprint     %llu bytes\n",
              static_cast<unsigned long long>(
                  info.stats.data_footprint_bytes));
  std::printf("  code footprint     %llu bytes\n",
              static_cast<unsigned long long>(
                  info.stats.code_footprint_bytes));
  return 0;
}

int cmd_fsck(int argc, char** argv) {
  std::string path;
  bool repair = false;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--repair") == 0) {
      repair = true;
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      throw std::runtime_error(std::string("unknown fsck argument: ") + arg);
    }
  }
  if (path.empty()) {
    throw std::runtime_error("fsck needs a <file>");
  }

  const hvc::trace::TraceFsckReport report =
      repair ? hvc::trace::repair_trace(path) : hvc::trace::fsck_trace(path);
  std::printf("%s: %s\n", path.c_str(),
              hvc::trace::to_string(report.status));
  std::printf("  %s\n", report.detail.c_str());
  std::printf("  records        %llu\n",
              static_cast<unsigned long long>(report.records));
  std::printf("  payload bytes  %llu\n",
              static_cast<unsigned long long>(report.payload_bytes));
  std::printf("  file bytes     %llu\n",
              static_cast<unsigned long long>(report.file_bytes));
  switch (report.status) {
    case hvc::trace::TraceFsckStatus::kClean:
      return 0;
    case hvc::trace::TraceFsckStatus::kRecoverable:
      return 1;
    case hvc::trace::TraceFsckStatus::kCorrupt:
      return 2;
  }
  return 2;
}

int cmd_replay(int argc, char** argv) {
  std::string path;
  hvc::sim::SystemConfig config;
  std::size_t block_records = hvc::trace::kReplayBlockRecords;
  bool profile = false;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(arg, "--scenario") == 0) {
      const std::string value = value_of(argc, argv, i);
      if (value == "A") {
        config.design.scenario = hvc::yield::Scenario::kA;
      } else if (value == "B") {
        config.design.scenario = hvc::yield::Scenario::kB;
      } else {
        throw std::runtime_error("--scenario must be A or B");
      }
    } else if (std::strcmp(arg, "--design") == 0) {
      const std::string value = value_of(argc, argv, i);
      if (value != "baseline" && value != "proposed") {
        throw std::runtime_error("--design must be baseline or proposed");
      }
      config.design.proposed = value == "proposed";
    } else if (std::strcmp(arg, "--mode") == 0) {
      const std::string value = value_of(argc, argv, i);
      if (value != "hp" && value != "ule") {
        throw std::runtime_error("--mode must be hp or ule");
      }
      config.mode = value == "hp" ? hvc::power::Mode::kHp
                                  : hvc::power::Mode::kUle;
    } else if (std::strcmp(arg, "--cores") == 0) {
      config.num_cores = static_cast<std::size_t>(
          parse_u64_arg("--cores", value_of(argc, argv, i)));
      if (config.num_cores == 0) {
        throw std::runtime_error("--cores must be >= 1");
      }
    } else if (std::strcmp(arg, "--system-seed") == 0) {
      config.seed =
          parse_u64_arg("--system-seed", value_of(argc, argv, i));
    } else if (std::strcmp(arg, "--block-size") == 0) {
      block_records = static_cast<std::size_t>(
          parse_u64_arg("--block-size", value_of(argc, argv, i)));
      if (block_records == 0) {
        throw std::runtime_error("--block-size must be >= 1");
      }
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      throw std::runtime_error(std::string("unknown replay argument: ") +
                               arg);
    }
  }
  if (path.empty()) {
    throw std::runtime_error("replay needs a <file>");
  }
  if (profile && config.num_cores != 1) {
    throw std::runtime_error("--profile is single-core only (the multicore "
                             "interleaver has no per-phase split)");
  }

  hvc::sim::System system(
      config, hvc::sim::cell_plan_for(config.design.scenario));
  hvc::cpu::RunResult result;
  hvc::cpu::ReplayProfile prof;
  if (config.num_cores == 1) {
    hvc::trace::TraceFileSource source(path);
    result = profile
                 ? system.run_trace_profiled(source, block_records, prof)
                 : system.run_trace(source, block_records);
  } else {
    result = system.run_mix({"trace:" + path}, 1, 1, block_records).aggregate;
  }

  std::printf("replayed %s on %zu core(s), %s/%s, %s mode\n", path.c_str(),
              config.num_cores,
              config.design.scenario == hvc::yield::Scenario::kA ? "A" : "B",
              config.design.proposed ? "proposed" : "baseline",
              config.mode == hvc::power::Mode::kHp ? "hp" : "ule");
  std::printf("  instructions  %llu\n",
              static_cast<unsigned long long>(result.instructions));
  std::printf("  cycles        %llu (CPI %s)\n",
              static_cast<unsigned long long>(result.cycles),
              hvc::format_number(result.cpi()).c_str());
  std::printf("  seconds       %s\n",
              hvc::format_number(result.seconds).c_str());
  std::printf("  energy        %s J (EPI %s J)\n",
              hvc::format_number(result.total_energy()).c_str(),
              hvc::format_number(result.epi()).c_str());
  for (const auto& [category, joules] : result.energy.items()) {
    std::printf("    %-18s %s J\n", category.c_str(),
                hvc::format_number(joules).c_str());
  }
  std::printf("  levels\n");
  for (const auto& level : result.levels) {
    std::printf("    %-8s accesses %llu  hit-rate %s\n", level.name.c_str(),
                static_cast<unsigned long long>(level.accesses),
                hvc::format_number(level.hit_rate()).c_str());
  }
  if (profile) {
    const double total = prof.total_s();
    const auto pct = [total](double s) {
      return total > 0.0 ? 100.0 * s / total : 0.0;
    };
    const double rate = total > 0.0
                            ? static_cast<double>(prof.records) / total / 1e6
                            : 0.0;
    std::printf("  profile (%llu records, %llu blocks, %.1f Mrec/s)\n",
                static_cast<unsigned long long>(prof.records),
                static_cast<unsigned long long>(prof.blocks), rate);
    std::printf("    decode   %10.6f s  (%5.1f%%)\n", prof.decode_s,
                pct(prof.decode_s));
    std::printf("    access   %10.6f s  (%5.1f%%)\n", prof.access_s,
                pct(prof.access_s));
    std::printf("    retire   %10.6f s  (%5.1f%%)\n", prof.retire_s,
                pct(prof.retire_s));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      print_usage(stderr);
      return 2;
    }
    const char* command = argv[1];
    if (std::strcmp(command, "record") == 0) {
      return cmd_record(argc, argv);
    }
    if (std::strcmp(command, "info") == 0) {
      return cmd_info(argc, argv);
    }
    if (std::strcmp(command, "fsck") == 0) {
      return cmd_fsck(argc, argv);
    }
    if (std::strcmp(command, "replay") == 0) {
      return cmd_replay(argc, argv);
    }
    if (std::strcmp(command, "--help") == 0 ||
        std::strcmp(command, "-h") == 0 ||
        std::strcmp(command, "help") == 0) {
      print_usage(stdout);
      return 0;
    }
    print_usage(stderr);
    std::fprintf(stderr, "\nunknown command: %s\n", command);
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "hvc_trace: %s\n", error.what());
    return 1;
  }
}
