#!/usr/bin/env python3
"""Minimal client for `hvc_explore serve`.

Sends one sweep spec (a JSON file) to a running daemon over its Unix
socket and reconstructs the CSV table from the streamed row events. The
result on stdout is byte-identical to a batch `hvc_explore --spec FILE`
run of the same spec.

Usage:
    hvc_serve_client.py SOCKET SPEC_FILE [REQUEST_ID]

Wire protocol (line-delimited JSON, see src/explore/.../service.hpp):
    -> {"spec": {...}, "id": ...}
    <- {"event": "begin", "points": N, "csv_header": "...", ...}
    <- {"event": "row", "seq": K, "csv": "..."}   (N of these, in order)
    <- {"event": "end", "points": N, "warm": W, "cold": C}
    <- {"event": "error", "error": "..."}          (instead of rows)
"""

import json
import socket
import sys


def main() -> int:
    if len(sys.argv) not in (3, 4):
        print(
            "usage: hvc_serve_client.py SOCKET SPEC_FILE [REQUEST_ID]",
            file=sys.stderr,
        )
        return 2

    socket_path, spec_path = sys.argv[1], sys.argv[2]
    with open(spec_path, "r", encoding="utf-8") as handle:
        spec = json.load(handle)
    request = {"spec": spec}
    if len(sys.argv) == 4:
        request["id"] = sys.argv[3]

    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as conn:
        conn.connect(socket_path)
        conn.sendall((json.dumps(request) + "\n").encode())

        lines = []
        reader = conn.makefile("r", encoding="utf-8")
        expected = None
        for raw in reader:
            event = json.loads(raw)
            kind = event["event"]
            if kind == "error":
                print(f"daemon error: {event['error']}", file=sys.stderr)
                return 1
            if kind == "begin":
                expected = event["points"]
                lines.append(event["csv_header"])
            elif kind == "row":
                lines.append(event["csv"])
            elif kind == "end":
                if event["points"] != expected:
                    print(
                        f"short stream: {event['points']} of {expected} rows",
                        file=sys.stderr,
                    )
                    return 1
                print(
                    f"warm={event['warm']} cold={event['cold']}",
                    file=sys.stderr,
                )
                sys.stdout.write("\n".join(lines) + "\n")
                return 0
        print("connection closed before the end event", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
