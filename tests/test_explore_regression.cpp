// Pins hvc_explore's Fig. 3/4 rows against the single-threaded evaluation
// path the bench_fig3_hp_epi / bench_fig4_ule_epi harnesses use
// (sim::run_one with the shared methodology plan and fixed seed 42).
#include <gtest/gtest.h>

#include "hvc/common/io.hpp"
#include "hvc/explore/engine.hpp"
#include "hvc/sim/report.hpp"
#include "hvc/sim/system.hpp"
#include "hvc/workloads/workload.hpp"

namespace hvc::explore {
namespace {

/// Exactly what bench_common.hpp's run_point() builds.
[[nodiscard]] cpu::RunResult bench_point(yield::Scenario scenario,
                                         bool proposed, power::Mode mode,
                                         const std::string& workload) {
  sim::SystemConfig config;
  config.design.scenario = scenario;
  config.design.proposed = proposed;
  config.mode = mode;
  return sim::run_one(config, workload);
}

void expect_rows_match_bench(const SweepSpec& spec) {
  const SweepResult result = run_sweep(spec, 2);
  const auto points = expand_points(spec);
  ASSERT_EQ(result.rows.size(), points.size());
  const std::size_t instructions_col = result.column("instructions");
  const std::size_t cycles_col = result.column("cycles");
  const std::size_t cpi_col = result.column("cpi");
  const std::size_t epi_col = result.column("epi_j");
  const std::size_t epi_dyn_col = result.column("epi_l1_dynamic_j");
  const std::size_t epi_leak_col = result.column("epi_l1_leakage_j");
  const std::size_t epi_edc_col = result.column("epi_l1_edc_j");
  for (const auto& point : points) {
    const cpu::RunResult reference = bench_point(
        point.scenario, point.proposed, point.mode, point.workload);
    const sim::EpiBreakdown breakdown = sim::epi_breakdown(reference);
    const auto& row = result.rows[point.index];
    EXPECT_EQ(row[instructions_col], format_number(reference.instructions))
        << point.workload;
    EXPECT_EQ(row[cycles_col], format_number(reference.cycles))
        << point.workload;
    EXPECT_EQ(row[cpi_col], format_number(reference.cpi()))
        << point.workload;
    EXPECT_EQ(row[epi_col], format_number(reference.epi()))
        << point.workload;
    EXPECT_EQ(row[epi_dyn_col], format_number(breakdown.l1_dynamic))
        << point.workload;
    EXPECT_EQ(row[epi_leak_col], format_number(breakdown.l1_leakage))
        << point.workload;
    EXPECT_EQ(row[epi_edc_col], format_number(breakdown.l1_edc))
        << point.workload;
  }
}

TEST(ExploreRegression, Fig3RowsMatchBenchPath) {
  // Scenario A slice of examples/fig3.json (system_seed 42 = the bench
  // default), HP mode over BigBench.
  const SweepSpec spec = SweepSpec::parse(R"({
    "name": "fig3_pin",
    "kind": "simulation",
    "seed": 42,
    "system_seed": 42,
    "workload_seed": 1,
    "axes": {
      "scenario": ["A"],
      "design": ["baseline", "proposed"],
      "mode": ["hp"],
      "workload": ["@big"]
    }
  })");
  expect_rows_match_bench(spec);
}

TEST(ExploreRegression, Fig4RowsMatchBenchPath) {
  // ULE mode over SmallBench, both scenarios — the Fig. 4 table.
  const SweepSpec spec = SweepSpec::parse(R"({
    "name": "fig4_pin",
    "kind": "simulation",
    "seed": 42,
    "system_seed": 42,
    "workload_seed": 1,
    "axes": {
      "scenario": ["A", "B"],
      "design": ["baseline", "proposed"],
      "mode": ["ule"],
      "workload": ["@small"]
    }
  })");
  expect_rows_match_bench(spec);
}

TEST(ExploreRegression, Fig4EpiSavingInPaperBallpark) {
  // The paper reports ~42% (A) average ULE EPI saving; the reproduction
  // should stay in that neighbourhood whatever the exact cell sizing.
  const SweepSpec spec = SweepSpec::parse(R"({
    "kind": "simulation",
    "system_seed": 42,
    "axes": {
      "scenario": ["A"],
      "design": ["baseline", "proposed"],
      "mode": ["ule"],
      "workload": ["@small"]
    }
  })");
  const SweepResult result = run_sweep(spec, 2);
  const std::size_t epi_col = result.column("epi_j");
  const std::size_t design_col = result.column("design");
  double base = 0.0;
  double prop = 0.0;
  for (const auto& row : result.rows) {
    (row[design_col] == "baseline" ? base : prop) +=
        std::stod(row[epi_col]);
  }
  const double saving = 1.0 - prop / base;
  EXPECT_GT(saving, 0.25);
  EXPECT_LT(saving, 0.60);
}

}  // namespace
}  // namespace hvc::explore
