// EDC circuit cost model tests (the paper's HSPICE-derived encoder/decoder
// energy substitution).
#include <gtest/gtest.h>

#include "hvc/common/error.hpp"

#include "hvc/edc/bch.hpp"
#include "hvc/edc/code.hpp"
#include "hvc/edc/cost.hpp"
#include "hvc/edc/hsiao.hpp"

namespace hvc::edc {
namespace {

TEST(EdcCost, NullCodeIsFree) {
  const NullCode codec(32);
  EXPECT_EQ(encoder_shape(codec).xor2_gates, 0u);
  EXPECT_EQ(decoder_shape(codec).xor2_gates, 0u);
  EXPECT_EQ(decoder_shape(codec).depth, 0u);
}

TEST(EdcCost, SecdedEncoderShape) {
  const HsiaoSecded codec(32, 7);
  const CircuitShape enc = encoder_shape(codec);
  // 7 XOR trees over weight-3+ columns: dozens of gates, shallow depth.
  EXPECT_GT(enc.xor2_gates, 50u);
  EXPECT_LT(enc.xor2_gates, 300u);
  EXPECT_GE(enc.depth, 3u);
  EXPECT_LE(enc.depth, 6u);
}

TEST(EdcCost, DecoderBiggerThanEncoder) {
  const HsiaoSecded secded(32, 7);
  EXPECT_GT(decoder_shape(secded).xor2_gates +
                decoder_shape(secded).other_gates,
            encoder_shape(secded).xor2_gates);
  const BchDected dected(32);
  EXPECT_GT(decoder_shape(dected).xor2_gates + decoder_shape(dected).other_gates,
            encoder_shape(dected).xor2_gates);
}

TEST(EdcCost, DectedCostsMoreThanSecded) {
  // The paper's premise: DECTED is a strictly heavier code (13 vs 7 check
  // bits), so its circuits must cost more in gates and depth.
  const HsiaoSecded secded(32, 7);
  const BchDected dected(32);
  const CircuitShape enc_s = encoder_shape(secded);
  const CircuitShape enc_d = encoder_shape(dected);
  EXPECT_GT(enc_d.xor2_gates, enc_s.xor2_gates);
  const CircuitShape dec_s = decoder_shape(secded);
  const CircuitShape dec_d = decoder_shape(dected);
  EXPECT_GT(dec_d.xor2_gates + dec_d.other_gates,
            dec_s.xor2_gates + dec_s.other_gates);
  EXPECT_GE(dec_d.depth, dec_s.depth);
}

TEST(EdcCost, CircuitCostScalesWithGates) {
  const GateFigures gate{1e-15, 1e-9, 50e-12};
  const CircuitShape small{100, 0, 4};
  const CircuitShape large{200, 0, 4};
  const CircuitCost cs = circuit_cost(small, gate);
  const CircuitCost cl = circuit_cost(large, gate);
  EXPECT_DOUBLE_EQ(cl.energy_j, 2.0 * cs.energy_j);
  EXPECT_DOUBLE_EQ(cl.leakage_w, 2.0 * cs.leakage_w);
  EXPECT_DOUBLE_EQ(cl.delay_s, cs.delay_s);
}

TEST(EdcCost, ActivityScaling) {
  const GateFigures gate{1e-15, 1e-9, 50e-12};
  const CircuitShape shape{100, 50, 6};
  const CircuitCost half = circuit_cost(shape, gate, 0.5);
  const CircuitCost full = circuit_cost(shape, gate, 1.0);
  EXPECT_DOUBLE_EQ(full.energy_j, 2.0 * half.energy_j);
  EXPECT_DOUBLE_EQ(full.leakage_w, half.leakage_w);  // leakage is static
  EXPECT_THROW((void)circuit_cost(shape, gate, 1.5), PreconditionError);
}

TEST(EdcCost, DelayFollowsDepth) {
  const GateFigures gate{1e-15, 1e-9, 50e-12};
  const CircuitShape shallow{100, 0, 3};
  const CircuitShape deep{100, 0, 9};
  EXPECT_DOUBLE_EQ(circuit_cost(deep, gate).delay_s,
                   3.0 * circuit_cost(shallow, gate).delay_s);
}

}  // namespace
}  // namespace hvc::edc
