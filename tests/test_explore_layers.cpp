// The layered sweep engine's seams: GridPointSource must enumerate the
// exact expand_points() order at any batch size (point index == RNG
// stream identity, so this is a determinism pin, not a style check),
// ListPointSource preserves given indices, the sinks format/tally rows
// faithfully, and an Executor fed a subset of a grid reproduces the
// matching rows of a full run_sweep byte-for-byte.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hvc/common/error.hpp"
#include "hvc/explore/engine.hpp"
#include "hvc/explore/executor.hpp"
#include "hvc/explore/point_source.hpp"
#include "hvc/explore/sink.hpp"

namespace hvc::explore {
namespace {

// Every normalization rule at once: an l2 axis whose "none" entry
// collapses the size axis, multiple cores, both modes, and a scrub axis.
constexpr const char* kGridSpec = R"({
  "name": "layers",
  "kind": "simulation",
  "seed": 7,
  "axes": {
    "scenario": ["A", "B"],
    "design": ["baseline", "proposed"],
    "l2": ["none", "baseline"],
    "l2_size_kb": [64, 128],
    "mode": ["hp", "ule"],
    "workload": ["adpcm_c", "gsm_c"],
    "scrub_interval_s": [0, 0.5]
  }
})";

constexpr const char* kMixSpec = R"({
  "name": "mixes",
  "kind": "simulation",
  "axes": {
    "scenario": ["A"],
    "design": ["proposed"],
    "cores": [1, 2],
    "mode": ["hp"],
    "workload_mix": ["adpcm_c+gsm_c", "epic_d"]
  }
})";

constexpr const char* kMethodologySpec = R"({
  "name": "methodology",
  "kind": "methodology",
  "axes": {
    "scenario": ["A", "B"],
    "ule_vcc": {"from": 0.3, "to": 0.4, "step": 0.05}
  }
})";

[[nodiscard]] std::vector<SweepPoint> drain(PointSource& source,
                                            std::size_t batch) {
  std::vector<SweepPoint> points;
  while (source.next_batch(batch, points) > 0) {
  }
  return points;
}

void expect_same_points(const std::vector<SweepPoint>& actual,
                        const std::vector<SweepPoint>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const SweepPoint& a = actual[i];
    const SweepPoint& e = expected[i];
    EXPECT_EQ(a.index, e.index) << "point " << i;
    EXPECT_EQ(a.scenario, e.scenario) << "point " << i;
    EXPECT_EQ(a.proposed, e.proposed) << "point " << i;
    EXPECT_EQ(a.l2_design, e.l2_design) << "point " << i;
    EXPECT_EQ(a.l2_size_kb, e.l2_size_kb) << "point " << i;
    EXPECT_EQ(a.cores, e.cores) << "point " << i;
    EXPECT_EQ(a.mode, e.mode) << "point " << i;
    EXPECT_EQ(a.hp_vcc, e.hp_vcc) << "point " << i;
    EXPECT_EQ(a.ule_vcc, e.ule_vcc) << "point " << i;
    EXPECT_EQ(a.workload, e.workload) << "point " << i;
    EXPECT_EQ(a.workload_mix, e.workload_mix) << "point " << i;
    EXPECT_EQ(a.scrub_interval_s, e.scrub_interval_s) << "point " << i;
  }
}

TEST(GridPointSourceTest, MatchesExpandPointsAtEveryBatchSize) {
  for (const char* text : {kGridSpec, kMixSpec, kMethodologySpec}) {
    const SweepSpec spec = SweepSpec::parse(text);
    const std::vector<SweepPoint> expected = expand_points(spec);
    for (const std::size_t batch : {std::size_t{1}, std::size_t{3},
                                    std::size_t{7}, std::size_t{1000}}) {
      GridPointSource source(spec);
      EXPECT_EQ(source.estimated_remaining(), expected.size());
      EXPECT_FALSE(source.done());
      expect_same_points(drain(source, batch), expected);
      EXPECT_TRUE(source.done());
      EXPECT_EQ(source.estimated_remaining(), 0u);
      // An exhausted source stays exhausted.
      std::vector<SweepPoint> extra;
      EXPECT_EQ(source.next_batch(batch, extra), 0u);
    }
  }
}

TEST(GridPointSourceTest, L2NoneCollapsesTheSizeAxis) {
  const SweepSpec spec = SweepSpec::parse(kGridSpec);
  // l2="none" contributes 1 (not 2) size variants, so the lazy count and
  // the eager expansion must both see the collapse.
  GridPointSource source(spec);
  EXPECT_EQ(source.estimated_remaining(), spec.point_count());
  EXPECT_EQ(source.estimated_remaining(), expand_points(spec).size());
}

TEST(GridPointSourceTest, CountMatchesAcrossPartialDrain) {
  const SweepSpec spec = SweepSpec::parse(kGridSpec);
  GridPointSource source(spec);
  const std::size_t total = source.estimated_remaining();
  std::vector<SweepPoint> points;
  ASSERT_EQ(source.next_batch(5, points), 5u);
  EXPECT_EQ(source.estimated_remaining(), total - 5);
  // next_batch appends without clearing.
  ASSERT_EQ(source.next_batch(5, points), 5u);
  EXPECT_EQ(points.size(), 10u);
  EXPECT_EQ(points[7].index, 7u);
}

TEST(ListPointSourceTest, PreservesGivenIndicesAndOrder) {
  const SweepSpec spec = SweepSpec::parse(kGridSpec);
  const std::vector<SweepPoint> all = expand_points(spec);
  // A non-contiguous subset, deliberately out of grid order.
  std::vector<SweepPoint> subset{all[9], all[2], all[31]};
  ListPointSource source(subset);
  EXPECT_EQ(source.estimated_remaining(), 3u);
  const std::vector<SweepPoint> drained = drain(source, 2);
  expect_same_points(drained, subset);
  EXPECT_EQ(drained[0].index, 9u);
  EXPECT_EQ(drained[1].index, 2u);
  EXPECT_EQ(drained[2].index, 31u);
}

TEST(SinkTest, CsvSinkMatchesSweepResultToCsv) {
  const SweepSpec spec = SweepSpec::parse(kMethodologySpec);
  const SweepResult reference = run_sweep(spec, 1);

  std::string csv;
  CsvSink sink(&csv);
  sink.begin(spec, reference.columns);
  for (std::size_t i = 0; i < reference.rows.size(); ++i) {
    sink.row(i, SweepPoint{}, reference.rows[i], false);
  }
  sink.end();
  EXPECT_EQ(csv, reference.to_csv());
}

TEST(SinkTest, JsonSinkMatchesSweepResultToJson) {
  const SweepSpec spec = SweepSpec::parse(kMethodologySpec);
  const SweepResult reference = run_sweep(spec, 1);

  Json json;
  JsonSink sink(&json);
  sink.begin(spec, reference.columns);
  for (std::size_t i = 0; i < reference.rows.size(); ++i) {
    sink.row(i, SweepPoint{}, reference.rows[i], false);
  }
  sink.end();
  EXPECT_EQ(json.dump(2), reference.to_json().dump(2));
}

TEST(SinkTest, TeeFansOutInOrderAndIgnoresNull) {
  const SweepSpec spec = SweepSpec::parse(kMethodologySpec);
  const SweepResult reference = run_sweep(spec, 1);

  std::string csv;
  CsvSink csv_sink(&csv);
  SweepResult collected;
  CollectSink collect(&collected);
  TeeSink tee;
  tee.add(&csv_sink);
  tee.add(nullptr);  // optional sinks compose without branching
  tee.add(&collect);

  tee.begin(spec, reference.columns);
  for (std::size_t i = 0; i < reference.rows.size(); ++i) {
    tee.row(i, SweepPoint{}, reference.rows[i], i % 2 == 0);
  }
  tee.end();

  EXPECT_EQ(csv, reference.to_csv());
  EXPECT_EQ(collected.rows, reference.rows);
  EXPECT_EQ(collected.warm_points + collected.cold_points,
            reference.rows.size());
}

TEST(ExecutorTest, SubsetViaListSourceReproducesFullSweepRows) {
  // The executor must derive each point's randomness from its index, not
  // its arrival order: replaying points {5, 0, 11} through a list source
  // must reproduce exactly rows 5, 0, 11 of the full sweep.
  const SweepSpec spec = SweepSpec::parse(R"({
    "name": "subset",
    "kind": "simulation",
    "seed": 13,
    "axes": {
      "scenario": ["A"],
      "design": ["baseline", "proposed"],
      "mode": ["hp", "ule"],
      "workload": ["adpcm_c", "gsm_c", "epic_d"]
    }
  })");
  const SweepResult full = run_sweep(spec, 4);
  const std::vector<SweepPoint> all = expand_points(spec);
  ASSERT_EQ(all.size(), 12u);

  ListPointSource source({all[5], all[0], all[11]});
  Executor executor(2);
  SweepResult subset;
  CollectSink collect(&subset);
  const ExecStats stats = executor.run(spec, source, collect);
  EXPECT_EQ(stats.points, 3u);
  ASSERT_EQ(subset.rows.size(), 3u);
  EXPECT_EQ(subset.rows[0], full.rows[5]);
  EXPECT_EQ(subset.rows[1], full.rows[0]);
  EXPECT_EQ(subset.rows[2], full.rows[11]);
}

TEST(ExecutorTest, CancelledExecutorRefusesNewRuns) {
  const SweepSpec spec = SweepSpec::parse(kMethodologySpec);
  Executor executor(1);
  executor.cancel();
  GridPointSource source(spec);
  SweepResult result;
  CollectSink collect(&result);
  EXPECT_THROW(executor.run(spec, source, collect), SweepCancelled);
}

TEST(ExecutorTest, SweepColumnsMatchRunSweep) {
  const SweepSpec sim = SweepSpec::parse(kMixSpec);
  EXPECT_EQ(sweep_columns(SweepKind::kSimulation),
            run_sweep(sim, 1).columns);
  const SweepSpec meth = SweepSpec::parse(kMethodologySpec);
  EXPECT_EQ(sweep_columns(SweepKind::kMethodology),
            run_sweep(meth, 1).columns);
}

}  // namespace
}  // namespace hvc::explore
