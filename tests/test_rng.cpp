// Unit tests for the deterministic RNG (hvc::Rng).
#include <gtest/gtest.h>

#include <set>

#include "hvc/common/rng.hpp"

namespace hvc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng a(7);
  Rng a2(7);
  Rng child1 = a.fork(1);
  Rng child1_again = a2.fork(1);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child1.next(), child1_again.next());
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(12);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(15);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    hits += rng.bernoulli(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.01);
}

TEST(Rng, GeometricEdgeCases) {
  Rng rng(41);
  EXPECT_EQ(rng.geometric(1.0), 0u);
  EXPECT_EQ(rng.geometric(1.5), 0u);
  EXPECT_EQ(rng.geometric(0.0), ~std::uint64_t{0});
  EXPECT_EQ(rng.geometric(-0.1), ~std::uint64_t{0});
}

TEST(Rng, GeometricMoments) {
  // Gap distribution on {0,1,2,...}: mean (1-p)/p, var (1-p)/p^2.
  Rng rng(42);
  for (const double p : {0.5, 0.1, 0.01}) {
    const int n = 200000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
      const auto value = static_cast<double>(rng.geometric(p));
      sum += value;
      sum_sq += value * value;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    const double expected_mean = (1.0 - p) / p;
    const double expected_var = (1.0 - p) / (p * p);
    EXPECT_NEAR(mean, expected_mean, 0.05 * expected_mean) << "p=" << p;
    EXPECT_NEAR(var, expected_var, 0.1 * expected_var) << "p=" << p;
  }
}

TEST(Rng, GeometricMatchesBernoulliFrequency) {
  // P(gap == 0) must equal p: the skip-sampler and a per-bit Bernoulli
  // scan describe the same fault process.
  Rng rng(43);
  const double p = 0.2;
  const int n = 100000;
  int zero_gaps = 0;
  for (int i = 0; i < n; ++i) {
    zero_gaps += rng.geometric(p) == 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(zero_gaps) / n, p, 0.01);
}

TEST(Rng, BinomialEdgeCases) {
  Rng rng(44);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(rng.binomial(17, 0.3), 17u);
  }
}

TEST(Rng, BinomialMoments) {
  // Mean n*p, variance n*p*(1-p); includes p > 1/2 (mirrored sampling).
  Rng rng(45);
  struct Case {
    std::uint64_t n;
    double p;
  };
  for (const Case c : {Case{39, 2e-1}, Case{1000, 0.01}, Case{64, 0.9}}) {
    const int trials = 100000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < trials; ++i) {
      const auto value = static_cast<double>(rng.binomial(c.n, c.p));
      sum += value;
      sum_sq += value * value;
    }
    const double mean = sum / trials;
    const double var = sum_sq / trials - mean * mean;
    const double expected_mean = static_cast<double>(c.n) * c.p;
    const double expected_var = expected_mean * (1.0 - c.p);
    EXPECT_NEAR(mean, expected_mean, 0.03 * expected_mean + 0.01)
        << "n=" << c.n << " p=" << c.p;
    EXPECT_NEAR(var, expected_var, 0.05 * expected_var + 0.01)
        << "n=" << c.n << " p=" << c.p;
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(16);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.normal(3.0, 2.0);
  }
  EXPECT_NEAR(sum / kN, 3.0, 0.05);
}

TEST(Rng, PoissonMean) {
  Rng rng(18);
  for (const double mean : {0.5, 4.0, 100.0}) {
    double sum = 0.0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(sum / kN, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(19);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(20);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.exponential(2.0);
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, StreamIsCounterBased) {
  // stream(seed, i) is a pure function of its inputs: recomputing it later
  // (or on another thread) yields the same generator, and no draws from
  // any other stream can perturb it.
  Rng a = Rng::stream(42, 7);
  Rng noise = Rng::stream(42, 3);
  for (int i = 0; i < 100; ++i) {
    (void)noise.next();
  }
  Rng b = Rng::stream(42, 7);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, StreamsAreDistinct) {
  // Neighbouring stream ids (the common sweep indexing) must not collide.
  std::set<std::uint64_t> first_draws;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    first_draws.insert(Rng::stream(1234, i).next());
  }
  EXPECT_EQ(first_draws.size(), 1000u);
}

TEST(Rng, StreamDiffersAcrossSeeds) {
  Rng a = Rng::stream(1, 0);
  Rng b = Rng::stream(2, 0);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, Mix64Deterministic) {
  EXPECT_EQ(Rng::mix64(42, 7), Rng::mix64(42, 7));
  EXPECT_NE(Rng::mix64(42, 7), Rng::mix64(42, 8));
  EXPECT_NE(Rng::mix64(42, 7), Rng::mix64(43, 7));
}

TEST(Rng, GeometricConsumesExactlyOneDraw) {
  // Documented contract (rng.hpp): one raw draw per geometric() call, so
  // a stream interleaving geometric gaps stays aligned with a reference
  // that discards the same number of raw draws.
  Rng sampler(777);
  Rng reference(777);
  for (const double p : {0.5, 0.01, 1e-6}) {
    for (int i = 0; i < 50; ++i) {
      (void)sampler.geometric(p);
      (void)reference.next();
    }
    EXPECT_EQ(sampler.next(), reference.next()) << "p=" << p;
  }
}

TEST(Rng, BinomialDrawCountMatchesContract) {
  // Documented contract (rng.hpp): for p <= 0.5, binomial(n, p) consumes
  // one geometric draw per success plus one terminating draw, unless the
  // final success lands exactly on bit n-1.
  Rng sampler(888);
  for (int i = 0; i < 200; ++i) {
    Rng probe = sampler;  // same state, replayed manually
    const std::uint64_t n = 1000;
    const double p = 0.02;
    const std::uint64_t successes = sampler.binomial(n, p);
    std::uint64_t draws = 0;
    std::uint64_t count = 0;
    std::uint64_t position = 0;
    for (;;) {
      const std::uint64_t skip = probe.geometric(p);
      ++draws;
      if (skip >= n - position) {
        break;
      }
      position += skip + 1;
      ++count;
      if (position >= n) {
        break;
      }
    }
    EXPECT_EQ(count, successes);
    EXPECT_TRUE(draws == successes || draws == successes + 1);
    // Both generators consumed identical draws: they stay in lockstep.
    EXPECT_EQ(sampler.next(), probe.next());
    EXPECT_EQ(sampler.next(), probe.next());
  }
}

TEST(Rng, SplitMix64KnownGood) {
  // First outputs of splitmix64 from seed 0 (reference values).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
}

}  // namespace
}  // namespace hvc
