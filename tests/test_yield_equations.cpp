// Paper Equations (1) and (2): analytic word/cache yield, cross-checked
// against direct Monte-Carlo fault sampling.
#include <gtest/gtest.h>

#include "hvc/common/error.hpp"

#include <cmath>

#include "hvc/common/rng.hpp"
#include "hvc/yield/cache_yield.hpp"

namespace hvc::yield {
namespace {

TEST(Eq1, NoFaultsIsCertain) {
  const WordClass word{"data", 1, 32, 7, 1};
  EXPECT_DOUBLE_EQ(word_ok_probability(0.0, word), 1.0);
}

TEST(Eq1, NoCorrectionMatchesBinomialZero) {
  const WordClass word{"data", 1, 32, 0, 0};
  const double pf = 1e-3;
  EXPECT_NEAR(word_ok_probability(pf, word), std::pow(1.0 - pf, 32), 1e-12);
}

TEST(Eq1, OneCorrectionAddsLinearTerm) {
  const WordClass word{"data", 1, 32, 7, 1};
  const double pf = 1e-3;
  const double expect = std::pow(1.0 - pf, 39) +
                        39.0 * pf * std::pow(1.0 - pf, 38);
  EXPECT_NEAR(word_ok_probability(pf, word), expect, 1e-12);
}

TEST(Eq1, MoreCorrectionHigherYield) {
  const double pf = 1e-3;
  const WordClass none{"w", 1, 32, 0, 0};
  const WordClass secded{"w", 1, 32, 7, 1};
  const WordClass dected{"w", 1, 32, 13, 2};
  EXPECT_LT(word_ok_probability(pf, none), word_ok_probability(pf, secded));
  EXPECT_LT(word_ok_probability(pf, secded), word_ok_probability(pf, dected));
}

TEST(Eq1, CheckBitsAlsoFail) {
  // More stored bits -> lower yield at equal correction budget.
  const double pf = 1e-3;
  const WordClass narrow{"w", 1, 32, 7, 1};
  const WordClass wide{"w", 1, 32, 13, 1};
  EXPECT_GT(word_ok_probability(pf, narrow), word_ok_probability(pf, wide));
}

TEST(Eq2, ProductOverWords) {
  const double pf = 1e-4;
  const std::vector<WordClass> words{{"data", 256, 32, 7, 1},
                                     {"tag", 32, 26, 7, 1}};
  const double expect =
      std::pow(word_ok_probability(pf, words[0]), 256) *
      std::pow(word_ok_probability(pf, words[1]), 32);
  EXPECT_NEAR(cache_yield(pf, words), expect, 1e-12);
}

TEST(Eq2, PaperPfExample) {
  // Paper III-C: "to have a 99% yield for an 8KB cache, faulty bit rate Pf
  // must be 1.22e-6". That Pf corresponds to exactly 8192 unprotected
  // bits (the 1KB ULE way's data); verify the inverse calculation.
  const double pf = max_pf_for_raw_yield(0.99, 8 * 1024);
  EXPECT_NEAR(pf, 1.22e-6, 0.02e-6);
}

TEST(Eq2, MaxPfInvertsYield) {
  const std::vector<WordClass> words{{"data", 256, 32, 7, 1},
                                     {"tag", 32, 26, 7, 1}};
  const double pf = max_pf_for_yield(0.99, words);
  EXPECT_NEAR(cache_yield(pf, words), 0.99, 1e-6);
}

TEST(Eq2, MonteCarloAgreement) {
  // Direct simulation of Eq. (1)-(2): sample bit faults, count words with
  // more than one fault.
  const double pf = 2e-4;
  const std::vector<WordClass> words{{"data", 256, 32, 7, 1},
                                     {"tag", 32, 26, 7, 1}};
  const double analytic = cache_yield(pf, words);

  Rng rng(11);
  int ok_chips = 0;
  constexpr int kChips = 4000;
  for (int chip = 0; chip < kChips; ++chip) {
    bool chip_ok = true;
    for (const auto& word : words) {
      for (std::size_t w = 0; chip_ok && w < word.count; ++w) {
        std::size_t faults = 0;
        for (std::size_t b = 0; b < word.data_bits + word.check_bits; ++b) {
          faults += rng.bernoulli(pf) ? 1 : 0;
        }
        chip_ok = faults <= word.hard_correctable;
      }
      if (!chip_ok) {
        break;
      }
    }
    ok_chips += chip_ok ? 1 : 0;
  }
  const double mc_yield = static_cast<double>(ok_chips) / kChips;
  EXPECT_NEAR(mc_yield, analytic, 0.02);
}

TEST(Eq2, SkipSamplingMonteCarloAgreement) {
  // The O(faults) skip-sampler must land on the same yield curve as the
  // analytic Equations (1)-(2), including the unprotected (t=0) case.
  Rng rng(12);
  const std::vector<WordClass> coded{{"data", 256, 32, 7, 1},
                                     {"tag", 32, 26, 7, 1}};
  const std::vector<WordClass> raw{{"data", 256, 32, 0, 0},
                                   {"tag", 32, 26, 0, 0}};
  for (const double pf : {5e-5, 2e-4, 1e-3}) {
    const auto mc = mc_cache_yield(pf, coded, 20000, rng);
    EXPECT_NEAR(mc.yield(), cache_yield(pf, coded), 0.01) << "pf=" << pf;
  }
  for (const double pf : {1e-6, 1e-5, 5e-5}) {
    const auto mc = mc_cache_yield(pf, raw, 20000, rng);
    EXPECT_NEAR(mc.yield(), cache_yield(pf, raw), 0.01) << "pf=" << pf;
  }
}

TEST(Eq2, SkipSamplingWorkIsProportionalToFaults) {
  // O(expected faults), not O(bits): sampled fault count per chip must be
  // about total_bits * pf, a tiny fraction of the total bits.
  Rng rng(13);
  const std::vector<WordClass> words{{"data", 256, 32, 7, 1},
                                     {"tag", 32, 26, 7, 1}};
  const double pf = 2e-4;
  const std::size_t chips = 5000;
  const auto mc = mc_cache_yield(pf, words, chips, rng);
  const double total_bits = 256.0 * 39 + 32.0 * 33;
  const double expected = static_cast<double>(chips) * total_bits * pf;
  // Early-exit on failed chips only removes samples, so allow slack below.
  EXPECT_LT(static_cast<double>(mc.faults_sampled), 1.15 * expected);
  EXPECT_GT(static_cast<double>(mc.faults_sampled), 0.7 * expected);
}

TEST(Eq2, SkipSamplingDegenerateInputs) {
  Rng rng(14);
  const std::vector<WordClass> words{{"data", 8, 32, 7, 1}};
  EXPECT_DOUBLE_EQ(mc_cache_yield(0.0, words, 100, rng).yield(), 1.0);
  EXPECT_DOUBLE_EQ(mc_cache_yield(1.0, words, 100, rng).yield(), 0.0);
  EXPECT_EQ(mc_cache_yield(2e-4, words, 0, rng).yield(), 0.0);
}

TEST(Eq2, UleWayWordLayout) {
  const auto words = ule_way_words(32, 32, 7, 7, 1);
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0].count, 256u);  // 32 lines x 8 words
  EXPECT_EQ(words[0].data_bits, 32u);
  EXPECT_EQ(words[0].check_bits, 7u);
  EXPECT_EQ(words[1].count, 32u);
  EXPECT_EQ(words[1].data_bits, 26u);
}

TEST(Eq2, InvalidInputsThrow) {
  const WordClass word{"w", 1, 32, 0, 0};
  EXPECT_THROW((void)word_ok_probability(-0.1, word), PreconditionError);
  EXPECT_THROW((void)word_ok_probability(1.1, word), PreconditionError);
  const std::vector<WordClass> words{word};
  EXPECT_THROW((void)max_pf_for_yield(0.0, words), PreconditionError);
  EXPECT_THROW((void)max_pf_for_yield(1.0, words), PreconditionError);
}

TEST(Eq2, SeededMonteCarloShardsMergeExactly) {
  // The documented contract of mc_cache_yield_seeded: splitting the chip
  // range across shards (each passing the same seed and its own
  // first_chip offset) reproduces the single-shard result exactly,
  // because chip i draws only from Rng::stream(seed, i).
  const auto words = ule_way_words(32, 32, 7, 7, 1);
  const double pf = 2e-4;
  const std::size_t chips = 1000;
  const std::uint64_t seed = 99;
  const McYieldResult full =
      mc_cache_yield_seeded(pf, words, chips, seed, 0);

  McYieldResult merged;
  for (std::size_t first = 0; first < chips; first += 250) {
    const McYieldResult shard =
        mc_cache_yield_seeded(pf, words, 250, seed, first);
    merged.chips += shard.chips;
    merged.chips_ok += shard.chips_ok;
    merged.faults_sampled += shard.faults_sampled;
  }
  EXPECT_EQ(merged.chips, full.chips);
  EXPECT_EQ(merged.chips_ok, full.chips_ok);
  EXPECT_EQ(merged.faults_sampled, full.faults_sampled);

  // And it agrees with the analytic Eq. 1-2 yield like the shared-stream
  // sampler does.
  EXPECT_NEAR(full.yield(), cache_yield(pf, words), 0.05);
}

TEST(Eq2, SeededMonteCarloIsSeedSensitive) {
  const auto words = ule_way_words(32, 32, 7, 7, 1);
  const McYieldResult a = mc_cache_yield_seeded(1e-3, words, 2000, 1, 0);
  const McYieldResult b = mc_cache_yield_seeded(1e-3, words, 2000, 2, 0);
  EXPECT_NE(a.faults_sampled, b.faults_sampled);
}

}  // namespace
}  // namespace hvc::yield
