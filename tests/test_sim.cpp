// Integration tests: full systems built from the design methodology,
// running real workloads — the paper's headline result shapes.
#include <gtest/gtest.h>

#include "hvc/sim/report.hpp"
#include "hvc/sim/system.hpp"

namespace hvc::sim {
namespace {

[[nodiscard]] SystemConfig make_config(yield::Scenario scenario, bool proposed,
                                       power::Mode mode) {
  SystemConfig config;
  config.design.scenario = scenario;
  config.design.proposed = proposed;
  config.mode = mode;
  return config;
}

TEST(BuildCachePlan, SevenPlusOneScenarioA) {
  const auto& cells = cell_plan_for(yield::Scenario::kA);
  const CachePlan plan = build_cache_plan({yield::Scenario::kA, true}, cells,
                                          8, 1, true);
  ASSERT_EQ(plan.ways.size(), 8u);
  for (std::size_t w = 0; w < 7; ++w) {
    EXPECT_EQ(plan.ways[w].cell.kind, tech::CellKind::k6T);
    EXPECT_FALSE(plan.ways[w].ule_way);
    EXPECT_EQ(plan.way_hard_pf[w], 0.0);
  }
  EXPECT_EQ(plan.ways[7].cell.kind, tech::CellKind::k8T);
  EXPECT_TRUE(plan.ways[7].ule_way);
  EXPECT_EQ(plan.ways[7].ule_protection, edc::Protection::kSecded);
  EXPECT_EQ(plan.ways[7].hp_protection, edc::Protection::kNone);
  EXPECT_GT(plan.way_hard_pf[7], 0.0);
}

TEST(BuildCachePlan, ScenarioBProtections) {
  const auto& cells = cell_plan_for(yield::Scenario::kB);
  const CachePlan plan = build_cache_plan({yield::Scenario::kB, true}, cells,
                                          8, 1, true);
  for (std::size_t w = 0; w < 7; ++w) {
    EXPECT_EQ(plan.ways[w].hp_protection, edc::Protection::kSecded);
  }
  EXPECT_EQ(plan.ways[7].hp_protection, edc::Protection::kSecded);
  EXPECT_EQ(plan.ways[7].ule_protection, edc::Protection::kDected);
}

TEST(BuildCachePlan, BaselineUsesTenT) {
  const auto& cells = cell_plan_for(yield::Scenario::kA);
  const CachePlan plan = build_cache_plan({yield::Scenario::kA, false}, cells,
                                          8, 1, true);
  EXPECT_EQ(plan.ways[7].cell.kind, tech::CellKind::k10T);
  EXPECT_EQ(plan.ways[7].ule_protection, edc::Protection::kNone);
}

TEST(SystemTest, RunsSmallWorkloadAtUle) {
  SystemConfig config = make_config(yield::Scenario::kA, true,
                                    power::Mode::kUle);
  System system(config, cell_plan_for(yield::Scenario::kA));
  const cpu::RunResult result = system.run_workload("adpcm_c", 1, 1);
  EXPECT_GT(result.instructions, 10000u);
  EXPECT_GT(result.epi(), 0.0);
  // SmallBench at ULE must be cache-resident: high hit rates (streaming
  // input misses keep DL1 slightly below IL1).
  EXPECT_GT(result.dl1.hit_rate(), 0.85);
  EXPECT_GT(result.il1.hit_rate(), 0.95);
}

TEST(SystemTest, BigBenchNeedsFullCache) {
  SystemConfig hp = make_config(yield::Scenario::kA, true, power::Mode::kHp);
  System sys_hp(hp, cell_plan_for(yield::Scenario::kA));
  const cpu::RunResult at_hp = sys_hp.run_workload("g721_c", 1, 1);

  SystemConfig ule = make_config(yield::Scenario::kA, true, power::Mode::kUle);
  System sys_ule(ule, cell_plan_for(yield::Scenario::kA));
  const cpu::RunResult at_ule = sys_ule.run_workload("g721_c", 1, 1);

  // With only the 1KB ULE way, the big workload misses much more.
  EXPECT_GT(at_ule.dl1.misses, at_hp.dl1.misses);
}

TEST(SystemTest, HeadlineShapeHpScenarioA) {
  // Fig. 3 shape: proposed saves EPI at HP mode with zero slowdown.
  const auto base = run_one(
      make_config(yield::Scenario::kA, false, power::Mode::kHp), "gsm_c");
  const auto prop = run_one(
      make_config(yield::Scenario::kA, true, power::Mode::kHp), "gsm_c");
  EXPECT_LT(prop.epi(), base.epi());
  EXPECT_EQ(prop.cycles, base.cycles);  // no latency change at HP
}

TEST(SystemTest, HeadlineShapeUleScenarioA) {
  // Fig. 4 shape: large EPI savings at ULE, small slowdown (~3%).
  const auto base = run_one(
      make_config(yield::Scenario::kA, false, power::Mode::kUle), "adpcm_c");
  const auto prop = run_one(
      make_config(yield::Scenario::kA, true, power::Mode::kUle), "adpcm_c");
  EXPECT_LT(prop.epi(), base.epi() * 0.85);  // substantial savings
  const double slowdown = static_cast<double>(prop.cycles) /
                          static_cast<double>(base.cycles);
  EXPECT_GT(slowdown, 1.0);
  EXPECT_LT(slowdown, 1.08);
}

TEST(SystemTest, UleSavingsLargerThanHpSavings) {
  const auto base_hp = run_one(
      make_config(yield::Scenario::kA, false, power::Mode::kHp), "gsm_d");
  const auto prop_hp = run_one(
      make_config(yield::Scenario::kA, true, power::Mode::kHp), "gsm_d");
  const auto base_ule = run_one(
      make_config(yield::Scenario::kA, false, power::Mode::kUle), "adpcm_d");
  const auto prop_ule = run_one(
      make_config(yield::Scenario::kA, true, power::Mode::kUle), "adpcm_d");
  const double hp_saving = 1.0 - prop_hp.epi() / base_hp.epi();
  const double ule_saving = 1.0 - prop_ule.epi() / base_ule.epi();
  EXPECT_GT(ule_saving, hp_saving);
}

TEST(SystemTest, ProposedAreaSmaller) {
  SystemConfig base_cfg = make_config(yield::Scenario::kA, false,
                                      power::Mode::kHp);
  SystemConfig prop_cfg = make_config(yield::Scenario::kA, true,
                                      power::Mode::kHp);
  System base(base_cfg, cell_plan_for(yield::Scenario::kA));
  System prop(prop_cfg, cell_plan_for(yield::Scenario::kA));
  EXPECT_LT(prop.l1_area_um2(), base.l1_area_um2());
}

TEST(SystemTest, FunctionalWithInjectedFaults) {
  // End-to-end predictability argument: with the methodology-sized cells
  // and EDC, a full workload runs functionally exactly even with the
  // hard-fault map active at ULE.
  SystemConfig config = make_config(yield::Scenario::kA, true,
                                    power::Mode::kUle);
  config.seed = 987;
  System system(config, cell_plan_for(yield::Scenario::kA));
  const cpu::RunResult result = system.run_workload("epic_d", 3, 1);
  EXPECT_GT(result.instructions, 0u);
  EXPECT_EQ(system.dl1().stats().edc_detected, 0u);
}

TEST(ReportTest, BreakdownMapsCategories) {
  const auto result = run_one(
      make_config(yield::Scenario::kA, true, power::Mode::kUle), "adpcm_c");
  const EpiBreakdown breakdown = epi_breakdown(result);
  EXPECT_GT(breakdown.l1_dynamic, 0.0);
  EXPECT_GT(breakdown.l1_leakage, 0.0);
  EXPECT_GT(breakdown.l1_edc, 0.0);
  EXPECT_GT(breakdown.core_other, 0.0);
  EXPECT_NEAR(breakdown.total(), result.epi(), result.epi() * 1e-9);
}

TEST(ReportTest, RowNormalization) {
  const auto base = run_one(
      make_config(yield::Scenario::kA, false, power::Mode::kUle), "adpcm_c");
  const auto prop = run_one(
      make_config(yield::Scenario::kA, true, power::Mode::kUle), "adpcm_c");
  const EpiRow row = make_epi_row("proposed", prop, base.epi());
  EXPECT_LT(row.normalized, 1.0);
  EXPECT_GT(row.normalized, 0.2);
}

TEST(DesignChoiceTest, Labels) {
  EXPECT_EQ((DesignChoice{yield::Scenario::kA, false}).label(),
            "scenarioA/baseline");
  EXPECT_EQ((DesignChoice{yield::Scenario::kB, true}).label(),
            "scenarioB/proposed");
}

}  // namespace
}  // namespace hvc::sim
