// Scrubbing tests: the extension feature that clears accumulated
// correctable soft errors before a second strike becomes uncorrectable.
#include <gtest/gtest.h>

#include "hvc/cache/cache.hpp"
#include "hvc/common/error.hpp"

namespace hvc::cache {
namespace {

[[nodiscard]] CacheConfig scrub_config(edc::Protection protection) {
  CacheConfig config;
  config.ways.resize(8);
  for (std::size_t w = 0; w < 7; ++w) {
    config.ways[w].cell = {tech::CellKind::k6T, 1.9};
  }
  config.ways[7].ule_way = true;
  config.ways[7].cell = {tech::CellKind::k8T, 2.8};
  config.ways[7].ule_protection = protection;
  return config;
}

class ScrubTest : public ::testing::Test {
 protected:
  ScrubTest()
      : rng_(1),
        terminal_(memory_,
                  scrub_config(edc::Protection::kSecded).memory_latency_cycles),
        cache_(scrub_config(edc::Protection::kSecded), terminal_, rng_) {
    cache_.set_mode(power::Mode::kUle);
    // Initialize the whole region first, then warm the cache (a line fill
    // snapshots all eight words of the line).
    for (std::uint64_t a = 0; a < 1024; a += 4) {
      memory_.write_word(a, pattern(a));
    }
    for (std::uint64_t a = 0; a < 1024; a += 4) {
      (void)cache_.access(a, AccessType::kLoad);
    }
  }
  [[nodiscard]] static std::uint32_t pattern(std::uint64_t a) {
    return static_cast<std::uint32_t>(a * 2654435761ULL + 17);
  }
  MainMemory memory_;
  Rng rng_;
  MainMemoryLevel terminal_;
  Cache cache_;
};

TEST_F(ScrubTest, CleanCacheScrubsNothing) {
  const auto report = cache_.scrub();
  EXPECT_EQ(report.lines_scrubbed, 32u);  // all lines of the ULE way
  EXPECT_EQ(report.bits_corrected, 0u);
  EXPECT_EQ(report.uncorrectable, 0u);
}

TEST_F(ScrubTest, SingleFlipCleared) {
  cache_.inject_bit_flip(7, 3, 5);
  const auto report = cache_.scrub();
  EXPECT_EQ(report.bits_corrected, 1u);
  // A second flip in the same word after the scrub is again correctable.
  cache_.inject_bit_flip(7, 3, 9);
  for (std::uint64_t a = 0; a < 1024; a += 4) {
    EXPECT_EQ(cache_.access(a, AccessType::kLoad).data, pattern(a));
  }
}

TEST_F(ScrubTest, WithoutScrubTwoFlipsAreUncorrectable) {
  cache_.inject_bit_flip(7, 3, 5);
  cache_.inject_bit_flip(7, 3, 9);  // same 39-bit word (bits 0..38)
  // Find the address mapping to set 3 (line_addr % 32 == 3), word 0.
  const std::uint64_t addr = 3 * 32;  // line 3, byte offset 0
  const auto result = cache_.access(addr, AccessType::kLoad);
  EXPECT_TRUE(result.detected_uncorrectable);
  // Functional fallback still returns the right data (clean line).
  EXPECT_EQ(result.data, pattern(addr));
}

TEST_F(ScrubTest, UncorrectableCleanLineInvalidated) {
  cache_.inject_bit_flip(7, 3, 5);
  cache_.inject_bit_flip(7, 3, 9);
  const auto report = cache_.scrub();
  EXPECT_EQ(report.uncorrectable, 1u);
  EXPECT_EQ(report.data_loss, 0u);  // line was clean
  EXPECT_FALSE(cache_.line_valid(7, 3));
  // Next access misses and refills: data intact.
  const std::uint64_t addr = 3 * 32;
  const auto result = cache_.access(addr, AccessType::kLoad);
  EXPECT_FALSE(result.hit);
  EXPECT_EQ(result.data, pattern(addr));
}

TEST_F(ScrubTest, DirtyUncorrectableCountsAsDataLoss) {
  const std::uint64_t addr = 5 * 32;
  (void)cache_.access(addr, AccessType::kStore, 0xD1157);
  cache_.inject_bit_flip(7, 5, 2);
  cache_.inject_bit_flip(7, 5, 7);
  const auto report = cache_.scrub();
  EXPECT_EQ(report.data_loss, 1u);
}

TEST_F(ScrubTest, ScrubChargesEnergy) {
  cache_.clear_energy();
  (void)cache_.scrub();
  EXPECT_GT(cache_.energy().get("dynamic"), 0.0);
  EXPECT_GT(cache_.energy().get("edc"), 0.0);
}

TEST_F(ScrubTest, PeriodicScrubSurvivesErrorRain) {
  // Inject a steady soft-error drizzle; scrub between batches. All data
  // must remain readable (corrected or refetched), never silently wrong.
  cache_.enable_soft_errors(7, 5e-5);
  for (int epoch = 0; epoch < 10; ++epoch) {
    cache_.advance_time(5.0);
    (void)cache_.scrub();
  }
  for (std::uint64_t a = 0; a < 1024; a += 4) {
    EXPECT_EQ(cache_.access(a, AccessType::kLoad).data, pattern(a));
  }
}

TEST(ScrubDected, SurvivesDoubleFlipsInPlace) {
  MainMemory memory;
  Rng rng(2);
  const CacheConfig config = scrub_config(edc::Protection::kDected);
  MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  Cache cache(config, terminal, rng);
  cache.set_mode(power::Mode::kUle);
  memory.write_word(96, 1111);
  (void)cache.access(96, AccessType::kLoad);
  cache.inject_bit_flip(7, 3, 5);
  cache.inject_bit_flip(7, 3, 9);
  const auto report = cache.scrub();
  EXPECT_EQ(report.bits_corrected, 2u);
  EXPECT_EQ(report.uncorrectable, 0u);
  EXPECT_TRUE(cache.line_valid(7, 3));
}

TEST(ScrubUnprotected, NoCodedWaysNothingToScrub) {
  MainMemory memory;
  Rng rng(3);
  const CacheConfig config = scrub_config(edc::Protection::kNone);
  MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  Cache cache(config, terminal, rng);
  cache.set_mode(power::Mode::kUle);
  memory.write_word(0, 5);
  (void)cache.access(0, AccessType::kLoad);
  const auto report = cache.scrub();
  EXPECT_EQ(report.lines_scrubbed, 0u);
}

}  // namespace
}  // namespace hvc::cache
