// Hybrid-mode tests: way gating, HP<->ULE transitions, re-encoding of
// retained lines, per-mode EDC latency.
#include <gtest/gtest.h>

#include "hvc/cache/cache.hpp"
#include "hvc/common/error.hpp"

namespace hvc::cache {
namespace {

/// Paper configuration: 8KB 8-way, 7x 6T + 1x 8T ULE way, scenario A.
[[nodiscard]] CacheConfig paper_config(bool proposed = true) {
  CacheConfig config;
  config.ways.resize(8);
  for (std::size_t w = 0; w < 7; ++w) {
    config.ways[w].cell = {tech::CellKind::k6T, 1.9};
  }
  config.ways[7].ule_way = true;
  if (proposed) {
    config.ways[7].cell = {tech::CellKind::k8T, 2.8};
    config.ways[7].ule_protection = edc::Protection::kSecded;
  } else {
    config.ways[7].cell = {tech::CellKind::k10T, 3.5};
  }
  return config;
}

TEST(CacheModes, StartsInHp) {
  MainMemory memory;
  Rng rng(1);
  const CacheConfig config = paper_config();
  MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  Cache cache(config, terminal, rng);
  EXPECT_EQ(cache.mode(), power::Mode::kHp);
  // No EDC at HP in scenario A: base hit latency.
  EXPECT_EQ(cache.hit_latency(), cache.config().hit_latency_cycles);
}

TEST(CacheModes, UleAddsEdcCycle) {
  MainMemory memory;
  Rng rng(2);
  const CacheConfig config = paper_config();
  MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  Cache cache(config, terminal, rng);
  cache.set_mode(power::Mode::kUle);
  EXPECT_EQ(cache.hit_latency(), cache.config().hit_latency_cycles +
                                     cache.config().edc_latency_cycles);
}

TEST(CacheModes, BaselineHasNoEdcCycleAtUle) {
  MainMemory memory;
  Rng rng(3);
  const CacheConfig config = paper_config(false);
  MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  Cache cache(config, terminal, rng);
  cache.set_mode(power::Mode::kUle);
  EXPECT_EQ(cache.hit_latency(), cache.config().hit_latency_cycles);
}

TEST(CacheModes, HpWaysDrainedOnUleEntry) {
  MainMemory memory;
  Rng rng(4);
  const CacheConfig config = paper_config();
  MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  Cache cache(config, terminal, rng);
  // Dirty a line that lands in an HP way (fill all 8 ways of set 0).
  const std::uint64_t stride = 32 * 32;  // sets * line_bytes
  for (int i = 0; i < 8; ++i) {
    (void)cache.access(static_cast<std::uint64_t>(i) * stride,
                       AccessType::kStore, static_cast<std::uint32_t>(i + 1));
  }
  cache.set_mode(power::Mode::kUle);
  EXPECT_GE(cache.stats().mode_switch_writebacks, 7u);
  // The seven HP-way lines reached memory; the line that landed in the
  // retained ULE way is still dirty in cache, so flush before checking.
  cache.flush();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(memory.read_word(static_cast<std::uint64_t>(i) * stride),
              static_cast<std::uint32_t>(i + 1));
  }
}

TEST(CacheModes, UleWayContentSurvivesSwitch) {
  MainMemory memory;
  Rng rng(5);
  CacheConfig config = paper_config();
  config.way_hard_pf.assign(8, 0.0);  // fault-free for this test
  MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  Cache cache(config, terminal, rng);

  // Fill set 0 so the last fill lands in the ULE way... simpler: store to
  // one address, then evict-proof it by accessing only at ULE.
  memory.write_word(0x40, 4242);
  cache.set_mode(power::Mode::kUle);  // only way 7 active
  const auto miss = cache.access(0x40, AccessType::kLoad);
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.data, 4242u);
  EXPECT_EQ(miss.way, 7u);

  // Back to HP and again to ULE: the re-encode scrub must preserve data.
  cache.set_mode(power::Mode::kHp);
  cache.set_mode(power::Mode::kUle);
  const auto hit = cache.access(0x40, AccessType::kLoad);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.data, 4242u);
}

TEST(CacheModes, DirtyUleLineSurvivesRoundTrip) {
  MainMemory memory;
  Rng rng(6);
  CacheConfig config = paper_config();
  MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  Cache cache(config, terminal, rng);
  cache.set_mode(power::Mode::kUle);
  (void)cache.access(0x80, AccessType::kStore, 777);
  cache.set_mode(power::Mode::kHp);
  const auto result = cache.access(0x80, AccessType::kLoad);
  EXPECT_TRUE(result.hit);
  EXPECT_EQ(result.data, 777u);
  cache.flush();
  EXPECT_EQ(memory.read_word(0x80), 777u);
}

TEST(CacheModes, OnlyUleWayFilledAtUle) {
  MainMemory memory;
  Rng rng(7);
  const CacheConfig config = paper_config();
  MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  Cache cache(config, terminal, rng);
  cache.set_mode(power::Mode::kUle);
  for (std::uint64_t a = 0; a < 4096; a += 32) {
    const auto result = cache.access(a, AccessType::kLoad);
    EXPECT_EQ(result.way, 7u);
  }
  // Capacity at ULE = 1 way = 1KB = 32 lines: everything beyond conflicts.
  EXPECT_EQ(cache.stats().misses, 128u);
}

TEST(CacheModes, UleCapacityIsOneWay) {
  MainMemory memory;
  Rng rng(8);
  const CacheConfig config = paper_config();
  MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  Cache cache(config, terminal, rng);
  cache.set_mode(power::Mode::kUle);
  // Touch exactly 1KB: second pass must fully hit.
  for (std::uint64_t a = 0; a < 1024; a += 32) {
    (void)cache.access(a, AccessType::kLoad);
  }
  cache.clear_stats();
  for (std::uint64_t a = 0; a < 1024; a += 4) {
    (void)cache.access(a, AccessType::kLoad);
  }
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(CacheModes, ModeSwitchIsIdempotent) {
  MainMemory memory;
  Rng rng(9);
  const CacheConfig config = paper_config();
  MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  Cache cache(config, terminal, rng);
  cache.set_mode(power::Mode::kUle);
  const auto stats_before = cache.stats().mode_switch_writebacks;
  cache.set_mode(power::Mode::kUle);
  EXPECT_EQ(cache.stats().mode_switch_writebacks, stats_before);
}

TEST(CacheModes, LeakageDropsAtUle) {
  MainMemory memory;
  Rng rng(10);
  const CacheConfig config = paper_config();
  MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  Cache cache(config, terminal, rng);
  const double hp_leak = cache.leakage_power();
  cache.set_mode(power::Mode::kUle);
  EXPECT_LT(cache.leakage_power(), hp_leak / 5.0);
}

TEST(CacheModes, ScenarioBKeepsSecdedLatencyAtHp) {
  MainMemory memory;
  Rng rng(11);
  CacheConfig config = paper_config();
  for (auto& way : config.ways) {
    way.hp_protection = edc::Protection::kSecded;
  }
  config.ways[7].ule_protection = edc::Protection::kDected;
  MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  Cache cache(config, terminal, rng);
  EXPECT_EQ(cache.hit_latency(), config.hit_latency_cycles +
                                     config.edc_latency_cycles);
}

}  // namespace
}  // namespace hvc::cache
