// Property-based cache tests: a golden-model check over randomized access
// sequences, parameterized across cache geometries (including the
// direct-mapped and fully-associative organisations the paper says the
// design extends to), write policies and operating modes.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "hvc/cache/cache.hpp"
#include "hvc/common/rng.hpp"

namespace hvc::cache {
namespace {

struct Geometry {
  std::size_t size_bytes;
  std::size_t ways;
  std::size_t line_bytes;
  std::size_t ule_ways;
};

using Param = std::tuple<Geometry, WritePolicy, power::Mode>;

[[nodiscard]] CacheConfig make_config(const Geometry& geometry,
                                      WritePolicy policy) {
  CacheConfig config;
  config.org.size_bytes = geometry.size_bytes;
  config.org.ways = geometry.ways;
  config.org.line_bytes = geometry.line_bytes;
  config.write_policy = policy;
  config.ways.resize(geometry.ways);
  for (std::size_t w = 0; w < geometry.ways; ++w) {
    const bool ule = w >= geometry.ways - geometry.ule_ways;
    config.ways[w].ule_way = ule;
    if (ule) {
      config.ways[w].cell = {tech::CellKind::k8T, 2.8};
      config.ways[w].ule_protection = edc::Protection::kSecded;
    } else {
      config.ways[w].cell = {tech::CellKind::k6T, 1.9};
    }
  }
  return config;
}

class CacheGolden : public ::testing::TestWithParam<Param> {};

/// The invariant: whatever the organisation, mode or policy, every load
/// must return exactly what a flat memory model would return.
TEST_P(CacheGolden, LoadsMatchFlatMemoryModel) {
  const auto& [geometry, policy, mode] = GetParam();
  MainMemory memory;
  Rng rng(99);
  const CacheConfig config = make_config(geometry, policy);
  MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  Cache cache(config, terminal, rng);
  cache.set_mode(mode);

  std::map<std::uint64_t, std::uint32_t> golden;
  Rng ops(1234);
  // Address space ~4x the cache: plenty of conflict evictions.
  const std::uint64_t space = geometry.size_bytes * 4;

  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t addr = (ops.below(space) / 4) * 4;
    if (ops.bernoulli(0.35)) {
      const auto value = static_cast<std::uint32_t>(ops.next());
      golden[addr] = value;
      (void)cache.access(addr, AccessType::kStore, value);
    } else {
      const auto result = cache.access(addr, AccessType::kLoad);
      const auto expect_it = golden.find(addr);
      const std::uint32_t expect =
          expect_it == golden.end() ? 0u : expect_it->second;
      ASSERT_EQ(result.data, expect)
          << "addr=" << addr << " op=" << op << " hit=" << result.hit;
    }
  }

  // After flushing, memory agrees with the golden model everywhere.
  cache.flush();
  for (const auto& [addr, value] : golden) {
    ASSERT_EQ(memory.read_word(addr), value) << "addr=" << addr;
  }
}

TEST_P(CacheGolden, StatsInvariants) {
  const auto& [geometry, policy, mode] = GetParam();
  MainMemory memory;
  Rng rng(5);
  const CacheConfig config = make_config(geometry, policy);
  MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  Cache cache(config, terminal, rng);
  cache.set_mode(mode);
  Rng ops(77);
  for (int op = 0; op < 5000; ++op) {
    const std::uint64_t addr = (ops.below(geometry.size_bytes * 2) / 4) * 4;
    const auto type = ops.bernoulli(0.3) ? AccessType::kStore
                                         : AccessType::kLoad;
    (void)cache.access(addr, type, 1);
  }
  const CacheStats& s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_EQ(s.loads + s.stores + s.ifetches, s.accesses);
  if (policy == WritePolicy::kWriteBackAllocate) {
    EXPECT_GE(s.fills, s.misses > 0 ? 1u : 0u);
    EXPECT_LE(s.writebacks, s.fills + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGolden,
    ::testing::Combine(
        ::testing::Values(
            Geometry{8192, 8, 32, 1},   // the paper's 8KB 8-way 7+1
            Geometry{8192, 8, 32, 2},   // 6+2 split
            Geometry{4096, 4, 64, 1},   // longer lines
            Geometry{2048, 2, 32, 1},   // 2-way
            Geometry{1024, 2, 16, 1},   // short lines
            Geometry{2048, 8, 16, 4}),  // fully-associative-ish, 4+4
        ::testing::Values(WritePolicy::kWriteBackAllocate,
                          WritePolicy::kWriteThroughNoAllocate),
        ::testing::Values(power::Mode::kHp, power::Mode::kUle)));

TEST(CacheOrganisations, FullyAssociativeSingleSet) {
  // 8 ways x 32B lines = 256B cache -> exactly one set.
  Geometry geometry{256, 8, 32, 1};
  MainMemory memory;
  Rng rng(6);
  const CacheConfig config =
      make_config(geometry, WritePolicy::kWriteBackAllocate);
  MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  Cache cache(config, terminal, rng);
  EXPECT_EQ(cache.config().org.sets(), 1u);
  // Eight distinct lines all fit regardless of address bits.
  for (int i = 0; i < 8; ++i) {
    memory.write_word(static_cast<std::uint64_t>(i) * 4096,
                      static_cast<std::uint32_t>(i));
    (void)cache.access(static_cast<std::uint64_t>(i) * 4096,
                       AccessType::kLoad);
  }
  cache.clear_stats();
  for (int i = 0; i < 8; ++i) {
    const auto result =
        cache.access(static_cast<std::uint64_t>(i) * 4096, AccessType::kLoad);
    EXPECT_TRUE(result.hit);
    EXPECT_EQ(result.data, static_cast<std::uint32_t>(i));
  }
}

TEST(CacheOrganisations, DirectMappedUleWay) {
  // A single-way cache whose only way is the ULE way: direct-mapped and
  // operable in both modes.
  CacheConfig config;
  config.org.size_bytes = 1024;
  config.org.ways = 1;
  config.org.line_bytes = 32;
  config.ways.resize(1);
  config.ways[0].ule_way = true;
  config.ways[0].cell = {tech::CellKind::k8T, 2.8};
  config.ways[0].ule_protection = edc::Protection::kSecded;
  MainMemory memory;
  Rng rng(7);
  MainMemoryLevel terminal(memory, config.memory_latency_cycles);
  Cache cache(config, terminal, rng);
  cache.set_mode(power::Mode::kUle);
  memory.write_word(0, 1);
  memory.write_word(1024, 2);  // conflicts with address 0
  EXPECT_EQ(cache.access(0, AccessType::kLoad).data, 1u);
  EXPECT_EQ(cache.access(1024, AccessType::kLoad).data, 2u);
  const auto result = cache.access(0, AccessType::kLoad);
  EXPECT_FALSE(result.hit);  // direct-mapped conflict
  EXPECT_EQ(result.data, 1u);
}

}  // namespace
}  // namespace hvc::cache
