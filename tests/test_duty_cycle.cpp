// Duty-cycle simulation tests: dynamic mode switching on one System and
// the paper's deployment-model claims.
#include <gtest/gtest.h>

#include "hvc/sim/duty_cycle.hpp"
#include "hvc/sim/system.hpp"

namespace hvc::sim {
namespace {

[[nodiscard]] DutyCycleConfig small_duty(bool proposed) {
  DutyCycleConfig config;
  config.design = {yield::Scenario::kA, proposed};
  config.ule_phases = {{"adpcm_c", 1, 1}};
  config.hp_phase = {"epic_c", 2, 1};  // keep the HP burst cheap for tests
  config.cycles = 2;
  config.idle_fraction = 0.9;
  return config;
}

TEST(SystemModeSwitch, TogglesAndCounts) {
  SystemConfig config;
  config.design = {yield::Scenario::kA, true};
  config.mode = power::Mode::kHp;
  System system(config, cell_plan_for(yield::Scenario::kA));
  EXPECT_EQ(system.mode(), power::Mode::kHp);
  system.set_mode(power::Mode::kUle);
  EXPECT_EQ(system.mode(), power::Mode::kUle);
  system.set_mode(power::Mode::kUle);  // no-op
  EXPECT_EQ(system.mode_switches(), 1u);
  system.set_mode(power::Mode::kHp);
  EXPECT_EQ(system.mode_switches(), 2u);
}

TEST(SystemModeSwitch, WorkloadsRunCorrectlyAfterSwitches) {
  SystemConfig config;
  config.design = {yield::Scenario::kA, true};
  config.mode = power::Mode::kUle;
  System system(config, cell_plan_for(yield::Scenario::kA));
  const auto first = system.run_workload("adpcm_c", 1);
  system.set_mode(power::Mode::kHp);
  const auto burst = system.run_workload("epic_c", 2);
  system.set_mode(power::Mode::kUle);
  const auto second = system.run_workload("adpcm_c", 1);
  EXPECT_GT(first.instructions, 0u);
  EXPECT_GT(burst.instructions, 0u);
  // Identical workload at the same mode: identical timing either side of
  // the HP excursion (caches may differ in warmth, but ULE ways retain
  // content and the trace is deterministic).
  EXPECT_EQ(first.instructions, second.instructions);
}

TEST(SystemModeSwitch, SwitchEnergyAccumulates) {
  SystemConfig config;
  config.design = {yield::Scenario::kA, true};
  config.mode = power::Mode::kHp;
  System system(config, cell_plan_for(yield::Scenario::kA));
  // Dirty some lines at HP so the switch has writeback work to do.
  (void)system.run_workload("epic_c", 1);
  const double before = system.mode_switch_energy_j();
  system.set_mode(power::Mode::kUle);
  EXPECT_GT(system.mode_switch_energy_j(), before);
}

TEST(SystemModeSwitch, LeakageFollowsMode) {
  SystemConfig config;
  config.design = {yield::Scenario::kA, true};
  config.mode = power::Mode::kHp;
  System system(config, cell_plan_for(yield::Scenario::kA));
  const double hp_leak = system.chip_leakage_w();
  system.set_mode(power::Mode::kUle);
  EXPECT_LT(system.chip_leakage_w(), hp_leak / 3.0);
}

TEST(DutyCycle, RunsAndAccountsEverything) {
  const DutyCycleResult result = run_duty_cycle(small_duty(true));
  EXPECT_GT(result.ule_active_energy_j, 0.0);
  EXPECT_GT(result.hp_active_energy_j, 0.0);
  EXPECT_GT(result.idle_energy_j, 0.0);
  EXPECT_GT(result.switch_energy_j, 0.0);
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_GE(result.mode_switches, 4u);  // 2 cycles x (ULE+HP) + final ULE
  EXPECT_GT(result.instructions, 0u);
  EXPECT_NEAR(result.total_energy_j(),
              result.ule_active_energy_j + result.hp_active_energy_j +
                  result.idle_energy_j + result.switch_energy_j,
              1e-18);
}

TEST(DutyCycle, UleDominatesWallClock) {
  // The paper's premise: ULE mode covers ~99%+ of the time.
  const DutyCycleResult result = run_duty_cycle(small_duty(true));
  EXPECT_GT(result.ule_time_fraction(), 0.95);
}

TEST(DutyCycle, ProposedBeatsBaseline) {
  const DutyCycleResult base = run_duty_cycle(small_duty(false));
  const DutyCycleResult prop = run_duty_cycle(small_duty(true));
  EXPECT_LT(prop.total_energy_j(), base.total_energy_j());
  EXPECT_GT(prop.battery_seconds(2430.0), base.battery_seconds(2430.0));
}

TEST(DutyCycle, MoreIdleMoreLeakageShare) {
  DutyCycleConfig lazy = small_duty(true);
  lazy.idle_fraction = 0.99;
  DutyCycleConfig busy = small_duty(true);
  busy.idle_fraction = 0.5;
  const DutyCycleResult r_lazy = run_duty_cycle(lazy);
  const DutyCycleResult r_busy = run_duty_cycle(busy);
  EXPECT_GT(r_lazy.idle_energy_j / r_lazy.total_energy_j(),
            r_busy.idle_energy_j / r_busy.total_energy_j());
  // And the average power drops as the node idles more.
  EXPECT_LT(r_lazy.average_power_w(), r_busy.average_power_w());
}

TEST(DutyCycle, InvalidConfigThrows) {
  DutyCycleConfig config = small_duty(true);
  config.cycles = 0;
  EXPECT_THROW((void)run_duty_cycle(config), PreconditionError);
  config = small_duty(true);
  config.idle_fraction = 1.0;
  EXPECT_THROW((void)run_duty_cycle(config), PreconditionError);
}

}  // namespace
}  // namespace hvc::sim
