// Multi-core simulation layer: the differential pin that one-core runs
// are bit-identical to the single-core model, traffic identities through
// the shared L2, the 2-core HP<->ULE drain, and the arbitration model's
// contention properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "hvc/cache/arbiter.hpp"
#include "hvc/cache/memory.hpp"
#include "hvc/explore/engine.hpp"
#include "hvc/sim/report.hpp"
#include "hvc/sim/system.hpp"

namespace hvc::sim {
namespace {

[[nodiscard]] SystemConfig base_config(yield::Scenario scenario, bool proposed,
                                       power::Mode mode,
                                       std::size_t num_cores = 1,
                                       bool with_l2 = false) {
  SystemConfig config;
  config.design.scenario = scenario;
  config.design.proposed = proposed;
  config.mode = mode;
  config.num_cores = num_cores;
  if (with_l2) {
    config.hierarchy.l2 = L2Spec{};
  }
  return config;
}

/// Bit-identical comparison of two run results: every timing field and
/// every energy category must match exactly (EXPECT_EQ on doubles — the
/// one-core multicore path must take the same arithmetic path, not just
/// land close).
void expect_bit_identical(const cpu::RunResult& a, const cpu::RunResult& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.seconds, b.seconds);
  const auto& items_a = a.energy.items();
  const auto& items_b = b.energy.items();
  ASSERT_EQ(items_a.size(), items_b.size());
  for (const auto& [key, value] : items_a) {
    EXPECT_EQ(value, b.energy.get(key)) << "category " << key;
  }
  EXPECT_EQ(a.il1.accesses, b.il1.accesses);
  EXPECT_EQ(a.il1.hits, b.il1.hits);
  EXPECT_EQ(a.dl1.accesses, b.dl1.accesses);
  EXPECT_EQ(a.dl1.hits, b.dl1.hits);
  EXPECT_EQ(a.il1.writebacks, b.il1.writebacks);
  EXPECT_EQ(a.dl1.writebacks, b.dl1.writebacks);
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (std::size_t i = 0; i < a.levels.size(); ++i) {
    EXPECT_EQ(a.levels[i].name, b.levels[i].name);
    EXPECT_EQ(a.levels[i].accesses, b.levels[i].accesses);
    EXPECT_EQ(a.levels[i].hits, b.levels[i].hits);
    EXPECT_EQ(a.levels[i].dynamic_energy_j, b.levels[i].dynamic_energy_j);
  }
}

// ---------------------------------------------------------------------
// Differential pin: num_cores = 1 == the existing single-core model on
// the Fig. 3 / Fig. 4 regression workloads.
// ---------------------------------------------------------------------

TEST(MulticoreDifferential, OneCoreMixBitIdenticalToRunOneFig3) {
  // Fig. 3 shape: HP mode over a BigBench workload, both designs.
  for (const bool proposed : {false, true}) {
    const SystemConfig config =
        base_config(yield::Scenario::kA, proposed, power::Mode::kHp);
    const cpu::RunResult reference = run_one(config, "gsm_c");

    System system(config, cell_plan_for(config.design.scenario));
    const MulticoreResult mix = system.run_mix({"gsm_c"});
    ASSERT_EQ(mix.per_core.size(), 1u);
    expect_bit_identical(mix.per_core[0], reference);
    expect_bit_identical(mix.aggregate, reference);
  }
}

TEST(MulticoreDifferential, OneCoreMixBitIdenticalToRunOneFig4) {
  // Fig. 4 shape: ULE mode over SmallBench, both scenarios.
  for (const auto scenario : {yield::Scenario::kA, yield::Scenario::kB}) {
    const SystemConfig config =
        base_config(scenario, true, power::Mode::kUle);
    const cpu::RunResult reference = run_one(config, "adpcm_c");

    System system(config, cell_plan_for(scenario));
    const MulticoreResult mix = system.run_mix({"adpcm_c"});
    expect_bit_identical(mix.aggregate, reference);
  }
}

TEST(MulticoreDifferential, OneCoreMixBitIdenticalWithSharedL2) {
  // The hierarchy shape must pin too: one core in front of an L2 builds
  // the exact current topology (no arbiter inserted).
  SystemConfig config =
      base_config(yield::Scenario::kA, true, power::Mode::kHp, 1, true);
  const cpu::RunResult reference = run_one(config, "mpeg2_c");

  System system(config, cell_plan_for(config.design.scenario));
  EXPECT_EQ(system.arbiter(), nullptr);
  const MulticoreResult mix = system.run_mix({"mpeg2_c"});
  expect_bit_identical(mix.aggregate, reference);
  ASSERT_NE(mix.aggregate.level("L2"), nullptr);
  EXPECT_EQ(mix.aggregate.level("L2")->contention_cycles, 0u);
}

// ---------------------------------------------------------------------
// Multi-core traffic identity and aggregate reporting.
// ---------------------------------------------------------------------

TEST(Multicore, L2TrafficIsSumOfPerCoreFillsAndWritebacks) {
  SystemConfig config =
      base_config(yield::Scenario::kA, false, power::Mode::kHp, 2, true);
  System system(config, cell_plan_for(config.design.scenario));
  const MulticoreResult mix = system.run_mix({"gsm_c", "g721_c"});

  ASSERT_EQ(mix.per_core.size(), 2u);
  std::uint64_t l1_fills = 0;
  std::uint64_t l1_writebacks = 0;
  for (const cpu::RunResult& core : mix.per_core) {
    l1_fills += core.il1.fills + core.dl1.fills;
    l1_writebacks += core.il1.writebacks + core.dl1.writebacks;
  }
  const cache::LevelStats* l2 = mix.aggregate.level("L2");
  ASSERT_NE(l2, nullptr);
  EXPECT_EQ(l2->accesses, l1_fills + l1_writebacks);

  // Aggregate timing: sum of instructions, wall-clock of the slowest core.
  std::uint64_t instructions = 0;
  std::uint64_t max_cycles = 0;
  for (const cpu::RunResult& core : mix.per_core) {
    instructions += core.instructions;
    max_cycles = std::max(max_cycles, core.cycles);
  }
  EXPECT_EQ(mix.aggregate.instructions, instructions);
  EXPECT_EQ(mix.aggregate.cycles, max_cycles);

  // Per-core L1 snapshots are reported under C<i>.* names.
  EXPECT_NE(mix.aggregate.level("C0.IL1"), nullptr);
  EXPECT_NE(mix.aggregate.level("C1.DL1"), nullptr);
  EXPECT_NE(mix.aggregate.level("MEM"), nullptr);
}

TEST(Multicore, SharedL2SeesContentionAndChargesArbitrationEnergy) {
  SystemConfig config =
      base_config(yield::Scenario::kA, false, power::Mode::kHp, 4, true);
  System system(config, cell_plan_for(config.design.scenario));
  ASSERT_NE(system.arbiter(), nullptr);
  const MulticoreResult mix =
      system.run_mix({"gsm_c", "g721_c", "mpeg2_c", "gsm_d"});

  const cache::LevelStats* l2 = mix.aggregate.level("L2");
  ASSERT_NE(l2, nullptr);
  EXPECT_GT(l2->contention_cycles, 0u);
  EXPECT_GT(l2->contended_requests, 0u);
  EXPECT_GT(mix.aggregate.energy.get("contention.l2"), 0.0);
  const EpiBreakdown epi = epi_breakdown(mix.aggregate);
  EXPECT_GT(epi.contention, 0.0);
  // The breakdown still sums to the aggregate EPI with the new category.
  EXPECT_NEAR(epi.total(), mix.aggregate.epi(),
              1e-12 * std::max(1.0, mix.aggregate.epi()));
}

TEST(Multicore, ContentionLengthensSlowestCoreVsFreeArbitration) {
  // Same mix under single-port vs ideal arbitration: queueing can only
  // add cycles, and must add some on a 4-core BigBench mix.
  SystemConfig config =
      base_config(yield::Scenario::kA, false, power::Mode::kHp, 4, true);
  config.arbitration.kind = ArbitrationKind::kSinglePort;
  System contended(config, cell_plan_for(config.design.scenario));
  config.arbitration.kind = ArbitrationKind::kFree;
  System free_ported(config, cell_plan_for(config.design.scenario));

  const std::vector<std::string> mix{"gsm_c", "g721_c", "mpeg2_c", "gsm_d"};
  const MulticoreResult with = contended.run_mix(mix);
  const MulticoreResult without = free_ported.run_mix(mix);
  EXPECT_GT(with.aggregate.cycles, without.aggregate.cycles);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_GE(with.per_core[c].cycles, without.per_core[c].cycles) << c;
  }
  EXPECT_EQ(without.aggregate.level("L2")->contention_cycles, 0u);
}

TEST(Multicore, UnbalancedMixChargesIdleCoreLeakageToTheChipTotal) {
  // gsm_c outlives adpcm_c by a wide margin; the early core's static
  // power over its idle tail belongs in the chip aggregate (no per-core
  // power gating is modelled), so aggregate leakage exceeds the sum of
  // per-core active-window leakage.
  SystemConfig config =
      base_config(yield::Scenario::kA, false, power::Mode::kHp, 2, true);
  System system(config, cell_plan_for(config.design.scenario));
  const MulticoreResult mix = system.run_mix({"gsm_c", "adpcm_c"});

  ASSERT_GT(mix.per_core[0].seconds, mix.per_core[1].seconds);
  double per_core_l1_leak = 0.0;
  for (const cpu::RunResult& core : mix.per_core) {
    per_core_l1_leak += core.energy.get("l1.leakage");
  }
  EXPECT_GT(mix.aggregate.energy.get("l1.leakage"), per_core_l1_leak);
  // And the breakdown still reconciles with the aggregate EPI.
  const EpiBreakdown epi = epi_breakdown(mix.aggregate);
  EXPECT_NEAR(epi.total(), mix.aggregate.epi(),
              1e-12 * std::max(1.0, mix.aggregate.epi()));
}

TEST(Multicore, SmallMulticoreSweepByteIdenticalAcrossThreadCounts) {
  // Tier-1 pin of the sweep-level guarantee for the multicore path (the
  // broader cores x mix determinism matrix lives in the slow-labelled
  // test_explore_determinism): 1- and 2-thread runs must emit the same
  // bytes through run_mix and the arbiter.
  const explore::SweepSpec spec = explore::SweepSpec::parse(R"({
    "kind": "simulation",
    "seed": 5,
    "axes": {
      "scenario": ["A"],
      "design": ["proposed"],
      "l2": ["baseline"],
      "l2_size_kb": [32],
      "cores": [1, 2],
      "mode": ["ule"],
      "workload_mix": ["adpcm_c+epic_d"]
    }
  })");
  EXPECT_EQ(explore::run_sweep(spec, 1).to_csv(),
            explore::run_sweep(spec, 2).to_csv());
}

TEST(Multicore, L2LessChipSharesAndArbitratesTheMemoryPort) {
  // Without an L2 the private L1s contend for the memory terminal.
  SystemConfig config =
      base_config(yield::Scenario::kA, false, power::Mode::kHp, 2, false);
  System system(config, cell_plan_for(config.design.scenario));
  ASSERT_NE(system.arbiter(), nullptr);
  const MulticoreResult mix = system.run_mix({"gsm_c", "g721_c"});

  const cache::LevelStats* mem = mix.aggregate.level("MEM");
  ASSERT_NE(mem, nullptr);
  std::uint64_t l1_fills = 0;
  std::uint64_t l1_writebacks = 0;
  for (const cpu::RunResult& core : mix.per_core) {
    l1_fills += core.il1.fills + core.dl1.fills;
    l1_writebacks += core.il1.writebacks + core.dl1.writebacks;
  }
  EXPECT_EQ(mem->accesses, l1_fills + l1_writebacks);
  EXPECT_GT(mem->contention_cycles, 0u);
}

// ---------------------------------------------------------------------
// HP <-> ULE mode switch with two cores mid-run.
// ---------------------------------------------------------------------

TEST(Multicore, TwoCoreModeSwitchDrainsEveryL1IntoTheL2) {
  SystemConfig config =
      base_config(yield::Scenario::kA, true, power::Mode::kHp, 2, true);
  System system(config, cell_plan_for(config.design.scenario));

  // Dirty both cores' DL1 HP ways, then gate them off.
  const MulticoreResult before = system.run_mix({"gsm_c", "g721_c"});
  (void)before;
  system.set_mode(power::Mode::kUle);

  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_GT(system.dl1(c).stats().mode_switch_writebacks, 0u) << c;
  }
  EXPECT_GT(system.mode_switch_energy_j(), 0.0);
  EXPECT_EQ(system.mode_switches(), 1u);

  // The drain ran through the shared hierarchy and the chip still works:
  // a ULE-mode mix completes with every self-check green.
  const MulticoreResult after = system.run_mix({"adpcm_c", "epic_c"});
  EXPECT_GT(after.aggregate.instructions, 0u);
  for (const cpu::RunResult& core : after.per_core) {
    EXPECT_GT(core.instructions, 0u);
  }

  // And back: ULE -> HP re-enables the HP ways on every core.
  system.set_mode(power::Mode::kHp);
  EXPECT_EQ(system.mode_switches(), 2u);
  const MulticoreResult hp_again = system.run_mix({"gsm_c", "g721_c"});
  EXPECT_GT(hp_again.aggregate.instructions, 0u);
}

// ---------------------------------------------------------------------
// Arbitration property tests (direct, against a flat memory terminal with
// a fixed per-request latency so service time is a known constant).
// ---------------------------------------------------------------------

constexpr std::size_t kMemLatency = 20;

struct ArbiterFixture {
  cache::MainMemory memory;
  cache::MainMemoryLevel terminal{memory, kMemLatency};
  cache::ArbitratedLevel arb;

  explicit ArbiterFixture(std::size_t requesters)
      : arb(terminal, requesters, 1.0) {}

  /// One line fetch from `requester`; returns composed latency.
  std::size_t fetch(std::size_t requester, std::uint64_t addr) {
    std::uint32_t buf[8] = {};
    arb.begin_request(requester);
    return arb.fetch_block(addr, buf, 8);
  }
};

TEST(ArbitrationProperty, LatencyMonotonicallyNonDecreasingInRequesters) {
  // The k-th core to request in a round waits out k earlier cores'
  // service: composed latency must be non-decreasing in the number of
  // outstanding requesters, for every k up to the core count.
  constexpr std::size_t kCores = 8;
  ArbiterFixture fx(kCores);
  std::size_t previous = 0;
  for (std::size_t k = 0; k < kCores; ++k) {
    fx.arb.new_round();
    // k other requesters go first in this round.
    for (std::size_t r = 0; r < k; ++r) {
      (void)fx.fetch(r, 0x1000 * (r + 1));
    }
    const std::size_t latency = fx.fetch(kCores - 1, 0x9000);
    EXPECT_GE(latency, previous) << "outstanding=" << k;
    EXPECT_EQ(latency, kMemLatency * (k + 1));  // single-port: exact
    previous = latency;
  }
}

TEST(ArbitrationProperty, SingleOwnerNeverQueues) {
  // A core that owns the level sees zero contention delay — even issuing
  // several requests per round (fill + dirty write-back of one miss).
  ArbiterFixture fx(4);
  for (std::size_t round = 0; round < 50; ++round) {
    EXPECT_EQ(fx.fetch(2, 0x40 * round), kMemLatency);
    EXPECT_EQ(fx.fetch(2, 0x40 * round + 0x100000), kMemLatency);
    fx.arb.new_round();
  }
  EXPECT_EQ(fx.arb.contention_cycles(), 0u);
  EXPECT_EQ(fx.arb.contended_requests(), 0u);
}

TEST(ArbitrationProperty, RotatingRoundRobinGrantsPrioritySlotFairly) {
  // Uniform demand (every requester requests every round), interleaver
  // rotation: the uncontended priority slot must circulate, with
  // per-requester priority-grant counts differing by at most 1 for any
  // number of rounds.
  constexpr std::size_t kCores = 3;
  ArbiterFixture fx(kCores);
  for (std::size_t rounds : {std::size_t{7}, std::size_t{8}, std::size_t{9}}) {
    fx.arb.clear_level_counters();
    for (std::size_t round = 0; round < rounds; ++round) {
      for (std::size_t k = 0; k < kCores; ++k) {
        const std::size_t r = (round + k) % kCores;  // the rotation
        (void)fx.fetch(r, 0x40 * (round * kCores + r));
      }
      fx.arb.new_round();
    }
    const auto& priority = fx.arb.priority_grants();
    const auto [lo, hi] = std::minmax_element(priority.begin(), priority.end());
    EXPECT_LE(*hi - *lo, 1u) << "rounds=" << rounds;
    // Every request was granted; totals match demand exactly.
    for (std::size_t r = 0; r < kCores; ++r) {
      EXPECT_EQ(fx.arb.grants()[r], rounds);
    }
  }
}

TEST(ArbitrationProperty, GrantCountsUnderUniformSystemDemandDifferByAtMostOne) {
  // End-to-end fairness: identical workloads on every core -> identical
  // shared-level demand -> grant counts equal up to the final ragged round.
  SystemConfig config =
      base_config(yield::Scenario::kA, false, power::Mode::kHp, 3, true);
  System system(config, cell_plan_for(config.design.scenario));
  const MulticoreResult mix = system.run_mix({"gsm_c", "gsm_c", "gsm_c"});
  (void)mix;
  const auto& grants = system.arbiter()->grants();
  const auto [lo, hi] = std::minmax_element(grants.begin(), grants.end());
  EXPECT_GT(*lo, 0u);
  EXPECT_LE(*hi - *lo, 1u);
}

TEST(ArbitrationProperty, FreeArbitrationIsContentionFree) {
  cache::MainMemory memory;
  cache::MainMemoryLevel terminal(memory, kMemLatency);
  cache::ArbitratedLevel arb(terminal, 4, 1.0,
                             std::make_unique<cache::FreeArbitration>());
  std::uint32_t buf[8] = {};
  for (std::size_t r = 0; r < 4; ++r) {
    arb.begin_request(r);
    EXPECT_EQ(arb.fetch_block(0x1000 * r, buf, 8), kMemLatency);
  }
  EXPECT_EQ(arb.contention_cycles(), 0u);
}

}  // namespace
}  // namespace hvc::sim
