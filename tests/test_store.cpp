// Crash-safe result store (.hvcs): format round-trip, write-once keys,
// dirty-flag discipline, open-time validation, fsck/repair, the row
// codec + canonical keys, and the two differential pins that matter to
// the sweep engine: warm (memoized) sweeps are byte-identical to cold
// recomputation, and N threads sharing one store produce the same file
// and CSV as one thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "hvc/common/error.hpp"
#include "hvc/explore/engine.hpp"
#include "hvc/explore/result_store.hpp"
#include "hvc/store/store.hpp"

namespace hvc::store {
namespace {

[[nodiscard]] std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "hvc_store_" + name;
  std::remove(path.c_str());
  return path;
}

[[nodiscard]] std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

[[nodiscard]] std::vector<std::uint8_t> payload_of(const std::string& text) {
  return {text.begin(), text.end()};
}

void put_text(ResultStore& store, const Key& key, const std::string& text) {
  ASSERT_TRUE(store.put(key, text.data(), text.size()));
}

// ---------------------------------------------------------------------
// Round-trip and write-once semantics
// ---------------------------------------------------------------------

TEST(Store, PutGetRoundTripAndReopen) {
  const std::string path = temp_path("roundtrip.hvcs");
  const Key a{1, 2}, b{3, 4};
  {
    ResultStore store(path, OpenOptions{.app_tag = 42});
    EXPECT_FALSE(store.contains(a));
    put_text(store, a, "row one");
    put_text(store, b, "");
    EXPECT_TRUE(store.contains(a));
    EXPECT_EQ(store.records(), 2u);
    ASSERT_TRUE(store.get(a).has_value());
    EXPECT_EQ(*store.get(a), payload_of("row one"));
    EXPECT_EQ(store.get(b)->size(), 0u);
    EXPECT_FALSE(store.get(Key{9, 9}).has_value());
    store.close();
  }
  // Clean close cleared the dirty flag: a plain reopen (no recover)
  // succeeds and serves the same bytes.
  ResultStore store(path, OpenOptions{.read_only = true, .app_tag = 42});
  EXPECT_EQ(store.records(), 2u);
  EXPECT_EQ(store.recovered_bytes(), 0u);
  EXPECT_EQ(*store.get(a), payload_of("row one"));
}

TEST(Store, KeysAreWriteOnceFirstCommitWins) {
  const std::string path = temp_path("write_once.hvcs");
  ResultStore store(path, OpenOptions{});
  const Key key{7, 7};
  EXPECT_TRUE(store.put(key, "first", 5));
  EXPECT_FALSE(store.put(key, "second", 6));
  EXPECT_EQ(store.records(), 1u);
  EXPECT_EQ(*store.get(key), payload_of("first"));
}

TEST(Store, AppTagMismatchIsRejected) {
  const std::string path = temp_path("app_tag.hvcs");
  {
    ResultStore store(path, OpenOptions{.app_tag = 1});
    store.close();
  }
  EXPECT_THROW(ResultStore(path, OpenOptions{.app_tag = 2}), ConfigError);
  EXPECT_NO_THROW(ResultStore(path, OpenOptions{.app_tag = 1}));
}

TEST(Store, ReadOnlyOpenRefusesPutAndMissingFile) {
  const std::string missing = temp_path("missing.hvcs");
  EXPECT_THROW(ResultStore(missing, OpenOptions{.read_only = true}),
               ConfigError);
  const std::string path = temp_path("read_only.hvcs");
  {
    ResultStore store(path, OpenOptions{});
    put_text(store, Key{1, 1}, "x");
    store.close();
  }
  ResultStore store(path, OpenOptions{.read_only = true});
  EXPECT_THROW((void)store.put(Key{2, 2}, "y", 1), PreconditionError);
}

TEST(Store, SecondWriterIsLockedOut) {
  const std::string path = temp_path("flock.hvcs");
  ResultStore first(path, OpenOptions{});
  // flock is per-open-file-description, so a second writable open in the
  // same process conflicts exactly like another process would.
  EXPECT_THROW(ResultStore(path, OpenOptions{}), ConfigError);
  // Readers are shut out while a writer is live too (exclusive lock).
  EXPECT_THROW(ResultStore(path, OpenOptions{.read_only = true}),
               ConfigError);
}

// ---------------------------------------------------------------------
// Dirty-flag discipline and open-time validation
// ---------------------------------------------------------------------

/// Snapshot of the file while a writer is live: header dirty, N records
/// committed — byte-wise what a SIGKILLed writer leaves behind.
[[nodiscard]] std::vector<char> dirty_snapshot(const std::string& path,
                                               std::size_t records) {
  std::vector<char> bytes;
  {
    ResultStore store(path, OpenOptions{});
    for (std::size_t i = 0; i < records; ++i) {
      const std::string text = "record " + std::to_string(i);
      EXPECT_TRUE(
          store.put(Key{i + 1, 2 * i + 1}, text.data(), text.size()));
    }
    store.sync();
    bytes = slurp(path);
  }  // destructor closes cleanly; the snapshot stays dirty
  return bytes;
}

TEST(Store, DirtyStoreNeedsExplicitRecovery) {
  const std::string path = temp_path("dirty.hvcs");
  const std::vector<char> dirty = dirty_snapshot(path, 3);
  spit(path, dirty);
  EXPECT_THROW(ResultStore(path, OpenOptions{}), ConfigError);

  ResultStore store(path, OpenOptions{.recover = true});
  EXPECT_EQ(store.records(), 3u);
  EXPECT_EQ(store.recovered_bytes(), 0u);  // no torn tail, just the flag
  EXPECT_EQ(*store.get(Key{1, 1}), payload_of("record 0"));
}

TEST(Store, TornTailIsTruncatedOnRecovery) {
  const std::string path = temp_path("torn.hvcs");
  std::vector<char> dirty = dirty_snapshot(path, 2);
  // A record header promising a payload that never made it to disk.
  dirty.insert(dirty.end(), 20, '\x5a');
  spit(path, dirty);

  {
    ResultStore store(path, OpenOptions{.recover = true});
    EXPECT_EQ(store.records(), 2u);
    EXPECT_EQ(store.recovered_bytes(), 20u);
    EXPECT_EQ(*store.get(Key{2, 3}), payload_of("record 1"));
    // Appending after recovery lands where the torn tail was cut.
    put_text(store, Key{100, 100}, "after recovery");
    store.close();
  }  // the writer's exclusive flock dies with it
  ResultStore reopened(path, OpenOptions{.read_only = true});
  EXPECT_EQ(reopened.records(), 3u);
}

TEST(Store, CleanFileWithTornTailIsCorruptNotRecoverable) {
  const std::string path = temp_path("clean_torn.hvcs");
  {
    ResultStore store(path, OpenOptions{});
    put_text(store, Key{1, 1}, "x");
    store.close();
  }
  std::vector<char> bytes = slurp(path);
  bytes.push_back('\x01');
  spit(path, bytes);
  // A cleanly-closed file can only grow a bad tail through external
  // corruption — recovery must not paper over that.
  EXPECT_THROW(ResultStore(path, OpenOptions{}), ConfigError);
  EXPECT_THROW(ResultStore(path, OpenOptions{.recover = true}), ConfigError);
  EXPECT_EQ(ResultStore::fsck(path).status, FsckStatus::kCorrupt);
}

TEST(Store, FlippedPayloadByteFailsGetReverification) {
  const std::string path = temp_path("bitrot.hvcs");
  {
    ResultStore store(path, OpenOptions{});
    put_text(store, Key{1, 1}, "precious bytes");
    store.close();
  }
  ResultStore store(path, OpenOptions{.read_only = true});
  // Corrupt one payload byte behind the open handle's back.
  std::vector<char> bytes = slurp(path);
  bytes[kStoreHeaderBytes + kRecordHeaderBytes] ^= 0x01;
  spit(path, bytes);
  EXPECT_THROW((void)store.get(Key{1, 1}), ConfigError);
}

// ---------------------------------------------------------------------
// fsck / repair
// ---------------------------------------------------------------------

TEST(Store, FsckClassifiesCleanDirtyAndCorrupt) {
  const std::string clean = temp_path("fsck_clean.hvcs");
  {
    ResultStore store(clean, OpenOptions{.app_tag = 9});
    put_text(store, Key{1, 1}, "x");
    store.close();
  }
  const FsckReport clean_report = ResultStore::fsck(clean);
  EXPECT_EQ(clean_report.status, FsckStatus::kClean);
  EXPECT_EQ(clean_report.records, 1u);
  EXPECT_EQ(clean_report.app_tag, 9u);
  EXPECT_FALSE(clean_report.dirty);

  const std::string dirty = temp_path("fsck_dirty.hvcs");
  std::vector<char> snapshot = dirty_snapshot(dirty, 2);
  snapshot.insert(snapshot.end(), 7, '\x33');  // torn tail on top
  spit(dirty, snapshot);
  const FsckReport dirty_report = ResultStore::fsck(dirty);
  EXPECT_EQ(dirty_report.status, FsckStatus::kRecoverable);
  EXPECT_TRUE(dirty_report.dirty);
  EXPECT_EQ(dirty_report.records, 2u);
  EXPECT_LT(dirty_report.valid_bytes, dirty_report.file_bytes);

  const std::string corrupt = temp_path("fsck_corrupt.hvcs");
  spit(corrupt, {'n', 'o', 'p', 'e', 0, 0, 0, 0});
  EXPECT_EQ(ResultStore::fsck(corrupt).status, FsckStatus::kCorrupt);
}

TEST(Store, RepairSalvagesThePrefixAndCleansTheFlag) {
  const std::string path = temp_path("repair.hvcs");
  std::vector<char> snapshot = dirty_snapshot(path, 3);
  snapshot.insert(snapshot.end(), 40, '\x77');
  spit(path, snapshot);

  const FsckReport repaired = ResultStore::repair(path);
  EXPECT_EQ(repaired.status, FsckStatus::kClean);
  EXPECT_EQ(repaired.records, 3u);
  EXPECT_EQ(repaired.file_bytes, repaired.valid_bytes);

  // The repaired file is a first-class clean store.
  EXPECT_EQ(ResultStore::fsck(path).status, FsckStatus::kClean);
  ResultStore store(path, OpenOptions{.read_only = true});
  EXPECT_EQ(store.records(), 3u);
  EXPECT_EQ(*store.get(Key{1, 1}), payload_of("record 0"));
}

// ---------------------------------------------------------------------
// Row codec and canonical keys
// ---------------------------------------------------------------------

TEST(StoreCodec, RowRoundTripIncludingEmptyAndCommaCells) {
  const std::vector<std::string> cells = {"1.25", "", "a,b\"c", "0"};
  const std::vector<std::uint8_t> payload = explore::encode_row(cells);
  EXPECT_EQ(explore::decode_row(payload.data(), payload.size()), cells);
}

TEST(StoreCodec, MalformedPayloadsThrow) {
  const std::vector<std::uint8_t> payload =
      explore::encode_row({"abc", "de"});
  // Truncated anywhere inside the frame.
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_THROW((void)explore::decode_row(payload.data(), cut),
                 ConfigError)
        << "cut at " << cut;
  }
  // Trailing garbage past the declared cells.
  std::vector<std::uint8_t> padded = payload;
  padded.push_back(0);
  EXPECT_THROW((void)explore::decode_row(padded.data(), padded.size()),
               ConfigError);
}

TEST(StoreCodec, KeysAreStableAndDistinguishPoints) {
  const explore::SweepSpec spec = explore::SweepSpec::parse(R"({
    "kind": "simulation",
    "seed": 5,
    "axes": {
      "scenario": ["A"],
      "design": ["baseline", "proposed"],
      "mode": ["ule"],
      "workload": ["adpcm_c"]
    }
  })");
  const std::vector<std::string> columns = {"point", "design", "epi"};
  const std::vector<explore::SweepPoint> points = explore::expand_points(spec);
  ASSERT_EQ(points.size(), 2u);
  const Key first = explore::result_key(spec, points[0], columns);
  EXPECT_EQ(first, explore::result_key(spec, points[0], columns));
  EXPECT_NE(first, explore::result_key(spec, points[1], columns));
  // The schema (column list) is part of the key: renaming a column must
  // miss rather than serve rows with the wrong shape.
  EXPECT_NE(first,
            explore::result_key(spec, points[0], {"point", "design", "cpi"}));
}

// ---------------------------------------------------------------------
// Engine differential: warm == cold == storeless
// ---------------------------------------------------------------------

constexpr const char* kSweepSpec = R"({
  "name": "store_differential",
  "kind": "simulation",
  "seed": 11,
  "axes": {
    "scenario": ["A"],
    "design": ["baseline", "proposed"],
    "mode": ["ule"],
    "workload": ["adpcm_c", "epic_d"]
  }
})";

TEST(StoreEngine, WarmSweepIsByteIdenticalToColdAndStoreless) {
  const explore::SweepSpec spec = explore::SweepSpec::parse(kSweepSpec);
  const std::string plain = explore::run_sweep(spec, 2).to_csv();

  const std::string path = temp_path("engine.hvcs");
  auto store = explore::open_result_store(path, /*resume=*/false);
  const explore::SweepResult cold = explore::run_sweep(spec, 2, store.get());
  EXPECT_EQ(cold.warm_points, 0u);
  EXPECT_EQ(cold.cold_points, spec.point_count());
  store->close();
  store.reset();

  auto reopened = explore::open_result_store(path, /*resume=*/false);
  const explore::SweepResult warm =
      explore::run_sweep(spec, 2, reopened.get());
  EXPECT_EQ(warm.warm_points, spec.point_count());
  EXPECT_EQ(warm.cold_points, 0u);

  EXPECT_EQ(cold.to_csv(), plain);
  EXPECT_EQ(warm.to_csv(), plain);
}

TEST(StoreEngine, PartialStoreServesItsPointsAndComputesTheRest) {
  // Run a 2-point slice of the sweep into the store, then the full
  // 4-point sweep: the 2 shared points must come back warm. Keys ignore
  // point indices only under a pinned system_seed (otherwise the
  // per-point derived seed — correctly — makes shifted points distinct),
  // so this spec pins one.
  constexpr const char* kPinnedSpec = R"({
    "name": "store_partial",
    "kind": "simulation",
    "seed": 11,
    "system_seed": 1234,
    "axes": {
      "scenario": ["A"],
      "design": ["baseline", "proposed"],
      "mode": ["ule"],
      "workload": ["adpcm_c", "epic_d"]
    }
  })";
  const std::string path = temp_path("partial.hvcs");
  explore::SweepSpec slice = explore::SweepSpec::parse(kPinnedSpec);
  slice.workloads = {"adpcm_c"};
  {
    auto store = explore::open_result_store(path, false);
    (void)explore::run_sweep(slice, 1, store.get());
    store->close();
  }
  const explore::SweepSpec full = explore::SweepSpec::parse(kPinnedSpec);
  auto store = explore::open_result_store(path, false);
  const explore::SweepResult result =
      explore::run_sweep(full, 2, store.get());
  EXPECT_EQ(result.warm_points, 2u);
  EXPECT_EQ(result.cold_points, 2u);
  EXPECT_EQ(result.to_csv(), explore::run_sweep(full, 2).to_csv());
}

// ---------------------------------------------------------------------
// Concurrency: N threads, one store
// ---------------------------------------------------------------------

TEST(StoreConcurrency, RacingPutsCommitEveryKeyExactlyOnce) {
  const std::string path = temp_path("hammer.hvcs");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 200;
  std::atomic<int> wins{0};
  {
    ResultStore store(path, OpenOptions{});
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      // Every thread tries every key: exactly one committer may win each.
      threads.emplace_back([&store, &wins, t] {
        for (std::uint64_t k = 0; k < kKeys; ++k) {
          const std::string text = "key " + std::to_string(k);
          if (store.put(Key{k, ~k}, text.data(), text.size())) {
            wins.fetch_add(1, std::memory_order_relaxed);
          }
          (void)t;
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    EXPECT_EQ(store.records(), kKeys);
    store.close();
  }
  EXPECT_EQ(wins.load(), static_cast<int>(kKeys));
  ResultStore store(path, OpenOptions{.read_only = true});
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(*store.get(Key{k, ~k}), payload_of("key " + std::to_string(k)))
        << "key " << k;
  }
}

TEST(StoreConcurrency, SharedStoreSweepMatchesSingleThreadByteForByte) {
  const explore::SweepSpec spec = explore::SweepSpec::parse(kSweepSpec);

  const std::string serial_path = temp_path("serial.hvcs");
  std::string serial_csv;
  {
    auto store = explore::open_result_store(serial_path, false);
    serial_csv = explore::run_sweep(spec, 1, store.get()).to_csv();
    store->close();
  }
  const std::string threaded_path = temp_path("threaded.hvcs");
  std::string threaded_csv;
  {
    auto store = explore::open_result_store(threaded_path, false);
    threaded_csv = explore::run_sweep(spec, 8, store.get()).to_csv();
    store->close();
  }
  EXPECT_EQ(serial_csv, threaded_csv);

  // The stores hold identical record sets (commit order may differ, so
  // compare through the index, not the raw bytes).
  ResultStore serial(serial_path, OpenOptions{.read_only = true,
                                              .app_tag =
                                                  explore::result_store_app_tag()});
  ResultStore threaded(threaded_path,
                       OpenOptions{.read_only = true,
                                   .app_tag = explore::result_store_app_tag()});
  ASSERT_EQ(serial.records(), threaded.records());
  const std::vector<std::string> columns =
      explore::run_sweep(spec, 1).columns;
  for (const explore::SweepPoint& point : explore::expand_points(spec)) {
    const Key key = explore::result_key(spec, point, columns);
    const auto a = serial.get(key);
    const auto b = threaded.get(key);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b) << "point " << point.index;
  }
}

// ---------------------------------------------------------------------------
// Follow mode: lock-free observation of a live writer's store (what
// `hvc_explore store info` uses while a serve daemon holds the flock).

TEST(StoreFollowTest, ObservesALiveWriterAndRefreshPicksUpNewRecords) {
  const std::string path = temp_path("follow.hvcs");
  ResultStore writer(path, OpenOptions{.app_tag = 7});
  put_text(writer, Key{1, 2}, "first");

  // The writer holds the flock and the dirty flag is set — a normal
  // read-only open refuses, follow mode reads the committed prefix.
  ResultStore follower(
      path, OpenOptions{.read_only = true, .app_tag = 7, .follow = true});
  EXPECT_EQ(follower.records(), 1u);
  const auto first = follower.get(Key{1, 2});
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(std::string(first->begin(), first->end()), "first");

  // Records committed after the open appear via refresh(), and only
  // once.
  put_text(writer, Key{3, 4}, "second");
  put_text(writer, Key{5, 6}, "third");
  EXPECT_EQ(follower.refresh(), 2u);
  EXPECT_EQ(follower.records(), 3u);
  EXPECT_EQ(follower.refresh(), 0u);

  writer.close();
}

TEST(StoreFollowTest, FollowOpenOfAnEmptyFileWaitsForTheHeader) {
  // A writer that has created the file but not yet written the header
  // (or any record) is a legal follow target: zero records now, data
  // after refresh().
  const std::string path = temp_path("follow_empty.hvcs");
  spit(path, {});  // zero-byte file, as right after O_CREAT
  ResultStore follower(
      path, OpenOptions{.read_only = true, .app_tag = 7, .follow = true});
  EXPECT_EQ(follower.records(), 0u);
  EXPECT_EQ(follower.refresh(), 0u);

  // The writer arrives, writes the header and a record into the same
  // file; the follower must validate the header on its next refresh.
  {
    ResultStore writer(path, OpenOptions{.app_tag = 7});
    put_text(writer, Key{9, 9}, "late");
    EXPECT_EQ(follower.refresh(), 1u);
    EXPECT_TRUE(follower.get(Key{9, 9}).has_value());
    writer.close();
  }
}

TEST(StoreFollowTest, FollowExcludesRecoverAndChecksAppTag) {
  const std::string path = temp_path("follow_excl.hvcs");
  {
    ResultStore store(path, OpenOptions{.app_tag = 7});
    store.close();
  }
  EXPECT_THROW(ResultStore(path, OpenOptions{.recover = true,
                                             .app_tag = 7,
                                             .follow = true}),
               PreconditionError);
  EXPECT_THROW(ResultStore(path, OpenOptions{.read_only = true,
                                             .app_tag = 8,
                                             .follow = true}),
               StoreCorruptError);
}

// ---------------------------------------------------------------------------
// The open-failure taxonomy the CLI maps to exit codes: recoverable
// (writer died; --resume / --repair fix it) vs corrupt (exit 2).

TEST(StoreErrorTaxonomyTest, DirtyStoreThrowsRecoverable) {
  const std::string path = temp_path("taxonomy_dirty.hvcs");
  std::vector<char> dirty_image;
  {
    ResultStore store(path, OpenOptions{});
    put_text(store, Key{1, 1}, "x");
    // Snapshot while the dirty flag is still set, like a killed writer.
    dirty_image = slurp(path);
    store.close();
  }
  spit(path, dirty_image);
  EXPECT_THROW(ResultStore(path, OpenOptions{}), StoreRecoverableError);
  EXPECT_THROW(ResultStore(path, OpenOptions{.read_only = true}),
               StoreRecoverableError);
  // Both are ConfigErrors too, so pre-taxonomy handlers keep working.
  EXPECT_THROW(ResultStore(path, OpenOptions{}), ConfigError);
}

TEST(StoreErrorTaxonomyTest, BadMagicThrowsCorrupt) {
  const std::string path = temp_path("taxonomy_magic.hvcs");
  {
    ResultStore store(path, OpenOptions{});
    store.close();
  }
  std::vector<char> bytes = slurp(path);
  bytes[0] = 'X';
  spit(path, bytes);
  EXPECT_THROW(ResultStore(path, OpenOptions{}), StoreCorruptError);
}

}  // namespace
}  // namespace hvc::store
