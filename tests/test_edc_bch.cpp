// DEC-TED (shortened BCH t=2 + parity) tests, including exhaustive single
// and double error sweeps and triple-error detection.
#include <gtest/gtest.h>

#include "hvc/common/error.hpp"

#include "hvc/common/rng.hpp"
#include "hvc/edc/bch.hpp"
#include "hvc/edc/checker.hpp"
#include "hvc/edc/poly2.hpp"

namespace hvc::edc {
namespace {

TEST(Poly2, Arithmetic) {
  const Poly2 a(0b1011);        // x^3 + x + 1
  const Poly2 b(0b110);         // x^2 + x
  EXPECT_EQ((a + a), Poly2::zero());
  EXPECT_EQ((a + b), Poly2(0b1101));
  const Poly2 product = a * b;  // (x^3+x+1)(x^2+x)
  // = x^5 + x^4 + x^3 + x^2 + x^3 + x^2... compute: x^5+x^4 + x^3+x^2 + x^2+x
  // = x^5 + x^4 + x^3 + x
  EXPECT_EQ(product, Poly2(0b111010));
}

TEST(Poly2, DivMod) {
  const Poly2 dividend(0b111010);
  const Poly2 divisor(0b1011);
  const auto dm = dividend.divmod(divisor);
  EXPECT_EQ(dm.quotient * divisor + dm.remainder, dividend);
  EXPECT_LT(dm.remainder.degree(), divisor.degree());
  EXPECT_EQ(dividend.mod(divisor), dm.remainder);
}

TEST(Poly2, DivisionByZeroThrows) {
  EXPECT_THROW((void)Poly2(0b1).divmod(Poly2::zero()), PreconditionError);
}

TEST(Poly2, ToString) {
  EXPECT_EQ(Poly2(0b1000011).to_string(), "x^6 + x + 1");
  EXPECT_EQ(Poly2::zero().to_string(), "0");
  EXPECT_EQ(Poly2::one().to_string(), "1");
}

TEST(BchDected, MinimalPolynomials) {
  const GF2m field(6);
  const Poly2 m1 = BchDected::minimal_polynomial(field, 1);
  EXPECT_EQ(m1, Poly2(0b1000011));  // the primitive polynomial itself
  const Poly2 m3 = BchDected::minimal_polynomial(field, 3);
  EXPECT_EQ(m3.degree(), 6);
  // m3 must divide x^63 + 1.
  Poly2 x63(std::vector<std::uint8_t>(64, 0));
  {
    std::vector<std::uint8_t> coeffs(64, 0);
    coeffs[0] = 1;
    coeffs[63] = 1;
    x63 = Poly2(coeffs);
  }
  EXPECT_TRUE(x63.mod(m3).is_zero());
  EXPECT_TRUE(x63.mod(m1).is_zero());
}

TEST(BchDected, PaperWidths) {
  const BchDected data(32);
  EXPECT_EQ(data.check_bits(), 13u);  // 12 BCH + 1 parity (paper: 13)
  EXPECT_EQ(data.codeword_bits(), 45u);
  EXPECT_EQ(data.name(), "DECTED(45,32)");

  const BchDected tag(26);
  EXPECT_EQ(tag.check_bits(), 13u);
  EXPECT_EQ(tag.codeword_bits(), 39u);
}

TEST(BchDected, GeneratorDegree12) {
  const BchDected codec(32);
  EXPECT_EQ(codec.generator().degree(), 12);
}

TEST(BchDected, TooWideForForcedFieldThrows) {
  EXPECT_THROW(BchDected(52, 6), PreconditionError);  // 52+12 > 63
}

TEST(BchDected, FieldDegreeAutoSelection) {
  EXPECT_EQ(BchDected::min_field_degree(32), 6u);
  EXPECT_EQ(BchDected::min_field_degree(51), 6u);
  EXPECT_EQ(BchDected::min_field_degree(52), 7u);
  EXPECT_EQ(BchDected::min_field_degree(113), 7u);
  EXPECT_EQ(BchDected::min_field_degree(128), 8u);
  EXPECT_EQ(BchDected::min_field_degree(256), 9u);
}

TEST(BchDected, LineGranularityCode) {
  // Whole 256-bit cache line: GF(2^9), 18 BCH check bits + parity = 19.
  const BchDected codec(256);
  EXPECT_EQ(codec.check_bits(), 19u);
  EXPECT_EQ(codec.codeword_bits(), 275u);
  EXPECT_EQ(codec.generator().degree(), 18);
}

class BchWideWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BchWideWidths, SingleAndDoubleErrorsCorrected) {
  const BchDected codec(GetParam());
  Rng rng(21);
  const CheckReport singles = check_all_single_errors(codec, rng, 2);
  EXPECT_EQ(singles.correct_decodes, singles.trials);
  const CheckReport doubles = check_all_double_errors(codec, rng, 1);
  EXPECT_EQ(doubles.correct_decodes, doubles.trials);
  EXPECT_TRUE(doubles.perfect());
}

TEST_P(BchWideWidths, TripleErrorsDetected) {
  const BchDected codec(GetParam());
  Rng rng(22);
  const CheckReport report = check_random_errors(codec, rng, 3, 800);
  EXPECT_EQ(report.detected, report.trials);
}

INSTANTIATE_TEST_SUITE_P(WideWidths, BchWideWidths,
                         ::testing::Values(64, 128, 256));

TEST(BchDected, CleanRoundTrip) {
  const BchDected codec(32);
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    BitVec data(32);
    for (std::size_t i = 0; i < 32; ++i) {
      data.set(i, rng.bernoulli(0.5));
    }
    const DecodeResult result = codec.decode(codec.encode(data));
    EXPECT_EQ(result.status, DecodeStatus::kClean);
    EXPECT_EQ(result.data, data);
  }
}

class BchWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BchWidths, AllSingleErrorsCorrected) {
  const BchDected codec(GetParam());
  Rng rng(2);
  const CheckReport report = check_all_single_errors(codec, rng, 6);
  EXPECT_EQ(report.correct_decodes, report.trials);
  EXPECT_TRUE(report.perfect());
}

TEST_P(BchWidths, AllDoubleErrorsCorrected) {
  const BchDected codec(GetParam());
  Rng rng(3);
  const CheckReport report = check_all_double_errors(codec, rng, 2);
  EXPECT_EQ(report.correct_decodes, report.trials);
  EXPECT_TRUE(report.perfect());
}

TEST_P(BchWidths, RandomTripleErrorsDetectedOrHarmless) {
  const BchDected codec(GetParam());
  Rng rng(4);
  const CheckReport report = check_random_errors(codec, rng, 3, 4000);
  // d >= 6 guarantees every weight-3 error is flagged, never miscorrected.
  EXPECT_EQ(report.detected, report.trials);
  EXPECT_EQ(report.miscorrections, 0u);
  EXPECT_EQ(report.missed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Widths, BchWidths, ::testing::Values(26, 32, 40));

TEST(BchDected, ParityBitOnlyError) {
  const BchDected codec(32);
  const BitVec data = BitVec::from_word(0xA5A5A5A5, 32);
  BitVec codeword = codec.encode(data);
  codeword.flip(codeword.size() - 1);
  const DecodeResult result = codec.decode(codeword);
  EXPECT_EQ(result.status, DecodeStatus::kCorrected);
  EXPECT_EQ(result.data, data);
}

TEST(BchDected, DataPlusParityError) {
  const BchDected codec(32);
  const BitVec data = BitVec::from_word(0x0F0F0F0F, 32);
  BitVec codeword = codec.encode(data);
  codeword.flip(5);
  codeword.flip(codeword.size() - 1);
  const DecodeResult result = codec.decode(codeword);
  EXPECT_EQ(result.status, DecodeStatus::kCorrected);
  EXPECT_EQ(result.data, data);
}

TEST(BchDected, MinimumDistanceAtLeastSix) {
  const BchDected codec(32);
  Rng rng(5);
  EXPECT_GE(sampled_min_distance(codec, rng, 2000), 6u);
}

TEST(BchDected, SystematicLayout) {
  const BchDected codec(32);
  const BitVec data = BitVec::from_word(0x13572468, 32);
  EXPECT_EQ(codec.encode(data).slice(0, 32), data);
}

TEST(BchDected, FourErrorsNeverSilentlyAccepted) {
  // Beyond guaranteed capability: 4-bit errors may be miscorrected (that
  // is information-theoretically unavoidable for d=6), but must never be
  // reported as kClean with wrong data.
  const BchDected codec(32);
  Rng rng(6);
  const CheckReport report = check_random_errors(codec, rng, 4, 3000);
  EXPECT_EQ(report.missed, 0u);
}

}  // namespace
}  // namespace hvc::edc
