// Unit tests for BitVec.
#include <gtest/gtest.h>

#include "hvc/common/bitvec.hpp"
#include "hvc/common/error.hpp"
#include "hvc/common/rng.hpp"

namespace hvc {
namespace {

TEST(BitVec, ConstructZeroed) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.popcount(), 0u);
  EXPECT_TRUE(v.none());
}

TEST(BitVec, ConstructFilled) {
  BitVec v(70, true);
  EXPECT_EQ(v.popcount(), 70u);
  EXPECT_TRUE(v.get(69));
}

TEST(BitVec, SetGetFlip) {
  BitVec v(100);
  v.set(63);
  v.set(64);
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_FALSE(v.get(65));
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  v.set(63, false);
  EXPECT_TRUE(v.none());
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec v(10);
  EXPECT_THROW((void)v.get(10), PreconditionError);
  EXPECT_THROW(v.set(10), PreconditionError);
  EXPECT_THROW(v.flip(10), PreconditionError);
}

TEST(BitVec, FromWordRoundTrip) {
  const BitVec v = BitVec::from_word(0xDEADBEEF, 32);
  EXPECT_EQ(v.to_word(), 0xDEADBEEFu);
  EXPECT_EQ(v.size(), 32u);
}

TEST(BitVec, FromWordMasksHighBits) {
  const BitVec v = BitVec::from_word(0xFF, 4);
  EXPECT_EQ(v.to_word(), 0xFu);
}

TEST(BitVec, StringRoundTrip) {
  const std::string s = "1011001110001111";
  const BitVec v = BitVec::from_string(s);
  EXPECT_EQ(v.to_string(), s);
  EXPECT_TRUE(v.get(0));   // LSB = last char
  EXPECT_TRUE(v.get(15));  // MSB = first char
}

TEST(BitVec, XorAndOr) {
  const BitVec a = BitVec::from_word(0b1100, 4);
  const BitVec b = BitVec::from_word(0b1010, 4);
  EXPECT_EQ((a ^ b).to_word(), 0b0110u);
  EXPECT_EQ((a & b).to_word(), 0b1000u);
  EXPECT_EQ((a | b).to_word(), 0b1110u);
}

TEST(BitVec, SizeMismatchThrows) {
  BitVec a(8), b(9);
  EXPECT_THROW(a ^= b, PreconditionError);
}

TEST(BitVec, Parity) {
  EXPECT_FALSE(BitVec::from_word(0b0, 4).parity());
  EXPECT_TRUE(BitVec::from_word(0b1, 4).parity());
  EXPECT_FALSE(BitVec::from_word(0b11, 4).parity());
  BitVec wide(200);
  wide.set(0);
  wide.set(199);
  EXPECT_FALSE(wide.parity());
  wide.set(100);
  EXPECT_TRUE(wide.parity());
}

TEST(BitVec, Dot) {
  const BitVec a = BitVec::from_word(0b1101, 4);
  const BitVec b = BitVec::from_word(0b1011, 4);
  // overlap = 0b1001 -> popcount 2 -> parity 0
  EXPECT_FALSE(a.dot(b));
  const BitVec c = BitVec::from_word(0b0001, 4);
  EXPECT_TRUE(a.dot(c));
}

TEST(BitVec, SliceAndConcat) {
  const BitVec v = BitVec::from_word(0b11010110, 8);
  const BitVec lo = v.slice(0, 4);
  const BitVec hi = v.slice(4, 4);
  EXPECT_EQ(lo.to_word(), 0b0110u);
  EXPECT_EQ(hi.to_word(), 0b1101u);
  EXPECT_EQ(lo.concat(hi), v);
}

TEST(BitVec, SliceOutOfRangeThrows) {
  const BitVec v(8);
  EXPECT_THROW((void)v.slice(5, 4), PreconditionError);
}

TEST(BitVec, SetBits) {
  BitVec v(130);
  v.set(0);
  v.set(64);
  v.set(129);
  const auto bits = v.set_bits();
  ASSERT_EQ(bits.size(), 3u);
  EXPECT_EQ(bits[0], 0u);
  EXPECT_EQ(bits[1], 64u);
  EXPECT_EQ(bits[2], 129u);
}

TEST(BitVec, ResizeGrowZero) {
  BitVec v(4, true);
  v.resize(8);
  EXPECT_EQ(v.popcount(), 4u);
  EXPECT_FALSE(v.get(7));
}

TEST(BitVec, ResizeGrowOnes) {
  BitVec v(4);
  v.resize(70, true);
  EXPECT_EQ(v.popcount(), 66u);
  EXPECT_FALSE(v.get(0));
  EXPECT_TRUE(v.get(69));
}

TEST(BitVec, EqualityAndClear) {
  BitVec a = BitVec::from_word(0xAB, 8);
  BitVec b = BitVec::from_word(0xAB, 8);
  EXPECT_EQ(a, b);
  b.flip(3);
  EXPECT_NE(a, b);
  a.clear();
  EXPECT_TRUE(a.none());
  EXPECT_EQ(a.size(), 8u);
}

TEST(BitVec, ExtractWord) {
  BitVec v(200);
  v.set(3);
  v.set(64);
  v.set(70);
  v.set(130);
  EXPECT_EQ(v.extract_word(0, 8), 0b1000u);
  EXPECT_EQ(v.extract_word(3, 4), 1u);
  // Word-boundary-straddling range.
  EXPECT_EQ(v.extract_word(60, 16), (1ULL << 4) | (1ULL << 10));
  EXPECT_EQ(v.extract_word(130, 1), 1u);
  EXPECT_EQ(v.extract_word(136, 64), 0u);
  EXPECT_EQ(v.extract_word(64, 64), (1ULL << 0) | (1ULL << 6));
  EXPECT_EQ(v.extract_word(10, 0), 0u);
}

TEST(BitVec, ExtractWordMatchesGet) {
  Rng rng(17);
  BitVec v(300);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v.set(i, rng.bernoulli(0.4));
  }
  for (int trial = 0; trial < 200; ++trial) {
    const auto count = static_cast<std::size_t>(rng.below(64)) + 1;
    const auto pos = static_cast<std::size_t>(rng.below(v.size() - count));
    const std::uint64_t word = v.extract_word(pos, count);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ((word >> i) & 1ULL, v.get(pos + i) ? 1ULL : 0ULL);
    }
    if (count < 64) {
      EXPECT_EQ(word >> count, 0ULL);  // no stray high bits
    }
  }
}

TEST(BitVec, ExtractWordOutOfRangeThrows) {
  const BitVec v(100);
  EXPECT_THROW((void)v.extract_word(40, 65), PreconditionError);
  EXPECT_THROW((void)v.extract_word(90, 11), PreconditionError);
}

TEST(BitVec, UncheckedAccessorsMatchChecked) {
  Rng rng(19);
  BitVec a(150), b(150);
  for (int trial = 0; trial < 500; ++trial) {
    const auto i = static_cast<std::size_t>(rng.below(150));
    const bool value = rng.bernoulli(0.5);
    a.set(i, value);
    b.set_unchecked(i, value);
    EXPECT_EQ(a.get(i), b.get_unchecked(i));
  }
  EXPECT_EQ(a, b);
}

TEST(BitVec, PopcountRandomized) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    BitVec v(257);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (rng.bernoulli(0.3)) {
        if (!v.get(i)) {
          ++expected;
        }
        v.set(i);
      }
    }
    EXPECT_EQ(v.popcount(), expected);
  }
}

}  // namespace
}  // namespace hvc
