// Unit tests for the SI formatting helpers.
#include <gtest/gtest.h>

#include "hvc/common/units.hpp"

namespace hvc {
namespace {

TEST(Units, SiFormatPico) {
  EXPECT_EQ(si_format(1.3e-12, "J"), "1.300 pJ");
}

TEST(Units, SiFormatUnity) {
  EXPECT_EQ(si_format(2.5, "W"), "2.500 W");
}

TEST(Units, SiFormatKilo) {
  EXPECT_EQ(si_format(1500.0, "Hz", 1), "1.5 kHz");
}

TEST(Units, SiFormatZero) {
  EXPECT_EQ(si_format(0.0, "J"), "0.000 J");
}

TEST(Units, SiFormatNegative) {
  EXPECT_EQ(si_format(-3.0e-3, "V"), "-3.000 mV");
}

TEST(Units, PercentDelta) {
  EXPECT_EQ(percent_delta(0.86, 1.0), "-14.0%");
  EXPECT_EQ(percent_delta(1.03, 1.0), "+3.0%");
  EXPECT_EQ(percent_delta(1.0, 0.0), "n/a");
}

TEST(Units, Percent) {
  EXPECT_EQ(percent(0.423), "42.3%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(Units, Padding) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace hvc
