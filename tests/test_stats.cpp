// Unit tests for RunningStat, Histogram and Breakdown.
#include <gtest/gtest.h>

#include <cmath>

#include "hvc/common/error.hpp"
#include "hvc/common/rng.hpp"
#include "hvc/common/stats.hpp"

namespace hvc {
namespace {

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  Rng rng(1);
  RunningStat all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStat, StderrShrinks) {
  Rng rng(2);
  RunningStat small, large;
  for (int i = 0; i < 100; ++i) {
    small.add(rng.normal());
  }
  for (int i = 0; i < 10000; ++i) {
    large.add(rng.normal());
  }
  EXPECT_GT(small.stderr_mean(), large.stderr_mean());
}

TEST(Histogram, Basics) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) {
    h.add(static_cast<double>(i) + 0.5);
  }
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.bin_count(b), 1u);
  }
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, OutOfRangeClamped) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, QuantileMedian) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) {
    h.add(static_cast<double>(i % 100));
  }
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 10), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

TEST(Breakdown, AddAndTotal) {
  Breakdown b;
  b.add("x", 1.5);
  b.add("y", 2.5);
  b.add("x", 1.0);
  EXPECT_DOUBLE_EQ(b.get("x"), 2.5);
  EXPECT_DOUBLE_EQ(b.get("y"), 2.5);
  EXPECT_DOUBLE_EQ(b.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(b.total(), 5.0);
}

TEST(Breakdown, MergeAndScale) {
  Breakdown a, b;
  a.add("x", 1.0);
  b.add("x", 2.0);
  b.add("y", 4.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
  a.scale(0.5);
  EXPECT_DOUBLE_EQ(a.get("x"), 1.5);
  EXPECT_DOUBLE_EQ(a.get("y"), 2.0);
}

TEST(Breakdown, NormalizedBy) {
  Breakdown b;
  b.add("x", 10.0);
  const Breakdown n = b.normalized_by(5.0);
  EXPECT_DOUBLE_EQ(n.get("x"), 2.0);
  EXPECT_DOUBLE_EQ(b.get("x"), 10.0);  // original untouched
  const Breakdown z = b.normalized_by(0.0);
  EXPECT_DOUBLE_EQ(z.get("x"), 10.0);  // divide-by-zero guarded
}

}  // namespace
}  // namespace hvc
