// CSV table / deterministic formatting tests.
#include <gtest/gtest.h>

#include <cstdio>

#include "hvc/common/error.hpp"
#include "hvc/common/io.hpp"

namespace hvc {
namespace {

TEST(FormatNumber, Deterministic) {
  EXPECT_EQ(format_number(1.0), "1");
  EXPECT_EQ(format_number(0.35), "0.35");
  EXPECT_EQ(format_number(1.22e-6), "1.22e-06");
  EXPECT_EQ(format_number(std::uint64_t{18446744073709551615ULL}),
            "18446744073709551615");
}

TEST(CsvTable, WritesHeaderAndRows) {
  CsvTable table({"a", "b"});
  table.add_row({"1", "x"});
  table.add_row({"2", "y"});
  EXPECT_EQ(table.to_csv(), "a,b\n1,x\n2,y\n");
  EXPECT_EQ(table.rows(), 2u);
}

TEST(CsvTable, QuotesSpecialFields) {
  CsvTable table({"v"});
  table.add_row({"has,comma"});
  table.add_row({"has\"quote"});
  table.add_row({"has\nnewline"});
  EXPECT_EQ(table.to_csv(),
            "v\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(CsvTable, RejectsMismatchedRows) {
  CsvTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), PreconditionError);
  EXPECT_THROW(CsvTable({}), PreconditionError);
}

TEST(TextFile, RoundTripsAndReportsMissing) {
  const std::string path = ::testing::TempDir() + "hvc_io_test.txt";
  write_text_file(path, "line1\nline2\n");
  EXPECT_EQ(read_text_file(path), "line1\nline2\n");
  std::remove(path.c_str());
  EXPECT_THROW((void)read_text_file(path), ConfigError);
}

}  // namespace
}  // namespace hvc
