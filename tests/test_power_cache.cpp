// Cache-level energy model tests: way gating, per-mode EDC, hybrid ways.
#include <gtest/gtest.h>

#include "hvc/common/error.hpp"

#include "hvc/power/cache_power.hpp"

namespace hvc::power {
namespace {

[[nodiscard]] std::vector<WayPlan> hybrid_plan(bool proposed, bool scenario_b) {
  std::vector<WayPlan> ways(8);
  const auto hp_prot =
      scenario_b ? edc::Protection::kSecded : edc::Protection::kNone;
  for (std::size_t w = 0; w < 7; ++w) {
    ways[w].cell = {tech::CellKind::k6T, 2.0};
    ways[w].hp_protection = hp_prot;
    ways[w].ule_protection = hp_prot;
  }
  ways[7].ule_way = true;
  if (proposed) {
    ways[7].cell = {tech::CellKind::k8T, 2.6};
    ways[7].hp_protection = hp_prot;
    ways[7].ule_protection =
        scenario_b ? edc::Protection::kDected : edc::Protection::kSecded;
  } else {
    ways[7].cell = {tech::CellKind::k10T, 5.0};
    ways[7].hp_protection = hp_prot;
    ways[7].ule_protection = hp_prot;
  }
  return ways;
}

const CacheOrg kOrg{};  // 8KB, 8-way, 32B lines

TEST(CacheOrgTest, DerivedGeometry) {
  EXPECT_EQ(kOrg.lines(), 256u);
  EXPECT_EQ(kOrg.sets(), 32u);
  EXPECT_EQ(kOrg.lines_per_way(), 32u);
  EXPECT_EQ(kOrg.words_per_line(), 8u);
}

TEST(WayPlanTest, StoredProtectionIsStrongest) {
  WayPlan way;
  way.hp_protection = edc::Protection::kNone;
  way.ule_protection = edc::Protection::kSecded;
  EXPECT_EQ(way.stored_protection(), edc::Protection::kSecded);
  way.hp_protection = edc::Protection::kSecded;
  way.ule_protection = edc::Protection::kDected;
  EXPECT_EQ(way.stored_protection(), edc::Protection::kDected);
}

TEST(CacheEnergyModel, AllWaysActiveAtHp) {
  const CacheEnergyModel model(kOrg, hybrid_plan(true, false),
                               {Mode::kHp, 1.0, 1e9});
  for (std::size_t w = 0; w < 8; ++w) {
    EXPECT_TRUE(model.way_active(w));
  }
}

TEST(CacheEnergyModel, OnlyUleWaysActiveAtUle) {
  const CacheEnergyModel model(kOrg, hybrid_plan(true, false),
                               {Mode::kUle, 0.35, 5e6});
  for (std::size_t w = 0; w < 7; ++w) {
    EXPECT_FALSE(model.way_active(w));
  }
  EXPECT_TRUE(model.way_active(7));
}

TEST(CacheEnergyModel, UleLookupMuchCheaperThanHp) {
  // At ULE only one way is read instead of eight.
  const auto ways = hybrid_plan(true, false);
  const CacheEnergyModel hp(kOrg, ways, {Mode::kHp, 1.0, 1e9});
  const CacheEnergyModel ule(kOrg, ways, {Mode::kUle, 0.35, 5e6});
  EXPECT_LT(ule.lookup_energy(), hp.lookup_energy() / 4.0);
}

TEST(CacheEnergyModel, GatingCutsLeakage) {
  const auto ways = hybrid_plan(false, false);
  const CacheEnergyModel hp(kOrg, ways, {Mode::kHp, 1.0, 1e9});
  const CacheEnergyModel ule(kOrg, ways, {Mode::kUle, 0.35, 5e6});
  // ULE leakage: one way at 350mV + residuals; far below 8 ways at 1V.
  EXPECT_LT(ule.leakage_power(), hp.leakage_power() / 5.0);
}

TEST(CacheEnergyModel, EdcOnlyActiveAtUleInScenarioA) {
  const auto ways = hybrid_plan(true, false);
  const CacheEnergyModel hp(kOrg, ways, {Mode::kHp, 1.0, 1e9});
  const CacheEnergyModel ule(kOrg, ways, {Mode::kUle, 0.35, 5e6});
  EXPECT_FALSE(hp.edc_active());
  EXPECT_TRUE(ule.edc_active());
  EXPECT_EQ(hp.edc_decode_energy(7), 0.0);
  EXPECT_GT(ule.edc_decode_energy(7), 0.0);
  EXPECT_GT(ule.edc_encode_energy(7), 0.0);
}

TEST(CacheEnergyModel, ScenarioBEdcActiveInBothModes) {
  const auto ways = hybrid_plan(true, true);
  const CacheEnergyModel hp(kOrg, ways, {Mode::kHp, 1.0, 1e9});
  const CacheEnergyModel ule(kOrg, ways, {Mode::kUle, 0.35, 5e6});
  EXPECT_TRUE(hp.edc_active());   // SECDED everywhere at HP
  EXPECT_TRUE(ule.edc_active());  // DECTED on the ULE way
  // DECTED decode costs more than SECDED decode.
  EXPECT_GT(ule.edc_decode_energy(7) / ule.edc_encode_energy(7), 1.0);
}

TEST(CacheEnergyModel, ProposedCheaperThanBaselineAtHp) {
  // Scenario A at HP: proposed = 6T+8T (SECDED off) vs baseline 6T+10T.
  const CacheEnergyModel base(kOrg, hybrid_plan(false, false),
                              {Mode::kHp, 1.0, 1e9});
  const CacheEnergyModel prop(kOrg, hybrid_plan(true, false),
                              {Mode::kHp, 1.0, 1e9});
  EXPECT_LT(prop.lookup_energy(), base.lookup_energy());
  EXPECT_LT(prop.leakage_power(), base.leakage_power());
  EXPECT_LT(prop.total_area_um2(), base.total_area_um2());
}

TEST(CacheEnergyModel, ProposedCheaperThanBaselineAtUle) {
  const CacheEnergyModel base(kOrg, hybrid_plan(false, false),
                              {Mode::kUle, 0.35, 5e6});
  const CacheEnergyModel prop(kOrg, hybrid_plan(true, false),
                              {Mode::kUle, 0.35, 5e6});
  EXPECT_LT(prop.lookup_energy() + prop.edc_decode_energy(7),
            base.lookup_energy());
  EXPECT_LT(prop.leakage_power(), base.leakage_power());
}

TEST(CacheEnergyModel, LineOperationsScaleWithWords) {
  const CacheEnergyModel model(kOrg, hybrid_plan(true, false),
                               {Mode::kUle, 0.35, 5e6});
  // A line fill writes 8 words + 1 tag: more than 8 word writes, less
  // than 10 (the tag array is smaller than the data array).
  EXPECT_GT(model.line_fill_energy(7), 8.0 * model.word_write_energy(7));
  EXPECT_LT(model.line_fill_energy(7), 10.0 * model.word_write_energy(7));
  // A line read (8 data words) costs less than 8 full lookups (which also
  // read the tag) of the single active way.
  EXPECT_GT(model.line_read_energy(7), 0.0);
  EXPECT_LT(model.line_read_energy(7), 8.0 * model.lookup_energy());
}

TEST(CacheEnergyModel, EdcLatencyWithinCycle) {
  // Paper IV-A3 charges one extra cycle for encode/decode: the circuit
  // delay must fit a cycle in each mode.
  const auto ways = hybrid_plan(true, true);
  const CacheEnergyModel hp(kOrg, ways, {Mode::kHp, 1.0, 1e9});
  const CacheEnergyModel ule(kOrg, ways, {Mode::kUle, 0.35, 5e6});
  EXPECT_LT(hp.edc_delay(), 1.0 / 1e9);
  EXPECT_LT(ule.edc_delay(), 1.0 / 5e6);
}

TEST(CacheEnergyModel, ConfigValidation) {
  auto ways = hybrid_plan(true, false);
  ways.pop_back();
  EXPECT_THROW(
      CacheEnergyModel(kOrg, ways, OperatingPoint{Mode::kHp, 1.0, 1e9}),
      hvc::PreconditionError);
}

}  // namespace
}  // namespace hvc::power
