// Hsiao SEC-DED code tests: construction properties, exhaustive single-
// and double-error behaviour on the paper's word widths (32-bit data,
// 26-bit tag, both with 7 check bits).
#include <gtest/gtest.h>

#include "hvc/common/error.hpp"

#include <set>

#include "hvc/common/rng.hpp"
#include "hvc/edc/checker.hpp"
#include "hvc/edc/hsiao.hpp"

namespace hvc::edc {
namespace {

TEST(Hsiao, PaperWidths) {
  const HsiaoSecded data(32, 7);
  EXPECT_EQ(data.data_bits(), 32u);
  EXPECT_EQ(data.check_bits(), 7u);
  EXPECT_EQ(data.codeword_bits(), 39u);
  EXPECT_EQ(data.name(), "SECDED(39,32)");

  const HsiaoSecded tag(26, 7);
  EXPECT_EQ(tag.codeword_bits(), 33u);
  EXPECT_EQ(tag.name(), "SECDED(33,26)");
}

TEST(Hsiao, MinCheckBits) {
  EXPECT_EQ(HsiaoSecded::min_check_bits(32), 7u);
  EXPECT_EQ(HsiaoSecded::min_check_bits(26), 6u);  // 26 odd non-unit columns
  EXPECT_EQ(HsiaoSecded::min_check_bits(64), 8u);
  EXPECT_EQ(HsiaoSecded::min_check_bits(8), 5u);
  EXPECT_EQ(HsiaoSecded::min_check_bits(4), 4u);
}

TEST(Hsiao, TooFewCheckBitsThrows) {
  EXPECT_THROW(HsiaoSecded(32, 6), PreconditionError);
}

TEST(Hsiao, ColumnsAreOddWeightAndDistinct) {
  const HsiaoSecded codec(32, 7);
  // Reconstruct column syndromes from the parity rows.
  std::set<std::uint64_t> seen;
  for (std::size_t col = 0; col < codec.codeword_bits(); ++col) {
    std::uint64_t syndrome = 0;
    for (std::size_t row = 0; row < codec.check_bits(); ++row) {
      if (codec.parity_row(row).get(col)) {
        syndrome |= 1ULL << row;
      }
    }
    EXPECT_NE(syndrome, 0u) << "zero column at " << col;
    EXPECT_EQ(__builtin_popcountll(syndrome) % 2, 1)
        << "even-weight column at " << col;
    EXPECT_TRUE(seen.insert(syndrome).second)
        << "duplicate column at " << col;
  }
}

TEST(Hsiao, RowBalance) {
  // Hsiao's construction keeps row weights balanced; the widest XOR tree
  // must not exceed the average by more than a couple of inputs.
  const HsiaoSecded codec(32, 7);
  const double avg =
      static_cast<double>(codec.total_ones()) /
      static_cast<double>(codec.check_bits());
  EXPECT_LE(static_cast<double>(codec.max_row_weight()), avg + 2.5);
}

TEST(Hsiao, EncodeDecodeClean) {
  const HsiaoSecded codec(32, 7);
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    BitVec data(32);
    for (std::size_t i = 0; i < 32; ++i) {
      data.set(i, rng.bernoulli(0.5));
    }
    const BitVec codeword = codec.encode(data);
    const DecodeResult result = codec.decode(codeword);
    EXPECT_EQ(result.status, DecodeStatus::kClean);
    EXPECT_EQ(result.data, data);
  }
}

TEST(Hsiao, SystematicLayout) {
  const HsiaoSecded codec(32, 7);
  const BitVec data = BitVec::from_word(0x12345678, 32);
  const BitVec codeword = codec.encode(data);
  EXPECT_EQ(codeword.slice(0, 32), data);
}

class HsiaoWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HsiaoWidths, AllSingleErrorsCorrected) {
  const HsiaoSecded codec(GetParam());
  Rng rng(2);
  const CheckReport report = check_all_single_errors(codec, rng, 8);
  EXPECT_EQ(report.correct_decodes, report.trials);
  EXPECT_EQ(report.miscorrections, 0u);
  EXPECT_EQ(report.missed, 0u);
}

TEST_P(HsiaoWidths, AllDoubleErrorsDetected) {
  const HsiaoSecded codec(GetParam());
  Rng rng(3);
  const CheckReport report = check_all_double_errors(codec, rng, 2);
  EXPECT_EQ(report.detected, report.trials);
  EXPECT_EQ(report.miscorrections, 0u);
  EXPECT_EQ(report.missed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Widths, HsiaoWidths,
                         ::testing::Values(8, 16, 26, 32, 48));

TEST(Hsiao, PaperTagWidthWithSevenCheckBits) {
  const HsiaoSecded codec(26, 7);
  Rng rng(4);
  const CheckReport singles = check_all_single_errors(codec, rng, 8);
  EXPECT_TRUE(singles.perfect());
  EXPECT_EQ(singles.correct_decodes, singles.trials);
  const CheckReport doubles = check_all_double_errors(codec, rng, 2);
  EXPECT_EQ(doubles.detected, doubles.trials);
}

TEST(Hsiao, MinimumDistanceAtLeastFour) {
  const HsiaoSecded codec(32, 7);
  Rng rng(5);
  EXPECT_GE(sampled_min_distance(codec, rng, 3000), 4u);
}

TEST(Hsiao, CheckBitErrorKeepsDataIntact) {
  const HsiaoSecded codec(32, 7);
  const BitVec data = BitVec::from_word(0xCAFEBABE, 32);
  BitVec codeword = codec.encode(data);
  codeword.flip(35);  // a check bit
  const DecodeResult result = codec.decode(codeword);
  EXPECT_EQ(result.status, DecodeStatus::kCorrected);
  EXPECT_EQ(result.data, data);
}

TEST(Hsiao, WrongWidthThrows) {
  const HsiaoSecded codec(32, 7);
  EXPECT_THROW((void)codec.encode(BitVec(31)), PreconditionError);
  EXPECT_THROW((void)codec.decode(BitVec(38)), PreconditionError);
}

}  // namespace
}  // namespace hvc::edc
